// Tests for the per-encoding combinator layer (core/encodings.hpp): fold
// and collector combinators, the Figure 1 conversion lattice, and their
// agreement with the hybrid-iterator pipeline on the same computations.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/encodings.hpp"
#include "core/triolet.hpp"
#include "support/rng.hpp"

namespace triolet::core {
namespace {

auto counting_fold(index_t n) {
  // A fold over 0..n-1 built from an indexer, as the library does.
  return idx_to_fold(make_indexer(Seq{0, n}, Unit{}, IdentityExt{}));
}

TEST(FoldCombinators, FoldAccumulatesInOrder) {
  auto f = counting_fold(4);
  auto s = f.fold(
      [](index_t v, std::string acc) { return acc + std::to_string(v); },
      std::string{});
  EXPECT_EQ(s, "0123");
}

TEST(FoldCombinators, MapFold) {
  auto f = map_fold(counting_fold(5), [](index_t v) { return v * v; });
  EXPECT_DOUBLE_EQ(sum_fold(f), 0 + 1 + 4 + 9 + 16);
}

TEST(FoldCombinators, FilterFold) {
  auto f = filter_fold(counting_fold(10), [](index_t v) { return v % 3 == 0; });
  EXPECT_EQ(count_fold(f), 4);  // 0 3 6 9
  EXPECT_DOUBLE_EQ(sum_fold(f), 18);
}

TEST(FoldCombinators, ConcatMapFoldBuildsNestedLoop) {
  // Each element expands into its own inner fold: the §3.1 point that
  // "nested traversals do not pose the same optimization trouble for folds".
  auto f = concat_map_fold(counting_fold(5), [](index_t i) {
    return counting_fold(i);
  });
  EXPECT_EQ(count_fold(f), 0 + 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(sum_fold(f),
                   0 + 0 + (0 + 1) + (0 + 1 + 2) + (0 + 1 + 2 + 3));
}

TEST(FoldCombinators, DeepComposition) {
  auto f = filter_fold(
      map_fold(concat_map_fold(counting_fold(6),
                               [](index_t i) { return counting_fold(i); }),
               [](index_t v) { return v * 2; }),
      [](index_t v) { return v > 2; });
  // inner values: i=0:[],1:[0],2:[0,1],3:[0,1,2],4:[0..3],5:[0..4]
  // doubled, kept if >2: 4,(4,6),(4,6,8) -> from i>=3
  EXPECT_DOUBLE_EQ(sum_fold(f), 4 + (4 + 6) + (4 + 6 + 8));
}

TEST(CollCombinators, CollectorMutatesExternalState) {
  std::vector<index_t> out;
  auto c = filter_coll(
      map_coll(idx_to_coll(make_indexer(Seq{0, 8}, Unit{}, IdentityExt{})),
               [](index_t v) { return v + 100; }),
      [](index_t v) { return v % 2 == 0; });
  c.collect([&](index_t v) { out.push_back(v); });
  EXPECT_EQ(out, (std::vector<index_t>{100, 102, 104, 106}));
}

TEST(CollCombinators, ConcatMapColl) {
  std::int64_t acc = 0;
  auto c = concat_map_coll(
      idx_to_coll(make_indexer(Seq{0, 4}, Unit{}, IdentityExt{})),
      [](index_t i) {
        return idx_to_coll(make_indexer(Seq{0, i}, Unit{}, IdentityExt{}));
      });
  c.collect([&](index_t v) { acc += v; });
  EXPECT_EQ(acc, 0 + 0 + 1 + 0 + 1 + 2);
}

TEST(Conversions, StepToFoldMatchesStepperDrain) {
  auto sf = filter_step(RangeStepF{0, 20},
                        [](index_t v) { return v % 4 == 1; });
  auto f = step_to_fold(sf);
  EXPECT_DOUBLE_EQ(sum_fold(f), 1 + 5 + 9 + 13 + 17);
}

TEST(Conversions, StepToColl) {
  index_t n = 0;
  step_to_coll(RangeStepF{5, 12}).collect([&](index_t) { ++n; });
  EXPECT_EQ(n, 7);
}

TEST(Conversions, FoldDowngradesToCollector) {
  auto f = map_fold(counting_fold(6), [](index_t v) { return v + 1; });
  std::int64_t acc = 0;
  fold_to_coll(std::move(f)).collect([&](index_t v) { acc += v; });
  EXPECT_EQ(acc, 1 + 2 + 3 + 4 + 5 + 6);
}

TEST(Conversions, IdxSourcedFoldReadsArrays) {
  Array1<double> xs(0, {0.5, 1.5, 2.5});
  auto f = idx_to_fold(make_indexer(Seq{0, 3}, xs, Array1Ext{}));
  EXPECT_DOUBLE_EQ(sum_fold(f), 4.5);
}

// The encoding layer and the hybrid-iterator layer agree on the same
// pipeline — the iterators are built from exactly these pieces.
class EncodingAgreement : public ::testing::TestWithParam<int> {};

TEST_P(EncodingAgreement, FoldPipelineMatchesIteratorPipeline) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  Array1<std::int64_t> xs(200);
  for (index_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<std::int64_t>(rng.below(40));
  }
  // Fold route.
  auto f = filter_fold(
      concat_map_fold(
          idx_to_fold(make_indexer(Seq{0, xs.size()}, xs, Array1Ext{})),
          [](std::int64_t x) {
            return idx_to_fold(
                make_indexer(Seq{0, x % 5}, Unit{}, IdentityExt{}));
          }),
      [](index_t v) { return v != 2; });
  // Iterator route.
  auto it = filter(concat_map(from_array(xs),
                              [](std::int64_t x) { return range(0, x % 5); }),
                   [](index_t v) { return v != 2; });
  EXPECT_EQ(count_fold(f), count(it));
  EXPECT_DOUBLE_EQ(sum_fold(f), static_cast<double>(sum(it)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingAgreement, ::testing::Range(0, 6));

}  // namespace
}  // namespace triolet::core
