// Tests for the model-driven autotuner (src/sched/tuner.hpp): measurement
// configuration, calibration-driven picks on synthetic workloads with known
// best answers, SPMD pick determinism, end-to-end kAuto rounds on real
// cluster threads, and the kOrdered bitwise-identity invariant against
// every manual configuration.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "sched/tuner.hpp"
#include "support/rng.hpp"

namespace triolet::sched {
namespace {

using core::from_array;
using core::index_t;
using core::map;
using dist::NodeRuntime;

Array1<double> random_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-1.0, 1.0);
  return a;
}

/// What one rank's tuner decided, for cross-rank comparison outside the
/// cluster lambda.
struct PickRecord {
  bool have = false;
  SchedulePolicy policy = SchedulePolicy::kAuto;
  index_t grain = 0;
  bool prefetch = false;
  bool streaming = false;
  int rounds = 0;

  static PickRecord of(const AutoTuner& t) {
    return {t.have_pick(), t.pick().policy, t.pick().grain,
            t.pick().prefetch, t.pick().streaming, t.rounds()};
  }
  bool same_config(const PickRecord& o) const {
    return have == o.have && policy == o.policy && grain == o.grain &&
           prefetch == o.prefetch && streaming == o.streaming;
  }
};

// -- measurement configuration ------------------------------------------------

TEST(AutoTunerUnit, FirstRoundIsTheMeasurementConfiguration) {
  // Before any data exists, begin_round must hand back the instrumented
  // config: one-atom dynamic grants with nothing hiding the request->grant
  // wait — and never kAuto itself.
  AutoTuner t;
  SchedOptions user;
  user.policy = SchedulePolicy::kAuto;
  user.combine = CombineMode::kOrdered;
  user.grain = 7;

  const SchedOptions r0 = t.begin_round(user);
  EXPECT_EQ(r0.policy, SchedulePolicy::kDynamic);
  EXPECT_FALSE(r0.prefetch);
  EXPECT_FALSE(r0.streaming);
  EXPECT_EQ(r0.tuner, nullptr);
  // Caller-visible semantics survive untouched: the combine mode and the
  // pinned grain are the user's, only the scheduling knobs are replaced.
  EXPECT_EQ(r0.combine, CombineMode::kOrdered);
  EXPECT_EQ(r0.grain, 7);
  EXPECT_FALSE(t.have_pick());
  EXPECT_EQ(t.rounds(), 0);
}

TEST(AutoTunerUnit, RegistryKeysSeparateJobsAndCallerOwnedWins) {
  bool same_key_same_tuner = false;
  bool different_key_different_tuner = false;
  bool caller_owned_wins = false;
  auto res = net::Cluster::run(1, [&](net::Comm& comm) {
    SchedOptions a;
    a.tune_key = 1;
    SchedOptions b;
    b.tune_key = 2;
    AutoTuner& ta = detail::tuner_for(comm, a);
    same_key_same_tuner = (&detail::tuner_for(comm, a) == &ta);
    different_key_different_tuner = (&detail::tuner_for(comm, b) != &ta);
    AutoTuner mine;
    SchedOptions c;
    c.tuner = &mine;
    caller_owned_wins = (&detail::tuner_for(comm, c) == &mine);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(same_key_same_tuner);
  EXPECT_TRUE(different_key_different_tuner);
  EXPECT_TRUE(caller_owned_wins);
}

// -- synthetic workloads with known best answers ------------------------------

/// Drives one tuner round on a 4-rank cluster from synthetic measurements:
/// rank 0 records `per_unit_seconds` (one run per outer unit, the
/// measurement round's shape) plus the given counter delta; everyone else
/// contributes empty samples. Returns each rank's resulting pick.
std::array<PickRecord, 4> synthetic_pick(
    const std::vector<double>& per_unit_seconds, double round_trip_seconds,
    std::int64_t bytes_per_unit) {
  std::array<PickRecord, 4> picks{};
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    AutoTuner t;
    SchedOptions user;
    user.policy = SchedulePolicy::kAuto;
    (void)t.begin_round(user);

    const auto extent = static_cast<index_t>(per_unit_seconds.size());
    net::CommStats delta;
    double wall = 0.0;
    if (comm.rank() == 0) {
      for (index_t i = 0; i < extent; ++i) {
        t.record_run(/*atom_lo=*/i, /*grain=*/1, /*units=*/1,
                     per_unit_seconds[static_cast<std::size_t>(i)]);
        delta.sched.busy_seconds += per_unit_seconds[
            static_cast<std::size_t>(i)];
      }
      delta.sched.items_executed = extent;
      delta.sched.chunks_executed = extent;
      delta.sched.steal_waits = extent;
      delta.sched.idle_seconds =
          static_cast<double>(extent) * round_trip_seconds;
      delta.sched.grants_received = extent;
      delta.sched.grant_payload_bytes = extent * bytes_per_unit;
      delta.sched.granted_items = extent;
      wall = delta.sched.busy_seconds + delta.sched.idle_seconds;
    }
    t.finish_round(comm, wall, delta,
                   comm.rank() == 0 ? extent : index_t{-1});
    picks[static_cast<std::size_t>(comm.rank())] = PickRecord::of(t);
  });
  EXPECT_TRUE(res.ok) << res.error;
  return picks;
}

TEST(AutoTunerPick, SkewedWorkloadPicksADemandPolicy) {
  // Triangular per-unit costs (the tpacf shape) with a cheap control round
  // trip: static blocks leave the last rank with ~44% of the work, demand
  // claiming balances it — the model must not pick kStatic.
  std::vector<double> tri(64);
  for (std::size_t i = 0; i < tri.size(); ++i) {
    tri[i] = static_cast<double>(i + 1) * 1e-3;
  }
  const auto picks = synthetic_pick(tri, /*round_trip=*/1e-4,
                                    /*bytes_per_unit=*/100);
  for (const auto& p : picks) {
    ASSERT_TRUE(p.have);
    EXPECT_TRUE(p.policy == SchedulePolicy::kGuided ||
                p.policy == SchedulePolicy::kDynamic)
        << to_string(p.policy);
    EXPECT_EQ(p.rounds, 1);
  }
}

TEST(AutoTunerPick, UniformWorkloadWithCostlyControlPicksStatic) {
  // Uniform tiny units behind an expensive round trip: every demand claim
  // pays ~50ms of control for 0.1ms of work, while static pays one grant
  // latency total. The model must pick kStatic.
  std::vector<double> uni(64, 1e-4);
  const auto picks = synthetic_pick(uni, /*round_trip=*/5e-2,
                                    /*bytes_per_unit=*/16);
  for (const auto& p : picks) {
    ASSERT_TRUE(p.have);
    EXPECT_EQ(p.policy, SchedulePolicy::kStatic) << to_string(p.policy);
  }
}

TEST(AutoTunerPick, PowerLawSkewRecordsCostCvAndPicksDemand) {
  // The segmented-source shape: most units are tiny, the jumbo segment
  // groups cluster at the front (sorted degree order). One measured round
  // must (a) record the per-atom skew on the calibration, and (b) pick a
  // demand policy — static blocks strand the jumbo cluster on one rank.
  std::vector<double> jumbo(64);
  for (std::size_t i = 0; i < jumbo.size(); ++i) {
    jumbo[i] = (i < 4) ? 20e-3 : 0.5e-3;
  }
  std::array<double, 4> cvs{};
  std::array<PickRecord, 4> picks{};
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    AutoTuner t;
    SchedOptions user;
    user.policy = SchedulePolicy::kAuto;
    (void)t.begin_round(user);
    const auto extent = static_cast<index_t>(jumbo.size());
    net::CommStats delta;
    double wall = 0.0;
    if (comm.rank() == 0) {
      for (index_t i = 0; i < extent; ++i) {
        t.record_run(i, 1, 1, jumbo[static_cast<std::size_t>(i)]);
        delta.sched.busy_seconds += jumbo[static_cast<std::size_t>(i)];
      }
      delta.sched.items_executed = extent;
      delta.sched.chunks_executed = extent;
      delta.sched.steal_waits = extent;
      delta.sched.idle_seconds = static_cast<double>(extent) * 1e-4;
      delta.sched.grants_received = extent;
      delta.sched.grant_payload_bytes = extent * 100;
      delta.sched.granted_items = extent;
      wall = delta.sched.busy_seconds + delta.sched.idle_seconds;
    }
    // The domain-side hint (core::outer_cost_cv of the SegSeq weights)
    // rides the same allgather as the extent.
    t.finish_round(comm, wall, delta, comm.rank() == 0 ? extent : index_t{-1},
                   comm.rank() == 0 ? 1.3 : 0.0);
    cvs[static_cast<std::size_t>(comm.rank())] = t.calibration().cost_cv;
    picks[static_cast<std::size_t>(comm.rank())] = PickRecord::of(t);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(cvs[0], 1.0);  // rank 0 measured the profile
  for (const auto& p : picks) {
    ASSERT_TRUE(p.have);
    EXPECT_TRUE(p.policy == SchedulePolicy::kGuided ||
                p.policy == SchedulePolicy::kDynamic)
        << to_string(p.policy);
  }
  for (std::size_t r = 1; r < picks.size(); ++r) {
    EXPECT_TRUE(picks[0].same_config(picks[r])) << "rank " << r;
  }
}

TEST(AutoTunerPick, AllRanksPickTheIdenticalConfiguration) {
  // The pick is a pure function of allgathered data: every rank must land
  // on the same configuration without any broadcast.
  std::vector<double> mixed(48);
  Xoshiro256 rng(17);
  for (auto& d : mixed) d = rng.uniform(1e-4, 5e-3);
  const auto picks = synthetic_pick(mixed, 1e-3, 64);
  for (std::size_t r = 1; r < picks.size(); ++r) {
    EXPECT_TRUE(picks[0].same_config(picks[r])) << "rank " << r;
  }
}

// -- end-to-end kAuto on real cluster threads ---------------------------------

TEST(AutoSched, StaysCorrectEveryRoundAndConverges) {
  auto xs = random_array(20000, 3);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i] * xs[i];

  const int kRounds = 4;
  std::vector<double> results;
  std::array<PickRecord, 4> picks{};
  std::array<bool, 4> cal_valid{};
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    AutoTuner t;
    SchedOptions opts;
    opts.policy = SchedulePolicy::kAuto;
    opts.tuner = &t;
    auto make = [&] {
      return map(from_array(xs), [](double x) { return x * x; });
    };
    for (int r = 0; r < kRounds; ++r) {
      double v = dist::sum(comm, make, opts);
      if (comm.rank() == 0) results.push_back(v);
    }
    const auto rank = static_cast<std::size_t>(comm.rank());
    picks[rank] = PickRecord::of(t);
    cal_valid[rank] = t.calibration().valid();
  });
  ASSERT_TRUE(res.ok) << res.error;

  // Every round — the measurement round included — returns the right sum.
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kRounds));
  for (double v : results) {
    EXPECT_NEAR(v, expect, 1e-9 * std::abs(expect));
  }
  // After kRounds rounds every rank holds a valid calibration and an
  // identical concrete pick.
  for (std::size_t r = 0; r < picks.size(); ++r) {
    EXPECT_TRUE(cal_valid[r]) << "rank " << r;
    ASSERT_TRUE(picks[r].have) << "rank " << r;
    EXPECT_EQ(picks[r].rounds, kRounds) << "rank " << r;
    EXPECT_NE(picks[r].policy, SchedulePolicy::kAuto);
    EXPECT_TRUE(picks[0].same_config(picks[r])) << "rank " << r;
  }
}

TEST(AutoSched, RegistryCarriesStateAcrossCallsWithSharedKey) {
  // Without a caller-owned tuner, rounds that share a tune_key accumulate
  // in the Comm's registry: the second call must no longer be a
  // measurement round (it runs the model's pick).
  auto xs = random_array(8000, 21);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i];

  std::array<int, 4> rounds_after{};
  std::vector<double> results;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    const auto opts = dist::auto_options(/*tune_key=*/42);
    auto make = [&] { return from_array(xs); };
    for (int r = 0; r < 3; ++r) {
      double v = dist::reduce(comm, make, 0.0,
                              [](double a, double b) { return a + b; }, opts);
      if (comm.rank() == 0) results.push_back(v);
    }
    SchedOptions probe;
    probe.tune_key = 42;
    rounds_after[static_cast<std::size_t>(comm.rank())] =
        detail::tuner_for(comm, probe).rounds();
  });
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(results.size(), 3u);
  for (double v : results) EXPECT_NEAR(v, expect, 1e-9 * xs.size());
  for (int r : rounds_after) EXPECT_EQ(r, 3);
}

// -- the kOrdered invariant under autotuning ----------------------------------

TEST(AutoSched, OrderedCombineBitwiseIdenticalToEveryManualConfig) {
  // Mixed-magnitude doubles make any reordering of the fold visible in the
  // low bits. kAuto may pick any policy/prefetch/streaming combination per
  // round; with kOrdered it must pin the grain, so every round's result —
  // and every manual configuration at the same (auto-resolved) grain —
  // must be the same bits.
  Xoshiro256 rng(29);
  Array1<double> xs(4096);
  for (index_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0));
  }

  struct Config {
    SchedulePolicy policy;
    bool prefetch;
    bool streaming;
  };
  const Config manual[] = {
      {SchedulePolicy::kStatic, true, false},
      {SchedulePolicy::kGuided, true, false},
      {SchedulePolicy::kGuided, false, false},
      {SchedulePolicy::kGuided, true, true},
      {SchedulePolicy::kDynamic, true, false},
      {SchedulePolicy::kDynamic, false, false},
      {SchedulePolicy::kDynamic, true, true},
  };

  auto run_reduce = [&](const SchedOptions& opts, int rounds) {
    std::vector<double> out;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] { return from_array(xs); };
      for (int r = 0; r < rounds; ++r) {
        double v = dist::reduce(comm, make, 0.0,
                                [](double a, double b) { return a + b; },
                                opts);
        if (comm.rank() == 0) out.push_back(v);
      }
    });
    EXPECT_TRUE(res.ok) << res.error;
    return out;
  };

  std::vector<double> reference;
  for (const Config& c : manual) {
    SchedOptions opts;
    opts.policy = c.policy;
    opts.combine = CombineMode::kOrdered;
    opts.prefetch = c.prefetch;
    opts.streaming = c.streaming;
    auto got = run_reduce(opts, 1);
    ASSERT_EQ(got.size(), 1u);
    reference.push_back(got[0]);
  }
  for (std::size_t i = 1; i < reference.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(&reference[0], &reference[i], sizeof(double)))
        << "manual config " << i << " diverged";
  }

  // kAuto over several rounds: whatever it picks each round, the bits
  // must match the manual configurations above.
  SchedOptions opts;
  opts.policy = SchedulePolicy::kAuto;
  opts.combine = CombineMode::kOrdered;
  auto got = run_reduce(opts, 4);
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(0, std::memcmp(&reference[0], &got[r], sizeof(double)))
        << "kAuto round " << r << " diverged: " << reference[0] << " vs "
        << got[r];
  }
}

// -- stats plumbing the tuner rides on ----------------------------------------

TEST(CommStatsDelta, SubtractionIsFieldwiseAcrossNestedStructs) {
  net::CommStats a, b;
  a.bytes_sent = 100;
  b.bytes_sent = 40;
  a.sched.items_executed = 10;
  b.sched.items_executed = 4;
  a.sched.busy_seconds = 2.5;
  b.sched.busy_seconds = 1.0;
  a.sched.grant_payload_bytes = 900;
  b.sched.grant_payload_bytes = 300;
  a.pool.tasks_executed = 8;
  b.pool.tasks_executed = 3;
  a.residency.bytes_avoided = 50;
  b.residency.bytes_avoided = 20;
  a.collectives[0].calls = 5;
  b.collectives[0].calls = 2;

  const net::CommStats d = a - b;
  EXPECT_EQ(d.bytes_sent, 60);
  EXPECT_EQ(d.sched.items_executed, 6);
  EXPECT_DOUBLE_EQ(d.sched.busy_seconds, 1.5);
  EXPECT_EQ(d.sched.grant_payload_bytes, 600);
  EXPECT_EQ(d.pool.tasks_executed, 5);
  EXPECT_EQ(d.residency.bytes_avoided, 30);
  EXPECT_EQ(d.collectives[0].calls, 3);
}

TEST(CommStatsDelta, SnapshotDeltaIsolatesOneScheduledRound) {
  // snapshot_stats() before/after brackets exactly one round's traffic:
  // the delta sees the round's executed items, the full counters keep
  // accumulating.
  auto xs = random_array(4000, 55);
  std::array<std::int64_t, 2> delta_items{};
  std::array<std::int64_t, 2> total_items{};
  auto res = net::Cluster::run(2, [&](net::Comm& comm) {
    NodeRuntime node(2);
    SchedOptions opts;
    opts.policy = SchedulePolicy::kDynamic;
    auto make = [&] { return from_array(xs); };
    // A first round whose traffic must NOT appear in the bracketed delta.
    (void)dist::sum(comm, make, opts);
    const net::CommStats before = comm.snapshot_stats();
    (void)dist::sum(comm, make, opts);
    const net::CommStats d = comm.snapshot_stats() - before;
    const auto rank = static_cast<std::size_t>(comm.rank());
    delta_items[rank] = d.sched.items_executed;
    total_items[rank] = comm.snapshot_stats().sched.items_executed;
  });
  ASSERT_TRUE(res.ok) << res.error;
  // Each round executes every item exactly once across the cluster.
  EXPECT_EQ(delta_items[0] + delta_items[1], xs.size());
  EXPECT_EQ(total_items[0] + total_items[1], 2 * xs.size());
}

TEST(SchedStats, GrantPayloadCountersMeasureReceiverSideBytes) {
  // Workers (not the root) receive grants; their payload byte and item
  // counters feed grant_bytes_per_item. The cluster-wide granted_items is
  // exactly the items the non-root ranks executed. Items must cost real
  // compute: a trivial sum lets the root self-issue every atom before the
  // first worker request even lands (oversubscribed ranks share cores).
  auto xs = random_array(6000, 77);
  std::array<net::SchedStats, 4> per_rank{};
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    SchedOptions opts;
    opts.policy = SchedulePolicy::kGuided;
    opts.grain = 50;
    auto make = [&] {
      return core::map(from_array(xs), [](double x) {
        double v = x;
        for (int k = 0; k < 2000; ++k) v += std::sin(v + 1e-3 * k);
        return v;
      });
    };
    (void)dist::sum(comm, make, opts);
    per_rank[static_cast<std::size_t>(comm.rank())] =
        comm.snapshot_stats().sched;
  });
  ASSERT_TRUE(res.ok) << res.error;

  std::int64_t granted = 0, executed_off_root = 0, payload = 0;
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    granted += per_rank[r].granted_items;
    payload += per_rank[r].grant_payload_bytes;
    if (r != 0) executed_off_root += per_rank[r].items_executed;
  }
  EXPECT_EQ(per_rank[0].granted_items, 0);  // the root grants, never receives
  EXPECT_EQ(granted, executed_off_root);
  EXPECT_GT(granted, 0);
  // Grants carry real serialized tasks: bytes per item is at least one
  // double's worth for this array-backed iterator.
  EXPECT_GE(payload, granted * static_cast<std::int64_t>(sizeof(double)));
}

}  // namespace
}  // namespace triolet::sched
