// Multidimensional iteration: ordinal-range walkers (the §3.3 fix for
// flattening overhead), 2D/3D builders, and block-materialization
// properties.

#include <gtest/gtest.h>

#include <vector>

#include "core/triolet.hpp"
#include "support/rng.hpp"

namespace triolet::core {
namespace {

// -- for_ordinal_range equivalence: must visit exactly the indices whose
//    ordinals fall in [a, b), in canonical order, for every domain shape.

template <typename D>
void expect_ordinal_walk_matches(D dom) {
  // Reference: enumerate all indices in canonical order.
  std::vector<IndexOf<D>> all;
  dom.for_each([&](IndexOf<D> i) { all.push_back(i); });
  ASSERT_EQ(static_cast<index_t>(all.size()), dom.size());

  Xoshiro256 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    index_t a = static_cast<index_t>(rng.below(
        static_cast<std::uint64_t>(dom.size() + 1)));
    index_t b = a + static_cast<index_t>(rng.below(
        static_cast<std::uint64_t>(dom.size() - a + 1)));
    std::vector<IndexOf<D>> walked;
    for_ordinal_range(dom, a, b, [&](IndexOf<D> i) { walked.push_back(i); });
    ASSERT_EQ(static_cast<index_t>(walked.size()), b - a) << a << ".." << b;
    for (index_t k = 0; k < b - a; ++k) {
      ASSERT_EQ(walked[static_cast<std::size_t>(k)],
                all[static_cast<std::size_t>(a + k)])
          << "ordinal " << a + k;
    }
  }
}

TEST(OrdinalWalk, SeqMatchesEnumeration) {
  expect_ordinal_walk_matches(Seq{3, 40});
}

TEST(OrdinalWalk, Dim2MatchesEnumeration) {
  expect_ordinal_walk_matches(Dim2{2, 9, 5, 13});
  expect_ordinal_walk_matches(Dim2{0, 1, 0, 17});   // single row
  expect_ordinal_walk_matches(Dim2{0, 17, 0, 1});   // single column
}

TEST(OrdinalWalk, Dim3MatchesEnumeration) {
  expect_ordinal_walk_matches(Dim3{1, 4, 2, 5, 0, 6});
  expect_ordinal_walk_matches(Dim3{0, 1, 0, 1, 0, 9});  // degenerate line
}

TEST(OrdinalWalk, EmptyRangeVisitsNothing) {
  int visits = 0;
  for_ordinal_range(Dim2{0, 4, 0, 4}, 7, 7, [&](Index2) { ++visits; });
  EXPECT_EQ(visits, 0);
}

// -- builders ---------------------------------------------------------------------

TEST(Build3, FillsAnOriginVolume) {
  auto it = map(indices(Dim3{0, 3, 0, 4, 0, 5}), [](Index3 i) {
    return static_cast<float>(i.z * 100 + i.y * 10 + i.x);
  });
  auto vol = build_array3(it);
  EXPECT_EQ(vol.dim_z(), 3);
  EXPECT_EQ(vol.dim_y(), 4);
  EXPECT_EQ(vol.dim_x(), 5);
  EXPECT_FLOAT_EQ(vol(2, 3, 4), 234.0f);
  EXPECT_FLOAT_EQ(vol(0, 0, 0), 0.0f);
}

TEST(Build3, ParallelMatchesSequential) {
  auto mk = [](ParHint h) {
    return build_array3(with_hint(
        map(indices(Dim3{0, 8, 0, 9, 0, 10}),
            [](Index3 i) { return i.z * 1000 + i.y * 50 + i.x; }),
        h));
  };
  EXPECT_EQ(mk(ParHint::kSeq), mk(ParHint::kLocal));
}

TEST(Build2, ParallelBlockFillMatchesSeqOnOddShapes) {
  for (index_t h : {1, 7, 33}) {
    for (index_t w : {1, 5, 31}) {
      auto mk = [&](ParHint hint) {
        return build_block2(with_hint(
            map(indices(Dim2{0, h, 0, w}),
                [](Index2 i) { return i.y * 1000 + i.x; }),
            hint));
      };
      auto a = mk(ParHint::kSeq);
      auto b = mk(ParHint::kLocal);
      ASSERT_EQ(a.data, b.data) << h << "x" << w;
    }
  }
}

TEST(Build2, SubBlockKeepsGlobalAddressing) {
  auto it = map(indices(Dim2{3, 7, 10, 14}),
                [](Index2 i) { return i.y * 100 + i.x; });
  auto block = build_block2(it);
  EXPECT_EQ(block.at(Index2{5, 12}), 512);
  EXPECT_EQ(block.at(Index2{3, 10}), 310);
}

// -- 2D parallel reductions through the ordinal walker ------------------------------

TEST(MultiDim, LocalparSum2DMatchesSeq) {
  Xoshiro256 rng(23);
  Array2<double> m(67, 41);
  for (index_t y = 0; y < 67; ++y)
    for (index_t x = 0; x < 41; ++x) m(y, x) = rng.uniform();
  auto expr = map_with(indices(Dim2{0, 67, 0, 41}), m,
                       [](const Array2<double>& src, Index2 i) {
                         return src(i.y, i.x) * 2.0;
                       });
  EXPECT_NEAR(sum(localpar(expr)), sum(expr), 1e-9);
}

TEST(MultiDim, Histogram3DCells) {
  auto it = map(indices(Dim3{0, 4, 0, 4, 0, 4}),
                [](Index3 i) { return (i.z + i.y + i.x) % 5; });
  auto h = histogram(5, localpar(it));
  std::int64_t total = 0;
  for (index_t b = 0; b < 5; ++b) total += h[b];
  EXPECT_EQ(total, 64);
}

// -- outerproduct structure ----------------------------------------------------------

TEST(MultiDim, OuterProductValuesAreRowPairs) {
  Array2<float> a(3, 4, 1.0f), b(5, 4, 2.0f);
  auto z = outerproduct(rows(a), rows(b));
  EXPECT_EQ(z.domain(), (Dim2{0, 3, 0, 5}));
  auto uv = z.at(Index2{1, 3});
  EXPECT_EQ(uv.first.size(), 4u);
  EXPECT_EQ(uv.second.size(), 4u);
  EXPECT_FLOAT_EQ(uv.first[0], 1.0f);
  EXPECT_FLOAT_EQ(uv.second[0], 2.0f);
}

TEST(MultiDim, OuterProductSumEqualsProductOfSums) {
  // sum over (y, x) of u[y0]*v[x0]-style separable values factorizes.
  Array1<double> u(0, {1, 2, 3});
  Array1<double> v(0, {4, 5});
  auto z = outerproduct(
      map(from_array(u), [](double x) { return x; }),
      map(from_array(v), [](double x) { return x; }));
  double s = sum(map(z, [](const auto& p) { return p.first * p.second; }));
  EXPECT_DOUBLE_EQ(s, (1 + 2 + 3) * (4 + 5));
}

}  // namespace
}  // namespace triolet::core
