// Tests for the resident-data layer (PR: slice caching + rescatter
// avoidance): DistArray/DistContext identity and versioning, the SliceCache
// itself (LRU order, byte budgets, version retirement, sender-model
// equivalence), the token scatter protocol end to end on rank threads,
// the checksum-mismatch fetch fallback, and the kOrdered bitwise-identity
// guarantee residency must preserve.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>

#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "net/residency.hpp"
#include "support/rng.hpp"

namespace triolet_residency_test {

struct Weights {
  std::vector<double> w;
  bool operator==(const Weights&) const = default;
};
TRIOLET_SERIALIZE_FIELDS(Weights, w)

}  // namespace triolet_residency_test

namespace triolet::dist {
namespace {

using core::from_array;
using core::index_t;
using core::map;
using triolet_residency_test::Weights;

/// Overrides the process-global slice-cache budget for one test, restoring
/// "read the env" on destruction so tests stay order-independent.
struct BudgetGuard {
  explicit BudgetGuard(std::size_t bytes) {
    net::set_slice_cache_budget(bytes);
  }
  ~BudgetGuard() { net::set_slice_cache_budget(~std::size_t{0}); }
};

Array1<double> random_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-1.0, 1.0);
  return a;
}

double sequential_sum(const Array1<double>& xs) {
  double s = 0;
  for (index_t i = 0; i < xs.size(); ++i) s += xs[i];
  return s;
}

// -- SliceCache unit ---------------------------------------------------------

TEST(SliceCache, LookupTouchesAndEvictionIsLru) {
  net::ResidencyStats st;
  net::SliceCache c(100, &st);
  const std::vector<std::byte> blob(40, std::byte{1});
  const serial::SliceKey a{1, 1, 0, 40}, b{2, 1, 0, 40}, d{3, 1, 0, 40};
  c.insert(a, blob);
  c.insert(b, blob);
  EXPECT_EQ(c.bytes_held(), 80u);
  EXPECT_NE(c.lookup(a), nullptr);  // touch: b becomes least-recently-used
  c.insert(d, blob);                // 120 > 100: evict b, not a
  EXPECT_NE(c.lookup(a), nullptr);
  EXPECT_EQ(c.lookup(b), nullptr);
  EXPECT_NE(c.lookup(d), nullptr);
  EXPECT_EQ(st.evictions, 1);
  EXPECT_EQ(c.bytes_held(), 80u);
  EXPECT_EQ(st.bytes_inserted, 120);
}

TEST(SliceCache, NewVersionRetiresOlderSlicesOfSameSource) {
  net::SliceCache c(1000);
  const std::vector<std::byte> blob(10, std::byte{2});
  c.insert({7, 1, 0, 10}, blob);
  c.insert({7, 1, 10, 20}, blob);
  c.insert({8, 1, 0, 10}, blob);
  c.insert({7, 2, 0, 10}, blob);  // retires both v1 slices of source 7
  EXPECT_EQ(c.lookup({7, 1, 0, 10}), nullptr);
  EXPECT_EQ(c.lookup({7, 1, 10, 20}), nullptr);
  EXPECT_NE(c.lookup({8, 1, 0, 10}), nullptr);
  EXPECT_NE(c.lookup({7, 2, 0, 10}), nullptr);
  EXPECT_EQ(c.entries(), 2u);
  EXPECT_EQ(c.bytes_held(), 20u);
}

TEST(SliceCache, SenderModelTracksReceiverThroughEvictions) {
  // The protocol's core invariant: insert_meta (model) and insert (receiver)
  // apply identical retirement/eviction sequences, so the key sets agree.
  net::ResidencyStats st;
  net::SliceCache recv(64, &st);
  net::SliceCache model(64, nullptr);
  const std::vector<std::byte> blob(32, std::byte{3});
  const serial::SliceKey keys[] = {
      {1, 1, 0, 32}, {1, 1, 32, 64}, {2, 1, 0, 32}, {1, 2, 0, 32}};
  for (const auto& k : keys) {
    recv.insert(k, blob);
    model.insert_meta(k, blob.size(), serial::checksum(blob));
    EXPECT_EQ(recv.entries(), model.entries());
    EXPECT_EQ(recv.bytes_held(), model.bytes_held());
  }
  for (const auto& k : keys) {
    EXPECT_EQ(recv.lookup(k) != nullptr, model.lookup(k) != nullptr);
  }
}

// -- DistArray / DistContext handles -----------------------------------------

TEST(DistArrayHandle, MutateBumpsVersionAndSlicesShareStorage) {
  Array1<double> a(100);
  for (index_t i = 0; i < 100; ++i) a[i] = static_cast<double>(i);
  DistArray<double> d(std::move(a));
  EXPECT_NE(d.id(), 0u);
  EXPECT_EQ(d.version(), 1u);
  auto s = d.source();
  auto sub = slice_source(s, core::Seq{s.lo, s.hi}, core::Seq{10, 20});
  EXPECT_EQ(sub.data.get(), s.data.get());  // zero-copy narrowing
  EXPECT_EQ(sub.lo, 10);
  EXPECT_EQ(sub.hi, 20);
  d.mutate()[5] = -1.0;
  EXPECT_EQ(d.version(), 2u);
  EXPECT_EQ(d.source().version, 2u);
}

TEST(DistArrayHandle, ResidentSourceRoundTripsWithoutScopes) {
  // With no encode/decode scope installed the codec must behave exactly
  // like a plain inline payload (back-compat for every existing call site).
  Array1<int> a(50);
  for (index_t i = 0; i < 50; ++i) a[i] = static_cast<int>(3 * i - 7);
  DistArray<int> d(std::move(a));
  auto src = d.source();
  auto bytes = serial::to_bytes(src);
  auto back = serial::from_bytes<ResidentSource<int>>(bytes);
  EXPECT_EQ(back, src);
}

TEST(DistArrayHandle, ResidencyTraitSeesResidentSources) {
  DistArray<double> d{Array1<double>(4)};
  Array1<double> plain(4);
  EXPECT_TRUE(core::iter_uses_residency_v<decltype(from_resident(d))>);
  EXPECT_FALSE(core::iter_uses_residency_v<decltype(from_array(plain))>);
  // Composite sources (here: pair of array source and resident context, as
  // built by dist::map_with) keep the trait.
  DistContext<Weights> ctx{Weights{{1.0}}};
  auto it = map_with(from_resident(d), ctx.ctx(),
                     [](const Weights& w, double x) { return w.w[0] * x; });
  EXPECT_TRUE(core::iter_uses_residency_v<decltype(it)>);
  // map() composes extractors only — the source (and the trait) survive.
  auto mapped = map(from_resident(d), [](double x) { return x + 1; });
  EXPECT_TRUE(core::iter_uses_residency_v<decltype(mapped)>);
}

// -- end-to-end scatter protocol ---------------------------------------------

TEST(Residency, RepeatedScatterSendsTokens) {
  const index_t n = 40000;
  auto xs = random_array(n, 11);
  const double expect = sequential_sum(xs);
  DistArray<double> d{Array1<double>(xs)};
  BudgetGuard guard(std::size_t{64} << 20);

  double r1 = 0, r2 = 0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_resident(d); };
    double a = sum(comm, make);
    double b = sum(comm, make);
    if (comm.rank() == 0) {
      r1 = a;
      r2 = b;
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(r1, expect, 1e-9 * std::abs(expect));
  EXPECT_EQ(r1, r2);  // same tree, same chunks: bitwise equal rounds

  const auto& rs = res.total_stats.residency;
  // Round 1 inlines one slice per worker; round 2 tokenizes all three.
  EXPECT_EQ(rs.slices_inlined, 3);
  EXPECT_EQ(rs.tokens_sent, 3);
  EXPECT_EQ(rs.cache_hits, 3);
  EXPECT_EQ(rs.cache_misses, 0);
  EXPECT_EQ(rs.checksum_failures, 0);
  EXPECT_EQ(rs.fetches, 0);
  // Each worker slice is n/4 doubles.
  EXPECT_EQ(rs.bytes_avoided, 3 * (n / 4) * static_cast<index_t>(sizeof(double)));
}

TEST(Residency, DisabledBudgetShipsEverythingInline) {
  const index_t n = 8000;
  auto xs = random_array(n, 12);
  const double expect = sequential_sum(xs);
  DistArray<double> d{Array1<double>(xs)};
  BudgetGuard guard(0);  // 0 disables the protocol entirely

  double r2 = 0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_resident(d); };
    (void)sum(comm, make);
    double b = sum(comm, make);
    if (comm.rank() == 0) r2 = b;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(r2, expect, 1e-9 * std::abs(expect));
  const auto& rs = res.total_stats.residency;
  EXPECT_EQ(rs.tokens_sent, 0);
  EXPECT_EQ(rs.slices_inlined, 0);  // codec never consulted an encoder
  EXPECT_EQ(rs.cache_hits, 0);
}

TEST(Residency, MutationInvalidatesCachedSlices) {
  const index_t n = 20000;
  auto xs = random_array(n, 13);
  DistArray<double> d{Array1<double>(xs)};
  BudgetGuard guard(std::size_t{64} << 20);

  double r1 = 0, r2 = 0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_resident(d); };
    double a = sum(comm, make);
    // Only rank 0 owns the handle; the bump happens after round 1's combine
    // completed, so no sends over the old version are in flight.
    if (comm.rank() == 0) d.mutate()[0] += 1.0;
    double b = sum(comm, make);
    if (comm.rank() == 0) {
      r1 = a;
      r2 = b;
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(r2 - r1, 1.0, 1e-9);

  const auto& rs = res.total_stats.residency;
  // The version bump retires every cached slice: both rounds inline.
  EXPECT_EQ(rs.slices_inlined, 6);
  EXPECT_EQ(rs.tokens_sent, 0);
  EXPECT_EQ(rs.cache_hits, 0);
}

TEST(Residency, ChecksumMismatchFallsBackToFetch) {
  const index_t n = 10000;
  auto xs = random_array(n, 14);
  const double expect = sequential_sum(xs);
  DistArray<double> d{Array1<double>(xs)};
  BudgetGuard guard(std::size_t{64} << 20);

  double r2 = 0, r3 = 0;
  auto res = net::Cluster::run(2, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_resident(d); };
    (void)sum(comm, make);
    // Corrupt the worker's cached copy: the round-2 token must fail
    // validation and repair itself with a fetch from the root.
    if (comm.rank() == 1) {
      EXPECT_TRUE(comm.residency().cache.corrupt_one_for_testing());
    }
    double b = sum(comm, make);
    double c = sum(comm, make);  // repaired entry: plain hit again
    if (comm.rank() == 0) {
      r2 = b;
      r3 = c;
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(r2, expect, 1e-9 * std::abs(expect));
  EXPECT_EQ(r2, r3);

  const auto& rs = res.total_stats.residency;
  EXPECT_EQ(rs.slices_inlined, 1);
  EXPECT_EQ(rs.tokens_sent, 2);
  EXPECT_EQ(rs.checksum_failures, 1);
  EXPECT_EQ(rs.fetches, 1);
  EXPECT_EQ(rs.cache_hits, 1);
}

TEST(Residency, TinyBudgetEvictsThenReinlines) {
  const index_t n = 4000;  // 2 ranks -> worker slice = 2000 doubles
  auto xs = random_array(n, 15);
  auto ys = random_array(n, 16);
  DistArray<double> da{Array1<double>(xs)};
  DistArray<double> db{Array1<double>(ys)};
  const std::size_t slice_bytes = (n / 2) * sizeof(double);
  BudgetGuard guard(slice_bytes + slice_bytes / 2);  // room for one slice

  auto res = net::Cluster::run(2, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto ma = [&] { return from_resident(da); };
    auto mb = [&] { return from_resident(db); };
    (void)sum(comm, ma);  // insert a
    (void)sum(comm, mb);  // insert b, evict a
    (void)sum(comm, ma);  // miss in the model: re-inline a, evict b
    (void)sum(comm, ma);  // now resident: token
  });
  ASSERT_TRUE(res.ok) << res.error;

  const auto& rs = res.total_stats.residency;
  EXPECT_EQ(rs.slices_inlined, 3);
  EXPECT_EQ(rs.tokens_sent, 1);
  EXPECT_EQ(rs.cache_hits, 1);
  EXPECT_EQ(rs.evictions, 2);
  EXPECT_EQ(rs.fetches, 0);  // model mirrored both evictions exactly
}

// -- scheduler integration ---------------------------------------------------

TEST(ResidencySched, StaticScheduleGrantsTokenize) {
  const index_t n = 30000;
  auto xs = random_array(n, 17);
  const double expect = sequential_sum(xs);
  DistArray<double> d{Array1<double>(xs)};
  BudgetGuard guard(std::size_t{64} << 20);

  sched::SchedOptions opts;
  opts.policy = sched::SchedulePolicy::kStatic;
  double r2 = 0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_resident(d); };
    (void)dist::sum(comm, make, opts);
    double b = dist::sum(comm, make, opts);
    if (comm.rank() == 0) r2 = b;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(r2, expect, 1e-9 * std::abs(expect));
  const auto& rs = res.total_stats.residency;
  // Static atom ranges are deterministic, so round 2 tokenizes every grant.
  EXPECT_EQ(rs.slices_inlined, 3);
  EXPECT_EQ(rs.tokens_sent, 3);
  EXPECT_EQ(rs.cache_hits, 3);
}

TEST(ResidencySched, ResidencyOptionFalseBypassesProtocol) {
  const index_t n = 10000;
  auto xs = random_array(n, 18);
  DistArray<double> d{Array1<double>(xs)};
  BudgetGuard guard(std::size_t{64} << 20);

  sched::SchedOptions opts;
  opts.policy = sched::SchedulePolicy::kStatic;
  opts.residency = false;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_resident(d); };
    (void)dist::sum(comm, make, opts);
    (void)dist::sum(comm, make, opts);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.total_stats.residency.tokens_sent, 0);
  EXPECT_EQ(res.total_stats.residency.slices_inlined, 0);
}

TEST(ResidencySched, OrderedCombineBitwiseIdenticalOnAndOff) {
  const index_t n = 30000;
  auto xs = random_array(n, 19);
  DistArray<double> d{Array1<double>(xs)};

  sched::SchedOptions opts;
  opts.policy = sched::SchedulePolicy::kGuided;
  opts.combine = sched::CombineMode::kOrdered;

  auto run_rounds = [&](std::size_t budget) {
    BudgetGuard guard(budget);
    std::array<double, 3> rounds{};
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] {
        return map(from_resident(d), [](double x) { return x * 1.25 + 0.5; });
      };
      for (auto& r : rounds) {
        double v = dist::reduce(comm, make, 0.0,
                          [](double a, double b) { return a + b; }, opts);
        if (comm.rank() == 0) r = v;
      }
    });
    EXPECT_TRUE(res.ok) << res.error;
    return rounds;
  };

  const auto on = run_rounds(std::size_t{64} << 20);
  const auto off = run_rounds(0);
  for (std::size_t i = 0; i < on.size(); ++i) {
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &on[i], sizeof ba);
    std::memcpy(&bb, &off[i], sizeof bb);
    EXPECT_EQ(ba, bb) << "round " << i
                      << " differs bitwise with residency on vs off";
  }
}

// -- resident broadcast contexts ---------------------------------------------

TEST(ResidencyContext, UnchangedContextTokenizesUntilUpdate) {
  const index_t n = 12000;
  auto xs = random_array(n, 20);
  DistArray<double> d{Array1<double>(xs)};
  DistContext<Weights> ctx{Weights{std::vector<double>(512, 2.0)}};
  BudgetGuard guard(std::size_t{64} << 20);

  double r1 = 0, r3 = 0;
  auto res = net::Cluster::run(2, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] {
      return map_with(from_resident(d), ctx.ctx(),
                      [](const Weights& w, double x) { return w.w[0] * x; });
    };
    double a = sum(comm, make);  // array + context both inline
    (void)sum(comm, make);       // both tokenize
    if (comm.rank() == 0) ctx.update(Weights{std::vector<double>(512, 3.0)});
    double c = sum(comm, make);  // array token, context re-inlined
    if (comm.rank() == 0) {
      r1 = a;
      r3 = c;
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  const double expect = sequential_sum(xs);
  EXPECT_NEAR(r1, 2.0 * expect, 1e-9 * std::abs(expect));
  EXPECT_NEAR(r3, 3.0 * expect, 1e-9 * std::abs(expect));

  const auto& rs = res.total_stats.residency;
  EXPECT_EQ(rs.slices_inlined, 3);  // round-1 array + ctx, round-3 ctx
  EXPECT_EQ(rs.tokens_sent, 3);     // round-2 array + ctx, round-3 array
  EXPECT_EQ(rs.cache_hits, 3);
  EXPECT_EQ(rs.fetches, 0);
}

}  // namespace
}  // namespace triolet::dist
