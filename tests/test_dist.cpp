// Tests for the two-level distributed skeletons: slicing + serialization +
// per-node threading end to end on real SPMD rank threads, results compared
// against sequential execution on the same inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"

namespace triolet::dist {
namespace {

using core::from_array;
using core::index_t;
using core::map;
using core::Seq;
using core::zip;

Array1<double> random_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-1.0, 1.0);
  return a;
}

TEST(DistSum, MatchesSequentialAcrossNodeCounts) {
  auto xs = random_array(10000, 1);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i] * xs[i];

  for (int nodes : {1, 2, 4, 8}) {
    double got = 0;
    auto res = net::Cluster::run(nodes, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] {
        return map(from_array(xs), [](double x) { return x * x; });
      };
      double r = sum(comm, make);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_NEAR(got, expect, 1e-9 * std::abs(expect)) << nodes << " nodes";
  }
}

TEST(DistSum, DotProductAcrossNodes) {
  auto xs = random_array(5000, 2);
  auto ys = random_array(5000, 3);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i] * ys[i];

  double got = 0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] {
      return map(zip(from_array(xs), from_array(ys)),
                 [](const auto& p) { return p.first * p.second; });
    };
    double r = sum(comm, make);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(got, expect, 1e-9);
}

TEST(DistSum, SlicingSendsOnlySubarrays) {
  // With 4 nodes, each remote task should carry ~1/4 of the input, not all
  // of it: total task traffic stays close to one full copy of the data.
  const index_t n = 40000;
  auto xs = random_array(n, 4);
  const auto data_bytes = static_cast<std::int64_t>(n * sizeof(double));

  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_array(xs); };
    (void)sum(comm, make);
  });
  ASSERT_TRUE(res.ok) << res.error;
  // 3 remote chunks of n/4 elements each = 3/4 of the data, plus headers
  // and the tiny reduction results.
  EXPECT_LT(res.total_stats.bytes_sent, data_bytes * 3 / 4 + 4096);
  EXPECT_GT(res.total_stats.bytes_sent, data_bytes / 2);
}

TEST(DistCount, FilteredCountMatches) {
  auto xs = random_array(9999, 5);
  index_t expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += (xs[i] > 0);

  index_t got = -1;
  auto res = net::Cluster::run(3, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] {
      return core::filter(from_array(xs), [](double x) { return x > 0; });
    };
    index_t r = count(comm, make);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got, expect);
}

TEST(DistReduce, NonTrivialCombineFoldsDeterministically) {
  auto xs = random_array(1000, 6);
  // max-reduction: identity is -inf.
  double expect = -1e300;
  for (index_t i = 0; i < xs.size(); ++i) expect = std::max(expect, xs[i]);

  double got = 0;
  auto res = net::Cluster::run(5, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] { return from_array(xs); };
    double r = reduce(comm, make, -1e300,
                      [](double a, double b) { return std::max(a, b); });
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_DOUBLE_EQ(got, expect);
}

TEST(DistHistogram, MatchesSequential) {
  Xoshiro256 rng(7);
  Array1<index_t> bins(30000);
  for (index_t i = 0; i < bins.size(); ++i)
    bins[i] = static_cast<index_t>(rng.below(64));
  auto expect = core::histogram(64, from_array(bins));

  Array1<std::int64_t> got;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] { return from_array(bins); };
    auto r = histogram(comm, 64, make);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got, expect);
}

TEST(DistFloatHistogram, MatchesSequentialWithinTolerance) {
  auto xs = random_array(20000, 8);
  auto make_iter = [&] {
    return map(from_array(xs), [](double x) {
      index_t cell = static_cast<index_t>((x + 1.0) * 8);
      return std::pair<index_t, double>(std::min<index_t>(cell, 15), x * x);
    });
  };
  auto expect = core::float_histogram<double>(16, make_iter());

  Array1<double> got;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto r = float_histogram<double>(comm, 16, make_iter);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(got.size(), 16);
  for (index_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(got[b], expect[b], 1e-9 * std::max(1.0, expect[b]));
  }
}

TEST(DistBuildArray1, AssemblesFullArray) {
  const index_t n = 4321;
  Array1<std::int64_t> got;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] {
      return map(core::range(0, n), [](index_t i) { return 3 * i + 1; });
    };
    auto r = build_array1(comm, make);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(got.size(), n);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(got[i], 3 * i + 1);
}

TEST(DistBuildArray2, BlockDecomposedMatmulMatchesReference) {
  // The paper's sgemm decomposition end to end: outerproduct slices row
  // bundles per block, nodes compute blocks, root assembles.
  const index_t n = 24, k = 10, m = 20;
  Xoshiro256 rng(9);
  Array2<double> a(n, k), b(k, m);
  for (index_t y = 0; y < n; ++y)
    for (index_t x = 0; x < k; ++x) a(y, x) = rng.uniform(-1, 1);
  for (index_t y = 0; y < k; ++y)
    for (index_t x = 0; x < m; ++x) b(y, x) = rng.uniform(-1, 1);
  Array2<double> bt = transpose(b);

  Array2<double> got;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] {
      return map(core::outerproduct(core::rows(a), core::rows(bt)),
                 [](const auto& uv) {
                   double acc = 0;
                   for (std::size_t i = 0; i < uv.first.size(); ++i)
                     acc += uv.first[i] * uv.second[i];
                   return acc;
                 });
    };
    auto r = build_array2(comm, make);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(got.rows(), n);
  ASSERT_EQ(got.cols(), m);
  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < m; ++x) {
      double ref = 0;
      for (index_t i = 0; i < k; ++i) ref += a(y, i) * b(i, x);
      ASSERT_NEAR(got(y, x), ref, 1e-12);
    }
  }
}

TEST(DistBuildArray2, OuterproductTrafficIsRowsNotFullMatrices) {
  // Each of 4 blocks needs n/2 rows of A and m/2 rows of BT: total task
  // traffic ~ 2x one copy of each matrix (vs 4x if everything were
  // broadcast). Verify the slicing keeps traffic near the lower bound.
  const index_t n = 64, k = 64, m = 64;
  Array2<double> a(n, k, 1.0), bt(m, k, 2.0);
  const auto matrix_bytes = static_cast<std::int64_t>(n * k * sizeof(double));

  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] {
      return map(core::outerproduct(core::rows(a), core::rows(bt)),
                 [](const auto& uv) { return uv.first[0] + uv.second[0]; });
    };
    (void)build_array2(comm, make);
  });
  ASSERT_TRUE(res.ok) << res.error;
  // 3 remote blocks get (n/2 + m/2) rows = 3 * matrix_bytes/2 of input +
  // ~1 matrix of result blocks coming back (3/4 of cells remote).
  EXPECT_LT(res.total_stats.bytes_sent,
            3 * matrix_bytes / 2 + matrix_bytes + 65536);
}

TEST(DistSum, ManyNodesWithTinyInputStillCorrect) {
  // More nodes than elements: some chunks are empty.
  Array1<double> xs(0, {1.0, 2.0, 3.0});
  double got = 0;
  auto res = net::Cluster::run(8, [&](net::Comm& comm) {
    NodeRuntime node(1);
    auto make = [&] { return from_array(xs); };
    double r = sum(comm, make);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_DOUBLE_EQ(got, 6.0);
}

TEST(DistMinMaxAvg, MatchSequentialConsumers) {
  auto xs = random_array(4321, 77);
  double ref_min = xs[0], ref_max = xs[0], ref_sum = 0;
  for (index_t i = 0; i < xs.size(); ++i) {
    ref_min = std::min(ref_min, xs[i]);
    ref_max = std::max(ref_max, xs[i]);
    ref_sum += xs[i];
  }
  double got_min = 0, got_max = 0, got_avg = 0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] { return core::par(from_array(xs)); };
    double mn = minimum(comm, make);
    double mx = maximum(comm, make);
    double av = average(comm, make);
    if (comm.rank() == 0) {
      got_min = mn;
      got_max = mx;
      got_avg = av;
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_DOUBLE_EQ(got_min, ref_min);
  EXPECT_DOUBLE_EQ(got_max, ref_max);
  EXPECT_NEAR(got_avg, ref_sum / static_cast<double>(xs.size()), 1e-12);
}

TEST(DistMinMaxAvg, MoreNodesThanElements) {
  Array1<double> xs(0, {3.0, 1.0});
  double got = 0;
  auto res = net::Cluster::run(6, [&](net::Comm& comm) {
    NodeRuntime node(1);
    double r = minimum(comm, [&] { return core::par(from_array(xs)); });
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_DOUBLE_EQ(got, 1.0);
}

// Parameterized: the full pipeline at several node counts and shapes.
class DistWidth : public ::testing::TestWithParam<int> {};

TEST_P(DistWidth, FilteredTriangularCountMatchesClosedForm) {
  const int nodes = GetParam();
  const index_t n = 60;
  index_t got = -1;
  auto res = net::Cluster::run(nodes, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] {
      return core::concat_map(core::range(0, n), [n](index_t i) {
        return core::range(i + 1, n);
      });
    };
    index_t r = count(comm, make);
    if (comm.rank() == 0) got = r;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got, n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Nodes, DistWidth, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace triolet::dist
