// Unit tests for src/support: RNG determinism and distributions, timing
// statistics, and the table/chart reporters.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

namespace triolet {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformIsInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BelowStaysBelow) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.below(17), 17u);
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NormalHasUnitVariance) {
  Xoshiro256 rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(TimingStats, SummarizesOddCount) {
  auto st = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_DOUBLE_EQ(st.median, 2.0);
  EXPECT_DOUBLE_EQ(st.max, 3.0);
  EXPECT_DOUBLE_EQ(st.mean, 2.0);
  EXPECT_EQ(st.samples, 3);
}

TEST(TimingStats, SummarizesEvenCount) {
  auto st = summarize({4.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(st.median, 2.5);
}

TEST(TimingStats, TimeFnRunsRequestedRepeats) {
  int calls = 0;
  auto st = time_fn([&] { ++calls; }, 4, 2);
  EXPECT_EQ(calls, 6);  // 2 warmups + 4 timed
  EXPECT_EQ(st.samples, 4);
  EXPECT_GE(st.min, 0.0);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(sw.nanos(), 0);
  EXPECT_GE(sw.seconds(), 0.0);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
}

TEST(AsciiChart, RendersAllSeriesGlyphs) {
  AsciiChart chart(40, 10);
  chart.add({"linear", 'L', {1, 2, 4}, {1, 2, 4}});
  chart.add({"flat", 'F', {1, 2, 4}, {1, 1, 1}});
  std::string s = chart.str();
  EXPECT_NE(s.find('L'), std::string::npos);
  EXPECT_NE(s.find('F'), std::string::npos);
  EXPECT_NE(s.find("legend"), std::string::npos);
}

TEST(AsciiChart, SkipsNaNPoints) {
  AsciiChart chart(40, 10);
  chart.add({"eden", 'E', {1, 2}, {1.0, std::nan("")}});
  std::string s = chart.str();  // must not crash; NaN point absent
  EXPECT_NE(s.find('E'), std::string::npos);
}

}  // namespace
}  // namespace triolet
