// Tests for the Triolet core library: the four iterator constructors, the
// Figure-2 skeleton algebra (map/zip/filter/concat_map and their shape
// rules), consumers (sum/reduce/count/histograms/builders), hint-driven
// threaded execution, slicing/partitioning of fused loops, and closure
// serialization of distributable iterators.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/triolet.hpp"
#include "serial/serialize.hpp"
#include "support/rng.hpp"

namespace triolet::core {
namespace {

Array1<double> random_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-10.0, 10.0);
  return a;
}

// -- constructor shapes (the Figure 2 typing rules) ----------------------------

TEST(Shapes, RangeIsIdxFlat) {
  auto it = range(0, 10);
  static_assert(decltype(it)::kKind == IterKind::kIdxFlat);
  EXPECT_EQ(it.size(), 10);
}

TEST(Shapes, MapPreservesConstructor) {
  auto a = map(range(0, 5), [](index_t i) { return i * 2; });
  static_assert(decltype(a)::kKind == IterKind::kIdxFlat);
  auto b = map(filter(range(0, 5), [](index_t) { return true; }),
               [](index_t i) { return i; });
  static_assert(decltype(b)::kKind == IterKind::kIdxNest);
}

TEST(Shapes, ZipOfFlatIndexersStaysIndexed) {
  auto z = zip(range(0, 5), range(10, 15));
  static_assert(decltype(z)::kKind == IterKind::kIdxFlat);
}

TEST(Shapes, ZipWithIrregularSideFallsBackToStepper) {
  auto f = filter(range(0, 5), [](index_t i) { return i % 2 == 0; });
  auto z = zip(f, range(0, 5));
  static_assert(decltype(z)::kKind == IterKind::kStepFlat);
}

TEST(Shapes, FilterOnIdxFlatAddsOneNestingLevel) {
  auto f = filter(range(0, 5), [](index_t i) { return i > 2; });
  static_assert(decltype(f)::kKind == IterKind::kIdxNest);
  EXPECT_EQ(f.size(), 5);  // outer tasks unchanged: indices not reassigned
}

TEST(Shapes, ConcatMapOnIdxFlatAddsOneNestingLevel) {
  auto c = concat_map(range(0, 4), [](index_t i) { return range(0, i); });
  static_assert(decltype(c)::kKind == IterKind::kIdxNest);
}

TEST(Shapes, FilterOnStepperStaysStepper) {
  auto s = zip(filter(range(0, 5), [](index_t) { return true; }), range(0, 5));
  auto f = filter(s, [](const auto&) { return true; });
  static_assert(decltype(f)::kKind == IterKind::kStepFlat);
}

// -- sequential semantics --------------------------------------------------------

TEST(Consume, SumOfRange) {
  EXPECT_EQ(sum(range(0, 100)), 4950);
  EXPECT_EQ(sum(range(5, 5)), 0);
}

TEST(Consume, MapThenSumFusesToElementwiseLoop) {
  auto xs = random_array(1000, 1);
  double manual = 0;
  for (index_t i = 0; i < 1000; ++i) manual += xs[i] * xs[i];
  auto it = map(from_array(xs), [](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(sum(it), manual);
}

TEST(Consume, DotProductExample) {
  // The paper's §2 dot product: sum(x*y for (x,y) in zip(xs, ys)).
  auto xs = random_array(513, 2);
  auto ys = random_array(513, 3);
  double manual = 0;
  for (index_t i = 0; i < 513; ++i) manual += xs[i] * ys[i];
  auto dot = sum(map(zip(from_array(xs), from_array(ys)),
                     [](const auto& p) { return p.first * p.second; }));
  EXPECT_DOUBLE_EQ(dot, manual);
}

TEST(Consume, SumOfFilterPaperExample) {
  // §3.2: xs = [1, -2, -4, 1, 3, 4]; positives sum to 9.
  Array1<int> xs(0, {1, -2, -4, 1, 3, 4});
  auto pos = filter(from_array(xs), [](int x) { return x > 0; });
  EXPECT_EQ(sum(pos), 9);
  EXPECT_EQ(count(pos), 4);
}

TEST(Consume, Zip3Triples) {
  Array1<double> x(0, {1, 2}), y(0, {10, 20}), z(0, {100, 200});
  auto it = map(zip3(from_array(x), from_array(y), from_array(z)),
                [](const auto& t) {
                  auto [a, b, c] = t;
                  return a + b + c;
                });
  EXPECT_DOUBLE_EQ(sum(it), 111.0 + 222.0);
}

TEST(Consume, ConcatMapTriangularCount) {
  // tpacf's pattern: all unique pairs (i, j), j > i, of an n-element set.
  const index_t n = 20;
  auto pairs = concat_map(range(0, n),
                          [n](index_t i) { return range(i + 1, n); });
  EXPECT_EQ(count(pairs), n * (n - 1) / 2);
}

TEST(Consume, NestedFilterInsideConcatMap) {
  // Filter distributes through nesting: keep even j from each inner range.
  auto nested = concat_map(range(0, 6), [](index_t i) { return range(0, i); });
  auto evens = filter(nested, [](index_t j) { return j % 2 == 0; });
  // inner contents: i=0:[] 1:[0] 2:[0] 3:[0,2] 4:[0,2] 5:[0,2,4]
  EXPECT_EQ(count(evens), 1 + 1 + 2 + 2 + 3);
  EXPECT_EQ(sum(evens), 0 + 0 + 2 + 2 + (2 + 4));
}

TEST(Consume, MapOverNestedIterator) {
  auto nested = concat_map(range(0, 4), [](index_t i) { return range(0, i); });
  auto doubled = map(nested, [](index_t j) { return j * 10; });
  EXPECT_EQ(sum(doubled), 10 * (0 + 0 + 1 + 0 + 1 + 2));
}

TEST(Consume, ToVectorPreservesCanonicalOrder) {
  auto nested = concat_map(range(0, 4), [](index_t i) { return range(0, i); });
  auto v = to_vector(nested);
  EXPECT_EQ(v, (std::vector<index_t>{0, 0, 1, 0, 1, 2}));
}

TEST(Consume, ZipStopsAtShorterSide) {
  auto z = zip(range(0, 3), range(0, 10));
  EXPECT_EQ(count(z), 3);
  // Stepper-side zip also truncates.
  auto f = filter(range(0, 10), [](index_t i) { return i < 3; });
  auto zs = zip(f, range(100, 200));
  auto v = to_vector(zs);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].first, 0);
  EXPECT_EQ(v[0].second, 100);
  EXPECT_EQ(v[2].second, 102);
}

TEST(Consume, ReduceWithNonTrivialIdentity) {
  auto it = map(range(1, 6), [](index_t i) { return i; });
  auto product = reduce(it, index_t{1},
                        [](index_t a, index_t b) { return a * b; });
  EXPECT_EQ(product, 120);
}

TEST(Consume, IndicesOverDim2VisitsWholeBox) {
  auto it = indices(Dim2{0, 3, 0, 4});
  EXPECT_EQ(count(it), 12);
  auto s = sum(map(it, [](Index2 i) { return i.y * 10 + i.x; }));
  index_t manual = 0;
  for (index_t y = 0; y < 3; ++y)
    for (index_t x = 0; x < 4; ++x) manual += y * 10 + x;
  EXPECT_EQ(s, manual);
}

// -- histograms -------------------------------------------------------------------

TEST(Histogram, CountsBins) {
  Array1<index_t> data(0, {0, 1, 1, 2, 2, 2, 4});
  auto h = histogram(5, from_array(data));
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(h[2], 3);
  EXPECT_EQ(h[3], 0);
  EXPECT_EQ(h[4], 1);
}

TEST(Histogram, ParallelMatchesSequential) {
  Xoshiro256 rng(5);
  Array1<index_t> data(20000);
  for (index_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<index_t>(rng.below(32));
  auto hs = histogram(32, from_array(data));
  auto hp = histogram(32, localpar(from_array(data)));
  EXPECT_EQ(hs, hp);
}

TEST(Histogram, OfNestedIteratorCountsInnerElements) {
  auto nested = concat_map(range(0, 10), [](index_t i) { return range(0, i); });
  auto h = histogram(10, nested);
  // value j appears once per i > j  ->  9 - j times.
  for (index_t j = 0; j < 10; ++j) EXPECT_EQ(h[j], 9 - j);
}

TEST(FloatHistogram, AccumulatesWeights) {
  auto it = map(range(0, 100), [](index_t i) {
    return std::pair<index_t, double>(i % 4, 0.5);
  });
  auto h = float_histogram<double>(4, it);
  for (index_t b = 0; b < 4; ++b) EXPECT_DOUBLE_EQ(h[b], 12.5);
}

TEST(FloatHistogram, ParallelMatchesSequentialWithinTolerance) {
  Xoshiro256 rng(6);
  Array1<double> w(50000);
  for (index_t i = 0; i < w.size(); ++i) w[i] = rng.uniform();
  auto make = [&](ParHint h) {
    auto it = map(from_array(w), [](double x) {
      return std::pair<index_t, double>(static_cast<index_t>(x * 16), x);
    });
    return float_histogram<double>(16, with_hint(it, h));
  };
  auto hs = make(ParHint::kSeq);
  auto hp = make(ParHint::kLocal);
  for (index_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(hp[b], hs[b], 1e-9 * std::max(1.0, hs[b]));
  }
}

// -- hint-driven threading ---------------------------------------------------------

TEST(Hints, DefaultIsSeqAndParSetsDist) {
  auto it = range(0, 10);
  EXPECT_EQ(it.hint, ParHint::kSeq);
  EXPECT_EQ(par(it).hint, ParHint::kDist);
  EXPECT_EQ(localpar(it).hint, ParHint::kLocal);
  EXPECT_EQ(unpar(par(it)).hint, ParHint::kSeq);
}

TEST(Hints, SurviveMapFilterConcatMap) {
  auto it = localpar(range(0, 10));
  EXPECT_EQ(map(it, [](index_t i) { return i; }).hint, ParHint::kLocal);
  EXPECT_EQ(filter(it, [](index_t) { return true; }).hint, ParHint::kLocal);
  EXPECT_EQ(concat_map(it, [](index_t i) { return range(0, i); }).hint,
            ParHint::kLocal);
}

TEST(Hints, ZipMergesHints) {
  auto z = zip(par(range(0, 5)), range(0, 5));
  EXPECT_EQ(z.hint, ParHint::kDist);
}

TEST(Hints, LocalparSumMatchesSeq) {
  auto xs = random_array(30000, 7);
  auto seq_sum = sum(map(from_array(xs), [](double x) { return x * 0.5; }));
  auto par_sum =
      sum(map(localpar(from_array(xs)), [](double x) { return x * 0.5; }));
  EXPECT_NEAR(par_sum, seq_sum, 1e-9 * std::abs(seq_sum));
}

TEST(Hints, LocalparNestedIteratorParallelizesOuter) {
  const index_t n = 200;
  auto pairs = localpar(
      concat_map(range(0, n), [n](index_t i) { return range(i + 1, n); }));
  EXPECT_EQ(count(pairs), n * (n - 1) / 2);
}

TEST(Hints, LocalparFilteredSumMatchesSeq) {
  auto xs = random_array(10000, 8);
  auto make = [&](ParHint h) {
    auto f = filter(from_array(xs), [](double x) { return x > 0; });
    return sum(with_hint(f, h));
  };
  EXPECT_NEAR(make(ParHint::kLocal), make(ParHint::kSeq), 1e-9);
}

// -- materialization -----------------------------------------------------------------

TEST(Build, Array1FromMappedRange) {
  auto out = build_array1(map(range(0, 8), [](index_t i) { return i * i; }));
  ASSERT_EQ(out.size(), 8);
  for (index_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Build, Array1KeepsDomainBase) {
  auto out = build_array1(map(range(10, 15), [](index_t i) { return i; }));
  EXPECT_EQ(out.lo(), 10);
  EXPECT_EQ(out[12], 12);
}

TEST(Build, Array1ParallelMatchesSeq) {
  auto mk = [](ParHint h) {
    return build_array1(
        with_hint(map(range(0, 5000), [](index_t i) { return 3 * i + 1; }), h));
  };
  EXPECT_EQ(mk(ParHint::kSeq), mk(ParHint::kLocal));
}

TEST(Build, Array2Transpose) {
  // §3.3's transposition comprehension:
  // [A[x,y] for (y,x) in arrayRange(h, w)]
  Array2<int> a(2, 3);
  int v = 0;
  for (index_t y = 0; y < 2; ++y)
    for (index_t x = 0; x < 3; ++x) a(y, x) = v++;
  auto t_iter = map(array_range(3, 2), [&a](Index2 i) { return a(i.x, i.y); });
  auto t = build_array2(t_iter);
  EXPECT_EQ(t, transpose(a));
}

TEST(Build, Block2CoversSubDomain) {
  auto it = map(indices(Dim2{2, 4, 3, 6}),
                [](Index2 i) { return i.y * 100 + i.x; });
  auto block = build_block2(it);
  EXPECT_EQ(block.dom, (Dim2{2, 4, 3, 6}));
  EXPECT_EQ(block.at(Index2{3, 5}), 305);
}

// -- rows / outerproduct / matmul -----------------------------------------------------

TEST(MultiDim, RowsYieldsBorrowedSpans) {
  Array2<double> a(3, 4, 2.0);
  auto r = rows(a);
  EXPECT_EQ(r.size(), 3);
  auto row1 = r.at(1);
  EXPECT_EQ(row1.size(), 4u);
  EXPECT_DOUBLE_EQ(row1[2], 2.0);
}

TEST(MultiDim, OuterProductMatmulMatchesReference) {
  // The paper §2 two-line sgemm (without the alpha scale):
  //   zipped = outerproduct(rows(A), rows(BT))
  //   AB = [dot(u, v) for (u, v) in zipped]
  const index_t n = 16, k = 8, m = 12;
  Xoshiro256 rng(11);
  Array2<double> a(n, k), b(k, m);
  for (index_t y = 0; y < n; ++y)
    for (index_t x = 0; x < k; ++x) a(y, x) = rng.uniform(-1, 1);
  for (index_t y = 0; y < k; ++y)
    for (index_t x = 0; x < m; ++x) b(y, x) = rng.uniform(-1, 1);
  Array2<double> bt = transpose(b);

  auto zipped = outerproduct(rows(a), rows(bt));
  auto prod = build_array2(map(zipped, [](const auto& uv) {
    double acc = 0;
    for (std::size_t i = 0; i < uv.first.size(); ++i)
      acc += uv.first[i] * uv.second[i];
    return acc;
  }));

  for (index_t y = 0; y < n; ++y) {
    for (index_t x = 0; x < m; ++x) {
      double ref = 0;
      for (index_t i = 0; i < k; ++i) ref += a(y, i) * b(i, x);
      ASSERT_NEAR(prod(y, x), ref, 1e-12) << y << "," << x;
    }
  }
}

// -- slicing / partitioning (the distributed-execution invariants) ---------------------

TEST(Slicing, FlatIteratorSliceSumsToWhole) {
  auto xs = random_array(1000, 20);
  auto it = map(from_array(xs), [](double x) { return 2.0 * x; });
  double whole = sum(it);
  double parts = 0;
  for (const auto& chunk : split_blocks(it.domain(), 7)) {
    parts += sum(it.slice(chunk));
  }
  EXPECT_NEAR(parts, whole, 1e-9);
}

TEST(Slicing, SliceCarriesOnlyItsSubarray) {
  auto xs = random_array(1000, 21);
  auto it = from_array(xs);
  auto sl = it.slice(Seq{100, 200});
  EXPECT_EQ(sl.ix.src.size(), 100);
  EXPECT_EQ(sl.ix.src.lo(), 100);
  // Wire size shrinks proportionally (plus fixed header).
  EXPECT_LT(serial::wire_size(sl), serial::wire_size(it) / 5);
}

TEST(Slicing, ZippedSliceSlicesBothSources) {
  auto xs = random_array(100, 22);
  auto ys = random_array(100, 23);
  auto z = zip(from_array(xs), from_array(ys));
  auto sl = z.slice(Seq{10, 20});
  EXPECT_EQ(sl.ix.src.first.size(), 10);
  EXPECT_EQ(sl.ix.src.second.size(), 10);
  double manual = 0;
  for (index_t i = 10; i < 20; ++i) manual += xs[i] * ys[i];
  EXPECT_DOUBLE_EQ(
      sum(map(sl, [](const auto& p) { return p.first * p.second; })), manual);
}

TEST(Slicing, NestedIteratorSlicesByOuterTask) {
  // filter is sliceable by outer index: each chunk reprocesses only its
  // own inputs ("get each intermediate result generated from the nth
  // input", §2).
  auto xs = random_array(500, 24);
  auto f = filter(from_array(xs), [](double x) { return x > 0; });
  double whole = sum(f);
  double parts = 0;
  for (const auto& chunk : split_blocks(Seq{0, 500}, 4)) {
    parts += sum(f.slice(chunk));
  }
  EXPECT_NEAR(parts, whole, 1e-9);
}

TEST(Slicing, OuterProductBlockGetsOnlyItsRows) {
  Array2<double> a(16, 4, 1.0), bt(12, 4, 2.0);
  auto z = outerproduct(rows(a), rows(bt));
  auto block = z.slice(Dim2{4, 8, 3, 9});
  EXPECT_EQ(block.ix.src.a.rows(), 4);   // rows 4..8 of A
  EXPECT_EQ(block.ix.src.a.row_lo(), 4);
  EXPECT_EQ(block.ix.src.b.rows(), 6);   // rows 3..9 of BT
  EXPECT_EQ(block.ix.src.b.row_lo(), 3);
  auto uv = block.at(Index2{5, 7});
  EXPECT_DOUBLE_EQ(uv.first[0], 1.0);
  EXPECT_DOUBLE_EQ(uv.second[0], 2.0);
}

TEST(Slicing, SlicedIteratorSerializesAndRuns) {
  // The full distributed round trip: slice -> serialize -> deserialize ->
  // consume on the "remote" side, with the fused map still applied.
  auto xs = random_array(300, 25);
  const double scale = 1.5;  // captured by value: crosses the wire
  auto it = map(from_array(xs), [scale](double x) { return scale * x; });
  auto sl = it.slice(Seq{50, 150});

  auto bytes = serial::to_bytes(sl);
  auto remote = serial::from_bytes<decltype(sl)>(bytes);

  EXPECT_DOUBLE_EQ(sum(remote), sum(sl));
  EXPECT_EQ(remote.domain(), (Seq{50, 150}));
}

TEST(Slicing, SlicedNestedIteratorSerializesAndRuns) {
  auto xs = random_array(300, 26);
  auto f = filter(from_array(xs), [](double x) { return x < 0; });
  auto sl = f.slice(Seq{100, 250});
  auto remote = serial::from_bytes<decltype(sl)>(serial::to_bytes(sl));
  EXPECT_DOUBLE_EQ(sum(remote), sum(sl));
}

// -- encodings and conversions (Figure 1) ------------------------------------------

TEST(Encodings, FoldAccumulatesInOrder) {
  auto f = to_fold(range(0, 4));
  auto s = f.fold([](index_t v, std::string acc) {
    return acc + std::to_string(v);
  }, std::string{});
  EXPECT_EQ(s, "0123");
}

TEST(Encodings, CollectorSupportsMutation) {
  std::vector<index_t> out;
  to_collector(filter(range(0, 10), [](index_t i) { return i % 3 == 0; }))
      .collect([&](index_t v) { out.push_back(v); });
  EXPECT_EQ(out, (std::vector<index_t>{0, 3, 6, 9}));
}

TEST(Encodings, ToStepEnumeratesSameElementsAsVisit) {
  auto it = concat_map(range(0, 5), [](index_t i) { return range(0, i); });
  std::vector<index_t> via_visit;
  visit(it, [&](index_t v) { via_visit.push_back(v); });
  std::vector<index_t> via_step;
  auto sf = to_step(it);
  auto s = sf.make();
  drain(s, [&](index_t v) { via_step.push_back(v); });
  EXPECT_EQ(via_step, via_visit);
}

// -- property sweeps ------------------------------------------------------------------

class FusionProperty : public ::testing::TestWithParam<int> {};

TEST_P(FusionProperty, FilterSumMatchesHandLoop) {
  auto xs = random_array(777, static_cast<std::uint64_t>(GetParam()));
  double threshold = (GetParam() % 5) - 2.0;
  auto it = filter(map(from_array(xs), [](double x) { return x * 3.0; }),
                   [threshold](double x) { return x > threshold; });
  double manual = 0;
  for (index_t i = 0; i < xs.size(); ++i) {
    double v = xs[i] * 3.0;
    if (v > threshold) manual += v;
  }
  EXPECT_DOUBLE_EQ(sum(it), manual);
}

TEST_P(FusionProperty, SliceSumInvariantHoldsForAnyPartition) {
  auto xs = random_array(512, static_cast<std::uint64_t>(GetParam()) + 100);
  auto it = map(from_array(xs), [](double x) { return x + 1.0; });
  double whole = sum(it);
  int parts = 1 + GetParam() % 9;
  double acc = 0;
  for (const auto& chunk : split_blocks(it.domain(), parts)) {
    acc += sum(it.slice(chunk));
  }
  EXPECT_NEAR(acc, whole, 1e-9);
}

TEST_P(FusionProperty, CountOfConcatMapMatchesClosedForm) {
  index_t n = 10 + GetParam() * 13;
  auto tri = concat_map(range(0, n), [n](index_t i) { return range(i + 1, n); });
  EXPECT_EQ(count(tri), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace triolet::core
