// Tests for the cluster simulator: trace replay semantics (compute, message
// latency/bandwidth, NIC serialization, FIFO matching, deadlock detection)
// and the intra-node schedulers and straggler model.

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "net/comm.hpp"
#include "sim/network_model.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"

namespace triolet::sim {
namespace {

NetworkModel simple_net() {
  NetworkModel n;
  n.latency = 1.0;        // big round numbers: results checkable by hand
  n.bandwidth = 100.0;    // bytes per second
  n.fixed_overhead = 0.0;
  n.copy_cost_per_byte = 0.0;
  return n;
}

TEST(Simulate, ComputeOnlyMakespanIsMaxOverRanks) {
  SimTrace t(3);
  t.compute(0, 1.0);
  t.compute(1, 5.0);
  t.compute(2, 2.0);
  auto r = simulate(t, simple_net());
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.rank_finish[0], 1.0);
  EXPECT_DOUBLE_EQ(r.rank_finish[1], 5.0);
}

TEST(Simulate, MessageArrivesAfterLatencyPlusTransfer) {
  SimTrace t(2);
  t.send(0, 1, 200);  // 1s latency + 2s transfer
  t.recv(1, 0);
  auto r = simulate(t, simple_net());
  EXPECT_DOUBLE_EQ(r.rank_finish[1], 3.0);
  EXPECT_DOUBLE_EQ(r.total_bytes, 200.0);
}

TEST(Simulate, ReceiverWaitsForComputeToFinishFirst) {
  SimTrace t(2);
  t.send(0, 1, 100);   // arrives at t=2
  t.compute(1, 10.0);  // receiver busy until t=10
  t.recv(1, 0);
  auto r = simulate(t, simple_net());
  EXPECT_DOUBLE_EQ(r.rank_finish[1], 10.0);  // message already waiting
}

TEST(Simulate, SenderNicSerializesBackToBackMessages) {
  // Two 200-byte messages from rank 0: the second transfer cannot start
  // until the first leaves the NIC, so arrivals are 3s and 5s.
  SimTrace t(3);
  t.send(0, 1, 200);
  t.send(0, 2, 200);
  t.recv(1, 0);
  t.recv(2, 0);
  auto r = simulate(t, simple_net());
  EXPECT_DOUBLE_EQ(r.rank_finish[1], 3.0);
  EXPECT_DOUBLE_EQ(r.rank_finish[2], 5.0);
}

TEST(Simulate, SendBusyCostsChargeTheSender) {
  NetworkModel n = simple_net();
  n.fixed_overhead = 0.5;
  n.copy_cost_per_byte = 0.01;
  n.alloc_multiplier = 2.0;
  // Neutralize the protocol split so this test isolates the endpoint-cost
  // accounting (rendezvous: single copy pass, and no handshake charge).
  n.eager_threshold_bytes = 0;
  n.rendezvous_handshake = 0.0;
  SimTrace t(2);
  t.send(0, 1, 100);  // sender busy: 0.5 + 100*0.01*2 = 2.5
  t.recv(1, 0);
  auto r = simulate(t, n);
  EXPECT_DOUBLE_EQ(r.rank_finish[0], 2.5);
  // arrival = 2.5 + 1 latency + 1 transfer; recv busy = 0.5 + 100*0.01*2
  // (deserialization allocates, so the allocator model applies there too).
  EXPECT_DOUBLE_EQ(r.rank_finish[1], 4.5 + 2.5);
}

TEST(Simulate, FifoMatchingBetweenPairs) {
  SimTrace t(2);
  t.send(0, 1, 100);
  t.compute(0, 50.0);
  t.send(0, 1, 100);
  t.recv(1, 0);  // must match the first (t=2), not the second
  auto r = simulate(t, simple_net());
  EXPECT_DOUBLE_EQ(r.rank_finish[1], 2.0);
}

TEST(Simulate, RecvBeforeSendInProgramOrderStillResolves) {
  // Rank 1 posts its recv "first"; the fixpoint loop must complete it once
  // rank 0's send is simulated.
  SimTrace t(2);
  t.recv(1, 0);
  t.compute(0, 7.0);
  t.send(0, 1, 100);
  auto r = simulate(t, simple_net());
  EXPECT_DOUBLE_EQ(r.rank_finish[1], 9.0);
}

TEST(Simulate, PingPongAccumulatesLatency) {
  SimTrace t(2);
  t.send(0, 1, 0);
  t.recv(1, 0);
  t.send(1, 0, 0);
  t.recv(0, 1);
  auto r = simulate(t, simple_net());
  EXPECT_DOUBLE_EQ(r.rank_finish[0], 2.0);  // two 1s-latency hops
}

TEST(SimulateDeath, DeadlockIsDetected) {
  SimTrace t(2);
  t.recv(0, 1);
  t.recv(1, 0);
  EXPECT_DEATH((void)simulate(t, simple_net()), "deadlock");
}

TEST(Simulate, MasterBottleneckGrowsWithWorkers) {
  // A flat farm: master sends 1000 bytes to each worker. With NIC
  // serialization, the last worker's arrival grows linearly — the Eden
  // master bottleneck the paper's two-level distribution avoids.
  auto last_arrival = [&](int workers) {
    SimTrace t(workers + 1);
    for (int w = 1; w <= workers; ++w) t.send(0, w, 1000);
    for (int w = 1; w <= workers; ++w) t.recv(w, 0);
    return simulate(t, simple_net()).makespan;
  };
  double a4 = last_arrival(4);
  double a8 = last_arrival(8);
  EXPECT_GT(a8, a4 + 30.0);  // each extra message adds 10s transfer
}

TEST(Schedulers, SingleWorkerIsTotalWork) {
  std::vector<double> tasks{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(makespan_dynamic(tasks, 1), 10.0);
  EXPECT_DOUBLE_EQ(makespan_static_block(tasks, 1), 10.0);
  EXPECT_DOUBLE_EQ(makespan_lpt(tasks, 1), 10.0);
  EXPECT_DOUBLE_EQ(total_work(tasks), 10.0);
}

TEST(Schedulers, DynamicBalancesUnevenTasks) {
  // One long task plus many short ones: dynamic overlaps them.
  std::vector<double> tasks{8, 1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(makespan_dynamic(tasks, 2), 8.0);
  // Static contiguous blocks put the long task plus neighbors together.
  EXPECT_GT(makespan_static_block(tasks, 2), 8.0 + 2.0);
}

TEST(Schedulers, MakespanBounds) {
  // List scheduling is within 2x of the trivial lower bounds.
  std::vector<double> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back(1.0 + (i % 7));
  for (int w : {1, 2, 4, 16}) {
    double m = makespan_dynamic(tasks, w);
    double lower = std::max(total_work(tasks) / w, 7.0);
    EXPECT_GE(m, lower);
    EXPECT_LE(m, 2.0 * lower);
  }
}

TEST(Schedulers, LptNeverWorseThanArrivalOrder) {
  std::vector<double> tasks{9, 1, 1, 7, 2, 2, 5, 3};
  for (int w : {2, 3, 4}) {
    EXPECT_LE(makespan_lpt(tasks, w), makespan_dynamic(tasks, w) + 1e-12);
  }
}

TEST(Schedulers, CostVariationMeasuresSkew) {
  // Degenerate profiles carry no signal.
  EXPECT_DOUBLE_EQ(cost_variation({}), 0.0);
  EXPECT_DOUBLE_EQ(cost_variation({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(cost_variation({2.0, 2.0, 2.0, 2.0}), 0.0);
  // {1,1,1,9}: mean 3, population sd sqrt(12) -> cv = 2/sqrt(3).
  EXPECT_NEAR(cost_variation({1, 1, 1, 9}), 2.0 / std::sqrt(3.0), 1e-12);
  // Scale invariance: cv is a shape property, not a magnitude.
  EXPECT_NEAR(cost_variation({10, 10, 10, 90}),
              cost_variation({1, 1, 1, 9}), 1e-12);
}

TEST(Schedulers, PowerLawAtomsRewardDemandOverStatic) {
  // The segmented-matvec shape: the jumbo segment groups cluster (sorted
  // degree order, the common CSR layout), so one worker's contiguous
  // static block absorbs most of the heavy atoms. The skew shows up in
  // cost_variation, and the same profile is exactly where static blocks
  // lose to demand claiming — the model-side statement of the bm_sparse
  // acceptance ratio.
  std::vector<double> atoms(128);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    atoms[i] = (i < 8) ? 20e-3 : 0.5e-3;
  }
  EXPECT_GT(cost_variation(atoms), 1.0);
  const double dyn = makespan_dynamic(atoms, 8);
  const double sta = makespan_static_block(atoms, 8);
  EXPECT_GE(sta / dyn, 1.4);
}

TEST(Stragglers, DisabledModelIsIdentity) {
  StragglerModel m;  // probability 0
  std::vector<double> tasks{1, 2, 3};
  EXPECT_EQ(m.apply(tasks, 1), tasks);
}

TEST(Stragglers, AreDeterministicPerSalt) {
  StragglerModel m{0.3, 4.0, 42};
  std::vector<double> tasks(100, 1.0);
  auto a = m.apply(tasks, 7);
  auto b = m.apply(tasks, 7);
  EXPECT_EQ(a, b);
  auto c = m.apply(tasks, 8);
  EXPECT_NE(a, c);
}

TEST(Stragglers, HitRateTracksProbability) {
  StragglerModel m{0.25, 4.0, 123};
  std::vector<double> tasks(10000, 1.0);
  auto out = m.apply(tasks, 1);
  int slowed = 0;
  for (double d : out) slowed += (d > 1.5);
  EXPECT_NEAR(slowed / 10000.0, 0.25, 0.03);
}

TEST(NetworkModel, AllocThresholdGatesMultiplier) {
  NetworkModel n;
  n.fixed_overhead = 0.0;
  n.copy_cost_per_byte = 1.0;
  n.alloc_multiplier = 3.0;
  n.alloc_threshold_bytes = 100;
  n.eager_threshold_bytes = 0;  // isolate the allocator gate from the
                                // eager bounce-buffer copy
  EXPECT_DOUBLE_EQ(n.send_busy(10), 10.0);    // small message: no GC cost
  EXPECT_DOUBLE_EQ(n.send_busy(100), 300.0);  // at threshold: multiplied
  EXPECT_DOUBLE_EQ(n.recv_busy(200), 600.0);
}

TEST(NetworkModel, EagerRendezvousSplit) {
  NetworkModel n;
  n.latency = 1.0;
  n.bandwidth = 1.0;  // 1 byte/s so flight is latency + bytes
  n.fixed_overhead = 0.0;
  n.copy_cost_per_byte = 1.0;
  n.eager_threshold_bytes = 100;
  n.rendezvous_handshake = 7.0;
  // Eager: double copy (staging into the bounce buffer), no handshake.
  EXPECT_TRUE(n.is_eager(100));
  EXPECT_DOUBLE_EQ(n.send_busy(100), 200.0);
  EXPECT_DOUBLE_EQ(n.flight(100), 101.0);
  // Rendezvous: single copy out of the source buffer, but the RTS/CTS
  // round trip is charged before bytes move.
  EXPECT_FALSE(n.is_eager(101));
  EXPECT_DOUBLE_EQ(n.send_busy(101), 101.0);
  EXPECT_DOUBLE_EQ(n.flight(101), 1.0 + 7.0 + 101.0);
  // With the *default* (realistic) constants the protocol switch must not
  // make a message cheaper end-to-end right at the boundary: the RTS/CTS
  // handshake costs more than the bounce-buffer copy it saves, so total
  // cost stays monotone in message size.
  NetworkModel d;
  const std::int64_t at = d.eager_threshold_bytes;
  const double eager_total = d.send_busy(at) + d.flight(at) + d.recv_busy(at);
  const double rz_total =
      d.send_busy(at + 1) + d.flight(at + 1) + d.recv_busy(at + 1);
  EXPECT_GT(rz_total, eager_total);
}

TEST(MachineConfig, TotalCores) {
  MachineConfig m;
  m.nodes = 8;
  m.cores_per_node = 16;
  EXPECT_EQ(m.total_cores(), 128);
}

// -- demand-driven (request/grant) makespan model -----------------------------

TEST(DemandMakespan, ZeroOverheadEqualsDynamic) {
  std::vector<double> tasks{3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  for (int w : {1, 2, 4, 8}) {
    EXPECT_DOUBLE_EQ(makespan_demand(tasks, w, 0.0),
                     makespan_dynamic(tasks, w));
  }
}

TEST(DemandMakespan, OverheadChargesEveryClaim) {
  // One worker runs all chunks back to back: makespan is total work plus
  // one control round trip per chunk.
  std::vector<double> tasks{1, 2, 3};
  EXPECT_DOUBLE_EQ(makespan_demand(tasks, 1, 0.5),
                   total_work(tasks) + 3 * 0.5);
}

TEST(DemandMakespan, FineGrainsPayMoreOverheadThanCoarse) {
  // The guided-vs-dynamic tradeoff in miniature: the same work split into
  // 100 chunks pays 100 round trips, split into 10 chunks only 10. With
  // enough overhead the fine split loses despite perfect balance.
  std::vector<double> fine(100, 0.01);
  std::vector<double> coarse(10, 0.1);
  const double oh = 0.05;
  EXPECT_GT(makespan_demand(fine, 4, oh), makespan_demand(coarse, 4, oh));
}

TEST(DemandMakespan, EmptyChunkListIsZero) {
  EXPECT_DOUBLE_EQ(makespan_demand({}, 4, 1.0), 0.0);
}

TEST(OverlapMakespan, ZeroOverheadEqualsDynamic) {
  std::vector<double> tasks{3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  for (int w : {1, 2, 4, 8}) {
    EXPECT_DOUBLE_EQ(makespan_overlap(tasks, w, 0.0),
                     makespan_dynamic(tasks, w));
  }
}

TEST(OverlapMakespan, HidesRoundTripBehindLongChunks) {
  // Every chunk runs at least as long as the round trip, so only the first
  // claim pays overhead: prefetched grants are always ready on time.
  std::vector<double> tasks{1, 2, 3};
  const double oh = 0.5;
  EXPECT_DOUBLE_EQ(makespan_overlap(tasks, 1, oh), oh + total_work(tasks));
}

TEST(OverlapMakespan, ShortChunksStillWaitForTheGrant) {
  // Chunks shorter than the round trip cannot hide it fully: each next
  // start is gated by the prefetched grant's arrival, not by the compute.
  std::vector<double> tasks(5, 0.01);
  const double oh = 1.0;
  EXPECT_DOUBLE_EQ(makespan_overlap(tasks, 1, oh), 5 * oh + 0.01);
}

TEST(OverlapMakespan, NeverWorseThanDemand) {
  std::vector<double> tasks;
  for (int i = 0; i < 40; ++i) tasks.push_back(0.01 * (i % 7) + 0.002);
  for (int w : {1, 2, 4, 8}) {
    for (double oh : {0.0, 0.001, 0.01, 0.1}) {
      EXPECT_LE(makespan_overlap(tasks, w, oh) - 1e-12,
                makespan_demand(tasks, w, oh))
          << "w=" << w << " oh=" << oh;
    }
  }
}

TEST(OverlapMakespan, EmptyChunkListIsZero) {
  EXPECT_DOUBLE_EQ(makespan_overlap({}, 4, 1.0), 0.0);
}

TEST(DemandMakespan, SkewedChunksBeatStaticBlocks) {
  // Triangular workload (tpacf-style): static blocks leave the last worker
  // with the heaviest block; demand claiming balances it.
  std::vector<double> tasks(64);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i] = static_cast<double>(i + 1);
  }
  const double demand = makespan_demand(tasks, 8, 0.0);
  const double stat = makespan_static_block(tasks, 8);
  EXPECT_LT(demand * 1.3, stat);
}

// -- measured-counter calibration (sim::calibrate_from) -----------------------

/// Counters of a synthetic demand-scheduled round with exactly known
/// coefficients: `items` outer units at `spi` seconds each, executed as
/// `chunks` uniform grants of `bytes_per_grant` payload, every claim first
/// waiting the full `rt` round trip.
net::CommStats synthetic_round(std::int64_t items, std::int64_t chunks,
                               double spi, double rt,
                               std::int64_t bytes_per_grant) {
  net::CommStats s;
  s.sched.items_executed = items;
  s.sched.chunks_executed = chunks;
  s.sched.busy_seconds = static_cast<double>(items) * spi;
  s.sched.steal_waits = chunks;
  s.sched.idle_seconds = static_cast<double>(chunks) * rt;
  s.sched.grants_received = chunks;
  s.sched.grant_payload_bytes = chunks * bytes_per_grant;
  s.sched.granted_items = items;
  return s;
}

TEST(Calibration, RecoversCoefficientsFromSyntheticCounters) {
  const double spi = 1e-6, rt = 1e-3;
  auto s = synthetic_round(8000, 80, spi, rt, 1000);
  s.pool.tasks_executed = 4 * 8000;

  const Calibration c = calibrate_from(s, s.sched, s.pool);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.items, 8000);
  EXPECT_DOUBLE_EQ(c.seconds_per_item, spi);
  EXPECT_DOUBLE_EQ(c.round_trip_seconds, rt);
  EXPECT_DOUBLE_EQ(c.grant_bytes_per_item, 10.0);  // 80 * 1000 / 8000
  EXPECT_DOUBLE_EQ(c.tasks_per_item, 4.0);
  // No measured traffic: the per-byte coefficient stays at its default.
  EXPECT_DOUBLE_EQ(c.seconds_per_grant_byte, kDefaultSecondsPerGrantByte);
  // Mean chunk is 1e-4 s, so the service share is half that (below rt) and
  // the wire latency is the remainder of the round trip.
  EXPECT_DOUBLE_EQ(c.service_delay_seconds, 0.5e-4);
  EXPECT_DOUBLE_EQ(c.latency_seconds,
                   rt - 0.5e-4 - 1000.0 * c.seconds_per_grant_byte);
}

TEST(Calibration, ByteCoefficientTracksZeroCopyShare) {
  net::CommStats s;
  s.sched.items_executed = 1;
  s.sched.busy_seconds = 1.0;
  s.bytes_sent = 1000;

  s.bytes_copied = 0;  // all zero-copy: one pass over the payload
  EXPECT_DOUBLE_EQ(calibrate_from(s, s.sched, s.pool).seconds_per_grant_byte,
                   0.25e-9);
  s.bytes_copied = 1000;  // all staged: two passes
  EXPECT_DOUBLE_EQ(calibrate_from(s, s.sched, s.pool).seconds_per_grant_byte,
                   0.5e-9);
  s.bytes_copied = 500;  // interpolates
  EXPECT_DOUBLE_EQ(calibrate_from(s, s.sched, s.pool).seconds_per_grant_byte,
                   0.375e-9);
}

TEST(Calibration, StaticRoundLeavesLatencyFieldsUnset) {
  // A kStatic round has no request/grant traffic: compute and byte
  // coefficients are still usable, the latency decomposition is not (the
  // tuner carries the previous round's figures forward).
  net::CommStats s;
  s.sched.items_executed = 500;
  s.sched.busy_seconds = 0.05;
  const Calibration c = calibrate_from(s, s.sched, s.pool);
  ASSERT_TRUE(c.valid());
  EXPECT_DOUBLE_EQ(c.seconds_per_item, 1e-4);
  EXPECT_DOUBLE_EQ(c.round_trip_seconds, 0.0);
  EXPECT_DOUBLE_EQ(c.service_delay_seconds, 0.0);
  EXPECT_DOUBLE_EQ(c.latency_seconds, 0.0);
}

TEST(Calibration, NothingMeasuredIsInvalid) {
  net::CommStats s;
  EXPECT_FALSE(calibrate_from(s, s.sched, s.pool).valid());
}

TEST(Calibration, RoundTripReproducesMeasuredMakespan) {
  // The acceptance loop in miniature: synthesize the trace of a demand
  // round with known coefficients, calibrate from its counters alone, then
  // ask the calibrated model for the makespan of the very configuration
  // that ran — it must reproduce the measured wall time.
  const std::int64_t items = 8000, chunks = 80;
  const std::int64_t bytes_per_grant = 1000;
  const double spi = 1e-6, rt = 1e-3;
  const int workers = 4;
  const double chunk_seconds = spi * 100.0;  // 100 items per chunk
  // Each worker claims 20 chunks back to back; every claim pays the full
  // round trip (no prefetch in the measurement configuration).
  const double measured_wall = 20.0 * (rt + chunk_seconds);

  const auto s = synthetic_round(items, chunks, spi, rt, bytes_per_grant);
  const Calibration c = calibrate_from(s, s.sched, s.pool);
  ASSERT_TRUE(c.valid());

  // overhead_for re-assembles latency + payload bytes + root service into
  // exactly the measured round trip.
  const double oh = c.overhead_for(static_cast<double>(bytes_per_grant),
                                   chunk_seconds, /*streaming_root=*/false);
  EXPECT_NEAR(oh, rt, 1e-12);

  std::vector<double> model_chunks(
      static_cast<std::size_t>(chunks),
      100.0 * c.seconds_per_item);
  const double predicted = makespan_demand(model_chunks, workers, oh);
  EXPECT_NEAR(predicted, measured_wall, 1e-9 * measured_wall);
}

TEST(GrantOverhead, PricesTheFullRoundTrip) {
  NetworkModel net;
  const double oh = grant_overhead(net, 1, 25);
  // Two flights plus four endpoint costs; must exceed two bare latencies
  // and stay well under a millisecond for control-sized messages.
  EXPECT_GT(oh, 2 * net.latency);
  EXPECT_LT(oh, 1e-3);
  // Bigger grants cost more (payload bytes ride the same round trip).
  EXPECT_GT(grant_overhead(net, 1, 1 << 20), oh);
}

}  // namespace
}  // namespace triolet::sim
