// Tests for the benchmark driver: the two-level and flat-farm trace
// builders must show the qualitative behaviors the figures rely on
// (speedup with cores, communication saturation, master bottleneck,
// buffer-capacity failure, prep parallelization).

#include <gtest/gtest.h>

#include "apps/driver.hpp"

namespace triolet::apps {
namespace {

MeasuredSystem uniform_system(index_t units, double unit_seconds) {
  MeasuredSystem ms;
  ms.name = "test";
  ms.unit_seconds.assign(static_cast<std::size_t>(units), unit_seconds);
  ms.input_bytes = [](index_t lo, index_t hi) { return (hi - lo) * 100; };
  return ms;
}

TEST(Driver, OneNodeOneCoreIsSequentialTime) {
  auto ms = uniform_system(128, 1e-3);
  auto pt = simulate_point(ms, 1, 1);
  EXPECT_NEAR(pt.seconds, 0.128, 1e-9);
  EXPECT_EQ(pt.cores, 1);
}

TEST(Driver, ComputeBoundWorkScalesNearLinearly) {
  auto ms = uniform_system(1024, 1e-3);  // ~1s of work, tiny messages
  double t1 = simulate_point(ms, 1, 1).seconds;
  double t16 = simulate_point(ms, 1, 16).seconds;
  double t128 = simulate_point(ms, 8, 16).seconds;
  EXPECT_NEAR(t1 / t16, 16.0, 0.5);
  EXPECT_GT(t1 / t128, 90.0);
}

TEST(Driver, HeavyMessagesCauseSaturation) {
  auto ms = uniform_system(1024, 1e-5);  // ~10ms of work
  ms.input_bytes = [](index_t, index_t) {
    return std::int64_t{20'000'000};  // 20 MB per node: 16ms on the wire
  };
  double t1 = simulate_point(ms, 1, 16).seconds;
  double t8 = simulate_point(ms, 8, 16).seconds;
  // More nodes should NOT approach 8x once transfers dominate.
  EXPECT_GT(t8, t1);
}

TEST(Driver, StaticSchedulingSuffersOnSkewedUnits) {
  MeasuredSystem dyn = uniform_system(256, 1e-4);
  // Strong front-loaded skew (like tpacf's triangular loops).
  for (std::size_t i = 0; i < 64; ++i) dyn.unit_seconds[i] = 2e-3;
  MeasuredSystem sta = dyn;
  sta.static_sched = true;
  double td = simulate_point(dyn, 1, 16).seconds;
  double ts = simulate_point(sta, 1, 16).seconds;
  EXPECT_LT(td, ts);
}

TEST(Driver, FlatFarmMasterIsABottleneck) {
  auto two = uniform_system(1024, 1e-4);
  auto flat = two;
  flat.flat = true;
  flat.input_bytes = [](index_t lo, index_t hi) { return (hi - lo) * 5000; };
  two.input_bytes = flat.input_bytes;
  double t_two = simulate_point(two, 8, 16).seconds;
  double t_flat = simulate_point(flat, 8, 16).seconds;
  // 127 worker messages through one master beats 7 node messages? Never.
  EXPECT_GT(t_flat, t_two);
}

TEST(Driver, BufferCapacityFailsLargeConfigs) {
  auto ms = uniform_system(1024, 1e-4);
  ms.flat = true;
  ms.input_bytes = [](index_t, index_t) { return std::int64_t{1'000'000}; };
  ms.buffer_capacity = 40'000'000;  // 40 workers' worth
  EXPECT_FALSE(simulate_point(ms, 1, 16).failed());   // 15 workers: fits
  EXPECT_TRUE(simulate_point(ms, 4, 16).failed());    // 63 workers: overflow
}

TEST(Driver, ParallelizablePrepShrinksWithCores) {
  auto a = uniform_system(256, 1e-5);
  a.root_prep_seconds = 0.1;
  auto b = a;
  b.prep_parallelizable = true;
  double ta = simulate_point(a, 1, 16).seconds;
  double tb = simulate_point(b, 1, 16).seconds;
  EXPECT_GT(ta, tb + 0.08);  // serial prep keeps ~0.1s, parallel ~6ms
}

TEST(Driver, AllocMultiplierChargesSender) {
  auto a = uniform_system(256, 1e-5);
  a.input_bytes = [](index_t, index_t) { return std::int64_t{10'000'000}; };
  auto b = a;
  b.net.alloc_multiplier = 4.0;
  double ta = simulate_point(a, 8, 16).seconds;
  double tb = simulate_point(b, 8, 16).seconds;
  EXPECT_GT(tb, ta);
}

TEST(Driver, StragglersSlowTheFlatFarm) {
  auto a = uniform_system(1024, 1e-4);
  a.flat = true;
  auto b = a;
  b.straggler = {0.1, 4.0, 99};
  double ta = simulate_point(a, 4, 16).seconds;
  double tb = simulate_point(b, 4, 16).seconds;
  EXPECT_GT(tb, ta);
}

TEST(Driver, StandardMachinePointsCoverPaperAxis) {
  auto pts = standard_machine_points(8, 16);
  ASSERT_FALSE(pts.empty());
  EXPECT_EQ(pts.front(), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(pts.back(), (std::pair<int, int>{8, 16}));
  // Includes full single node and multiples of 2 nodes.
  bool has_16 = false, has_128 = false;
  for (auto [n, c] : pts) {
    if (n == 1 && c == 16) has_16 = true;
    if (n * c == 128) has_128 = true;
  }
  EXPECT_TRUE(has_16);
  EXPECT_TRUE(has_128);
}

TEST(Driver, RunSeriesProducesMonotoneCores) {
  auto ms = uniform_system(128, 1e-4);
  auto series = run_series(ms, 8, 16);
  for (std::size_t i = 1; i < series.points.size(); ++i) {
    EXPECT_GT(series.points[i].cores, series.points[i - 1].cores);
  }
}

TEST(Driver, SimulationIsDeterministicForFixedMeasurements) {
  MeasuredSystem ms = uniform_system(512, 1e-4);
  for (std::size_t i = 0; i < ms.unit_seconds.size(); ++i) {
    ms.unit_seconds[i] *= 1.0 + 0.3 * static_cast<double>(i % 7);
  }
  ms.straggler = {0.05, 3.0, 42};
  ms.flat = true;
  auto a = run_series(ms, 8, 16);
  auto b = run_series(ms, 8, 16);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].seconds, b.points[i].seconds) << i;
  }
}

TEST(Driver, CyclicSchedulingBeatsBlockOnRamps) {
  MeasuredSystem blockd = uniform_system(256, 1e-4);
  for (std::size_t i = 0; i < blockd.unit_seconds.size(); ++i) {
    blockd.unit_seconds[i] = 1e-4 * static_cast<double>(256 - i);  // ramp
  }
  blockd.static_sched = true;
  MeasuredSystem cyc = blockd;
  cyc.cyclic_sched = true;
  double tb = simulate_point(blockd, 1, 16).seconds;
  double tc = simulate_point(cyc, 1, 16).seconds;
  EXPECT_LT(tc, tb);
}

TEST(Driver, MeasureUnitsReturnsPositiveDurations) {
  auto ts = measure_units(16, [](index_t) {
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  });
  ASSERT_EQ(ts.size(), 16u);
  for (double t : ts) EXPECT_GT(t, 0.0);
}

}  // namespace
}  // namespace triolet::apps
