// Tests for index-space domains: sizes, canonical iteration, ordinals,
// intersection, and the block-splitting used for work distribution.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/domains.hpp"
#include "runtime/parallel.hpp"
#include "sched/policy.hpp"

namespace triolet::core {
namespace {

TEST(Seq, SizeAndContains) {
  Seq d{3, 10};
  EXPECT_EQ(d.size(), 7);
  EXPECT_TRUE(d.contains(3));
  EXPECT_TRUE(d.contains(9));
  EXPECT_FALSE(d.contains(10));
  EXPECT_FALSE(d.contains(2));
}

TEST(Seq, EmptyAndInvertedAreEmpty) {
  EXPECT_EQ((Seq{5, 5}).size(), 0);
  EXPECT_EQ((Seq{7, 3}).size(), 0);
}

TEST(Seq, ForEachVisitsAscending) {
  Seq d{2, 6};
  std::vector<index_t> seen;
  d.for_each([&](index_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<index_t>{2, 3, 4, 5}));
}

TEST(Seq, OrdinalIsPositionInIterationOrder) {
  Seq d{10, 20};
  EXPECT_EQ(d.ordinal(10), 0);
  EXPECT_EQ(d.ordinal(15), 5);
}

TEST(Dim2, SizeRowsCols) {
  Dim2 d{1, 4, 2, 7};
  EXPECT_EQ(d.rows(), 3);
  EXPECT_EQ(d.cols(), 5);
  EXPECT_EQ(d.size(), 15);
}

TEST(Dim2, ForEachIsRowMajorAndOrdinalAgrees) {
  Dim2 d{0, 2, 0, 3};
  std::vector<Index2> seen;
  d.for_each([&](Index2 i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen[0], (Index2{0, 0}));
  EXPECT_EQ(seen[1], (Index2{0, 1}));
  EXPECT_EQ(seen[3], (Index2{1, 0}));
  for (std::size_t k = 0; k < seen.size(); ++k) {
    EXPECT_EQ(d.ordinal(seen[k]), static_cast<index_t>(k));
  }
}

TEST(Dim3, SizeAndOrdinalRoundTrip) {
  Dim3 d{1, 3, 0, 2, 5, 9};
  EXPECT_EQ(d.size(), 2 * 2 * 4);
  index_t expected = 0;
  d.for_each([&](Index3 i) {
    EXPECT_EQ(d.ordinal(i), expected);
    ++expected;
  });
  EXPECT_EQ(expected, d.size());
}

TEST(Intersect, SeqOverlap) {
  Seq r = intersect(Seq{0, 10}, Seq{5, 20});
  EXPECT_EQ(r, (Seq{5, 10}));
  EXPECT_EQ(intersect(Seq{0, 3}, Seq{5, 9}).size(), 0);
}

TEST(Intersect, Dim2Overlap) {
  Dim2 r = intersect(Dim2{0, 4, 0, 4}, Dim2{2, 6, 1, 3});
  EXPECT_EQ(r, (Dim2{2, 4, 1, 3}));
}

TEST(SplitBlocks, SeqCoversWithoutOverlap) {
  Seq d{0, 100};
  auto blocks = split_blocks(d, 7);
  ASSERT_EQ(blocks.size(), 7u);
  index_t covered = 0;
  index_t prev_hi = d.lo;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.lo, prev_hi);
    prev_hi = b.hi;
    covered += b.size();
  }
  EXPECT_EQ(prev_hi, d.hi);
  EXPECT_EQ(covered, d.size());
}

TEST(SplitBlocks, SeqBalancesWithinOne) {
  auto blocks = split_blocks(Seq{0, 100}, 7);
  for (const auto& b : blocks) {
    EXPECT_GE(b.size(), 100 / 7);
    EXPECT_LE(b.size(), 100 / 7 + 1);
  }
}

TEST(SplitBlocks, MoreChunksThanElementsYieldsEmpties) {
  auto blocks = split_blocks(Seq{0, 3}, 5);
  index_t covered = 0;
  for (const auto& b : blocks) covered += b.size();
  EXPECT_EQ(covered, 3);
}

TEST(SplitBlocks, Dim2PartitionCoversExactly) {
  Dim2 d{0, 64, 0, 64};
  for (int k : {1, 2, 4, 8, 16}) {
    auto blocks = split_blocks(d, k);
    ASSERT_EQ(static_cast<int>(blocks.size()), k);
    std::set<std::pair<index_t, index_t>> seen;
    index_t total = 0;
    for (const auto& b : blocks) {
      total += b.size();
      b.for_each([&](Index2 i) {
        auto [it, fresh] = seen.insert({i.y, i.x});
        EXPECT_TRUE(fresh) << "cell covered twice";
      });
    }
    EXPECT_EQ(total, d.size());
    EXPECT_EQ(static_cast<index_t>(seen.size()), d.size());
  }
}

TEST(SplitBlocks, Dim2SquareDomainPrefersSquareGrid) {
  auto blocks = split_blocks(Dim2{0, 64, 0, 64}, 4);  // expect 2x2
  EXPECT_EQ(blocks[0].rows(), 32);
  EXPECT_EQ(blocks[0].cols(), 32);
}

TEST(SplitBlocks, Dim2TallDomainPrefersRowSplit) {
  auto blocks = split_blocks(Dim2{0, 1000, 0, 10}, 4);  // expect 4x1
  EXPECT_EQ(blocks[0].cols(), 10);
  EXPECT_EQ(blocks[0].rows(), 250);
}

TEST(SplitGrain, ChunksRespectGrain) {
  auto chunks = split_grain(Seq{5, 47}, 10);
  index_t covered = 0;
  for (const auto& c : chunks) {
    EXPECT_LE(c.size(), 10);
    covered += c.size();
  }
  EXPECT_EQ(covered, 42);
  EXPECT_EQ(chunks.front().lo, 5);
  EXPECT_EQ(chunks.back().hi, 47);
}

TEST(SplitGrain, EmptyDomainYieldsOneEmptyChunk) {
  auto chunks = split_grain(Seq{5, 5}, 10);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size(), 0);
}

// Parameterized coverage property over many (size, parts) combinations.
class SeqSplitProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SeqSplitProperty, PartitionIsExact) {
  auto [n, k] = GetParam();
  auto blocks = split_blocks(Seq{0, n}, k);
  index_t covered = 0;
  index_t prev = 0;
  for (const auto& b : blocks) {
    EXPECT_EQ(b.lo, prev);
    prev = b.hi;
    covered += b.size();
  }
  EXPECT_EQ(covered, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SeqSplitProperty,
    ::testing::Combine(::testing::Values(0, 1, 7, 100, 1023),
                       ::testing::Values(1, 2, 3, 8, 128)));

// -- degenerate split_blocks shapes (k > extent, empty domains) ---------------

TEST(SplitBlocks, Dim2MoreChunksThanCellsStillPartitions) {
  Dim2 d{0, 2, 0, 2};  // 4 cells, 16 chunks
  auto chunks = split_blocks(d, 16);
  ASSERT_EQ(chunks.size(), 16u);
  index_t covered = 0;
  for (const auto& c : chunks) {
    EXPECT_GE(c.size(), 0);
    covered += c.size();
  }
  EXPECT_EQ(covered, d.size());
}

TEST(SplitBlocks, EmptyDim2YieldsAllEmptyChunks) {
  auto chunks = split_blocks(Dim2{3, 3, 0, 5}, 4);
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& c : chunks) EXPECT_EQ(c.size(), 0);
}

TEST(SplitBlocks, Dim3MoreChunksThanCellsStillPartitions) {
  Dim3 d{0, 1, 0, 2, 0, 3};  // 6 cells, 12 chunks
  auto chunks = split_blocks(d, 12);
  ASSERT_EQ(chunks.size(), 12u);
  index_t covered = 0;
  std::set<std::tuple<index_t, index_t, index_t>> seen;
  for (const auto& c : chunks) {
    covered += c.size();
    c.for_each([&](Index3 i) {
      EXPECT_TRUE(seen.insert({i.z, i.y, i.x}).second) << "overlap";
    });
  }
  EXPECT_EQ(covered, d.size());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(d.size()));
}

TEST(SplitBlocks, EmptyDim3YieldsAllEmptyChunks) {
  auto chunks = split_blocks(Dim3{0, 0, 0, 4, 0, 4}, 8);
  ASSERT_EQ(chunks.size(), 8u);
  for (const auto& c : chunks) EXPECT_EQ(c.size(), 0);
}

// -- outer-axis chunking (the scheduler's atom decomposition) -----------------

TEST(OuterSlice, SeqExtentAndSlices) {
  Seq d{10, 30};
  EXPECT_EQ(outer_extent(d), 20);
  EXPECT_EQ(outer_slice(d, 0, 5), (Seq{10, 15}));
  EXPECT_EQ(outer_slice(d, 5, 20), (Seq{15, 30}));
  // Clamped: requests past the extent stop at the boundary.
  EXPECT_EQ(outer_slice(d, 15, 99), (Seq{25, 30}));
  EXPECT_EQ(outer_slice(d, 99, 120), (Seq{30, 30}));
  // Inverted requests collapse to an empty slice anchored at u0.
  EXPECT_EQ(outer_slice(d, 7, 3).size(), 0);
}

TEST(OuterSlice, Dim2SlicesRowsKeepsColumnsWhole) {
  Dim2 d{5, 15, 2, 9};
  EXPECT_EQ(outer_extent(d), 10);
  auto band = outer_slice(d, 3, 6);
  EXPECT_EQ(band, (Dim2{8, 11, 2, 9}));
  EXPECT_EQ(outer_slice(d, 0, 99), d);  // clamped to the full box
  EXPECT_EQ(outer_slice(d, 10, 12).size(), 0);
}

TEST(OuterSlice, Dim3SlicesSlabsKeepsInnerAxesWhole) {
  Dim3 d{1, 5, 0, 3, 0, 2};
  EXPECT_EQ(outer_extent(d), 4);
  auto slab = outer_slice(d, 1, 3);
  EXPECT_EQ(slab, (Dim3{2, 4, 0, 3, 0, 2}));
  EXPECT_EQ(outer_slice(d, 4, 9).size(), 0);
}

TEST(OuterSlice, EmptyDomainsHaveZeroExtent) {
  EXPECT_EQ(outer_extent(Seq{4, 4}), 0);
  EXPECT_EQ(outer_extent(Dim2{2, 2, 0, 9}), 0);
  EXPECT_EQ(outer_extent(Dim3{3, 1, 0, 2, 0, 2}), 0);  // inverted
  EXPECT_EQ(outer_slice(Seq{4, 4}, 0, 1).size(), 0);
}

TEST(OuterSlice, ConsecutiveSlicesPartitionTheDomain) {
  // Chunking [0, extent) by a fixed grain through outer_slice must tile
  // the domain exactly — the invariant the scheduler's atoms rely on.
  Dim2 d{0, 13, 0, 7};
  const index_t grain = 4;  // 13 rows -> atoms of 4,4,4,1
  index_t rows_covered = 0;
  index_t expected_y = d.y0;
  for (index_t u = 0; u < outer_extent(d); u += grain) {
    auto band = outer_slice(d, u, u + grain);
    EXPECT_EQ(band.y0, expected_y);
    EXPECT_EQ(band.x0, d.x0);
    EXPECT_EQ(band.x1, d.x1);
    expected_y = band.y1;
    rows_covered += band.rows();
  }
  EXPECT_EQ(rows_covered, outer_extent(d));
  EXPECT_EQ(expected_y, d.y1);
}

// -- shared grain heuristic (auto_grain_for) ----------------------------------

TEST(AutoGrainFor, PinnedValues) {
  // The one heuristic both runtime::auto_grain (parts = threads) and
  // sched::resolve_grain (parts = ranks) delegate to: aim for ~8 chunks per
  // part, floored at one unit. Pinned so any change announces itself here
  // instead of silently re-chunking every consumer at both levels.
  EXPECT_EQ(auto_grain_for(3200, 4), 100);
  EXPECT_EQ(auto_grain_for(1000, 4), 31);
  EXPECT_EQ(auto_grain_for(64, 0), 8);  // parts floored at 1
  EXPECT_EQ(auto_grain_for(0, 8), 1);   // empty extent still legal
  EXPECT_EQ(auto_grain_for(1, 8), 1);
  EXPECT_EQ(auto_grain_for(5, 8), 1);   // tiny extent floors at 1
  EXPECT_EQ(auto_grain_for(7, 1), 1);
  EXPECT_EQ(auto_grain_for(16, 1), 2);
  EXPECT_EQ(auto_grain_for(1 << 20, 8), (1 << 20) / 64);
}

TEST(AutoGrainFor, BothRuntimeLevelsAgree) {
  // The thread-level and rank-level grain choices were once separate
  // copies of this formula; keep them pinned to the shared helper so they
  // can never drift apart again.
  for (index_t n : {index_t{0}, index_t{1}, index_t{5}, index_t{64},
                    index_t{1000}, index_t{3200}, index_t{100000}}) {
    for (int p : {1, 2, 4, 8, 64}) {
      EXPECT_EQ(runtime::auto_grain(n, p), auto_grain_for(n, p))
          << "n=" << n << " p=" << p;
      EXPECT_EQ(sched::resolve_grain(n, p, 0), auto_grain_for(n, p))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(AutoGrainFor, GrainTilesTheExtent) {
  // The chosen grain always lies in [1, max(1, extent)], so atom_count is
  // well-defined even for degenerate domains.
  for (index_t n : {index_t{0}, index_t{1}, index_t{7}, index_t{8},
                    index_t{9}, index_t{1023}}) {
    for (int p : {1, 3, 16}) {
      const index_t g = auto_grain_for(n, p);
      EXPECT_GE(g, 1);
      EXPECT_LE(g, std::max<index_t>(1, n));
    }
  }
}

// -- segmented (ragged) domains -----------------------------------------------

namespace {

SegSeq seg_domain(std::vector<index_t> offsets, index_t value_grain) {
  auto cuts = std::make_shared<std::vector<index_t>>(
      segment_cuts(offsets, value_grain));
  auto weights = std::make_shared<const std::vector<index_t>>(
      segment_weights(offsets, *cuts));
  return SegSeq{0, static_cast<index_t>(cuts->size()) - 1, std::move(cuts),
                std::move(weights)};
}

}  // namespace

TEST(SegSeq, SizeContainsOrdinalForEach) {
  // 4 segments with value counts {2, 0, 3, 1}, grouped at grain 3.
  SegSeq d = seg_domain({0, 2, 2, 5, 6}, 3);
  EXPECT_EQ(d.size(), 4);  // size counts segments (the iteration ordinals)
  EXPECT_TRUE(d.contains(0));
  EXPECT_TRUE(d.contains(3));
  EXPECT_FALSE(d.contains(4));
  EXPECT_EQ(d.ordinal(2), 2);
  std::vector<index_t> seen;
  d.for_each([&](index_t s) { seen.push_back(s); });
  EXPECT_EQ(seen, (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(SegmentCuts, ValueBalancedGrouping) {
  // Counts {2, 0, 3, 1} at grain 3: unit 0 closes once it holds >= 3
  // values (segments 0..2 — the empty segment rides along), unit 1 takes
  // the remainder.
  std::vector<index_t> offsets{0, 2, 2, 5, 6};
  EXPECT_EQ(segment_cuts(offsets, 3), (std::vector<index_t>{0, 3, 4}));
  EXPECT_EQ(segment_weights(offsets, segment_cuts(offsets, 3)),
            (std::vector<index_t>{5, 1}));
}

TEST(SegmentCuts, JumboSegmentClosesItsOwnUnit) {
  // A single segment larger than the grain becomes one oversized unit:
  // segments are the correctness atom and never split.
  std::vector<index_t> offsets{0, 1, 101, 102};
  EXPECT_EQ(segment_cuts(offsets, 10), (std::vector<index_t>{0, 2, 3}));
  EXPECT_EQ(segment_weights(offsets, segment_cuts(offsets, 10)),
            (std::vector<index_t>{101, 1}));
}

TEST(SegmentCuts, DegenerateShapesStayValid) {
  // No segments: a single boundary, zero units, empty domain.
  std::vector<index_t> none{0};
  EXPECT_EQ(segment_cuts(none, 4), (std::vector<index_t>{0}));
  EXPECT_EQ(seg_domain({0}, 4).size(), 0);
  // All segments empty: one unit holding every (empty) segment.
  std::vector<index_t> empties{0, 0, 0, 0};
  EXPECT_EQ(segment_cuts(empties, 4), (std::vector<index_t>{0, 3}));
  SegSeq d = seg_domain({0, 0, 0, 0}, 4);
  EXPECT_EQ(outer_extent(d), 1);
  EXPECT_EQ(d.size(), 3);  // three segments, zero values
}

TEST(SplitBlocks, SegSeqCoversWithoutOverlap) {
  SegSeq d = seg_domain({0, 2, 4, 6, 8, 10, 12, 14, 16}, 4);  // 4 units
  auto blocks = split_blocks(d, 3);
  ASSERT_EQ(blocks.size(), 3u);
  std::set<index_t> seen;
  index_t covered = 0;
  for (const auto& b : blocks) {
    covered += b.size();
    b.for_each([&](index_t s) {
      EXPECT_TRUE(seen.insert(s).second) << "overlap at segment " << s;
    });
  }
  EXPECT_EQ(covered, d.size());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(d.size()));
}

TEST(SplitBlocks, SegSeqFewerUnitsThanChunksStaysValid) {
  // Fewer outer units than ranks: every chunk is a valid window (empty
  // chunks allowed), the non-empty ones partition the domain.
  SegSeq d = seg_domain({0, 5, 9}, 4);  // 2 units
  auto blocks = split_blocks(d, 5);
  ASSERT_EQ(blocks.size(), 5u);
  index_t covered = 0;
  int nonempty = 0;
  for (const auto& b : blocks) {
    EXPECT_GE(b.u1, b.u0);
    EXPECT_LE(b.seg_lo(), b.seg_hi());
    covered += b.size();
    if (b.size() > 0) ++nonempty;
  }
  EXPECT_EQ(covered, d.size());
  EXPECT_EQ(nonempty, 2);
}

TEST(OuterSlice, SegSeqRelativeWindowsAndClamping) {
  SegSeq d = seg_domain({0, 2, 4, 6, 8, 10, 12, 14, 16}, 4);  // 4 units
  EXPECT_EQ(outer_extent(d), 4);
  auto band = outer_slice(d, 1, 3);
  EXPECT_EQ(band.units(), 2);
  EXPECT_EQ(band.seg_lo(), 2);
  EXPECT_EQ(band.seg_hi(), 6);
  // Slices are relative to the window, like every other domain.
  auto inner = outer_slice(band, 1, 2);
  EXPECT_EQ(inner.seg_lo(), 4);
  EXPECT_EQ(inner.seg_hi(), 6);
  // Clamped and inverted windows degrade to valid (possibly empty) slices.
  EXPECT_EQ(outer_slice(d, 2, 99).units(), 2);
  EXPECT_EQ(outer_slice(d, 99, 120).size(), 0);
  EXPECT_EQ(outer_slice(d, 3, 1).size(), 0);
}

TEST(OuterSlice, SegSeqChunksTileLikeSeq) {
  // The scheduler's atom decomposition: fixed-grain outer_slice windows
  // tile the domain exactly, segment-disjoint.
  SegSeq d = seg_domain({0, 1, 4, 4, 9, 10, 16, 18}, 3);
  const index_t extent = outer_extent(d);
  for (index_t grain : {index_t{1}, index_t{2}, index_t{3}}) {
    std::set<index_t> seen;
    for (index_t u = 0; u < extent; u += grain) {
      auto band = outer_slice(d, u, std::min(extent, u + grain));
      band.for_each([&](index_t s) {
        EXPECT_TRUE(seen.insert(s).second) << "overlap at segment " << s;
      });
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(d.size()));
  }
}

TEST(Intersect, SegSeqSharedCutsNarrowsWindow) {
  SegSeq d = seg_domain({0, 2, 4, 6, 8, 10, 12, 14, 16}, 4);
  SegSeq a = outer_slice(d, 0, 3);
  SegSeq b = outer_slice(d, 1, 4);
  SegSeq r = intersect(a, b);
  EXPECT_EQ(r.u0, 1);
  EXPECT_EQ(r.u1, 3);
  // Content-equal windows with distinct cut vectors also intersect.
  SegSeq d2 = seg_domain({0, 2, 4, 6, 8, 10, 12, 14, 16}, 4);
  EXPECT_EQ(intersect(d, d2).units(), d.units());
}

TEST(OuterCostCv, DenseZeroSkewedPositive) {
  EXPECT_EQ(outer_cost_cv(Seq{0, 100}), 0.0);
  EXPECT_EQ(outer_cost_cv(Dim2{0, 4, 0, 4}), 0.0);
  // Uniform per-unit weights: no variance.
  EXPECT_DOUBLE_EQ(outer_cost_cv(seg_domain({0, 2, 4, 6, 8}, 2)), 0.0);
  // One jumbo unit among small ones: material variance.
  EXPECT_GT(outer_cost_cv(seg_domain({0, 1, 2, 3, 103}, 1)), 1.0);
  // Without a weights hint the cv degrades to 0 (dense behavior).
  SegSeq bare = seg_domain({0, 1, 2, 103}, 1);
  bare.weights = nullptr;
  EXPECT_EQ(outer_cost_cv(bare), 0.0);
}

TEST(AutoGrainFor, CostVarianceHintOnlyRefines) {
  // cv <= 0 is the exact dense heuristic — pinned so segmented support
  // cannot shift any dense consumer's grain.
  for (index_t n : {index_t{0}, index_t{64}, index_t{1000}, index_t{3200}}) {
    for (int p : {1, 4, 8}) {
      EXPECT_EQ(auto_grain_for(n, p, 0.0), auto_grain_for(n, p));
      EXPECT_EQ(auto_grain_for(n, p, -1.0), auto_grain_for(n, p));
    }
  }
  // Positive cv targets more, finer chunks — never coarser than dense,
  // always within [1, extent].
  for (double cv : {0.5, 1.0, 3.0, 100.0}) {
    const index_t g = auto_grain_for(3200, 4, cv);
    EXPECT_LE(g, auto_grain_for(3200, 4));
    EXPECT_GE(g, 1);
  }
  // The refinement saturates (clamped at 4x the dense chunk target).
  EXPECT_EQ(auto_grain_for(3200, 4, 100.0), auto_grain_for(3200, 4, 3.0));
}

}  // namespace
}  // namespace triolet::core
