// Tests for segmented sources and fused distributed views: the
// SegmentedDistArray (CSR offsets+values with value-balanced chunking),
// dist::zip/slice/transform view composition, leaf-wise residency
// tokenization (view_bytes_avoided), kOrdered bitwise identity on skewed
// segmented reductions across every policy / rank count / fused-vs-
// materialized pipeline, and the halo-exchange stencil skeleton.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/halo.hpp"
#include "dist/segmented.hpp"
#include "dist/skeletons.hpp"
#include "dist/views.hpp"
#include "net/cluster.hpp"
#include "net/residency.hpp"
#include "support/rng.hpp"

namespace triolet::dist {
namespace {

using core::index_t;

/// Slice-cache budget guard (see test_residency.cpp).
struct BudgetGuard {
  explicit BudgetGuard(std::size_t bytes) {
    net::set_slice_cache_budget(bytes);
  }
  ~BudgetGuard() { net::set_slice_cache_budget(~std::size_t{0}); }
};

/// Power-law-ish CSR shape: most segments are short, every 16th is a jumbo
/// carrying ~64x the values. Deterministic in `seed`.
std::pair<std::vector<index_t>, std::vector<double>> power_law_csr(
    index_t nsegs, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<index_t> offsets{0};
  std::vector<double> values;
  for (index_t s = 0; s < nsegs; ++s) {
    const index_t len = (s % 16 == 0) ? 128 : 1 + s % 3;
    for (index_t k = 0; k < len; ++k) {
      values.push_back(rng.uniform(-1.0, 1.0));
    }
    offsets.push_back(static_cast<index_t>(values.size()));
  }
  return {std::move(offsets), std::move(values)};
}

double segment_dot(const Segment<double>& seg) {
  double acc = 0.0;
  for (index_t k = 0; k < seg.size(); ++k) {
    acc += seg[k] * static_cast<double>(1 + (seg.index + k) % 7);
  }
  return acc;
}

double sequential_segmented_sum(const std::vector<index_t>& offsets,
                                const std::vector<double>& values) {
  double acc = 0.0;
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    Segment<double> seg{
        static_cast<index_t>(s),
        std::span<const double>(
            values.data() + offsets[s],
            static_cast<std::size_t>(offsets[s + 1] - offsets[s]))};
    acc += segment_dot(seg);
  }
  return acc;
}

// -- SegmentedDistArray basics ------------------------------------------------

TEST(SegmentedArray, IterationVisitsEverySegmentOnce) {
  // Counts {2, 0, 3, 1}: empty and ragged segments iterate like any other.
  SegmentedDistArray<double> a({0, 2, 2, 5, 6}, {1, 2, 3, 4, 5, 6}, 3);
  EXPECT_EQ(a.segments(), 4);
  EXPECT_EQ(a.value_count(), 6);
  auto it = from_segmented(a);
  std::vector<index_t> sizes;
  double total = core::reduce(
      core::map(it,
                [&](const Segment<double>& seg) {
                  sizes.push_back(seg.size());
                  double s = 0;
                  for (double v : seg) s += v;
                  return s;
                }),
      0.0, [](double x, double y) { return x + y; });
  EXPECT_EQ(sizes, (std::vector<index_t>{2, 0, 3, 1}));
  EXPECT_DOUBLE_EQ(total, 21.0);
}

TEST(SegmentedArray, SliceNarrowsBothLeavesZeroCopy) {
  SegmentedDistArray<double> a({0, 2, 2, 5, 6}, {1, 2, 3, 4, 5, 6}, 3);
  auto src = a.source();
  auto dom = a.domain();
  ASSERT_EQ(dom.units(), 2);  // cuts {0, 3, 4} at grain 3
  auto sub = slice_source(src, dom, core::outer_slice(dom, 1, 2));
  // Unit 1 covers segment 3 only: offsets window [3, 5), values [5, 6).
  EXPECT_EQ(sub.offsets.data.get(), src.offsets.data.get());
  EXPECT_EQ(sub.values.data.get(), src.values.data.get());
  EXPECT_EQ(sub.offsets.lo, 3);
  EXPECT_EQ(sub.offsets.hi, 5);
  EXPECT_EQ(sub.values.lo, 5);
  EXPECT_EQ(sub.values.hi, 6);
  auto seg = sub.segment(3);
  ASSERT_EQ(seg.size(), 1);
  EXPECT_EQ(seg[0], 6.0);
  // An empty window anchored at the domain end slices in-range.
  auto none = slice_source(src, dom, core::outer_slice(dom, 2, 2));
  EXPECT_EQ(none.offsets.hi - none.offsets.lo, 1);
  EXPECT_EQ(none.values.hi, none.values.lo);
}

TEST(SegmentedArray, TraitsMarkFusedResidentViews) {
  SegmentedDistArray<double> a({0, 1}, {2.0});
  DistArray<double> d{Array1<double>(8)};
  auto seg = from_segmented(a);
  auto one = from_resident(d);
  auto two = dist::zip(d, d);
  EXPECT_TRUE(core::iter_uses_residency_v<decltype(seg)>);
  EXPECT_EQ(core::resident_leaf_count<SegmentedSource<double>>::value, 2);
  EXPECT_TRUE(core::iter_is_fused_view_v<decltype(seg)>);
  EXPECT_FALSE(core::iter_is_fused_view_v<decltype(one)>);  // single leaf
  EXPECT_TRUE(core::iter_is_fused_view_v<decltype(two)>);
  // transform preserves the source, and with it both traits.
  auto mapped = dist::transform(seg, segment_dot);
  EXPECT_TRUE(core::iter_is_fused_view_v<decltype(mapped)>);
}

TEST(SegmentedArray, SourceCodecRoundTripsWithoutScopes) {
  SegmentedDistArray<int> a({0, 3, 3, 4}, {7, 8, 9, -1}, 2);
  auto src = a.source();
  auto back =
      serial::from_bytes<SegmentedSource<int>>(serial::to_bytes(src));
  EXPECT_EQ(back, src);
  auto dom = a.domain();
  auto dback = serial::from_bytes<core::SegSeq>(serial::to_bytes(dom));
  EXPECT_EQ(dback, dom);
  EXPECT_EQ(dback.size(), dom.size());
}

// -- scheduled segmented reductions ------------------------------------------

TEST(SegmentedSched, OrderedBitwiseAcrossPoliciesAndRankCounts) {
  const index_t nsegs = 512;
  auto [offsets, values] = power_law_csr(nsegs, 21);
  const double expect = sequential_segmented_sum(offsets, values);
  SegmentedDistArray<double> a(offsets, values);
  BudgetGuard guard(std::size_t{64} << 20);

  // Pinned grain: the decomposition must not depend on the rank count for
  // the cross-rank-count comparison (auto grain is ranks-dependent by
  // design, policy-independent at any fixed rank count).
  const index_t grain = 3;
  std::vector<double> results;
  for (int nranks : {1, 2, 4}) {
    for (auto policy :
         {sched::SchedulePolicy::kStatic, sched::SchedulePolicy::kGuided,
          sched::SchedulePolicy::kDynamic, sched::SchedulePolicy::kAuto}) {
      double r = 0.0;
      auto res = net::Cluster::run(nranks, [&](net::Comm& comm) {
        NodeRuntime node(1);
        sched::SchedOptions opts;
        opts.policy = policy;
        opts.combine = sched::CombineMode::kOrdered;
        opts.grain = grain;
        auto make = [&] {
          return dist::transform(from_segmented(a), segment_dot);
        };
        // Two rounds so kAuto's post-measurement pick runs at least once.
        double r1 = dist::sum(comm, make, opts);
        double r2 = dist::sum(comm, make, opts);
        if (comm.rank() == 0) {
          EXPECT_EQ(r1, r2) << "round-to-round drift";
          r = r1;
        }
      });
      ASSERT_TRUE(res.ok) << res.error;
      EXPECT_NEAR(r, expect, 1e-9 * std::abs(expect));
      results.push_back(r);
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(std::memcmp(&results[0], &results[i], sizeof(double)), 0)
        << "config " << i << " diverged bitwise";
  }
}

TEST(SegmentedSched, WarmRoundsTokenizeBothLeaves) {
  const index_t nsegs = 1024;
  auto [offsets, values] = power_law_csr(nsegs, 22);
  SegmentedDistArray<double> a(offsets, values);
  BudgetGuard guard(std::size_t{64} << 20);

  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    sched::SchedOptions opts;
    // kStatic pushes exactly one data-carrying grant per remote rank each
    // round, making the token counts deterministic (a demand policy may let
    // a fast root self-issue everything before worker requests land).
    opts.policy = sched::SchedulePolicy::kStatic;
    opts.combine = sched::CombineMode::kOrdered;
    auto make = [&] {
      return dist::transform(from_segmented(a), segment_dot);
    };
    double r1 = dist::sum(comm, make, opts);
    double r2 = dist::sum(comm, make, opts);
    if (comm.rank() == 0) {
      EXPECT_EQ(r1, r2);
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  const auto& vs = res.total_stats.views;
  const auto& rs = res.total_stats.residency;
  // Round 1 inlines both leaves of each remote rank's grant (3 ranks x
  // offsets+values); round 2 replays the same slices, so every one goes out
  // as a token, all charged to the view counters.
  EXPECT_EQ(rs.slices_inlined, 6);
  EXPECT_EQ(rs.tokens_sent, 6);
  EXPECT_EQ(vs.view_tokens, 6);
  EXPECT_GT(vs.view_bytes_avoided, 0);
  EXPECT_EQ(vs.view_bytes_avoided, rs.bytes_avoided);
  EXPECT_EQ(rs.checksum_failures, 0);
}

TEST(SegmentedSched, MutatingValuesRetiresCachedSlices) {
  auto [offsets, values] = power_law_csr(256, 23);
  SegmentedDistArray<double> a(offsets, values);
  BudgetGuard guard(std::size_t{64} << 20);

  double r1 = 0.0, r2 = 0.0;
  auto res = net::Cluster::run(2, [&](net::Comm& comm) {
    NodeRuntime node(1);
    sched::SchedOptions opts;
    // kStatic so the worker rank is guaranteed to receive (and re-receive)
    // its slice of the values leaf — round 2 must see the bumped version,
    // not a stale cached slice.
    opts.policy = sched::SchedulePolicy::kStatic;
    opts.combine = sched::CombineMode::kOrdered;
    auto make = [&] {
      return dist::transform(from_segmented(a), segment_dot);
    };
    double x = dist::sum(comm, make, opts);
    if (comm.rank() == 0) a.mutate_values()[0] += 1.0;
    double y = dist::sum(comm, make, opts);
    if (comm.rank() == 0) {
      r1 = x;
      r2 = y;
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  // Segment 0's dot weights position 0 with factor 1: the bump shifts the
  // total by exactly 1.0, which only happens if round 2 saw fresh values.
  EXPECT_NEAR(r2 - r1, 1.0, 1e-9);
}

// -- fused dense views --------------------------------------------------------

double fuse_pair(const std::pair<double, double>& p) {
  return p.first * p.second + 0.5 * p.first;
}

TEST(Views, FusedPipelineMatchesMaterializedBitwiseAndTokenizes) {
  // zip pairs by *global index* over the domain intersection: a covers
  // [0, n), b covers [0, 2n), and slice(b, 0, n) narrows the view so only
  // that window ever ships or caches. The fused pipeline is compared
  // bitwise against a materialized baseline (intermediate array built
  // eagerly, then reduced): same element values, same atoms, same kOrdered
  // fold, so the scalars must agree to the last bit.
  const index_t n = 20000;
  Xoshiro256 rng(31);
  Array1<double> av(n), bv(2 * n);
  for (index_t i = 0; i < n; ++i) av[i] = rng.uniform(-1.0, 1.0);
  for (index_t i = 0; i < 2 * n; ++i) bv[i] = rng.uniform(-1.0, 1.0);
  double expect = 0.0;
  Array1<double> cv(n);
  for (index_t i = 0; i < n; ++i) {
    cv[i] = fuse_pair({av[i], bv[i]});
    expect += cv[i];
  }
  DistArray<double> da{std::move(av)};
  DistArray<double> db{std::move(bv)};
  DistArray<double> dc{std::move(cv)};  // the materialized intermediate
  BudgetGuard guard(std::size_t{64} << 20);

  double fused1 = 0.0, fused2 = 0.0, materialized = 0.0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(1);
    sched::SchedOptions opts;
    // kStatic: deterministic grant traffic (see WarmRoundsTokenizeBothLeaves).
    // kOrdered results are policy-independent, so the bitwise comparison
    // loses nothing.
    opts.policy = sched::SchedulePolicy::kStatic;
    opts.combine = sched::CombineMode::kOrdered;
    opts.grain = 64;
    auto fused = [&] {
      return dist::transform(dist::zip(da, dist::slice(db, 0, n)),
                             fuse_pair);
    };
    double f1 = dist::sum(comm, fused, opts);
    double f2 = dist::sum(comm, fused, opts);  // warm round: tokens only
    double m = dist::sum(comm, [&] { return from_resident(dc); }, opts);
    if (comm.rank() == 0) {
      fused1 = f1;
      fused2 = f2;
      materialized = m;
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(fused1, expect, 1e-9 * std::abs(expect));
  EXPECT_EQ(fused1, fused2);
  EXPECT_EQ(std::memcmp(&fused1, &materialized, sizeof(double)), 0)
      << "fused and materialized pipelines diverged bitwise";
  const auto& vs = res.total_stats.views;
  EXPECT_GT(vs.view_tokens, 0);
  EXPECT_GT(vs.view_bytes_avoided, 0);
  // Warm fused rounds tokenize both leaves of every worker slice; the
  // avoided bytes are a substantial share of one full scatter of a + the
  // b window (3 of 4 ranks' slices, two leaves each).
  const auto one_scatter =
      static_cast<std::int64_t>(2 * n * sizeof(double) * 3 / 4);
  EXPECT_GE(vs.view_bytes_avoided, one_scatter / 2);
}

// -- halo exchange ------------------------------------------------------------

TEST(Halo, ExchangeFillsGhostRowsAndCountsBoundaryTraffic) {
  const index_t ny = 12, nx = 8, radius = 1;
  const int nranks = 3;
  auto res = net::Cluster::run(nranks, [&](net::Comm& comm) {
    auto slab = make_halo_slab<double>(ny, nx, radius, comm.rank(),
                                       comm.size());
    for (index_t y = slab.y0; y < slab.y1; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        slab.grid(y, x) = static_cast<double>(100 * y + x);
      }
    }
    {
      HaloExchange<double> hx(comm, slab);
      hx.finish();
    }
    // Ghost rows now hold the neighbor's owned values.
    if (slab.prev >= 0) {
      for (index_t x = 0; x < nx; ++x) {
        EXPECT_EQ(slab.grid(slab.y0 - 1, x),
                  static_cast<double>(100 * (slab.y0 - 1) + x));
      }
    }
    if (slab.next >= 0) {
      for (index_t x = 0; x < nx; ++x) {
        EXPECT_EQ(slab.grid(slab.y1, x),
                  static_cast<double>(100 * slab.y1 + x));
      }
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  const auto& vs = res.total_stats.views;
  EXPECT_EQ(vs.halo_exchanges, nranks);
  // 4 boundary messages total (interior rank sends 2, edge ranks 1 each),
  // each radius*nx cells + a 24-byte header: O(boundary), not O(slab).
  EXPECT_EQ(vs.halo_messages, 4);
  EXPECT_EQ(vs.halo_bytes,
            4 * (24 + static_cast<std::int64_t>(radius * nx *
                                                sizeof(double))));
  EXPECT_EQ(vs.ghost_cells, 4 * radius * nx);
  EXPECT_GE(vs.halo_overlap_seconds, 0.0);
}

TEST(Halo, SweepMatchesSequentialStencilBitwise) {
  const index_t ny = 32, nx = 16, radius = 1;
  const int iters = 3;
  auto stencil = [](const Array2<double>& g, index_t y, index_t x) {
    const index_t ylo = g.row_lo(), yhi = g.row_hi() - 1;
    const index_t ym = std::max(y - 1, ylo), yp = std::min(y + 1, yhi);
    const index_t xm = std::max<index_t>(x - 1, 0);
    const index_t xp = std::min<index_t>(x + 1, nx - 1);
    return 0.25 * (g(ym, x) + g(yp, x) + g(y, xm) + g(y, xp));
  };
  auto init = [](index_t y, index_t x) {
    return static_cast<double>((y * 7 + x * 3) % 11) - 5.0;
  };

  // Sequential reference: the same sweep on one undivided slab. Physical
  // edges clamp to the grid; with no neighbors there are no ghosts, so the
  // clamp logic is identical to every rank's.
  Array2<double> ref(ny, nx), scratch(ny, nx);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) ref(y, x) = init(y, x);
  }
  for (int t = 0; t < iters; ++t) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) scratch(y, x) = stencil(ref, y, x);
    }
    std::swap(ref, scratch);
  }

  for (int nranks : {1, 4}) {
    std::vector<double> gathered(static_cast<std::size_t>(ny * nx), 0.0);
    auto res = net::Cluster::run(nranks, [&](net::Comm& comm) {
      auto cur = make_halo_slab<double>(ny, nx, radius, comm.rank(),
                                        comm.size());
      auto next = make_halo_slab<double>(ny, nx, radius, comm.rank(),
                                         comm.size());
      for (index_t y = cur.y0; y < cur.y1; ++y) {
        for (index_t x = 0; x < nx; ++x) cur.grid(y, x) = init(y, x);
      }
      for (int t = 0; t < iters; ++t) {
        halo_sweep(comm, cur, next, stencil, t);
        std::swap(cur, next);
      }
      std::vector<double> mine;
      for (index_t y = cur.y0; y < cur.y1; ++y) {
        auto row = cur.grid.row(y);
        mine.insert(mine.end(), row.begin(), row.end());
      }
      auto parts = comm.gather(mine, 0);
      if (comm.rank() == 0) {
        std::size_t at = 0;
        for (const auto& p : parts) {
          std::copy(p.begin(), p.end(), gathered.begin() + at);
          at += p.size();
        }
      }
    });
    ASSERT_TRUE(res.ok) << res.error;
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const double got = gathered[static_cast<std::size_t>(y * nx + x)];
        const double want = ref(y, x);
        ASSERT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
            << "ranks=" << nranks << " (" << y << "," << x << ")";
      }
    }
    if (nranks == 4) {
      const auto& vs = res.total_stats.views;
      EXPECT_EQ(vs.halo_exchanges, 4 * iters);
      EXPECT_EQ(vs.halo_messages, 6 * iters);  // 2 interior x2 + 2 edges x1
      EXPECT_EQ(vs.ghost_cells, 6 * iters * radius * nx);
    }
  }
}

}  // namespace
}  // namespace triolet::dist
