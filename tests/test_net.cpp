// Tests for the message-passing substrate: point-to-point semantics,
// wildcard matching, collectives, failure propagation (bounded buffers,
// aborts), checksums, and traffic accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <numeric>
#include <thread>
#include <utility>

#include "net/cluster.hpp"
#include "net/mailbox.hpp"

namespace triolet::net {
namespace {

TEST(Cluster, SingleRankRuns) {
  std::atomic<int> ran{0};
  auto res = Cluster::run(1, [&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ran.fetch_add(1);
  });
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(ran.load(), 1);
}

TEST(Cluster, PointToPointDeliversTypedValues) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 5, std::vector<int>{1, 2, 3});
    } else {
      auto v = c.recv<std::vector<int>>(0, 5);
      EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, TagMatchingIsSelective) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, /*tag=*/7, 70);
      c.send(1, /*tag=*/8, 80);
    } else {
      // Receive out of arrival order by tag.
      EXPECT_EQ(c.recv<int>(0, 8), 80);
      EXPECT_EQ(c.recv<int>(0, 7), 70);
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, SameTagIsFifoPerPair) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) c.send(1, 3, i);
    } else {
      for (int i = 0; i < 20; ++i) EXPECT_EQ(c.recv<int>(0, 3), i);
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, AnySourceWildcardReceivesFromAll) {
  auto res = Cluster::run(4, [](Comm& c) {
    if (c.rank() == 0) {
      std::multiset<int> got;
      for (int i = 0; i < 3; ++i) {
        got.insert(c.recv<int>(kAnySource, 1));
      }
      EXPECT_EQ(got, (std::multiset<int>{10, 20, 30}));
    } else {
      c.send(0, 1, c.rank() * 10);
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, BarrierSynchronizesPhases) {
  // Every rank increments a phase counter, barriers, then checks that all
  // increments of the previous phase are visible.
  std::atomic<int> counter{0};
  const int ranks = 4;
  auto res = Cluster::run(ranks, [&](Comm& c) {
    for (int phase = 1; phase <= 3; ++phase) {
      counter.fetch_add(1);
      c.barrier();
      EXPECT_GE(counter.load(), phase * ranks);
      c.barrier();
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, BroadcastReachesAllRanks) {
  auto res = Cluster::run(4, [](Comm& c) {
    std::vector<double> v;
    if (c.rank() == 0) v = {1.5, 2.5, 3.5};
    c.broadcast(v, 0);
    EXPECT_EQ(v, (std::vector<double>{1.5, 2.5, 3.5}));
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, GatherCollectsByRank) {
  auto res = Cluster::run(4, [](Comm& c) {
    auto all = c.gather(c.rank() * 2, 0);
    if (c.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{0, 2, 4, 6}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, ScatterHandsOutPerRankItems) {
  auto res = Cluster::run(3, [](Comm& c) {
    std::vector<std::string> items;
    if (c.rank() == 0) items = {"a", "b", "c"};
    auto mine = c.scatter(items, 0);
    std::string expect(1, static_cast<char>('a' + c.rank()));
    EXPECT_EQ(mine, expect);
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, ReduceFoldsInRankOrder) {
  auto res = Cluster::run(4, [](Comm& c) {
    // Non-commutative (but associative) op: string concatenation exposes
    // ordering. The fixed-tree combine keeps rank order for associative
    // ops; only the parenthesization differs from a linear fold.
    std::string mine(1, static_cast<char>('A' + c.rank()));
    auto r = c.reduce(mine, [](std::string a, std::string b) { return a + b; }, 0);
    if (c.rank() == 0) EXPECT_EQ(r, "ABCD");
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, AllreduceGivesEveryRankTheTotal) {
  auto res = Cluster::run(4, [](Comm& c) {
    auto total =
        c.allreduce(c.rank() + 1, [](int a, int b) { return a + b; });
    EXPECT_EQ(total, 10);
  });
  EXPECT_TRUE(res.ok);
}

TEST(Cluster, BoundedBufferRejectsOversizedMessage) {
  // Models Eden's failure on sgemm: "the array data is too large for Eden's
  // message-passing runtime to buffer" (paper §4.3).
  ClusterOptions opts;
  opts.max_message_bytes = 64;
  auto res = Cluster::run(
      2,
      [](Comm& c) {
        if (c.rank() == 0) {
          c.send(1, 1, std::vector<double>(1000, 1.0));
        } else {
          (void)c.recv<std::vector<double>>(0, 1);
        }
      },
      opts);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("buffer"), std::string::npos);
}

TEST(Cluster, PeerFailureUnblocksWaitingRanks) {
  auto res = Cluster::run(3, [](Comm& c) {
    if (c.rank() == 1) {
      throw std::runtime_error("rank 1 exploded");
    }
    if (c.rank() == 2) {
      // Blocks forever unless the abort wakes it.
      (void)c.recv<int>(1, 9);
    }
  });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error, "rank 1 exploded");
}

TEST(Cluster, StatsCountMessagesAndBytes) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<std::int32_t>(100, 7));
    } else {
      (void)c.recv<std::vector<std::int32_t>>(0, 1);
    }
  });
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.total_stats.messages_sent, 1);
  EXPECT_EQ(res.total_stats.messages_received, 1);
  // 8-byte length header + 400 payload bytes.
  EXPECT_EQ(res.total_stats.bytes_sent, 408);
  EXPECT_EQ(res.total_stats.bytes_received, 408);
}

TEST(Mailbox, TryPopMatchesWithoutBlocking) {
  Mailbox mb;
  Message out;
  EXPECT_FALSE(mb.try_pop_match(kAnySource, kAnyTag, out));
  Message m;
  m.src = 2;
  m.tag = 4;
  mb.push(std::move(m));
  EXPECT_FALSE(mb.try_pop_match(1, kAnyTag, out));
  EXPECT_TRUE(mb.try_pop_match(2, 4, out));
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, InterruptNeverLosesAWakeupRace) {
  // Regression for a lost-wakeup race: interrupt() used to notify without
  // holding the mailbox mutex, so the notification could fire in the gap
  // between a waiter's abort-flag check and its cv wait — the waiter then
  // blocked forever on a flag that was already raised. Iterating the
  // handshake makes a regression hang here (and the CI TSan job flags the
  // unsynchronized notify directly).
  for (int iter = 0; iter < 200; ++iter) {
    Mailbox mb;
    std::atomic<bool> aborted{false};
    std::thread waiter([&] {
      EXPECT_THROW((void)mb.pop_match(kAnySource, kAnyTag, aborted),
                   ClusterAborted);
    });
    aborted.store(true);
    mb.interrupt();
    waiter.join();
  }
}

TEST(Transport, InterruptAllWakesABlockedRingReceiver) {
  // Same race at the transport level: a ring endpoint parked in pop_match
  // must observe abort_all() promptly no matter where it is in its
  // spin/park sequence.
  for (int iter = 0; iter < 50; ++iter) {
    ClusterState state(1, 0);
    std::thread waiter([&] {
      Comm comm(0, &state);
      EXPECT_THROW((void)comm.recv<int>(kAnySource, 1), ClusterAborted);
    });
    state.abort_all();
    waiter.join();
  }
}

// -- wildcard interleavings under concurrent senders --------------------------
//
// The demand-driven scheduler's service loop polls try_recv(kAnySource) on
// one tag while many ranks send concurrently; these tests pin down the
// exact semantics that loop relies on.

TEST(ClusterWildcards, AnySourceTryRecvDrainsAllConcurrentSenders) {
  const int p = 6;
  auto res = Cluster::run(p, [&](Comm& c) {
    if (c.rank() != 0) {
      c.send(0, 7, c.rank());
      return;
    }
    // Poll until every sender's message has been observed; a try_recv miss
    // is not a failure, just "not yet".
    std::map<int, int> seen;
    while (seen.size() < static_cast<std::size_t>(p - 1)) {
      if (auto m = c.try_recv_message(kAnySource, 7)) {
        int v = serial::from_bytes<int>(m->payload);
        EXPECT_EQ(v, m->src);  // envelope src matches the payload
        EXPECT_EQ(seen.count(m->src), 0u) << "duplicate from " << m->src;
        seen[m->src] = v;
      }
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(ClusterWildcards, AnySourceBlockingRecvInterleavesWithSpecificTag) {
  // Mixing a wildcard service tag with a directed data tag: wildcard recv
  // on tag A must never swallow messages on tag B.
  const int p = 4;
  auto res = Cluster::run(p, [&](Comm& c) {
    if (c.rank() != 0) {
      c.send(0, 1, c.rank() * 10);  // data tag
      c.send(0, 2, c.rank());      // service tag
      return;
    }
    std::vector<int> service;
    for (int i = 0; i < p - 1; ++i) {
      Message m = c.recv_message(kAnySource, 2);
      service.push_back(serial::from_bytes<int>(m.payload));
    }
    // All data-tag messages are still there, matchable by (src, tag).
    for (int r = 1; r < p; ++r) {
      EXPECT_EQ(c.recv<int>(r, 1), r * 10);
    }
    std::sort(service.begin(), service.end());
    EXPECT_EQ(service, (std::vector<int>{1, 2, 3}));
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(ClusterWildcards, AnyTagPreservesPerSenderFifo) {
  // kAnyTag from a fixed src must deliver that sender's messages in send
  // order even when tags differ.
  auto res = Cluster::run(2, [&](Comm& c) {
    if (c.rank() == 1) {
      for (int i = 0; i < 20; ++i) c.send(0, 100 + (i % 3), i);
      return;
    }
    for (int i = 0; i < 20; ++i) {
      Message m = c.recv_message(1, kAnyTag);
      EXPECT_EQ(serial::from_bytes<int>(m.payload), i);
      EXPECT_EQ(m.tag, 100 + (i % 3));
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(ClusterWildcards, RequestGrantProtocolUnderContention) {
  // The scheduler idiom end to end: every worker loops request -> grant on
  // the reserved scheduler tag band until the root says done; the root
  // serves with try_recv polling. All work items are handed out exactly
  // once no matter how requests interleave.
  const int p = 5;
  const int items = 57;
  std::atomic<int> executed{0};
  auto res = Cluster::run(p, [&](Comm& c) {
    if (c.rank() == 0) {
      int next = 0;
      int done_sent = 0;
      while (done_sent < p - 1) {
        if (auto req = c.try_recv_message(kAnySource, kTagSchedRequest)) {
          if (next < items) {
            c.send(req->src, kTagSchedGrant, next++);
          } else {
            c.send(req->src, kTagSchedGrant, -1);
            ++done_sent;
          }
        }
      }
      return;
    }
    std::vector<int> got;
    while (true) {
      c.send(0, kTagSchedRequest, std::uint8_t{0});
      int item = c.recv<int>(0, kTagSchedGrant);
      if (item < 0) break;
      got.push_back(item);
    }
    // No duplicates within one worker; cross-worker disjointness follows
    // from the total count below.
    std::sort(got.begin(), got.end());
    EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
    executed += static_cast<int>(got.size());
  });
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(executed.load(), items);
}

TEST(ClusterWildcards, SchedTagBandIsDisjointFromCollectives) {
  // A pending (unconsumed-until-later) scheduler request must not disturb
  // a collective running concurrently on the reserved collective band.
  const int p = 4;
  auto res = Cluster::run(p, [&](Comm& c) {
    if (c.rank() != 0) c.send(0, kTagSchedRequest, std::uint8_t{0});
    auto total = c.allreduce(1, [](int a, int b) { return a + b; });
    EXPECT_EQ(total, p);
    if (c.rank() == 0) {
      for (int i = 0; i < p - 1; ++i) {
        (void)c.recv_message(kAnySource, kTagSchedRequest);
      }
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(ClusterWildcards, ResidencyTagBandIsRegisteredAndDisjoint) {
  bool found = false;
  for (const auto& b : reserved_tag_bands()) {
    if (b.lo == kTagResidencyBand) {
      found = true;
      EXPECT_EQ(b.hi, kTagResidencyBandEnd);
    }
  }
  EXPECT_TRUE(found) << "residency band missing from reserved_tag_bands()";
  EXPECT_GE(kTagResidentFetch, kTagResidencyBand);
  EXPECT_LT(kTagResidentData, kTagResidencyBandEnd);
  assert_tag_bands_disjoint();  // aborts on overlap
}

TEST(ClusterWildcards, ServiceDispatchRunsInsideBlockingRecv) {
  // A (kAnySource, tag) service handler must run while the owning rank is
  // blocked in an unrelated receive — the deadlock-freedom property the
  // residency fetch protocol relies on (the root serves fetches while
  // blocked in its own collectives/receives).
  const int p = 3;
  auto res = Cluster::run(p, [&](Comm& c) {
    if (c.rank() == 0) {
      int served = 0;
      c.set_service(kTagResidentFetch, [&](Message& m) {
        const auto who = serial::from_bytes<std::uint8_t>(m.payload);
        c.send(m.src, kTagResidentData, static_cast<int>(100 + who));
        ++served;
      });
      // Each worker signals on tag 7 only after its fetch was answered, so
      // both services have run by the time both signals arrive.
      for (int i = 0; i < p - 1; ++i) {
        auto m = c.recv_message(kAnySource, 7);
        EXPECT_EQ(serial::from_bytes<int>(m.payload), 42);
      }
      EXPECT_EQ(served, p - 1);
      c.clear_service(kTagResidentFetch);
    } else {
      c.send(0, kTagResidentFetch, static_cast<std::uint8_t>(c.rank()));
      EXPECT_EQ(c.recv<int>(0, kTagResidentData), 100 + c.rank());
      c.send(0, 7, 42);
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(ClusterWildcards, WildcardRecvDoesNotStealServiceMessages) {
  // Per-pair FIFO puts the service message ahead of the user message in
  // rank 0's queue; a fully wildcard receive must still dispatch it to the
  // handler and return the user message.
  auto res = Cluster::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      int served = 0;
      c.set_service(kTagResidentFetch, [&](Message&) { ++served; });
      Message m = c.recv_message(kAnySource, kAnyTag);
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(serial::from_bytes<int>(m.payload), 42);
      EXPECT_EQ(served, 1);
      c.clear_service(kTagResidentFetch);
    } else {
      c.send(0, kTagResidentFetch, std::uint8_t{1});
      c.send(0, 7, 42);
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

// Parameterized: collectives agree with a serial reference at many widths.
class ClusterWidth : public ::testing::TestWithParam<int> {};

TEST_P(ClusterWidth, AllreduceSumMatchesFormula) {
  const int p = GetParam();
  auto res = Cluster::run(p, [&](Comm& c) {
    auto total = c.allreduce(static_cast<std::int64_t>(c.rank()),
                             [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(total, static_cast<std::int64_t>(p) * (p - 1) / 2);
  });
  EXPECT_TRUE(res.ok);
}

TEST_P(ClusterWidth, RingPassesTokenAround) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "ring needs >= 2 ranks";
  auto res = Cluster::run(p, [&](Comm& c) {
    int r = c.rank();
    if (r == 0) {
      c.send(1 % p, 0, 1);
      int token = c.recv<int>(p - 1, 0);
      EXPECT_EQ(token, p);
    } else {
      int token = c.recv<int>(r - 1, 0);
      c.send((r + 1) % p, 0, token + 1);
    }
  });
  EXPECT_TRUE(res.ok);
}

INSTANTIATE_TEST_SUITE_P(Widths, ClusterWidth, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace triolet::net
