// Tests for the demand-driven distributed scheduler (src/sched/): the
// request/grant protocol end to end on real SPMD rank threads, every
// SchedulePolicy compared against sequential execution and against the
// other policies, plus the CommStats attribution of control traffic.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "net/tags.hpp"
#include "support/rng.hpp"

namespace triolet::sched {
namespace {

using core::from_array;
using core::index_t;
using core::map;
using core::Seq;
using dist::NodeRuntime;

const SchedulePolicy kAllPolicies[] = {
    SchedulePolicy::kStatic, SchedulePolicy::kGuided, SchedulePolicy::kDynamic};

Array1<double> random_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-1.0, 1.0);
  return a;
}

// -- policy grammar -----------------------------------------------------------

TEST(SchedPolicy, ResolveGrainAndAtomCount) {
  // Explicit grain wins; auto grain is extent / (8 * ranks) floored at 1.
  EXPECT_EQ(resolve_grain(1000, 4, 10), 10);
  EXPECT_EQ(resolve_grain(1000, 4, 0), 1000 / 32);
  EXPECT_EQ(resolve_grain(5, 8, 0), 1);   // small extent floors at 1
  EXPECT_EQ(resolve_grain(0, 8, 0), 1);   // empty extent still legal
  EXPECT_EQ(atom_count(0, 1), 0);
  EXPECT_EQ(atom_count(10, 3), 4);        // ceil(10/3)
  EXPECT_EQ(atom_count(9, 3), 3);
}

TEST(SchedPolicy, GuidedRunDecaysGeometricallyToFloor) {
  // Starting from R atoms on P ranks, successive grants shrink by about
  // (1 - 1/(2P)) and reach the 1-atom floor without ever stalling.
  index_t remaining = 1000;
  const int ranks = 4;
  index_t prev = remaining;
  int grants = 0;
  while (remaining > 0) {
    index_t n = guided_run_atoms(remaining, ranks);
    ASSERT_GE(n, 1);
    ASSERT_LE(n, prev);
    remaining -= std::min(remaining, n);
    prev = n;
    ++grants;
    ASSERT_LT(grants, 10000) << "guided schedule failed to terminate";
  }
  EXPECT_GT(grants, ranks);  // strictly finer than one chunk per rank
}

// -- correctness across policies and widths -----------------------------------

TEST(SchedSum, MatchesSequentialAcrossPoliciesAndWidths) {
  auto xs = random_array(10000, 1);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i] * xs[i];

  for (int nodes : {1, 2, 4, 8}) {
    for (auto policy : kAllPolicies) {
      SchedOptions opts{policy};
      double got = 0;
      auto res = net::Cluster::run(nodes, [&](net::Comm& comm) {
        NodeRuntime node(2);
        auto make = [&] {
          return map(from_array(xs), [](double x) { return x * x; });
        };
        double r = dist::sum(comm, make, opts);
        if (comm.rank() == 0) got = r;
      });
      ASSERT_TRUE(res.ok) << res.error;
      EXPECT_NEAR(got, expect, 1e-9 * std::abs(expect))
          << nodes << " nodes, " << to_string(policy);
    }
  }
}

TEST(SchedReduce, OrderedCombineIsBitwiseIdenticalAcrossPolicies) {
  // Floating-point sums of wildly mixed magnitudes: any change in the
  // combine parenthesization shows up in the low bits. The ordered path
  // must produce the same bits under every policy because atoms and their
  // fold order are policy-independent.
  Xoshiro256 rng(7);
  Array1<double> xs(4096);
  for (index_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0));
  }

  std::vector<double> results;
  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy, CombineMode::kOrdered, 64};
    double got = 0;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] { return from_array(xs); };
      double r = dist::reduce(comm, make, 0.0,
                              [](double a, double b) { return a + b; }, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    results.push_back(got);
  }
  // Bitwise, not approximate: memcmp the representations.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&results[0], &results[i], sizeof(double)))
        << to_string(kAllPolicies[i]) << " diverged from static: "
        << results[0] << " vs " << results[i];
  }
}

TEST(SchedReduce, OrderedCombineIsBitwiseIdenticalWithPrefetchOnAndOff) {
  // Grant prefetch changes *when* a worker requests its next run (and thus
  // possibly which rank executes which atom), but never the atom
  // decomposition or the ordered fold, so the kOrdered result must be the
  // same bits with prefetch on and off, for every demand-driven policy.
  Xoshiro256 rng(23);
  Array1<double> xs(4096);
  for (index_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0));
  }

  for (auto policy : {SchedulePolicy::kGuided, SchedulePolicy::kDynamic}) {
    std::vector<double> results;
    for (bool prefetch : {true, false}) {
      SchedOptions opts{policy, CombineMode::kOrdered, 64, prefetch};
      double got = 0;
      auto res = net::Cluster::run(4, [&](net::Comm& comm) {
        NodeRuntime node(2);
        auto make = [&] { return from_array(xs); };
        double r = dist::reduce(comm, make, 0.0,
                                [](double a, double b) { return a + b; }, opts);
        if (comm.rank() == 0) got = r;
      });
      ASSERT_TRUE(res.ok) << res.error;
      results.push_back(got);
    }
    EXPECT_EQ(0, std::memcmp(&results[0], &results[1], sizeof(double)))
        << to_string(policy) << ": prefetch on " << results[0]
        << " vs off " << results[1];
  }
}

TEST(SchedReduce, OrderedCombineIsReproducibleRunToRun) {
  auto xs = random_array(2000, 11);
  SchedOptions opts{SchedulePolicy::kDynamic, CombineMode::kOrdered, 16};
  double first = 0;
  for (int run = 0; run < 3; ++run) {
    double got = 0;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] { return from_array(xs); };
      double r = dist::reduce(comm, make, 0.0,
                              [](double a, double b) { return a + b; }, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    if (run == 0) {
      first = got;
    } else {
      EXPECT_EQ(0, std::memcmp(&first, &got, sizeof(double)));
    }
  }
}

TEST(SchedEpoch, TagRotationStaysInBandAndCyclesDisjointPairs) {
  // One (request, grant) pair per epoch, every pair inside the sched band,
  // and no overlap between consecutive epochs' pairs until the rotation
  // wraps (workers can only run one epoch ahead, so a wrap can never alias).
  for (int e = 0; e < 3 * net::kSchedEpochTags; ++e) {
    const int req = net::sched_request_tag(e);
    const int grant = net::sched_grant_tag(e);
    ASSERT_GE(req, net::kTagSchedBand);
    ASSERT_LT(grant, net::kTagSchedBandEnd);
    ASSERT_EQ(grant, req + 1);
    ASSERT_EQ(req, net::sched_request_tag(e + net::kSchedEpochTags));
    ASSERT_NE(req, net::sched_request_tag(e + 1));
  }
  EXPECT_EQ(net::kTagSchedRequest, net::sched_request_tag(0));
  EXPECT_EQ(net::kTagSchedGrant, net::sched_grant_tag(0));
}

TEST(SchedEpoch, BackToBackRoundsDoNotCrossTalk) {
  // Regression: without epoch-rotated protocol tags, a worker that finishes
  // round r early posts its round r+1 request while the root is still
  // draining round r's final requests; the root answered it with a round-r
  // `done`, dismissing the worker from a round that never started and
  // starving a slow round-r worker forever (deadlock in the next gather).
  // Many short back-to-back rounds on few atoms make the race window wide;
  // this test hung within a few iterations on a single-core host before the
  // fix.
  const auto xs = random_array(4096, 99);
  const double expect = [&] {
    double s = 0;
    for (index_t i = 0; i < xs.size(); ++i) s += xs[i];
    return s;
  }();
  for (int iter = 0; iter < 6; ++iter) {
    SchedOptions opts{SchedulePolicy::kGuided, CombineMode::kOrdered, 64};
    std::vector<double> rounds;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(1);
      auto make = [&] { return from_array(xs); };
      for (int r = 0; r < 4; ++r) {
        double v = dist::reduce(comm, make, 0.0,
                                [](double a, double b) { return a + b; }, opts);
        if (comm.rank() == 0) rounds.push_back(v);
      }
    });
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(rounds.size(), 4u);
    for (double v : rounds) {
      // kOrdered: every round folds the same atoms in the same order, so
      // the rounds must agree bitwise — a cross-round grant would show up
      // as a missing or duplicated atom.
      EXPECT_EQ(0, std::memcmp(&rounds[0], &v, sizeof(double)));
      EXPECT_NEAR(v, expect, 1e-9 * xs.size());
    }
  }
}

TEST(SchedCount, FilteredCountUnderEveryPolicy) {
  // filter() turns the flat indexer into an indexer of steppers — the
  // irregular shape the demand-driven scheduler exists for.
  auto xs = random_array(9999, 5);
  index_t expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += (xs[i] > 0);

  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy};
    index_t got = -1;
    auto res = net::Cluster::run(3, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] {
        return core::filter(from_array(xs), [](double x) { return x > 0; });
      };
      index_t r = dist::count(comm, make, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(got, expect) << to_string(policy);
  }
}

TEST(SchedHistogram, IntegerHistogramIdenticalAcrossPolicies) {
  const index_t nbins = 32;
  Xoshiro256 rng(9);
  Array1<index_t> bins(5000);
  std::vector<std::int64_t> expect(static_cast<std::size_t>(nbins), 0);
  for (index_t i = 0; i < bins.size(); ++i) {
    bins[i] = static_cast<index_t>(rng.next() % nbins);
    expect[static_cast<std::size_t>(bins[i])] += 1;
  }

  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy};
    Array1<std::int64_t> got;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] { return from_array(bins); };
      auto r = dist::histogram(comm, nbins, make, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(got.size(), nbins) << to_string(policy);
    for (index_t b = 0; b < nbins; ++b) {
      EXPECT_EQ(got[b], expect[static_cast<std::size_t>(b)])
          << to_string(policy) << " bin " << b;
    }
  }
}

TEST(SchedFloatHistogram, MatchesStaticWithinRounding) {
  const index_t ncells = 16;
  Xoshiro256 rng(13);
  Array1<std::pair<index_t, double>> hits(3000);
  std::vector<double> expect(static_cast<std::size_t>(ncells), 0.0);
  for (index_t i = 0; i < hits.size(); ++i) {
    index_t cell = static_cast<index_t>(rng.next() % ncells);
    double w = rng.uniform(0.0, 1.0);
    hits[i] = {cell, w};
    expect[static_cast<std::size_t>(cell)] += w;
  }

  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy};
    Array1<double> got;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] { return from_array(hits); };
      auto r = dist::float_histogram<double>(comm, ncells, make, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(got.size(), ncells);
    for (index_t c = 0; c < ncells; ++c) {
      EXPECT_NEAR(got[c], expect[static_cast<std::size_t>(c)], 1e-9)
          << to_string(policy) << " cell " << c;
    }
  }
}

TEST(SchedBuildArray1, AssemblesIdenticalArrayUnderEveryPolicy) {
  auto xs = random_array(7777, 17);
  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy};
    Array1<double> got;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] {
        return map(from_array(xs), [](double x) { return 2.0 * x + 1.0; });
      };
      auto r = dist::build_array1(comm, make, opts);
      if (comm.rank() == 0) got = std::move(r);
    });
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(got.size(), xs.size()) << to_string(policy);
    for (index_t i = got.lo(); i < got.hi(); ++i) {
      ASSERT_EQ(got[i], 2.0 * xs[i] + 1.0) << to_string(policy) << " @" << i;
    }
  }
}

TEST(SchedBuildArray2, RowBandsAssembleTheFullMatrix) {
  const index_t h = 37, w = 23;
  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy, CombineMode::kTree, 3};
    Array2<index_t> got;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] {
        return map(core::array_range(h, w),
                   [](core::Index2 i) { return i.y * 1000 + i.x; });
      };
      auto r = dist::build_array2(comm, make, opts);
      if (comm.rank() == 0) got = std::move(r);
    });
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(got.rows(), h) << to_string(policy);
    ASSERT_EQ(got.cols(), w) << to_string(policy);
    for (index_t y = 0; y < h; ++y) {
      for (index_t x = 0; x < w; ++x) {
        ASSERT_EQ(got(y, x), y * 1000 + x)
            << to_string(policy) << " @(" << y << "," << x << ")";
      }
    }
  }
}

// -- stats attribution ---------------------------------------------------------

TEST(SchedStatsAttribution, StaticHasNoRequestsDynamicHasMany) {
  auto xs = random_array(4096, 21);
  const int nodes = 4;
  const index_t grain = 64;  // 64 atoms

  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy, CombineMode::kTree, grain};
    auto res = net::Cluster::run(nodes, [&](net::Comm& comm) {
      NodeRuntime node(2);
      // Each atom must cost real time, otherwise the root races through
      // the whole queue before any worker's first request arrives and the
      // grant counters legitimately read zero.
      auto make = [&] {
        return map(from_array(xs), [](double x) {
          double v = x;
          for (int k = 0; k < 400; ++k) v += std::sin(v) * 1e-3;
          return v;
        });
      };
      (void)dist::sum(comm, make, opts);
    });
    ASSERT_TRUE(res.ok) << res.error;
    const net::SchedStats& s = res.total_stats.sched;

    // Every element ran exactly once, wherever it ran.
    EXPECT_EQ(s.items_executed, xs.size()) << to_string(policy);
    EXPECT_GT(s.chunks_executed, 0) << to_string(policy);

    if (policy == SchedulePolicy::kStatic) {
      EXPECT_EQ(s.requests_sent, 0);
      EXPECT_EQ(s.steal_waits, 0);
      EXPECT_EQ(s.grants_served, nodes - 1);  // one push per worker
    } else {
      // Each worker sends at least one work request plus the final request
      // answered with `done`; every request is matched by one response.
      EXPECT_GE(s.requests_sent, nodes - 1) << to_string(policy);
      EXPECT_EQ(s.steal_waits, s.requests_sent) << to_string(policy);
      EXPECT_GT(s.grants_served, 0) << to_string(policy);
      EXPECT_EQ(s.control_messages, 2 * s.requests_sent) << to_string(policy);
      EXPECT_GT(s.control_bytes, 0) << to_string(policy);
    }
    if (policy == SchedulePolicy::kDynamic) {
      // One grant per atom that workers ran: strictly more protocol
      // traffic than guided on the same problem.
      EXPECT_GE(s.requests_sent, s.grants_served);
      EXPECT_GT(s.grants_served, nodes - 1);
    }
  }
}

// -- degenerate shapes ---------------------------------------------------------

TEST(SchedDegenerate, EmptyDomainTerminatesAndSumsToZero) {
  for (auto policy : kAllPolicies) {
    for (auto combine : {CombineMode::kTree, CombineMode::kOrdered}) {
      SchedOptions opts{policy, combine};
      double got = -1;
      auto res = net::Cluster::run(4, [&](net::Comm& comm) {
        NodeRuntime node(1);
        auto make = [&] {
          return map(core::range(5, 5), [](index_t) { return 1.0; });
        };
        double r = dist::reduce(comm, make, 0.0,
                                [](double a, double b) { return a + b; },
                                opts);
        if (comm.rank() == 0) got = r;
      });
      ASSERT_TRUE(res.ok) << res.error;
      EXPECT_EQ(got, 0.0) << to_string(policy);
    }
  }
}

TEST(SchedDegenerate, EmptyDomainBuildsEmptyArray) {
  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy};
    index_t got_size = -1;
    auto res = net::Cluster::run(3, [&](net::Comm& comm) {
      NodeRuntime node(1);
      auto make = [&] {
        return map(core::range(0, 0), [](index_t i) { return double(i); });
      };
      auto r = dist::build_array1(comm, make, opts);
      if (comm.rank() == 0) got_size = r.size();
    });
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(got_size, 0) << to_string(policy);
  }
}

TEST(SchedDegenerate, MoreNodesThanAtoms) {
  // 3 elements, grain 1 => 3 atoms on 8 nodes: most ranks get nothing and
  // must still terminate (static sends them empty grants; demand answers
  // their first request with done).
  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy, CombineMode::kTree, 1};
    double got = 0;
    auto res = net::Cluster::run(8, [&](net::Comm& comm) {
      NodeRuntime node(1);
      auto make = [&] {
        return map(core::range(0, 3), [](index_t i) { return double(i + 1); });
      };
      double r = dist::sum(comm, make, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(got, 6.0) << to_string(policy);
  }
}

TEST(SchedDegenerate, GrainLargerThanExtentIsOneAtom) {
  auto xs = random_array(100, 23);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i];

  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy, CombineMode::kTree, 1000};
    double got = 0;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(1);
      auto make = [&] { return from_array(xs); };
      double r = dist::sum(comm, make, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_NEAR(got, expect, 1e-12) << to_string(policy);
  }
}

TEST(SchedDegenerate, SingleRankRunsEverythingLocally) {
  auto xs = random_array(500, 29);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i];

  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy, CombineMode::kOrdered, 7};
    double got = 0;
    auto res = net::Cluster::run(1, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] { return from_array(xs); };
      double r = dist::sum(comm, make, opts);
      got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_NEAR(got, expect, 1e-12) << to_string(policy);
  }
}

// -- grant serialization -------------------------------------------------------

TEST(SchedGrant, RoundTripsThroughCodec) {
  auto xs = random_array(64, 31);
  auto it = core::from_array(xs);
  using It = decltype(it);

  Grant<It> g{0, 3, 2, 8, it.slice(Seq{16, 32})};
  auto bytes = serial::to_bytes(g);
  auto back = serial::from_bytes<Grant<It>>(bytes);
  EXPECT_EQ(back.done, 0);
  EXPECT_EQ(back.atom_lo, 3);
  EXPECT_EQ(back.atom_n, 2);
  EXPECT_EQ(back.grain, 8);
  EXPECT_EQ(back.task.domain(), (Seq{16, 32}));

  // A done grant carries no task payload at all.
  Grant<It> done{1, 0, 0, 8, {}};
  auto done_bytes = serial::to_bytes(done);
  EXPECT_EQ(done_bytes.size(), static_cast<std::size_t>(kGrantHeaderBytes));
  auto done_back = serial::from_bytes<Grant<It>>(done_bytes);
  EXPECT_EQ(done_back.done, 1);
}

// -- streamed grant execution --------------------------------------------------

TEST(SchedStreaming, SumMatchesSequentialUnderEveryPolicy) {
  auto xs = random_array(8000, 41);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i] * xs[i];

  for (auto policy : kAllPolicies) {
    SchedOptions opts{policy, CombineMode::kTree, 32};
    opts.streaming = true;
    double got = 0;
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      NodeRuntime node(2);
      auto make = [&] {
        return map(from_array(xs), [](double x) { return x * x; });
      };
      double r = dist::sum(comm, make, opts);
      if (comm.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_NEAR(got, expect, 1e-9 * std::abs(expect)) << to_string(policy);
  }
}

TEST(SchedStreaming, CountHistogramAndBuildWorkStreamed) {
  auto xs = random_array(6000, 43);
  index_t expect_count = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect_count += (xs[i] > 0);

  SchedOptions opts{SchedulePolicy::kDynamic, CombineMode::kTree, 16};
  opts.streaming = true;
  index_t got_count = -1;
  Array1<std::int64_t> got_hist;
  Array1<double> got_arr;
  auto res = net::Cluster::run(3, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make_filter = [&] {
      return core::filter(from_array(xs), [](double x) { return x > 0; });
    };
    index_t c = dist::count(comm, make_filter, opts);
    auto make_bins = [&] {
      return map(from_array(xs),
                 [](double x) { return static_cast<index_t>(x > 0); });
    };
    auto h = dist::histogram(comm, 2, make_bins, opts);
    auto make_sq = [&] {
      return map(from_array(xs), [](double x) { return x * x; });
    };
    auto a = dist::build_array1(comm, make_sq, opts);
    if (comm.rank() == 0) {
      got_count = c;
      got_hist = std::move(h);
      got_arr = std::move(a);
    }
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got_count, expect_count);
  ASSERT_EQ(got_hist.size(), 2);
  EXPECT_EQ(got_hist[0] + got_hist[1], xs.size());
  EXPECT_EQ(got_hist[1], expect_count);
  ASSERT_EQ(got_arr.size(), xs.size());
  for (index_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(got_arr[i], xs[i] * xs[i]) << "index " << i;
  }
}

TEST(SchedStreaming, OrderedCombineBitwiseIdenticalStreamingOnAndOff) {
  // The acceptance bar for the streamed grant path: handing chunks to the
  // pool must change *where* per-atom partials are computed, never their
  // values or fold order. Mixed magnitudes make any deviation visible.
  Xoshiro256 rng(29);
  Array1<double> xs(4096);
  for (index_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0));
  }

  for (auto policy : {SchedulePolicy::kGuided, SchedulePolicy::kDynamic}) {
    std::vector<double> results;
    for (bool streaming : {false, true}) {
      SchedOptions opts{policy, CombineMode::kOrdered, 64};
      opts.streaming = streaming;
      double got = 0;
      auto res = net::Cluster::run(4, [&](net::Comm& comm) {
        NodeRuntime node(2);
        auto make = [&] { return from_array(xs); };
        double r = dist::reduce(comm, make, 0.0,
                                [](double a, double b) { return a + b; },
                                opts);
        if (comm.rank() == 0) got = r;
      });
      ASSERT_TRUE(res.ok) << res.error;
      results.push_back(got);
    }
    EXPECT_EQ(0, std::memcmp(&results[0], &results[1], sizeof(double)))
        << to_string(policy) << ": streaming off " << results[0]
        << " vs on " << results[1];
  }
}

TEST(SchedStreaming, RecordsStreamedGrantsAndOverlap) {
  auto xs = random_array(4096, 47);
  SchedOptions opts{SchedulePolicy::kDynamic, CombineMode::kTree, 32};
  opts.streaming = true;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    NodeRuntime node(2);
    // Atoms must cost real time so grants are still in flight on the pool
    // while the rank thread waits for the next one (the overlap window).
    auto make = [&] {
      return map(from_array(xs), [](double x) {
        double v = x;
        for (int k = 0; k < 400; ++k) v += std::sin(v) * 1e-3;
        return v;
      });
    };
    (void)dist::sum(comm, make, opts);
  });
  ASSERT_TRUE(res.ok) << res.error;
  const net::SchedStats& s = res.total_stats.sched;
  // Every executed chunk went through the stream on the demand-driven path.
  EXPECT_GT(s.streamed_grants, 0);
  EXPECT_EQ(s.streamed_grants, s.chunks_executed);
  EXPECT_EQ(s.items_executed, xs.size());
  // Busy-while-receiving: some grant wait overlapped in-flight compute.
  EXPECT_GT(s.overlap_seconds, 0.0);
  // The pool counters the scheduled run charged to CommStats.
  EXPECT_GT(res.total_stats.pool.tasks_executed, 0);
}

TEST(SchedStreaming, SingleRankStreamsSelfIssuedAtoms) {
  // One rank: the root has no workers to serve, but its own atoms still
  // stream onto the pool (and must all land before the result is read).
  auto xs = random_array(3000, 53);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i];
  SchedOptions opts{SchedulePolicy::kGuided, CombineMode::kOrdered, 8};
  opts.streaming = true;
  double got = 0;
  std::int64_t streamed = 0;
  auto res = net::Cluster::run(1, [&](net::Comm& comm) {
    NodeRuntime node(2);
    auto make = [&] { return from_array(xs); };
    got = dist::reduce(comm, make, 0.0,
                       [](double a, double b) { return a + b; }, opts);
    streamed = comm.stats().sched.streamed_grants;
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(got, expect, 1e-9 * xs.size());
  EXPECT_GT(streamed, 0);
}

}  // namespace
}  // namespace triolet::sched
