// Unit tests for the dense array library: global-base indexing, slicing
// invariants (the §3.5 partitioning substrate), transposition, and
// serialization of arrays and slices.

#include <gtest/gtest.h>

#include <numeric>

#include "array/array.hpp"
#include "serial/serialize.hpp"
#include "support/rng.hpp"

namespace triolet {
namespace {

TEST(Array1, ConstructsAndIndexes) {
  Array1<int> a(5, 7);
  EXPECT_EQ(a.size(), 5);
  EXPECT_EQ(a.lo(), 0);
  EXPECT_EQ(a.hi(), 5);
  for (index_t i = 0; i < 5; ++i) EXPECT_EQ(a[i], 7);
}

TEST(Array1, SliceKeepsGlobalIndices) {
  Array1<int> a(10);
  for (index_t i = 0; i < 10; ++i) a[i] = static_cast<int>(i * i);
  Array1<int> s = a.slice(3, 7);
  EXPECT_EQ(s.lo(), 3);
  EXPECT_EQ(s.hi(), 7);
  for (index_t i = 3; i < 7; ++i) EXPECT_EQ(s[i], a[i]);
}

TEST(Array1, SliceOfSliceComposes) {
  Array1<int> a(100);
  for (index_t i = 0; i < 100; ++i) a[i] = static_cast<int>(i);
  auto s1 = a.slice(10, 90);
  auto s2 = s1.slice(40, 50);
  for (index_t i = 40; i < 50; ++i) EXPECT_EQ(s2[i], static_cast<int>(i));
}

TEST(Array1, EmptySliceIsAllowed) {
  Array1<int> a(4);
  auto s = a.slice(2, 2);
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.lo(), 2);
}

TEST(Array1Death, OutOfRangeSliceAborts) {
  Array1<int> a(4);
  EXPECT_DEATH((void)a.slice(1, 5), "slice out of range");
}

TEST(Array1Death, OutOfRangeIndexAborts) {
  Array1<int> a(4);
  auto s = a.slice(1, 3);
  EXPECT_DEATH((void)s[0], "");
  EXPECT_DEATH((void)s[3], "");
}

TEST(Array1, SerializationPreservesBase) {
  Array1<double> a(10);
  for (index_t i = 0; i < 10; ++i) a[i] = 0.5 * static_cast<double>(i);
  auto s = a.slice(4, 8);
  auto back = serial::from_bytes<Array1<double>>(serial::to_bytes(s));
  EXPECT_EQ(back, s);
  EXPECT_EQ(back.lo(), 4);
  EXPECT_DOUBLE_EQ(back[5], a[5]);
}

TEST(Array2, RowMajorLayout) {
  Array2<int> m(3, 4);
  int v = 0;
  for (index_t y = 0; y < 3; ++y)
    for (index_t x = 0; x < 4; ++x) m(y, x) = v++;
  EXPECT_EQ(m.storage()[5], m(1, 1));
  EXPECT_EQ(m.row(2)[3], m(2, 3));
}

TEST(Array2, RowSpanIsContiguousView) {
  Array2<float> m(2, 8, 1.5f);
  auto r = m.row(1);
  EXPECT_EQ(r.size(), 8u);
  EXPECT_EQ(r.data(), m.data() + 8);
}

TEST(Array2, SliceRowsKeepsGlobalRows) {
  Array2<int> m(6, 3);
  for (index_t y = 0; y < 6; ++y)
    for (index_t x = 0; x < 3; ++x) m(y, x) = static_cast<int>(10 * y + x);
  auto s = m.slice_rows(2, 5);
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.row_lo(), 2);
  for (index_t y = 2; y < 5; ++y)
    for (index_t x = 0; x < 3; ++x) EXPECT_EQ(s(y, x), m(y, x));
}

TEST(Array2, SlicedRowsSerializeAndRestore) {
  Array2<double> m(5, 4);
  for (index_t y = 0; y < 5; ++y)
    for (index_t x = 0; x < 4; ++x) m(y, x) = y + 0.1 * static_cast<double>(x);
  auto s = m.slice_rows(1, 4);
  auto back = serial::from_bytes<Array2<double>>(serial::to_bytes(s));
  EXPECT_EQ(back, s);
  EXPECT_DOUBLE_EQ(back(3, 2), m(3, 2));
}

TEST(Array2Death, RowSliceOutOfRangeAborts) {
  Array2<int> m(3, 3);
  EXPECT_DEATH((void)m.slice_rows(1, 4), "row slice out of range");
}

TEST(Array3, IndexesZMajor) {
  Array3<int> g(2, 3, 4);
  int v = 0;
  for (index_t z = 0; z < 2; ++z)
    for (index_t y = 0; y < 3; ++y)
      for (index_t x = 0; x < 4; ++x) g(z, y, x) = v++;
  EXPECT_EQ(g.storage()[(1 * 3 + 2) * 4 + 3], g(1, 2, 3));
  EXPECT_EQ(g.size(), 24);
}

TEST(Array3, Serializes) {
  Array3<float> g(2, 2, 2, 0.25f);
  g(1, 0, 1) = -4.0f;
  auto back = serial::from_bytes<Array3<float>>(serial::to_bytes(g));
  EXPECT_EQ(back, g);
}

TEST(Transpose, InvolutionOnRandomMatrix) {
  Xoshiro256 rng(17);
  Array2<double> m(7, 5);
  for (index_t y = 0; y < 7; ++y)
    for (index_t x = 0; x < 5; ++x) m(y, x) = rng.uniform();
  Array2<double> t = transpose(m);
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 7);
  for (index_t y = 0; y < 7; ++y)
    for (index_t x = 0; x < 5; ++x) EXPECT_DOUBLE_EQ(t(x, y), m(y, x));
  EXPECT_EQ(transpose(t), m);
}

// Property sweep: concatenating the slices of any partition reconstructs the
// original array — the invariant distributed partitioning relies on.
class SlicePartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SlicePartitionProperty, SlicesCoverArrayExactly) {
  const int parts = GetParam();
  Xoshiro256 rng(99);
  Array1<int> a(103);
  for (index_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<int>(rng.below(1000));
  index_t n = a.size();
  std::vector<int> rebuilt;
  for (int p = 0; p < parts; ++p) {
    index_t lo = n * p / parts, hi = n * (p + 1) / parts;
    auto s = a.slice(lo, hi);
    for (index_t i = lo; i < hi; ++i) rebuilt.push_back(s[i]);
  }
  ASSERT_EQ(static_cast<index_t>(rebuilt.size()), n);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(rebuilt[static_cast<size_t>(i)], a[i]);
}

INSTANTIATE_TEST_SUITE_P(Partitions, SlicePartitionProperty,
                         ::testing::Values(1, 2, 3, 7, 16, 103, 200));

}  // namespace
}  // namespace triolet
