// Tests for the Eden emulation library: boxed cons lists, chunked arrays,
// the deoptimized math path, and the flat process farm.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "eden/chunked.hpp"
#include "eden/farm.hpp"
#include "eden/list.hpp"
#include "eden/slowmath.hpp"
#include "net/cluster.hpp"

namespace triolet::eden {
namespace {

TEST(List, NilIsEmpty) {
  List<int> xs;
  EXPECT_TRUE(xs.empty());
  EXPECT_EQ(xs.length(), 0u);
}

TEST(List, ConsAndHeadTail) {
  auto xs = List<int>::cons(1, List<int>::cons(2, List<int>::nil()));
  EXPECT_EQ(xs.head(), 1);
  EXPECT_EQ(xs.tail().head(), 2);
  EXPECT_TRUE(xs.tail().tail().empty());
}

TEST(List, FromToVectorRoundTrips) {
  std::vector<int> v{5, 4, 3, 2, 1};
  EXPECT_EQ(List<int>::from_vector(v).to_vector(), v);
}

TEST(List, MapAndFilter) {
  auto xs = List<int>::from_vector({1, 2, 3, 4});
  EXPECT_EQ(xs.map([](int x) { return x * x; }).to_vector(),
            (std::vector<int>{1, 4, 9, 16}));
  EXPECT_EQ(xs.filter([](int x) { return x % 2 == 0; }).to_vector(),
            (std::vector<int>{2, 4}));
}

TEST(List, FoldlIsLeftToRight) {
  auto xs = List<std::string>::from_vector({"a", "b", "c"});
  auto s = xs.foldl([](std::string acc, const std::string& x) { return acc + x; },
                    std::string{});
  EXPECT_EQ(s, "abc");
}

TEST(List, ZipWithStopsAtShorter) {
  auto a = List<int>::from_vector({1, 2, 3});
  auto b = List<int>::from_vector({10, 20});
  EXPECT_EQ(a.zip_with(b, [](int x, int y) { return x + y; }).to_vector(),
            (std::vector<int>{11, 22}));
}

TEST(List, SumOfBoxedList) {
  auto xs = List<double>::from_vector({0.5, 1.5, 2.0});
  EXPECT_DOUBLE_EQ(list_sum(xs), 4.0);
}

TEST(List, SharedTailsSurviveOriginalDestruction) {
  List<int> tail;
  {
    auto xs = List<int>::from_vector({1, 2, 3, 4});
    tail = xs.tail();
  }
  EXPECT_EQ(tail.to_vector(), (std::vector<int>{2, 3, 4}));
}

TEST(List, LongListDestructionDoesNotOverflowStack) {
  std::vector<int> big(500000, 7);
  {
    auto xs = List<int>::from_vector(big);
    EXPECT_EQ(xs.length(), big.size());
  }  // iterative release
}

TEST(Chunked, RoundTripsAndChunks) {
  std::vector<float> v(2500, 0);
  std::iota(v.begin(), v.end(), 0.0f);
  auto c = ChunkedArray<float>::from_vector(v);
  EXPECT_EQ(c.size(), v.size());
  EXPECT_EQ(c.chunk_count(), 3u);  // 1024 + 1024 + 452
  EXPECT_EQ(c.to_vector(), v);
}

TEST(Chunked, ChunkRangeSelectsSubarrays) {
  std::vector<float> v(3000);
  std::iota(v.begin(), v.end(), 0.0f);
  auto c = ChunkedArray<float>::from_vector(v);
  auto mid = c.chunk_range(1, 2);
  EXPECT_EQ(mid.size(), 1024u);
  EXPECT_FLOAT_EQ(mid.to_vector().front(), 1024.0f);
}

TEST(Chunked, FoldlMatchesVectorSum) {
  std::vector<float> v(5000, 0.25f);
  auto c = ChunkedArray<float>::from_vector(v);
  float s = c.foldl([](float acc, float x) { return acc + x; }, 0.0f);
  EXPECT_FLOAT_EQ(s, 1250.0f);
}

TEST(Chunked, SerializesPerChunk) {
  std::vector<float> v(1500, 1.0f);
  auto c = ChunkedArray<float>::from_vector(v);
  auto back = serial::from_bytes<ChunkedArray<float>>(serial::to_bytes(c));
  EXPECT_EQ(back, c);
  // Framing: outer count + 2 chunk headers + payload.
  EXPECT_GT(serial::wire_size(c), 1500 * 4 + 16);
}

TEST(SlowMath, AgreesWithFastMathWithinFloatPrecision) {
  for (float x = -6.0f; x < 6.0f; x += 0.37f) {
    EXPECT_NEAR(eden_sinf(x), std::sin(x), 2e-6f);
    EXPECT_NEAR(eden_cosf(x), std::cos(x), 2e-6f);
  }
  for (double d = -1.0; d <= 1.0; d += 0.13) {
    EXPECT_NEAR(eden_acos(d), std::acos(d), 1e-12);
  }
}

TEST(Farm, SingleRankComputesLocally) {
  auto res = net::Cluster::run(1, [](net::Comm& c) {
    auto out = farm<int, int>(c, {1, 2, 3}, [](int x) { return x * x; });
    EXPECT_EQ(out, (std::vector<int>{1, 4, 9}));
  });
  EXPECT_TRUE(res.ok);
}

TEST(Farm, ResultsArriveInTaskOrder) {
  auto res = net::Cluster::run(4, [](net::Comm& c) {
    std::vector<int> tasks;
    if (c.rank() == 0) {
      tasks.resize(20);
      std::iota(tasks.begin(), tasks.end(), 0);
    }
    auto out = farm<int, int>(c, tasks, [](int x) { return 10 * x; });
    if (c.rank() == 0) {
      ASSERT_EQ(out.size(), 20u);
      for (int i = 0; i < 20; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], 10 * i);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Farm, MasterTrafficIsWholeTaskData) {
  // Every task payload plus every result goes through rank 0: total traffic
  // is task bytes + result bytes, with no slicing intelligence.
  auto res = net::Cluster::run(3, [](net::Comm& c) {
    std::vector<std::vector<double>> tasks;
    if (c.rank() == 0) tasks.assign(8, std::vector<double>(1000, 1.0));
    (void)farm<std::vector<double>, double>(
        c, tasks, [](const std::vector<double>& t) {
          double s = 0;
          for (double v : t) s += v;
          return s;
        });
  });
  EXPECT_TRUE(res.ok);
  // 8 tasks x ~8008 bytes, plus terminators and 8 tiny results.
  EXPECT_GT(res.total_stats.bytes_sent, 8 * 8000);
}

TEST(Farm, BoundedBufferFailsLikeEdenSgemm) {
  net::ClusterOptions opts;
  opts.max_message_bytes = 1024;
  auto res = net::Cluster::run(
      2,
      [](net::Comm& c) {
        std::vector<std::vector<double>> tasks;
        if (c.rank() == 0) tasks.assign(2, std::vector<double>(4096, 1.0));
        (void)farm<std::vector<double>, double>(
            c, tasks, [](const std::vector<double>&) { return 0.0; });
      },
      opts);
  EXPECT_FALSE(res.ok);
}

class FarmWidth : public ::testing::TestWithParam<int> {};

TEST_P(FarmWidth, SumOverFarmMatchesSerial) {
  auto res = net::Cluster::run(GetParam(), [](net::Comm& c) {
    std::vector<int> tasks;
    if (c.rank() == 0) {
      tasks.resize(37);
      std::iota(tasks.begin(), tasks.end(), 1);
    }
    auto out = farm<int, std::int64_t>(c, tasks, [](int x) {
      return static_cast<std::int64_t>(x) * x;
    });
    if (c.rank() == 0) {
      std::int64_t total = 0;
      for (auto v : out) total += v;
      std::int64_t expect = 0;
      for (int x = 1; x <= 37; ++x) expect += static_cast<std::int64_t>(x) * x;
      EXPECT_EQ(total, expect);
    }
  });
  EXPECT_TRUE(res.ok);
}

INSTANTIATE_TEST_SUITE_P(Widths, FarmWidth, ::testing::Values(1, 2, 3, 6));

}  // namespace
}  // namespace triolet::eden
