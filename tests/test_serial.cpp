// Unit and property tests for the serialization framework (src/serial):
// round-trips for every supported shape, the block-copy fast path, wire-size
// accounting, checksums, and failure modes.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/consume.hpp"
#include "core/domains.hpp"
#include "dist/dist_array.hpp"
#include "dist/segmented.hpp"
#include "dist/views.hpp"
#include "serial/checksum.hpp"
#include "serial/serialize.hpp"
#include "support/rng.hpp"

namespace triolet_serial_test {

struct Particle {
  double x, y, z;
  float charge;
  bool operator==(const Particle&) const = default;
};

struct Nested {
  std::string name;
  std::vector<double> samples;
  std::optional<int> tag;
  bool operator==(const Nested&) const = default;
};
TRIOLET_SERIALIZE_FIELDS(Nested, name, samples, tag)

}  // namespace triolet_serial_test

namespace triolet::serial {
namespace {

using triolet_serial_test::Nested;
using triolet_serial_test::Particle;

template <typename T>
void expect_roundtrip(const T& v) {
  auto bytes = to_bytes(v);
  T back = from_bytes<T>(bytes);
  EXPECT_EQ(back, v);
}

TEST(Serialize, RoundTripsPods) {
  expect_roundtrip(42);
  expect_roundtrip(-17LL);
  expect_roundtrip(3.14159);
  expect_roundtrip(2.5f);
  expect_roundtrip(true);
  expect_roundtrip('x');
}

TEST(Serialize, RoundTripsPodStruct) {
  expect_roundtrip(Particle{1.0, -2.0, 3.0, 0.5f});
}

TEST(Serialize, RoundTripsVectors) {
  expect_roundtrip(std::vector<int>{});
  expect_roundtrip(std::vector<int>{1, 2, 3});
  expect_roundtrip(std::vector<double>{1.5, -2.5});
  expect_roundtrip(std::vector<Particle>{{1, 2, 3, 4}, {5, 6, 7, 8}});
}

TEST(Serialize, RoundTripsNestedVectors) {
  expect_roundtrip(std::vector<std::vector<int>>{{1}, {}, {2, 3}});
}

TEST(Serialize, RoundTripsStrings) {
  expect_roundtrip(std::string{});
  expect_roundtrip(std::string{"hello world"});
  expect_roundtrip(std::string(10000, 'q'));
}

TEST(Serialize, RoundTripsPairsAndTuples) {
  expect_roundtrip(std::pair<std::string, int>{"k", 9});
  expect_roundtrip(std::tuple<int, std::string, double>{1, "two", 3.0});
}

TEST(Serialize, RoundTripsOptionals) {
  expect_roundtrip(std::optional<int>{});
  expect_roundtrip(std::optional<int>{5});
  expect_roundtrip(std::optional<std::string>{"text"});
}

TEST(Serialize, RoundTripsFieldAdaptedStructs) {
  expect_roundtrip(Nested{"run-1", {0.5, 1.5}, 7});
  expect_roundtrip(Nested{"", {}, std::nullopt});
}

TEST(Serialize, PodVectorUsesBlockCopyLayout) {
  // length header (8 bytes) + raw payload: the fast path adds no per-element
  // framing, which is what makes array serialization a single memcpy.
  std::vector<float> v(1000, 1.0f);
  EXPECT_EQ(wire_size(v), sizeof(std::uint64_t) + v.size() * sizeof(float));
}

TEST(Serialize, WireSizeMatchesBytesProduced) {
  Nested n{"abc", {1, 2, 3}, 4};
  EXPECT_EQ(wire_size(n), to_bytes(n).size());
}

TEST(Serialize, TrailingBytesAreRejected) {
  auto bytes = to_bytes(7);
  bytes.push_back(std::byte{0});
  EXPECT_DEATH((void)from_bytes<int>(bytes), "trailing bytes");
}

TEST(Serialize, TruncatedBufferIsRejected) {
  auto bytes = to_bytes(std::vector<int>{1, 2, 3});
  bytes.resize(bytes.size() - 1);
  EXPECT_DEATH((void)from_bytes<std::vector<int>>(bytes), "past end");
}

TEST(ByteReader, ViewRawBorrowsWithoutCopy) {
  std::vector<std::byte> buf(16, std::byte{0xAB});
  ByteReader r(buf);
  auto s = r.view_raw(8);
  EXPECT_EQ(s.data(), buf.data());
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(ByteReader, BorrowPastEndIsRejectedBeforeAdvancing) {
  std::vector<std::byte> buf(8, std::byte{1});
  ByteReader r(buf);
  EXPECT_DEATH((void)r.borrow(9), "borrow past end");
}

TEST(ByteReader, BorrowBoundsCheckSurvivesOverflowingLength) {
  // A hostile length header near SIZE_MAX must not wrap the bounds check.
  std::vector<std::byte> buf(8, std::byte{1});
  ByteReader r(buf);
  (void)r.borrow(4);
  EXPECT_DEATH((void)r.borrow(static_cast<std::size_t>(-3)), "borrow past end");
}

#ifndef NDEBUG
TEST(ByteReader, RetiredSentinelAbortsLaterBorrows) {
  std::vector<std::byte> buf(16, std::byte{7});
  auto sentinel = std::make_shared<BorrowSentinel>();
  ByteReader r(buf);
  r.set_sentinel(sentinel);
  (void)r.borrow(4);  // fine while the payload owner is alive
  sentinel->retire();
  EXPECT_DEATH((void)r.borrow(4), "retired payload");
}
#endif

// -- edge cases of the wire format -------------------------------------------

TEST(SerializeEdge, EmptyVectorsRoundTrip) {
  expect_roundtrip(std::vector<double>{});
  expect_roundtrip(std::vector<std::string>{});
  expect_roundtrip(std::vector<std::vector<int>>{});
  expect_roundtrip(std::string{});
}

TEST(SerializeEdge, NestedVectorOfVectorsRoundTrips) {
  // Inner vectors straddle the borrow threshold, so a segmented writer mixes
  // copied and borrowed segments within one value.
  std::vector<std::vector<double>> v;
  v.push_back({});                              // empty inner
  v.push_back(std::vector<double>(3, 1.5));     // below threshold
  v.push_back(std::vector<double>(1000, -2.0)); // above threshold
  expect_roundtrip(v);
  auto sg = to_segments(v);
  EXPECT_EQ(sg.gather(), to_bytes(v));
  EXPECT_GT(sg.bytes_borrowed(), 0u);
}

TEST(SerializeEdge, OptionalOfArraysRoundTrips) {
  expect_roundtrip(std::optional<std::array<double, 4>>{});
  expect_roundtrip(std::optional<std::array<double, 4>>{{1.0, 2.0, 3.0, 4.0}});
  expect_roundtrip(std::optional<std::vector<double>>{});
  expect_roundtrip(
      std::optional<std::vector<double>>{std::vector<double>(500, 0.25)});
}

TEST(SerializeEdge, BorrowThresholdBoundaryRoundTripsAndChecksums) {
  // Payload spans of exactly threshold-1 / threshold / threshold+1 bytes:
  // the first is copied, the others borrowed — all must round-trip and
  // produce identical bytes (and checksums) on both paths.
  for (std::size_t n : {kBorrowThresholdBytes - 1, kBorrowThresholdBytes,
                        kBorrowThresholdBytes + 1}) {
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    expect_roundtrip(v);
    auto flat = to_bytes(v);
    auto sg = to_segments(v);
    EXPECT_EQ(sg.size(), flat.size());
    EXPECT_EQ(sg.bytes_borrowed(), n < kBorrowThresholdBytes ? 0u : n);
    EXPECT_EQ(sg.gather(), flat);
    EXPECT_EQ(checksum(sg.gather()), checksum(flat));
  }
}

TEST(SerializeEdge, TakeFlatStealsFullyCopiedStreams) {
  std::vector<std::uint8_t> small(16, 9);
  auto sg = to_segments(small);
  EXPECT_EQ(sg.bytes_borrowed(), 0u);
  std::vector<std::byte> out;
  EXPECT_TRUE(sg.take_flat(out));
  EXPECT_EQ(out, to_bytes(small));

  std::vector<std::uint8_t> big(4096, 3);
  auto sg2 = to_segments(big);
  EXPECT_GT(sg2.bytes_borrowed(), 0u);
  std::vector<std::byte> out2;
  EXPECT_FALSE(sg2.take_flat(out2));  // borrowed segments cannot be stolen
  EXPECT_EQ(sg2.gather(), to_bytes(big));
}

TEST(Checksum, IsStableAndSensitive) {
  auto a = to_bytes(std::vector<int>{1, 2, 3});
  auto b = to_bytes(std::vector<int>{1, 2, 3});
  auto c = to_bytes(std::vector<int>{1, 2, 4});
  EXPECT_EQ(checksum(a), checksum(b));
  EXPECT_NE(checksum(a), checksum(c));
}

TEST(Checksum, EmptyPayloadHasFixedValue) {
  EXPECT_EQ(checksum({}), 0xcbf29ce484222325ull);
}

TEST(Checksum, AccumulateComposesWithOneShot) {
  auto bytes = to_bytes(std::vector<int>{1, 2, 3, 4, 5});
  const std::span<const std::byte> all(bytes);
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
                            bytes.size()}) {
    const auto partial = checksum_accumulate(kChecksumSeed, all.subspan(0, split));
    EXPECT_EQ(checksum_accumulate(partial, all.subspan(split)), checksum(all));
  }
}

TEST(Checksum, StreamChecksumCoversBorrowedSegments) {
  std::vector<std::uint8_t> big(4096, 1);
  auto sg = to_segments(big);
  EXPECT_GT(sg.bytes_borrowed(), 0u);
  // The write-time stream checksum equals a post-hoc checksum of the
  // gathered stream...
  EXPECT_EQ(sg.stream_checksum(), checksum(sg.gather()));
  // ...and keeps describing the bytes *as serialized* when a borrowed span
  // is mutated between serialization and gather. A post-gather checksum
  // would self-consistently cover the corrupted bytes and pass; the stream
  // checksum is what lets the receiver detect the violation.
  big[100] ^= 0xff;
  EXPECT_NE(sg.stream_checksum(), checksum(sg.gather()));
  big[100] ^= 0xff;
  EXPECT_EQ(sg.stream_checksum(), checksum(sg.gather()));
}

TEST(Checksum, StreamChecksumMatchesFlatPathForCopiedStreams) {
  // Below the borrow threshold everything is copied, and both serialization
  // paths must agree on the stream bytes and their checksum.
  std::vector<std::uint8_t> small(64, 7);
  auto sg = to_segments(small);
  EXPECT_EQ(sg.bytes_borrowed(), 0u);
  EXPECT_EQ(sg.stream_checksum(), checksum(to_bytes(small)));
}

// -- segmented domains and view descriptors ----------------------------------
//
// The SegSeq codec ships only the visible cut window of a sliced domain and
// rebases the reader to [0, units); view iterators (zip-of-slice trees over
// resident leaves) must round-trip without any residency scope installed —
// the inline fallback is the cold-start wire format.

TEST(SegSeqCodec, SlicedWindowShipsOnlyVisibleCutsAndRebases) {
  auto cuts = std::make_shared<const std::vector<triolet::index_t>>(
      std::vector<triolet::index_t>{0, 3, 4, 9, 10});
  auto weights = std::make_shared<const std::vector<triolet::index_t>>(
      std::vector<triolet::index_t>{30, 2, 51, 7});
  triolet::core::SegSeq full{0, 4, cuts, weights};
  auto window = triolet::core::outer_slice(full, 1, 3);  // units [1, 3)
  auto back = from_bytes<triolet::core::SegSeq>(to_bytes(window));
  // Rebased unit window over reconstructed vectors, same global segments.
  EXPECT_EQ(back.u0, 0);
  EXPECT_EQ(back.u1, 2);
  EXPECT_EQ(back, window);
  EXPECT_EQ(back.seg_lo(), 3);
  EXPECT_EQ(back.seg_hi(), 9);
  ASSERT_TRUE(back.weights);
  EXPECT_EQ((*back.weights)[0], 2);
  EXPECT_EQ((*back.weights)[1], 51);
  // The window's wire image carries 3 cuts, not all 5.
  EXPECT_LT(to_bytes(window).size(), to_bytes(full).size());
}

TEST(SegSeqCodec, AbsentWeightsAndEmptyWindowRoundTrip) {
  auto cuts = std::make_shared<const std::vector<triolet::index_t>>(
      std::vector<triolet::index_t>{2, 5});
  triolet::core::SegSeq d{0, 1, cuts, nullptr};
  auto back = from_bytes<triolet::core::SegSeq>(to_bytes(d));
  EXPECT_EQ(back, d);
  EXPECT_FALSE(back.weights);
  // Degenerate empty unit window (u0 == u1) survives the trip.
  triolet::core::SegSeq empty{1, 1, cuts, nullptr};
  auto eback = from_bytes<triolet::core::SegSeq>(to_bytes(empty));
  EXPECT_EQ(eback.units(), 0);
  EXPECT_EQ(eback.size(), 0);
}

TEST(ViewDescriptors, NestedZipOfSliceRoundTripsInline) {
  const triolet::index_t n = 300;
  Array1<double> av(n), bv(2 * n);
  for (triolet::index_t i = 0; i < n; ++i) av[i] = 0.25 * double(i);
  for (triolet::index_t i = 0; i < 2 * n; ++i) bv[i] = 1.0 / double(i + 1);
  triolet::dist::DistArray<double> da{std::move(av)};
  triolet::dist::DistArray<double> db{std::move(bv)};
  auto it = triolet::dist::zip(da, triolet::dist::slice(db, 0, n));
  using It = std::remove_cvref_t<decltype(it)>;
  // No ResidencyEncodeScope installed: both leaves inline their bytes.
  auto back = from_bytes<It>(to_bytes(it));
  auto dot = [](const auto& v) {
    double acc = 0.0;
    triolet::core::visit(v, [&](const std::pair<double, double>& p) {
      acc += p.first * p.second;
    });
    return acc;
  };
  const double want = dot(it);
  const double got = dot(back);
  EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0);
  // A slice of the decoded view still addresses global indices.
  const double wa = dot(it.slice(triolet::core::Seq{100, 200}));
  const double wb = dot(back.slice(triolet::core::Seq{100, 200}));
  EXPECT_EQ(std::memcmp(&wa, &wb, sizeof(double)), 0);
}

TEST(ViewDescriptors, SegmentedLeavesBorrowAndChecksumCoversThem) {
  // A segmented source large enough that the values leaf crosses the borrow
  // threshold: its bytes ride as borrowed segments, and the stream checksum
  // must cover them (mutating the borrowed array must be detected).
  std::vector<triolet::index_t> offsets{0};
  std::vector<double> values;
  for (int s = 0; s < 64; ++s) {
    for (int k = 0; k < 8; ++k) values.push_back(double(s * 8 + k));
    offsets.push_back(static_cast<triolet::index_t>(values.size()));
  }
  triolet::dist::SegmentedDistArray<double> a(offsets, values);
  auto sg = to_segments(a.source());
  EXPECT_GT(sg.bytes_borrowed(), 0u);
  EXPECT_EQ(sg.stream_checksum(), checksum(sg.gather()));
  a.mutate_values()[10] += 1.0;
  EXPECT_NE(sg.stream_checksum(), checksum(sg.gather()));
  a.mutate_values()[10] -= 1.0;
  EXPECT_EQ(sg.stream_checksum(), checksum(sg.gather()));
}

// Property sweep: random vectors of random sizes round-trip exactly.
class SerializeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SerializeProperty, RandomDoubleVectorsRoundTrip) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v(rng.below(2000));
  for (auto& x : v) x = rng.uniform(-1e9, 1e9);
  expect_roundtrip(v);
}

TEST_P(SerializeProperty, RandomNestedStructsRoundTrip) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  Nested n;
  n.name = std::string(rng.below(64), 'a' + static_cast<char>(rng.below(26)));
  n.samples.resize(rng.below(100));
  for (auto& s : n.samples) s = rng.uniform();
  if (rng.below(2)) n.tag = static_cast<int>(rng.below(1000));
  expect_roundtrip(n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace triolet::serial
