// Systematic skeleton-composition matrix.
//
// The paper's Figure 2 design guarantees that "any composition of known
// function calls can be simplified statically": a function's output loop
// structure depends only on its input loop structure, so every composition
// must both compile (the static dispatch resolves) and compute the right
// answer. This suite walks two-stage and three-stage compositions of
// {map, filter, concat_map, zip, indexed} over every starting constructor,
// comparing each against a straightforward reference evaluation.

#include <gtest/gtest.h>

#include <vector>

#include "core/triolet.hpp"
#include "support/rng.hpp"

namespace triolet::core {
namespace {

Array1<std::int64_t> small_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<std::int64_t> a(n);
  for (index_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::int64_t>(rng.below(100)) - 50;
  }
  return a;
}

// Reference pipeline pieces over std::vector.
std::vector<std::int64_t> ref_map(const std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> out;
  for (auto x : v) out.push_back(x * 3 + 1);
  return out;
}
std::vector<std::int64_t> ref_filter(const std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> out;
  for (auto x : v) {
    if (x % 2 == 0) out.push_back(x);
  }
  return out;
}
std::vector<std::int64_t> ref_expand(const std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> out;
  for (auto x : v) {
    for (std::int64_t j = 0; j < (x % 4 + 4) % 4; ++j) out.push_back(x + j);
  }
  return out;
}

// The same pieces as skeleton stages applicable to any iterator.
auto stage_map = [](auto it) {
  return map(std::move(it), [](std::int64_t x) { return x * 3 + 1; });
};
auto stage_filter = [](auto it) {
  return filter(std::move(it), [](std::int64_t x) { return x % 2 == 0; });
};
auto stage_expand = [](auto it) {
  return concat_map(std::move(it), [](std::int64_t x) {
    return map(range(0, (x % 4 + 4) % 4),
               [x](index_t j) { return x + j; });
  });
};

// Starting iterators of each constructor kind over the same logical data.
auto start_idx_flat(const Array1<std::int64_t>& a) { return from_array(a); }
auto start_step_flat(const Array1<std::int64_t>& a) {
  // zip against an irregular side forces the stepper encoding, then project.
  auto tagged = zip(filter(from_array(a), [](std::int64_t) { return true; }),
                    range(0, 1 << 20));
  return map(tagged, [](const auto& p) { return p.first; });
}
auto start_idx_nest(const Array1<std::int64_t>& a) {
  return filter(from_array(a), [](std::int64_t) { return true; });
}
auto start_step_nest(const Array1<std::int64_t>& a) {
  return concat_map(start_step_flat(a), [](std::int64_t x) {
    return map(range(0, 1), [x](index_t) { return x; });
  });
}

template <typename It>
void expect_matches(const It& it, const std::vector<std::int64_t>& expect,
                    const char* what) {
  EXPECT_EQ(to_vector(it), expect) << what;
  EXPECT_EQ(count(it), static_cast<index_t>(expect.size())) << what;
  std::int64_t ref_sum = 0;
  for (auto v : expect) ref_sum += v;
  EXPECT_EQ(sum(it), ref_sum) << what;
}

class CompositionMatrix : public ::testing::TestWithParam<int> {
 protected:
  Array1<std::int64_t> data =
      small_array(97, static_cast<std::uint64_t>(GetParam()));
  std::vector<std::int64_t> base{data.begin(), data.end()};
};

// -- two-stage compositions over every starting constructor -------------------

#define TWO_STAGE_CASE(NAME, S1, S2, R1, R2)                            \
  TEST_P(CompositionMatrix, NAME) {                                    \
    auto expect = R2(R1(base));                                        \
    expect_matches(S2(S1(start_idx_flat(data))), expect, "IdxFlat");   \
    expect_matches(S2(S1(start_step_flat(data))), expect, "StepFlat"); \
    expect_matches(S2(S1(start_idx_nest(data))), expect, "IdxNest");   \
    expect_matches(S2(S1(start_step_nest(data))), expect, "StepNest"); \
  }

TWO_STAGE_CASE(MapThenMap, stage_map, stage_map, ref_map, ref_map)
TWO_STAGE_CASE(MapThenFilter, stage_map, stage_filter, ref_map, ref_filter)
TWO_STAGE_CASE(MapThenExpand, stage_map, stage_expand, ref_map, ref_expand)
TWO_STAGE_CASE(FilterThenMap, stage_filter, stage_map, ref_filter, ref_map)
TWO_STAGE_CASE(FilterThenFilter, stage_filter, stage_filter, ref_filter,
               ref_filter)
TWO_STAGE_CASE(FilterThenExpand, stage_filter, stage_expand, ref_filter,
               ref_expand)
TWO_STAGE_CASE(ExpandThenMap, stage_expand, stage_map, ref_expand, ref_map)
TWO_STAGE_CASE(ExpandThenFilter, stage_expand, stage_filter, ref_expand,
               ref_filter)
TWO_STAGE_CASE(ExpandThenExpand, stage_expand, stage_expand, ref_expand,
               ref_expand)

#undef TWO_STAGE_CASE

// -- three-stage compositions (the irregular ones) ------------------------------

TEST_P(CompositionMatrix, ExpandFilterMap) {
  auto expect = ref_map(ref_filter(ref_expand(base)));
  expect_matches(stage_map(stage_filter(stage_expand(start_idx_flat(data)))),
                 expect, "IdxFlat");
  expect_matches(stage_map(stage_filter(stage_expand(start_step_nest(data)))),
                 expect, "StepNest");
}

TEST_P(CompositionMatrix, FilterExpandFilter) {
  auto expect = ref_filter(ref_expand(ref_filter(base)));
  expect_matches(
      stage_filter(stage_expand(stage_filter(start_idx_flat(data)))), expect,
      "IdxFlat");
  expect_matches(
      stage_filter(stage_expand(stage_filter(start_idx_nest(data)))), expect,
      "IdxNest");
}

TEST_P(CompositionMatrix, ExpandExpandMap) {
  auto expect = ref_map(ref_expand(ref_expand(base)));
  expect_matches(stage_map(stage_expand(stage_expand(start_idx_flat(data)))),
                 expect, "IdxFlat");
}

// -- zips across constructor kinds -------------------------------------------------

TEST_P(CompositionMatrix, ZipIrregularAgainstRegular) {
  // zip(filtered, mapped-range): reference pairs the filtered survivors with
  // consecutive tags by position.
  auto lhs = ref_filter(base);
  std::vector<std::int64_t> expect;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    expect.push_back(lhs[i] + static_cast<std::int64_t>(i));
  }
  auto z = zip(stage_filter(start_idx_flat(data)),
               range(0, static_cast<index_t>(base.size())));
  auto sums = map(z, [](const auto& p) { return p.first + p.second; });
  EXPECT_EQ(to_vector(sums), expect);
}

TEST_P(CompositionMatrix, ZipTwoIrregularSides) {
  auto lhs = ref_filter(base);
  auto rhs = ref_expand(base);
  std::size_t n = std::min(lhs.size(), rhs.size());
  std::vector<std::int64_t> expect;
  for (std::size_t i = 0; i < n; ++i) expect.push_back(lhs[i] * rhs[i]);
  auto z = zip(stage_filter(start_idx_flat(data)),
               stage_expand(start_idx_flat(data)));
  EXPECT_EQ(to_vector(map(z, [](const auto& p) { return p.first * p.second; })),
            expect);
}

// -- consumers agree across hints on every composition ------------------------------

TEST_P(CompositionMatrix, LocalparAgreesOnIrregularPipelines) {
  auto it = stage_filter(stage_expand(stage_map(start_idx_flat(data))));
  EXPECT_EQ(sum(localpar(it)), sum(it));
  EXPECT_EQ(count(localpar(it)), count(it));
}

TEST_P(CompositionMatrix, SliceSumInvariantOnComposedPipelines) {
  auto it = stage_expand(stage_map(start_idx_flat(data)));
  std::int64_t whole = sum(it);
  std::int64_t parts = 0;
  for (const auto& chunk : split_blocks(it.domain(), 5)) {
    parts += sum(it.slice(chunk));
  }
  EXPECT_EQ(parts, whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositionMatrix, ::testing::Range(0, 6));

}  // namespace
}  // namespace triolet::core
