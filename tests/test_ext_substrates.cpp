// Tests for substrate extensions: non-blocking receive, pairwise exchange,
// allgather, and thread-pool statistics.

#include <gtest/gtest.h>

#include <numeric>

#include "net/cluster.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace triolet {
namespace {

TEST(NetExt, TryRecvReturnsNulloptWhenEmpty) {
  auto res = net::Cluster::run(2, [](net::Comm& c) {
    if (c.rank() == 1) {
      EXPECT_FALSE(c.try_recv<int>(0, 9).has_value());
      c.send(0, 1, 1);          // let rank 0 proceed
      (void)c.recv<int>(0, 9);  // then take the real message
    } else {
      (void)c.recv<int>(1, 1);
      c.send(1, 9, 42);
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(NetExt, TryRecvDrainsQueuedMessages) {
  auto res = net::Cluster::run(2, [](net::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) c.send(1, 3, i);
      c.send(1, 4, -1);  // completion marker
    } else {
      (void)c.recv<int>(0, 4);  // all five data messages are queued now
      int got = 0, sum = 0;
      while (auto v = c.try_recv<int>(0, 3)) {
        ++got;
        sum += *v;
      }
      EXPECT_EQ(got, 5);
      EXPECT_EQ(sum, 10);
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(NetExt, ExchangeSwapsValuesPairwise) {
  auto res = net::Cluster::run(4, [](net::Comm& c) {
    int peer = c.rank() ^ 1;  // 0<->1, 2<->3
    int got = c.exchange(peer, 5, c.rank() * 100);
    EXPECT_EQ(got, peer * 100);
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(NetExt, AllgatherGivesEveryoneEverything) {
  auto res = net::Cluster::run(5, [](net::Comm& c) {
    auto all = c.allgather(std::string(1, static_cast<char>('a' + c.rank())));
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                std::string(1, static_cast<char>('a' + r)));
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(NetExt, CollectivesComposeInSequence) {
  // barrier / allgather / allreduce / exchange back to back, all ranks.
  auto res = net::Cluster::run(4, [](net::Comm& c) {
    c.barrier();
    auto all = c.allgather(c.rank());
    int total = c.allreduce(c.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(total, 6);
    EXPECT_EQ(static_cast<int>(all.size()), 4);
    int got = c.exchange(c.rank() ^ 1, 2, total + c.rank());
    EXPECT_EQ(got, total + (c.rank() ^ 1));
    c.barrier();
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(PoolStats, CountsExecutedTasks) {
  runtime::ThreadPool pool(2);
  runtime::TaskGroup g;
  for (int i = 0; i < 64; ++i) {
    pool.submit(g, [] {});
  }
  pool.wait(g);
  auto st = pool.stats();
  EXPECT_EQ(st.tasks_executed, 64);
  // All submissions came from this external thread.
  EXPECT_EQ(st.tasks_injected, 64);
}

TEST(PoolStats, ParallelForGeneratesInternalTasks) {
  runtime::ThreadPool pool(3);
  std::atomic<std::int64_t> acc{0};
  runtime::parallel_for(pool, 0, 10000, 100,
                        [&](runtime::index_t a, runtime::index_t b) {
                          acc.fetch_add(b - a);
                        });
  EXPECT_EQ(acc.load(), 10000);
  auto st = pool.stats();
  EXPECT_GT(st.tasks_executed, 10);  // recursive splits spawned tasks
}

TEST(PoolStats, StealsAreCountedNotRequired) {
  runtime::ThreadPool pool(2);
  runtime::TaskGroup g;
  for (int i = 0; i < 200; ++i) {
    pool.submit(g, [] {
      volatile int x = 0;
      for (int j = 0; j < 100; ++j) x = x + j;
    });
  }
  pool.wait(g);
  auto st = pool.stats();
  EXPECT_GE(st.tasks_stolen, 0);
  EXPECT_EQ(st.tasks_executed, 200);
}

}  // namespace
}  // namespace triolet
