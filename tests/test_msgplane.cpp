// Tests for the lock-free messaging data plane (net/pool, net/transport,
// net/ring_transport): buffer-pool accounting, SPSC ring ordering incl. the
// overflow lane, match-table semantics (per-(src, tag) FIFO, wildcard
// windows, earliest-wins ties, purge), the eager/rendezvous protocol
// boundary, ring-vs-mailbox behavioral equivalence, steady-state
// allocation-free operation, and band purges racing live traffic in the
// service layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/cluster.hpp"
#include "net/pool.hpp"
#include "net/ring_transport.hpp"
#include "net/tags.hpp"
#include "net/transport.hpp"
#include "serial/serialize.hpp"
#include "svc/job_manager.hpp"

namespace triolet::net {
namespace {

/// Full-open wildcard window for direct MatchTable probes (kAnyTag itself
/// is the *pattern* wildcard, not a window bound).
constexpr int kMaxTag = std::numeric_limits<int>::max();

// -- BufferPool ---------------------------------------------------------------

TEST(BufferPool, ClassForCoversTheSlabRange) {
  EXPECT_EQ(BufferPool::class_for(0), 0u);
  EXPECT_EQ(BufferPool::class_for(1), 0u);
  EXPECT_EQ(BufferPool::class_for(64), 0u);
  EXPECT_EQ(BufferPool::class_for(65), 1u);
  EXPECT_EQ(BufferPool::class_for(128), 1u);
  EXPECT_EQ(BufferPool::class_for(4096), 6u);
  EXPECT_EQ(BufferPool::class_for(kPoolMaxSlab), kPoolNumClasses - 1);
  EXPECT_EQ(BufferPool::class_for(kPoolMaxSlab + 1), kHeapClass);
  for (std::uint32_t c = 0; c < kPoolNumClasses; ++c) {
    EXPECT_EQ(BufferPool::class_bytes(c), std::size_t{64} << c);
    EXPECT_EQ(BufferPool::class_for(BufferPool::class_bytes(c)), c);
  }
}

TEST(BufferPool, AllocateReleaseBalancesOutstanding) {
  BufferPool& pool = BufferPool::instance();
  const std::int64_t before = pool.outstanding();
  auto a = pool.allocate(100);
  ASSERT_NE(a.p, nullptr);
  EXPECT_EQ(a.cls, 1u);  // 100 -> 128-byte class
  EXPECT_EQ(pool.outstanding(), before + 1);
  pool.release(a.p, a.cls);
  EXPECT_EQ(pool.outstanding(), before);

  // Oversized requests fall through to the heap but stay accounted.
  auto big = pool.allocate(kPoolMaxSlab + 1);
  ASSERT_NE(big.p, nullptr);
  EXPECT_EQ(big.cls, kHeapClass);
  EXPECT_EQ(pool.outstanding(), before + 1);
  pool.release(big.p, big.cls);
  EXPECT_EQ(pool.outstanding(), before);
}

TEST(BufferPool, SecondAllocationOfAClassIsACacheHit) {
  BufferPool& pool = BufferPool::instance();
  // Prime the thread cache with one slab of an uncommon class, then
  // reallocate: the second round must be served from the cache.
  auto a = pool.allocate(kPoolMaxSlab);
  pool.release(a.p, a.cls);
  auto b = pool.allocate(kPoolMaxSlab);
  EXPECT_TRUE(b.pool_hit);
  EXPECT_EQ(b.p, a.p);  // LIFO cache returns the same slab
  pool.release(b.p, b.cls);
}

// -- SpscRing -----------------------------------------------------------------

RingDesc desc_with_tag(int tag) {
  RingDesc d;
  d.src = 0;
  d.tag = tag;
  return d;
}

TEST(SpscRingTest, FifoWithinTheRing) {
  SpscRing ring;
  RingDesc out;
  EXPECT_FALSE(ring.pop(out));
  EXPECT_FALSE(ring.maybe_nonempty());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.push(desc_with_tag(i)));
  EXPECT_TRUE(ring.maybe_nonempty());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.tag, i);
  }
  EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRingTest, OverflowLanePreservesOrderAndReportsStalls) {
  SpscRing ring;
  const int n = static_cast<int>(kRingSlots) + 100;
  int stalls = 0;
  for (int i = 0; i < n; ++i) {
    if (!ring.push(desc_with_tag(i))) stalls += 1;
  }
  EXPECT_EQ(stalls, 100);  // everything past the ring went to the deque
  RingDesc out;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(ring.pop(out)) << "at " << i;
    EXPECT_EQ(out.tag, i);
  }
  EXPECT_FALSE(ring.pop(out));
  EXPECT_FALSE(ring.maybe_nonempty());

  // After full drain the fast path is lock-free again.
  EXPECT_TRUE(ring.push(desc_with_tag(7)));
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out.tag, 7);
}

TEST(SpscRingTest, ConcurrentProducerConsumerKeepsOrder) {
  SpscRing ring;
  const int n = 20000;
  std::thread producer([&] {
    for (int i = 0; i < n; ++i) ring.push(desc_with_tag(i));
  });
  int expected = 0;
  RingDesc out;
  while (expected < n) {
    if (ring.pop(out)) {
      ASSERT_EQ(out.tag, expected);
      expected += 1;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(ring.maybe_nonempty());
}

// -- MatchTable ---------------------------------------------------------------

Message msg(int src, int tag) {
  Message m;
  m.src = src;
  m.tag = tag;
  return m;
}

TEST(MatchTableTest, ExactMatchIsFifoPerKey) {
  MatchTable t(4);
  t.insert(msg(1, 7));
  t.insert(msg(2, 7));
  t.insert(msg(1, 7));
  ASSERT_EQ(t.size(), 3u);

  // (1, 7) twice in arrival order, untouched by the (2, 7) entry between.
  auto* e = t.find(1, 7, 0, kMaxTag);
  ASSERT_NE(e, nullptr);
  Message first = t.take(e);
  EXPECT_EQ(first.src, 1);
  e = t.find(1, 7, 0, kMaxTag);
  ASSERT_NE(e, nullptr);
  t.take(e);
  EXPECT_EQ(t.find(1, 7, 0, kMaxTag), nullptr);
  ASSERT_NE(t.find(2, 7, 0, kMaxTag), nullptr);
}

TEST(MatchTableTest, AnySourcePicksTheEarliestAcrossBuckets) {
  MatchTable t(4);
  t.insert(msg(3, 9));
  t.insert(msg(1, 9));
  t.insert(msg(2, 8));  // different tag, never matched below
  auto* e = t.find(kAnySource, 9, 0, kMaxTag);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(t.take(e).src, 3);  // arrived first
  e = t.find(kAnySource, 9, 0, kMaxTag);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(t.take(e).src, 1);
  EXPECT_EQ(t.find(kAnySource, 9, 0, kMaxTag), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(MatchTableTest, AnyTagHonorsTheWildcardWindow) {
  MatchTable t(2);
  t.insert(msg(0, 5));
  t.insert(msg(0, 50));
  t.insert(msg(0, 500));
  // Window [10, 100) sees only tag 50.
  auto* e = t.find(0, kAnyTag, 10, 100);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(t.take(e).tag, 50);
  EXPECT_EQ(t.find(0, kAnyTag, 10, 100), nullptr);
  // The others remain for a full-range wildcard, earliest first.
  e = t.find(kAnySource, kAnyTag, 0, kMaxTag);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(t.take(e).tag, 5);
}

TEST(MatchTableTest, FindAnyTieGoesToTheLowestPatternIndex) {
  MatchTable t(2);
  t.insert(msg(0, 3));
  const std::pair<int, int> patterns[] = {{kAnySource, 3}, {0, kAnyTag}};
  std::size_t which = 99;
  auto* e = t.find_any(patterns, which, 0, kMaxTag);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(which, 0u);  // both match the same entry; lowest index wins

  // With an earlier message only the second pattern matches, earliest wins
  // over pattern order.
  t.insert(msg(0, 4));
  auto* first = t.find(0, 3, 0, kMaxTag);
  t.take(first);
  which = 99;
  e = t.find_any(patterns, which, 0, kMaxTag);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(which, 1u);
  EXPECT_EQ(e->msg.tag, 4);
}

TEST(MatchTableTest, PurgeRangeDropsExactlyTheWindow) {
  MatchTable t(2);
  for (int i = 0; i < 10; ++i) t.insert(msg(0, i));
  EXPECT_EQ(t.purge_range(3, 7), 4u);
  EXPECT_EQ(t.size(), 6u);
  for (int i : {3, 4, 5, 6}) EXPECT_EQ(t.find(0, i, 0, kMaxTag), nullptr);
  for (int i : {0, 1, 2, 7, 8, 9}) {
    EXPECT_NE(t.find(0, i, 0, kMaxTag), nullptr) << i;
  }
}

TEST(MatchTableTest, SurvivesRehashUnderManyDistinctKeys) {
  MatchTable t(1);
  const int n = 500;  // far past the initial 64-slot table
  for (int i = 0; i < n; ++i) t.insert(msg(0, i));
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto* e = t.find(0, i, 0, kMaxTag);
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(t.take(e).tag, i);
  }
  EXPECT_TRUE(t.empty());
}

// -- eager / rendezvous boundary ----------------------------------------------

TEST(EagerRendezvous, BoundarySizesRoundTripAndAreClassifiedRight) {
  ClusterOptions opts;
  opts.transport = "ring";  // classification is ring-plane behavior
  opts.eager_bytes = 64;
  auto res = Cluster::run(2, [&](Comm& c) {
    // Exactly 0, threshold, and threshold + 1 raw bytes.
    for (std::size_t n : {std::size_t{0}, std::size_t{64}, std::size_t{65}}) {
      if (c.rank() == 0) {
        std::vector<std::byte> payload(n);
        for (std::size_t i = 0; i < n; ++i) {
          payload[i] = static_cast<std::byte>(i * 3 + 1);
        }
        c.send_bytes(1, 5, std::move(payload));
      } else {
        Message m = c.recv_message(0, 5);
        ASSERT_EQ(m.payload.size(), n);
        auto view = m.payload.span();
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(view[i], static_cast<std::byte>(i * 3 + 1));
        }
      }
    }
  }, opts);
  ASSERT_TRUE(res.ok) << res.error;
  // 0-byte and threshold-sized payloads took the eager path; threshold + 1
  // crossed into rendezvous.
  EXPECT_EQ(res.total_stats.msg.eager_msgs, 2);
  EXPECT_EQ(res.total_stats.msg.rendezvous_msgs, 1);
  EXPECT_EQ(res.total_stats.messages_received, 3);
}

TEST(EagerRendezvous, ZeroThresholdForcesRendezvousForAllNonEmpty) {
  ClusterOptions opts;
  opts.transport = "ring";  // classification is ring-plane behavior
  opts.eager_bytes = 0;
  auto res = Cluster::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 9, std::string("hello rendezvous"));
    } else {
      EXPECT_EQ(c.recv<std::string>(0, 9), "hello rendezvous");
    }
  }, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.total_stats.msg.eager_msgs, 0);
  EXPECT_EQ(res.total_stats.msg.rendezvous_msgs, 1);
}

// -- ring vs mailbox equivalence ----------------------------------------------

/// One deterministic traffic mix: directed tags, a wildcard-source tag, and
/// an any-tag drain, returning a transcript that must be identical under
/// every transport backend.
std::vector<std::string> run_traffic_mix(const std::string& backend) {
  ClusterOptions opts;
  opts.transport = backend;
  std::vector<std::string> transcript;
  auto res = Cluster::run(4, [&](Comm& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < 5; ++i) {
        c.send(0, 10 + c.rank(), c.rank() * 100 + i);  // directed
      }
      c.send(0, 7, c.rank());  // wildcard-source tag
      return;
    }
    // Directed receives: per-(src, tag) FIFO means this order is total.
    for (int r = 1; r < 4; ++r) {
      for (int i = 0; i < 5; ++i) {
        transcript.push_back("d" + std::to_string(r) + ":" +
                             std::to_string(c.recv<int>(r, 10 + r)));
      }
    }
    // Wildcard source: arrival order varies, so record the sorted set.
    std::vector<int> wild;
    for (int r = 1; r < 4; ++r) wild.push_back(c.recv<int>(kAnySource, 7));
    std::sort(wild.begin(), wild.end());
    for (int v : wild) transcript.push_back("w" + std::to_string(v));
  }, opts);
  EXPECT_TRUE(res.ok) << res.error;
  return transcript;
}

TEST(TransportEquivalence, RingAndMailboxProduceIdenticalTranscripts) {
  auto ring = run_traffic_mix("ring");
  auto mailbox = run_traffic_mix("mailbox");
  EXPECT_EQ(ring, mailbox);
  ASSERT_FALSE(ring.empty());
}

TEST(TransportEquivalence, OrderedReduceIsBitwiseIdenticalAcrossBackends) {
  // kOrdered determinism must not depend on the data plane: the linear
  // left fold's parenthesization is fixed by rank order, so the low bits
  // agree bitwise between backends.
  auto run_with = [](const std::string& backend) {
    ClusterOptions opts;
    opts.transport = backend;
    double out = 0.0;
    auto res = Cluster::run(4, [&](Comm& c) {
      // Mixed magnitudes so any fold-order change flips low bits.
      const double mine = (c.rank() + 1) * 1e-13 + c.rank() * 1e5;
      double r = c.reduce_ordered(mine, [](double a, double b) { return a + b; });
      if (c.rank() == 0) out = r;
    }, opts);
    EXPECT_TRUE(res.ok) << res.error;
    return out;
  };
  const double a = run_with("ring");
  const double b = run_with("mailbox");
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
}

// -- steady-state allocation behavior -----------------------------------------

TEST(SteadyState, PoolMissesGoFlatAfterWarmup) {
  // The zero-allocation claim: once thread caches and freelists are primed,
  // the eager data path allocates nothing — every slab is a pool hit. Run a
  // ping-pong long enough to warm up, snapshot, then assert the miss
  // counter never moves again.
  std::atomic<std::int64_t> misses_after_warmup{-1};
  std::atomic<std::int64_t> misses_final{-1};
  ClusterOptions opts;
  opts.transport = "ring";  // the pooled eager path is ring-plane behavior
  auto res = Cluster::run(2, [&](Comm& c) {
    const int peer = 1 - c.rank();
    std::vector<std::byte> ball(512);
    auto ping_pong = [&](int rounds) {
      for (int i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.send_bytes(peer, 3, ball);
          ball = std::move(c.recv_message(peer, 3).payload).take_vector();
        } else {
          ball = std::move(c.recv_message(peer, 3).payload).take_vector();
          c.send_bytes(peer, 3, ball);
        }
      }
    };
    ping_pong(100);  // warmup: caches, freelists, central depot
    c.barrier();
    if (c.rank() == 0) {
      misses_after_warmup.store(c.snapshot_stats().msg.pool_misses);
    }
    ping_pong(400);
    c.barrier();
    if (c.rank() == 0) {
      misses_final.store(c.snapshot_stats().msg.pool_misses);
    }
  }, opts);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_GE(misses_after_warmup.load(), 0);
  EXPECT_EQ(misses_final.load(), misses_after_warmup.load())
      << "steady-state sends still miss the buffer pool";
  // And the traffic really ran on the pooled eager path.
  EXPECT_GT(res.total_stats.msg.pool_hits, 0);
}

TEST(SteadyState, ClusterTeardownReturnsEveryPooledBuffer) {
  const std::int64_t before = BufferPool::instance().outstanding();
  auto res = Cluster::run(3, [](Comm& c) {
    // Leave stranded traffic behind on purpose: these are never received.
    if (c.rank() != 0) c.send(0, 99, std::vector<double>(1000, 1.0));
    c.barrier();
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(BufferPool::instance().outstanding(), before)
      << "transport teardown leaked pooled buffers";
}

// -- band purge under live neighbor traffic -----------------------------------

TEST(BandPurge, PurgeRacesLiveTrafficInNeighborBandsSafely) {
  // Several short-lived failing jobs (their bands are purged on teardown,
  // sweeping in-flight ring descriptors) while a long-running job keeps the
  // transport busy with collectives. The live job must finish correctly and
  // nothing may leak from the purged bands.
  const std::int64_t before = BufferPool::instance().outstanding();
  {
    svc::ServiceOptions so;
    so.nranks = 2;
    so.max_concurrent = 2;
    svc::JobManager mgr(so);

    std::atomic<bool> stop{false};
    svc::JobHandle live = mgr.submit({"live"}, [&](svc::JobContext& ctx) {
      int spins = 0;
      while (true) {
        const int sum = ctx.comm().allreduce(
            ctx.rank() + 1, [](int a, int b) { return a + b; });
        EXPECT_EQ(sum, 3);
        spins += 1;
        // Agree collectively on when to stop: deciding from the local flag
        // alone would let one rank leave while its peer blocks in the next
        // allreduce.
        const int done = ctx.comm().allreduce(
            stop.load() && spins >= 5 ? 1 : 0,
            [](int a, int b) { return a < b ? a : b; });
        if (done) break;
      }
    });

    for (int j = 0; j < 6; ++j) {
      svc::JobHandle bad = mgr.submit({"bad"}, [](svc::JobContext& ctx) {
        // Strand traffic in the band: unreceived sends in both directions,
        // above and below the eager threshold, then fail on one rank.
        const int peer = 1 - ctx.rank();
        ctx.comm().send(peer, 50, std::vector<char>(16, 'x'));
        ctx.comm().send(peer, 51, std::vector<double>(4096, 2.0));
        ctx.comm().barrier();
        if (ctx.rank() == 1) throw std::runtime_error("purge fodder");
        (void)ctx.comm().recv<int>(peer, 60);  // never sent; abort wakes it
      });
      EXPECT_FALSE(bad.wait().ok);
    }
    stop.store(true);
    EXPECT_TRUE(live.wait().ok);
    mgr.drain();
    EXPECT_EQ(mgr.stats().failed, 6);
  }
  EXPECT_EQ(BufferPool::instance().outstanding(), before)
      << "band purges leaked in-flight pooled buffers";
}

}  // namespace
}  // namespace triolet::net
