// Tests for the service layer (src/svc/): per-job tag-band leasing and the
// TagMap compression behind it, band-restricted wildcard matching in the
// mailbox, fair-share grant arbitration, admission/backpressure and
// batching in the JobManager, per-job stats attribution, failure isolation
// between concurrent jobs, and the bitwise-determinism contract: a kOrdered
// job run inside a busy service equals the same job run alone.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/segmented.hpp"
#include "dist/skeletons.hpp"
#include "dist/views.hpp"
#include "net/cluster.hpp"
#include "net/mailbox.hpp"
#include "net/pool.hpp"
#include "net/tags.hpp"
#include "support/rng.hpp"
#include "svc/band_allocator.hpp"
#include "svc/fair_share.hpp"
#include "svc/job_manager.hpp"

namespace triolet::svc {
namespace {

using core::from_array;
using core::index_t;
using dist::DistArray;
using dist::from_resident;
using dist::NodeRuntime;

Array1<double> random_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-1.0, 1.0);
  return a;
}

/// Mixed-magnitude data: any change in fold order shows up in the low bits.
Array1<double> spiky_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0));
  }
  return a;
}

bool bitwise_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// -- TagMap -------------------------------------------------------------------

TEST(TagMap, IdentityMapsEverythingUnchanged) {
  net::TagMap id;
  EXPECT_TRUE(id.identity());
  EXPECT_EQ(id.map(0), 0);
  EXPECT_EQ(id.map(12345), 12345);
  EXPECT_EQ(id.map(net::kTagSchedBand), net::kTagSchedBand);
  EXPECT_EQ(id.map_pattern(net::kAnyTag), net::kAnyTag);
  EXPECT_EQ(id.any_lo(), 0);
}

TEST(TagMap, LeasedBandCompressesEveryTrafficClass) {
  const int base = net::job_band_base(3);
  net::TagMap m{base};
  EXPECT_FALSE(m.identity());
  EXPECT_EQ(m.any_lo(), base);
  EXPECT_EQ(m.any_hi(), base + net::kJobBandWidth);

  // User tags land at the bottom of the band.
  EXPECT_EQ(m.map(0), base);
  EXPECT_EQ(m.map(100), base + 100);
  // Each reserved class lands at its own compressed offset.
  EXPECT_EQ(m.map(net::kTagSchedBand), base + net::kJobSchedOffset);
  EXPECT_EQ(m.map(net::kTagAsyncBand), base + net::kJobAsyncOffset);
  EXPECT_EQ(m.map(net::kTagResidencyBand), base + net::kJobResidencyOffset);
  EXPECT_EQ(m.map(net::kTagGroupBand), base + net::kJobGroupOffset);
  EXPECT_EQ(m.map(net::kFirstReservedTag), base + net::kJobCollectiveOffset);
  // Wildcards pass through map_pattern.
  EXPECT_EQ(m.map_pattern(net::kAnyTag), net::kAnyTag);
  // Everything maps inside the lease.
  for (int t : {0, net::kTagSchedBand + 5, net::kTagResidencyBand + 63,
                net::kFirstReservedTag + 100}) {
    EXPECT_GE(m.map(t), m.any_lo());
    EXPECT_LT(m.map(t), m.any_hi());
  }
}

TEST(TagMap, DistinctLeasesNeverCollide) {
  net::TagMap a{net::job_band_base(0)};
  net::TagMap b{net::job_band_base(1)};
  // The same canonical tag maps into disjoint ranges.
  for (int t : {0, 7, net::kTagSchedBand, net::kFirstReservedTag}) {
    const int ma = a.map(t), mb = b.map(t);
    EXPECT_TRUE(ma < b.any_lo() || ma >= b.any_hi());
    EXPECT_TRUE(mb < a.any_lo() || mb >= a.any_hi());
  }
}

// -- Mailbox band windows -----------------------------------------------------

TEST(MailboxWindow, WildcardReceiveIsRestrictedToTheBand) {
  net::Mailbox box;
  const int base = net::job_band_base(0);
  box.push(net::Message{0, base - 1, {}, 0});      // below the window
  box.push(net::Message{0, base + 5, {}, 0});      // inside
  box.push(net::Message{0, base + net::kJobBandWidth, {}, 0});  // above

  net::Message out;
  // A windowed wildcard only sees the in-band message.
  ASSERT_TRUE(box.try_pop_match(net::kAnySource, net::kAnyTag, out, base,
                                base + net::kJobBandWidth));
  EXPECT_EQ(out.tag, base + 5);
  EXPECT_FALSE(box.try_pop_match(net::kAnySource, net::kAnyTag, out, base,
                                 base + net::kJobBandWidth));
  // The out-of-band messages are still there for an unwindowed wildcard.
  ASSERT_TRUE(box.try_pop_match(net::kAnySource, net::kAnyTag, out));
  EXPECT_EQ(out.tag, base - 1);
}

TEST(MailboxWindow, PurgeTagRangeDropsExactlyTheBand) {
  net::Mailbox box;
  const int base = net::job_band_base(1);
  box.push(net::Message{0, base - 1, {}, 0});
  box.push(net::Message{0, base, {}, 0});
  box.push(net::Message{0, base + net::kJobBandWidth - 1, {}, 0});
  box.push(net::Message{0, base + net::kJobBandWidth, {}, 0});

  EXPECT_EQ(box.purge_tag_range(base, base + net::kJobBandWidth), 2u);
  net::Message out;
  ASSERT_TRUE(box.try_pop_match(net::kAnySource, net::kAnyTag, out));
  EXPECT_EQ(out.tag, base - 1);
  ASSERT_TRUE(box.try_pop_match(net::kAnySource, net::kAnyTag, out));
  EXPECT_EQ(out.tag, base + net::kJobBandWidth);
  EXPECT_FALSE(box.try_pop_match(net::kAnySource, net::kAnyTag, out));
}

// -- BandAllocator ------------------------------------------------------------

TEST(BandAllocatorTest, LeasesAreDistinctAuditedAndReusedLowestFirst) {
  BandAllocator alloc(3);
  EXPECT_EQ(alloc.capacity(), 3);

  net::TagMap a = alloc.lease();
  net::TagMap b = alloc.lease();
  EXPECT_EQ(a.base, net::job_band_base(0));
  EXPECT_EQ(b.base, net::job_band_base(1));
  EXPECT_EQ(alloc.leased(), 2);
  // The dynamic extension of assert_tag_bands_disjoint: any candidate slot
  // audits clean against the static table and the active leases.
  std::string why;
  EXPECT_TRUE(alloc.candidate_disjoint(2, &why)) << why;

  alloc.reclaim(a);
  EXPECT_EQ(alloc.leased(), 1);
  net::TagMap c = alloc.lease();
  EXPECT_EQ(c.base, net::job_band_base(0));  // lowest-first reuse
}

TEST(BandAllocatorTest, ExhaustionIsAClearErrorNotAHang) {
  BandAllocator alloc(2);
  net::TagMap a = alloc.lease();
  net::TagMap b = alloc.lease();
  net::TagMap spare;
  EXPECT_FALSE(alloc.try_lease(spare));
  EXPECT_THROW(alloc.lease(), BandsExhausted);
  try {
    alloc.lease();
    FAIL() << "lease past capacity must throw";
  } catch (const BandsExhausted& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
  alloc.reclaim(b);
  EXPECT_TRUE(alloc.try_lease(spare));
  EXPECT_EQ(spare.base, b.base);
  (void)a;
}

// -- GrantArbiter -------------------------------------------------------------

TEST(GrantArbiterTest, UnregisteredAndSoloJobsPassThrough) {
  GrantArbiter arb(1024);
  // Unregistered: straight through, stats still recorded.
  arb.acquire(99, 10);
  EXPECT_EQ(arb.job_stats(99).acquires, 1);
  EXPECT_EQ(arb.job_stats(99).acquired_items, 10);
  // Alone in the ring: no one to be fair to.
  arb.add_job(1, 1);
  arb.acquire(1, 5000);
  arb.acquire(1, 5000);
  EXPECT_EQ(arb.job_stats(1).acquired_items, 10000);
  EXPECT_EQ(arb.job_stats(1).waits, 0);
  arb.remove_job(1);
  EXPECT_EQ(arb.active_jobs(), 0);
}

/// Runs `per_job` quantum-sized acquires from two concurrent roots and
/// returns the interleaved grant order.
std::vector<int> grant_order(GrantArbiter& arb, std::int64_t quantum,
                             int per_job, int items_a, int items_b) {
  std::mutex mu;
  std::vector<int> order;
  auto root = [&](std::uint64_t job, int items) {
    for (int i = 0; i < per_job; ++i) {
      arb.acquire(job, items);
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(static_cast<int>(job));
    }
  };
  std::thread ta(root, 1, items_a);
  std::thread tb(root, 2, items_b);
  ta.join();
  tb.join();
  (void)quantum;
  return order;
}

TEST(GrantArbiterTest, EqualWeightsAlternateInTheOverlapWindow) {
  const std::int64_t q = 1 << 10;
  GrantArbiter arb(q);
  arb.add_job(1, 1);
  arb.add_job(2, 1);
  auto order = grant_order(arb, q, 24, static_cast<int>(q),
                           static_cast<int>(q));
  ASSERT_EQ(order.size(), 48u);
  EXPECT_EQ(arb.job_stats(1).acquired_items, 24 * q);
  EXPECT_EQ(arb.job_stats(2).acquired_items, 24 * q);
  // In the window where both jobs are backlogged (between the other job's
  // first and last grant), quantum-sized grants under equal weights strictly
  // alternate: a job's next grant needs a fresh rotation past its peer.
  for (std::size_t i = 1; i + 1 < order.size(); ++i) {
    const int other = order[i] == 1 ? 2 : 1;
    bool other_before = false, other_after = false;
    for (std::size_t j = 0; j < i; ++j) other_before |= order[j] == other;
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      other_after |= order[j] == other;
    }
    if (other_before && other_after) {
      EXPECT_NE(order[i], order[i - 1])
          << "two consecutive grants to job " << order[i] << " at " << i;
    }
  }
}

TEST(GrantArbiterTest, WeightsScaleGrantShares) {
  const std::int64_t q = 1 << 10;
  GrantArbiter arb(q);
  arb.add_job(1, 1);
  arb.add_job(2, 3);  // 3x credit per rotation
  auto order = grant_order(arb, q, 30, static_cast<int>(q),
                           static_cast<int>(q));
  // In the overlap window, job 1 never lands back-to-back grants (weight 1,
  // quantum-sized grants spend its whole turn), while job 2 may take up to
  // 3 in a row but never 4.
  int run = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    bool overlap = false;
    const int other = order[i] == 1 ? 2 : 1;
    bool before = false, after = false;
    for (std::size_t j = 0; j < i; ++j) before |= order[j] == other;
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      after |= order[j] == other;
    }
    overlap = before && after;
    run = (i > 0 && order[i] == order[i - 1]) ? run + 1 : 1;
    if (overlap && order[i] == 1) {
      EXPECT_LE(run, 1);
    }
    if (overlap && order[i] == 2) {
      EXPECT_LE(run, 3);
    }
  }
  EXPECT_EQ(arb.job_stats(1).acquired_items, 30 * q);
  EXPECT_EQ(arb.job_stats(2).acquired_items, 30 * q);
}

TEST(GrantArbiterTest, OversizedGrantsBorrowAndSitOut) {
  const std::int64_t q = 100;
  GrantArbiter arb(q);
  arb.add_job(1, 1);
  arb.add_job(2, 1);
  // Job 1 issues grants 4x the quantum; job 2 issues quantum-sized ones.
  // Weighted DRR still equalizes *items* over the window: after job 1's
  // oversized grant its deficit is deeply negative, so job 2 gets ~4 grants
  // while job 1 pays the debt back.
  auto order = grant_order(arb, q, 8, 400, 100);
  std::int64_t total_1 = arb.job_stats(1).acquired_items;
  std::int64_t total_2 = arb.job_stats(2).acquired_items;
  EXPECT_EQ(total_1, 8 * 400);
  EXPECT_EQ(total_2, 8 * 100);
  ASSERT_EQ(order.size(), 16u);
}

// -- JobManager: admission and backpressure -----------------------------------

TEST(JobManagerTest, TrySubmitRejectsWhenTheQueueIsFullAndSubmitBlocks) {
  ServiceOptions so;
  so.nranks = 2;
  so.max_concurrent = 1;
  so.max_queued = 2;
  JobManager mgr(so);

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  auto blocker = [&](JobContext& ctx) {
    if (ctx.rank() == 0) started.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    ctx.comm().barrier();
  };
  auto noop = [](JobContext& ctx) { ctx.comm().barrier(); };

  JobHandle running = mgr.submit({"blocker"}, blocker);
  while (started.load() == 0) std::this_thread::yield();

  // The dispatcher slot is busy; fill the queue, then overflow it.
  JobHandle q1 = mgr.submit({"q1"}, noop);
  JobHandle q2 = mgr.submit({"q2"}, noop);
  EXPECT_FALSE(mgr.try_submit({"overflow"}, noop).has_value());

  // A blocking submit parks until the queue drains.
  std::atomic<bool> admitted{false};
  std::thread submitter([&] {
    JobHandle h = mgr.submit({"late"}, noop);
    admitted.store(true);
    EXPECT_TRUE(h.wait().ok);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());

  release.store(true);
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(running.wait().ok);
  EXPECT_TRUE(q1.wait().ok);
  EXPECT_TRUE(q2.wait().ok);
  mgr.drain();

  ServiceStats s = mgr.stats();
  EXPECT_EQ(s.submitted, 4);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.completed, 4);
  EXPECT_EQ(s.failed, 0);
  EXPECT_LE(s.peak_concurrent, 1);
}

TEST(JobManagerTest, ConcurrentGroupsHoldDistinctBandsAndReclaimThem) {
  ServiceOptions so;
  so.nranks = 2;
  so.max_concurrent = 2;
  JobManager mgr(so);

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  auto blocker = [&](JobContext& ctx) {
    if (ctx.rank() == 0) started.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    ctx.comm().barrier();
  };
  JobHandle a = mgr.submit({"a"}, blocker);
  JobHandle b = mgr.submit({"b"}, blocker);
  while (started.load() < 2) std::this_thread::yield();
  EXPECT_EQ(mgr.bands_in_use(), 2);

  release.store(true);
  JobResult ra = a.wait(), rb = b.wait();
  EXPECT_TRUE(ra.ok);
  EXPECT_TRUE(rb.ok);
  EXPECT_GE(ra.band_base, net::kJobBandRegion);
  EXPECT_GE(rb.band_base, net::kJobBandRegion);
  EXPECT_NE(ra.band_base, rb.band_base);
  mgr.drain();
  EXPECT_EQ(mgr.bands_in_use(), 0);
  EXPECT_EQ(mgr.stats().peak_concurrent, 2);
  EXPECT_EQ(mgr.stats().bands_leased, 2);
}

// -- JobManager: batching -----------------------------------------------------

TEST(JobManagerTest, SameKeyJobsCoalesceIntoSharedGroups) {
  ServiceOptions so;
  so.nranks = 2;
  so.max_concurrent = 1;
  so.batch_limit = 4;
  so.max_queued = 16;
  JobManager mgr(so);

  // Park the dispatcher slot so the batchable jobs pile up in the queue.
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  JobHandle gate = mgr.submit({"gate"}, [&](JobContext& ctx) {
    if (ctx.rank() == 0) started.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    ctx.comm().barrier();
  });
  while (started.load() == 0) std::this_thread::yield();

  auto xs = random_array(4096, 21);
  double expect = 0;
  for (index_t i = 0; i < xs.size(); ++i) expect += xs[i];

  std::vector<JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    JobOptions jo;
    jo.name = "batch-" + std::to_string(i);
    jo.batch_key = 7;
    handles.push_back(mgr.submit(jo, [&xs](JobContext& ctx) {
      sched::SchedOptions opts;
      opts.grain = 256;
      double r = dist::sum(ctx.comm(), [&] { return from_array(xs); },
                           ctx.sched_options(opts));
      if (ctx.rank() == 0) {
        TRIOLET_CHECK(std::isfinite(r), "batched sum returned non-finite");
      }
    }));
  }
  release.store(true);
  EXPECT_TRUE(gate.wait().ok);
  for (auto& h : handles) EXPECT_TRUE(h.wait().ok);
  mgr.drain();

  ServiceStats s = mgr.stats();
  // 6 batchable jobs with batch_limit 4 form at most 2 groups once the gate
  // clears; at least one group must have coalesced several jobs.
  EXPECT_GE(s.batches, 1);
  EXPECT_GE(s.batched_jobs, 4);
  bool saw_batched = false;
  for (auto& h : handles) saw_batched |= h.wait().batched_with > 0;
  EXPECT_TRUE(saw_batched);
  (void)expect;
}

// -- JobManager: per-job stats attribution ------------------------------------

TEST(JobManagerTest, PerJobStatsIsolateConcurrentWorkloads) {
  ServiceOptions so;
  so.nranks = 4;
  so.max_concurrent = 2;
  JobManager mgr(so);

  const index_t n_big = 40000, n_small = 5000;
  auto big = random_array(n_big, 31);
  auto small = random_array(n_small, 32);

  auto reduce_job = [](const Array1<double>& xs) {
    return [&xs](JobContext& ctx) {
      sched::SchedOptions opts;
      opts.grain = 500;
      (void)dist::sum(ctx.comm(), [&] { return from_array(xs); },
                      ctx.sched_options(opts));
    };
  };
  JobHandle ha = mgr.submit({"big"}, reduce_job(big));
  JobHandle hb = mgr.submit({"small"}, reduce_job(small));
  JobResult ra = ha.wait(), rb = hb.wait();
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(rb.ok) << rb.error;

  // Each job's summed-over-ranks delta covers exactly its own extent.
  EXPECT_EQ(ra.stats.sched.items_executed, n_big);
  EXPECT_EQ(rb.stats.sched.items_executed, n_small);
  // The fair-share gate saw every granted unit of its own job and only
  // those (root self-issues included).
  EXPECT_EQ(ra.fair_share.acquired_items, n_big);
  EXPECT_EQ(rb.fair_share.acquired_items, n_small);
  EXPECT_GE(ra.run_seconds, 0.0);
  EXPECT_GE(ra.queued_seconds, 0.0);
}

// -- JobManager: failure isolation --------------------------------------------

TEST(JobManagerTest, AFailingJobDoesNotPoisonItsNeighbors) {
  // Pool-leak check: a failing job strands traffic — queued eager slabs and
  // rendezvous nodes, possibly still sitting in ring slots — and the band
  // purge must sweep every one of them back to the buffer pool. Snapshot
  // the pool before the service exists and compare after it is torn down.
  const std::int64_t pool_before = net::BufferPool::instance().outstanding();
  {
    ServiceOptions so;
    so.nranks = 2;
    so.max_concurrent = 2;
    JobManager mgr(so);

    auto xs = random_array(8192, 41);
    JobHandle bad = mgr.submit({"bad"}, [](JobContext& ctx) {
      ctx.comm().barrier();
      if (ctx.rank() == 1) throw std::runtime_error("synthetic job failure");
      // Rank 0 blocks on a message that never comes; the group abort must
      // wake it (ClusterAborted), not hang it.
      (void)ctx.comm().recv<int>(1, 17);
    });
    JobHandle good = mgr.submit({"good"}, [&xs](JobContext& ctx) {
      sched::SchedOptions opts;
      opts.grain = 512;
      (void)dist::sum(ctx.comm(), [&] { return from_array(xs); },
                      ctx.sched_options(opts));
    });

    JobResult rb = bad.wait();
    EXPECT_FALSE(rb.ok);
    EXPECT_NE(rb.error.find("synthetic job failure"), std::string::npos)
        << rb.error;
    JobResult rg = good.wait();
    EXPECT_TRUE(rg.ok) << rg.error;

    // The failed group's band was purged and reclaimed; the service keeps
    // serving.
    mgr.drain();
    EXPECT_EQ(mgr.bands_in_use(), 0);
    JobHandle after = mgr.submit({"after"}, [](JobContext& ctx) {
      ctx.comm().barrier();
    });
    EXPECT_TRUE(after.wait().ok);
    mgr.drain();  // handle fulfillment precedes the aggregate-stats update
    ServiceStats s = mgr.stats();
    EXPECT_EQ(s.failed, 1);
    EXPECT_EQ(s.completed, 2);
  }
  EXPECT_EQ(net::BufferPool::instance().outstanding(), pool_before)
      << "band purge / transport teardown leaked pooled buffers";
}

TEST(JobManagerTest, BatchNeighborsOfAFailedJobReportTheRootCause) {
  ServiceOptions so;
  so.nranks = 2;
  so.max_concurrent = 1;
  so.batch_limit = 3;
  JobManager mgr(so);

  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  JobHandle gate = mgr.submit({"gate"}, [&](JobContext& ctx) {
    if (ctx.rank() == 0) started.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    ctx.comm().barrier();
  });
  while (started.load() == 0) std::this_thread::yield();

  JobOptions a{"first", 1, 5};
  JobOptions b{"boom", 1, 5};
  JobOptions c{"skipped", 1, 5};
  JobHandle ha = mgr.submit(a, [](JobContext& ctx) { ctx.comm().barrier(); });
  JobHandle hb = mgr.submit(b, [](JobContext&) {
    throw std::runtime_error("batched failure");
  });
  JobHandle hc = mgr.submit(c, [](JobContext& ctx) { ctx.comm().barrier(); });
  release.store(true);
  EXPECT_TRUE(gate.wait().ok);

  // The job before the failure completed; the failing job carries the
  // error; the job after it was skipped and names the culprit.
  EXPECT_TRUE(ha.wait().ok);
  JobResult rb = hb.wait();
  EXPECT_FALSE(rb.ok);
  EXPECT_NE(rb.error.find("batched failure"), std::string::npos);
  JobResult rc = hc.wait();
  EXPECT_FALSE(rc.ok);
  EXPECT_NE(rc.error.find("boom"), std::string::npos) << rc.error;
}

// -- JobManager: cross-job residency ------------------------------------------

TEST(JobManagerTest, ResidentSlicesSurviveAcrossJobs) {
  ServiceOptions so;
  so.nranks = 4;
  so.max_concurrent = 1;
  so.slice_cache_bytes = std::size_t{64} << 20;
  JobManager mgr(so);

  const index_t n = 40000;
  auto xs = random_array(n, 51);
  DistArray<double> d{Array1<double>(xs)};

  auto job = [&d](JobContext& ctx) {
    (void)dist::sum(ctx.comm(), [&] { return from_resident(d); });
  };
  JobResult r1 = mgr.submit({"warm"}, job).wait();
  ASSERT_TRUE(r1.ok) << r1.error;
  JobResult r2 = mgr.submit({"hot"}, job).wait();
  ASSERT_TRUE(r2.ok) << r2.error;

  // Job 1 inlined one slice per worker into the manager-owned caches; job 2
  // — a *different* job — found them resident and shipped tokens instead.
  EXPECT_EQ(r1.stats.residency.slices_inlined, 3);
  EXPECT_EQ(r1.stats.residency.tokens_sent, 0);
  EXPECT_EQ(r2.stats.residency.tokens_sent, 3);
  EXPECT_EQ(r2.stats.residency.cache_hits, 3);
  EXPECT_EQ(r2.stats.residency.fetches, 0);
  EXPECT_EQ(r2.stats.residency.bytes_avoided,
            3 * (n / 4) * static_cast<index_t>(sizeof(double)));
  // The manager-level sinks saw the insertions.
  EXPECT_GT(mgr.stats().residency.bytes_inserted, 0);
}

TEST(JobManagerTest, SegmentedSlicesSurviveAcrossJobsWithViewCounters) {
  ServiceOptions so;
  so.nranks = 4;
  so.max_concurrent = 1;
  so.slice_cache_bytes = std::size_t{64} << 20;
  JobManager mgr(so);

  // Power-law CSR: a few jumbo segments, many tiny ones.
  std::vector<index_t> offsets{0};
  std::vector<double> values;
  Xoshiro256 rng(52);
  for (index_t s = 0; s < 512; ++s) {
    const index_t len = (s % 32 == 0) ? 96 : 1 + s % 4;
    for (index_t k = 0; k < len; ++k) values.push_back(rng.uniform(-1.0, 1.0));
    offsets.push_back(static_cast<index_t>(values.size()));
  }
  dist::SegmentedDistArray<double> a(offsets, values);

  auto job = [&a](JobContext& ctx) {
    sched::SchedOptions opts;
    opts.policy = sched::SchedulePolicy::kStatic;
    opts.combine = sched::CombineMode::kOrdered;
    (void)dist::sum(ctx.comm(),
                    [&] {
                      return dist::transform(
                          dist::from_segmented(a),
                          [](const dist::Segment<double>& s) {
                            double acc = 0.0;
                            for (core::index_t k = 0; k < s.size(); ++k) {
                              acc += s[k];
                            }
                            return acc;
                          });
                    },
                    opts);
  };
  JobResult r1 = mgr.submit({"warm-seg"}, job).wait();
  ASSERT_TRUE(r1.ok) << r1.error;
  JobResult r2 = mgr.submit({"hot-seg"}, job).wait();
  ASSERT_TRUE(r2.ok) << r2.error;

  // Job 1 inlined both leaves (offsets + values) of each worker's grant
  // into the manager-owned caches; job 2 found all six resident. Because
  // the source is a fused view (two resident leaves), the avoided bytes are
  // also attributed to the per-job view counters.
  EXPECT_EQ(r1.stats.residency.slices_inlined, 6);
  EXPECT_EQ(r1.stats.residency.tokens_sent, 0);
  EXPECT_EQ(r1.stats.views.view_tokens, 0);
  EXPECT_EQ(r2.stats.residency.tokens_sent, 6);
  EXPECT_EQ(r2.stats.residency.cache_hits, 6);
  EXPECT_EQ(r2.stats.residency.fetches, 0);
  EXPECT_EQ(r2.stats.views.view_tokens, 6);
  EXPECT_GT(r2.stats.views.view_bytes_avoided, 0);
  EXPECT_EQ(r2.stats.views.view_bytes_avoided,
            r2.stats.residency.bytes_avoided);
}

// -- determinism under concurrency --------------------------------------------

TEST(JobManagerTest, OrderedReduceIsBitwiseIdenticalConcurrentVsSolo) {
  const int ranks = 4;
  const int jobs = 6;
  const index_t n = 4096;
  const index_t grain = 64;

  std::vector<Array1<double>> data;
  for (int j = 0; j < jobs; ++j) data.push_back(spiky_array(n, 60 + j));

  // Solo baselines: each job alone on a classic run-to-completion cluster.
  std::vector<double> solo(jobs, 0.0);
  for (int j = 0; j < jobs; ++j) {
    auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
      NodeRuntime node(1);
      sched::SchedOptions opts;
      opts.combine = sched::CombineMode::kOrdered;
      opts.grain = grain;
      double r = dist::reduce(comm, [&] { return from_array(data[j]); }, 0.0,
                              [](double a, double b) { return a + b; }, opts);
      if (comm.rank() == 0) solo[j] = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
  }

  // The same jobs concurrently inside a busy service: different grant
  // interleavings, fair-share gating, shared pools — same bits.
  ServiceOptions so;
  so.nranks = ranks;
  so.max_concurrent = 3;
  JobManager mgr(so);
  std::vector<double> got(jobs, 0.0);
  std::vector<JobHandle> handles;
  for (int j = 0; j < jobs; ++j) {
    JobOptions jo;
    jo.name = "ordered-" + std::to_string(j);
    jo.weight = 1 + (j % 3);
    jo.batch_key = j >= 4 ? 9 : 0;  // a couple of them batched together
    handles.push_back(mgr.submit(jo, [&, j](JobContext& ctx) {
      sched::SchedOptions opts;
      opts.combine = sched::CombineMode::kOrdered;
      opts.grain = grain;
      double r = dist::reduce(ctx.comm(), [&] { return from_array(data[j]); },
                              0.0, [](double a, double b) { return a + b; },
                              ctx.sched_options(opts));
      if (ctx.rank() == 0) got[j] = r;
    }));
  }
  for (int j = 0; j < jobs; ++j) {
    JobResult r = handles[static_cast<std::size_t>(j)].wait();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(bitwise_equal(got[j], solo[j]))
        << "job " << j << ": concurrent " << got[j] << " != solo " << solo[j];
  }
  mgr.drain();
}

}  // namespace
}  // namespace triolet::svc
