// Cross-variant validation for the four Parboil-derived benchmarks: every
// implementation (sequential C, Triolet local/threaded/distributed, Eden
// sequential/farm, low-level threaded/distributed) of each benchmark must
// produce the same answer on the same inputs.

#include <gtest/gtest.h>

#include "apps/cutcp.hpp"
#include "apps/mriq.hpp"
#include "apps/sgemm.hpp"
#include "apps/tpacf.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"

namespace triolet::apps {
namespace {

constexpr double kTol = 2e-4;  // float kernels, different summation orders

// ---------------------------------------------------------------- mri-q --

class MriqVariants : public ::testing::Test {
 protected:
  MriqProblem p = make_mriq(600, 150, 42);
  MriqResult ref = mriq_seq_c(p);
};

TEST_F(MriqVariants, TrioletSeqMatchesC) {
  EXPECT_LT(mriq_rel_error(ref, mriq_triolet(p, core::ParHint::kSeq)), kTol);
}

TEST_F(MriqVariants, TrioletLocalparMatchesC) {
  EXPECT_LT(mriq_rel_error(ref, mriq_triolet(p, core::ParHint::kLocal)), kTol);
}

TEST_F(MriqVariants, EdenSeqMatchesC) {
  EXPECT_LT(mriq_rel_error(ref, mriq_eden_seq(p)), kTol);
}

TEST_F(MriqVariants, LowlevelThreadedMatchesC) {
  EXPECT_LT(mriq_rel_error(ref, mriq_lowlevel(p)), kTol);
}

TEST_F(MriqVariants, TrioletDistMatchesC) {
  MriqResult got;
  auto res = net::Cluster::run(3, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = mriq_triolet_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(mriq_rel_error(ref, got), kTol);
}

TEST_F(MriqVariants, EdenFarmMatchesC) {
  MriqResult got;
  auto res = net::Cluster::run(3, [&](net::Comm& c) {
    auto r = mriq_eden_farm(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(mriq_rel_error(ref, got), kTol);
}

TEST_F(MriqVariants, LowlevelDistMatchesC) {
  MriqResult got;
  auto res = net::Cluster::run(4, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = mriq_lowlevel_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(mriq_rel_error(ref, got), kTol);
}

// ---------------------------------------------------------------- sgemm --

class SgemmVariants : public ::testing::Test {
 protected:
  SgemmProblem p = make_sgemm(40, 24, 32, 43);
  Array2<float> ref = sgemm_seq_c(p);
};

TEST_F(SgemmVariants, TrioletSeqMatchesC) {
  EXPECT_LT(sgemm_rel_error(ref, sgemm_triolet(p, core::ParHint::kSeq)), kTol);
}

TEST_F(SgemmVariants, TrioletLocalparMatchesC) {
  EXPECT_LT(sgemm_rel_error(ref, sgemm_triolet(p, core::ParHint::kLocal)),
            kTol);
}

TEST_F(SgemmVariants, EdenSeqMatchesC) {
  EXPECT_LT(sgemm_rel_error(ref, sgemm_eden_seq(p)), kTol);
}

TEST_F(SgemmVariants, LowlevelThreadedMatchesC) {
  EXPECT_LT(sgemm_rel_error(ref, sgemm_lowlevel(p)), kTol);
}

TEST_F(SgemmVariants, TrioletDistMatchesC) {
  Array2<float> got;
  auto res = net::Cluster::run(4, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = sgemm_triolet_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(sgemm_rel_error(ref, got), kTol);
}

TEST_F(SgemmVariants, EdenFarmMatchesC) {
  Array2<float> got;
  auto res = net::Cluster::run(3, [&](net::Comm& c) {
    auto r = sgemm_eden_farm(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(sgemm_rel_error(ref, got), kTol);
}

TEST_F(SgemmVariants, EdenFarmFailsUnderBoundedBuffer) {
  // The paper's §4.3 observation reproduced functionally: with a bounded
  // message buffer, shipping whole matrices kills the job.
  net::ClusterOptions opts;
  opts.max_message_bytes = 512;
  auto res = net::Cluster::run(
      3, [&](net::Comm& c) { (void)sgemm_eden_farm(c, p); }, opts);
  EXPECT_FALSE(res.ok);
}

TEST_F(SgemmVariants, LowlevelDistMatchesC) {
  Array2<float> got;
  auto res = net::Cluster::run(4, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = sgemm_lowlevel_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(sgemm_rel_error(ref, got), kTol);
}

// ---------------------------------------------------------------- tpacf --

class TpacfVariants : public ::testing::Test {
 protected:
  TpacfProblem p = make_tpacf(80, 3, 16, 44);
  TpacfHist ref = tpacf_seq_c(p);
};

TEST_F(TpacfVariants, HistogramHasAllPairs) {
  // DD + R*(DR + RR) pair counts must land somewhere.
  const index_t n = p.points();
  std::int64_t dd = 0, dr = 0, rr = 0;
  for (index_t b = 0; b < p.nbins; ++b) {
    dd += ref[b];
    dr += ref[p.nbins + b];
    rr += ref[2 * p.nbins + b];
  }
  EXPECT_EQ(dd, n * (n - 1) / 2);
  EXPECT_EQ(dr, p.sets() * n * n);
  EXPECT_EQ(rr, p.sets() * (n * (n - 1) / 2));
}

TEST_F(TpacfVariants, TrioletSeqMatchesC) {
  EXPECT_EQ(tpacf_triolet(p, core::ParHint::kSeq), ref);
}

TEST_F(TpacfVariants, TrioletLocalparMatchesC) {
  EXPECT_EQ(tpacf_triolet(p, core::ParHint::kLocal), ref);
}

TEST_F(TpacfVariants, EdenSeqMatchesC) {
  EXPECT_EQ(tpacf_eden_seq(p), ref);
}

TEST_F(TpacfVariants, LowlevelThreadedMatchesC) {
  EXPECT_EQ(tpacf_lowlevel(p), ref);
}

TEST_F(TpacfVariants, TrioletDistMatchesC) {
  TpacfHist got;
  auto res = net::Cluster::run(4, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = tpacf_triolet_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got, ref);
}

TEST_F(TpacfVariants, Fig6DatasetParallelDistMatchesC) {
  TpacfHist got;
  auto res = net::Cluster::run(3, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = tpacf_triolet_dist_fig6(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got, ref);
}

TEST_F(TpacfVariants, EdenFarmMatchesC) {
  TpacfHist got;
  auto res = net::Cluster::run(3, [&](net::Comm& c) {
    auto r = tpacf_eden_farm(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got, ref);
}

TEST_F(TpacfVariants, LowlevelDistMatchesC) {
  TpacfHist got;
  auto res = net::Cluster::run(5, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = tpacf_lowlevel_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(got, ref);
}

// ---------------------------------------------------------------- cutcp --

class CutcpVariants : public ::testing::Test {
 protected:
  CutcpProblem p = make_cutcp(120, 12, 12, 12, 2.0f, 45);
  CutcpGrid ref = cutcp_seq_c(p);
};

TEST_F(CutcpVariants, GridHasNonTrivialPotential) {
  double mass = 0;
  for (index_t i = 0; i < ref.size(); ++i) mass += std::abs(ref[i]);
  EXPECT_GT(mass, 0.0);
}

TEST_F(CutcpVariants, TrioletSeqMatchesC) {
  EXPECT_LT(cutcp_rel_error(ref, cutcp_triolet(p, core::ParHint::kSeq)), kTol);
}

TEST_F(CutcpVariants, TrioletLocalparMatchesC) {
  EXPECT_LT(cutcp_rel_error(ref, cutcp_triolet(p, core::ParHint::kLocal)),
            kTol);
}

TEST_F(CutcpVariants, EdenSeqMatchesC) {
  EXPECT_LT(cutcp_rel_error(ref, cutcp_eden_seq(p)), kTol);
}

TEST_F(CutcpVariants, LowlevelThreadedMatchesC) {
  EXPECT_LT(cutcp_rel_error(ref, cutcp_lowlevel(p)), kTol);
}

TEST_F(CutcpVariants, TrioletDistMatchesC) {
  CutcpGrid got;
  auto res = net::Cluster::run(4, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = cutcp_triolet_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(cutcp_rel_error(ref, got), kTol);
}

TEST_F(CutcpVariants, EdenFarmMatchesC) {
  CutcpGrid got;
  auto res = net::Cluster::run(3, [&](net::Comm& c) {
    auto r = cutcp_eden_farm(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(cutcp_rel_error(ref, got), kTol);
}

TEST_F(CutcpVariants, LowlevelDistMatchesC) {
  CutcpGrid got;
  auto res = net::Cluster::run(4, [&](net::Comm& c) {
    dist::NodeRuntime node(2);
    auto r = cutcp_lowlevel_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(cutcp_rel_error(ref, got), kTol);
}

// Parameterized: Triolet dist variants stay correct across node counts.
class AppsNodes : public ::testing::TestWithParam<int> {};

TEST_P(AppsNodes, MriqTrioletDistScalesFunctionally) {
  MriqProblem p = make_mriq(300, 80, 46);
  MriqResult ref = mriq_seq_c(p);
  MriqResult got;
  auto res = net::Cluster::run(GetParam(), [&](net::Comm& c) {
    dist::NodeRuntime node(1);
    auto r = mriq_triolet_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(mriq_rel_error(ref, got), kTol);
}

TEST_P(AppsNodes, CutcpTrioletDistScalesFunctionally) {
  CutcpProblem p = make_cutcp(60, 10, 10, 10, 1.75f, 47);
  CutcpGrid ref = cutcp_seq_c(p);
  CutcpGrid got;
  auto res = net::Cluster::run(GetParam(), [&](net::Comm& c) {
    dist::NodeRuntime node(1);
    auto r = cutcp_triolet_dist(c, p);
    if (c.rank() == 0) got = std::move(r);
  });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_LT(cutcp_rel_error(ref, got), kTol);
}

INSTANTIATE_TEST_SUITE_P(Nodes, AppsNodes, ::testing::Values(1, 2, 5, 8));

}  // namespace
}  // namespace triolet::apps
