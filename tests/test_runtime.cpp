// Tests for the work-stealing runtime: deque semantics (including a
// multithreaded steal hammer), pool fork-join, parallel_for coverage,
// parallel_reduce determinism, nesting, and per-thread storage.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/ws_deque.hpp"

namespace triolet::runtime {
namespace {

TEST(WsDeque, LifoForOwner) {
  WsDeque<int*> d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  int* out = nullptr;
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, &c);
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, &b);
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, &a);
  EXPECT_FALSE(d.pop(out));
}

TEST(WsDeque, FifoForThief) {
  WsDeque<int*> d;
  int a = 1, b = 2;
  d.push(&a);
  d.push(&b);
  int* out = nullptr;
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(out, &a);  // thief takes oldest
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(out, &b);
  EXPECT_FALSE(d.steal(out));
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  WsDeque<std::int64_t*> d(4);
  std::vector<std::int64_t> vals(1000);
  for (auto& v : vals) d.push(&v);
  EXPECT_EQ(d.size_approx(), 1000);
  std::int64_t* out = nullptr;
  for (int i = 999; i >= 0; --i) {
    ASSERT_TRUE(d.pop(out));
    EXPECT_EQ(out, &vals[static_cast<size_t>(i)]);
  }
}

TEST(WsDeque, ConcurrentStealsLoseNothingAndDuplicateNothing) {
  // Owner pushes/pops while 3 thieves steal; every element must be consumed
  // exactly once across all consumers.
  constexpr int kN = 20000;
  WsDeque<std::int64_t*> d;
  std::vector<std::int64_t> items(kN);
  for (int i = 0; i < kN; ++i) items[static_cast<size_t>(i)] = i;

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> stolen_sum{0};
  std::atomic<std::int64_t> stolen_count{0};

  auto thief = [&] {
    std::int64_t* p = nullptr;
    while (!done.load(std::memory_order_acquire)) {
      if (d.steal(p)) {
        stolen_sum.fetch_add(*p);
        stolen_count.fetch_add(1);
      }
    }
    while (d.steal(p)) {
      stolen_sum.fetch_add(*p);
      stolen_count.fetch_add(1);
    }
  };
  std::thread t1(thief), t2(thief), t3(thief);

  std::int64_t own_sum = 0, own_count = 0;
  for (int i = 0; i < kN; ++i) d.push(&items[static_cast<size_t>(i)]);
  std::int64_t* p = nullptr;
  while (d.pop(p)) {
    own_sum += *p;
    ++own_count;
  }
  done.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  t3.join();

  EXPECT_EQ(own_count + stolen_count.load(), kN);
  EXPECT_EQ(own_sum + stolen_sum.load(),
            static_cast<std::int64_t>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  TaskGroup g;
  for (int i = 0; i < 100; ++i) {
    pool.submit(g, [&] { ran.fetch_add(1); });
  }
  pool.wait(g);
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(g.pending(), 0);
}

TEST(ThreadPool, WorkerIndexVisibleInsideTasks) {
  ThreadPool pool(2);
  std::atomic<int> bad{0};
  TaskGroup g;
  for (int i = 0; i < 50; ++i) {
    pool.submit(g, [&] {
      // Tasks run either on a pool worker (index in [0, size)) or on the
      // external waiting thread, which helps with index -1.
      int w = ThreadPool::current_worker();
      if (w < -1 || w >= 2) bad.fetch_add(1);
    });
  }
  pool.wait(g);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ThreadPool::current_worker(), -1);  // external thread
}

TEST(ThreadPool, NestedSubmissionFromWorkers) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  TaskGroup outer;
  for (int i = 0; i < 10; ++i) {
    pool.submit(outer, [&] {
      TaskGroup inner;
      for (int j = 0; j < 10; ++j) {
        pool.submit(inner, [&] { ran.fetch_add(1); });
      }
      pool.wait(inner);
    });
  }
  pool.wait(outer);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr index_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, 7, [&](index_t a, index_t b) {
    for (index_t i = a; i < b; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (index_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](index_t, index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, RespectsGrainAsLowerBoundOnChunks) {
  // The splitter's floor is on *subranges*: a fork happens only when both
  // halves stay >= grain, so halving 1000 can reach 125-wide subranges but
  // never below grain. Executed chunks are grain-sized steps of a
  // subrange, so only the per-subrange tail may fall short (125 -> 100 +
  // 25); how far splitting actually descends depends on steal demand, so
  // the tail size is not deterministic — the chunk *count* bound and the
  // exact coverage are.
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::atomic<index_t> largest{0}, covered{0};
  parallel_for(pool, 0, 1000, 100, [&](index_t a, index_t b) {
    ASSERT_LT(a, b);  // never an empty chunk
    chunks.fetch_add(1);
    covered.fetch_add(b - a);
    index_t sz = b - a;
    index_t cur = largest.load();
    while (sz > cur && !largest.compare_exchange_weak(cur, sz)) {
    }
  });
  EXPECT_LE(chunks.load(), 16);  // 8 subranges of >= 125, <= 2 chunks each
  EXPECT_LE(largest.load(), 100);  // a chunk never exceeds the grain
  EXPECT_EQ(covered.load(), 1000);  // disjoint chunks cover the range
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  constexpr index_t kN = 100000;
  auto r = parallel_reduce(
      pool, 0, kN, 0, std::int64_t{0},
      [](index_t a, index_t b, std::int64_t acc) {
        for (index_t i = a; i < b; ++i) acc += i;
        return acc;
      },
      [](std::int64_t x, std::int64_t y) { return x + y; });
  EXPECT_EQ(r, kN * (kN - 1) / 2);
}

TEST(ParallelReduce, FloatingPointResultIsSchedulingIndependent) {
  // Partials combine in chunk order, so two runs agree bitwise.
  ThreadPool pool(4);
  auto run = [&] {
    return parallel_reduce(
        pool, 0, 50000, 64, 0.0,
        [](index_t a, index_t b, double acc) {
          for (index_t i = a; i < b; ++i)
            acc += 1.0 / (1.0 + static_cast<double>(i));
          return acc;
        },
        [](double x, double y) { return x + y; });
  };
  double r1 = run();
  for (int rep = 0; rep < 5; ++rep) {
    ASSERT_EQ(run(), r1) << "rep " << rep;
  }
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  auto r = parallel_reduce(
      pool, 3, 3, 0, 42,
      [](index_t, index_t, int acc) { return acc + 1; },
      [](int x, int y) { return x + y; });
  EXPECT_EQ(r, 42);
}

TEST(ParallelInvoke, RunsBothBranches) {
  ThreadPool pool(2);
  std::atomic<int> a{0}, b{0};
  parallel_invoke(pool, [&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(PerThread, SlotsAreDisjointPerWorker) {
  ThreadPool pool(4);
  PerThread<std::int64_t> acc(pool, 0);
  parallel_for(pool, 0, 100000, 10, [&](index_t a, index_t b) {
    acc.local() += (b - a);
  });
  std::int64_t total = 0;
  for (auto v : acc.slots()) total += v;
  EXPECT_EQ(total, 100000);
}

TEST(PerThread, ExternalThreadUsesOverflowSlot) {
  ThreadPool pool(2);
  PerThread<int> acc(pool, 0);
  acc.local() = 9;  // calling thread is not a pool worker
  EXPECT_EQ(acc.slots().back(), 9);
}

TEST(AutoGrain, ProducesReasonableChunking) {
  EXPECT_GE(auto_grain(0, 4), 1);
  EXPECT_GE(auto_grain(1, 4), 1);
  EXPECT_EQ(auto_grain(3200, 4), 100);  // 8 chunks per worker
  EXPECT_GE(auto_grain(10, 128), 1);
}

TEST(AutoGrain, DegenerateCasesStayClamped) {
  // Tiny n with huge thread counts: grain floors at 1 (never 0, which would
  // loop forever) and never exceeds n.
  EXPECT_EQ(auto_grain(5, 128), 1);
  EXPECT_EQ(auto_grain(1, 1), 1);
  EXPECT_EQ(auto_grain(1, 1024), 1);
  EXPECT_EQ(auto_grain(0, 1), 1);
  // Pinned targets: n / (8 * nthreads) once that is >= 1.
  EXPECT_EQ(auto_grain(100, 1), 12);
  EXPECT_EQ(auto_grain(8, 1), 1);
  EXPECT_EQ(auto_grain(16, 1), 2);
  EXPECT_EQ(auto_grain(1 << 20, 8), (1 << 20) / 64);
  // Defensive: nonsense thread counts behave like 1.
  EXPECT_EQ(auto_grain(64, 0), 8);
  for (index_t n : {1, 2, 5, 9, 100}) {
    for (int t : {1, 2, 64, 4096}) {
      index_t g = auto_grain(n, t);
      ASSERT_GE(g, 1) << n << "/" << t;
      ASSERT_LE(g, n) << n << "/" << t;
    }
  }
}

TEST(AutoGrain, TinyRangeOnWidePoolProducesNoEmptySubranges) {
  ThreadPool pool(8);
  for (index_t n : {1, 2, 3, 7}) {
    std::atomic<int> chunks{0};
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    parallel_for(pool, 0, n, 0, [&](index_t a, index_t b) {
      ASSERT_LT(a, b) << "empty subrange";
      chunks.fetch_add(1);
      for (index_t i = a; i < b; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    EXPECT_LE(chunks.load(), static_cast<int>(n));
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
    }
  }
}

// -- deque growth + retired-buffer reclamation --------------------------------

struct Wide {
  std::int64_t a;
  std::int64_t b;
  std::int64_t c;
};

TEST(WsDeque, GrowthStressPreservesMultiWordValues) {
  // Repeated fill/drain cycles from a tiny initial capacity: every growth
  // must carry the live window intact, including values wider than one
  // atomic word.
  WsDeque<Wide> d(2);
  for (int cycle = 0; cycle < 5; ++cycle) {
    const std::int64_t n = 100 << cycle;
    for (std::int64_t i = 0; i < n; ++i) d.push(Wide{i, 2 * i, -i});
    Wide out{};
    for (std::int64_t i = n - 1; i >= 0; --i) {
      ASSERT_TRUE(d.pop(out));
      ASSERT_EQ(out.a, i);
      ASSERT_EQ(out.b, 2 * i);
      ASSERT_EQ(out.c, -i);
    }
    EXPECT_FALSE(d.pop(out));
  }
  // Growth retired the smaller buffers; an owner-side reclaim at this
  // (trivially quiescent) point frees them all.
  EXPECT_GT(d.retired_count(), 0);
  d.reclaim_retired();
  EXPECT_EQ(d.retired_count(), 0);
  // The deque still works after reclamation.
  d.push(Wide{7, 8, 9});
  Wide out{};
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(out.b, 8);
}

TEST(ThreadPool, RetiredBuffersAreReclaimedAtQuiescentPoints) {
  ThreadPool pool(2);
  // Force deque growth: one task fans out far past the 64-slot initial
  // capacity from inside a worker (own-deque pushes).
  std::atomic<std::int64_t> ran{0};
  TaskGroup g;
  pool.submit(g, [&] {
    TaskGroup inner;
    for (int i = 0; i < 5000; ++i) {
      pool.submit(inner, [&] { ran.fetch_add(1); });
    }
    pool.wait(inner);
  });
  pool.wait(g);
  EXPECT_EQ(ran.load(), 5000);
  // Reclamation happens when a worker drains at a moment no thief is
  // mid-scan; drive a few trivial rounds until the backlog hits zero
  // (bounded: this converges in one or two rounds in practice).
  for (int round = 0; round < 200 && pool.retired_buffers() > 0; ++round) {
    TaskGroup r;
    for (int i = 0; i < 8; ++i) pool.submit(r, [] {});
    pool.wait(r);
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.retired_buffers(), 0);
}

// -- task slots ----------------------------------------------------------------

TEST(ThreadPool, SmallTasksStayInlineLargeTasksAreBoxed) {
  ThreadPool pool(2);
  const std::int64_t boxed_before = pool.stats().tasks_boxed;
  TaskGroup g;
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit(g, [&ran] { ran.fetch_add(1); });  // 8-byte capture: inline
  }
  pool.wait(g);
  EXPECT_EQ(pool.stats().tasks_boxed, boxed_before);

  // A capture owning heap state is not trivially copyable -> boxed path.
  std::vector<int> payload(100, 3);
  TaskGroup g2;
  pool.submit(g2, [&ran, payload] { ran.fetch_add(payload[0]); });
  pool.wait(g2);
  EXPECT_EQ(pool.stats().tasks_boxed, boxed_before + 1);
  EXPECT_EQ(ran.load(), 32 + 3);
}

// -- adaptive scheduling counters ----------------------------------------------

TEST(ThreadPool, LazySplittingKeepsStealsFarBelowChunks) {
  // Balanced loop, many chunks: lazy splitting forks only on observed
  // demand, so the number of migrated (stolen) tasks must stay a small
  // fraction of the logical chunks executed.
  ThreadPool pool(4);
  const auto before = pool.stats();
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 0, 20000, 10, [&](index_t a, index_t b) {
      std::int64_t s = 0;
      for (index_t i = a; i < b; ++i) s += i;
      sum.fetch_add(s, std::memory_order_relaxed);
    });
  }
  const auto after = pool.stats();
  const std::int64_t chunks = after.tasks_executed - before.tasks_executed;
  const std::int64_t stolen = after.tasks_stolen - before.tasks_stolen;
  EXPECT_GE(chunks, 5 * (20000 / 10));
  EXPECT_LT(stolen * 10, chunks) << "eager-splitting-level task migration";
}

TEST(ThreadPool, ParkAndTargetedWakeCountersAdvance) {
  ThreadPool pool(3);
  // Idle workers spin out their budget and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GT(pool.stats().parks, 0);
  // A submission wakes (at most) one parked worker, not all of them.
  TaskGroup g;
  std::atomic<int> ran{0};
  pool.submit(g, [&] { ran.fetch_add(1); });
  pool.wait(g);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_GT(pool.stats().wakes, 0);
  EXPECT_GT(pool.stats().steal_attempts, 0);
}

// -- PerThread under nesting and concurrent pool scopes ------------------------

TEST(PerThread, DisjointUnderNestedParallelFor) {
  ThreadPool pool(4);
  PoolScope scope(pool);
  PerThread<std::int64_t> acc(pool, 0);
  parallel_for(pool, 0, 40, 1, [&](index_t oa, index_t ob) {
    for (index_t o = oa; o < ob; ++o) {
      // Nested loop on the same pool: inner chunks still run on this
      // pool's workers (or the helping waiter), so every increment lands
      // in a slot this PerThread owns.
      parallel_for(current_pool(), 0, 250, 25, [&](index_t a, index_t b) {
        acc.local() += (b - a);
      });
    }
  });
  std::int64_t total = 0;
  for (auto v : acc.slots()) total += v;
  EXPECT_EQ(total, 40 * 250);
}

TEST(PerThread, TwoConcurrentPoolScopesKeepAccumulatorsDisjoint) {
  // Two simulated ranks: each thread owns a pool, scopes it, and runs its
  // own privatized accumulation. Pools share nothing, so neither rank's
  // total can bleed into the other's slots.
  constexpr index_t kN0 = 60000, kN1 = 35000;
  std::int64_t total0 = -1, total1 = -1;
  auto rank_body = [](index_t n, std::int64_t* out) {
    ThreadPool pool(2);
    PoolScope scope(pool);
    PerThread<std::int64_t> acc(pool, 0);
    parallel_for(current_pool(), 0, n, 100, [&](index_t a, index_t b) {
      acc.local() += (b - a);
    });
    std::int64_t total = 0;
    for (auto v : acc.slots()) total += v;
    *out = total;
  };
  std::thread r0(rank_body, kN0, &total0);
  std::thread r1(rank_body, kN1, &total1);
  r0.join();
  r1.join();
  EXPECT_EQ(total0, kN0);
  EXPECT_EQ(total1, kN1);
}

// Parameterized stress: correctness at several pool widths.
class PoolWidth : public ::testing::TestWithParam<int> {};

TEST_P(PoolWidth, ReduceMatchesSerialAcrossWidths) {
  ThreadPool pool(GetParam());
  auto r = parallel_reduce(
      pool, 0, 9999, 0, std::int64_t{0},
      [](index_t a, index_t b, std::int64_t acc) {
        for (index_t i = a; i < b; ++i) acc += i * i;
        return acc;
      },
      [](std::int64_t x, std::int64_t y) { return x + y; });
  std::int64_t expect = 0;
  for (index_t i = 0; i < 9999; ++i) expect += i * i;
  EXPECT_EQ(r, expect);
}

INSTANTIATE_TEST_SUITE_P(Widths, PoolWidth, ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace triolet::runtime
