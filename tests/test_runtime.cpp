// Tests for the work-stealing runtime: deque semantics (including a
// multithreaded steal hammer), pool fork-join, parallel_for coverage,
// parallel_reduce determinism, nesting, and per-thread storage.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/ws_deque.hpp"

namespace triolet::runtime {
namespace {

TEST(WsDeque, LifoForOwner) {
  WsDeque<int*> d;
  int a = 1, b = 2, c = 3;
  d.push(&a);
  d.push(&b);
  d.push(&c);
  int* out = nullptr;
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, &c);
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, &b);
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, &a);
  EXPECT_FALSE(d.pop(out));
}

TEST(WsDeque, FifoForThief) {
  WsDeque<int*> d;
  int a = 1, b = 2;
  d.push(&a);
  d.push(&b);
  int* out = nullptr;
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(out, &a);  // thief takes oldest
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(out, &b);
  EXPECT_FALSE(d.steal(out));
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  WsDeque<std::int64_t*> d(4);
  std::vector<std::int64_t> vals(1000);
  for (auto& v : vals) d.push(&v);
  EXPECT_EQ(d.size_approx(), 1000);
  std::int64_t* out = nullptr;
  for (int i = 999; i >= 0; --i) {
    ASSERT_TRUE(d.pop(out));
    EXPECT_EQ(out, &vals[static_cast<size_t>(i)]);
  }
}

TEST(WsDeque, ConcurrentStealsLoseNothingAndDuplicateNothing) {
  // Owner pushes/pops while 3 thieves steal; every element must be consumed
  // exactly once across all consumers.
  constexpr int kN = 20000;
  WsDeque<std::int64_t*> d;
  std::vector<std::int64_t> items(kN);
  for (int i = 0; i < kN; ++i) items[static_cast<size_t>(i)] = i;

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> stolen_sum{0};
  std::atomic<std::int64_t> stolen_count{0};

  auto thief = [&] {
    std::int64_t* p = nullptr;
    while (!done.load(std::memory_order_acquire)) {
      if (d.steal(p)) {
        stolen_sum.fetch_add(*p);
        stolen_count.fetch_add(1);
      }
    }
    while (d.steal(p)) {
      stolen_sum.fetch_add(*p);
      stolen_count.fetch_add(1);
    }
  };
  std::thread t1(thief), t2(thief), t3(thief);

  std::int64_t own_sum = 0, own_count = 0;
  for (int i = 0; i < kN; ++i) d.push(&items[static_cast<size_t>(i)]);
  std::int64_t* p = nullptr;
  while (d.pop(p)) {
    own_sum += *p;
    ++own_count;
  }
  done.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  t3.join();

  EXPECT_EQ(own_count + stolen_count.load(), kN);
  EXPECT_EQ(own_sum + stolen_sum.load(),
            static_cast<std::int64_t>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  TaskGroup g;
  for (int i = 0; i < 100; ++i) {
    pool.submit(g, [&] { ran.fetch_add(1); });
  }
  pool.wait(g);
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(g.pending(), 0);
}

TEST(ThreadPool, WorkerIndexVisibleInsideTasks) {
  ThreadPool pool(2);
  std::atomic<int> bad{0};
  TaskGroup g;
  for (int i = 0; i < 50; ++i) {
    pool.submit(g, [&] {
      // Tasks run either on a pool worker (index in [0, size)) or on the
      // external waiting thread, which helps with index -1.
      int w = ThreadPool::current_worker();
      if (w < -1 || w >= 2) bad.fetch_add(1);
    });
  }
  pool.wait(g);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ThreadPool::current_worker(), -1);  // external thread
}

TEST(ThreadPool, NestedSubmissionFromWorkers) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  TaskGroup outer;
  for (int i = 0; i < 10; ++i) {
    pool.submit(outer, [&] {
      TaskGroup inner;
      for (int j = 0; j < 10; ++j) {
        pool.submit(inner, [&] { ran.fetch_add(1); });
      }
      pool.wait(inner);
    });
  }
  pool.wait(outer);
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr index_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, 0, kN, 7, [&](index_t a, index_t b) {
    for (index_t i = a; i < b; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (index_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](index_t, index_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, RespectsGrainAsLowerBoundOnChunks) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::atomic<index_t> smallest{1 << 30};
  parallel_for(pool, 0, 1000, 100, [&](index_t a, index_t b) {
    chunks.fetch_add(1);
    index_t sz = b - a;
    index_t cur = smallest.load();
    while (sz < cur && !smallest.compare_exchange_weak(cur, sz)) {
    }
  });
  EXPECT_LE(chunks.load(), 16);  // 1000/100 -> at most ~16 chunks after splits
  EXPECT_GE(smallest.load(), 50);  // halving never undershoots grain/2
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  constexpr index_t kN = 100000;
  auto r = parallel_reduce(
      pool, 0, kN, 0, std::int64_t{0},
      [](index_t a, index_t b, std::int64_t acc) {
        for (index_t i = a; i < b; ++i) acc += i;
        return acc;
      },
      [](std::int64_t x, std::int64_t y) { return x + y; });
  EXPECT_EQ(r, kN * (kN - 1) / 2);
}

TEST(ParallelReduce, FloatingPointResultIsSchedulingIndependent) {
  // Partials combine in chunk order, so two runs agree bitwise.
  ThreadPool pool(4);
  auto run = [&] {
    return parallel_reduce(
        pool, 0, 50000, 64, 0.0,
        [](index_t a, index_t b, double acc) {
          for (index_t i = a; i < b; ++i)
            acc += 1.0 / (1.0 + static_cast<double>(i));
          return acc;
        },
        [](double x, double y) { return x + y; });
  };
  double r1 = run();
  for (int rep = 0; rep < 5; ++rep) {
    ASSERT_EQ(run(), r1) << "rep " << rep;
  }
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  auto r = parallel_reduce(
      pool, 3, 3, 0, 42,
      [](index_t, index_t, int acc) { return acc + 1; },
      [](int x, int y) { return x + y; });
  EXPECT_EQ(r, 42);
}

TEST(ParallelInvoke, RunsBothBranches) {
  ThreadPool pool(2);
  std::atomic<int> a{0}, b{0};
  parallel_invoke(pool, [&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(PerThread, SlotsAreDisjointPerWorker) {
  ThreadPool pool(4);
  PerThread<std::int64_t> acc(pool, 0);
  parallel_for(pool, 0, 100000, 10, [&](index_t a, index_t b) {
    acc.local() += (b - a);
  });
  std::int64_t total = 0;
  for (auto v : acc.slots()) total += v;
  EXPECT_EQ(total, 100000);
}

TEST(PerThread, ExternalThreadUsesOverflowSlot) {
  ThreadPool pool(2);
  PerThread<int> acc(pool, 0);
  acc.local() = 9;  // calling thread is not a pool worker
  EXPECT_EQ(acc.slots().back(), 9);
}

TEST(AutoGrain, ProducesReasonableChunking) {
  EXPECT_GE(auto_grain(0, 4), 1);
  EXPECT_GE(auto_grain(1, 4), 1);
  EXPECT_EQ(auto_grain(3200, 4), 100);  // 8 chunks per worker
  EXPECT_GE(auto_grain(10, 128), 1);
}

// Parameterized stress: correctness at several pool widths.
class PoolWidth : public ::testing::TestWithParam<int> {};

TEST_P(PoolWidth, ReduceMatchesSerialAcrossWidths) {
  ThreadPool pool(GetParam());
  auto r = parallel_reduce(
      pool, 0, 9999, 0, std::int64_t{0},
      [](index_t a, index_t b, std::int64_t acc) {
        for (index_t i = a; i < b; ++i) acc += i * i;
        return acc;
      },
      [](std::int64_t x, std::int64_t y) { return x + y; });
  std::int64_t expect = 0;
  for (index_t i = 0; i < 9999; ++i) expect += i * i;
  EXPECT_EQ(r, expect);
}

INSTANTIATE_TEST_SUITE_P(Widths, PoolWidth, ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace triolet::runtime
