// Tests for the second extension batch: Eden list operations, associative-
// container serialization, vector<bool> framing, and the mri-q phiMag
// pre-kernel.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "apps/mriq.hpp"
#include "eden/list.hpp"
#include "serial/serialize.hpp"

namespace triolet {
namespace {

using eden::List;

TEST(EdenListOps, Append) {
  auto a = List<int>::from_vector({1, 2});
  auto b = List<int>::from_vector({3, 4, 5});
  EXPECT_EQ(eden::append(a, b).to_vector(), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(eden::append(List<int>{}, b).to_vector(),
            (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(eden::append(a, List<int>{}).to_vector(), (std::vector<int>{1, 2}));
}

TEST(EdenListOps, Reverse) {
  auto xs = List<int>::from_vector({1, 2, 3});
  EXPECT_EQ(eden::reverse(xs).to_vector(), (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(eden::reverse(eden::reverse(xs)).to_vector(), xs.to_vector());
}

TEST(EdenListOps, TakeDrop) {
  auto xs = List<int>::from_vector({1, 2, 3, 4, 5});
  EXPECT_EQ(eden::take(2, xs).to_vector(), (std::vector<int>{1, 2}));
  EXPECT_EQ(eden::take(99, xs).to_vector(), xs.to_vector());
  EXPECT_EQ(eden::drop(2, xs).to_vector(), (std::vector<int>{3, 4, 5}));
  EXPECT_TRUE(eden::drop(99, xs).empty());
  // take n ++ drop n == id
  EXPECT_EQ(eden::append(eden::take(3, xs), eden::drop(3, xs)).to_vector(),
            xs.to_vector());
}

TEST(EdenListOps, ConcatAndReplicate) {
  auto xss = List<List<int>>::from_vector(
      {List<int>::from_vector({1}), List<int>{},
       List<int>::from_vector({2, 3})});
  EXPECT_EQ(eden::concat(xss).to_vector(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eden::replicate(4, 7).to_vector(), (std::vector<int>{7, 7, 7, 7}));
}

TEST(SerialMaps, MapRoundTrips) {
  std::map<std::string, std::vector<int>> m{
      {"a", {1, 2}}, {"bb", {}}, {"c", {3}}};
  auto back = serial::from_bytes<decltype(m)>(serial::to_bytes(m));
  EXPECT_EQ(back, m);
}

TEST(SerialMaps, UnorderedMapRoundTripsAndIsDeterministic) {
  std::unordered_map<int, double> m{{5, 1.5}, {1, 2.5}, {9, -1.0}};
  auto bytes1 = serial::to_bytes(m);
  // Rebuild with a different insertion order; wire form must be identical.
  std::unordered_map<int, double> m2;
  m2.emplace(9, -1.0);
  m2.emplace(5, 1.5);
  m2.emplace(1, 2.5);
  EXPECT_EQ(bytes1, serial::to_bytes(m2));
  EXPECT_EQ(serial::from_bytes<decltype(m)>(bytes1), m);
}

TEST(SerialVectorBool, RoundTrips) {
  std::vector<bool> v{true, false, false, true, true};
  EXPECT_EQ(serial::from_bytes<std::vector<bool>>(serial::to_bytes(v)), v);
  EXPECT_EQ(serial::wire_size(v), 8u + v.size());
  std::vector<bool> empty;
  EXPECT_EQ(serial::from_bytes<std::vector<bool>>(serial::to_bytes(empty)),
            empty);
}

TEST(MriqPhiMag, MatchesScalarFormula) {
  std::vector<float> re{1.0f, 0.5f, -2.0f};
  std::vector<float> im{0.0f, 0.5f, 1.0f};
  auto mag = apps::mriq_phi_mag(re, im);
  ASSERT_EQ(mag.size(), 3u);
  EXPECT_FLOAT_EQ(mag[0], 1.0f);
  EXPECT_FLOAT_EQ(mag[1], 0.5f);
  EXPECT_FLOAT_EQ(mag[2], 5.0f);
}

TEST(MriqPhiMagDeath, MismatchedInputsAbort) {
  EXPECT_DEATH((void)apps::mriq_phi_mag({1.0f}, {1.0f, 2.0f}), "mismatch");
}

}  // namespace
}  // namespace triolet
