// Tests for the tree-structured collectives: correctness at non-power-of-two
// widths, empty and multi-megabyte payloads, allreduce/allgather agreement
// across ranks, bitwise determinism of floating-point tree reductions, the
// reduce_ordered linear-order fallback, logarithmic critical-path depth via
// the per-collective CommStats counters, and group (sub-communicator)
// collectives.

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <numeric>

#include "net/cluster.hpp"
#include "support/rng.hpp"

namespace triolet::net {
namespace {

int ceil_log2(int p) {
  int d = 0;
  for (int reach = 1; reach < p; reach <<= 1) ++d;
  return d;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
  return v;
}

// Parameterized over non-power-of-two (and a few power-of-two) widths.
class TreeCollectives : public ::testing::TestWithParam<int> {};

TEST_P(TreeCollectives, BroadcastFromEveryRoot) {
  const int p = GetParam();
  auto res = Cluster::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> v;
      if (c.rank() == root) {
        v = {root, root + 1, root + 2};
      }
      c.broadcast(v, root);
      EXPECT_EQ(v, (std::vector<int>{root, root + 1, root + 2}));
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST_P(TreeCollectives, GatherCollectsByRankFromEveryRoot) {
  const int p = GetParam();
  auto res = Cluster::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::string mine(1, static_cast<char>('a' + c.rank()));
      auto all = c.gather(mine, root);
      if (c.rank() == root) {
        ASSERT_EQ(static_cast<int>(all.size()), p);
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(all[static_cast<std::size_t>(r)],
                    std::string(1, static_cast<char>('a' + r)));
        }
      } else {
        EXPECT_TRUE(all.empty());
      }
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST_P(TreeCollectives, ScatterHandsOutPerRankItemsFromEveryRoot) {
  const int p = GetParam();
  auto res = Cluster::run(p, [&](Comm& c) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::string> items;
      if (c.rank() == root) {
        for (int r = 0; r < p; ++r) {
          items.push_back("item-" + std::to_string(r));
        }
      }
      auto mine = c.scatter(items, root);
      EXPECT_EQ(mine, "item-" + std::to_string(c.rank()));
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST_P(TreeCollectives, ReduceKeepsRankOrderForAssociativeOps) {
  const int p = GetParam();
  auto res = Cluster::run(p, [&](Comm& c) {
    std::string mine(1, static_cast<char>('A' + c.rank()));
    auto r = c.reduce(mine,
                      [](std::string a, std::string b) { return a + b; }, 0);
    if (c.rank() == 0) {
      std::string expect;
      for (int i = 0; i < p; ++i) expect += static_cast<char>('A' + i);
      EXPECT_EQ(r, expect);
    } else {
      EXPECT_TRUE(r.empty());
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST_P(TreeCollectives, AllreduceAgreesOnEveryRank) {
  const int p = GetParam();
  std::mutex mu;
  std::vector<std::int64_t> results;
  auto res = Cluster::run(p, [&](Comm& c) {
    auto total = c.allreduce(
        static_cast<std::int64_t>((c.rank() + 1) * (c.rank() + 1)),
        [](std::int64_t a, std::int64_t b) { return a + b; });
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(total);
  });
  EXPECT_TRUE(res.ok) << res.error;
  std::int64_t expect = 0;
  for (int r = 1; r <= p; ++r) expect += static_cast<std::int64_t>(r) * r;
  ASSERT_EQ(static_cast<int>(results.size()), p);
  for (auto got : results) EXPECT_EQ(got, expect);
}

TEST_P(TreeCollectives, AllgatherDeliversWorldOrderEverywhere) {
  const int p = GetParam();
  auto res = Cluster::run(p, [&](Comm& c) {
    auto all = c.allgather(c.rank() * 10);
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST_P(TreeCollectives, BarrierSynchronizesPhases) {
  const int p = GetParam();
  std::atomic<int> counter{0};
  auto res = Cluster::run(p, [&](Comm& c) {
    for (int phase = 1; phase <= 3; ++phase) {
      counter.fetch_add(1);
      c.barrier();
      EXPECT_GE(counter.load(), phase * p);
      c.barrier();
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

INSTANTIATE_TEST_SUITE_P(Widths, TreeCollectives,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 16));

TEST(TreeCollectives, EmptyPayloadsRoundTrip) {
  auto res = Cluster::run(5, [](Comm& c) {
    // Broadcast of an empty vector: zero-byte element payload.
    std::vector<double> v;
    if (c.rank() == 0) v = {};
    c.broadcast(v, 0);
    EXPECT_TRUE(v.empty());
    // Gather / reduce of empty strings.
    auto all = c.gather(std::string{}, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), 5u);
      for (const auto& s : all) EXPECT_TRUE(s.empty());
    }
    auto cat = c.reduce(std::string{},
                        [](std::string a, std::string b) { return a + b; }, 0);
    EXPECT_TRUE(cat.empty());
    // Allreduce over empty arrays stays empty.
    auto sum = c.allreduce(std::vector<int>{}, [](std::vector<int> a,
                                                  const std::vector<int>& b) {
      EXPECT_EQ(a.size(), b.size());
      return a;
    });
    EXPECT_TRUE(sum.empty());
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(TreeCollectives, MultiMegabyteBroadcastAndReduce) {
  // 4 MB broadcast payload; 1 MB per-rank reduce contributions.
  const std::size_t bcast_n = (4u << 20) / sizeof(double);
  const std::size_t red_n = (1u << 20) / sizeof(double);
  auto big = random_doubles(bcast_n, 42);
  auto res = Cluster::run(5, [&](Comm& c) {
    std::vector<double> v;
    if (c.rank() == 0) v = big;
    c.broadcast(v, 0);
    ASSERT_EQ(v.size(), bcast_n);
    EXPECT_EQ(std::memcmp(v.data(), big.data(), bcast_n * sizeof(double)), 0);

    std::vector<double> mine(red_n, static_cast<double>(c.rank() + 1));
    auto total = c.reduce(
        mine,
        [](std::vector<double> a, const std::vector<double>& b) {
          for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
          return a;
        },
        0);
    if (c.rank() == 0) {
      ASSERT_EQ(total.size(), red_n);
      // 1+2+3+4+5 = 15, exact in floating point.
      EXPECT_DOUBLE_EQ(total.front(), 15.0);
      EXPECT_DOUBLE_EQ(total.back(), 15.0);
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

// Runs one float allreduce at width p and returns each rank's result bits.
std::vector<std::uint64_t> float_allreduce_bits(int p, std::uint64_t seed) {
  auto contribs = random_doubles(static_cast<std::size_t>(p), seed);
  std::vector<std::uint64_t> bits(static_cast<std::size_t>(p));
  auto res = Cluster::run(p, [&](Comm& c) {
    double total = c.allreduce(contribs[static_cast<std::size_t>(c.rank())],
                               [](double a, double b) { return a + b; });
    std::uint64_t u;
    std::memcpy(&u, &total, sizeof u);
    bits[static_cast<std::size_t>(c.rank())] = u;
  });
  EXPECT_TRUE(res.ok) << res.error;
  return bits;
}

TEST(TreeCollectives, FloatAllreduceBitwiseIdenticalAcrossRanksAndRuns) {
  for (int p : {3, 5, 7, 8}) {
    auto run1 = float_allreduce_bits(p, 7);
    auto run2 = float_allreduce_bits(p, 7);
    // Identical across ranks within one run (fixed combine tree on every
    // rank)...
    for (auto b : run1) EXPECT_EQ(b, run1.front()) << "p=" << p;
    // ...and bitwise identical run-to-run (deterministic tree shape).
    EXPECT_EQ(run1, run2) << "p=" << p;
  }
}

TEST(TreeCollectives, FloatTreeReduceBitwiseDeterministicRunToRun) {
  const int p = 7;
  auto contribs = random_doubles(static_cast<std::size_t>(p), 99);
  auto run_once = [&] {
    double got = 0;
    auto res = Cluster::run(p, [&](Comm& c) {
      double r = c.reduce(contribs[static_cast<std::size_t>(c.rank())],
                          [](double a, double b) { return a + b; }, 0);
      if (c.rank() == 0) got = r;
    });
    EXPECT_TRUE(res.ok) << res.error;
    std::uint64_t u;
    std::memcpy(&u, &got, sizeof u);
    return u;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TreeCollectives, ReduceOrderedMatchesLinearLeftFoldBitwise) {
  const int p = 7;
  auto contribs = random_doubles(static_cast<std::size_t>(p), 1234);
  // The historical contract: a strict left fold in ascending rank order.
  double ref = contribs[0];
  for (int r = 1; r < p; ++r) ref += contribs[static_cast<std::size_t>(r)];
  double got = 0;
  auto res = Cluster::run(p, [&](Comm& c) {
    double r = c.reduce_ordered(contribs[static_cast<std::size_t>(c.rank())],
                                [](double a, double b) { return a + b; }, 0);
    if (c.rank() == 0) got = r;
  });
  EXPECT_TRUE(res.ok) << res.error;
  std::uint64_t ub, gb;
  std::memcpy(&ub, &ref, sizeof ub);
  std::memcpy(&gb, &got, sizeof gb);
  EXPECT_EQ(gb, ub);
}

// Collects every rank's CommStats after `body` runs.
std::vector<CommStats> per_rank_stats(int p,
                                      const std::function<void(Comm&)>& body) {
  std::vector<CommStats> stats(static_cast<std::size_t>(p));
  auto res = Cluster::run(p, [&](Comm& c) {
    body(c);
    stats[static_cast<std::size_t>(c.rank())] = c.stats();
  });
  EXPECT_TRUE(res.ok) << res.error;
  return stats;
}

TEST(CollectiveStats, BroadcastDepthIsCeilLog2P) {
  for (int p : {4, 7, 16, 32}) {
    auto stats = per_rank_stats(p, [](Comm& c) {
      std::vector<double> v;
      if (c.rank() == 0) v = {1.0, 2.0, 3.0};
      c.broadcast(v, 0);
    });
    std::int64_t max_sent = 0;
    std::int64_t total_recv = 0;
    for (const auto& s : stats) {
      max_sent = std::max(max_sent,
                          s.collective(Collective::kBroadcast).messages_sent);
      total_recv += s.collective(Collective::kBroadcast).messages_received;
      EXPECT_LE(s.collective(Collective::kBroadcast).messages_received, 1);
    }
    // The root (busiest sender) forwards exactly ceil(log2 P) times: the
    // tree's critical-path depth. A linear loop would send P-1.
    EXPECT_EQ(max_sent, ceil_log2(p)) << "p=" << p;
    EXPECT_EQ(total_recv, p - 1) << "p=" << p;
    EXPECT_EQ(stats[0].collective(Collective::kBroadcast).calls, 1);
  }
}

TEST(CollectiveStats, ReduceRootTrafficIsLogarithmic) {
  const int p = 16;
  const std::size_t n = 4096;  // 32 KB of doubles per partial
  auto tree = per_rank_stats(p, [&](Comm& c) {
    std::vector<double> mine(n, static_cast<double>(c.rank()));
    (void)c.reduce(
        mine,
        [](std::vector<double> a, const std::vector<double>& b) {
          for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
          return a;
        },
        0);
  });
  auto linear = per_rank_stats(p, [&](Comm& c) {
    std::vector<double> mine(n, static_cast<double>(c.rank()));
    (void)c.reduce_ordered(
        mine,
        [](std::vector<double> a, const std::vector<double>& b) {
          for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
          return a;
        },
        0);
  });
  const auto& tr = tree[0].collective(Collective::kReduce);
  const auto& lr = linear[0].collective(Collective::kReduce);
  // Tree reduce: the root merges ceil(log2 16) = 4 partials.
  EXPECT_EQ(tr.messages_received, ceil_log2(p));
  // Every rank sends at most one partial: depth of any send path is 1, and
  // the longest receive chain is the root's ceil(log2 P).
  for (const auto& s : tree) {
    EXPECT_LE(s.collective(Collective::kReduce).messages_sent, 1);
  }
  // The linear-order fallback still hauls all P-1 payloads to the root:
  // the tree cuts root bytes by ~(P-1)/log2(P) >= 2x (here 3.75x).
  EXPECT_GE(lr.bytes_received, 2 * tr.bytes_received);
}

TEST(CollectiveStats, PerCollectiveCallCountsAndAggregation) {
  auto res = Cluster::run(4, [](Comm& c) {
    c.barrier();
    int v = c.rank();
    c.broadcast(v, 0);
    (void)c.allreduce(v, [](int a, int b) { return a + b; });
    (void)c.gather(v, 0);
  });
  ASSERT_TRUE(res.ok) << res.error;
  const auto& agg = res.total_stats;
  EXPECT_EQ(agg.collective(Collective::kBarrier).calls, 4);
  EXPECT_EQ(agg.collective(Collective::kBroadcast).calls, 4);
  EXPECT_EQ(agg.collective(Collective::kAllreduce).calls, 4);
  EXPECT_EQ(agg.collective(Collective::kGather).calls, 4);
  EXPECT_EQ(agg.collective(Collective::kScatter).calls, 0);
  // Collective traffic is also counted in the global totals.
  std::int64_t coll_sent = 0;
  for (const auto& cs : agg.collectives) coll_sent += cs.messages_sent;
  EXPECT_EQ(coll_sent, agg.messages_sent);
}

TEST(GroupCollectives, TreeReduceBroadcastAllgatherWithinGroups) {
  // Split 7 ranks by parity: group sizes 4 (even) and 3 (odd).
  const int p = 7;
  auto res = Cluster::run(p, [&](Comm& c) {
    auto g = c.split(c.rank() % 2);
    const int gsize = g.size();
    EXPECT_EQ(gsize, c.rank() % 2 == 0 ? 4 : 3);

    // Tree reduce to group rank 0, rank order preserved (associative op).
    std::string mine = std::to_string(c.rank());
    auto cat = g.reduce(mine, [](std::string a, std::string b) {
      return a + "," + b;
    });
    if (g.rank() == 0) {
      EXPECT_EQ(cat, c.rank() % 2 == 0 ? "0,2,4,6" : "1,3,5");
    } else {
      EXPECT_TRUE(cat.empty());
    }

    // Tree broadcast from group rank 0.
    int token = g.rank() == 0 ? 1000 + c.rank() % 2 : -1;
    g.broadcast(token);
    EXPECT_EQ(token, 1000 + c.rank() % 2);

    // Gather to group rank 0 in group-rank order.
    auto all = g.gather(c.rank());
    if (g.rank() == 0) {
      ASSERT_EQ(static_cast<int>(all.size()), gsize);
      for (int r = 0; r < gsize; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], g.world_rank(r));
      }
    } else {
      EXPECT_TRUE(all.empty());
    }

    // Allreduce: every group rank gets its group's sum.
    int sum = g.allreduce(c.rank(), [](int a, int b) { return a + b; });
    EXPECT_EQ(sum, c.rank() % 2 == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5);

    g.barrier();
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(GroupCollectives, GroupFloatReduceBitwiseDeterministic) {
  const int p = 6;
  auto contribs = random_doubles(static_cast<std::size_t>(p), 555);
  auto run_once = [&] {
    std::uint64_t bits = 0;
    auto res = Cluster::run(p, [&](Comm& c) {
      auto g = c.split(c.rank() < 4 ? 0 : 1);
      double r = g.reduce(contribs[static_cast<std::size_t>(c.rank())],
                          [](double a, double b) { return a + b; });
      if (c.rank() == 0) std::memcpy(&bits, &r, sizeof bits);
    });
    EXPECT_TRUE(res.ok) << res.error;
    return bits;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace triolet::net
