// Tests for asynchronous messaging: isend/irecv handles, wait_any/wait_all,
// progress-engine ordering and error deferral, abort cancellation, the
// zero-copy send accounting, and the reserved tag-band audit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "net/cluster.hpp"
#include "net/tags.hpp"

namespace triolet::net {
namespace {

TEST(Async, IsendDeliversTypedValues) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      PendingSend s = c.isend(1, 5, std::vector<int>{1, 2, 3});
      s.wait();
    } else {
      auto v = c.recv<std::vector<int>>(0, 5);
      EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Async, SenderBufferReusableImmediatelyAfterIsend) {
  // isend takes the value by value: mutating the caller's vector after the
  // call must not affect what the receiver sees.
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> buf(2000, 1.0);
      PendingSend s = c.isend(1, 7, buf);
      std::fill(buf.begin(), buf.end(), -9.0);  // engine owns its own copy
      s.wait();
    } else {
      auto v = c.recv<std::vector<double>>(0, 7);
      EXPECT_EQ(v.size(), 2000u);
      EXPECT_TRUE(std::all_of(v.begin(), v.end(),
                              [](double x) { return x == 1.0; }));
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Async, FifoOrderPreservedBetweenIsends) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) (void)c.isend(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(c.recv<int>(0, 3), i);
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Async, BlockingSendNeverOvertakesQueuedIsends) {
  // A blocking send flushes the progress engine first, so the sync message
  // arrives strictly after every isend posted before it.
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) (void)c.isend(1, 3, i);
      c.send(1, 3, 99);
    } else {
      for (int i = 0; i < 20; ++i) EXPECT_EQ(c.recv<int>(0, 3), i);
      EXPECT_EQ(c.recv<int>(0, 3), 99);
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Async, IrecvWaitAndTest) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 11, 42);
    } else {
      PendingRecv r = c.irecv(0, 11);
      EXPECT_EQ(r.get<int>(), 42);
      EXPECT_TRUE(r.completed());
      // Completion is sticky.
      EXPECT_TRUE(r.test());
      EXPECT_EQ(r.message().src, 0);
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Async, WaitAnyReturnsWhicheverArrives) {
  auto res = Cluster::run(3, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<PendingRecv> recvs;
      recvs.push_back(c.irecv(1, 21));
      recvs.push_back(c.irecv(2, 22));
      const std::size_t first = wait_any(recvs);
      ASSERT_LT(first, 2u);
      EXPECT_TRUE(recvs[first].completed());
      EXPECT_EQ(serial::from_bytes<int>(recvs[first].message().payload),
                first == 0 ? 100 : 200);
      // An already-completed handle wins immediately on the next call.
      EXPECT_EQ(wait_any(recvs), first);
      // The loser is still pending and completes normally.
      const std::size_t other = 1 - first;
      EXPECT_FALSE(recvs[other].completed());
      EXPECT_EQ(serial::from_bytes<int>(recvs[other].wait().payload),
                other == 0 ? 100 : 200);
    } else {
      c.send(0, 20 + c.rank(), c.rank() * 100);
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Async, WaitAllCompletesEveryHandle) {
  auto res = Cluster::run(4, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<PendingRecv> recvs;
      for (int r = 1; r < 4; ++r) recvs.push_back(c.irecv(r, 9));
      wait_all(recvs);
      int sum = 0;
      for (auto& r : recvs) {
        sum += serial::from_bytes<int>(r.message().payload);
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      (void)c.isend(0, 9, c.rank()).wait();
    }
  });
  EXPECT_TRUE(res.ok);
}

TEST(Async, LargeArraysTravelZeroCopy) {
  // A send dominated by one large trivially-copyable array should be
  // accounted almost entirely as zero-copy bytes.
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 4, std::vector<double>(100000, 0.5));
    } else {
      auto v = c.recv<std::vector<double>>(0, 4);
      EXPECT_EQ(v.size(), 100000u);
    }
  });
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.total_stats.bytes_zero_copy, 800000);
  EXPECT_EQ(res.total_stats.bytes_zero_copy + res.total_stats.bytes_copied,
            res.total_stats.bytes_sent);
}

TEST(Async, SmallMessagesStayOnTheCopiedPath) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 4, std::vector<int>{1, 2, 3});
    } else {
      (void)c.recv<std::vector<int>>(0, 4);
    }
  });
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.total_stats.bytes_zero_copy, 0);
  EXPECT_EQ(res.total_stats.bytes_copied, res.total_stats.bytes_sent);
}

TEST(Async, DetachedIsendErrorSurfacesAtFlush) {
  // Fire-and-forget isend into a bounded mailbox: the handle is dropped,
  // but Cluster::run flushes the engine at body end and the rank fails.
  ClusterOptions opts;
  opts.max_message_bytes = 64;
  auto res = Cluster::run(
      2,
      [](Comm& c) {
        if (c.rank() == 0) {
          (void)c.isend(1, 1, std::vector<double>(1000, 1.0));
        } else {
          // Do not block on the oversized message; the abort releases us if
          // we are still waiting when rank 0's flush fails.
          (void)c.try_recv<std::vector<double>>(0, 1);
        }
      },
      opts);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("buffer"), std::string::npos);
}

TEST(Async, PendingSendWaitRethrowsDeliveryError) {
  ClusterOptions opts;
  opts.max_message_bytes = 64;
  std::atomic<bool> threw{false};
  auto res = Cluster::run(
      2,
      [&](Comm& c) {
        if (c.rank() == 0) {
          PendingSend s = c.isend(1, 1, std::vector<double>(1000, 1.0));
          try {
            s.wait();
          } catch (const BufferOverflow&) {
            threw.store(true);
          }
        }
      },
      opts);
  EXPECT_TRUE(res.ok);  // the error was caught and handled by the rank body
  EXPECT_TRUE(threw.load());
}

TEST(Async, AbortCancelsQueuedOperations) {
  // Rank 1 dies; rank 0's queued isends to it are cancelled rather than
  // delivered, and the cluster reports the root cause.
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      // Block until the abort: the peer never sends.
      try {
        (void)c.recv<int>(1, 1);
      } catch (const ClusterAborted&) {
        for (int i = 0; i < 4; ++i) (void)c.isend(1, 2, i);
        throw;
      }
    } else {
      throw std::runtime_error("rank 1 exploded");
    }
  });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error, "rank 1 exploded");
}

TEST(Async, IrecvUnblocksOnPeerFailure) {
  auto res = Cluster::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      PendingRecv r = c.irecv(1, 1);
      EXPECT_THROW((void)r.wait(), ClusterAborted);
    } else {
      throw std::runtime_error("peer died");
    }
  });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error, "peer died");
}

// -- tag band audit -----------------------------------------------------------

TEST(TagBands, ReservedBandsAreDisjoint) {
  std::string why;
  EXPECT_TRUE(tag_bands_disjoint(reserved_tag_bands(), &why)) << why;
}

TEST(TagBands, OverlapIsDetected) {
  const TagBand bands[] = {
      {"a", 0, 100},
      {"b", 50, 150},
  };
  std::string why;
  EXPECT_FALSE(tag_bands_disjoint(bands, &why));
  EXPECT_NE(why.find("overlap"), std::string::npos);
  EXPECT_NE(why.find("'a'"), std::string::npos);
  EXPECT_NE(why.find("'b'"), std::string::npos);
}

TEST(TagBands, EmptyBandIsRejected) {
  const TagBand bands[] = {{"empty", 10, 10}};
  std::string why;
  EXPECT_FALSE(tag_bands_disjoint(bands, &why));
  EXPECT_NE(why.find("empty"), std::string::npos);
}

TEST(TagBands, SchedAndAsyncBandsSitAboveUserSpace) {
  EXPECT_GE(kTagSchedBand, kUserTagLimit);
  EXPECT_GE(kTagAsyncBand, kUserTagLimit);
  EXPECT_GE(kTagGroupBand, kUserTagLimit);
  EXPECT_GE(kFirstReservedTag, kUserTagLimit);
}

}  // namespace
}  // namespace triolet::net
