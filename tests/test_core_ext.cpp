// Tests for the extended core API (zip_with, indexed, flatten, min/max/
// average, short-circuit consumers), the iterator algebra laws that fusion
// relies on, broadcast/global contexts, and 3D domain splitting.

#include <gtest/gtest.h>

#include <set>

#include "core/triolet.hpp"
#include "serial/global.hpp"
#include "serial/serialize.hpp"
#include "support/rng.hpp"

namespace triolet::core {
namespace {

Array1<double> random_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-5.0, 5.0);
  return a;
}

// -- new skeletons --------------------------------------------------------------

TEST(ZipWith, CombinesElementwise) {
  // zip pairs elements at *corresponding indices* (paper §3.1), so both
  // sides must share index space; shift values with map, not the domain.
  auto shifted = map(range(0, 5), [](index_t i) { return i + 10; });
  auto s = sum(zip_with(range(0, 5), shifted,
                        [](index_t a, index_t b) { return a * b; }));
  EXPECT_EQ(s, 0 * 10 + 1 * 11 + 2 * 12 + 3 * 13 + 4 * 14);
}

TEST(ZipWith, DisjointIndexRangesAreEmpty) {
  // Index-aligned semantics: no common indices, no pairs.
  auto z = zip_with(range(0, 5), range(10, 15),
                    [](index_t a, index_t b) { return a * b; });
  EXPECT_EQ(count(z), 0);
}

TEST(ZipWith, StaysIndexedForFlatInputs) {
  auto z = zip_with(range(0, 5), range(0, 5),
                    [](index_t a, index_t b) { return a + b; });
  static_assert(decltype(z)::kKind == IterKind::kIdxFlat);
  EXPECT_EQ(z.size(), 5);
}

TEST(Indexed, PairsElementsWithTheirIndices) {
  Array1<int> xs(0, {7, 8, 9});
  auto v = to_vector(indexed(from_array(xs)));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], (std::pair<index_t, int>{0, 7}));
  EXPECT_EQ(v[2], (std::pair<index_t, int>{2, 9}));
}

TEST(Indexed, KeepsGlobalIndicesOnSlices) {
  Array1<int> xs(10);
  for (index_t i = 0; i < 10; ++i) xs[i] = static_cast<int>(100 + i);
  auto it = indexed(from_array(xs));
  auto sl = it.slice(Seq{4, 7});
  auto v = to_vector(sl);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], (std::pair<index_t, int>{4, 104}));
}

TEST(Flatten, ConcatenatesInnerIterators) {
  auto nested = map(range(0, 4), [](index_t i) { return range(0, i); });
  // `nested` is an IdxFlat whose *values* are iterators; flatten nests it.
  auto flat = flatten(nested);
  static_assert(decltype(flat)::kKind == IterKind::kIdxNest);
  EXPECT_EQ(to_vector(flat), (std::vector<index_t>{0, 0, 1, 0, 1, 2}));
}

// -- new consumers ---------------------------------------------------------------

TEST(MinMax, FindExtremes) {
  Array1<int> xs(0, {5, -3, 9, 0});
  EXPECT_EQ(minimum(from_array(xs)), -3);
  EXPECT_EQ(maximum(from_array(xs)), 9);
}

TEST(MinMax, WorkOnNestedIterators) {
  auto nested = concat_map(range(1, 6), [](index_t i) {
    return map(range(0, i), [i](index_t j) { return i * 10 + j; });
  });
  EXPECT_EQ(minimum(nested), 10);
  EXPECT_EQ(maximum(nested), 54);
}

TEST(MinMaxDeath, EmptyIteratorAborts) {
  EXPECT_DEATH((void)minimum(range(0, 0)), "empty");
}

TEST(Average, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(average(range(0, 101)), 50.0);
  EXPECT_DOUBLE_EQ(average(range(5, 5)), 0.0);
}

TEST(MinMaxAvg, ParallelHintsMatchSequential) {
  // min/max/average dispatch through the threaded chunked reduction when
  // hinted, like sum; results must match the sequential consumers.
  auto xs = random_array(4099, 31);
  const double mn = minimum(from_array(xs));
  const double mx = maximum(from_array(xs));
  const double av = average(from_array(xs));
  EXPECT_EQ(minimum(localpar(from_array(xs))), mn);
  EXPECT_EQ(maximum(localpar(from_array(xs))), mx);
  EXPECT_NEAR(average(localpar(from_array(xs))), av, 1e-12);
  EXPECT_EQ(minimum(par(from_array(xs))), mn);
  EXPECT_EQ(maximum(par(from_array(xs))), mx);
}

TEST(ShortCircuit, AnyAllNone) {
  auto evens = filter(range(0, 100), [](index_t i) { return i % 2 == 0; });
  EXPECT_TRUE(any_of(evens, [](index_t i) { return i > 90; }));
  EXPECT_FALSE(any_of(evens, [](index_t i) { return i % 2 == 1; }));
  EXPECT_TRUE(all_of(evens, [](index_t i) { return i % 2 == 0; }));
  EXPECT_FALSE(all_of(evens, [](index_t i) { return i < 50; }));
  EXPECT_TRUE(none_of(evens, [](index_t i) { return i < 0; }));
}

TEST(ShortCircuit, AnyOfStopsEarly) {
  index_t visited = 0;
  auto it = map(range(0, 1000000), [&visited](index_t i) {
    ++visited;
    return i;
  });
  EXPECT_TRUE(any_of(it, [](index_t i) { return i == 3; }));
  EXPECT_EQ(visited, 4);  // early exit after the hit
}

TEST(ShortCircuit, FindFirstReturnsEarliestMatch) {
  auto nested = concat_map(range(0, 10), [](index_t i) { return range(0, i); });
  auto hit = find_first(nested, [](index_t v) { return v == 2; });
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2);
  EXPECT_FALSE(find_first(nested, [](index_t v) { return v > 100; }));
}

// -- iterator algebra laws ---------------------------------------------------------

class AlgebraProperty : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraProperty, MapFusionLaw) {
  // map g . map f == map (g . f)
  auto xs = random_array(257, static_cast<std::uint64_t>(GetParam()));
  auto lhs = map(map(from_array(xs), [](double x) { return x + 1; }),
                 [](double x) { return x * 2; });
  auto rhs = map(from_array(xs), [](double x) { return (x + 1) * 2; });
  EXPECT_EQ(to_vector(lhs), to_vector(rhs));
}

TEST_P(AlgebraProperty, FilterCompositionLaw) {
  // filter q . filter p == filter (p && q)
  auto xs = random_array(257, static_cast<std::uint64_t>(GetParam()) + 50);
  auto lhs = filter(filter(from_array(xs), [](double x) { return x > -2; }),
                    [](double x) { return x < 2; });
  auto rhs = filter(from_array(xs),
                    [](double x) { return x > -2 && x < 2; });
  EXPECT_EQ(to_vector(lhs), to_vector(rhs));
}

TEST_P(AlgebraProperty, MapFilterCommutation) {
  // filter p . map f == map f . filter (p . f)
  auto xs = random_array(200, static_cast<std::uint64_t>(GetParam()) + 99);
  auto lhs = filter(map(from_array(xs), [](double x) { return x * x; }),
                    [](double y) { return y > 1.0; });
  auto rhs = map(filter(from_array(xs),
                        [](double x) { return x * x > 1.0; }),
                 [](double x) { return x * x; });
  EXPECT_EQ(to_vector(lhs), to_vector(rhs));
}

TEST_P(AlgebraProperty, ConcatMapSingletonIsMap) {
  // concat_map (unit . f) == map f
  auto xs = random_array(100, static_cast<std::uint64_t>(GetParam()) + 7);
  auto lhs = concat_map(from_array(xs), [](double x) {
    return map(range(0, 1), [x](index_t) { return x * 3; });
  });
  auto rhs = map(from_array(xs), [](double x) { return x * 3; });
  EXPECT_EQ(to_vector(lhs), to_vector(rhs));
}

TEST_P(AlgebraProperty, CountEqualsVectorSize) {
  auto xs = random_array(311, static_cast<std::uint64_t>(GetParam()) + 13);
  auto it = filter(from_array(xs), [](double x) { return x > 0; });
  EXPECT_EQ(count(it), static_cast<index_t>(to_vector(it).size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraProperty, ::testing::Range(0, 8));

// -- broadcast and global contexts ---------------------------------------------------

TEST(MapWith, BroadcastContextReachesEveryElement) {
  std::vector<double> weights{0.5, 1.5, 2.5};
  auto it = map_with(range(0, 3), weights,
                     [](const std::vector<double>& w, index_t i) {
                       return w[static_cast<std::size_t>(i)] * 10;
                     });
  EXPECT_DOUBLE_EQ(sum(it), 45.0);
}

TEST(MapWith, BcastShipsWholeContextOnEverySlice) {
  std::vector<double> ctx(1000, 1.0);
  auto it = map_with(range(0, 100), ctx,
                     [](const std::vector<double>& c, index_t) {
                       return c[0];
                     });
  auto bytes_full = serial::wire_size(it);
  auto bytes_slice = serial::wire_size(it.slice(Seq{0, 10}));
  // Slicing a data-free base leaves only the context: sizes stay ~equal.
  EXPECT_GT(bytes_slice, 8000u);
  EXPECT_NEAR(static_cast<double>(bytes_slice),
              static_cast<double>(bytes_full), 64.0);
}

TEST(GlobalRef, PublishResolveRoundTrip) {
  auto ref = serial::GlobalRef<std::vector<int>>::publish({1, 2, 3});
  EXPECT_EQ(ref.get(), (std::vector<int>{1, 2, 3}));
  auto back = serial::from_bytes<serial::GlobalRef<std::vector<int>>>(
      serial::to_bytes(ref));
  EXPECT_EQ(back.get(), (std::vector<int>{1, 2, 3}));
}

TEST(GlobalRef, SerializesAsConstantSize) {
  auto small = serial::GlobalRef<std::vector<double>>::publish(
      std::vector<double>(10, 1.0));
  auto big = serial::GlobalRef<std::vector<double>>::publish(
      std::vector<double>(100000, 1.0));
  EXPECT_EQ(serial::wire_size(small), serial::wire_size(big));
  EXPECT_EQ(serial::wire_size(big), sizeof(serial::segment_id_t));
}

TEST(GlobalRefDeath, WrongTypeResolutionAborts) {
  auto ref = serial::GlobalRef<int>::publish(7);
  EXPECT_DEATH((void)serial::SegmentRegistry::instance().resolve<double>(
                   ref.id()),
               "wrong type");
}

TEST(GlobalRef, MapWithGlobalContextShipsOnlyTheId) {
  auto table = serial::GlobalRef<std::vector<double>>::publish(
      std::vector<double>(50000, 2.0));
  auto it = map_with(range(0, 1000), table,
                     [](const std::vector<double>& t, index_t i) {
                       return t[static_cast<std::size_t>(i)];
                     });
  EXPECT_DOUBLE_EQ(sum(it), 2000.0);
  // Task payload: domain + id, not the 400 KB table.
  EXPECT_LT(serial::wire_size(it.slice(Seq{0, 100})), 128u);
  // And the deserialized slice still computes.
  auto sl = it.slice(Seq{100, 200});
  auto remote = serial::from_bytes<decltype(sl)>(serial::to_bytes(sl));
  EXPECT_DOUBLE_EQ(sum(remote), 200.0);
}

// -- Dim3 splitting -----------------------------------------------------------------

TEST(Dim3Split, PartitionCoversExactly) {
  Dim3 d{0, 8, 0, 12, 0, 10};
  for (int k : {1, 2, 4, 6, 8}) {
    auto blocks = split_blocks(d, k);
    ASSERT_EQ(static_cast<int>(blocks.size()), k);
    std::set<std::tuple<index_t, index_t, index_t>> seen;
    for (const auto& b : blocks) {
      b.for_each([&](Index3 i) {
        auto [it, fresh] = seen.insert({i.z, i.y, i.x});
        ASSERT_TRUE(fresh);
      });
    }
    EXPECT_EQ(static_cast<index_t>(seen.size()), d.size());
  }
}

TEST(Dim3Split, CubeSplitsIntoCubes) {
  auto blocks = split_blocks(Dim3{0, 8, 0, 8, 0, 8}, 8);  // expect 2x2x2
  EXPECT_EQ(blocks[0].size(), 4 * 4 * 4);
}

TEST(Dim3, IndicesIterateAndSum) {
  auto it = indices(Dim3{0, 2, 0, 3, 0, 4});
  EXPECT_EQ(count(it), 24);
  auto flat = map(it, [](Index3 i) { return i.z * 100 + i.y * 10 + i.x; });
  index_t manual = 0;
  for (index_t z = 0; z < 2; ++z)
    for (index_t y = 0; y < 3; ++y)
      for (index_t x = 0; x < 4; ++x) manual += z * 100 + y * 10 + x;
  EXPECT_EQ(sum(flat), manual);
}

}  // namespace
}  // namespace triolet::core
