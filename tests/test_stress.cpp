// Stress and failure-injection tests: heavier concurrency on the pool and
// deque, many-rank clusters, repeated cluster lifecycles, abort storms,
// split() sub-communicators, and large serialization round trips.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "runtime/parallel.hpp"
#include "support/rng.hpp"

namespace triolet {
namespace {

TEST(Stress, PoolSurvivesManySmallGroups) {
  runtime::ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    runtime::TaskGroup g;
    for (int i = 0; i < 20; ++i) {
      pool.submit(g, [&] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait(g);
  }
  EXPECT_EQ(total.load(), 200 * 20);
}

TEST(Stress, DeeplyNestedParallelForDoesNotDeadlock) {
  runtime::ThreadPool pool(2);
  std::atomic<std::int64_t> acc{0};
  runtime::parallel_for(pool, 0, 8, 1, [&](runtime::index_t, runtime::index_t) {
    runtime::parallel_for(pool, 0, 8, 1,
                          [&](runtime::index_t, runtime::index_t) {
                            runtime::parallel_for(
                                pool, 0, 8, 1,
                                [&](runtime::index_t a, runtime::index_t b) {
                                  acc.fetch_add(b - a);
                                });
                          });
  });
  EXPECT_EQ(acc.load(), 8 * 8 * 8);
}

TEST(Stress, ConcurrentIndependentTaskGroups) {
  runtime::ThreadPool pool(4);
  std::atomic<int> done{0};
  runtime::TaskGroup outer;
  for (int g = 0; g < 8; ++g) {
    pool.submit(outer, [&] {
      runtime::ThreadPool& p = runtime::current_pool();
      auto r = runtime::parallel_reduce(
          p, 0, 5000, 0, std::int64_t{0},
          [](runtime::index_t a, runtime::index_t b, std::int64_t acc) {
            for (runtime::index_t i = a; i < b; ++i) acc += i;
            return acc;
          },
          [](std::int64_t x, std::int64_t y) { return x + y; });
      if (r == 5000LL * 4999 / 2) done.fetch_add(1);
    });
  }
  pool.wait(outer);
  EXPECT_EQ(done.load(), 8);
}

TEST(Stress, RepeatedClusterLifecycles) {
  for (int round = 0; round < 50; ++round) {
    auto res = net::Cluster::run(3, [&](net::Comm& c) {
      int total = c.allreduce(round + c.rank(), [](int a, int b) { return a + b; });
      EXPECT_EQ(total, 3 * round + 3);
    });
    ASSERT_TRUE(res.ok) << res.error;
  }
}

TEST(Stress, SixteenRankAllToAllExchange) {
  auto res = net::Cluster::run(16, [](net::Comm& c) {
    // Everyone sends to everyone, then receives from everyone.
    for (int r = 0; r < c.size(); ++r) {
      if (r != c.rank()) c.send(r, 7, c.rank() * 1000 + r);
    }
    std::int64_t acc = 0;
    for (int r = 0; r < c.size(); ++r) {
      if (r != c.rank()) acc += c.recv<int>(r, 7);
    }
    std::int64_t expect = 0;
    for (int r = 0; r < c.size(); ++r) {
      if (r != c.rank()) expect += r * 1000 + c.rank();
    }
    EXPECT_EQ(acc, expect);
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Stress, AbortStormLeavesNoHangs) {
  // Different ranks fail at different times while others are blocked.
  for (int failing = 0; failing < 4; ++failing) {
    auto res = net::Cluster::run(4, [&](net::Comm& c) {
      if (c.rank() == failing) {
        throw std::runtime_error("injected failure");
      }
      // Everyone else blocks on a message that never comes.
      (void)c.recv<int>(failing, 99);
    });
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.error, "injected failure");
  }
}

TEST(Stress, SplitGroupsActIndependently) {
  auto res = net::Cluster::run(8, [](net::Comm& c) {
    // Two-level via sub-communicators: 2 "nodes" of 4 ranks each.
    auto group = c.split(c.rank() / 4);
    EXPECT_EQ(group.size(), 4);
    // Group-local reduce.
    int local = group.reduce(c.rank(), [](int a, int b) { return a + b; });
    if (group.rank() == 0) {
      int expect = c.rank() < 4 ? (0 + 1 + 2 + 3) : (4 + 5 + 6 + 7);
      EXPECT_EQ(local, expect);
    }
    // Group-local broadcast of the leader's result.
    group.broadcast(local);
    int expect = c.rank() < 4 ? 6 : 22;
    EXPECT_EQ(local, expect);
    // Leaders combine across groups through the world communicator.
    if (group.rank() == 0) {
      if (c.rank() == 0) {
        int world_total = local + c.recv<int>(4, 11);
        EXPECT_EQ(world_total, 28);
      } else {
        c.send(0, 11, local);
      }
    }
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Stress, SplitSingletonGroups) {
  auto res = net::Cluster::run(3, [](net::Comm& c) {
    auto g = c.split(c.rank());  // every rank its own color
    EXPECT_EQ(g.size(), 1);
    EXPECT_EQ(g.rank(), 0);
    EXPECT_EQ(g.reduce(5, [](int a, int b) { return a + b; }), 5);
  });
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(StressDeath, CorruptedPayloadIsDetectedAtReceive) {
  // Bypass Comm::send to inject a payload whose checksum does not match:
  // the receiving side must abort rather than deliver corrupt task data.
  EXPECT_DEATH(
      {
        net::ClusterState state(1, 0);
        net::Message m;
        m.src = 0;
        m.tag = 1;
        m.payload = serial::to_bytes(42);
        m.checksum = 0xDEADBEEF;  // wrong on purpose
        state.transport->inject(0, std::move(m));
        net::Comm comm(0, &state);
        (void)comm.recv<int>(net::kAnySource, 1);
      },
      "checksum");
}

TEST(Stress, LargeSerializationRoundTrip) {
  Xoshiro256 rng(321);
  std::vector<std::vector<double>> blob(100);
  for (auto& row : blob) {
    row.resize(rng.below(5000));
    for (auto& v : row) v = rng.uniform();
  }
  auto back = serial::from_bytes<std::vector<std::vector<double>>>(
      serial::to_bytes(blob));
  EXPECT_EQ(back, blob);
}

TEST(Stress, DistSumUnderRepeatedRuns) {
  Array1<double> xs(5000);
  for (core::index_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i % 17);
  }
  double expect = core::sum(core::from_array(xs));
  for (int round = 0; round < 10; ++round) {
    double got = -1;
    auto res = net::Cluster::run(4, [&](net::Comm& c) {
      dist::NodeRuntime node(2);
      double r = dist::sum(c, [&] { return core::par(core::from_array(xs)); });
      if (c.rank() == 0) got = r;
    });
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_DOUBLE_EQ(got, expect) << "round " << round;
  }
}

TEST(Stress, HugeFanoutConcatMapCountsExactly) {
  // ~1.6M inner elements through the nested iterator machinery.
  const core::index_t n = 1800;
  auto it = core::concat_map(core::range(0, n), [n](core::index_t i) {
    return core::range(0, i % 1800);
  });
  core::index_t expect = 0;
  for (core::index_t i = 0; i < n; ++i) expect += i % 1800;
  EXPECT_EQ(core::count(core::localpar(it)), expect);
}

}  // namespace
}  // namespace triolet
