file(REMOVE_RECURSE
  "CMakeFiles/tpacf_correlation.dir/tpacf_correlation.cpp.o"
  "CMakeFiles/tpacf_correlation.dir/tpacf_correlation.cpp.o.d"
  "tpacf_correlation"
  "tpacf_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpacf_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
