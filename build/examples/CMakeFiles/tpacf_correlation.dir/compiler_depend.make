# Empty compiler generated dependencies file for tpacf_correlation.
# This may be replaced when dependencies are built.
