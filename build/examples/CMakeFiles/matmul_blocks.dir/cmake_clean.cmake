file(REMOVE_RECURSE
  "CMakeFiles/matmul_blocks.dir/matmul_blocks.cpp.o"
  "CMakeFiles/matmul_blocks.dir/matmul_blocks.cpp.o.d"
  "matmul_blocks"
  "matmul_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
