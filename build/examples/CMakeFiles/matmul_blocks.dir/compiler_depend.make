# Empty compiler generated dependencies file for matmul_blocks.
# This may be replaced when dependencies are built.
