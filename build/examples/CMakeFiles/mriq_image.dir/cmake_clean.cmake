file(REMOVE_RECURSE
  "CMakeFiles/mriq_image.dir/mriq_image.cpp.o"
  "CMakeFiles/mriq_image.dir/mriq_image.cpp.o.d"
  "mriq_image"
  "mriq_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mriq_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
