# Empty dependencies file for mriq_image.
# This may be replaced when dependencies are built.
