# Empty compiler generated dependencies file for cutcp_potential.
# This may be replaced when dependencies are built.
