file(REMOVE_RECURSE
  "CMakeFiles/cutcp_potential.dir/cutcp_potential.cpp.o"
  "CMakeFiles/cutcp_potential.dir/cutcp_potential.cpp.o.d"
  "cutcp_potential"
  "cutcp_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cutcp_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
