file(REMOVE_RECURSE
  "CMakeFiles/filter_pipeline.dir/filter_pipeline.cpp.o"
  "CMakeFiles/filter_pipeline.dir/filter_pipeline.cpp.o.d"
  "filter_pipeline"
  "filter_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
