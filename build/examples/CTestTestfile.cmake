# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_blocks "/root/repo/build/examples/matmul_blocks")
set_tests_properties(example_matmul_blocks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpacf_correlation "/root/repo/build/examples/tpacf_correlation")
set_tests_properties(example_tpacf_correlation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cutcp_potential "/root/repo/build/examples/cutcp_potential")
set_tests_properties(example_cutcp_potential PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_filter_pipeline "/root/repo/build/examples/filter_pipeline")
set_tests_properties(example_filter_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mriq_image "/root/repo/build/examples/mriq_image")
set_tests_properties(example_mriq_image PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analytics "/root/repo/build/examples/analytics")
set_tests_properties(example_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kmeans "/root/repo/build/examples/kmeans")
set_tests_properties(example_kmeans PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
