
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cutcp.cpp" "src/CMakeFiles/triolet.dir/apps/cutcp.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/apps/cutcp.cpp.o.d"
  "/root/repo/src/apps/driver.cpp" "src/CMakeFiles/triolet.dir/apps/driver.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/apps/driver.cpp.o.d"
  "/root/repo/src/apps/mriq.cpp" "src/CMakeFiles/triolet.dir/apps/mriq.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/apps/mriq.cpp.o.d"
  "/root/repo/src/apps/sgemm.cpp" "src/CMakeFiles/triolet.dir/apps/sgemm.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/apps/sgemm.cpp.o.d"
  "/root/repo/src/apps/tpacf.cpp" "src/CMakeFiles/triolet.dir/apps/tpacf.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/apps/tpacf.cpp.o.d"
  "/root/repo/src/core/domains.cpp" "src/CMakeFiles/triolet.dir/core/domains.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/core/domains.cpp.o.d"
  "/root/repo/src/eden/slowmath.cpp" "src/CMakeFiles/triolet.dir/eden/slowmath.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/eden/slowmath.cpp.o.d"
  "/root/repo/src/net/cluster.cpp" "src/CMakeFiles/triolet.dir/net/cluster.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/net/cluster.cpp.o.d"
  "/root/repo/src/net/comm.cpp" "src/CMakeFiles/triolet.dir/net/comm.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/net/comm.cpp.o.d"
  "/root/repo/src/net/mailbox.cpp" "src/CMakeFiles/triolet.dir/net/mailbox.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/net/mailbox.cpp.o.d"
  "/root/repo/src/runtime/parallel.cpp" "src/CMakeFiles/triolet.dir/runtime/parallel.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/runtime/parallel.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/triolet.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/serial/serial.cpp" "src/CMakeFiles/triolet.dir/serial/serial.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/serial/serial.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/triolet.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/triolet.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/sim/trace.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/triolet.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/triolet.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/support/table.cpp.o.d"
  "/root/repo/src/support/timing.cpp" "src/CMakeFiles/triolet.dir/support/timing.cpp.o" "gcc" "src/CMakeFiles/triolet.dir/support/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
