file(REMOVE_RECURSE
  "libtriolet.a"
)
