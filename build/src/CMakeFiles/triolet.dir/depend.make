# Empty dependencies file for triolet.
# This may be replaced when dependencies are built.
