# Empty dependencies file for test_ext2.
# This may be replaced when dependencies are built.
