file(REMOVE_RECURSE
  "CMakeFiles/test_ext2.dir/test_ext2.cpp.o"
  "CMakeFiles/test_ext2.dir/test_ext2.cpp.o.d"
  "test_ext2"
  "test_ext2.pdb"
  "test_ext2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ext2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
