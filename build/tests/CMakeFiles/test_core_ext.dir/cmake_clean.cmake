file(REMOVE_RECURSE
  "CMakeFiles/test_core_ext.dir/test_core_ext.cpp.o"
  "CMakeFiles/test_core_ext.dir/test_core_ext.cpp.o.d"
  "test_core_ext"
  "test_core_ext.pdb"
  "test_core_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
