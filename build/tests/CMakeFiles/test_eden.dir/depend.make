# Empty dependencies file for test_eden.
# This may be replaced when dependencies are built.
