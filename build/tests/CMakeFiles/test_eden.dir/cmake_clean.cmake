file(REMOVE_RECURSE
  "CMakeFiles/test_eden.dir/test_eden.cpp.o"
  "CMakeFiles/test_eden.dir/test_eden.cpp.o.d"
  "test_eden"
  "test_eden.pdb"
  "test_eden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
