# Empty compiler generated dependencies file for test_encodings.
# This may be replaced when dependencies are built.
