# Empty compiler generated dependencies file for test_ext_substrates.
# This may be replaced when dependencies are built.
