file(REMOVE_RECURSE
  "CMakeFiles/test_ext_substrates.dir/test_ext_substrates.cpp.o"
  "CMakeFiles/test_ext_substrates.dir/test_ext_substrates.cpp.o.d"
  "test_ext_substrates"
  "test_ext_substrates.pdb"
  "test_ext_substrates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ext_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
