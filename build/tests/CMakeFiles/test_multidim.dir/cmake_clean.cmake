file(REMOVE_RECURSE
  "CMakeFiles/test_multidim.dir/test_multidim.cpp.o"
  "CMakeFiles/test_multidim.dir/test_multidim.cpp.o.d"
  "test_multidim"
  "test_multidim.pdb"
  "test_multidim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multidim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
