# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_array[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_domains[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_eden[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_core_ext[1]_include.cmake")
include("/root/repo/build/tests/test_ext_substrates[1]_include.cmake")
include("/root/repo/build/tests/test_composition[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_multidim[1]_include.cmake")
include("/root/repo/build/tests/test_encodings[1]_include.cmake")
include("/root/repo/build/tests/test_ext2[1]_include.cmake")
