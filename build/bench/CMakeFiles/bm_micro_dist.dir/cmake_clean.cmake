file(REMOVE_RECURSE
  "CMakeFiles/bm_micro_dist.dir/bm_micro_dist.cpp.o"
  "CMakeFiles/bm_micro_dist.dir/bm_micro_dist.cpp.o.d"
  "bm_micro_dist"
  "bm_micro_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_micro_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
