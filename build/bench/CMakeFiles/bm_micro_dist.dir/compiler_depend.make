# Empty compiler generated dependencies file for bm_micro_dist.
# This may be replaced when dependencies are built.
