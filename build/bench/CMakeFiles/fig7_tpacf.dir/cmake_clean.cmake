file(REMOVE_RECURSE
  "CMakeFiles/fig7_tpacf.dir/fig7_tpacf.cpp.o"
  "CMakeFiles/fig7_tpacf.dir/fig7_tpacf.cpp.o.d"
  "fig7_tpacf"
  "fig7_tpacf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tpacf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
