# Empty dependencies file for fig7_tpacf.
# This may be replaced when dependencies are built.
