# Empty compiler generated dependencies file for fig4_mriq.
# This may be replaced when dependencies are built.
