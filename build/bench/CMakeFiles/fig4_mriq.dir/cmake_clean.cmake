file(REMOVE_RECURSE
  "CMakeFiles/fig4_mriq.dir/fig4_mriq.cpp.o"
  "CMakeFiles/fig4_mriq.dir/fig4_mriq.cpp.o.d"
  "fig4_mriq"
  "fig4_mriq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mriq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
