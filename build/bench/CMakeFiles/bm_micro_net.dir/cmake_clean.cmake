file(REMOVE_RECURSE
  "CMakeFiles/bm_micro_net.dir/bm_micro_net.cpp.o"
  "CMakeFiles/bm_micro_net.dir/bm_micro_net.cpp.o.d"
  "bm_micro_net"
  "bm_micro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_micro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
