# Empty compiler generated dependencies file for bm_micro_net.
# This may be replaced when dependencies are built.
