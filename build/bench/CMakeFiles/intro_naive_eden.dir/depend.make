# Empty dependencies file for intro_naive_eden.
# This may be replaced when dependencies are built.
