file(REMOVE_RECURSE
  "CMakeFiles/intro_naive_eden.dir/intro_naive_eden.cpp.o"
  "CMakeFiles/intro_naive_eden.dir/intro_naive_eden.cpp.o.d"
  "intro_naive_eden"
  "intro_naive_eden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_naive_eden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
