file(REMOVE_RECURSE
  "CMakeFiles/fig8_cutcp.dir/fig8_cutcp.cpp.o"
  "CMakeFiles/fig8_cutcp.dir/fig8_cutcp.cpp.o.d"
  "fig8_cutcp"
  "fig8_cutcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cutcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
