# Empty dependencies file for fig8_cutcp.
# This may be replaced when dependencies are built.
