# Empty compiler generated dependencies file for bm_micro_runtime.
# This may be replaced when dependencies are built.
