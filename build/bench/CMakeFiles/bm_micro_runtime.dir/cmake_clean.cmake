file(REMOVE_RECURSE
  "CMakeFiles/bm_micro_runtime.dir/bm_micro_runtime.cpp.o"
  "CMakeFiles/bm_micro_runtime.dir/bm_micro_runtime.cpp.o.d"
  "bm_micro_runtime"
  "bm_micro_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_micro_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
