file(REMOVE_RECURSE
  "CMakeFiles/ablation_multidim.dir/ablation_multidim.cpp.o"
  "CMakeFiles/ablation_multidim.dir/ablation_multidim.cpp.o.d"
  "ablation_multidim"
  "ablation_multidim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multidim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
