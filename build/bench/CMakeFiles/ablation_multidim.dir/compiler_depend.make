# Empty compiler generated dependencies file for ablation_multidim.
# This may be replaced when dependencies are built.
