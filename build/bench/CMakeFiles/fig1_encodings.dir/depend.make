# Empty dependencies file for fig1_encodings.
# This may be replaced when dependencies are built.
