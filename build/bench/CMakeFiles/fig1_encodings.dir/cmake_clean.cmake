file(REMOVE_RECURSE
  "CMakeFiles/fig1_encodings.dir/fig1_encodings.cpp.o"
  "CMakeFiles/fig1_encodings.dir/fig1_encodings.cpp.o.d"
  "fig1_encodings"
  "fig1_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
