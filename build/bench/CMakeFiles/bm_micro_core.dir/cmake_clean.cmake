file(REMOVE_RECURSE
  "CMakeFiles/bm_micro_core.dir/bm_micro_core.cpp.o"
  "CMakeFiles/bm_micro_core.dir/bm_micro_core.cpp.o.d"
  "bm_micro_core"
  "bm_micro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_micro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
