# Empty compiler generated dependencies file for bm_micro_core.
# This may be replaced when dependencies are built.
