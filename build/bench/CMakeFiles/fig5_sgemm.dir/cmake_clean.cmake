file(REMOVE_RECURSE
  "CMakeFiles/fig5_sgemm.dir/fig5_sgemm.cpp.o"
  "CMakeFiles/fig5_sgemm.dir/fig5_sgemm.cpp.o.d"
  "fig5_sgemm"
  "fig5_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
