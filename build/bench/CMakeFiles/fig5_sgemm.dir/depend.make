# Empty dependencies file for fig5_sgemm.
# This may be replaced when dependencies are built.
