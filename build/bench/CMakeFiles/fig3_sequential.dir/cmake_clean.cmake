file(REMOVE_RECURSE
  "CMakeFiles/fig3_sequential.dir/fig3_sequential.cpp.o"
  "CMakeFiles/fig3_sequential.dir/fig3_sequential.cpp.o.d"
  "fig3_sequential"
  "fig3_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
