# Empty dependencies file for fig3_sequential.
# This may be replaced when dependencies are built.
