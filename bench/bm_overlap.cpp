// Communication-computation overlap: blocking vs overlapped dist/sched
// messaging on a data-heavy skewed workload at 8 ranks.
//
// The workload items are wide (64-byte) trivially-copyable records, so every
// grant ships ~8 KB of array payload through the zero-copy scatter-gather
// path, and the per-item compute is skewed (cost grows with the atom index)
// so demand-driven scheduling is the right policy. Atoms are deliberately
// short — comparable to one request/grant round trip — which is exactly the
// regime where blocking request/grant protocols stall: every claim pays the
// full control round trip before computing.
//
// Methodology (the repo's standard measure-then-simulate split, DESIGN.md):
// atoms execute for real once and their durations feed the sim/ makespan
// models — makespan_demand prices the blocking protocol (claim = round trip
// + compute, serialized), makespan_overlap prices the prefetching protocol
// (the request for atom k+1 is in flight while atom k executes, so a claim
// costs max(compute, round trip)). The grant round trip itself is priced
// from the real wire size of a serialized grant; the overlapped variant's
// sender-side copy cost is reduced by the measured zero-copy fraction (the
// staging copy borrowed segments elide). Separately, the dynamic policy runs
// for real on an 8-rank in-process cluster with prefetch on and off to
// verify (a) kOrdered results are bitwise identical, and (b) the zero-copy
// path actually carries the grant payloads (CommStats::bytes_zero_copy).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "sim/network_model.hpp"
#include "sim/schedule.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using core::index_t;

namespace {

// -- the data-heavy skewed workload -------------------------------------------

constexpr index_t kItems = 8192;
constexpr index_t kGrain = 128;  // items per atom -> 64 atoms of 8 KB payload

/// 64-byte trivially-copyable record: v[0] encodes the item's compute cost,
/// the rest is payload the kernel reads — the point is that grants move real
/// array data, not just control bytes.
struct Wide {
  double v[8];
};
static_assert(sizeof(Wide) == 64);

auto make_workload(const Array1<Wide>& items) {
  return core::map(core::from_array(items), [](const Wide& w) {
    const int n = static_cast<int>(w.v[0]);
    double s = w.v[1];
    for (int k = 0; k < n; ++k) s += std::sin(s + w.v[2] * 1e-3);
    return s;
  });
}

Array1<Wide> make_items() {
  Array1<Wide> items(kItems);
  for (index_t i = 0; i < kItems; ++i) {
    const index_t atom = i / kGrain;
    Wide w{};
    // Triangular skew in units of whole atoms; the early atoms do almost no
    // compute and are pure data movement.
    w.v[0] = static_cast<double>(atom + 1) / 8.0;
    w.v[1] = 1e-3 * static_cast<double>(i % 97);
    w.v[2] = 1e-3 * static_cast<double>(i % 31);
    for (int k = 3; k < 8; ++k) w.v[k] = static_cast<double>(k);
    items[i] = w;
  }
  return items;
}

/// Real per-atom durations, measured sequentially (min of 3 runs per atom).
std::vector<double> measure_atoms(const Array1<Wide>& items) {
  auto it = make_workload(items);
  const auto dom = it.domain();
  const index_t natoms = sched::atom_count(core::outer_extent(dom), kGrain);
  std::vector<double> durs;
  durs.reserve(static_cast<std::size_t>(natoms));
  for (index_t a = 0; a < natoms; ++a) {
    auto atom = it.slice(core::outer_slice(dom, a * kGrain, (a + 1) * kGrain));
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch sw;
      volatile double sink =
          core::reduce(atom, 0.0, [](double x, double y) { return x + y; });
      (void)sink;
      best = std::min(best, sw.seconds());
    }
    durs.push_back(best);
  }
  return durs;
}

struct RealRun {
  const char* label = "";
  double ordered_result = 0.0;
  net::SchedStats sched;
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_zero_copy = 0;
  std::int64_t bytes_copied = 0;
};

RealRun run_real(sched::SchedulePolicy policy, bool prefetch,
                 const char* label, const Array1<Wide>& items) {
  RealRun out;
  out.label = label;
  sched::SchedOptions opts{policy, sched::CombineMode::kOrdered, kGrain,
                           prefetch};
  auto res = net::Cluster::run(bench::kNodes, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    comm.barrier();  // all ranks up before the clock-relevant part
    auto make = [&] { return make_workload(items); };
    double r = dist::reduce(comm, make, 0.0,
                            [](double a, double b) { return a + b; }, opts);
    if (comm.rank() == 0) out.ordered_result = r;
  });
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  out.sched = res.total_stats.sched;
  out.bytes_sent = res.total_stats.bytes_sent;
  out.bytes_zero_copy = res.total_stats.bytes_zero_copy;
  out.bytes_copied = res.total_stats.bytes_copied;
  return out;
}

}  // namespace

int main() {
  std::printf("== bm_overlap: blocking vs overlapped messaging, %d ranks ==\n",
              bench::kNodes);

  const auto items = make_items();
  const auto atoms = measure_atoms(items);
  const int ranks = bench::kNodes;
  const double total = sim::total_work(atoms);

  // Control-message sizes from the real wire format: a request is one byte,
  // a grant carries the header plus one atom's 8 KB task slice.
  auto it = make_workload(items);
  const auto dom = it.domain();
  sched::Grant<decltype(it)> sample{
      0, 0, 1, kGrain, it.slice(core::outer_slice(dom, 0, kGrain))};
  const auto sample_segments = serial::to_segments(sample);
  const auto grant_bytes = static_cast<std::int64_t>(sample_segments.size());
  // Fraction of the grant's wire bytes that travel as borrowed (zero-copy)
  // segments — a property of the wire format, so it is deterministic.
  const double zc_frac = static_cast<double>(sample_segments.bytes_borrowed()) /
                         static_cast<double>(sample_segments.size());

  // -- real cluster runs: correctness + zero-copy accounting ------------------
  // Dynamic policy with prefetch on and off checks the bitwise-identity
  // guarantee. The static run pushes one grant per worker unconditionally,
  // so its zero-copy byte counts do not depend on how the host's scheduler
  // happens to interleave the rank threads.
  RealRun with_prefetch = run_real(sched::SchedulePolicy::kDynamic, true,
                                   "dynamic, prefetch on", items);
  RealRun without_prefetch = run_real(sched::SchedulePolicy::kDynamic, false,
                                      "dynamic, prefetch off", items);
  RealRun pushed = run_real(sched::SchedulePolicy::kStatic, true,
                            "static push", items);

  sim::NetworkModel net;
  const double oh = sim::grant_overhead(net, 1, grant_bytes);
  // Borrowed segments skip the sender's staging copy: reduce the grant's
  // sender-side copy cost by the measured zero-copy byte fraction.
  const double oh_zc = oh - zc_frac * static_cast<double>(grant_bytes) *
                                net.copy_cost_per_byte;

  const double m_blocking = sim::makespan_demand(atoms, ranks, oh);
  const double m_overlap = sim::makespan_overlap(atoms, ranks, oh_zc);
  const double m_overlap_copied = sim::makespan_overlap(atoms, ranks, oh);
  const double ideal = total / ranks;

  Table t({"protocol", "rt/claim (us)", "makespan (s)", "vs blocking",
           "vs ideal"});
  auto row = [&](const char* name, double rt, double m) {
    t.add_row({name, Table::num(rt * 1e6, 2), Table::num(m, 6),
               Table::num(m_blocking / m, 2) + "x",
               Table::num(m / ideal, 3) + "x"});
  };
  row("blocking", oh, m_blocking);
  row("overlap (copied)", oh, m_overlap_copied);
  row("overlap + zero-copy", oh_zc, m_overlap);
  t.print("simulated 8-rank makespan (" + std::to_string(atoms.size()) +
          " measured atoms, grant " + std::to_string(grant_bytes) +
          " B, zero-copy fraction " + Table::num(zc_frac, 3) + ")");

  Table c({"run", "requests", "grants", "steal wait (s)", "busy (s)",
           "zero-copy B", "copied B"});
  for (const RealRun* r : {&with_prefetch, &without_prefetch, &pushed}) {
    c.add_row({r->label, Table::num(r->sched.requests_sent),
               Table::num(r->sched.grants_served),
               Table::num(r->sched.idle_seconds, 4),
               Table::num(r->sched.busy_seconds, 4),
               Table::num(r->bytes_zero_copy), Table::num(r->bytes_copied)});
  }
  c.print("real 8-rank cluster, ordered combine");

  const bool bitwise =
      std::memcmp(&with_prefetch.ordered_result,
                  &without_prefetch.ordered_result, sizeof(double)) == 0;
  const double speedup = m_blocking / m_overlap;

  apps::shape_check("overlap+prefetch beats blocking by >= 1.2x simulated",
                    speedup >= 1.2);
  apps::shape_check("overlap is never slower than blocking",
                    m_overlap <= m_blocking + 1e-12);
  apps::shape_check("grant payloads travel zero-copy (bytes_zero_copy > 0)",
                    pushed.bytes_zero_copy > 0);
  apps::shape_check("most grant wire bytes are borrowed segments",
                    zc_frac > 0.5 &&
                        pushed.bytes_zero_copy > pushed.bytes_copied);
  apps::shape_check("ordered results bitwise identical, prefetch on vs off",
                    bitwise);
  apps::shape_check(
      "every item executed exactly once in every run",
      with_prefetch.sched.items_executed == kItems &&
          without_prefetch.sched.items_executed == kItems &&
          pushed.sched.items_executed == kItems);

  // Machine-readable record (bench/BENCH_overlap.json keeps a checked-in copy).
  std::printf("\n{\n");
  std::printf("  \"workload\": {\"items\": %lld, \"item_bytes\": %zu, "
              "\"grain\": %lld, \"atoms\": %zu, \"shape\": \"triangular\"},\n",
              static_cast<long long>(kItems), sizeof(Wide),
              static_cast<long long>(kGrain), atoms.size());
  std::printf("  \"ranks\": %d,\n", ranks);
  std::printf("  \"grant_bytes\": %lld,\n", static_cast<long long>(grant_bytes));
  std::printf("  \"control_round_trip_seconds\": "
              "{\"blocking\": %.3e, \"zero_copy\": %.3e},\n", oh, oh_zc);
  std::printf("  \"zero_copy_fraction\": %.4f,\n", zc_frac);
  std::printf("  \"simulated_makespan_seconds\": {\"blocking\": %.6e, "
              "\"overlap_copied\": %.6e, \"overlap_zero_copy\": %.6e},\n",
              m_blocking, m_overlap_copied, m_overlap);
  std::printf("  \"speedup_overlap_vs_blocking\": %.3f,\n", speedup);
  std::printf("  \"real_bytes_static_push\": "
              "{\"zero_copy\": %lld, \"copied\": %lld},\n",
              static_cast<long long>(pushed.bytes_zero_copy),
              static_cast<long long>(pushed.bytes_copied));
  std::printf("  \"ordered_bitwise_identical_prefetch_on_off\": %s\n",
              bitwise ? "true" : "false");
  std::printf("}\n");
  return 0;
}
