// Ablation C: two-level vs. flat work distribution (paper §2, §3.4).
//
// Triolet distributes large work units to nodes, then subdivides across
// cores with shared memory; Eden-style flat parallelism treats all cores as
// equally remote, so the master exchanges messages with every core. This
// ablation runs the same measured Triolet task times under both policies.

#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "support/table.hpp"

using namespace triolet;
using namespace triolet::apps;

namespace {

void compare(const char* name, const MeasuredSystem& two_level,
             double seq_c) {
  MeasuredSystem flat = two_level;
  flat.name = std::string(two_level.name) + " (flat)";
  flat.glyph = 'F';
  flat.flat = true;

  auto s_two = run_series(two_level, bench::kNodes, bench::kCoresPerNode);
  auto s_flat = run_series(flat, bench::kNodes, bench::kCoresPerNode);
  print_figure(std::string(name) + ": two-level vs flat distribution", seq_c,
               {s_two, s_flat});

  double t2 = s_two.points.back().seconds;
  double tf = s_flat.points.back().seconds;
  std::printf("\n%s at 128 cores: two-level %.5fs, flat %.5fs (%.2fx)\n", name,
              t2, tf, tf / t2);
  shape_check(std::string(name) +
                  ": two-level beats flat at 128 cores (shared memory "
                  "aggregation wins)",
              t2 < tf);
}

}  // namespace

int main() {
  std::printf("== Ablation: two-level vs flat work distribution ==\n");
  {
    auto p = bench::mriq_problem();
    auto m = measure_mriq(p, bench::kMriqUnits);
    compare("mri-q", m.triolet, seq_equivalent_seconds(m.lowlevel));
  }
  {
    auto p = bench::cutcp_problem();
    auto m = measure_cutcp(p, bench::kCutcpUnits);
    compare("cutcp", m.triolet, seq_equivalent_seconds(m.lowlevel));
  }
  return 0;
}
