// Ablation A: loop fusion on vs. off.
//
// The paper's central performance claim for iterators is that composed
// skeleton calls fuse into single loops, eliminating intermediate
// collections (§1: the naive multi-stage Eden pipeline is "an order of
// magnitude" slower). This ablation runs the same computations with the
// fused iterator pipeline and with explicitly materialized intermediates.

#include <cstdio>
#include <vector>

#include "apps/driver.hpp"
#include "core/triolet.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using namespace triolet::core;

namespace {

Array1<double> make_data(index_t n) {
  Xoshiro256 rng(77);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-1.0, 1.0);
  return a;
}

}  // namespace

int main() {
  std::printf("== Ablation: fusion on vs. off ==\n");
  const index_t n = 2'000'000;
  auto xs = make_data(n);
  Table t({"pipeline", "fused (s)", "materialized (s)", "fusion gain"});

  // map . zip . sum (the dot-product shape).
  double fused1 = 0, mat1 = 0;
  {
    auto run_fused = [&] {
      return sum(map(zip(from_array(xs), from_array(xs)),
                     [](const auto& p) { return p.first * p.second; }));
    };
    auto run_mat = [&] {
      std::vector<std::pair<double, double>> zipped;
      zipped.reserve(static_cast<std::size_t>(n));
      visit(zip(from_array(xs), from_array(xs)),
            [&](const auto& p) { zipped.push_back(p); });
      std::vector<double> products(zipped.size());
      for (std::size_t i = 0; i < zipped.size(); ++i) {
        products[i] = zipped[i].first * zipped[i].second;
      }
      double acc = 0;
      for (double v : products) acc += v;
      return acc;
    };
    volatile double sink = run_fused() - run_mat();
    (void)sink;
    fused1 = time_fn([&] { (void)run_fused(); }, 3).median;
    mat1 = time_fn([&] { (void)run_mat(); }, 3).median;
    t.add_row({"zip|map|sum", Table::num(fused1, 4), Table::num(mat1, 4),
               Table::num(mat1 / fused1, 2) + "x"});
  }

  // filter . map . sum (the irregular shape indexers cannot fuse alone).
  double fused2 = 0, mat2 = 0;
  {
    auto run_fused = [&] {
      return sum(filter(map(from_array(xs), [](double x) { return 3 * x; }),
                        [](double x) { return x > 0; }));
    };
    auto run_mat = [&] {
      std::vector<double> mapped;
      mapped.reserve(static_cast<std::size_t>(n));
      visit(from_array(xs), [&](double x) { mapped.push_back(3 * x); });
      std::vector<double> kept;
      for (double v : mapped) {
        if (v > 0) kept.push_back(v);
      }
      double acc = 0;
      for (double v : kept) acc += v;
      return acc;
    };
    fused2 = time_fn([&] { (void)run_fused(); }, 3).median;
    mat2 = time_fn([&] { (void)run_mat(); }, 3).median;
    t.add_row({"map|filter|sum", Table::num(fused2, 4), Table::num(mat2, 4),
               Table::num(mat2 / fused2, 2) + "x"});
  }

  // concat_map . histogram (the nested irregular shape: tpacf/cutcp).
  double fused3 = 0, mat3 = 0;
  {
    const index_t m = 3000;
    auto nest = concat_map(range(0, m), [m](index_t i) {
      return map(range(i + 1, m), [i](index_t j) { return (i * j) % 64; });
    });
    auto run_fused = [&] { return histogram(64, nest); };
    auto run_mat = [&] {
      std::vector<index_t> bins;
      bins.reserve(static_cast<std::size_t>(m * (m - 1) / 2));
      visit(nest, [&](index_t b) { bins.push_back(b); });
      Array1<std::int64_t> h(64, 0);
      for (index_t b : bins) h[b]++;
      return h;
    };
    fused3 = time_fn([&] { (void)run_fused(); }, 3).median;
    mat3 = time_fn([&] { (void)run_mat(); }, 3).median;
    t.add_row({"concat_map|histogram", Table::num(fused3, 4),
               Table::num(mat3, 4), Table::num(mat3 / fused3, 2) + "x"});
  }

  t.print("fusion ablation");
  apps::shape_check("fusion never loses", fused1 <= mat1 * 1.05 &&
                                              fused2 <= mat2 * 1.05 &&
                                              fused3 <= mat3 * 1.05);
  apps::shape_check("fusion wins clearly on at least one pipeline",
                    mat1 / fused1 > 1.3 || mat2 / fused2 > 1.3 ||
                        mat3 / fused3 > 1.3);
  return 0;
}
