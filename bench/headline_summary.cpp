// Headline summary (paper §1/§6): across the four benchmarks at 128 cores,
// Triolet consistently beats Eden, achieves 23-100% of C+MPI+OpenMP, and
// reaches speedups "up to 9.6-99x relative to simple loops in sequential C".

#include <cmath>
#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "support/table.hpp"

using namespace triolet;
using namespace triolet::apps;

namespace {

struct AppSummary {
  std::string name;
  double seq_c;
  ScalingSeries lowlevel, triolet, eden;
};

AppSummary summarize(const std::string& name, const MeasuredSystem& low,
                     const MeasuredSystem& tri, const MeasuredSystem& eden) {
  return AppSummary{name, seq_equivalent_seconds(low),
                    run_series(low, bench::kNodes, bench::kCoresPerNode),
                    run_series(tri, bench::kNodes, bench::kCoresPerNode),
                    run_series(eden, bench::kNodes, bench::kCoresPerNode)};
}

}  // namespace

int main() {
  std::printf("== Headline summary: all benchmarks at 128 simulated cores ==\n");

  std::vector<AppSummary> apps_summary;
  {
    auto p = bench::mriq_problem();
    auto m = measure_mriq(p, bench::kMriqUnits);
    apps_summary.push_back(
        summarize("mri-q", m.lowlevel, m.triolet, m.eden));
  }
  {
    auto p = bench::sgemm_problem();
    auto m = measure_sgemm(p, bench::kSgemmUnits);
    apps_summary.push_back(
        summarize("sgemm", m.lowlevel, m.triolet, m.eden));
  }
  {
    auto p = bench::tpacf_problem();
    auto m = measure_tpacf(p, bench::kTpacfUnits);
    apps_summary.push_back(
        summarize("tpacf", m.lowlevel, m.triolet, m.eden));
  }
  {
    auto p = bench::cutcp_problem();
    auto m = measure_cutcp(p, bench::kCutcpUnits);
    apps_summary.push_back(
        summarize("cutcp", m.lowlevel, m.triolet, m.eden));
  }

  Table t({"benchmark", "Triolet speedup", "C+MPI+OpenMP speedup",
           "Eden speedup", "Triolet/C ratio"});
  double min_t = 1e300, max_t = 0;
  bool all_within_band = true, beats_eden = true;
  for (const auto& a : apps_summary) {
    double st = final_speedup(a.triolet, a.seq_c);
    double sc = final_speedup(a.lowlevel, a.seq_c);
    double se = final_speedup(a.eden, a.seq_c);
    min_t = std::min(min_t, st);
    max_t = std::max(max_t, st);
    double ratio = st / sc;
    // The paper's band is "23-100% of C+MPI+OpenMP", except tpacf where
    // Triolet is slightly *faster* (Figure 7); allow that headroom.
    if (ratio < 0.23 || ratio > 1.20) all_within_band = false;
    if (!std::isnan(se) && se >= st) beats_eden = false;
    t.add_row({a.name, Table::num(st, 1), Table::num(sc, 1),
               std::isnan(se) ? "FAIL" : Table::num(se, 1),
               Table::num(ratio, 2)});
  }
  t.print("128-core summary (speedup over sequential C)");

  shape_check("Triolet within the paper's band vs C+MPI+OpenMP on every benchmark",
              all_within_band);
  shape_check("Triolet beats Eden wherever Eden completes", beats_eden);
  std::printf("\nTriolet 128-core speedup range: %.1fx - %.1fx "
              "(paper: 9.6x - 99x)\n",
              min_t, max_t);
  shape_check("speedup range brackets a saturating and a scaling benchmark",
              min_t < 35.0 && max_t > 60.0);
  return 0;
}
