// Headline summary (paper §1/§6): across the four benchmarks at 128 cores,
// Triolet consistently beats Eden, achieves 23-100% of C+MPI+OpenMP, and
// reaches speedups "up to 9.6-99x relative to simple loops in sequential C".

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/segmented.hpp"
#include "dist/skeletons.hpp"
#include "dist/views.hpp"
#include "net/cluster.hpp"
#include "sched/tuner.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"
#include "svc/job_manager.hpp"

using namespace triolet;
using namespace triolet::apps;

namespace {

struct AppSummary {
  std::string name;
  double seq_c;
  ScalingSeries lowlevel, triolet, eden;
};

/// Steady-state wall seconds of an iterative triangular loop under one
/// schedule configuration on the real 8-rank in-process cluster (mean of
/// rounds 1..n-1; round 0 is cold — for kAuto it is the measurement round).
double steady_loop_seconds(const sched::SchedOptions& base, int rounds,
                           const Array1<double>& costs, bool* converged) {
  double sum = 0.0;
  int counted = 0;
  auto res = net::Cluster::run(bench::kNodes, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    sched::AutoTuner tuner;
    sched::SchedOptions opts = base;
    if (base.policy == sched::SchedulePolicy::kAuto) opts.tuner = &tuner;
    auto make = [&] {
      return core::map(core::from_array(costs), [](double c) {
        double v = 0.0;
        const int n = static_cast<int>(c) * 4;
        for (int k = 0; k < n; ++k) v += std::sin(v + 1e-3 * k);
        return v;
      });
    };
    for (int r = 0; r < rounds; ++r) {
      comm.barrier();
      Stopwatch sw;
      volatile double sink = dist::reduce(
          comm, make, 0.0, [](double a, double b) { return a + b; }, opts);
      (void)sink;
      comm.barrier();
      if (comm.rank() == 0 && r > 0) {
        sum += sw.seconds();
        ++counted;
      }
    }
    if (comm.rank() == 0 && converged != nullptr) {
      *converged = base.policy != sched::SchedulePolicy::kAuto ||
                   (tuner.have_pick() && tuner.calibration().valid());
    }
  });
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  return counted > 0 ? sum / counted : 0.0;
}

AppSummary summarize(const std::string& name, const MeasuredSystem& low,
                     const MeasuredSystem& tri, const MeasuredSystem& eden) {
  return AppSummary{name, seq_equivalent_seconds(low),
                    run_series(low, bench::kNodes, bench::kCoresPerNode),
                    run_series(tri, bench::kNodes, bench::kCoresPerNode),
                    run_series(eden, bench::kNodes, bench::kCoresPerNode)};
}

}  // namespace

int main() {
  std::printf("== Headline summary: all benchmarks at 128 simulated cores ==\n");

  std::vector<AppSummary> apps_summary;
  {
    auto p = bench::mriq_problem();
    auto m = measure_mriq(p, bench::kMriqUnits);
    apps_summary.push_back(
        summarize("mri-q", m.lowlevel, m.triolet, m.eden));
  }
  {
    auto p = bench::sgemm_problem();
    auto m = measure_sgemm(p, bench::kSgemmUnits);
    apps_summary.push_back(
        summarize("sgemm", m.lowlevel, m.triolet, m.eden));
  }
  {
    auto p = bench::tpacf_problem();
    auto m = measure_tpacf(p, bench::kTpacfUnits);
    apps_summary.push_back(
        summarize("tpacf", m.lowlevel, m.triolet, m.eden));
  }
  {
    auto p = bench::cutcp_problem();
    auto m = measure_cutcp(p, bench::kCutcpUnits);
    apps_summary.push_back(
        summarize("cutcp", m.lowlevel, m.triolet, m.eden));
  }

  Table t({"benchmark", "Triolet speedup", "C+MPI+OpenMP speedup",
           "Eden speedup", "Triolet/C ratio"});
  double min_t = 1e300, max_t = 0;
  bool all_within_band = true, beats_eden = true;
  for (const auto& a : apps_summary) {
    double st = final_speedup(a.triolet, a.seq_c);
    double sc = final_speedup(a.lowlevel, a.seq_c);
    double se = final_speedup(a.eden, a.seq_c);
    min_t = std::min(min_t, st);
    max_t = std::max(max_t, st);
    double ratio = st / sc;
    // The paper's band is "23-100% of C+MPI+OpenMP", except tpacf where
    // Triolet is slightly *faster* (Figure 7); allow that headroom.
    if (ratio < 0.23 || ratio > 1.20) all_within_band = false;
    if (!std::isnan(se) && se >= st) beats_eden = false;
    t.add_row({a.name, Table::num(st, 1), Table::num(sc, 1),
               std::isnan(se) ? "FAIL" : Table::num(se, 1),
               Table::num(ratio, 2)});
  }
  t.print("128-core summary (speedup over sequential C)");

  shape_check("Triolet within the paper's band vs C+MPI+OpenMP on every benchmark",
              all_within_band);
  shape_check("Triolet beats Eden wherever Eden completes", beats_eden);
  std::printf("\nTriolet 128-core speedup range: %.1fx - %.1fx "
              "(paper: 9.6x - 99x)\n",
              min_t, max_t);
  shape_check("speedup range brackets a saturating and a scaling benchmark",
              min_t < 35.0 && max_t > 60.0);

  // -- autotuned scheduling: zero flags vs the best hand-tuned schedule -------
  // A real (not simulated) 8-rank run of the skewed tpacf-shaped loop:
  // SchedulePolicy::kAuto measures round 0, calibrates the sim:: model, and
  // re-picks its own policy/grain/prefetch/streaming each round
  // (bm_autotune has the full sweep and the per-round picks).
  {
    Array1<double> costs(1024);
    for (core::index_t i = 0; i < costs.size(); ++i) {
      costs[i] = static_cast<double>(i);
    }
    const int rounds = 4;
    double best_manual = 1e300;
    for (auto policy :
         {sched::SchedulePolicy::kStatic, sched::SchedulePolicy::kGuided,
          sched::SchedulePolicy::kDynamic}) {
      sched::SchedOptions opts;
      opts.policy = policy;
      best_manual = std::min(
          best_manual, steady_loop_seconds(opts, rounds, costs, nullptr));
    }
    bool converged = false;
    sched::SchedOptions auto_opts;
    auto_opts.policy = sched::SchedulePolicy::kAuto;
    const double auto_steady =
        steady_loop_seconds(auto_opts, rounds, costs, &converged);
    const double ratio = auto_steady / best_manual;
    std::printf("\nAutotuned scheduling (8 ranks, skewed loop): "
                "auto %.4fs vs best manual %.4fs -> %.2fx\n",
                auto_steady, best_manual, ratio);
    shape_check("kAuto converges to a calibrated pick on the skewed loop",
                converged);
    shape_check("steady-state kAuto within 2x of the best manual schedule",
                ratio <= 2.0);
  }

  // -- segmented sources: demand scheduling on a power-law sparse matvec ------
  // A compact version of bm_sparse at 8 ranks: CSR rows as a resident
  // SegmentedDistArray, value-balanced atoms, hub rows clustered up front.
  // Static contiguous blocks strand the hubs on rank 0; kDynamic rebalances
  // them, and kOrdered keeps both results bitwise identical. bm_sparse holds
  // the full gates (>= 1.4x for kDynamic *and* kAuto, all-policy and
  // rank-count bitwise identity, warm-round tokenization).
  {
    const index_t nrows = 32768, ncols = 2048;
    const int warm_rounds = 5;  // median — any one round can lose a quantum
    std::vector<index_t> offsets{0};
    std::vector<double> packed;
    const index_t hubs = nrows / 64;
    for (index_t r = 0; r < nrows; ++r) {
      const index_t len = r < hubs ? ncols / 2 : 2 + r % 6;
      for (index_t k = 0; k < len; ++k) {
        packed.push_back(static_cast<double>((r * 31 + k * 17) % ncols));
        packed.push_back(std::sin(0.7 * static_cast<double>(r + k)));
      }
      offsets.push_back(static_cast<index_t>(packed.size()));
    }
    std::vector<double> x(static_cast<std::size_t>(ncols));
    for (index_t c = 0; c < ncols; ++c) {
      x[static_cast<std::size_t>(c)] = std::sin(0.01 * static_cast<double>(c));
    }
    double secs[2] = {0, 0}, sums[2] = {0, 0};
    const sched::SchedulePolicy pols[2] = {sched::SchedulePolicy::kStatic,
                                           sched::SchedulePolicy::kDynamic};
    for (int p = 0; p < 2; ++p) {
      net::set_slice_cache_budget(std::size_t{512} << 20);
      dist::SegmentedDistArray<double> a(offsets, packed);
      auto res = net::Cluster::run(bench::kNodes, [&](net::Comm& comm) {
        dist::NodeRuntime node(1);
        sched::SchedOptions opts;
        opts.policy = pols[p];
        opts.combine = sched::CombineMode::kOrdered;
        opts.grain = 4;
        auto make = [&] {
          return dist::transform(
              dist::from_segmented(a), [&x](const dist::Segment<double>& s) {
                double dot = 0;
                for (std::size_t k = 0; k < s.size() / 2; ++k) {
                  dot += s[2 * k + 1] *
                         x[static_cast<std::size_t>(s[2 * k])];
                }
                return dot;
              });
        };
        (void)dist::sum(comm, make, opts);  // cold round ships the matrix
        std::vector<double> rounds_s;
        double sum = 0;
        for (int r = 0; r < warm_rounds; ++r) {
          comm.barrier();
          Stopwatch sw;
          sum = dist::sum(comm, make, opts);
          comm.barrier();
          if (comm.rank() == 0) rounds_s.push_back(sw.seconds());
        }
        if (comm.rank() == 0) {
          std::sort(rounds_s.begin(), rounds_s.end());
          secs[p] = rounds_s[rounds_s.size() / 2];
          sums[p] = sum;
        }
      });
      net::set_slice_cache_budget(~std::size_t{0});
      if (!res.ok) std::exit(1);
    }
    const double sp = secs[0] / secs[1];
    std::printf("\nSegmented sparse matvec (8 ranks, power-law rows): "
                "static %.4fs vs dynamic %.4fs -> %.2fx, bitwise %s\n",
                secs[0], secs[1], sp,
                std::memcmp(&sums[0], &sums[1], sizeof(double)) == 0
                    ? "identical" : "DIFFERENT");
    shape_check("demand scheduling beats static blocks on power-law rows",
                sp > 1.0);
    shape_check("kOrdered matvec bitwise identical static vs dynamic",
                std::memcmp(&sums[0], &sums[1], sizeof(double)) == 0);
  }

  // -- service layer: one resident cluster instead of a run per job -----------
  // A compact version of bm_service's mixed stream at 8 ranks: small
  // latency-sensitive kOrdered jobs interleaved with resident-dataset scans.
  // Baseline runs each job in its own Cluster::run, strictly serialized;
  // the JobManager batches the smalls, overlaps groups, and keeps the
  // dataset resident. bm_service holds the full gates (>= 1.5x, p99).
  {
    const core::index_t small_n = 2048, large_n = 1 << 15;
    const int n_small = 10, n_large = 2;
    std::vector<Array1<double>> small_data;
    for (int i = 0; i < n_small; ++i) {
      Array1<double> a(small_n);
      for (core::index_t j = 0; j < small_n; ++j) {
        a[j] = 1e-4 * static_cast<double>(((i + 3) * j * 31) % 7919);
      }
      small_data.push_back(std::move(a));
    }
    Array1<double> dataset(large_n);
    for (core::index_t i = 0; i < large_n; ++i) {
      dataset[i] = 1e-6 * static_cast<double>((i * 13) % 4093);
    }
    sched::SchedOptions small_opts;
    small_opts.combine = sched::CombineMode::kOrdered;
    small_opts.grain = 64;
    auto small_sum = [&](net::Comm& comm, int i) {
      return dist::reduce(comm,
                          [&] { return core::from_array(small_data[
                              static_cast<std::size_t>(i)]); },
                          0.0, [](double a, double b) { return a + b; },
                          small_opts);
    };

    Stopwatch base_sw;
    dist::DistArray<double> d_base{Array1<double>(dataset)};
    for (int l = 0; l < n_large; ++l) {
      auto res = net::Cluster::run(bench::kNodes, [&](net::Comm& comm) {
        dist::NodeRuntime node(1);
        (void)dist::sum(comm, [&] { return dist::from_resident(d_base); });
      });
      if (!res.ok) std::exit(1);
      for (int i = l * (n_small / n_large);
           i < (l + 1) * (n_small / n_large); ++i) {
        auto r = net::Cluster::run(bench::kNodes, [&](net::Comm& comm) {
          dist::NodeRuntime node(1);
          (void)small_sum(comm, i);
        });
        if (!r.ok) std::exit(1);
      }
    }
    const double base_s = base_sw.seconds();

    Stopwatch serv_sw;
    {
      svc::ServiceOptions so;
      so.nranks = bench::kNodes;
      svc::JobManager mgr(so);
      dist::DistArray<double> d_serv{Array1<double>(dataset)};
      for (int l = 0; l < n_large; ++l) {
        mgr.submit({"scan"}, [&](svc::JobContext& ctx) {
          (void)dist::sum(ctx.comm(),
                          [&] { return dist::from_resident(d_serv); });
        });
        for (int i = l * (n_small / n_large);
             i < (l + 1) * (n_small / n_large); ++i) {
          svc::JobOptions jo;
          jo.name = "small";
          jo.batch_key = 1;
          mgr.submit(jo, [&, i](svc::JobContext& ctx) {
            (void)small_sum(ctx.comm(), i);
          });
        }
      }
      mgr.drain();
    }
    const double serv_s = serv_sw.seconds();
    const double speedup = base_s / serv_s;
    std::printf("\nService layer (8 ranks, %d-job mixed stream): "
                "run-to-completion %.3fs vs resident service %.3fs -> "
                "%.2fx job throughput\n",
                n_small + n_large, base_s, serv_s, speedup);
    shape_check("resident service beats a Cluster::run per job",
                speedup > 1.0);
  }
  return 0;
}
