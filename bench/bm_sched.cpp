// Scheduler-policy comparison: Static vs Guided vs Dynamic on a skewed
// tpacf-style workload at 8 ranks.
//
// The workload is the shape the paper's §3.2 irregular skeletons produce: a
// triangular loop where item i costs O(i) (each tpacf point correlates
// against all earlier points). A static block split assigns the last rank
// ~2x the average work; demand-driven policies keep the tail balanced at
// the price of request/grant control traffic.
//
// Methodology (the repo's standard measure-then-simulate split, DESIGN.md):
// atoms execute for real once and their durations feed the sim/ makespan
// models — makespan_static_block for the static split, makespan_demand
// (every claim pays one grant_overhead round trip) for guided/dynamic.
// Separately, each policy runs for real on an 8-rank in-process cluster to
// (a) verify results are identical across policies — bitwise for the
// ordered-combine path — and (b) report the scheduler control traffic that
// CommStats attributes.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "sim/network_model.hpp"
#include "sim/schedule.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using core::index_t;

namespace {

// -- the skewed workload ------------------------------------------------------

constexpr index_t kItems = 2048;
constexpr index_t kGrain = 32;  // atoms of 32 items -> 64 atoms
constexpr int kWorkPerUnit = 6; // transcendental ops per triangular unit

/// cost[i] = i: item i does O(i) inner iterations, like correlating point i
/// against all earlier points. The lambda is captureless, so the iterator
/// serializes for free.
auto make_workload(const Array1<double>& costs) {
  return core::map(core::from_array(costs), [](double c) {
    double v = 0.0;
    const int n = static_cast<int>(c) * kWorkPerUnit;
    for (int k = 0; k < n; ++k) v += std::sin(v + 1e-3 * k);
    return v;
  });
}

Array1<double> make_costs() {
  Array1<double> costs(kItems);
  for (index_t i = 0; i < kItems; ++i) costs[i] = static_cast<double>(i);
  return costs;
}

/// Real per-atom durations, measured sequentially (min of 3 runs per atom).
std::vector<double> measure_atoms(const Array1<double>& costs) {
  auto it = make_workload(costs);
  const auto dom = it.domain();
  const index_t natoms = sched::atom_count(core::outer_extent(dom), kGrain);
  std::vector<double> durs;
  durs.reserve(static_cast<std::size_t>(natoms));
  for (index_t a = 0; a < natoms; ++a) {
    auto atom = it.slice(core::outer_slice(dom, a * kGrain, (a + 1) * kGrain));
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch sw;
      volatile double sink =
          core::reduce(atom, 0.0, [](double x, double y) { return x + y; });
      (void)sink;
      best = std::min(best, sw.seconds());
    }
    durs.push_back(best);
  }
  return durs;
}

/// Collapses per-atom durations into the guided grant sequence (the exact
/// run sizes the root would serve with P perfectly-interleaved workers).
std::vector<double> guided_runs(const std::vector<double>& atoms, int ranks) {
  std::vector<double> runs;
  index_t next = 0;
  const auto n = static_cast<index_t>(atoms.size());
  while (next < n) {
    const index_t take = std::min(n - next, sched::guided_run_atoms(n - next, ranks));
    double sum = 0.0;
    for (index_t a = next; a < next + take; ++a) {
      sum += atoms[static_cast<std::size_t>(a)];
    }
    runs.push_back(sum);
    next += take;
  }
  return runs;
}

struct PolicyRun {
  sched::SchedulePolicy policy;
  double ordered_result = 0.0;
  net::SchedStats stats;
};

PolicyRun run_real(sched::SchedulePolicy policy, const Array1<double>& costs) {
  PolicyRun out{policy};
  sched::SchedOptions opts{policy, sched::CombineMode::kOrdered, kGrain};
  auto res = net::Cluster::run(bench::kNodes, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    auto make = [&] { return make_workload(costs); };
    auto plus = [](double a, double b) { return a + b; };
    // Warm-up round (serialization paths, pools), then bracket one steady
    // round with Comm::snapshot_stats(): the same per-round counter delta
    // the autotuner consumes, summed cluster-wide over an allgather —
    // CommStats itself is wire-serializable.
    (void)dist::reduce(comm, make, 0.0, plus, opts);
    const net::CommStats before = comm.snapshot_stats();
    double r = dist::reduce(comm, make, 0.0, plus, opts);
    const net::CommStats delta = comm.snapshot_stats() - before;
    auto all = comm.allgather(delta);
    if (comm.rank() == 0) {
      out.ordered_result = r;
      net::CommStats sum{};
      for (const auto& d : all) sum += d;
      out.stats = sum.sched;
    }
  });
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== bm_sched: schedule policies on a skewed workload, %d ranks ==\n",
              bench::kNodes);

  const auto costs = make_costs();
  const auto atoms = measure_atoms(costs);
  const int ranks = bench::kNodes;
  const double total = sim::total_work(atoms);

  // Control-message sizes from the real wire format: a request is one byte,
  // a grant is the header plus one serialized atom-sized task slice.
  auto it = make_workload(costs);
  const auto dom = it.domain();
  sched::Grant<decltype(it)> sample{
      0, 0, 1, kGrain, it.slice(core::outer_slice(dom, 0, kGrain))};
  const auto grant_bytes = static_cast<std::int64_t>(serial::wire_size(sample));
  sim::NetworkModel net;
  const double oh = sim::grant_overhead(net, 1, grant_bytes);

  const double m_static = sim::makespan_static_block(atoms, ranks);
  const auto g_runs = guided_runs(atoms, ranks);
  const double m_guided = sim::makespan_demand(g_runs, ranks, oh);
  const double m_dynamic = sim::makespan_demand(atoms, ranks, oh);
  const double ideal = total / ranks;

  Table t({"policy", "chunks", "ctrl rt/chunk (us)", "makespan (s)",
           "vs static", "vs ideal"});
  auto row = [&](const char* name, std::size_t chunks, double m) {
    t.add_row({name, Table::num(static_cast<std::int64_t>(chunks)),
               Table::num(oh * 1e6, 2), Table::num(m, 6),
               Table::num(m_static / m, 2) + "x", Table::num(m / ideal, 3) + "x"});
  };
  row("static", static_cast<std::size_t>(ranks), m_static);
  row("guided", g_runs.size(), m_guided);
  row("dynamic", atoms.size(), m_dynamic);
  t.print("simulated 8-rank makespan (measured atom durations, " +
          std::to_string(atoms.size()) + " atoms, grant " +
          std::to_string(grant_bytes) + " B)");

  // -- real cluster runs: result identity + control-traffic attribution ------
  const sched::SchedulePolicy policies[] = {sched::SchedulePolicy::kStatic,
                                            sched::SchedulePolicy::kGuided,
                                            sched::SchedulePolicy::kDynamic};
  std::vector<PolicyRun> runs;
  for (auto p : policies) runs.push_back(run_real(p, costs));

  Table c({"policy", "requests", "grants", "ctrl msgs", "ctrl bytes",
           "items run", "busy (s)", "steal wait (s)"});
  for (const auto& r : runs) {
    c.add_row({sched::to_string(r.policy), Table::num(r.stats.requests_sent),
               Table::num(r.stats.grants_served),
               Table::num(r.stats.control_messages),
               Table::num(r.stats.control_bytes),
               Table::num(r.stats.items_executed),
               Table::num(r.stats.busy_seconds, 4),
               Table::num(r.stats.idle_seconds, 4)});
  }
  c.print("real 8-rank cluster: one steady round's control traffic "
          "(cluster-wide snapshot_stats() delta)");

  bool bitwise = true;
  for (const auto& r : runs) {
    bitwise = bitwise && std::memcmp(&runs[0].ordered_result, &r.ordered_result,
                                     sizeof(double)) == 0;
  }

  const double best_demand = std::min(m_guided, m_dynamic);
  apps::shape_check("guided or dynamic beats static by >= 1.3x simulated",
                    best_demand * 1.3 <= m_static);
  apps::shape_check("ordered results bitwise identical across policies",
                    bitwise);
  apps::shape_check("static runs without any scheduler requests",
                    runs[0].stats.requests_sent == 0);
  apps::shape_check("guided needs fewer grants than dynamic",
                    runs[1].stats.grants_served < runs[2].stats.grants_served);
  apps::shape_check("every item executed exactly once under each policy",
                    runs[0].stats.items_executed == kItems &&
                        runs[1].stats.items_executed == kItems &&
                        runs[2].stats.items_executed == kItems);

  // Machine-readable record (bench/BENCH_sched.json keeps a checked-in copy).
  std::printf("\n{\n");
  std::printf("  \"workload\": {\"items\": %lld, \"grain\": %lld, \"atoms\": %zu, "
              "\"shape\": \"triangular\"},\n",
              static_cast<long long>(kItems), static_cast<long long>(kGrain),
              atoms.size());
  std::printf("  \"ranks\": %d,\n", ranks);
  std::printf("  \"grant_bytes\": %lld,\n", static_cast<long long>(grant_bytes));
  std::printf("  \"control_round_trip_seconds\": %.3e,\n", oh);
  std::printf("  \"simulated_makespan_seconds\": "
              "{\"static\": %.6e, \"guided\": %.6e, \"dynamic\": %.6e},\n",
              m_static, m_guided, m_dynamic);
  std::printf("  \"speedup_vs_static\": {\"guided\": %.3f, \"dynamic\": %.3f},\n",
              m_static / m_guided, m_static / m_dynamic);
  std::printf("  \"control_traffic\": {\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& s = runs[i].stats;
    std::printf("    \"%s\": {\"requests\": %lld, \"grants\": %lld, "
                "\"messages\": %lld, \"bytes\": %lld}%s\n",
                sched::to_string(runs[i].policy),
                static_cast<long long>(s.requests_sent),
                static_cast<long long>(s.grants_served),
                static_cast<long long>(s.control_messages),
                static_cast<long long>(s.control_bytes),
                i + 1 < runs.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"ordered_results_bitwise_identical\": %s\n",
              bitwise ? "true" : "false");
  std::printf("}\n");
  return 0;
}
