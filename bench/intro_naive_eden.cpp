// §1's motivating measurement: the naive Eden port of cutcp's histogram
// loop, written with idiomatic list comprehensions —
//
//     floatHist [f a r | a <- atoms, r <- gridPts a]
//
// — has per-thread performance "an order of magnitude lower than sequential
// C chiefly due to the overhead of list manipulation". This harness runs
// the same computation three ways on the same inputs:
//
//   1. sequential C loop nest (no intermediates)
//   2. naive boxed-list pipeline: every (cell, potential) pair becomes a
//      boxed cons cell, the comprehension output is materialized as one
//      list, then floatHist folds it — eden::List supplies honest GHC-style
//      boxing
//   3. the fused Triolet pipeline (concat_map|filter|map|float_histogram)
//
// and checks C ≈ Triolet << naive-Eden.

#include <cstdio>

#include "apps/cutcp.hpp"
#include "apps/driver.hpp"
#include "core/triolet.hpp"
#include "eden/list.hpp"
#include "support/table.hpp"

using namespace triolet;
using namespace triolet::apps;

namespace {

/// The naive Eden version: materialize the full boxed list of contributions
/// (the desugared list comprehension), then fold it into the histogram.
CutcpGrid cutcp_eden_naive(const CutcpProblem& p) {
  const GridSpec& g = p.grid;
  const float cutoff2 = g.cutoff * g.cutoff;
  const float inv_cutoff2 = 1.0f / cutoff2;
  const float eps = 0.25f * g.spacing;

  using Contribution = std::pair<index_t, float>;
  std::vector<Contribution> generated;
  for (index_t i = 0; i < p.atoms.size(); ++i) {
    const Atom a = p.atoms[i];
    // gridPts a: all lattice points near the atom.
    auto clampi = [](index_t v, index_t lo, index_t hi) {
      return std::min(std::max(v, lo), hi);
    };
    auto lo = [&](float c, index_t n) {
      return clampi(static_cast<index_t>(std::ceil((c - g.cutoff) / g.spacing)),
                    0, n);
    };
    auto hi = [&](float c, index_t n) {
      return clampi(
          static_cast<index_t>(std::floor((c + g.cutoff) / g.spacing)) + 1, 0,
          n);
    };
    for (index_t z = lo(a.z, g.nz); z < hi(a.z, g.nz); ++z) {
      for (index_t y = lo(a.y, g.ny); y < hi(a.y, g.ny); ++y) {
        for (index_t x = lo(a.x, g.nx); x < hi(a.x, g.nx); ++x) {
          float dx = static_cast<float>(x) * g.spacing - a.x;
          float dy = static_cast<float>(y) * g.spacing - a.y;
          float dz = static_cast<float>(z) * g.spacing - a.z;
          float r2 = dx * dx + dy * dy + dz * dz;
          if (r2 < cutoff2) {
            float t = 1.0f - r2 * inv_cutoff2;
            float r = std::sqrt(r2);
            generated.emplace_back((z * g.ny + y) * g.nx + x,
                                   a.q * t * t / std::max(r, eps));
          }
        }
      }
    }
  }
  // The comprehension's output *as a boxed cons list* (one heap box per
  // element plus one cons cell, what [f a r | ...] costs in Eden)...
  auto boxed = eden::List<Contribution>::from_vector(generated);
  // ...consumed by floatHist: a fold over the list.
  CutcpGrid grid(p.grid.cells(), 0.0f);
  boxed.foldl(
      [&grid](int acc, const Contribution& c) {
        grid[c.first] += c.second;
        return acc;
      },
      0);
  return grid;
}

}  // namespace

int main() {
  std::printf("== Section 1: naive list-comprehension Eden vs C ==\n");
  // Small enough that the boxed pipeline's millions of allocations finish
  // quickly, big enough to measure.
  CutcpProblem p = make_cutcp(1500, 24, 24, 24, 2.0f, 0xA5);

  CutcpGrid ref = cutcp_seq_c(p);
  double t_c = measure_seconds([&] { (void)cutcp_seq_c(p); });
  double t_naive = measure_seconds([&] { (void)cutcp_eden_naive(p); }, 2);
  double t_triolet =
      measure_seconds([&] { (void)cutcp_triolet(p, core::ParHint::kSeq); });

  // All three agree on the answer.
  double err_naive = cutcp_rel_error(ref, cutcp_eden_naive(p));
  double err_triolet =
      cutcp_rel_error(ref, cutcp_triolet(p, core::ParHint::kSeq));

  Table t({"version", "seconds", "vs C"});
  t.add_row({"sequential C", Table::num(t_c, 5), "1.00x"});
  t.add_row({"Triolet (fused)", Table::num(t_triolet, 5),
             Table::num(t_triolet / t_c, 2) + "x"});
  t.add_row({"Eden (naive lists)", Table::num(t_naive, 5),
             Table::num(t_naive / t_c, 2) + "x"});
  t.print("cutcp histogram loop, one core");

  shape_check("all versions agree", err_naive < 2e-4 && err_triolet < 2e-4);
  shape_check("naive boxed-list pipeline is several times slower than C "
              "(paper: an order of magnitude)",
              t_naive > 3.0 * t_c);
  shape_check("the fused Triolet pipeline stays within 2x of C",
              t_triolet < 2.0 * t_c);
  std::printf("\nThis is the gap Triolet's fusible iterators close: the same "
              "high-level pipeline,\nfused into a loop nest instead of "
              "materialized as boxed lists.\n");
  return 0;
}
