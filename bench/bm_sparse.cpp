// Sparse power-law matvec over a SegmentedDistArray: schedule policies on
// ragged data at 8 ranks.
//
// The matrix is CSR with a power-law row-length distribution — the few
// hub rows hold most of the nonzeros, and they cluster at the front
// (sorted degree order, the common layout for graph matrices). Outer units
// are the value-balanced segment groups segment_cuts builds, so an atom's
// cost is proportional to its nonzero count, not its row count; the jumbo
// rows still form oversized units, leaving real per-atom skew for the
// demand policies to rebalance. Static contiguous blocks strand the hub
// cluster on rank 0 — the regime from the paper's tpacf discussion, here
// on an irregular source instead of a triangular index space.
//
// Measured per policy (kStatic / kGuided / kDynamic / kAuto): rank-0 wall
// time of an iterative y += A x round loop on the resident matrix, plus
// residency/view traffic. The matrix ships once (round 0) and tokenizes
// afterwards: warm rounds move tokens, not nonzeros. kOrdered keeps every
// policy's result bitwise identical — the ISSUE's acceptance bar.
//
// Flags: --ranks=N --rounds=N --check (CI smoke: small problem, no timing
// thresholds; exit 1 unless results are bitwise identical across policies
// and warm rounds tokenize).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/segmented.hpp"
#include "dist/skeletons.hpp"
#include "dist/views.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using core::index_t;

namespace {

/// Power-law CSR: `hubs` jumbo rows up front (sorted degree order), a long
/// tail of short rows. Column indices are spread deterministically so the
/// dot products exercise the x vector.
struct Csr {
  std::vector<index_t> offsets;  // nsegs + 1
  std::vector<index_t> cols;
  std::vector<double> vals;
  index_t ncols = 0;
};

Csr make_powerlaw_csr(index_t nrows, index_t ncols, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Csr m;
  m.ncols = ncols;
  m.offsets.push_back(0);
  const index_t hubs = std::max<index_t>(1, nrows / 64);
  for (index_t r = 0; r < nrows; ++r) {
    const index_t len = r < hubs ? ncols / 2 : 2 + r % 6;
    for (index_t k = 0; k < len; ++k) {
      m.cols.push_back((r * 31 + k * 17) % ncols);
      m.vals.push_back(rng.uniform(-1.0, 1.0));
    }
    m.offsets.push_back(static_cast<index_t>(m.vals.size()));
  }
  return m;
}

/// One CSR row as a (column, value) segmented pair: the values leaf holds
/// interleaved (col, val) encoded as two doubles, keeping the benchmark on
/// the single-values-leaf SegmentedDistArray. col rides as a double — exact
/// for the index ranges used here.
std::pair<std::vector<index_t>, std::vector<double>> interleave(
    const Csr& m) {
  std::vector<index_t> offsets;
  offsets.reserve(m.offsets.size());
  for (index_t o : m.offsets) offsets.push_back(2 * o);
  std::vector<double> packed;
  packed.reserve(2 * m.vals.size());
  for (std::size_t i = 0; i < m.vals.size(); ++i) {
    packed.push_back(static_cast<double>(m.cols[i]));
    packed.push_back(m.vals[i]);
  }
  return {std::move(offsets), std::move(packed)};
}

struct RunResult {
  double seconds = 0;
  double result = 0;  // fold of every round's y-norm surrogate
  std::int64_t bytes_sent = 0;
  net::ResidencyStats residency;
  net::ViewStats views;
  index_t grants = 0;
  std::vector<double> round_seconds;  // rank-0 wall per round
};

/// Median of the last half of the rounds (at least one): the steady-state
/// figure once cold shipping and — for kAuto — measurement and audit
/// rounds are behind. A median over a wide window, not a mean over a
/// narrow one: on an oversubscribed node any single round can lose a
/// scheduling quantum, and outliers must not define the steady state.
double tail_median(const std::vector<double>& rounds_s) {
  if (rounds_s.empty()) return 0.0;
  const std::size_t n = std::max<std::size_t>(1, rounds_s.size() / 2);
  std::vector<double> tail(rounds_s.end() - static_cast<std::ptrdiff_t>(n),
                           rounds_s.end());
  std::sort(tail.begin(), tail.end());
  return tail[tail.size() / 2];
}

/// Iterative y = A x rounds under one policy. The x vector is a resident
/// DistArray zipped into each segment's extractor via a DistContext-free
/// trick: x is small and read-only, so it rides in the segment functor by
/// reference (rank-local; the matrix is what moves). Every round reduces a
/// scalar surrogate sum_r (A x)_r so rounds chain without materializing y.
RunResult run_policy(sched::SchedulePolicy policy, int ranks, int rounds,
                     const std::vector<index_t>& offsets,
                     const std::vector<double>& packed,
                     const std::vector<double>& x, index_t grain) {
  net::set_slice_cache_budget(std::size_t{512} << 20);
  dist::SegmentedDistArray<double> a(offsets, packed);

  RunResult out;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    dist::NodeRuntime node(1);
    sched::SchedOptions opts;
    opts.policy = policy;
    opts.combine = sched::CombineMode::kOrdered;
    opts.grain = grain;
    opts.tune_key = a.tune_key();
    comm.barrier();
    Stopwatch sw;
    double acc = 0;
    std::vector<double> round_s;
    for (int r = 0; r < rounds; ++r) {
      Stopwatch rw;
      auto make = [&] {
        return dist::transform(
            dist::from_segmented(a), [&x](const dist::Segment<double>& s) {
              double dot = 0;
              const std::size_t nnz = s.size() / 2;
              for (std::size_t k = 0; k < nnz; ++k) {
                const auto c = static_cast<std::size_t>(s[2 * k]);
                dot += s[2 * k + 1] * x[c];
              }
              return dot;
            });
      };
      const double ynorm = dist::sum(comm, make, opts);
      if (comm.rank() == 0) {
        acc += ynorm * (1.0 + 1e-6 * r);
        round_s.push_back(rw.seconds());
      }
    }
    comm.barrier();
    if (comm.rank() == 0) {
      out.seconds = sw.seconds();
      out.result = acc;
      out.round_seconds = std::move(round_s);
    }
  });
  net::set_slice_cache_budget(~std::size_t{0});
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  out.bytes_sent = res.total_stats.bytes_sent;
  out.residency = res.total_stats.residency;
  out.views = res.total_stats.views;
  out.grants = res.total_stats.sched.grants_served;
  return out;
}

const char* policy_name(sched::SchedulePolicy p) {
  switch (p) {
    case sched::SchedulePolicy::kStatic: return "static";
    case sched::SchedulePolicy::kGuided: return "guided";
    case sched::SchedulePolicy::kDynamic: return "dynamic";
    case sched::SchedulePolicy::kAuto: return "auto";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = bench::kNodes;
  // Enough rounds that kAuto's calibration + audit prologue (up to four
  // rounds; see sched/tuner.hpp) amortizes into the steady state, as it
  // would in a real iterative solve.
  int rounds = 24;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = std::atoi(arg.c_str() + 9);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const index_t nrows = check_only ? 2048 : 32768;
  const index_t ncols = check_only ? 512 : 2048;

  std::printf("== bm_sparse: power-law CSR matvec, %d ranks, %d rounds, "
              "%lld rows ==\n",
              ranks, rounds, static_cast<long long>(nrows));

  const Csr m = make_powerlaw_csr(nrows, ncols, 71);
  auto [offsets, packed] = interleave(m);
  std::vector<double> x(static_cast<std::size_t>(ncols));
  for (index_t c = 0; c < ncols; ++c) {
    x[static_cast<std::size_t>(c)] = std::sin(0.01 * static_cast<double>(c));
  }
  // Pinned grain: the atom decomposition must not depend on the rank count
  // or the policy (kOrdered bitwise identity across both axes).
  const index_t grain = 4;

  const sched::SchedulePolicy policies[] = {
      sched::SchedulePolicy::kStatic, sched::SchedulePolicy::kGuided,
      sched::SchedulePolicy::kDynamic, sched::SchedulePolicy::kAuto};

  // Warm-up pass (first-touch, pools), then measure each policy.
  (void)run_policy(sched::SchedulePolicy::kStatic, ranks, 1, offsets, packed,
                   x, grain);
  RunResult results[4];
  for (int i = 0; i < 4; ++i) {
    results[i] =
        run_policy(policies[i], ranks, rounds, offsets, packed, x, grain);
  }
  const double t_static = results[0].seconds;

  Table t({"policy", "time (s)", "vs static", "bytes sent", "view tokens",
           "view bytes avoided"});
  for (int i = 0; i < 4; ++i) {
    t.add_row({policy_name(policies[i]), Table::num(results[i].seconds, 4),
               Table::num(t_static / results[i].seconds, 2) + "x",
               Table::num(results[i].bytes_sent),
               Table::num(results[i].views.view_tokens),
               Table::num(results[i].views.view_bytes_avoided)});
  }
  t.print("power-law sparse matvec, " + std::to_string(rounds) + " rounds, " +
          std::to_string(ranks) + " ranks");

  bool ok = true;
  bool bitwise_ok = true;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    ok = ok && holds;
  };
  for (int i = 1; i < 4; ++i) {
    const bool same = std::memcmp(&results[0].result, &results[i].result,
                                  sizeof(double)) == 0;
    bitwise_ok = bitwise_ok && same;
    check(std::string("kOrdered bitwise identical: static vs ") +
              policy_name(policies[i]),
          same);
  }
  // Rank-count independence of the decomposition: the same pinned-grain
  // reduction at a different rank count must fold to the same bits.
  {
    RunResult alt = run_policy(sched::SchedulePolicy::kDynamic,
                               std::max(2, ranks / 2), rounds, offsets,
                               packed, x, grain);
    const bool same =
        std::memcmp(&results[0].result, &alt.result, sizeof(double)) == 0;
    bitwise_ok = bitwise_ok && same;
    check("kOrdered bitwise identical across rank counts", same);
  }
  const auto& vs = results[2].views;  // dynamic
  check("warm rounds tokenize the segmented leaves (view_tokens > 0)",
        vs.view_tokens > 0);
  check("view_bytes_avoided matches residency bytes_avoided",
        vs.view_bytes_avoided == results[2].residency.bytes_avoided);
  check("no fetch fallbacks on the clean path",
        results[2].residency.fetches == 0);

  double best_demand = 1e300;
  const char* best_name = "";
  for (int i = 1; i < 4; ++i) {
    if (results[i].seconds < best_demand) {
      best_demand = results[i].seconds;
      best_name = policy_name(policies[i]);
    }
  }
  const double speedup = t_static / best_demand;
  const double auto_tail = tail_median(results[3].round_seconds);
  const double dynamic_tail = tail_median(results[2].round_seconds);
  if (!check_only) {
    check("dynamic >= 1.4x over static on power-law matvec",
          t_static / results[2].seconds >= 1.4);
    check("kAuto >= 1.4x over static on power-law matvec",
          t_static / results[3].seconds >= 1.4);
    // Convergence: once measurement and audit are done, kAuto's committed
    // rounds must run at demand-round rates — not at static's or guided's.
    check("kAuto steady-state rounds within 2.5x of dynamic's",
          auto_tail <= 2.5 * dynamic_tail);
  }

  std::printf("\n{\n");
  std::printf("  \"workload\": {\"rows\": %lld, \"cols\": %lld, \"nnz\": %lld, "
              "\"rounds\": %d, \"ranks\": %d, \"grain\": %lld},\n",
              static_cast<long long>(nrows), static_cast<long long>(ncols),
              static_cast<long long>(m.vals.size()), rounds, ranks,
              static_cast<long long>(grain));
  std::printf("  \"seconds\": {");
  for (int i = 0; i < 4; ++i) {
    std::printf("%s\"%s\": %.4f", i ? ", " : "", policy_name(policies[i]),
                results[i].seconds);
  }
  std::printf("},\n");
  std::printf("  \"speedup_vs_static\": {");
  for (int i = 1; i < 4; ++i) {
    std::printf("%s\"%s\": %.3f", i > 1 ? ", " : "", policy_name(policies[i]),
                t_static / results[i].seconds);
  }
  std::printf("},\n");
  std::printf("  \"best_demand_policy\": \"%s\",\n", best_name);
  std::printf("  \"best_speedup_vs_static\": %.3f,\n", speedup);
  std::printf("  \"tail_round_seconds\": {\"dynamic\": %.4f, \"auto\": "
              "%.4f},\n",
              dynamic_tail, auto_tail);
  std::printf("  \"views\": {\"view_tokens\": %lld, \"view_bytes_avoided\": "
              "%lld},\n",
              static_cast<long long>(vs.view_tokens),
              static_cast<long long>(vs.view_bytes_avoided));
  std::printf("  \"ordered_bitwise_identical_across_policies\": %s,\n",
              bitwise_ok ? "true" : "false");
  std::printf("  \"all_checks_passed\": %s\n", ok ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}
