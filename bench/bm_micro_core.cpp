// Microbenchmarks of the core skeleton library (google-benchmark): fused
// pipelines against their hand-written loop equivalents, verifying the
// "library-driven loop fusion compiles to plain loops" claim at microbench
// granularity.

#include <benchmark/benchmark.h>

#include "core/triolet.hpp"
#include "support/rng.hpp"

namespace {

using namespace triolet;
using namespace triolet::core;

Array1<double> data(index_t n) {
  Xoshiro256 rng(5);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) a[i] = rng.uniform(-1.0, 1.0);
  return a;
}

void BM_HandLoop_Dot(benchmark::State& state) {
  auto xs = data(state.range(0));
  for (auto _ : state) {
    double acc = 0;
    for (index_t i = 0; i < xs.size(); ++i) acc += xs[i] * xs[i];
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HandLoop_Dot)->Arg(1 << 14)->Arg(1 << 18);

void BM_Iter_Dot(benchmark::State& state) {
  auto xs = data(state.range(0));
  for (auto _ : state) {
    auto it = map(zip(from_array(xs), from_array(xs)),
                  [](const auto& p) { return p.first * p.second; });
    benchmark::DoNotOptimize(sum(it));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Iter_Dot)->Arg(1 << 14)->Arg(1 << 18);

void BM_HandLoop_FilterSum(benchmark::State& state) {
  auto xs = data(state.range(0));
  for (auto _ : state) {
    double acc = 0;
    for (index_t i = 0; i < xs.size(); ++i) {
      if (xs[i] > 0) acc += xs[i];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HandLoop_FilterSum)->Arg(1 << 14)->Arg(1 << 18);

void BM_Iter_FilterSum(benchmark::State& state) {
  auto xs = data(state.range(0));
  for (auto _ : state) {
    auto it = filter(from_array(xs), [](double x) { return x > 0; });
    benchmark::DoNotOptimize(sum(it));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Iter_FilterSum)->Arg(1 << 14)->Arg(1 << 18);

void BM_HandLoop_Triangular(benchmark::State& state) {
  const index_t n = state.range(0);
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) acc += (i ^ j);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_HandLoop_Triangular)->Arg(256)->Arg(1024);

void BM_Iter_Triangular(benchmark::State& state) {
  const index_t n = state.range(0);
  for (auto _ : state) {
    auto it = concat_map(range(0, n), [n](index_t i) {
      return map(range(i + 1, n), [i](index_t j) { return i ^ j; });
    });
    benchmark::DoNotOptimize(sum(it));
  }
}
BENCHMARK(BM_Iter_Triangular)->Arg(256)->Arg(1024);

void BM_Iter_SliceAndSum(benchmark::State& state) {
  auto xs = data(1 << 18);
  auto it = map(from_array(xs), [](double x) { return x + 1.0; });
  for (auto _ : state) {
    auto sl = it.slice(Seq{1000, 1000 + state.range(0)});
    benchmark::DoNotOptimize(sum(sl));
  }
}
BENCHMARK(BM_Iter_SliceAndSum)->Arg(1 << 10)->Arg(1 << 16);

void BM_Iter_Histogram(benchmark::State& state) {
  const index_t n = state.range(0);
  auto xs = data(n);
  auto it = map(from_array(xs), [](double x) {
    return static_cast<index_t>((x + 1.0) * 31.9);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram(64, it));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Iter_Histogram)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
