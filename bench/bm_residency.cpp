// Resident distributed data: slice caching vs rescatter-every-round on an
// iterative skeleton loop at 8 ranks.
//
// The workload is k-means-shaped: a large array of wide trivially-copyable
// records that is *identical every round*, plus a small per-round-updated
// context (the "centroids"). The baseline (slice cache disabled,
// TRIOLET_SLICE_CACHE_BYTES=0) re-scatters the full point payload on every
// round — the pre-residency behavior. The resident run ships each worker's
// slice once and then sends an 8-byte checksum token per round
// (docs/INTERNALS.md "Data residency & slice caching"); the context still
// re-ships every round because its version bumps, exactly as a kmeans
// centroid update would.
//
// Measured: rank-0 wall time of the whole round loop (after a barrier) on
// the real in-process cluster, plus CommStats traffic. The residency layer
// is a pure transport optimization, so both variants must produce bitwise
// identical kOrdered reductions, and the avoided bytes must account for the
// traffic delta between the runs.
//
// Flags: --ranks=N --rounds=N --check (CI smoke mode: small problem, no
// timing thresholds, exit 1 unless the cache-hit rate is nonzero and the
// results match).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using core::index_t;

namespace {

/// 64-byte trivially-copyable record: the scatter payload is real array
/// data, as in the paper's benchmarks, so avoiding its re-send is the whole
/// game.
struct Wide {
  double v[8];
};
static_assert(sizeof(Wide) == 64);

/// The per-round-updated broadcast context (the "centroids").
struct Kernel {
  double scale = 1.0;
  double bias = 0.0;
  bool operator==(const Kernel&) const = default;
};

Array1<Wide> make_items(index_t n) {
  Array1<Wide> items(n);
  for (index_t i = 0; i < n; ++i) {
    Wide w{};
    for (int k = 0; k < 8; ++k) {
      w.v[k] = 1e-3 * static_cast<double>((i * 13 + k * 7) % 1009);
    }
    items[i] = w;
  }
  return items;
}

struct RunResult {
  double seconds = 0;
  double result = 0;  // fold of every round's reduction
  std::int64_t bytes_sent = 0;
  std::int64_t messages_sent = 0;
  net::ResidencyStats residency;
  /// Cluster-wide bytes sent per round (Comm::snapshot_stats() deltas
  /// bracketing each round, allgathered and summed): round 0 ships the
  /// payload, steady rounds the tokens.
  std::vector<std::int64_t> round_bytes;
};

/// One full iterative loop: `rounds` distributed map-reduce rounds over the
/// same resident array, context updated by the root every round. The
/// DistArray is created fresh per run so the resident variant starts cold.
RunResult run_loop(int ranks, int rounds, std::size_t budget,
                   const Array1<Wide>& items) {
  net::set_slice_cache_budget(budget);
  dist::DistArray<Wide> d{Array1<Wide>(items)};
  dist::DistContext<Kernel> ctx{Kernel{1.0, 0.0}};

  RunResult out;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    dist::NodeRuntime node(1);
    comm.barrier();  // all ranks up before the clock starts
    Stopwatch sw;
    double acc = 0;
    std::vector<net::CommStats> my_rounds;  // per-round snapshot deltas
    for (int r = 0; r < rounds; ++r) {
      auto make = [&] {
        return map_with(dist::from_resident(d), ctx.ctx(),
                        [](const Kernel& k, const Wide& w) {
                          return k.scale * w.v[1] + k.bias + w.v[2];
                        });
      };
      const net::CommStats before = comm.snapshot_stats();
      const double s = dist::sum(comm, make);
      my_rounds.push_back(comm.snapshot_stats() - before);
      if (comm.rank() == 0) {
        acc += s;
        // Deterministic per-round update, as a centroid recomputation would
        // be: the version bump re-ships the (small) context next round.
        ctx.update(Kernel{1.0 + 0.125 * (r + 1), 1e-3 * (r + 1)});
      }
    }
    comm.barrier();
    if (comm.rank() == 0) {
      out.seconds = sw.seconds();
      out.result = acc;
    }
    // One allgather after the clock stops: CommStats is wire-serializable,
    // so each round's cluster-wide traffic is the sum of the per-rank
    // deltas.
    auto all = comm.allgather(my_rounds);
    if (comm.rank() == 0) {
      for (int r = 0; r < rounds; ++r) {
        net::CommStats sum{};
        for (const auto& per_rank : all) {
          sum += per_rank[static_cast<std::size_t>(r)];
        }
        out.round_bytes.push_back(sum.bytes_sent);
      }
    }
  });
  net::set_slice_cache_budget(~std::size_t{0});  // back to "read the env"
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  out.bytes_sent = res.total_stats.bytes_sent;
  out.messages_sent = res.total_stats.messages_sent;
  out.residency = res.total_stats.residency;
  return out;
}

/// kOrdered demand-scheduled reduction over the resident array, used to
/// check the bitwise-identity guarantee with the cache on vs off.
double run_ordered(int ranks, std::size_t budget, const Array1<Wide>& items) {
  net::set_slice_cache_budget(budget);
  dist::DistArray<Wide> d{Array1<Wide>(items)};
  sched::SchedOptions opts;
  opts.policy = sched::SchedulePolicy::kGuided;
  opts.combine = sched::CombineMode::kOrdered;
  double out = 0;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    dist::NodeRuntime node(1);
    auto make = [&] {
      return core::map(dist::from_resident(d), [](const Wide& w) {
        return w.v[1] * 1.25 + w.v[3];
      });
    };
    for (int r = 0; r < 3; ++r) {
      double v = dist::reduce(comm, make, 0.0,
                              [](double a, double b) { return a + b; }, opts);
      if (comm.rank() == 0) out = v;  // identical every round by guarantee
    }
  });
  net::set_slice_cache_budget(~std::size_t{0});
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = bench::kNodes;
  int rounds = 6;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = std::atoi(arg.c_str() + 9);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  // Smoke mode keeps the problem small; the full run makes the scatter
  // payload dominate round cost (the regime iterative skeletons live in).
  const index_t n = check_only ? (1 << 15) : (1 << 19);  // 2 MiB / 32 MiB

  std::printf("== bm_residency: resident slices vs rescatter, %d ranks, "
              "%d rounds, %lld items ==\n",
              ranks, rounds, static_cast<long long>(n));

  const auto items = make_items(n);

  // Warm-up pass (first-touch page faults, thread pools), then measure.
  (void)run_loop(ranks, 2, 0, items);
  RunResult baseline = run_loop(ranks, rounds, 0, items);
  RunResult resident =
      run_loop(ranks, rounds, std::size_t{256} << 20, items);

  const double speedup = baseline.seconds / resident.seconds;
  const auto& rs = resident.residency;
  const double hit_rate =
      rs.cache_hits + rs.cache_misses + rs.checksum_failures > 0
          ? static_cast<double>(rs.cache_hits) /
                static_cast<double>(rs.cache_hits + rs.cache_misses +
                                    rs.checksum_failures)
          : 0.0;

  Table t({"variant", "time (s)", "speedup", "bytes sent", "bytes avoided",
           "tokens", "hits"});
  t.add_row({"rescatter every round", Table::num(baseline.seconds, 4), "1.00x",
             Table::num(baseline.bytes_sent), "0", "0", "0"});
  t.add_row({"resident slices", Table::num(resident.seconds, 4),
             Table::num(speedup, 2) + "x", Table::num(resident.bytes_sent),
             Table::num(rs.bytes_avoided), Table::num(rs.tokens_sent),
             Table::num(rs.cache_hits)});
  t.print("iterative map-reduce, " + std::to_string(rounds) + " rounds, " +
          std::to_string(ranks) + " ranks");

  // The avoided bytes must account for the traffic delta: what the baseline
  // sent and the resident run did not is exactly the tokenized payloads
  // (minus the 8-byte tokens themselves, lost in the 10% slack).
  const auto delta = baseline.bytes_sent - resident.bytes_sent;
  const bool accounted =
      std::llabs(delta - rs.bytes_avoided) <
      (rs.bytes_avoided / 10 + 4096);

  const double ordered_on = run_ordered(ranks, std::size_t{256} << 20, items);
  const double ordered_off = run_ordered(ranks, 0, items);
  const bool ordered_bitwise =
      std::memcmp(&ordered_on, &ordered_off, sizeof(double)) == 0;
  const bool results_match =
      std::memcmp(&baseline.result, &resident.result, sizeof(double)) == 0;

  bool ok = true;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    ok = ok && holds;
  };
  check("cache-hit rate is nonzero after round 1", hit_rate > 0.0);
  check("no fetch fallbacks on the clean path", rs.fetches == 0);
  check("bytes_avoided accounts for the traffic delta", accounted);
  // The per-round snapshot deltas localize the saving: resident round 0
  // ships the payload like the baseline, every later round just tokens.
  check("steady resident round ships < 1/4 of its cold round's bytes",
        resident.round_bytes.size() >= 2 &&
            resident.round_bytes.back() * 4 < resident.round_bytes.front());
  check("steady baseline round still ships the full payload",
        baseline.round_bytes.back() > resident.round_bytes.back() * 4);
  check("round results bitwise identical, cache on vs off", results_match);
  check("kOrdered reduction bitwise identical, cache on vs off",
        ordered_bitwise);
  if (!check_only) {
    check("resident loop >= 1.3x over rescatter-every-round",
          speedup >= 1.3);
  }

  // Machine-readable record (bench/BENCH_residency.json keeps a checked-in
  // copy).
  std::printf("\n{\n");
  std::printf("  \"workload\": {\"items\": %lld, \"item_bytes\": %zu, "
              "\"rounds\": %d, \"ranks\": %d},\n",
              static_cast<long long>(n), sizeof(Wide), rounds, ranks);
  std::printf("  \"seconds\": {\"rescatter\": %.4f, \"resident\": %.4f},\n",
              baseline.seconds, resident.seconds);
  std::printf("  \"speedup_resident_vs_rescatter\": %.3f,\n", speedup);
  std::printf("  \"bytes_sent\": {\"rescatter\": %lld, \"resident\": %lld},\n",
              static_cast<long long>(baseline.bytes_sent),
              static_cast<long long>(resident.bytes_sent));
  auto print_rounds = [](const char* name, const std::vector<std::int64_t>& v,
                         const char* trail) {
    std::printf("    \"%s\": [", name);
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::printf("%s%lld", i ? ", " : "", static_cast<long long>(v[i]));
    }
    std::printf("]%s\n", trail);
  };
  std::printf("  \"round_bytes_sent\": {\n");
  print_rounds("rescatter", baseline.round_bytes, ",");
  print_rounds("resident", resident.round_bytes, "");
  std::printf("  },\n");
  std::printf("  \"residency\": {\"tokens_sent\": %lld, \"bytes_avoided\": "
              "%lld, \"cache_hits\": %lld, \"cache_misses\": %lld, "
              "\"fetches\": %lld, \"hit_rate\": %.4f},\n",
              static_cast<long long>(rs.tokens_sent),
              static_cast<long long>(rs.bytes_avoided),
              static_cast<long long>(rs.cache_hits),
              static_cast<long long>(rs.cache_misses),
              static_cast<long long>(rs.fetches), hit_rate);
  std::printf("  \"results_bitwise_identical\": %s,\n",
              results_match ? "true" : "false");
  std::printf("  \"ordered_bitwise_identical_cache_on_off\": %s\n",
              ordered_bitwise ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}
