// Figure 7: scalability and performance of tpacf.
//
// Paper shape: Triolet and C+MPI+OpenMP scale similarly, with Triolet
// slightly faster thanks to a more even (dynamic) distribution of the
// triangular loops' skewed work; Eden has worse sequential performance and
// higher communication overhead.

#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"

using namespace triolet;
using namespace triolet::apps;

int main() {
  std::printf("== Figure 7: tpacf scalability ==\n");
  auto p = bench::tpacf_problem();
  std::printf("problem: %lld points, %lld random sets, %lld bins\n",
              static_cast<long long>(p.points()),
              static_cast<long long>(p.sets()),
              static_cast<long long>(p.nbins));

  TpacfMeasured m = measure_tpacf(p, bench::kTpacfUnits);
  std::printf("sequential seconds: C=%.4f Triolet=%.4f Eden=%.4f\n", m.seq_c,
              m.seq_triolet, m.seq_eden);

  // Speedup denominator: the C loop code measured identically to the
  // parallel task times (whole-program seq times are reported above).
  const double denom = seq_equivalent_seconds(m.lowlevel);

  std::vector<ScalingSeries> series{
      run_series(m.lowlevel, bench::kNodes, bench::kCoresPerNode),
      run_series(m.triolet, bench::kNodes, bench::kCoresPerNode),
      run_series(m.eden, bench::kNodes, bench::kCoresPerNode),
  };
  print_figure("Figure 7: tpacf", denom, series);

  const double su_c = final_speedup(series[0], denom);
  const double su_t = final_speedup(series[1], denom);
  const double su_e = final_speedup(series[2], denom);
  std::printf("\nat 128 cores: C+MPI+OpenMP=%.1fx Triolet=%.1fx Eden=%.1fx\n",
              su_c, su_t, su_e);
  shape_check("Triolet and C+MPI+OpenMP scale similarly (within 25%)",
              su_t > 0.75 * su_c && su_t < 1.25 * su_c);
  shape_check(
      "Triolet >= C+MPI+OpenMP in raw time at 128 cores (even distribution)",
      series[1].points.back().seconds <= 1.02 * series[0].points.back().seconds);
  shape_check("Eden below both (sequential + communication overhead)",
              su_e < su_t && su_e < su_c);
  shape_check("Eden sequential slower than C", m.seq_eden > m.seq_c);
  return 0;
}
