// Microbenchmarks of the runtime substrates: work-stealing deque ops,
// fork-join overhead, parallel_for/reduce, and serialization throughput.

#include <benchmark/benchmark.h>

#include <numeric>

#include "array/array.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/ws_deque.hpp"
#include "serial/checksum.hpp"
#include "serial/serialize.hpp"

namespace {

using namespace triolet;
using namespace triolet::runtime;

void BM_WsDeque_PushPop(benchmark::State& state) {
  WsDeque<int*> d;
  int v = 0;
  for (auto _ : state) {
    d.push(&v);
    int* out = nullptr;
    benchmark::DoNotOptimize(d.pop(out));
  }
}
BENCHMARK(BM_WsDeque_PushPop);

void BM_Pool_SubmitWait(benchmark::State& state) {
  ThreadPool pool(2);
  for (auto _ : state) {
    TaskGroup g;
    for (int i = 0; i < 64; ++i) {
      pool.submit(g, [] {});
    }
    pool.wait(g);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Pool_SubmitWait);

void BM_ParallelFor(benchmark::State& state) {
  ThreadPool pool(2);
  const index_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    parallel_for(pool, 0, n, [&](index_t a, index_t b) {
      for (index_t i = a; i < b; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;
      }
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 18);

void BM_ParallelReduce(benchmark::State& state) {
  ThreadPool pool(2);
  const index_t n = state.range(0);
  for (auto _ : state) {
    auto r = parallel_reduce(
        pool, 0, n, 0, 0.0,
        [](index_t a, index_t b, double acc) {
          for (index_t i = a; i < b; ++i) acc += static_cast<double>(i);
          return acc;
        },
        [](double x, double y) { return x + y; });
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelReduce)->Arg(1 << 12)->Arg(1 << 18);

void BM_Serialize_FloatArray(benchmark::State& state) {
  Array1<float> a(state.range(0), 1.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::to_bytes(a));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Serialize_FloatArray)->Arg(1 << 12)->Arg(1 << 20);

void BM_Deserialize_FloatArray(benchmark::State& state) {
  Array1<float> a(state.range(0), 1.5f);
  auto bytes = serial::to_bytes(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::from_bytes<Array1<float>>(bytes));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Deserialize_FloatArray)->Arg(1 << 12)->Arg(1 << 20);

void BM_Checksum(benchmark::State& state) {
  std::vector<std::byte> bytes(static_cast<std::size_t>(state.range(0)),
                               std::byte{0x5A});
  for (auto _ : state) {
    benchmark::DoNotOptimize(serial::checksum(bytes));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Checksum)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
