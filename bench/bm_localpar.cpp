// Intra-node runtime comparison: eager-splitting baseline vs the adaptive
// work-stealing runtime on an imbalanced localpar reduction at 8 workers.
//
// The workload is the tpacf triangular loop (paper §3.2 / fig 7): item i
// costs O(i), so a static or eagerly pre-split schedule pays per-task
// overhead on thousands of tiny left-edge chunks while the right edge
// dominates the critical path. The baseline reimplements the runtime this
// PR replaced: every grain-sized chunk materialized up front as a
// heap-allocated std::function, pushed through one mutex-guarded shared
// queue, with notify_all broadcast wakeups — exactly the allocation and
// wakeup traffic the TaskSlot + lazy-splitting + targeted-wake runtime
// removes. Both sides compute the identical chunk-ordered reduction, so
// results are bitwise comparable.
//
// Flags: --workers=N --reps=N --check (CI smoke mode: asserts the
// lazy-splitting invariant — a balanced loop on a busy pool sheds almost
// no tasks to thieves — at 4 workers, and that the streamed grant path
// executes grants and matches the non-streamed sum at 4 ranks).

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "runtime/parallel.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using runtime::index_t;

namespace {

// Many small chunks: per-task overhead (the thing this PR attacks) must be
// a visible fraction of each chunk, or both runtimes just measure sin().
constexpr index_t kItems = 32768;
constexpr index_t kGrain = 2;
constexpr int kMaxIter = 16;  // item kItems-1 does kMaxIter sin iterations

/// Cost of item i: O(i) sin iterations (triangular, tpacf-shaped), scaled
/// so a chunk is sub-microsecond on the left edge of the triangle and the
/// per-task overhead the two runtimes differ on stays visible.
double item_work(index_t i) {
  double v = 0.0;
  const int n = static_cast<int>((i * kMaxIter) / kItems);
  for (int k = 0; k < n; ++k) v += std::sin(v + 1e-3 * k);
  return v;
}

/// Folds [a, b) in ascending order — the chunk body both runtimes share.
double fold_range(index_t a, index_t b, double acc) {
  for (index_t i = a; i < b; ++i) acc += item_work(i);
  return acc;
}

// -- the replaced runtime, preserved as the baseline --------------------------

/// The pre-overhaul execution model: one shared queue of heap-allocated
/// std::function tasks, a single mutex, and notify_all on every submit.
class EagerPool {
 public:
  explicit EagerPool(int nthreads) {
    for (int i = 0; i < nthreads; ++i) {
      threads_.emplace_back([this] { loop(); });
    }
  }

  ~EagerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      pending_ += 1;
    }
    cv_.notify_all();  // the broadcast the adaptive runtime eliminated
  }

  /// Blocks the caller until every submitted task has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [&] { return pending_ == 0; });
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      auto task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      if (--pending_ == 0) drained_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_;
  std::deque<std::function<void()>> queue_;
  index_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// One node of the eager binary split tree over chunk indices [c0, c1):
/// an interior node queues both halves as fresh tasks and returns (the old
/// parallel_for materialized the whole tree before any leaf ran); a leaf
/// computes its grain-sized chunk. Splitting on chunk indices keeps the
/// chunk boundaries — and therefore the combine order and the bits of the
/// result — identical to runtime::parallel_reduce.
void eager_node(EagerPool& pool, std::vector<double>* partials, index_t c0,
                index_t c1, index_t n, index_t grain) {
  if (c1 - c0 == 1) {
    const index_t a = c0 * grain;
    const index_t b = std::min(n, a + grain);
    (*partials)[static_cast<std::size_t>(c0)] = fold_range(a, b, 0.0);
    return;
  }
  const index_t cm = c0 + (c1 - c0) / 2;
  pool.submit([&pool, partials, c0, cm, n, grain] {
    eager_node(pool, partials, c0, cm, n, grain);
  });
  pool.submit([&pool, partials, cm, c1, n, grain] {
    eager_node(pool, partials, cm, c1, n, grain);
  });
}

double eager_reduce(EagerPool& pool, index_t n, index_t grain) {
  const index_t nchunks = (n + grain - 1) / grain;
  std::vector<double> partials(static_cast<std::size_t>(nchunks), 0.0);
  pool.submit([&pool, &partials, nchunks, n, grain] {
    eager_node(pool, &partials, 0, nchunks, n, grain);
  });
  pool.wait_idle();
  double acc = 0.0;
  for (double p : partials) acc += p;
  return acc;
}

double adaptive_reduce(runtime::ThreadPool& pool, index_t n, index_t grain) {
  return runtime::parallel_reduce(
      pool, index_t{0}, n, grain, 0.0, fold_range,
      [](double a, double b) { return a + b; });
}

/// Best-of-reps wall time for one already-constructed pool (construction
/// and teardown excluded from both sides).
template <typename Fn>
double best_seconds(int reps, const Fn& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  }
  return best;
}

// -- CI smoke checks ----------------------------------------------------------

int run_checks() {
  int failures = 0;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    if (!holds) failures += 1;
  };

  // Lazy-splitting invariant: a balanced loop keeps nearly all chunks on
  // the worker that owns the range — steals stay far below executed tasks.
  {
    runtime::ThreadPool pool(4);
    std::atomic<index_t> total{0};
    for (int round = 0; round < 5; ++round) {
      runtime::parallel_for(pool, index_t{0}, index_t{20000}, index_t{10},
                            [&](index_t a, index_t b) {
                              total.fetch_add(b - a,
                                              std::memory_order_relaxed);
                            });
    }
    const auto st = pool.stats();
    check("balanced loop executed every element",
          total.load() == 5 * 20000);
    check("lazy splitting: tasks_stolen << tasks_executed (4 workers)",
          st.tasks_executed > 0 && st.tasks_stolen * 10 < st.tasks_executed);
  }

  // Streamed grant path: grants execute through the node pool while the
  // next grant is in flight, and the sum matches the non-streamed run.
  {
    constexpr index_t kN = 512;
    Array1<double> xs(kN);
    for (index_t i = 0; i < kN; ++i) xs[i] = static_cast<double>(i);
    auto run = [&](bool streaming) {
      sched::SchedOptions opts{sched::SchedulePolicy::kDynamic,
                               sched::CombineMode::kOrdered, 32};
      opts.streaming = streaming;
      double result = 0.0;
      net::SchedStats sched_stats;
      net::NodePoolStats pool_stats;
      auto res = net::Cluster::run(4, [&](net::Comm& comm) {
        dist::NodeRuntime node(2);
        auto make = [&] {
          return core::map(core::from_array(xs), [](double x) {
            double v = 0.0;
            for (int k = 0; k < 64; ++k) v += std::sin(v + 1e-3 * k + x);
            return v;
          });
        };
        double r = dist::reduce(comm, make, 0.0,
                                [](double a, double b) { return a + b; },
                                opts);
        if (comm.rank() == 0) result = r;
      });
      if (!res.ok) {
        std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
        std::exit(1);
      }
      sched_stats = res.total_stats.sched;
      pool_stats = res.total_stats.pool;
      return std::make_tuple(result, sched_stats, pool_stats);
    };
    auto [plain, plain_sched, plain_pool] = run(false);
    auto [streamed, stream_sched, stream_pool] = run(true);
    check("streamed sum bitwise identical to non-streamed (4 ranks)",
          std::memcmp(&plain, &streamed, sizeof(double)) == 0);
    check("streaming executed every chunk as a streamed grant",
          stream_sched.streamed_grants > 0 &&
              stream_sched.streamed_grants == stream_sched.chunks_executed);
    check("non-streamed run records no streamed grants",
          plain_sched.streamed_grants == 0);
    check("node pools did the streamed work",
          stream_pool.tasks_executed > 0);
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 8;
  int reps = 5;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::atoi(arg.c_str() + 7);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (check_only) return run_checks();

  std::printf("== bm_localpar: eager-splitting baseline vs adaptive runtime, "
              "%d workers ==\n", workers);

  const index_t nchunks = (kItems + kGrain - 1) / kGrain;

  double eager_result = 0.0;
  const double t_eager = [&] {
    EagerPool pool(workers);
    return best_seconds(reps, [&] {
      eager_result = eager_reduce(pool, kItems, kGrain);
    });
  }();

  double adaptive_result = 0.0;
  runtime::PoolStats stats;
  const double t_adaptive = [&] {
    runtime::ThreadPool pool(workers);
    const double t = best_seconds(reps, [&] {
      adaptive_result = adaptive_reduce(pool, kItems, kGrain);
    });
    stats = pool.stats();
    return t;
  }();

  const double speedup = t_eager / t_adaptive;

  Table t({"runtime", "tasks alloc'd", "time (s)", "speedup"});
  t.add_row({"eager (heap tasks, broadcast)",
             Table::num(static_cast<std::int64_t>((2 * nchunks - 1) * reps)),
             Table::num(t_eager, 6), "1.00x"});
  t.add_row({"adaptive (inline slots, lazy split)",
             Table::num(stats.tasks_boxed), Table::num(t_adaptive, 6),
             Table::num(speedup, 2) + "x"});
  t.print("imbalanced triangular reduction, " + std::to_string(kItems) +
          " items, grain " + std::to_string(kGrain));

  Table p({"tasks_executed", "tasks_stolen", "splits", "steal_attempts",
           "parks", "wakes"});
  p.add_row({Table::num(stats.tasks_executed), Table::num(stats.tasks_stolen),
             Table::num(stats.splits), Table::num(stats.steal_attempts),
             Table::num(stats.parks), Table::num(stats.wakes)});
  p.print("adaptive-runtime PoolStats over " + std::to_string(reps) + " reps");

  apps::shape_check("results bitwise identical across runtimes",
                    std::memcmp(&eager_result, &adaptive_result,
                                sizeof(double)) == 0);
  apps::shape_check("adaptive runtime >= 1.3x over eager baseline",
                    speedup >= 1.3);
  apps::shape_check("no heap-boxed tasks on the reduction hot path",
                    stats.tasks_boxed == 0);

  // Machine-readable record (bench/BENCH_localpar.json keeps a checked-in
  // copy).
  std::printf("\n{\n");
  std::printf("  \"workload\": {\"items\": %lld, \"grain\": %lld, "
              "\"chunks\": %lld, \"shape\": \"triangular\"},\n",
              static_cast<long long>(kItems), static_cast<long long>(kGrain),
              static_cast<long long>(nchunks));
  std::printf("  \"workers\": %d,\n", workers);
  std::printf("  \"seconds\": {\"eager\": %.6e, \"adaptive\": %.6e},\n",
              t_eager, t_adaptive);
  std::printf("  \"speedup_vs_eager\": %.3f,\n", speedup);
  std::printf("  \"pool_stats\": {\"tasks_executed\": %lld, "
              "\"tasks_stolen\": %lld, \"splits\": %lld, \"parks\": %lld, "
              "\"wakes\": %lld, \"tasks_boxed\": %lld},\n",
              static_cast<long long>(stats.tasks_executed),
              static_cast<long long>(stats.tasks_stolen),
              static_cast<long long>(stats.splits),
              static_cast<long long>(stats.parks),
              static_cast<long long>(stats.wakes),
              static_cast<long long>(stats.tasks_boxed));
  std::printf("  \"results_bitwise_identical\": %s\n",
              std::memcmp(&eager_result, &adaptive_result, sizeof(double)) == 0
                  ? "true" : "false");
  std::printf("}\n");
  return 0;
}
