// Microbenchmarks of the tree-structured collectives: broadcast / reduce /
// allreduce swept over rank counts and payload sizes, on real SPMD rank
// threads. Each benchmark also reports structural counters derived from the
// per-collective CommStats so the O(log P) critical path is visible in the
// output, not just the wall clock:
//
//   depth_msgs       broadcast: the busiest rank's sends (the root forwards
//                    ceil(log2 P) times); reduce: the root's receives
//                    (it merges ceil(log2 P) subtree partials)
//   root_recv_bytes  reduce: bytes arriving at rank 0 — ceil(log2 P)
//                    payloads for the tree vs P-1 for the linear-order
//                    reduce_ordered baseline
//
// Baseline numbers are recorded in bench/BENCH_collectives.json.

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "net/cluster.hpp"

namespace {

using namespace triolet;

/// Runs `body` once and returns every rank's CommStats.
std::vector<net::CommStats> probe(
    int ranks, const std::function<void(net::Comm&)>& body) {
  std::vector<net::CommStats> stats(static_cast<std::size_t>(ranks));
  auto res = net::Cluster::run(ranks, [&](net::Comm& c) {
    body(c);
    stats[static_cast<std::size_t>(c.rank())] = c.stats();
  });
  if (!res.ok) stats.clear();
  return stats;
}

std::vector<double> payload_of(std::int64_t elems) {
  return std::vector<double>(static_cast<std::size_t>(elems), 1.25);
}

void elementwise_add(std::vector<double>& a, const std::vector<double>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

constexpr int kOpsPerRun = 8;  // collectives per cluster launch, to amortize
                               // rank-thread spawn cost

void BM_Coll_Broadcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto elems = state.range(1);
  auto v0 = payload_of(elems);
  auto stats = probe(ranks, [&](net::Comm& c) {
    auto v = c.rank() == 0 ? v0 : std::vector<double>{};
    c.broadcast(v, 0);
  });
  std::int64_t depth = 0;
  for (const auto& s : stats) {
    depth = std::max(depth,
                     s.collective(net::Collective::kBroadcast).messages_sent);
  }
  for (auto _ : state) {
    auto res = net::Cluster::run(ranks, [&](net::Comm& c) {
      for (int i = 0; i < kOpsPerRun; ++i) {
        auto v = c.rank() == 0 ? v0 : std::vector<double>{};
        c.broadcast(v, 0);
        benchmark::DoNotOptimize(v);
      }
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerRun *
                          static_cast<std::int64_t>(elems) * 8);
  state.counters["depth_msgs"] = static_cast<double>(depth);
}
BENCHMARK(BM_Coll_Broadcast)
    ->ArgNames({"ranks", "elems"})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->Args({16, 4096})
    ->Args({32, 4096});

void reduce_arrays(net::Comm& c, const std::vector<double>& mine,
                   bool ordered) {
  auto op = [](std::vector<double> a, const std::vector<double>& b) {
    elementwise_add(a, b);
    return a;
  };
  if (ordered) {
    benchmark::DoNotOptimize(c.reduce_ordered(mine, op, 0));
  } else {
    benchmark::DoNotOptimize(c.reduce(mine, op, 0));
  }
}

void bm_reduce_impl(benchmark::State& state, bool ordered) {
  const int ranks = static_cast<int>(state.range(0));
  const auto elems = state.range(1);
  auto mine = payload_of(elems);
  auto stats = probe(ranks, [&](net::Comm& c) {
    reduce_arrays(c, mine, ordered);
  });
  const auto& root = stats.at(0).collective(net::Collective::kReduce);
  for (auto _ : state) {
    auto res = net::Cluster::run(ranks, [&](net::Comm& c) {
      for (int i = 0; i < kOpsPerRun; ++i) reduce_arrays(c, mine, ordered);
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerRun *
                          static_cast<std::int64_t>(elems) * 8);
  state.counters["depth_msgs"] = static_cast<double>(root.messages_received);
  state.counters["root_recv_bytes"] = static_cast<double>(root.bytes_received);
}

void BM_Coll_Reduce(benchmark::State& state) { bm_reduce_impl(state, false); }
BENCHMARK(BM_Coll_Reduce)
    ->ArgNames({"ranks", "elems"})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->Args({16, 4096})
    ->Args({32, 4096})
    ->Args({16, 65536});

/// The linear combine-order fallback: same transport substrate, but all
/// P-1 payloads funnel into the root (the pre-tree root-bandwidth cost).
void BM_Coll_ReduceOrderedBaseline(benchmark::State& state) {
  bm_reduce_impl(state, true);
}
BENCHMARK(BM_Coll_ReduceOrderedBaseline)
    ->ArgNames({"ranks", "elems"})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->Args({16, 4096})
    ->Args({32, 4096})
    ->Args({16, 65536});

void BM_Coll_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto elems = state.range(1);
  auto mine = payload_of(elems);
  auto op = [](std::vector<double> a, const std::vector<double>& b) {
    elementwise_add(a, b);
    return a;
  };
  auto stats = probe(ranks, [&](net::Comm& c) {
    benchmark::DoNotOptimize(c.allreduce(mine, op));
  });
  std::int64_t max_msgs = 0;
  for (const auto& s : stats) {
    max_msgs = std::max(
        max_msgs, s.collective(net::Collective::kAllreduce).messages_sent);
  }
  for (auto _ : state) {
    auto res = net::Cluster::run(ranks, [&](net::Comm& c) {
      for (int i = 0; i < kOpsPerRun; ++i) {
        benchmark::DoNotOptimize(c.allreduce(mine, op));
      }
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetBytesProcessed(state.iterations() * kOpsPerRun *
                          static_cast<std::int64_t>(elems) * 8);
  state.counters["depth_msgs"] = static_cast<double>(max_msgs);
}
BENCHMARK(BM_Coll_Allreduce)
    ->ArgNames({"ranks", "elems"})
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->Args({16, 4096})
    ->Args({32, 4096})
    ->Args({7, 4096});  // non-power-of-two: fold-in/fold-out path

void BM_Coll_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = net::Cluster::run(ranks, [](net::Comm& c) {
      for (int i = 0; i < 32; ++i) c.barrier();
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Coll_Barrier)->ArgName("ranks")->Arg(4)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
