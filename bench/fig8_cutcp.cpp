// Figure 8: scalability and performance of cutcp.
//
// Paper shape: performance saturates quickly for Triolet and C+MPI+OpenMP —
// summing the large output grids dominates execution — with Triolet below C
// (allocation overhead on the tens-of-MB result messages, ~60% of its
// 8-node execution time in the paper's analysis).

#include <cmath>
#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"

using namespace triolet;
using namespace triolet::apps;

int main() {
  std::printf("== Figure 8: cutcp scalability ==\n");
  auto p = bench::cutcp_problem();
  std::printf("problem: %lld atoms onto a %lldx%lldx%lld grid, cutoff %.2f\n",
              static_cast<long long>(p.atoms.size()),
              static_cast<long long>(p.grid.nx),
              static_cast<long long>(p.grid.ny),
              static_cast<long long>(p.grid.nz),
              static_cast<double>(p.grid.cutoff));

  CutcpMeasured m = measure_cutcp(p, bench::kCutcpUnits);
  std::printf("sequential seconds: C=%.4f Triolet=%.4f Eden=%.4f\n", m.seq_c,
              m.seq_triolet, m.seq_eden);

  // Speedup denominator: the C loop code measured identically to the
  // parallel task times (whole-program seq times are reported above).
  const double denom = seq_equivalent_seconds(m.lowlevel);

  std::vector<ScalingSeries> series{
      run_series(m.lowlevel, bench::kNodes, bench::kCoresPerNode),
      run_series(m.triolet, bench::kNodes, bench::kCoresPerNode),
      run_series(m.eden, bench::kNodes, bench::kCoresPerNode),
  };
  print_figure("Figure 8: cutcp", denom, series);

  const double su_c = final_speedup(series[0], denom);
  const double su_t = final_speedup(series[1], denom);
  const double su_e = final_speedup(series[2], denom);
  std::printf("\nat 128 cores: C+MPI+OpenMP=%.1fx Triolet=%.1fx Eden=%.1fx\n",
              su_c, su_t, su_e);

  auto speedup_at = [&](const ScalingSeries& s, int cores) {
    for (const auto& pt : s.points) {
      if (pt.cores == cores && !pt.failed()) return denom / pt.seconds;
    }
    return std::nan("");
  };
  shape_check("performance saturates quickly (<40% gain 64 -> 128 cores)",
              speedup_at(series[1], 128) < 1.4 * speedup_at(series[1], 64) &&
                  speedup_at(series[0], 128) < 1.4 * speedup_at(series[0], 64));
  shape_check("C+MPI+OpenMP above Triolet (allocation overhead)",
              su_c >= su_t);
  shape_check("Triolet within 23-100% of C+MPI+OpenMP at 128 cores",
              su_t >= 0.23 * su_c && su_t <= 1.05 * su_c);
  shape_check("Eden below both", su_e < su_t && su_e < su_c);

  // "Approximately 60% of Triolet's execution time at 8 nodes arises from
  // allocation overhead" (§4.5): re-simulate with malloc-like allocation.
  {
    MeasuredSystem no_gc = m.triolet;
    no_gc.net.alloc_multiplier = 1.0;
    double t_gc = simulate_point(m.triolet, 8, 16).seconds;
    double t_malloc = simulate_point(no_gc, 8, 16).seconds;
    double share = (t_gc - t_malloc) / t_gc;
    std::printf("\nallocation share of Triolet's 8-node time: %.0f%% "
                "(paper: ~60%%)\n",
                100.0 * share);
    shape_check("allocation dominates Triolet's 8-node cutcp time (>30%)",
                share > 0.30);
  }
  return 0;
}
