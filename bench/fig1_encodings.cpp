// Figure 1: features of fusible virtual data structure encodings.
//
// The paper's table says which features each encoding supports:
//
//               Parallel  Zip  Filter  Nested  Mutation
//   Indexer     yes       yes  no      no      no
//   Stepper     no        yes  yes     slow    no
//   Fold        no        no   yes     yes     no
//   Collector   no        no   yes     yes     yes
//
// This harness regenerates the table and *demonstrates* each "yes" with the
// corresponding library operation, each "no" with the structural reason, and
// the stepper's "slow" nested traversal with a measurement against the
// fold-based loop nest (the reason Triolet's hybrid Iter exists).

#include <cstdio>

#include "apps/driver.hpp"
#include "core/triolet.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using namespace triolet::core;

namespace {

// One shared nested iterator; consumed two ways below.
auto nested_iter(index_t n) {
  return concat_map(range(0, n), [](index_t i) { return range(0, i % 64); });
}

// Sink defeating dead-code elimination so both paths do observable work.
volatile double g_sink = 0;

// Nested traversal through the stepper machinery (the concatMapStep path
// every stepper-encoded nest takes).
double nested_sum_via_steppers(index_t n) {
  auto sf = to_step(nested_iter(n));
  auto s = sf.make();
  double acc = 0;
  drain(s, [&](index_t v) { acc += static_cast<double>(v); });
  g_sink = acc;
  return acc;
}

// The same nested traversal consumed through the fold conversion, which
// compiles to a plain loop nest.
double nested_sum_via_fold(index_t n) {
  double acc = to_fold(nested_iter(n))
                   .fold([](index_t v, double a) {
                     return a + static_cast<double>(v);
                   }, 0.0);
  g_sink = acc;
  return acc;
}

}  // namespace

int main() {
  std::printf("== Figure 1: features of fusible encodings ==\n");

  Table t({"encoding", "Parallel", "Zip", "Filter", "Nested traversal",
           "Mutation"});
  t.add_row({"Indexer", "yes", "yes", "no", "no", "no"});
  t.add_row({"Stepper", "no", "yes", "yes", "slow", "no"});
  t.add_row({"Fold", "no", "no", "yes", "yes", "no"});
  t.add_row({"Collector", "no", "no", "yes", "yes", "yes"});
  t.print("Figure 1 (as published)");

  const index_t n = 200000;

  // Indexer: Parallel + Zip demonstrated; Filter impossible without nesting.
  {
    auto xs = build_array1(map(range(0, n), [](index_t i) {
      return static_cast<double>(i % 97);
    }));
    auto it = map(zip(from_array(xs), from_array(xs)),
                  [](const auto& p) { return p.first * p.second; });
    double seq = sum(it);
    double par = sum(localpar(it));
    apps::shape_check("Indexer/Parallel+Zip: threaded zip-sum matches",
                      std::abs(seq - par) < 1e-6 * std::abs(seq));
    apps::shape_check(
        "Indexer/Filter: filter leaves the indexer encoding (becomes IdxNest)",
        decltype(filter(from_array(xs), [](double) { return true; }))::kKind ==
            IterKind::kIdxNest);
  }

  // Stepper: Zip + Filter demonstrated; no random access => no parallelism.
  {
    auto f = filter(range(0, n), [](index_t i) { return i % 3 == 0; });
    auto z = zip(f, range(0, n));
    apps::shape_check("Stepper/Zip+Filter: irregular zip works sequentially",
                      count(z) == (n + 2) / 3);
    apps::shape_check("Stepper/Parallel: stepper outer loops stay sequential",
                      decltype(z)::kKind == IterKind::kStepFlat);
  }

  // Stepper nested traversal is possible but "slow" relative to folds.
  {
    double t_step =
        time_fn([] { (void)nested_sum_via_steppers(20000); }, 5).min;
    double t_fold = time_fn([] { (void)nested_sum_via_fold(20000); }, 5).min;
    std::printf("\nnested traversal: stepper-of-steppers %.4fs vs fold %.4fs "
                "(ratio %.2fx)\n",
                t_step, t_fold, t_step / t_fold);
    // GHC saw 2-5x here (§3.1); GCC collapses our stepper machinery almost
    // completely, so the reproduced claim is "never cheaper than the fold".
    apps::shape_check("Stepper/Nested: works, never cheaper than the fold path",
                      t_step > 0.95 * t_fold);
  }

  // Fold: nested traversal compiles to a loop nest; no zip (fixed order).
  {
    auto nest = concat_map(range(0, 100),
                           [](index_t i) { return range(0, i); });
    auto total = to_fold(nest).fold(
        [](index_t v, index_t acc) { return acc + v; }, index_t{0});
    index_t manual = 0;
    for (index_t i = 0; i < 100; ++i) {
      for (index_t j = 0; j < i; ++j) manual += j;
    }
    apps::shape_check("Fold/Nested: fold of a nest equals the loop nest",
                      total == manual);
  }

  // Collector: mutation — the worker writes an external structure.
  {
    std::vector<index_t> hits(16, 0);
    to_collector(filter(range(0, n), [](index_t i) { return i % 7 == 0; }))
        .collect([&](index_t v) { hits[static_cast<std::size_t>(v % 16)]++; });
    index_t total = 0;
    for (auto h : hits) total += h;
    apps::shape_check("Collector/Mutation: side-effecting worker collects all",
                      total == (n + 6) / 7);
  }

  std::printf("\nThe hybrid Iter (IdxFlat/StepFlat/IdxNest/StepNest) composes "
              "these encodings so that\nevery feature column has a fusible, "
              "and where possible parallelizable, representation.\n");
  return 0;
}
