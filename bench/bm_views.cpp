// Fused distributed views vs an eagerly materialized intermediate on an
// iterative zip-transform-reduce pipeline at 8 ranks.
//
// The pipeline is sum(transform(zip(a, slice(b, 0, n)), f)). The fused
// variant keeps it a view: the grant payload is the source *descriptor*
// tree, and each resident leaf either inlines once (cold) or ships as an
// 8-byte token (warm) — CommStats.views counts what a materializing system
// would have moved. The materialized variant does what skeleton systems
// without view fusion do: build the intermediate c[i] = f(a[i], b[i]) as a
// real distributed round (dist::build_array1 through the same scheduler),
// then reduce it — paying the intermediate's scatter every round.
//
// Measured: rank-0 wall time of the round loop, per-round cluster-wide
// bytes (snapshot deltas), and the warm-round payload of the fused variant,
// which must be tokens plus headers — *no* element data. Both variants
// reduce under identical kOrdered atoms, so the scalars match bitwise.
//
// Flags: --ranks=N --rounds=N --check (CI smoke: small n, no timing
// thresholds; exit 1 unless warm fused rounds are token-only and the
// variants agree bitwise).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/skeletons.hpp"
#include "dist/views.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using core::index_t;

namespace {

double fuse(const std::pair<double, double>& p) {
  return p.first * p.second + 0.5 * p.first;
}

struct RunResult {
  double seconds = 0;
  double result = 0;
  std::int64_t bytes_sent = 0;
  net::ResidencyStats residency;
  net::ViewStats views;
  std::vector<std::int64_t> round_bytes;  // cluster-wide, per round
};

/// `rounds` iterations of the fused pipeline over resident a and b.
RunResult run_fused(int ranks, int rounds, const Array1<double>& av,
                    const Array1<double>& bv, index_t grain) {
  net::set_slice_cache_budget(std::size_t{512} << 20);
  const index_t n = av.size();
  dist::DistArray<double> da{Array1<double>(av)};
  dist::DistArray<double> db{Array1<double>(bv)};
  RunResult out;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    dist::NodeRuntime node(1);
    sched::SchedOptions opts;
    opts.policy = sched::SchedulePolicy::kStatic;
    opts.combine = sched::CombineMode::kOrdered;
    opts.grain = grain;
    comm.barrier();
    Stopwatch sw;
    double acc = 0;
    std::vector<net::CommStats> my_rounds;
    for (int r = 0; r < rounds; ++r) {
      auto make = [&] {
        return dist::transform(dist::zip(da, dist::slice(db, 0, n)), fuse);
      };
      const net::CommStats before = comm.snapshot_stats();
      const double s = dist::sum(comm, make, opts);
      my_rounds.push_back(comm.snapshot_stats() - before);
      if (comm.rank() == 0) acc += s;
    }
    comm.barrier();
    if (comm.rank() == 0) {
      out.seconds = sw.seconds();
      out.result = acc;
    }
    auto all = comm.allgather(my_rounds);
    if (comm.rank() == 0) {
      for (int r = 0; r < rounds; ++r) {
        net::CommStats sum{};
        for (const auto& per_rank : all) {
          sum += per_rank[static_cast<std::size_t>(r)];
        }
        out.round_bytes.push_back(sum.bytes_sent);
      }
    }
  });
  net::set_slice_cache_budget(~std::size_t{0});
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  out.bytes_sent = res.total_stats.bytes_sent;
  out.residency = res.total_stats.residency;
  out.views = res.total_stats.views;
  return out;
}

/// The materializing pipeline: every round builds the intermediate array
/// through the scheduler (a real distributed round whose parts ship back to
/// the root), then reduces the same kOrdered atoms over it.
RunResult run_materialized(int ranks, int rounds, const Array1<double>& av,
                           const Array1<double>& bv, index_t grain) {
  net::set_slice_cache_budget(std::size_t{512} << 20);
  const index_t n = av.size();
  dist::DistArray<double> da{Array1<double>(av)};
  dist::DistArray<double> db{Array1<double>(bv)};
  RunResult out;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    dist::NodeRuntime node(1);
    sched::SchedOptions opts;
    opts.policy = sched::SchedulePolicy::kStatic;
    opts.combine = sched::CombineMode::kOrdered;
    opts.grain = grain;
    comm.barrier();
    Stopwatch sw;
    double acc = 0;
    for (int r = 0; r < rounds; ++r) {
      // Build c = f(zip(a, b[0:n])) as a materialized distributed array,
      // then reduce it — the intermediate's elements cross the wire twice
      // (parts to the root, then scatter for the reduce).
      auto build = [&] {
        return dist::transform(dist::zip(da, dist::slice(db, 0, n)), fuse);
      };
      Array1<double> c = sched::build_array1(comm, build, opts);
      dist::DistArray<double> dc{std::move(c)};
      const double s = dist::sum(
          comm, [&] { return dist::from_resident(dc); }, opts);
      if (comm.rank() == 0) acc += s;
    }
    comm.barrier();
    if (comm.rank() == 0) {
      out.seconds = sw.seconds();
      out.result = acc;
    }
  });
  net::set_slice_cache_budget(~std::size_t{0});
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  out.bytes_sent = res.total_stats.bytes_sent;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = bench::kNodes;
  int rounds = 6;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = std::atoi(arg.c_str() + 9);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const index_t n = check_only ? (1 << 14) : (1 << 19);

  std::printf("== bm_views: fused view pipeline vs materialized "
              "intermediate, %d ranks, %d rounds, n=%lld ==\n",
              ranks, rounds, static_cast<long long>(n));

  Xoshiro256 rng(91);
  Array1<double> av(n), bv(2 * n);
  for (index_t i = 0; i < n; ++i) av[i] = rng.uniform(-1.0, 1.0);
  for (index_t i = 0; i < 2 * n; ++i) bv[i] = rng.uniform(-1.0, 1.0);
  const index_t grain = 256;

  (void)run_fused(ranks, 2, av, bv, grain);  // warm-up
  RunResult fused = run_fused(ranks, rounds, av, bv, grain);
  RunResult mat = run_materialized(ranks, rounds, av, bv, grain);

  const double speedup = mat.seconds / fused.seconds;
  const auto& vs = fused.views;

  Table t({"variant", "time (s)", "speedup", "bytes sent", "view tokens",
           "view bytes avoided"});
  t.add_row({"materialized intermediate", Table::num(mat.seconds, 4), "1.00x",
             Table::num(mat.bytes_sent), "0", "0"});
  t.add_row({"fused views", Table::num(fused.seconds, 4),
             Table::num(speedup, 2) + "x", Table::num(fused.bytes_sent),
             Table::num(vs.view_tokens), Table::num(vs.view_bytes_avoided)});
  t.print("zip-transform-reduce, " + std::to_string(rounds) + " rounds, " +
          std::to_string(ranks) + " ranks");

  bool ok = true;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    ok = ok && holds;
  };
  check("fused and materialized results bitwise identical",
        std::memcmp(&fused.result, &mat.result, sizeof(double)) == 0);
  check("warm fused rounds tokenize every leaf (view_tokens > 0)",
        vs.view_tokens > 0);
  check("view_bytes_avoided matches residency bytes_avoided",
        vs.view_bytes_avoided == fused.residency.bytes_avoided);
  // The intermediate-payload claim: a warm fused round's cluster-wide
  // traffic is tokens + protocol headers — orders of magnitude under one
  // round's element payload (both leaves, 3 of `ranks` worker slices).
  const std::int64_t payload_per_round =
      static_cast<std::int64_t>(2 * n * sizeof(double)) * (ranks - 1) /
      ranks;
  check("warm fused round ships < 2% of the element payload",
        fused.round_bytes.size() >= 2 &&
            fused.round_bytes.back() * 50 < payload_per_round);
  check("cold fused round shipped the real payload once",
        fused.round_bytes.front() > payload_per_round / 2);
  check("no fetch fallbacks on the clean path",
        fused.residency.fetches == 0);
  if (!check_only) {
    check("fused >= 1.2x over materialized", speedup >= 1.2);
  }

  std::printf("\n{\n");
  std::printf("  \"workload\": {\"n\": %lld, \"rounds\": %d, \"ranks\": %d, "
              "\"grain\": %lld},\n",
              static_cast<long long>(n), rounds, ranks,
              static_cast<long long>(grain));
  std::printf("  \"seconds\": {\"materialized\": %.4f, \"fused\": %.4f},\n",
              mat.seconds, fused.seconds);
  std::printf("  \"speedup_fused_vs_materialized\": %.3f,\n", speedup);
  std::printf("  \"bytes_sent\": {\"materialized\": %lld, \"fused\": "
              "%lld},\n",
              static_cast<long long>(mat.bytes_sent),
              static_cast<long long>(fused.bytes_sent));
  std::printf("  \"fused_round_bytes\": [");
  for (std::size_t i = 0; i < fused.round_bytes.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(fused.round_bytes[i]));
  }
  std::printf("],\n");
  std::printf("  \"views\": {\"view_tokens\": %lld, \"view_bytes_avoided\": "
              "%lld},\n",
              static_cast<long long>(vs.view_tokens),
              static_cast<long long>(vs.view_bytes_avoided));
  std::printf("  \"results_bitwise_identical\": %s\n", ok ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}
