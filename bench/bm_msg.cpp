// The messaging data plane vs the mutex mailbox baseline, head to head.
//
// Three traffic shapes, each run on both Transport backends ("ring" is the
// lock-free data plane of net/ring_transport.hpp; "mailbox" is the original
// one-mutex-one-condvar queue per rank with O(pending) linear matching):
//
//   storm      many-to-one small-message storm at P ranks: every non-root
//              rank fires a burst of tiny messages at rank 0, which
//              receives them round-robin by source — so the pending set is
//              deep and interleaved, the case the match table turns from an
//              O(pending) scan under a lock into a hash lookup. Metric:
//              delivered messages per second.
//   pingpong   two ranks bouncing one eager-sized payload: the latency
//              floor of a send/receive pair (spin-then-park wait, pooled
//              slab reuse). Metric: seconds per round trip.
//   bulk       two ranks exchanging rendezvous-sized payloads: ownership
//              handoff must make large-message cost flat per message, not
//              per byte copied twice. Metric: bytes per second.
//
// Structural checks (both modes): per-(src, tag) FIFO transcripts bitwise
// identical across backends, a kOrdered spiky-sum bitwise identical across
// backends, eager/rendezvous counters classifying the traffic as sized,
// steady-state sends allocation-free (pool misses flat after warmup), and
// the buffer pool balanced after every cluster teardown. Timing thresholds
// (the >= 3x storm-rate claim) apply only outside --check.
//
// Flags: --ranks=N --rounds=N --check (CI smoke mode: small problem, no
// timing thresholds, exit 1 unless the structural checks hold).
// Baseline numbers are recorded in bench/BENCH_msg.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "net/cluster.hpp"
#include "net/pool.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;

namespace {

struct Shape {
  int ranks = bench::kNodes;
  int storm_msgs = 2000;     // messages per sender in the storm
  int pingpong_rounds = 20000;
  int bulk_rounds = 200;
  std::size_t bulk_bytes = 1 << 20;  // well past the eager threshold
};

net::ClusterOptions options_for(const std::string& backend) {
  net::ClusterOptions o;
  o.transport = backend;
  return o;
}

struct StormResult {
  double seconds = 0.0;
  std::int64_t messages = 0;
  net::MsgStats msg;
  std::vector<int> transcript;  // rank 0's receive order, per-src sequences
};

/// Many-to-one storm: ranks 1..P-1 each send `n` tiny messages to rank 0 on
/// a per-source tag; rank 0 receives round-robin across sources, so nearly
/// the whole pending set sits between any receive and its match.
StormResult run_storm(const std::string& backend, int ranks, int n) {
  StormResult out;
  Stopwatch clock;
  auto res = net::Cluster::run(ranks, [&](net::Comm& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < n; ++i) {
        c.send(0, 10 + c.rank(), c.rank() * 1000000 + i);
      }
      return;
    }
    out.transcript.reserve(static_cast<std::size_t>(n * (ranks - 1)));
    for (int i = 0; i < n; ++i) {
      for (int src = 1; src < ranks; ++src) {
        out.transcript.push_back(c.recv<int>(src, 10 + src));
      }
    }
    out.msg = c.snapshot_stats().msg;
  }, options_for(backend));
  out.seconds = clock.seconds();
  if (!res.ok) {
    std::fprintf(stderr, "storm(%s) failed: %s\n", backend.c_str(),
                 res.error.c_str());
    std::exit(1);
  }
  out.messages = static_cast<std::int64_t>(n) * (ranks - 1);
  out.msg = res.total_stats.msg;
  return out;
}

/// Two-rank eager ping-pong; returns seconds per round trip.
double run_pingpong(const std::string& backend, int rounds) {
  Stopwatch clock;
  auto res = net::Cluster::run(2, [&](net::Comm& c) {
    const int peer = 1 - c.rank();
    std::vector<std::byte> ball(256);
    for (int i = 0; i < rounds; ++i) {
      if (c.rank() == 0) {
        c.send_bytes(peer, 3, ball);
        ball = std::move(c.recv_message(peer, 3).payload).take_vector();
      } else {
        ball = std::move(c.recv_message(peer, 3).payload).take_vector();
        c.send_bytes(peer, 3, ball);
      }
    }
  }, options_for(backend));
  const double secs = clock.seconds();
  if (!res.ok) {
    std::fprintf(stderr, "pingpong(%s) failed: %s\n", backend.c_str(),
                 res.error.c_str());
    std::exit(1);
  }
  return secs / rounds;
}

struct BulkResult {
  double bytes_per_second = 0.0;
  net::MsgStats msg;
};

/// Two-rank rendezvous exchange of `bytes`-sized payloads.
BulkResult run_bulk(const std::string& backend, int rounds,
                    std::size_t bytes) {
  BulkResult out;
  Stopwatch clock;
  auto res = net::Cluster::run(2, [&](net::Comm& c) {
    const int peer = 1 - c.rank();
    std::vector<std::byte> blob(bytes, std::byte{0x5A});
    for (int i = 0; i < rounds; ++i) {
      if (c.rank() == 0) {
        c.send_bytes(peer, 4, std::move(blob));
        blob = std::move(c.recv_message(peer, 4).payload).take_vector();
      } else {
        blob = std::move(c.recv_message(peer, 4).payload).take_vector();
        c.send_bytes(peer, 4, std::move(blob));
      }
    }
  }, options_for(backend));
  const double secs = clock.seconds();
  if (!res.ok) {
    std::fprintf(stderr, "bulk(%s) failed: %s\n", backend.c_str(),
                 res.error.c_str());
    std::exit(1);
  }
  out.bytes_per_second =
      static_cast<double>(bytes) * 2.0 * rounds / secs;  // both directions
  out.msg = res.total_stats.msg;
  return out;
}

/// kOrdered witness: a linear left fold of mixed-magnitude doubles, so any
/// transport-induced reorder flips low bits.
double run_ordered_sum(const std::string& backend, int ranks) {
  double out = 0.0;
  auto res = net::Cluster::run(ranks, [&](net::Comm& c) {
    const double mine = (c.rank() + 1) * 1e-13 + c.rank() * 1e5;
    const double r =
        c.reduce_ordered(mine, [](double a, double b) { return a + b; });
    if (c.rank() == 0) out = r;
  }, options_for(backend));
  if (!res.ok) {
    std::fprintf(stderr, "ordered(%s) failed: %s\n", backend.c_str(),
                 res.error.c_str());
    std::exit(1);
  }
  return out;
}

/// Steady-state allocation probe on the ring plane: pool misses must stay
/// flat once the caches are warm. Returns (misses during measured phase).
std::int64_t run_steady_state_misses(int warmup, int measured) {
  std::int64_t delta = -1;
  auto res = net::Cluster::run(2, [&](net::Comm& c) {
    const int peer = 1 - c.rank();
    std::vector<std::byte> ball(512);
    auto ping_pong = [&](int rounds) {
      for (int i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.send_bytes(peer, 3, ball);
          ball = std::move(c.recv_message(peer, 3).payload).take_vector();
        } else {
          ball = std::move(c.recv_message(peer, 3).payload).take_vector();
          c.send_bytes(peer, 3, ball);
        }
      }
    };
    ping_pong(warmup);
    c.barrier();
    const std::int64_t at_warm = c.snapshot_stats().msg.pool_misses;
    ping_pong(measured);
    c.barrier();
    if (c.rank() == 0) delta = c.snapshot_stats().msg.pool_misses - at_warm;
  }, options_for("ring"));
  if (!res.ok) {
    std::fprintf(stderr, "steady-state probe failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  Shape shape;
  bool check_only = false;
  int rounds_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) {
      shape.ranks = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds_override = std::atoi(arg.c_str() + 9);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (check_only) {
    shape.storm_msgs = 300;
    shape.pingpong_rounds = 2000;
    shape.bulk_rounds = 30;
  }
  if (rounds_override > 0) shape.storm_msgs = rounds_override;

  std::printf("== bm_msg: ring data plane vs mailbox baseline, %d ranks ==\n",
              shape.ranks);

  const std::int64_t pool_before = net::BufferPool::instance().outstanding();

  // Warm up both backends (thread spawn paths, pool depots, first-touch).
  (void)run_storm("ring", shape.ranks, 50);
  (void)run_storm("mailbox", shape.ranks, 50);

  StormResult storm_ring = run_storm("ring", shape.ranks, shape.storm_msgs);
  StormResult storm_mbox = run_storm("mailbox", shape.ranks, shape.storm_msgs);
  const double rate_ring = storm_ring.messages / storm_ring.seconds;
  const double rate_mbox = storm_mbox.messages / storm_mbox.seconds;
  const double storm_speedup = rate_ring / rate_mbox;

  const double pp_ring = run_pingpong("ring", shape.pingpong_rounds);
  const double pp_mbox = run_pingpong("mailbox", shape.pingpong_rounds);

  BulkResult bulk_ring = run_bulk("ring", shape.bulk_rounds, shape.bulk_bytes);
  BulkResult bulk_mbox =
      run_bulk("mailbox", shape.bulk_rounds, shape.bulk_bytes);

  Table t({"backend", "storm msgs/s", "pingpong s/rt", "bulk GB/s"});
  t.add_row({"mailbox", Table::num(rate_mbox, 0), Table::num(pp_mbox, 8),
             Table::num(bulk_mbox.bytes_per_second / 1e9, 2)});
  t.add_row({"ring", Table::num(rate_ring, 0), Table::num(pp_ring, 8),
             Table::num(bulk_ring.bytes_per_second / 1e9, 2)});
  t.print("message plane, " + std::to_string(shape.ranks) + " ranks, " +
          std::to_string(shape.storm_msgs) + " msgs/sender storm");
  std::printf("storm rate: %.2fx mailbox; pingpong: %.2fx lower latency\n",
              storm_speedup, pp_ring > 0 ? pp_mbox / pp_ring : 0.0);

  const double ordered_ring = run_ordered_sum("ring", shape.ranks);
  const double ordered_mbox = run_ordered_sum("mailbox", shape.ranks);
  const std::int64_t steady_misses = run_steady_state_misses(100, 400);

  bool ok = true;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    ok = ok && holds;
  };
  check("per-(src, tag) FIFO transcript bitwise identical ring vs mailbox",
        storm_ring.transcript == storm_mbox.transcript &&
            !storm_ring.transcript.empty());
  check("kOrdered spiky sum bitwise identical ring vs mailbox",
        std::memcmp(&ordered_ring, &ordered_mbox, sizeof(double)) == 0);
  check("storm traffic classified eager on the ring plane",
        storm_ring.msg.eager_msgs >= storm_ring.messages);
  check("bulk traffic classified rendezvous on the ring plane",
        bulk_ring.msg.rendezvous_msgs >= 2 * shape.bulk_rounds);
  check("steady-state sends are allocation-free (pool misses flat)",
        steady_misses == 0);
  check("buffer pool balanced after every teardown",
        net::BufferPool::instance().outstanding() == pool_before);
  if (!check_only) {
    check("small-message storm rate >= 3x mailbox at " +
              std::to_string(shape.ranks) + " ranks",
          storm_speedup >= 3.0);
  }

  // Machine-readable record (bench/BENCH_msg.json keeps a checked-in copy).
  std::printf("\n{\n");
  std::printf("  \"workload\": {\"ranks\": %d, \"storm_msgs_per_sender\": %d, "
              "\"pingpong_rounds\": %d, \"bulk_rounds\": %d, \"bulk_bytes\": "
              "%lld},\n",
              shape.ranks, shape.storm_msgs, shape.pingpong_rounds,
              shape.bulk_rounds, static_cast<long long>(shape.bulk_bytes));
  std::printf("  \"storm_msgs_per_second\": {\"mailbox\": %.0f, \"ring\": "
              "%.0f},\n",
              rate_mbox, rate_ring);
  std::printf("  \"storm_speedup\": %.2f,\n", storm_speedup);
  std::printf("  \"pingpong_seconds_per_roundtrip\": {\"mailbox\": %.3e, "
              "\"ring\": %.3e},\n",
              pp_mbox, pp_ring);
  std::printf("  \"bulk_bytes_per_second\": {\"mailbox\": %.3e, \"ring\": "
              "%.3e},\n",
              bulk_mbox.bytes_per_second, bulk_ring.bytes_per_second);
  std::printf("  \"ring_msg_counters\": {\"eager_msgs\": %lld, "
              "\"rendezvous_msgs\": %lld, \"pool_hits\": %lld, "
              "\"pool_misses\": %lld, \"ring_full_stalls\": %lld},\n",
              static_cast<long long>(storm_ring.msg.eager_msgs),
              static_cast<long long>(storm_ring.msg.rendezvous_msgs),
              static_cast<long long>(storm_ring.msg.pool_hits),
              static_cast<long long>(storm_ring.msg.pool_misses),
              static_cast<long long>(storm_ring.msg.ring_full_stalls));
  std::printf("  \"steady_state_pool_misses\": %lld,\n",
              static_cast<long long>(steady_misses));
  std::printf("  \"ordered_results_bitwise_identical\": %s\n",
              std::memcmp(&ordered_ring, &ordered_mbox, sizeof(double)) == 0
                  ? "true"
                  : "false");
  std::printf("}\n");

  return ok ? 0 : 1;
}
