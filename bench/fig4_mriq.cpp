// Figure 4: scalability and performance of mri-q in Triolet, Eden, and
// C+MPI+OpenMP — speedup over sequential C versus core count on the
// simulated 8-node x 16-core machine.
//
// Paper shape: Triolet is nearly on par with hand-written MPI+OpenMP across
// the whole range; Eden sits below (slower sequential trig path, flat
// parallelism, occasional stragglers).

#include <cmath>
#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"

using namespace triolet;
using namespace triolet::apps;

int main() {
  std::printf("== Figure 4: mri-q scalability ==\n");
  auto p = bench::mriq_problem();
  std::printf("problem: %lld pixels x %lld samples\n",
              static_cast<long long>(p.pixels()),
              static_cast<long long>(p.samples()));

  MriqMeasured m = measure_mriq(p, bench::kMriqUnits);
  std::printf("sequential seconds: C=%.4f Triolet=%.4f Eden=%.4f\n", m.seq_c,
              m.seq_triolet, m.seq_eden);

  // Speedup denominator: the C loop code measured identically to the
  // parallel task times (whole-program seq times are reported above).
  const double denom = seq_equivalent_seconds(m.lowlevel);

  std::vector<ScalingSeries> series{
      run_series(m.lowlevel, bench::kNodes, bench::kCoresPerNode),
      run_series(m.triolet, bench::kNodes, bench::kCoresPerNode),
      run_series(m.eden, bench::kNodes, bench::kCoresPerNode),
  };
  print_figure("Figure 4: mri-q", denom, series);

  const double su_c = final_speedup(series[0], denom);
  const double su_t = final_speedup(series[1], denom);
  const double su_e = final_speedup(series[2], denom);
  std::printf("\nat 128 cores: C+MPI+OpenMP=%.1fx Triolet=%.1fx Eden=%.1fx\n",
              su_c, su_t, su_e);
  shape_check("Triolet within 23-100% of C+MPI+OpenMP at 128 cores",
              su_t >= 0.23 * su_c && su_t <= 1.05 * su_c);
  shape_check("Triolet close to C+MPI+OpenMP (>= 80% - 'nearly on par')",
              su_t >= 0.80 * su_c);
  shape_check("Eden below Triolet across the top of the range", su_e < su_t);
  shape_check("Eden sequential ~1.5x slower than C (missed sinf/cosf opt)",
              m.seq_eden > 1.2 * m.seq_c && m.seq_eden < 3.5 * m.seq_c);
  shape_check("Triolet scales to a large fraction of linear at 128 cores",
              su_t > 60.0);
  return 0;
}
