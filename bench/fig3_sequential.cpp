// Figure 3: sequential execution time of all four benchmarks in C, Eden,
// and Triolet (the paper's bar chart, rendered as a table).
//
// Paper shape: Triolet's sequential code is close to C (the library fuses to
// plain loop nests); Eden is consistently slower — boxed/chunked data
// representations and the deoptimized float trig path.

#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "support/table.hpp"

using namespace triolet;
using namespace triolet::apps;

int main() {
  std::printf("== Figure 3: sequential execution time ==\n");

  struct Row {
    const char* name;
    double c, triolet, eden;
  };
  std::vector<Row> rows;

  {
    auto p = bench::tpacf_problem();
    rows.push_back(
        {"tpacf", measure_seconds([&] { (void)tpacf_seq_c(p); }),
         measure_seconds([&] { (void)tpacf_triolet(p, core::ParHint::kSeq); }),
         measure_seconds([&] { (void)tpacf_eden_seq(p); }, 2)});
  }
  {
    auto p = bench::mriq_problem();
    rows.push_back(
        {"mri-q", measure_seconds([&] { (void)mriq_seq_c(p); }),
         measure_seconds([&] { (void)mriq_triolet(p, core::ParHint::kSeq); }),
         measure_seconds([&] { (void)mriq_eden_seq(p); }, 2)});
  }
  {
    auto p = bench::sgemm_problem();
    rows.push_back(
        {"sgemm", measure_seconds([&] { (void)sgemm_seq_c(p); }),
         measure_seconds([&] { (void)sgemm_triolet(p, core::ParHint::kSeq); }),
         measure_seconds([&] { (void)sgemm_eden_seq(p); }, 2)});
  }
  {
    auto p = bench::cutcp_problem();
    rows.push_back(
        {"cutcp", measure_seconds([&] { (void)cutcp_seq_c(p); }),
         measure_seconds([&] { (void)cutcp_triolet(p, core::ParHint::kSeq); }),
         measure_seconds([&] { (void)cutcp_eden_seq(p); }, 2)});
  }

  Table t({"benchmark", "CPU (s)", "Eden (s)", "Triolet (s)", "Eden/C",
           "Triolet/C"});
  for (const auto& r : rows) {
    t.add_row({r.name, Table::num(r.c, 4), Table::num(r.eden, 4),
               Table::num(r.triolet, 4), Table::num(r.eden / r.c, 2),
               Table::num(r.triolet / r.c, 2)});
  }
  t.print("Figure 3: sequential execution time of benchmarks");

  for (const auto& r : rows) {
    shape_check(std::string(r.name) + ": Eden slower than C",
                r.eden > r.c);
    shape_check(std::string(r.name) + ": Triolet within 2x of C",
                r.triolet < 2.0 * r.c);
  }
  return 0;
}
