// Ablation B: data-source slicing vs. whole-array shipping (paper §3.5).
//
// Triolet's indexers are reorganized into (source, extractor) so that a
// distributed loop extracts and sends only the slice each node needs. This
// ablation measures the actual serialized traffic of the sgemm block
// decomposition with slicing enabled (outerproduct slices row bundles) and
// disabled (every node receives both whole matrices), and simulates the
// effect on the 8-node makespan.

#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "support/table.hpp"

using namespace triolet;
using namespace triolet::apps;
using namespace triolet::core;

int main() {
  std::printf("== Ablation: slicing vs. whole-array shipping ==\n");
  auto p = bench::sgemm_problem();
  Array2<float> bt = transpose(p.b);
  auto zipped = outerproduct(rows(p.a), rows(bt));

  const auto whole = static_cast<std::int64_t>(serial::wire_size(zipped));
  Table t({"nodes", "sliced bytes/node", "whole bytes/node", "traffic saved"});
  for (int nodes : {2, 4, 8}) {
    auto blocks = split_blocks(zipped.domain(), nodes);
    std::int64_t sliced_total = 0;
    for (const auto& b : blocks) {
      sliced_total += static_cast<std::int64_t>(
          serial::wire_size(zipped.slice(b)));
    }
    std::int64_t sliced_avg = sliced_total / nodes;
    t.add_row({Table::num(static_cast<std::int64_t>(nodes)),
               Table::num(sliced_avg), Table::num(whole),
               Table::num(100.0 * (1.0 - static_cast<double>(sliced_avg) /
                                             static_cast<double>(whole)),
                          1) +
                   "%"});
  }
  t.print("serialized task traffic (measured through the real serializer)");

  // Effect on the simulated figure: rerun the sgemm Triolet series with
  // whole-array input sizes.
  auto m = measure_sgemm(p, bench::kSgemmUnits);
  auto with_slicing = run_series(m.triolet, bench::kNodes, bench::kCoresPerNode);
  MeasuredSystem no_slicing = m.triolet;
  no_slicing.name = "Triolet (no slicing)";
  no_slicing.input_bytes_by_part = [whole](int, int) { return whole; };
  auto without = run_series(no_slicing, bench::kNodes, bench::kCoresPerNode);

  print_figure("sgemm with and without source slicing", seq_equivalent_seconds(m.lowlevel),
               {with_slicing, without});

  double t_slice = with_slicing.points.back().seconds;
  double t_whole = without.points.back().seconds;
  std::printf("\n8-node makespan: sliced %.5fs vs whole-array %.5fs\n", t_slice,
              t_whole);
  shape_check("slicing reduces the 8-node makespan", t_slice < t_whole);
  return 0;
}
