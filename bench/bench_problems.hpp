#pragma once

// Canonical benchmark inputs shared by all figure harnesses.
//
// The paper chose Parboil data sets with a sequential-C time of 20-200 s;
// this reproduction scales each problem down so a full figure regenerates in
// seconds on one core (see DESIGN.md, substitutions). The compute-to-
// communication ratio stays representative because message sizes scale with
// the same inputs the tasks process.

#include "apps/cutcp.hpp"
#include "apps/mriq.hpp"
#include "apps/sgemm.hpp"
#include "apps/tpacf.hpp"

namespace triolet::bench {

inline apps::MriqProblem mriq_problem() {
  return apps::make_mriq(/*pixels=*/4096, /*samples=*/384, /*seed=*/0xA1);
}
inline constexpr apps::index_t kMriqUnits = 512;

inline apps::SgemmProblem sgemm_problem() {
  return apps::make_sgemm(/*n=*/384, /*k=*/384, /*m=*/384, /*seed=*/0xA2);
}
inline constexpr apps::index_t kSgemmUnits = 192;

inline apps::TpacfProblem tpacf_problem() {
  return apps::make_tpacf(/*points=*/768, /*random_sets=*/4, /*nbins=*/32,
                          /*seed=*/0xA3);
}
inline constexpr apps::index_t kTpacfUnits = 2048;

inline apps::CutcpProblem cutcp_problem() {
  return apps::make_cutcp(/*atoms=*/12000, /*nx=*/40, /*ny=*/40, /*nz=*/40,
                          /*cutoff=*/2.5f, /*seed=*/0xA4);
}
inline constexpr apps::index_t kCutcpUnits = 500;

/// The paper's machine: 8 nodes x 16 cores.
inline constexpr int kNodes = 8;
inline constexpr int kCoresPerNode = 16;

}  // namespace triolet::bench
