// Model-driven autotuning: hand-tuned schedules vs SchedulePolicy::kAuto on
// an iterative skewed workload at 8 ranks.
//
// Every manual configuration — policy x prefetch x streaming, the knobs
// PRs 2-5 exposed — runs the same triangular tpacf-style loop for several
// rounds on the real in-process cluster. kAuto runs the identical loop with
// zero per-workload flags: round 0 is the instrumented measurement round,
// after which the calibrated sim:: model re-picks the configuration every
// round (src/sched/tuner.hpp). The headline number is the steady-state
// ratio of kAuto to the best manual configuration — the price of not
// hand-tuning.
//
// Methodology notes: per-round wall time is rank 0's clock between cluster
// barriers; round 0 is excluded from steady-state means for every variant
// (cold page faults and, for kAuto, the deliberately slow measurement
// configuration). Results are checked against a sequential reduction each
// round — the tuner must never trade correctness for speed.
//
// Flags: --ranks=N --rounds=N --check (CI smoke mode: small problem, no
// timing thresholds, exit 1 unless kAuto converges to a concrete pick,
// every round's result is correct, and the steady-state ratio stays under
// a generous bound).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "sched/tuner.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using core::index_t;

namespace {

int g_work_per_unit = 6;  // transcendental ops per triangular unit

/// cost[i] = i: the tpacf shape (item i correlates against all earlier
/// points). Captureless lambda, so the iterator serializes for free.
auto make_workload(const Array1<double>& costs) {
  const int wpu = g_work_per_unit;
  return core::map(core::from_array(costs), [wpu](double c) {
    double v = 0.0;
    const int n = static_cast<int>(c) * wpu;
    for (int k = 0; k < n; ++k) v += std::sin(v + 1e-3 * k);
    return v;
  });
}

Array1<double> make_costs(index_t items) {
  Array1<double> costs(items);
  for (index_t i = 0; i < items; ++i) costs[i] = static_cast<double>(i);
  return costs;
}

double mean_tail(const std::vector<double>& xs) {
  // Steady-state mean: skip round 0 (cold caches / measurement round).
  if (xs.size() <= 1) return xs.empty() ? 0.0 : xs[0];
  double s = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) s += xs[i];
  return s / static_cast<double>(xs.size() - 1);
}

/// The configuration one kAuto round actually ran.
struct RoundPick {
  sched::SchedulePolicy policy = sched::SchedulePolicy::kDynamic;
  index_t grain = 0;
  bool prefetch = false;
  bool streaming = false;
  double predicted = 0.0;
};

struct LoopResult {
  std::vector<double> round_seconds;  // rank-0 wall per round
  std::vector<double> round_results;
  std::vector<RoundPick> picks;  // kAuto only: config round r ran
  bool converged = false;
};

LoopResult run_loop(const sched::SchedOptions& base, int ranks, int rounds,
                    const Array1<double>& costs) {
  LoopResult out;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    sched::AutoTuner tuner;
    sched::SchedOptions opts = base;
    const bool is_auto = base.policy == sched::SchedulePolicy::kAuto;
    if (is_auto) opts.tuner = &tuner;
    auto make = [&] { return make_workload(costs); };
    for (int r = 0; r < rounds; ++r) {
      // Round r of kAuto runs the measurement config (r == 0) or the pick
      // installed at the end of round r-1; snapshot it before running.
      RoundPick ran;
      if (is_auto && comm.rank() == 0) {
        if (tuner.have_pick()) {
          const auto& p = tuner.pick();
          ran = {p.policy, p.grain, p.prefetch, p.streaming,
                 tuner.last_predicted_seconds()};
        }
      }
      comm.barrier();
      Stopwatch sw;
      double v = dist::reduce(comm, make, 0.0,
                              [](double a, double b) { return a + b; }, opts);
      comm.barrier();
      if (comm.rank() == 0) {
        out.round_seconds.push_back(sw.seconds());
        out.round_results.push_back(v);
        if (is_auto) out.picks.push_back(ran);
      }
    }
    if (is_auto && comm.rank() == 0) {
      out.converged = tuner.have_pick() &&
                      tuner.pick().policy != sched::SchedulePolicy::kAuto &&
                      tuner.calibration().valid();
    }
  });
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  return out;
}

std::string config_name(sched::SchedulePolicy p, bool prefetch,
                        bool streaming) {
  std::string s = sched::to_string(p);
  if (p != sched::SchedulePolicy::kStatic) {
    if (!prefetch) s += "-nopf";
    if (streaming) s += "-stream";
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = bench::kNodes;
  int rounds = 6;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--rounds=", 0) == 0) {
      rounds = std::atoi(arg.c_str() + 9);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const index_t items = check_only ? 768 : 2048;
  g_work_per_unit = check_only ? 3 : 6;

  std::printf("== bm_autotune: hand-tuned schedules vs kAuto, %d ranks, "
              "%d rounds, %lld triangular items ==\n",
              ranks, rounds, static_cast<long long>(items));

  const auto costs = make_costs(items);

  // Sequential reference for per-round correctness.
  const double reference = [&] {
    auto it = make_workload(costs);
    return core::reduce(it, 0.0, [](double a, double b) { return a + b; });
  }();

  struct Manual {
    sched::SchedulePolicy policy;
    bool prefetch;
    bool streaming;
  };
  const Manual manuals[] = {
      {sched::SchedulePolicy::kStatic, true, false},
      {sched::SchedulePolicy::kGuided, true, false},
      {sched::SchedulePolicy::kGuided, false, false},
      {sched::SchedulePolicy::kGuided, true, true},
      {sched::SchedulePolicy::kDynamic, true, false},
      {sched::SchedulePolicy::kDynamic, true, true},
  };

  bool all_correct = true;
  auto check_results = [&](const LoopResult& r) {
    for (double v : r.round_results) {
      if (std::abs(v - reference) > 1e-9 * std::abs(reference) + 1e-12) {
        all_correct = false;
      }
    }
  };

  std::vector<std::string> manual_names;
  std::vector<LoopResult> manual_runs;
  for (const Manual& m : manuals) {
    sched::SchedOptions opts;
    opts.policy = m.policy;
    opts.prefetch = m.prefetch;
    opts.streaming = m.streaming;
    manual_names.push_back(config_name(m.policy, m.prefetch, m.streaming));
    manual_runs.push_back(run_loop(opts, ranks, rounds, costs));
    check_results(manual_runs.back());
  }

  sched::SchedOptions auto_opts;
  auto_opts.policy = sched::SchedulePolicy::kAuto;
  const LoopResult auto_run = run_loop(auto_opts, ranks, rounds, costs);
  check_results(auto_run);

  double best_manual = 1e300;
  std::string best_name;
  Table t({"configuration", "round 0 (s)", "steady mean (s)", "vs best"});
  std::vector<double> steady;
  for (std::size_t i = 0; i < manual_runs.size(); ++i) {
    steady.push_back(mean_tail(manual_runs[i].round_seconds));
    if (steady.back() < best_manual) {
      best_manual = steady.back();
      best_name = manual_names[i];
    }
  }
  const double auto_steady = mean_tail(auto_run.round_seconds);
  for (std::size_t i = 0; i < manual_runs.size(); ++i) {
    t.add_row({manual_names[i], Table::num(manual_runs[i].round_seconds[0], 4),
               Table::num(steady[i], 4),
               Table::num(steady[i] / best_manual, 2) + "x"});
  }
  t.add_row({"auto (zero flags)", Table::num(auto_run.round_seconds[0], 4),
             Table::num(auto_steady, 4),
             Table::num(auto_steady / best_manual, 2) + "x"});
  t.print("per-round wall time, " + std::to_string(ranks) + " ranks (round 0 "
          "excluded from steady mean; kAuto round 0 is the measurement round)");

  // What kAuto ran each round.
  Table p({"round", "ran", "grain", "predicted (s)", "measured (s)"});
  for (std::size_t r = 0; r < auto_run.round_seconds.size(); ++r) {
    const bool measure_round = r == 0;
    const RoundPick& pick = auto_run.picks[r];
    p.add_row({Table::num(static_cast<std::int64_t>(r)),
               measure_round ? "measure (dynamic-nopf)"
                             : config_name(pick.policy, pick.prefetch,
                                           pick.streaming),
               measure_round ? "auto" : Table::num(pick.grain),
               measure_round ? "-" : Table::num(pick.predicted, 4),
               Table::num(auto_run.round_seconds[r], 4)});
  }
  p.print("kAuto per-round schedule");

  const double ratio = auto_steady / best_manual;
  const double bound = check_only ? 2.5 : 1.5;
  bool ok = true;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    ok = ok && holds;
  };
  check("every configuration returns the sequential result every round",
        all_correct);
  check("kAuto converges to a concrete pick with a valid calibration",
        auto_run.converged);
  check("kAuto re-picks from round 1 on (no lingering measurement round)",
        auto_run.picks.size() >= 2 && auto_run.picks[1].grain > 0);
  check("steady-state kAuto within " + Table::num(bound, 1) +
            "x of the best hand-tuned configuration",
        ratio <= bound);

  // Machine-readable record (bench/BENCH_autotune.json keeps a checked-in
  // copy).
  std::printf("\n{\n");
  std::printf("  \"workload\": {\"items\": %lld, \"shape\": \"triangular\", "
              "\"rounds\": %d, \"ranks\": %d},\n",
              static_cast<long long>(items), rounds, ranks);
  std::printf("  \"manual\": {\n");
  for (std::size_t i = 0; i < manual_runs.size(); ++i) {
    std::printf("    \"%s\": {\"steady_seconds\": %.4f, \"rounds\": [",
                manual_names[i].c_str(), steady[i]);
    for (std::size_t r = 0; r < manual_runs[i].round_seconds.size(); ++r) {
      std::printf("%s%.4f", r ? ", " : "", manual_runs[i].round_seconds[r]);
    }
    std::printf("]}%s\n", i + 1 < manual_runs.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"auto\": {\"steady_seconds\": %.4f, \"rounds\": [\n",
              auto_steady);
  for (std::size_t r = 0; r < auto_run.round_seconds.size(); ++r) {
    const RoundPick& pick = auto_run.picks[r];
    std::printf("    {\"round\": %zu, \"ran\": \"%s\", \"grain\": %lld, "
                "\"predicted_seconds\": %.4f, \"seconds\": %.4f}%s\n",
                r,
                r == 0 ? "measure"
                       : config_name(pick.policy, pick.prefetch,
                                     pick.streaming).c_str(),
                static_cast<long long>(r == 0 ? 0 : pick.grain),
                r == 0 ? 0.0 : pick.predicted, auto_run.round_seconds[r],
                r + 1 < auto_run.round_seconds.size() ? "," : "");
  }
  std::printf("  ]},\n");
  std::printf("  \"best_manual\": {\"name\": \"%s\", \"steady_seconds\": "
              "%.4f},\n",
              best_name.c_str(), best_manual);
  std::printf("  \"auto_vs_best_manual_ratio\": %.3f,\n", ratio);
  std::printf("  \"converged\": %s\n", auto_run.converged ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}
