// Microbenchmarks of the two-level distributed skeletons end to end on real
// SPMD rank threads: slicing + serialization + scatter + threaded consume +
// reduction, as a function of node count and payload size.

#include <benchmark/benchmark.h>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"

namespace {

using namespace triolet;

Array1<double> data(core::index_t n) {
  Xoshiro256 rng(3);
  Array1<double> a(n);
  for (core::index_t i = 0; i < n; ++i) a[i] = rng.uniform();
  return a;
}

void BM_Dist_Sum(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  auto xs = data(1 << 16);
  for (auto _ : state) {
    double got = 0;
    auto res = net::Cluster::run(nodes, [&](net::Comm& c) {
      dist::NodeRuntime node(1);
      double r = dist::sum(c, [&] { return core::par(core::from_array(xs)); });
      if (c.rank() == 0) got = r;
    });
    if (!res.ok) state.SkipWithError("cluster failed");
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_Dist_Sum)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Dist_Histogram(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  auto xs = data(1 << 15);
  for (auto _ : state) {
    auto res = net::Cluster::run(nodes, [&](net::Comm& c) {
      dist::NodeRuntime node(1);
      auto h = dist::histogram(c, 64, [&] {
        return core::par(core::map(core::from_array(xs), [](double x) {
          return static_cast<core::index_t>(x * 63.999);
        }));
      });
      benchmark::DoNotOptimize(h);
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetItemsProcessed(state.iterations() * (1 << 15));
}
BENCHMARK(BM_Dist_Histogram)->Arg(2)->Arg(4);

void BM_Dist_SliceSerialize(benchmark::State& state) {
  // The task-construction path alone: slice + serialize + deserialize.
  auto xs = data(1 << 18);
  auto it = core::map(core::from_array(xs), [](double x) { return 2 * x; });
  const auto chunk = core::Seq{1000, 1000 + state.range(0)};
  for (auto _ : state) {
    auto sl = it.slice(chunk);
    auto bytes = serial::to_bytes(sl);
    auto back = serial::from_bytes<decltype(sl)>(bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_Dist_SliceSerialize)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
