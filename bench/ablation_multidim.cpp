// Ablation E: multidimensional iterators vs simulated multidimensionality
// (paper §3.3).
//
// "Expressing transposition in flattened form, using a 1D loop over a 1D
// array, would require expensive division and modulus operations to
// reconstruct the 2D indices x and y from a 1D loop index. Alternatively,
// using an array of arrays adds an additional pointer indirection."
//
// This ablation runs matrix transposition three ways — the Dim2 iterator
// (the library's multidimensional domain), a flattened 1D iterator that
// reconstructs (y, x) with div/mod, and an array-of-arrays representation —
// against the hand-written loop.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/driver.hpp"
#include "core/triolet.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using namespace triolet::core;

namespace {

Array2<float> make_matrix(index_t h, index_t w) {
  Xoshiro256 rng(8);
  Array2<float> m(h, w);
  for (index_t y = 0; y < h; ++y)
    for (index_t x = 0; x < w; ++x) m(y, x) = rng.uniformf();
  return m;
}

}  // namespace

int main() {
  std::printf("== Ablation: multidimensional vs flattened iteration ==\n");
  const index_t h = 1024, w = 768;
  Array2<float> m = make_matrix(h, w);
  Array2<float> ref = transpose(m);

  // (a) hand-written loop nest.
  double t_hand = time_fn([&] {
    Array2<float> t(w, h);
    for (index_t y = 0; y < w; ++y) {
      for (index_t x = 0; x < h; ++x) t(y, x) = m(x, y);
    }
    volatile float sink = t(0, 0);
    (void)sink;
  }, 5).min;

  // (b) Dim2 iterator: [m(x, y) for (y, x) in arrayRange(w, h)].
  auto dim2_expr = map_with(indices(Dim2{0, w, 0, h}), m,
                            [](const Array2<float>& src, Index2 i) {
                              return src(i.x, i.y);
                            });
  double t_dim2 = time_fn([&] {
    auto t = build_array2(dim2_expr);
    volatile float sink = t(0, 0);
    (void)sink;
  }, 5).min;
  TRIOLET_CHECK(build_array2(dim2_expr) == ref, "dim2 transpose wrong");

  // (c) flattened 1D iterator: reconstruct (y, x) with div/mod per element.
  auto flat_expr = map_with(range(0, w * h), m,
                            [w, h](const Array2<float>& src, index_t k) {
                              (void)w;
                              index_t y = k / h;  // output row
                              index_t x = k % h;  // output column
                              return src(x, y);
                            });
  double t_flat = time_fn([&] {
    auto t = build_array1(flat_expr);
    volatile float sink = t[0];
    (void)sink;
  }, 5).min;

  // (d) array-of-arrays: one pointer indirection per element.
  std::vector<std::unique_ptr<std::vector<float>>> rows_vec;
  for (index_t y = 0; y < h; ++y) {
    auto r = m.row(y);
    rows_vec.push_back(std::make_unique<std::vector<float>>(r.begin(), r.end()));
  }
  double t_aoa = time_fn([&] {
    Array2<float> t(w, h);
    for (index_t y = 0; y < w; ++y) {
      for (index_t x = 0; x < h; ++x) {
        t(y, x) = (*rows_vec[static_cast<std::size_t>(x)])
            [static_cast<std::size_t>(y)];
      }
    }
    volatile float sink = t(0, 0);
    (void)sink;
  }, 5).min;

  Table t({"representation", "seconds", "vs hand loop"});
  t.add_row({"hand-written loop nest", Table::num(t_hand, 5), "1.00x"});
  t.add_row({"Dim2 iterator", Table::num(t_dim2, 5),
             Table::num(t_dim2 / t_hand, 2) + "x"});
  t.add_row({"flattened 1D (div/mod)", Table::num(t_flat, 5),
             Table::num(t_flat / t_hand, 2) + "x"});
  t.add_row({"array of arrays", Table::num(t_aoa, 5),
             Table::num(t_aoa / t_hand, 2) + "x"});
  t.print("matrix transposition, one core");

  apps::shape_check("Dim2 iterator is close to the hand loop (within 1.5x)",
                    t_dim2 < 1.5 * t_hand);
  apps::shape_check("flattened div/mod iteration costs more than Dim2",
                    t_flat > t_dim2);
  std::printf("\nThe Domain generalization of §3.3 exists exactly to avoid "
              "the last two rows.\n");
  return 0;
}
