// Ablation D: task granularity in the two-level schedule.
//
// The library picks how finely to subdivide a node's chunk across its cores
// (the paper: "Triolet abstracts away the number of threads in the system",
// §4.4 — the runtime must choose a grain). Too coarse starves cores on
// skewed work; too fine pays per-task overhead. This ablation sweeps the
// units-per-core ratio on tpacf's skewed triangular loops and on mri-q's
// uniform pixels, reporting the simulated 16-core node makespan, and also
// measures the *real* per-task overhead of the work-stealing pool.

#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "runtime/parallel.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using namespace triolet::apps;

namespace {

/// Regroups fine-grained measured units into `coarse` contiguous tasks.
std::vector<double> regroup(const std::vector<double>& units, int coarse) {
  std::vector<double> out(static_cast<std::size_t>(coarse), 0.0);
  const auto n = static_cast<std::int64_t>(units.size());
  for (std::int64_t i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i * coarse / n)] +=
        units[static_cast<std::size_t>(i)];
  }
  return out;
}

void sweep(const char* name, const std::vector<double>& units) {
  Table t({"tasks per core", "dynamic makespan (s)", "vs best"});
  const int cores = bench::kCoresPerNode;
  double best = 1e300;
  std::vector<std::pair<int, double>> rows;
  for (int tpc : {1, 2, 4, 8, 16, 32}) {
    auto tasks = regroup(units, tpc * cores);
    double m = sim::makespan_dynamic(tasks, cores);
    best = std::min(best, m);
    rows.push_back({tpc, m});
  }
  for (auto [tpc, m] : rows) {
    t.add_row({Table::num(static_cast<std::int64_t>(tpc)), Table::num(m, 6),
               Table::num(m / best, 3) + "x"});
  }
  t.print(std::string(name) + ": grain sweep on one 16-core node");
  shape_check(std::string(name) +
                  ": one task per core is never the best grain on skewed work",
              rows[0].second >= best);
}

}  // namespace

int main() {
  std::printf("== Ablation: task granularity ==\n");

  {
    auto p = bench::tpacf_problem();
    auto m = measure_tpacf(p, bench::kTpacfUnits);
    sweep("tpacf (skewed triangular loops)", m.triolet.unit_seconds);
  }
  {
    auto p = bench::mriq_problem();
    auto m = measure_mriq(p, bench::kMriqUnits);
    sweep("mri-q (uniform pixels)", m.triolet.unit_seconds);
  }

  // Real per-task overhead of the pool: time N empty tasks.
  {
    runtime::ThreadPool pool(2);
    const int kTasks = 20000;
    double secs = time_fn([&] {
      runtime::TaskGroup g;
      for (int i = 0; i < kTasks; ++i) {
        pool.submit(g, [] {});
      }
      pool.wait(g);
    }, 3).min;
    std::printf("\nmeasured pool overhead: %.0f ns per empty task\n",
                secs / kTasks * 1e9);
    shape_check("per-task overhead stays below 100 us",
                secs / kTasks < 100e-6);
  }
  return 0;
}
