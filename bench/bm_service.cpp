// The service layer vs run-to-completion serialization on a mixed job
// stream at 8 ranks.
//
// The workload models a shared analytics cluster: a stream of small
// latency-sensitive jobs (scatter + reduce over a few KB) interleaved with
// a handful of large jobs that re-analyze one resident dataset (scheduled,
// fair-share-gated reductions over a wide record array). The baseline is
// what the pre-service system offers: every job is its own Cluster::run —
// fresh rank threads, fresh per-rank pools and progress engines, cold slice
// caches — and jobs run strictly one after another, so a small job's
// latency includes every job submitted before it.
//
// The service run submits the same stream to one resident JobManager:
// small jobs coalesce into batch groups (amortizing group spawn), up to
// max_concurrent groups run at once under per-job tag-band isolation, the
// large jobs' repeated scatters of the shared dataset collapse to residency
// tokens after the first (manager-owned per-rank caches), and the grant
// arbiter keeps the large jobs from monopolizing the scheduler.
//
// Measured: job throughput (jobs / makespan) and per-job latency
// (completion time since the stream started; queued + run for the service).
// The isolation machinery is semantics-free, so every job's kOrdered
// reduction must be bitwise identical across baseline, service, and a solo
// run — checked, not assumed.
//
// Flags: --ranks=N --check (CI smoke mode: small problem, no timing
// thresholds, exit 1 unless the structural checks and the bitwise identity
// hold).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"
#include "svc/job_manager.hpp"

using namespace triolet;
using core::index_t;

namespace {

/// 64-byte trivially-copyable record: the large jobs' scatter payload is
/// bulk array data, so avoiding its re-send across jobs is the game.
struct Wide {
  double v[8];
};
static_assert(sizeof(Wide) == 64);

Array1<Wide> make_items(index_t n) {
  Array1<Wide> items(n);
  for (index_t i = 0; i < n; ++i) {
    Wide w{};
    for (int k = 0; k < 8; ++k) {
      w.v[k] = 1e-3 * static_cast<double>((i * 13 + k * 7) % 1009);
    }
    items[i] = w;
  }
  return items;
}

/// Mixed-magnitude doubles: any fold-order change shows in the low bits.
Array1<double> spiky_array(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0));
  }
  return a;
}

struct Workload {
  int n_small = 0;
  int n_large = 0;
  index_t small_n = 0;
  index_t large_n = 0;
  int large_rounds = 0;
  index_t ordered_grain = 64;
  std::vector<Array1<double>> small_data;  // one spiky array per small job
  Array1<Wide> large_items;                // the shared resident dataset
};

/// Submission order: one large job, then a burst of small ones, repeated —
/// the arrival pattern under which run-to-completion hurts small jobs most.
struct JobSpec {
  bool large = false;
  int idx = 0;  // index among its kind
};

std::vector<JobSpec> job_stream(const Workload& w) {
  std::vector<JobSpec> stream;
  const int burst = std::max(1, w.n_small / std::max(1, w.n_large));
  int s = 0;
  for (int l = 0; l < w.n_large; ++l) {
    stream.push_back({true, l});
    for (int k = 0; k < burst && s < w.n_small; ++k, ++s) {
      stream.push_back({false, s});
    }
  }
  for (; s < w.n_small; ++s) stream.push_back({false, s});
  return stream;
}

/// The small-job body: kOrdered spiky reduce — latency-sensitive AND a
/// bitwise determinism witness. Returns the rank-0 result.
double small_body(net::Comm& comm, const Workload& w, int idx,
                  const sched::SchedOptions& base) {
  sched::SchedOptions opts = base;
  opts.combine = sched::CombineMode::kOrdered;
  opts.grain = w.ordered_grain;
  const auto& xs = w.small_data[static_cast<std::size_t>(idx)];
  return dist::reduce(comm, [&] { return core::from_array(xs); }, 0.0,
                      [](double a, double b) { return a + b; }, opts);
}

/// The large-job body: `large_rounds` scatter-based reductions over the
/// shared resident dataset (static per-rank blocks, so slices cached by an
/// earlier job tokenize here — the cross-job residency win), then one
/// demand-scheduled guided reduction that runs through the job's fair-share
/// grant gate. Returns the rank-0 result of the last round.
double large_body(net::Comm& comm, const Workload& w,
                  dist::DistArray<Wide>& d, const sched::SchedOptions& base) {
  auto make = [&] {
    return core::map(dist::from_resident(d), [](const Wide& x) {
      return x.v[1] * 1.25 + x.v[3];
    });
  };
  for (int r = 0; r < w.large_rounds; ++r) (void)dist::sum(comm, make);
  // The demand-scheduled phase is compute-shaped (grants carry ranges, not
  // payloads), the regime where grant arbitration across jobs matters.
  sched::SchedOptions opts = base;
  opts.policy = sched::SchedulePolicy::kGuided;
  const index_t n = w.large_n;
  return dist::sum(comm,
                   [&] {
                     return core::map(core::range(0, n), [](index_t i) {
                       return 1e-9 * static_cast<double>((i * 2654435761u) &
                                                         0xffff);
                     });
                   },
                   opts);
}

struct StreamResult {
  double makespan = 0.0;
  std::vector<double> small_latency;  // completion since stream start
  std::vector<double> large_latency;
  std::vector<double> small_results;  // rank-0 kOrdered results, per job
  std::int64_t bytes_sent = 0;
  net::ResidencyStats residency{};  // service: manager sinks + per-job
};

/// Run-to-completion baseline: every job is its own Cluster::run, jobs
/// strictly sequential, caches cold per job. Latency of job i is the sum of
/// the runtimes of jobs 0..i.
StreamResult run_serialized(int ranks, const Workload& w) {
  net::set_slice_cache_budget(std::size_t{256} << 20);
  dist::DistArray<Wide> d{Array1<Wide>(w.large_items)};
  StreamResult out;
  out.small_results.resize(static_cast<std::size_t>(w.n_small), 0.0);
  double clock = 0.0;
  for (const JobSpec& js : job_stream(w)) {
    Stopwatch sw;
    double r0 = 0;
    auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
      dist::NodeRuntime node(1);
      double r = js.large ? large_body(comm, w, d, {})
                          : small_body(comm, w, js.idx, {});
      if (comm.rank() == 0) r0 = r;
    });
    if (!res.ok) {
      std::fprintf(stderr, "baseline job failed: %s\n", res.error.c_str());
      std::exit(1);
    }
    clock += sw.seconds();
    out.bytes_sent += res.total_stats.bytes_sent;
    if (js.large) {
      out.large_latency.push_back(clock);
    } else {
      out.small_latency.push_back(clock);
      out.small_results[static_cast<std::size_t>(js.idx)] = r0;
    }
  }
  out.makespan = clock;
  net::set_slice_cache_budget(~std::size_t{0});
  return out;
}

/// Service mode: the same stream submitted to one resident JobManager.
/// Latency of a job is its queued + run time (submission is effectively
/// instantaneous at stream start).
StreamResult run_service(int ranks, const Workload& w) {
  svc::ServiceOptions so;
  so.nranks = ranks;
  so.threads_per_rank = 1;
  so.max_concurrent = 3;
  so.batch_limit = 12;
  so.max_queued = 256;
  so.quantum_items = 1 << 10;
  so.slice_cache_bytes = std::size_t{256} << 20;
  svc::JobManager mgr(so);

  dist::DistArray<Wide> d{Array1<Wide>(w.large_items)};
  StreamResult out;
  out.small_results.resize(static_cast<std::size_t>(w.n_small), 0.0);
  std::vector<double> small_res(static_cast<std::size_t>(w.n_small), 0.0);

  std::vector<std::pair<JobSpec, svc::JobHandle>> handles;
  Stopwatch wall;
  for (const JobSpec& js : job_stream(w)) {
    svc::JobOptions jo;
    if (js.large) {
      jo.name = "large-" + std::to_string(js.idx);
      jo.weight = 1;
      jo.batch_key = 2;  // large jobs share one group, smalls overlap it
      handles.emplace_back(
          js, mgr.submit(jo, [&w, &d](svc::JobContext& ctx) {
            (void)large_body(ctx.comm(), w, d, ctx.sched_options());
          }));
    } else {
      jo.name = "small-" + std::to_string(js.idx);
      jo.weight = 2;       // latency-sensitive: extra fair-share credit
      jo.batch_key = 1;    // small jobs may share a group
      const int idx = js.idx;
      handles.emplace_back(
          js, mgr.submit(jo, [&w, &small_res, idx](svc::JobContext& ctx) {
            double r = small_body(ctx.comm(), w, idx, ctx.sched_options());
            if (ctx.rank() == 0) {
              small_res[static_cast<std::size_t>(idx)] = r;
            }
          }));
    }
  }
  mgr.drain();
  out.makespan = wall.seconds();

  for (auto& [js, h] : handles) {
    svc::JobResult r = h.wait();
    if (!r.ok) {
      std::fprintf(stderr, "service job failed: %s\n", r.error.c_str());
      std::exit(1);
    }
    const double latency = r.queued_seconds + r.run_seconds;
    out.bytes_sent += r.stats.messages_sent > 0 ? r.stats.bytes_sent : 0;
    out.residency += r.stats.residency;
    if (js.large) {
      out.large_latency.push_back(latency);
    } else {
      out.small_latency.push_back(latency);
    }
  }
  out.small_results = small_res;
  return out;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(xs.size()))) - 1;
  return xs[std::min(idx, xs.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = bench::kNodes;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  Workload w;
  w.n_small = check_only ? 12 : 48;
  w.n_large = check_only ? 3 : 6;
  w.small_n = 1 << 12;
  w.large_n = check_only ? (1 << 15) : (1 << 18);  // 2 MiB / 16 MiB
  w.large_rounds = 2;
  for (int s = 0; s < w.n_small; ++s) {
    w.small_data.push_back(
        spiky_array(w.small_n, 100 + static_cast<std::uint64_t>(s)));
  }
  w.large_items = make_items(w.large_n);

  std::printf("== bm_service: multi-job service vs run-to-completion, "
              "%d ranks, %d small + %d large jobs ==\n",
              ranks, w.n_small, w.n_large);

  // Solo witnesses for the bitwise check: each small job alone on an
  // otherwise idle classic cluster.
  std::vector<double> solo(static_cast<std::size_t>(w.n_small), 0.0);
  for (int s = 0; s < w.n_small; ++s) {
    double r0 = 0;
    auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
      dist::NodeRuntime node(1);
      double r = small_body(comm, w, s, {});
      if (comm.rank() == 0) r0 = r;
    });
    if (!res.ok) {
      std::fprintf(stderr, "solo job failed: %s\n", res.error.c_str());
      return 1;
    }
    solo[static_cast<std::size_t>(s)] = r0;
  }

  // Warm-up (first-touch faults, lazy init), then measure both modes.
  {
    Workload tiny = w;
    tiny.n_small = 4;
    tiny.n_large = 1;
    (void)run_serialized(ranks, tiny);
    (void)run_service(ranks, tiny);
  }
  StreamResult base = run_serialized(ranks, w);
  StreamResult serv = run_service(ranks, w);

  const int jobs = w.n_small + w.n_large;
  const double thr_base = jobs / base.makespan;
  const double thr_serv = jobs / serv.makespan;
  const double thr_speedup = thr_serv / thr_base;
  const double p99_base = percentile(base.small_latency, 0.99);
  const double p99_serv = percentile(serv.small_latency, 0.99);
  const double p50_base = percentile(base.small_latency, 0.50);
  const double p50_serv = percentile(serv.small_latency, 0.50);

  Table t({"mode", "makespan (s)", "jobs/s", "small p50 (s)", "small p99 (s)",
           "bytes sent"});
  t.add_row({"run-to-completion", Table::num(base.makespan, 4),
             Table::num(thr_base, 1), Table::num(p50_base, 4),
             Table::num(p99_base, 4), Table::num(base.bytes_sent)});
  t.add_row({"service", Table::num(serv.makespan, 4), Table::num(thr_serv, 1),
             Table::num(p50_serv, 4), Table::num(p99_serv, 4),
             Table::num(serv.bytes_sent)});
  t.print("mixed stream, " + std::to_string(jobs) + " jobs, " +
          std::to_string(ranks) + " ranks");
  std::printf("job throughput: %.2fx; small-job p99: %.4fs -> %.4fs "
              "(%.2fx lower)\n",
              thr_speedup, p99_base, p99_serv,
              p99_serv > 0 ? p99_base / p99_serv : 0.0);

  bool all_bitwise = true;
  for (int s = 0; s < w.n_small; ++s) {
    const auto i = static_cast<std::size_t>(s);
    all_bitwise = all_bitwise &&
                  std::memcmp(&base.small_results[i], &solo[i],
                              sizeof(double)) == 0 &&
                  std::memcmp(&serv.small_results[i], &solo[i],
                              sizeof(double)) == 0;
  }

  bool ok = true;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    ok = ok && holds;
  };
  check("every kOrdered result bitwise identical: solo == serialized == "
        "service",
        all_bitwise);
  // Cross-job residency: the shared dataset's slices were inlined once and
  // tokenized by later large jobs.
  check("later large jobs hit the resident caches (tokens sent)",
        serv.residency.tokens_sent > 0);
  // Concurrent groups can race a token past a neighbor's in-flight inline
  // delivery; the fetch fallback repairs that by design. It must stay the
  // exception, not the rule.
  check("fetch fallbacks are rare (sender models mostly coherent)",
        serv.residency.fetches * 5 <= serv.residency.tokens_sent);
  check("service ships fewer bytes than rescatter-per-job",
        serv.bytes_sent < base.bytes_sent);
  if (!check_only) {
    check("service job throughput >= 1.5x run-to-completion",
          thr_speedup >= 1.5);
    check("small-job p99 materially lower under the service",
          p99_serv < 0.67 * p99_base);
  }

  // Machine-readable record (bench/BENCH_service.json keeps a checked-in
  // copy).
  std::printf("\n{\n");
  std::printf("  \"workload\": {\"ranks\": %d, \"small_jobs\": %d, "
              "\"large_jobs\": %d, \"small_items\": %lld, \"large_items\": "
              "%lld, \"large_rounds\": %d},\n",
              ranks, w.n_small, w.n_large,
              static_cast<long long>(w.small_n),
              static_cast<long long>(w.large_n), w.large_rounds);
  std::printf("  \"makespan_seconds\": {\"serialized\": %.4f, \"service\": "
              "%.4f},\n",
              base.makespan, serv.makespan);
  std::printf("  \"throughput_jobs_per_second\": {\"serialized\": %.2f, "
              "\"service\": %.2f},\n",
              thr_base, thr_serv);
  std::printf("  \"throughput_speedup\": %.3f,\n", thr_speedup);
  std::printf("  \"small_job_latency_seconds\": {\"serialized\": {\"p50\": "
              "%.4f, \"p99\": %.4f}, \"service\": {\"p50\": %.4f, \"p99\": "
              "%.4f}},\n",
              p50_base, p99_base, p50_serv, p99_serv);
  std::printf("  \"bytes_sent\": {\"serialized\": %lld, \"service\": "
              "%lld},\n",
              static_cast<long long>(base.bytes_sent),
              static_cast<long long>(serv.bytes_sent));
  std::printf("  \"service_residency\": {\"tokens_sent\": %lld, "
              "\"bytes_avoided\": %lld, \"cache_hits\": %lld, \"fetches\": "
              "%lld},\n",
              static_cast<long long>(serv.residency.tokens_sent),
              static_cast<long long>(serv.residency.bytes_avoided),
              static_cast<long long>(serv.residency.cache_hits),
              static_cast<long long>(serv.residency.fetches));
  std::printf("  \"ordered_results_bitwise_identical\": %s\n",
              all_bitwise ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}
