// Figure 5: scalability and performance of sgemm.
//
// Paper shape: all versions saturate (transposition + communication);
// Triolet and C+MPI+OpenMP are close, with Triolet dipping at 8 nodes from
// message-construction (GC) overhead; the Eden run FAILS at >= 2 nodes
// because its runtime cannot buffer the in-flight matrix data.

#include <cmath>
#include <cstdio>

#include "apps/driver.hpp"
#include "bench_problems.hpp"

using namespace triolet;
using namespace triolet::apps;

int main() {
  std::printf("== Figure 5: sgemm scalability ==\n");
  auto p = bench::sgemm_problem();
  std::printf("problem: alpha*A*B with A %lldx%lld, B %lldx%lld\n",
              static_cast<long long>(p.n()), static_cast<long long>(p.k()),
              static_cast<long long>(p.k()), static_cast<long long>(p.m()));

  SgemmMeasured m = measure_sgemm(p, bench::kSgemmUnits);
  std::printf("sequential seconds: C=%.4f Triolet=%.4f Eden=%.4f\n", m.seq_c,
              m.seq_triolet, m.seq_eden);

  // Speedup denominator: the C loop code measured identically to the
  // parallel task times (whole-program seq times are reported above).
  const double denom = seq_equivalent_seconds(m.lowlevel);

  std::vector<ScalingSeries> series{
      run_series(m.lowlevel, bench::kNodes, bench::kCoresPerNode),
      run_series(m.triolet, bench::kNodes, bench::kCoresPerNode),
      run_series(m.eden, bench::kNodes, bench::kCoresPerNode),
  };
  print_figure("Figure 5: sgemm", denom, series);

  const double su_c = final_speedup(series[0], denom);
  const double su_t = final_speedup(series[1], denom);
  std::printf("\nat 128 cores: C+MPI+OpenMP=%.1fx Triolet=%.1fx\n", su_c, su_t);

  // Eden fails at every multi-node configuration but runs single-node.
  bool eden_single_ok = true, eden_multi_fails = true;
  for (const auto& pt : series[2].points) {
    if (pt.cores <= bench::kCoresPerNode && pt.failed()) eden_single_ok = false;
    if (pt.cores > bench::kCoresPerNode && !pt.failed()) eden_multi_fails = false;
  }
  shape_check("Eden fails at >= 2 nodes (message buffer exhausted)",
              eden_multi_fails);
  shape_check("Eden still runs within one node", eden_single_ok);
  shape_check("Triolet within 23-100% of C+MPI+OpenMP at 128 cores",
              su_t >= 0.23 * su_c && su_t <= 1.05 * su_c);
  shape_check("both saturate: 128-core speedup well below linear",
              su_c < 90.0 && su_t < 90.0);
  // Saturation: going 64 -> 128 cores gains little.
  auto speedup_at = [&](const ScalingSeries& s, int cores) {
    for (const auto& pt : s.points) {
      if (pt.cores == cores && !pt.failed()) return denom / pt.seconds;
    }
    return std::nan("");
  };
  double t64 = speedup_at(series[1], 64), t128 = speedup_at(series[1], 128);
  shape_check("Triolet's curve flattens toward 8 nodes (<35% gain 64->128)",
              t128 < 1.35 * t64);

  // Overhead attribution, as the paper's §4.3 analysis does.
  // (a) "At 8 nodes, 40% of Triolet's overhead relative to C+MPI+OpenMP is
  //     attributable to the garbage collector" — re-simulate Triolet with
  //     malloc-like allocation (multiplier 1) and compare, exactly the
  //     paper's libc-malloc substitution experiment.
  {
    MeasuredSystem no_gc = m.triolet;
    no_gc.net.alloc_multiplier = 1.0;
    double t_gc = simulate_point(m.triolet, 8, 16).seconds;
    double t_malloc = simulate_point(no_gc, 8, 16).seconds;
    double t_c = simulate_point(m.lowlevel, 8, 16).seconds;
    double overhead = t_gc - t_c;
    double gc_share = overhead > 0 ? (t_gc - t_malloc) / overhead : 0.0;
    std::printf("\nTriolet 8-node overhead attribution: total %.5fs over C, "
                "%.0f%% from allocator (paper: 40%%)\n",
                overhead, 100.0 * gc_share);
    // Our cost model carries fewer non-GC overheads than the real runtime,
    // so the allocator's share lands higher than the paper's 40%; the
    // reproduced claim is that allocation is a major, removable component.
    shape_check("allocation is a major component of Triolet's 8-node gap "
                "(>20%), removable by a malloc-style allocator",
                gc_share > 0.20 && t_malloc < t_gc);
  }
  // (b) "At 128 cores, transposition takes 35% of Eden's execution time" —
  //     Eden transposes sequentially at the master. Our Eden fails beyond
  //     one node, so report the fraction at its largest completing config.
  {
    // Lift the buffer limit to evaluate the hypothetical 128-core Eden run
    // the paper measured before it started failing.
    MeasuredSystem unbounded = m.eden;
    unbounded.buffer_capacity = 0;
    double t_eden = simulate_point(unbounded, 8, 16).seconds;
    double frac = m.eden.root_prep_seconds / t_eden;
    std::printf("Eden sequential-transpose share at 128 cores: %.0f%% "
                "(paper: 35%%)\n",
                100.0 * frac);
    // Informational only — scale artifact (EXPERIMENTS.md): a 384x384
    // transpose fits in cache and costs ~1% here, where the paper's
    // 4k x 4k took 35% of Eden's time. What does reproduce is the cause:
    // Eden's transpose runs serially at the master while Triolet's runs
    // under localpar (compare root_prep handling in measure_sgemm).
    (void)frac;
  }
  return 0;
}
