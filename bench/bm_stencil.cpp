// 2D heat sweep under dist::halo_exchange: ghost-row traffic and
// communication/compute overlap at 8 ranks.
//
// Each rank owns a contiguous row slab of an ny x nx grid (make_halo_slab)
// and runs Jacobi sweeps of the 5-point clamped heat stencil via
// halo_sweep: the exchange posts both neighbor bands as zero-copy borrowed
// segments, the interior rows compute while the bands are in flight, and
// only then are the ghost rows landed and the boundary computed. The
// alternative a skeleton-only system forces is rescattering the whole grid
// every sweep; the baseline here measures exactly that (build_array1 of the
// full grid per sweep through the scheduled path would drown the signal, so
// the baseline ships each slab's full payload through the same isend path
// the halo bands use).
//
// Measured: rank-0 wall time of the sweep loop, CommStats.views halo
// counters (halo_bytes, ghost_cells, halo_overlap_seconds), and the
// boundary-vs-payload traffic ratio. Correctness: the distributed grid
// after k sweeps is compared bitwise against a sequential reference at
// every rank count.
//
// Flags: --ranks=N --sweeps=N --check (CI smoke: small grid, no timing
// thresholds; exit 1 unless the bitwise and O(boundary) checks hold).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_problems.hpp"
#include "core/triolet.hpp"
#include "dist/halo.hpp"
#include "net/cluster.hpp"
#include "support/table.hpp"
#include "support/timing.hpp"

using namespace triolet;
using core::index_t;

namespace {

double initial(index_t y, index_t x) {
  return std::sin(0.05 * static_cast<double>(y)) +
         std::cos(0.03 * static_cast<double>(x));
}

/// Clamped 5-point heat kernel: reads row y-1/y+1 where they exist (ghost
/// rows stand in for the neighbor's boundary), clamps at physical edges.
struct Heat {
  template <typename G>
  double operator()(const G& g, index_t y, index_t x) const {
    const index_t ylo = std::max(y - 1, g.row_lo());
    const index_t yhi = std::min(y + 1, g.row_hi() - 1);
    const index_t xlo = x > 0 ? x - 1 : x;
    const index_t xhi = x + 1 < g.cols() ? x + 1 : x;
    return 0.2 * (g(y, x) + g(ylo, x) + g(yhi, x) + g(y, xlo) + g(y, xhi));
  }
};

/// Sequential reference: the same sweeps on one undivided grid.
std::vector<double> reference(index_t ny, index_t nx, int sweeps) {
  Array2<double> cur(ny, nx, 0.0), next(ny, nx, 0.0);
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) cur(y, x) = initial(y, x);
  }
  Heat h;
  for (int s = 0; s < sweeps; ++s) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) next(y, x) = h(cur, y, x);
    }
    std::swap(cur, next);
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(ny * nx));
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) out.push_back(cur(y, x));
  }
  return out;
}

struct RunResult {
  double seconds = 0;
  std::vector<double> grid;  // gathered owned rows, row-major
  net::ViewStats views;
  std::int64_t bytes_sent = 0;
};

/// Distributed sweeps via halo_sweep; gathers the owned rows to rank 0
/// after the clock stops.
RunResult run_halo(int ranks, index_t ny, index_t nx, int sweeps) {
  RunResult out;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    auto cur = dist::make_halo_slab<double>(ny, nx, 1, comm.rank(),
                                            comm.size());
    auto next = dist::make_halo_slab<double>(ny, nx, 1, comm.rank(),
                                             comm.size());
    for (index_t y = cur.y0; y < cur.y1; ++y) {
      for (index_t x = 0; x < nx; ++x) cur.grid(y, x) = initial(y, x);
    }
    comm.barrier();
    Stopwatch sw;
    for (int s = 0; s < sweeps; ++s) {
      dist::halo_sweep(comm, cur, next, Heat{}, s);
      std::swap(cur, next);
    }
    comm.barrier();
    const double secs = sw.seconds();
    std::vector<double> mine;
    mine.reserve(static_cast<std::size_t>(cur.rows() * nx));
    for (index_t y = cur.y0; y < cur.y1; ++y) {
      for (index_t x = 0; x < nx; ++x) mine.push_back(cur.grid(y, x));
    }
    auto all = comm.gather(mine, 0);
    if (comm.rank() == 0) {
      out.seconds = secs;
      for (auto& part : all) {
        out.grid.insert(out.grid.end(), part.begin(), part.end());
      }
    }
  });
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  out.views = res.total_stats.views;
  out.bytes_sent = res.total_stats.bytes_sent;
  return out;
}

/// Rescatter baseline: identical sweeps, but each sweep every rank also
/// ships its full slab payload to a neighbor (what a system without ghost
/// exchange pays to rebuild remote state), then waits for the mirror copy.
RunResult run_rescatter(int ranks, index_t ny, index_t nx, int sweeps) {
  RunResult out;
  auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
    auto cur = dist::make_halo_slab<double>(ny, nx, 1, comm.rank(),
                                            comm.size());
    auto next = dist::make_halo_slab<double>(ny, nx, 1, comm.rank(),
                                             comm.size());
    for (index_t y = cur.y0; y < cur.y1; ++y) {
      for (index_t x = 0; x < nx; ++x) cur.grid(y, x) = initial(y, x);
    }
    const int peer = comm.rank() ^ 1;  // pairwise full-slab swap
    comm.barrier();
    Stopwatch sw;
    for (int s = 0; s < sweeps; ++s) {
      if (peer < comm.size()) {
        std::vector<double> slab;
        slab.reserve(static_cast<std::size_t>(cur.rows() * nx));
        for (index_t y = cur.y0; y < cur.y1; ++y) {
          for (index_t x = 0; x < nx; ++x) slab.push_back(cur.grid(y, x));
        }
        comm.send(peer, 7, slab);
        (void)comm.recv<std::vector<double>>(peer, 7);
      }
      dist::halo_sweep(comm, cur, next, Heat{}, s);
      std::swap(cur, next);
    }
    comm.barrier();
    if (comm.rank() == 0) out.seconds = sw.seconds();
  });
  if (!res.ok) {
    std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
    std::exit(1);
  }
  out.bytes_sent = res.total_stats.bytes_sent;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int ranks = bench::kNodes;
  int sweeps = 50;
  bool check_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--sweeps=", 0) == 0) {
      sweeps = std::atoi(arg.c_str() + 9);
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  const index_t ny = check_only ? 96 : 1024;
  const index_t nx = check_only ? 64 : 1024;
  if (check_only) sweeps = std::min(sweeps, 6);

  std::printf("== bm_stencil: 2D heat via halo_exchange, %d ranks, "
              "%lld x %lld grid, %d sweeps ==\n",
              ranks, static_cast<long long>(ny), static_cast<long long>(nx),
              sweeps);

  const auto ref = reference(ny, nx, sweeps);

  // Warm-up, then measure.
  (void)run_halo(ranks, ny, nx, 2);
  RunResult halo = run_halo(ranks, ny, nx, sweeps);
  RunResult rescatter = run_rescatter(ranks, ny, nx, sweeps);

  const auto& vs = halo.views;
  // Boundary traffic per sweep: 2*(ranks-1) bands of radius*nx cells.
  const std::int64_t expect_ghost =
      static_cast<std::int64_t>(sweeps) * 2 * (ranks - 1) * nx;
  const std::int64_t payload_cells =
      static_cast<std::int64_t>(ny) * nx * sweeps;

  Table t({"variant", "time (s)", "bytes sent", "ghost cells",
           "overlap (s)"});
  t.add_row({"halo exchange", Table::num(halo.seconds, 4),
             Table::num(halo.bytes_sent), Table::num(vs.ghost_cells),
             Table::num(vs.halo_overlap_seconds, 4)});
  t.add_row({"full-slab swap", Table::num(rescatter.seconds, 4),
             Table::num(rescatter.bytes_sent), "-", "-"});
  t.print("2D heat, " + std::to_string(sweeps) + " sweeps, " +
          std::to_string(ranks) + " ranks");

  bool ok = true;
  auto check = [&](const std::string& what, bool holds) {
    apps::shape_check(what, holds);
    ok = ok && holds;
  };
  check("distributed grid bitwise equals sequential reference",
        halo.grid.size() == ref.size() &&
            std::memcmp(halo.grid.data(), ref.data(),
                        ref.size() * sizeof(double)) == 0);
  {
    RunResult alt = run_halo(std::max(2, ranks / 2), ny, nx, sweeps);
    check("bitwise identical across rank counts",
          alt.grid.size() == ref.size() &&
              std::memcmp(alt.grid.data(), ref.data(),
                          ref.size() * sizeof(double)) == 0);
  }
  check("ghost traffic is O(boundary): exact band cell count",
        vs.ghost_cells == expect_ghost);
  check("halo bytes are a small fraction of the payload a rescatter ships",
        vs.halo_bytes < payload_cells * static_cast<std::int64_t>(
                            sizeof(double)) / 4);
  check("exchange overlap window is nonzero", vs.halo_overlap_seconds > 0.0);
  check("every sweep ran one exchange per rank",
        vs.halo_exchanges == static_cast<std::int64_t>(sweeps) * ranks);

  std::printf("\n{\n");
  std::printf("  \"workload\": {\"ny\": %lld, \"nx\": %lld, \"sweeps\": %d, "
              "\"ranks\": %d, \"radius\": 1},\n",
              static_cast<long long>(ny), static_cast<long long>(nx), sweeps,
              ranks);
  std::printf("  \"seconds\": {\"halo\": %.4f, \"full_slab_swap\": %.4f},\n",
              halo.seconds, rescatter.seconds);
  std::printf("  \"bytes_sent\": {\"halo\": %lld, \"full_slab_swap\": "
              "%lld},\n",
              static_cast<long long>(halo.bytes_sent),
              static_cast<long long>(rescatter.bytes_sent));
  std::printf("  \"views\": {\"halo_bytes\": %lld, \"ghost_cells\": %lld, "
              "\"halo_messages\": %lld, \"halo_overlap_seconds\": %.4f},\n",
              static_cast<long long>(vs.halo_bytes),
              static_cast<long long>(vs.ghost_cells),
              static_cast<long long>(vs.halo_messages),
              vs.halo_overlap_seconds);
  std::printf("  \"bitwise_identical_to_sequential\": %s\n",
              ok ? "true" : "false");
  std::printf("}\n");
  return ok ? 0 : 1;
}
