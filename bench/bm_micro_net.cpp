// Microbenchmarks of the message-passing substrate: point-to-point latency
// and throughput, collectives, and end-to-end typed round trips, measured
// over real SPMD rank threads.

#include <benchmark/benchmark.h>

#include <numeric>

#include "net/cluster.hpp"

namespace {

using namespace triolet;

void BM_Net_PingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = net::Cluster::run(2, [&](net::Comm& c) {
      for (int i = 0; i < rounds; ++i) {
        if (c.rank() == 0) {
          c.send(1, 1, i);
          benchmark::DoNotOptimize(c.recv<int>(1, 2));
        } else {
          benchmark::DoNotOptimize(c.recv<int>(0, 1));
          c.send(0, 2, i);
        }
      }
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_Net_PingPong)->Arg(256);

void BM_Net_LargePayloadThroughput(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<float> payload(bytes / 4, 1.5f);
  for (auto _ : state) {
    auto res = net::Cluster::run(2, [&](net::Comm& c) {
      if (c.rank() == 0) {
        c.send(1, 1, payload);
      } else {
        benchmark::DoNotOptimize(c.recv<std::vector<float>>(0, 1));
      }
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_Net_LargePayloadThroughput)->Arg(1 << 16)->Arg(1 << 22);

void BM_Net_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = net::Cluster::run(ranks, [](net::Comm& c) {
      for (int i = 0; i < 16; ++i) {
        benchmark::DoNotOptimize(
            c.allreduce(c.rank() + i, [](int a, int b) { return a + b; }));
      }
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Net_Allreduce)->Arg(2)->Arg(8)->Arg(16)->Arg(32);

void BM_Net_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = net::Cluster::run(ranks, [](net::Comm& c) {
      for (int i = 0; i < 64; ++i) c.barrier();
    });
    if (!res.ok) state.SkipWithError("cluster failed");
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Net_Barrier)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
