#pragma once

// Global data segments (paper §3.4): "Pointers to global data are
// serialized as a segment identifier and offset."
//
// Large immutable data that every rank already holds (lookup tables,
// constant geometry) should not cross the wire repeatedly. A value is
// *published* once into the process-wide SegmentRegistry; the resulting
// GlobalRef<T> serializes as just its segment identifier, and deserializing
// resolves the identifier back to the shared value. On this in-process SPMD
// substrate every rank shares the registry, mirroring the identical global
// segments of an SPMD binary on a real cluster.
//
// GlobalRef also works as an iterator *context* (see core::map_with): a
// fused loop can reference megabytes of published data while its serialized
// task stays a few bytes.
//
// Type safety: each segment records a type tag; resolving with the wrong
// type aborts rather than reinterpreting memory.

#include <cstdint>
#include <memory>
#include <mutex>
#include <typeindex>
#include <vector>

#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet::serial {

using segment_id_t = std::uint64_t;

class SegmentRegistry {
 public:
  static SegmentRegistry& instance() {
    static SegmentRegistry reg;
    return reg;
  }

  template <typename T>
  segment_id_t publish(std::shared_ptr<const T> value) {
    TRIOLET_CHECK(value != nullptr, "cannot publish a null segment");
    std::lock_guard<std::mutex> lock(mu_);
    segments_.push_back(Entry{std::static_pointer_cast<const void>(value),
                              std::type_index(typeid(T))});
    return static_cast<segment_id_t>(segments_.size() - 1);
  }

  template <typename T>
  std::shared_ptr<const T> resolve(segment_id_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    TRIOLET_CHECK(id < segments_.size(), "unknown global segment id");
    const Entry& e = segments_[static_cast<std::size_t>(id)];
    TRIOLET_CHECK(e.type == std::type_index(typeid(T)),
                  "global segment resolved with the wrong type");
    return std::static_pointer_cast<const T>(e.data);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return segments_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<const void> data;
    std::type_index type;
  };

  mutable std::mutex mu_;
  std::vector<Entry> segments_;
};

/// A handle to published global data. Copying and serializing are O(1);
/// `get()` resolves (and caches) the shared value.
template <typename T>
class GlobalRef {
 public:
  GlobalRef() = default;  // unresolved; filled by deserialization

  /// Publishes `value` into the registry and returns its handle.
  static GlobalRef publish(T value) {
    auto owned = std::make_shared<const T>(std::move(value));
    GlobalRef ref;
    ref.id_ = SegmentRegistry::instance().publish<T>(owned);
    ref.cached_ = std::move(owned);
    return ref;
  }

  segment_id_t id() const { return id_; }

  const T& get() const {
    if (!cached_) {
      cached_ = SegmentRegistry::instance().resolve<T>(id_);
    }
    return *cached_;
  }

  bool operator==(const GlobalRef& o) const { return id_ == o.id_; }

 private:
  template <typename U, typename>
  friend struct Codec;

  segment_id_t id_ = ~segment_id_t{0};
  mutable std::shared_ptr<const T> cached_;
};

template <typename T>
struct Codec<GlobalRef<T>> {
  static void write(ByteWriter& w, const GlobalRef<T>& g) {
    w.write_pod<segment_id_t>(g.id());
  }
  static void read(ByteReader& r, GlobalRef<T>& g) {
    g.id_ = r.read_pod<segment_id_t>();
    g.cached_.reset();
  }
};

}  // namespace triolet::serial
