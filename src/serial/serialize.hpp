#pragma once

// Type-driven serialization, the C++ analogue of Triolet's compiler-generated
// serialization for algebraic data types (§3.4).
//
// Where Triolet's compiler derives serializers from type definitions, this
// library derives them from C++ type structure:
//   * trivially copyable types  -> memcpy of the object representation
//   * std::vector<T>/std::string -> length + elements, with a block-copy
//     fast path when T is trivially copyable (the paper notes the majority
//     of serialized data lives in pointer-free arrays)
//   * pair/tuple/array/optional -> element-wise
//   * user aggregates           -> TRIOLET_SERIALIZE_FIELDS(Type, ...) which
//     generates the visit function the compiler would have generated
//
// Everything round-trips through ByteWriter/ByteReader so a value can be
// shipped over the net:: substrate as an opaque byte payload.

#include <array>
#include <map>
#include <unordered_map>
#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "serial/bytes.hpp"

namespace triolet::serial {

template <typename T, typename = void>
struct Codec;  // primary template: specialized below

/// Types with a *partial* Codec specialization that could also be trivially
/// copyable (e.g. an iterator over a data-free source) specialize this to
/// opt out of the generic memcpy codec and avoid an ambiguity.
template <typename T>
struct use_custom_codec : std::false_type {};

// -- detection of user aggregates that declared their fields ---------------

template <typename T, typename = void>
struct has_fields : std::false_type {};

template <typename T>
struct has_fields<T, std::void_t<decltype(triolet_visit_fields(
                         std::declval<T&>(), [](auto&...) {}))>>
    : std::true_type {};

// -- trivially copyable fast path -------------------------------------------

template <typename T>
struct Codec<T, std::enable_if_t<std::is_trivially_copyable_v<T> &&
                                 !has_fields<T>::value &&
                                 !use_custom_codec<T>::value>> {
  static void write(ByteWriter& w, const T& v) { w.write_pod(v); }
  static void read(ByteReader& r, T& v) { v = r.read_pod<T>(); }
};

// -- generic helpers ---------------------------------------------------------

template <typename T>
void write(ByteWriter& w, const T& v) {
  Codec<std::remove_cvref_t<T>>::write(w, v);
}

template <typename T>
void read(ByteReader& r, T& v) {
  Codec<std::remove_cvref_t<T>>::read(r, v);
}

template <typename T>
T read(ByteReader& r) {
  T v{};
  read(r, v);
  return v;
}

// -- vectors and strings -----------------------------------------------------

template <typename T>
struct Codec<std::vector<T>> {
  static void write(ByteWriter& w, const std::vector<T>& v) {
    w.write_pod<std::uint64_t>(v.size());
    if constexpr (std::is_trivially_copyable_v<T>) {
      // Block copy; on a segment-mode writer, large spans are recorded as
      // borrowed iovec segments instead (the zero-copy send path).
      w.write_borrowable(v.data(), v.size() * sizeof(T));
    } else {
      for (const auto& e : v) serial::write(w, e);
    }
  }
  static void read(ByteReader& r, std::vector<T>& v) {
    const auto n = r.read_pod<std::uint64_t>();
    v.resize(static_cast<std::size_t>(n));
    if constexpr (std::is_trivially_copyable_v<T>) {
      r.read_raw(v.data(), v.size() * sizeof(T));
    } else {
      for (auto& e : v) serial::read(r, e);
    }
  }
};

// std::vector<bool> is a packed proxy container: the contiguous fast path
// cannot apply, so it is framed bytewise.
template <>
struct Codec<std::vector<bool>> {
  static void write(ByteWriter& w, const std::vector<bool>& v) {
    w.write_pod<std::uint64_t>(v.size());
    for (bool b : v) w.write_pod<std::uint8_t>(b ? 1 : 0);
  }
  static void read(ByteReader& r, std::vector<bool>& v) {
    const auto n = r.read_pod<std::uint64_t>();
    v.resize(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = r.read_pod<std::uint8_t>() != 0;
    }
  }
};

template <>
struct Codec<std::string> {
  static void write(ByteWriter& w, const std::string& v) {
    w.write_pod<std::uint64_t>(v.size());
    w.write_borrowable(v.data(), v.size());
  }
  static void read(ByteReader& r, std::string& v) {
    const auto n = r.read_pod<std::uint64_t>();
    v.resize(static_cast<std::size_t>(n));
    r.read_raw(v.data(), v.size());
  }
};

// -- associative containers ---------------------------------------------------

template <typename K, typename V, typename C, typename A>
struct Codec<std::map<K, V, C, A>> {
  static void write(ByteWriter& w, const std::map<K, V, C, A>& m) {
    w.write_pod<std::uint64_t>(m.size());
    for (const auto& [k, v] : m) {
      serial::write(w, k);
      serial::write(w, v);
    }
  }
  static void read(ByteReader& r, std::map<K, V, C, A>& m) {
    m.clear();
    const auto n = r.read_pod<std::uint64_t>();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      serial::read(r, k);
      V v{};
      serial::read(r, v);
      m.emplace(std::move(k), std::move(v));
    }
  }
};

template <typename K, typename V, typename H, typename E, typename A>
struct Codec<std::unordered_map<K, V, H, E, A>> {
  static void write(ByteWriter& w,
                    const std::unordered_map<K, V, H, E, A>& m) {
    // Deterministic wire form regardless of hash ordering: sort by key.
    std::map<K, V> sorted(m.begin(), m.end());
    serial::write(w, sorted);
  }
  static void read(ByteReader& r, std::unordered_map<K, V, H, E, A>& m) {
    std::map<K, V> sorted;
    serial::read(r, sorted);
    m.clear();
    for (auto& [k, v] : sorted) m.emplace(k, std::move(v));
  }
};

// -- pairs, tuples, arrays, optionals ---------------------------------------

template <typename A, typename B>
struct Codec<std::pair<A, B>,
             std::enable_if_t<!std::is_trivially_copyable_v<std::pair<A, B>>>> {
  static void write(ByteWriter& w, const std::pair<A, B>& v) {
    serial::write(w, v.first);
    serial::write(w, v.second);
  }
  static void read(ByteReader& r, std::pair<A, B>& v) {
    serial::read(r, v.first);
    serial::read(r, v.second);
  }
};

template <typename... Ts>
struct Codec<std::tuple<Ts...>,
             std::enable_if_t<!std::is_trivially_copyable_v<std::tuple<Ts...>>>> {
  static void write(ByteWriter& w, const std::tuple<Ts...>& v) {
    std::apply([&](const auto&... e) { (serial::write(w, e), ...); }, v);
  }
  static void read(ByteReader& r, std::tuple<Ts...>& v) {
    std::apply([&](auto&... e) { (serial::read(r, e), ...); }, v);
  }
};

template <typename T, std::size_t N>
struct Codec<std::array<T, N>,
             std::enable_if_t<!std::is_trivially_copyable_v<std::array<T, N>>>> {
  static void write(ByteWriter& w, const std::array<T, N>& v) {
    for (const auto& e : v) serial::write(w, e);
  }
  static void read(ByteReader& r, std::array<T, N>& v) {
    for (auto& e : v) serial::read(r, e);
  }
};

template <typename T>
struct Codec<std::optional<T>,
             std::enable_if_t<!std::is_trivially_copyable_v<std::optional<T>>>> {
  static void write(ByteWriter& w, const std::optional<T>& v) {
    w.write_pod<std::uint8_t>(v.has_value() ? 1 : 0);
    if (v) serial::write(w, *v);
  }
  static void read(ByteReader& r, std::optional<T>& v) {
    if (r.read_pod<std::uint8_t>()) {
      v.emplace();
      serial::read(r, *v);
    } else {
      v.reset();
    }
  }
};

// -- user aggregates ----------------------------------------------------------

template <typename T>
struct Codec<T, std::enable_if_t<has_fields<T>::value>> {
  static void write(ByteWriter& w, const T& v) {
    triolet_visit_fields(const_cast<T&>(v),
                         [&](auto&... fields) { (serial::write(w, fields), ...); });
  }
  static void read(ByteReader& r, T& v) {
    triolet_visit_fields(v,
                         [&](auto&... fields) { (serial::read(r, fields), ...); });
  }
};

// -- top-level convenience ----------------------------------------------------

template <typename T>
std::vector<std::byte> to_bytes(const T& v) {
  ByteWriter w;
  write(w, v);
  return w.take();
}

/// Serializes `v` as a scatter-gather list: large trivially-copyable array
/// spans are *borrowed*, not copied, so `v` (and anything it references)
/// must outlive the returned SegmentedBytes until it is gathered. The
/// net:: substrate uses this for its zero-copy send path.
template <typename T>
SegmentedBytes to_segments(const T& v) {
  ByteWriter w = ByteWriter::segmented();
  write(w, v);
  return w.take_segments();
}

template <typename T>
T from_bytes(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  T v = read<T>(r);
  TRIOLET_CHECK(r.exhausted(), "trailing bytes after deserialization");
  return v;
}

/// Number of bytes `v` occupies on the wire (by dry-running the writer).
template <typename T>
std::size_t wire_size(const T& v) {
  ByteWriter w;
  write(w, v);
  return w.size();
}

}  // namespace triolet::serial

/// Declares the field list of an aggregate for serialization, mimicking the
/// serializer Triolet's compiler generates from an algebraic data type.
/// Must be invoked at namespace scope of the type (ADL finds it).
#define TRIOLET_SERIALIZE_FIELDS(Type, ...)                      \
  template <typename F>                                          \
  void triolet_visit_fields(Type& obj, F&& f) {                  \
    auto& [__VA_ARGS__] = obj;                                   \
    f(__VA_ARGS__);                                              \
  }
