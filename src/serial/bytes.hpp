#pragma once

// Byte-buffer primitives for the serialization framework.
//
// The paper's runtime serializes objects to byte arrays before sending them
// between cluster nodes (§3.4). `ByteWriter` and `ByteReader` are the
// low-level halves of that facility: a growable output buffer and a
// bounds-checked input cursor. Pointer-free arrays take the block-copy fast
// path through `write_raw`/`read_raw`.

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "support/macros.hpp"

namespace triolet::serial {

class ByteWriter {
 public:
  ByteWriter() = default;

  void reserve(std::size_t n) { buf_.reserve(n); }

  void write_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_raw(&v, sizeof(T));
  }

  std::size_t size() const { return buf_.size(); }
  std::span<const std::byte> bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  void read_raw(void* out, std::size_t n) {
    TRIOLET_CHECK(pos_ + n <= bytes_.size(),
                  "deserialization read past end of buffer");
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read_raw(&v, sizeof(T));
    return v;
  }

  /// Borrow `n` bytes in place without copying (valid while the underlying
  /// buffer lives). Used by the array block-copy fast path.
  std::span<const std::byte> view_raw(std::size_t n) {
    TRIOLET_CHECK(pos_ + n <= bytes_.size(),
                  "deserialization view past end of buffer");
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace triolet::serial
