#pragma once

// Byte-buffer primitives for the serialization framework.
//
// The paper's runtime serializes objects to byte arrays before sending them
// between cluster nodes (§3.4). `ByteWriter` and `ByteReader` are the
// low-level halves of that facility: a growable output buffer and a
// bounds-checked input cursor. Pointer-free arrays take the block-copy fast
// path through `write_raw`/`read_raw`.
//
// Zero-copy path: a writer opened in *segment mode* records large
// trivially-copyable array spans as borrowed iovec segments instead of
// memcpy'ing them into the staging buffer. `take_segments()` returns the
// scatter-gather list; the net:: substrate assembles it directly into the
// delivered payload, so bulk array bytes are copied once (source -> wire)
// instead of twice (source -> staging buffer -> wire). Borrowed spans must
// stay alive and unmodified until the segments are gathered — the same
// contract MPI_Isend places on its buffer until MPI_Wait.

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "serial/checksum.hpp"
#include "support/macros.hpp"

namespace triolet::serial {

/// Recycled staging-buffer cache. Serialization staging vectors and eager
/// message payload vectors churn at message rate; routing them through a
/// small thread-local stack (capacity is retained across uses) makes the
/// serialize -> send -> receive -> deserialize loop allocation-free once
/// warm. acquire returns an empty vector (possibly with capacity);
/// recycle clears and caches `v`, silently dropping it when the stack is
/// full. Both are safe from any thread (each thread has its own stack).
std::vector<std::byte> acquire_stream_buffer();
void recycle_stream_buffer(std::vector<std::byte> v);

/// Spans at least this large take the borrowed (zero-copy) path when the
/// writer is in segment mode; smaller spans are cheaper to memcpy into the
/// staging stream than to track as separate iovec entries.
inline constexpr std::size_t kBorrowThresholdBytes = 1024;

/// A scatter-gather view of one serialized payload: the copied staging
/// stream plus an ordered segment list. Owned segments reference ranges of
/// `owned`; borrowed segments reference caller memory that must outlive the
/// gather.
class SegmentedBytes {
 public:
  struct Segment {
    bool borrowed;
    std::size_t owned_offset;    // valid when !borrowed
    const std::byte* ext;        // valid when borrowed
    std::size_t len;
  };

  SegmentedBytes() = default;
  SegmentedBytes(std::vector<std::byte> owned, std::vector<Segment> segments,
                 std::size_t total,
                 std::uint64_t stream_checksum = kChecksumSeed)
      : owned_(std::move(owned)), segments_(std::move(segments)),
        total_(total), stream_checksum_(stream_checksum) {}

  /// Wraps an already-flat payload as a single owned segment — the shape
  /// send_bytes produces when the caller hands over a finished vector.
  static SegmentedBytes from_flat(std::vector<std::byte> flat,
                                  std::uint64_t stream_checksum) {
    const std::size_t n = flat.size();
    std::vector<Segment> segs;
    if (n != 0) segs.push_back({false, 0, nullptr, n});
    return SegmentedBytes(std::move(flat), std::move(segs), n,
                          stream_checksum);
  }

  std::size_t size() const { return total_; }

  /// True when every byte lives in the owned staging stream (no borrowed
  /// spans with external lifetimes).
  bool all_owned() const { return bytes_borrowed() == 0; }

  /// Bytes that took the borrowed (zero-copy) path.
  std::size_t bytes_borrowed() const {
    std::size_t n = 0;
    for (const auto& s : segments_) {
      if (s.borrowed) n += s.len;
    }
    return n;
  }
  /// Bytes that went through the copied staging stream.
  std::size_t bytes_owned() const { return total_ - bytes_borrowed(); }

  /// Assembles the logical byte stream into `dst` (caller guarantees room
  /// for size() bytes). This is the single copy of the borrowed data.
  void gather_into(std::byte* dst) const {
    for (const auto& s : segments_) {
      const std::byte* src = s.borrowed ? s.ext : owned_.data() + s.owned_offset;
      if (s.len != 0) std::memcpy(dst, src, s.len);
      dst += s.len;
    }
  }

  /// Flattens into a fresh vector (the non-zero-copy fallback).
  std::vector<std::byte> gather() const {
    std::vector<std::byte> out(total_);
    gather_into(out.data());
    return out;
  }

  /// When nothing was borrowed the staging stream *is* the payload: steal
  /// it instead of gathering, so small fully-copied messages cost a move
  /// (the pre-segment behavior). Returns false if any segment is borrowed.
  bool take_flat(std::vector<std::byte>& out) {
    if (bytes_borrowed() != 0) return false;
    out = std::move(owned_);
    segments_.clear();
    total_ = 0;
    return true;
  }

  /// Steals the owned staging vector for recycling after the payload has
  /// been gathered elsewhere; leaves the object empty.
  std::vector<std::byte> take_owned_storage() {
    segments_.clear();
    total_ = 0;
    return std::move(owned_);
  }

  std::span<const Segment> segments() const { return segments_; }

  /// Checksum of the logical byte stream, accumulated at *write* time (see
  /// ByteWriter). Stamping messages with this value — instead of hashing the
  /// gathered payload — means a borrowed span that was sliced wrong or
  /// mutated between serialization and gather no longer checksums itself
  /// consistently: the receiver's validation catches it.
  std::uint64_t stream_checksum() const { return stream_checksum_; }

 private:
  std::vector<std::byte> owned_;
  std::vector<Segment> segments_;
  std::size_t total_ = 0;
  std::uint64_t stream_checksum_ = kChecksumSeed;
};

class ByteWriter {
 public:
  /// The staging buffer comes from the recycle cache, so a warm thread's
  /// writers reuse capacity instead of growing a fresh vector per message.
  ByteWriter() : buf_(acquire_stream_buffer()) {}
  ~ByteWriter() {
    if (buf_.capacity() != 0) recycle_stream_buffer(std::move(buf_));
  }
  ByteWriter(ByteWriter&&) = default;
  ByteWriter& operator=(ByteWriter&&) = default;

  /// A writer in segment mode records large spans passed to
  /// write_borrowable() as borrowed segments; harvest with take_segments().
  static ByteWriter segmented() {
    ByteWriter w;
    w.segment_mode_ = true;
    return w;
  }

  bool segment_mode() const { return segment_mode_; }

  void reserve(std::size_t n) { buf_.reserve(n); }

  void write_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
    total_ += n;
    if (segment_mode_) crc_ = checksum_accumulate(crc_, {p, n});
  }

  /// Like write_raw, but in segment mode spans of at least
  /// kBorrowThresholdBytes are recorded as borrowed segments — the caller
  /// promises `data` stays alive and unmodified until the segments are
  /// gathered. Outside segment mode this is exactly write_raw.
  void write_borrowable(const void* data, std::size_t n) {
    if (!segment_mode_ || n < kBorrowThresholdBytes) {
      write_raw(data, n);
      return;
    }
    flush_owned_segment();
    segments_.push_back(
        {true, 0, static_cast<const std::byte*>(data), n});
    total_ += n;
    crc_ = checksum_accumulate(crc_, {static_cast<const std::byte*>(data), n});
  }

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_raw(&v, sizeof(T));
  }

  /// Logical stream size (owned + borrowed).
  std::size_t size() const { return total_; }

  /// The flat stream; only valid outside segment mode (borrowed bytes are
  /// not in the staging buffer).
  std::span<const std::byte> bytes() const {
    TRIOLET_CHECK(segments_.empty(), "bytes() on a segmented writer");
    return buf_;
  }

  std::vector<std::byte> take() {
    TRIOLET_CHECK(segments_.empty(), "take() on a segmented writer");
    total_ = 0;
    return std::move(buf_);
  }

  /// Harvests the scatter-gather list (segment mode only). The result
  /// carries the stream checksum accumulated over every write — including
  /// bytes recorded as borrowed segments that were never copied here.
  SegmentedBytes take_segments() {
    flush_owned_segment();
    SegmentedBytes out(std::move(buf_), std::move(segments_), total_, crc_);
    buf_.clear();
    segments_.clear();
    total_ = 0;
    owned_flushed_ = 0;
    crc_ = kChecksumSeed;
    return out;
  }

 private:
  /// Closes the current owned range [owned_flushed_, buf_.size()) into a
  /// segment. Offsets (not pointers) are recorded because buf_ reallocates
  /// as it grows.
  void flush_owned_segment() {
    if (buf_.size() > owned_flushed_) {
      segments_.push_back(
          {false, owned_flushed_, nullptr, buf_.size() - owned_flushed_});
      owned_flushed_ = buf_.size();
    }
  }

  std::vector<std::byte> buf_;
  std::vector<SegmentedBytes::Segment> segments_;
  std::size_t total_ = 0;
  std::size_t owned_flushed_ = 0;
  std::uint64_t crc_ = kChecksumSeed;  // accumulated only in segment mode
  bool segment_mode_ = false;
};

/// Debug-mode lifetime sentinel for zero-copy reads. Spans handed out by
/// ByteReader::borrow() point into the underlying payload; whoever owns that
/// payload can retire the sentinel when the buffer is freed or recycled, and
/// any later borrow through the same reader aborts instead of silently
/// reading freed memory.
class BorrowSentinel {
 public:
  void retire() { retired_.store(true, std::memory_order_release); }
  bool retired() const { return retired_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> retired_{false};
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  void read_raw(void* out, std::size_t n) {
    TRIOLET_CHECK(n <= bytes_.size() - pos_,
                  "deserialization read past end of buffer");
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read_raw(&v, sizeof(T));
    return v;
  }

  /// Borrow `n` bytes in place without copying. The bounds check runs
  /// before the cursor moves (and is written overflow-safe: `pos_ + n`
  /// could wrap for a hostile length header), so a failed borrow leaves the
  /// reader position untouched. The span is valid only while the underlying
  /// payload lives; debug builds additionally check the lifetime sentinel
  /// on every borrow.
  std::span<const std::byte> borrow(std::size_t n) {
    TRIOLET_CHECK(n <= bytes_.size() - pos_,
                  "deserialization borrow past end of buffer");
#ifndef NDEBUG
    TRIOLET_CHECK(!sentinel_ || !sentinel_->retired(),
                  "borrow from a retired payload (use-after-free)");
#endif
    auto s = bytes_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Historical name for borrow().
  std::span<const std::byte> view_raw(std::size_t n) { return borrow(n); }

  /// Attaches the payload owner's lifetime sentinel (debug builds assert it
  /// on every borrow; release builds keep it only as documentation).
  void set_sentinel(std::shared_ptr<const BorrowSentinel> s) {
    sentinel_ = std::move(s);
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  std::shared_ptr<const BorrowSentinel> sentinel_;
};

}  // namespace triolet::serial
