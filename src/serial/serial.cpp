#include "serial/checksum.hpp"

namespace triolet::serial {

std::uint64_t checksum_accumulate(std::uint64_t state,
                                  std::span<const std::byte> bytes) {
  for (std::byte b : bytes) {
    state ^= static_cast<std::uint64_t>(b);
    state *= 0x100000001b3ull;
  }
  return state;
}

std::uint64_t checksum(std::span<const std::byte> bytes) {
  return checksum_accumulate(kChecksumSeed, bytes);
}

}  // namespace triolet::serial
