#include "serial/checksum.hpp"

namespace triolet::serial {

std::uint64_t checksum(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace triolet::serial
