#include "serial/checksum.hpp"

#include <vector>

#include "serial/bytes.hpp"

namespace triolet::serial {

namespace {

/// Per-thread LIFO of retired staging vectors. LIFO keeps the hottest
/// (largest-capacity, cache-warm) buffer on top; the small cap bounds idle
/// memory per thread.
constexpr std::size_t kStreamCacheCap = 8;

struct StreamBufferCache {
  std::vector<std::vector<std::byte>> stack;
};

thread_local StreamBufferCache tl_stream_cache;

}  // namespace

std::vector<std::byte> acquire_stream_buffer() {
  auto& stack = tl_stream_cache.stack;
  if (stack.empty()) return {};
  std::vector<std::byte> v = std::move(stack.back());
  stack.pop_back();
  return v;
}

void recycle_stream_buffer(std::vector<std::byte> v) {
  if (v.capacity() == 0) return;
  auto& stack = tl_stream_cache.stack;
  if (stack.size() >= kStreamCacheCap) return;
  v.clear();
  stack.push_back(std::move(v));
}

std::uint64_t checksum_accumulate(std::uint64_t state,
                                  std::span<const std::byte> bytes) {
  for (std::byte b : bytes) {
    state ^= static_cast<std::uint64_t>(b);
    state *= 0x100000001b3ull;
  }
  return state;
}

std::uint64_t checksum(std::span<const std::byte> bytes) {
  return checksum_accumulate(kChecksumSeed, bytes);
}

}  // namespace triolet::serial
