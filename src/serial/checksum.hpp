#pragma once

// Payload checksums. The net:: substrate stamps every message with a
// checksum so corruption (e.g. a slicing bug producing the wrong byte range)
// is caught at the receiver rather than surfacing as wrong numerics later.

#include <cstddef>
#include <cstdint>
#include <span>

namespace triolet::serial {

/// FNV-1a offset basis; `checksum(bytes) == checksum_accumulate(kChecksumSeed,
/// bytes)`, so a checksum can be built up incrementally across segments.
inline constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ull;

/// FNV-1a over a byte range; cheap and adequate for in-process integrity.
std::uint64_t checksum(std::span<const std::byte> bytes);

/// Folds `bytes` into a running FNV-1a state. Accumulating the chunks of a
/// stream in order yields the same value as one checksum() over the
/// concatenation — the property the zero-copy path relies on to stamp a
/// payload at *write* time, before borrowed segments are gathered.
std::uint64_t checksum_accumulate(std::uint64_t state,
                                  std::span<const std::byte> bytes);

}  // namespace triolet::serial
