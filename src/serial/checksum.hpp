#pragma once

// Payload checksums. The net:: substrate stamps every message with a
// checksum so corruption (e.g. a slicing bug producing the wrong byte range)
// is caught at the receiver rather than surfacing as wrong numerics later.

#include <cstddef>
#include <cstdint>
#include <span>

namespace triolet::serial {

/// FNV-1a over a byte range; cheap and adequate for in-process integrity.
std::uint64_t checksum(std::span<const std::byte> bytes);

}  // namespace triolet::serial
