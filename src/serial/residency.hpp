#pragma once

// Slice residency: the serialization-side half of the rescatter-avoidance
// protocol.
//
// The paper's data-distribution story (§3.5) slices a source so each node
// receives only the sub-array it needs — but a sliced payload is rebuilt and
// resent on every skeleton call, even when the receiver already holds those
// exact bytes from the previous round. This header defines the vocabulary
// that lets a codec ask "does the receiver already have this slice?" while
// it serializes:
//
//   * `SliceKey` names a slice of a resident source: (id, version, range).
//     The version is bumped whenever the source mutates, so a stale cached
//     slice can never be mistaken for current data.
//   * `ResidencyEncoder` / `ResidencyDecoder` are the sender/receiver hooks
//     a codec consults through a thread-local slot. With no scope installed,
//     codecs serialize slices inline exactly as before — residency is
//     strictly opt-in and invisible to non-resident types.
//   * `ResidentProviderRegistry` maps a source id back to its live bytes so
//     a receiver whose cache misses (or fails validation) can fetch the
//     authoritative slice from the owner.
//
// The net:: layer implements the encoder/decoder against its per-rank
// SliceCache (net/slice_cache.hpp, net/residency.hpp); dist:: supplies the
// resident source types (dist/dist_array.hpp).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "support/macros.hpp"

namespace triolet::serial {

/// Identity of one slice of a resident source. `lo`/`hi` are in the source's
/// own index space for arrays; context-style sources use [0, byte length).
struct SliceKey {
  std::uint64_t id = 0;       // process-unique source identity
  std::uint64_t version = 0;  // bumped on every mutation of the source
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  bool operator==(const SliceKey&) const = default;
};

struct SliceKeyHash {
  std::size_t operator()(const SliceKey& k) const {
    // FNV-1a over the fields; good enough for a per-rank cache map.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t v : {k.id, k.version, static_cast<std::uint64_t>(k.lo),
                            static_cast<std::uint64_t>(k.hi)}) {
      h = (h ^ v) * 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Sender-side hook. A codec about to serialize a resident slice offers the
/// key and the raw payload; a non-nullopt return is the payload checksum the
/// receiver will validate against, and the codec writes a token instead of
/// the bytes.
class ResidencyEncoder {
 public:
  virtual ~ResidencyEncoder() = default;
  virtual std::optional<std::uint64_t> try_token(
      const SliceKey& key, std::span<const std::byte> payload) = 0;
};

/// Receiver-side hook. `resolve` materializes a tokenized slice into `out`
/// (from cache, or by fetching from the owner on miss/corruption);
/// `store` records an inline-received slice for future rounds.
class ResidencyDecoder {
 public:
  virtual ~ResidencyDecoder() = default;
  virtual void resolve(const SliceKey& key, std::uint64_t checksum,
                       std::span<std::byte> out) = 0;
  virtual void store(const SliceKey& key,
                     std::span<const std::byte> payload) = 0;
};

namespace detail {
inline ResidencyEncoder*& tls_encoder() {
  thread_local ResidencyEncoder* enc = nullptr;
  return enc;
}
inline ResidencyDecoder*& tls_decoder() {
  thread_local ResidencyDecoder* dec = nullptr;
  return dec;
}
}  // namespace detail

/// The encoder active on this thread, or nullptr (serialize inline).
inline ResidencyEncoder* current_residency_encoder() {
  return detail::tls_encoder();
}
/// The decoder active on this thread, or nullptr (tokens are an error).
inline ResidencyDecoder* current_residency_decoder() {
  return detail::tls_decoder();
}

/// RAII installation of an encoder for the enclosing serialization calls.
class ScopedResidencyEncoder {
 public:
  explicit ScopedResidencyEncoder(ResidencyEncoder* enc)
      : prev_(detail::tls_encoder()) {
    detail::tls_encoder() = enc;
  }
  ~ScopedResidencyEncoder() { detail::tls_encoder() = prev_; }
  ScopedResidencyEncoder(const ScopedResidencyEncoder&) = delete;
  ScopedResidencyEncoder& operator=(const ScopedResidencyEncoder&) = delete;

 private:
  ResidencyEncoder* prev_;
};

/// RAII installation of a decoder for the enclosing deserialization calls.
class ScopedResidencyDecoder {
 public:
  explicit ScopedResidencyDecoder(ResidencyDecoder* dec)
      : prev_(detail::tls_decoder()) {
    detail::tls_decoder() = dec;
  }
  ~ScopedResidencyDecoder() { detail::tls_decoder() = prev_; }
  ScopedResidencyDecoder(const ScopedResidencyDecoder&) = delete;
  ScopedResidencyDecoder& operator=(const ScopedResidencyDecoder&) = delete;

 private:
  ResidencyDecoder* prev_;
};

/// Process-wide map from resident-source id to a provider that can produce
/// the authoritative bytes of any slice (the cache-miss fallback source).
/// DistArray/DistContext register on construction and unregister on
/// destruction; ids are never reused within a process.
class ResidentProviderRegistry {
 public:
  using Provider = std::function<std::vector<std::byte>(const SliceKey&)>;

  static ResidentProviderRegistry& instance() {
    static ResidentProviderRegistry r;
    return r;
  }

  std::uint64_t register_provider(Provider p) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = next_id_++;
    providers_.emplace(id, std::move(p));
    return id;
  }

  void unregister(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    providers_.erase(id);
  }

  /// Fetches the authoritative bytes for `key`. The provider validates the
  /// version itself (a fetch for a retired version is a protocol bug).
  std::vector<std::byte> fetch(const SliceKey& key) const {
    Provider p;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = providers_.find(key.id);
      TRIOLET_CHECK(it != providers_.end(),
                    "resident fetch for an unregistered source id");
      p = it->second;
    }
    return p(key);  // outside the lock: providers may serialize large values
  }

 private:
  ResidentProviderRegistry() = default;

  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;  // 0 means "no identity"
  std::unordered_map<std::uint64_t, Provider> providers_;
};

}  // namespace triolet::serial
