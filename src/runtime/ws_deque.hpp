#pragma once

// Chase–Lev work-stealing deque.
//
// Memory ordering follows Lê, Pop, Cohen, Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP'13). The owner
// pushes/pops at the bottom; thieves steal from the top. Elements must be
// trivially copyable; they are stored as arrays of relaxed atomic words so
// that the racy slot reads the algorithm permits (a thief reading a slot
// the owner is about to overwrite, discarded when the top CAS fails) are
// data-race-free under the C++ memory model and clean under TSan. Values
// wider than one word can tear across words during such a race, but a torn
// read is only ever observed by a thief whose claiming CAS fails, so the
// torn value is discarded.
//
// Buffer growth retires old buffers instead of freeing them immediately: a
// thief holding a stale buffer pointer still reads valid slots for the
// indices it can observe. Retired buffers are reclaimed either at
// destruction or when the owner calls reclaim_retired() at a quiescent
// point (the thread pool does this when no thief is mid-steal, bounding
// retired growth over the pool's lifetime instead of deferring it all to
// teardown).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "support/macros.hpp"

namespace triolet::runtime {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit WsDeque(std::int64_t initial_capacity = 64)
      : top_(0), bottom_(0), buffer_(new Buffer(initial_capacity)) {}

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  ~WsDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  /// Owner only.
  void push(T item) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Returns false if the deque observed empty.
  bool pop(T& out) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    bool ok = false;
    if (t <= b) {
      out = buf->get(b);
      ok = true;
      if (t == b) {
        // Last element: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          ok = false;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return ok;
  }

  /// Any thread. Returns false if empty or if the steal lost a race.
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      Buffer* buf = buffer_.load(std::memory_order_consume);
      T item = buf->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return false;  // lost the race; caller may retry elsewhere
      }
      out = item;
      return true;
    }
    return false;
  }

  /// Approximate size; only advisory (used for victim selection heuristics).
  std::int64_t size_approx() const {
    std::int64_t b = bottom_.load(std::memory_order_relaxed);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  /// Owner only, and only at a point where the owner has established that
  /// no thief is mid-steal on this deque (the pool gates this on its
  /// active-thief counter). Frees every retired buffer: a thief arriving
  /// later reloads buffer_, which has pointed at the current buffer since
  /// the grow that retired these.
  void reclaim_retired() {
    for (Buffer* b : retired_) delete b;
    retired_.clear();
  }

  /// Number of buffers retired by growth and not yet reclaimed.
  std::int64_t retired_count() const {
    return static_cast<std::int64_t>(retired_.size());
  }

 private:
  // Slots are stored as arrays of relaxed atomic 64-bit words; put/get
  // memcpy through a word-aligned staging buffer. For word-sized T
  // (pointers, the common case) this compiles to a single relaxed
  // load/store, identical to std::atomic<T>.
  static constexpr std::int64_t kWords =
      static_cast<std::int64_t>((sizeof(T) + 7) / 8);

  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
              cap * kWords)]) {
      TRIOLET_CHECK((cap & (cap - 1)) == 0, "deque capacity must be 2^k");
    }
    ~Buffer() { delete[] slots; }

    void put(std::int64_t i, const T& v) {
      std::uint64_t w[kWords] = {};
      std::memcpy(w, &v, sizeof(T));
      std::atomic<std::uint64_t>* s = slots + (i & mask) * kWords;
      for (std::int64_t k = 0; k < kWords; ++k) {
        s[k].store(w[k], std::memory_order_relaxed);
      }
    }
    T get(std::int64_t i) const {
      std::uint64_t w[kWords];
      const std::atomic<std::uint64_t>* s = slots + (i & mask) * kWords;
      for (std::int64_t k = 0; k < kWords; ++k) {
        w[k] = s[k].load(std::memory_order_relaxed);
      }
      T v;
      std::memcpy(&v, w, sizeof(T));
      return v;
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::atomic<std::uint64_t>* const slots;
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // owner-only structure
    return bigger;
  }

  std::atomic<std::int64_t> top_;
  std::atomic<std::int64_t> bottom_;
  std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;
};

}  // namespace triolet::runtime
