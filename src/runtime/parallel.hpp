#pragma once

// High-level parallel loop primitives built on the work-stealing pool:
// the OpenMP-analogue layer used by Triolet's localpar skeletons and by the
// low-level baseline implementations.
//
//   parallel_for      steal-driven lazy-splitting loop over [lo, hi)
//   parallel_reduce   chunked reduction with a *deterministic* combine order
//   parallel_invoke   run two callables concurrently
//   PerThread<T>      per-worker private accumulators (histogram
//                     privatization; paper §3.4: "sequentially builds one
//                     histogram per thread")
//
// Scheduling: a parallel_for is one RangeTask that walks its range in
// grain-sized chunks. Between chunks it checks the pool's demand signal
// (steal_demand(): some worker is hungry or parked); only then does it fork
// the far half of what remains as a new task. A balanced loop on a busy
// pool therefore runs almost entirely sequentially — zero task traffic,
// zero allocation — while an imbalanced loop sheds exactly as much work as
// idle workers ask for. `grain` is a *floor* on chunk size (splits stop at
// 2*grain so both halves stay >= grain), not the schedule: the old eager
// splitter materialized every grain-sized chunk as a heap-allocated task up
// front, which is what this replaces.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "support/macros.hpp"

namespace triolet::runtime {

using index_t = std::int64_t;

/// Grain size heuristic: aim for ~8 chunks per worker. Clamped to
/// [1, max(1, n)] so tiny ranges with many threads never yield a grain of 0
/// or larger than the range (no empty subranges).
index_t auto_grain(index_t n, int nthreads);

/// The pool implicit consumers (core/consume.hpp) schedule on: a
/// thread-local override if a PoolScope is active, else the global pool.
///
/// The override exists for the two-level distributed runtime: each simulated
/// cluster node (SPMD rank thread) owns its own pool, mirroring "cores of
/// one node" and keeping per-thread private accumulators disjoint between
/// nodes (a shared pool would let one node's waiting thread steal another
/// node's tasks).
ThreadPool& current_pool();

/// RAII: makes `pool` the calling thread's current_pool().
class PoolScope {
 public:
  explicit PoolScope(ThreadPool& pool);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  ThreadPool* prev_;
};

namespace detail {

/// The lazy splitter: a trivially copyable range descriptor that fits a
/// TaskSlot inline (no allocation per task). The referenced Body outlives
/// the loop because parallel_for does not return until the group drains.
template <typename Body>
struct RangeTask {
  const Body* body;
  index_t lo;
  index_t hi;
  index_t grain;

  void operator()(ThreadPool& pool, TaskGroup& group) {
    index_t a = lo;
    index_t b = hi;
    while (a < b) {
      // Fork the far half only when someone is hungry and both halves can
      // stay at or above the grain floor. An unstolen fork costs one deque
      // push + pop (LIFO: the owner takes it right back).
      if (b - a >= 2 * grain && pool.steal_demand()) {
        const index_t mid = a + (b - a) / 2;
        pool.submit(group, RangeTask<Body>{body, mid, b, grain});
        pool.note_split();
        b = mid;
        continue;
      }
      const index_t e = std::min(b, a + grain);
      (*body)(a, e);
      pool.note_chunk();
      a = e;
    }
  }
};

}  // namespace detail

/// Runs body(lo, hi) over subranges of [lo, hi) in parallel on `pool`.
/// `body` must be safe to run concurrently on disjoint ranges. Chunks are
/// never empty and never exceed `grain`; forked subranges stay >= grain
/// (both halves of a split clear the floor), but the last chunk of a
/// subrange is its tail and may be shorter than the grain.
template <typename Body>
void parallel_for(ThreadPool& pool, index_t lo, index_t hi, index_t grain,
                  const Body& body) {
  TRIOLET_ASSERT(lo <= hi);
  if (hi <= lo) return;
  if (grain <= 0) grain = auto_grain(hi - lo, pool.size());
  if (hi - lo <= grain) {
    body(lo, hi);
    pool.note_chunk();
    return;
  }
  TaskGroup group;
  detail::RangeTask<Body> root{&body, lo, hi, grain};
  root(pool, group);
  pool.wait(group);
}

/// parallel_for with the default grain.
template <typename Body>
void parallel_for(ThreadPool& pool, index_t lo, index_t hi, const Body& body) {
  parallel_for(pool, lo, hi, 0, body);
}

/// Chunked parallel reduction. `body(a, b, acc)` folds the subrange [a, b)
/// into `acc` and returns it; `combine(x, y)` merges two partials. Partials
/// are combined in ascending chunk order, so the result is independent of
/// scheduling (bitwise deterministic for a fixed grain).
template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool& pool, index_t lo, index_t hi, index_t grain,
                  T identity, const Body& body, const Combine& combine) {
  TRIOLET_ASSERT(lo <= hi);
  if (hi <= lo) return identity;
  if (grain <= 0) grain = auto_grain(hi - lo, pool.size());
  const index_t n = hi - lo;
  const index_t nchunks = (n + grain - 1) / grain;
  if (nchunks == 1) return body(lo, hi, std::move(identity));

  std::vector<T> partials(static_cast<std::size_t>(nchunks), identity);
  parallel_for(pool, 0, nchunks, 1, [&](index_t c0, index_t c1) {
    for (index_t c = c0; c < c1; ++c) {
      index_t a = lo + c * grain;
      index_t b = std::min(hi, a + grain);
      partials[static_cast<std::size_t>(c)] =
          body(a, b, partials[static_cast<std::size_t>(c)]);
    }
  });
  T acc = std::move(identity);
  for (auto& p : partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool& pool, index_t lo, index_t hi, T identity,
                  const Body& body, const Combine& combine) {
  return parallel_reduce(pool, lo, hi, 0, std::move(identity), body, combine);
}

/// Runs `f` and `g` concurrently and waits for both.
template <typename F, typename G>
void parallel_invoke(ThreadPool& pool, const F& f, const G& g) {
  TaskGroup group;
  pool.submit(group, [&f] { f(); });
  g();
  pool.wait(group);
}

/// Per-worker private storage. Slot 0..size()-1 belong to pool workers;
/// the final slot belongs to the (single) external calling thread. Intended
/// use: privatized accumulators inside one parallel loop, then a sequential
/// pass over slots() to combine.
///
/// Disjointness holds under nesting (a nested loop's tasks still run on the
/// same pool's workers, so they land in the same slots) and across
/// concurrent PoolScopes (each rank's pool has its own workers, so two
/// ranks' PerThread instances never share a slot).
template <typename T>
class PerThread {
 public:
  PerThread(ThreadPool& pool, T init)
      : pool_(&pool),
        slots_(static_cast<std::size_t>(pool.size()) + 1, std::move(init)) {}

  /// The calling thread's slot.
  T& local() {
    int w = ThreadPool::current_worker();
    std::size_t idx = (w >= 0) ? static_cast<std::size_t>(w) : slots_.size() - 1;
    return slots_[idx];
  }

  std::vector<T>& slots() { return slots_; }
  const std::vector<T>& slots() const { return slots_; }

 private:
  ThreadPool* pool_;
  std::vector<T> slots_;
};

}  // namespace triolet::runtime
