#include "runtime/parallel.hpp"

#include <algorithm>

namespace triolet::runtime {

index_t auto_grain(index_t n, int nthreads) {
  if (n <= 1) return 1;
  index_t target_chunks =
      std::max<index_t>(1, static_cast<index_t>(nthreads)) * 8;
  // Clamp to [1, n]: tiny n with many threads must not round the grain down
  // to 0 (infinite loop) and the grain must never exceed the range (which
  // would be harmless but makes chunk-count reasoning awkward).
  return std::clamp<index_t>(n / target_chunks, 1, n);
}

namespace {
thread_local ThreadPool* tl_current_pool = nullptr;
}  // namespace

ThreadPool& current_pool() {
  return tl_current_pool != nullptr ? *tl_current_pool : ThreadPool::global();
}

PoolScope::PoolScope(ThreadPool& pool) : prev_(tl_current_pool) {
  tl_current_pool = &pool;
}

PoolScope::~PoolScope() { tl_current_pool = prev_; }

}  // namespace triolet::runtime
