#include "runtime/parallel.hpp"

#include <algorithm>

namespace triolet::runtime {

index_t auto_grain(index_t n, int nthreads) {
  index_t target_chunks = static_cast<index_t>(nthreads) * 8;
  return std::max<index_t>(1, n / std::max<index_t>(1, target_chunks));
}

namespace {
thread_local ThreadPool* tl_current_pool = nullptr;
}  // namespace

ThreadPool& current_pool() {
  return tl_current_pool != nullptr ? *tl_current_pool : ThreadPool::global();
}

PoolScope::PoolScope(ThreadPool& pool) : prev_(tl_current_pool) {
  tl_current_pool = &pool;
}

PoolScope::~PoolScope() { tl_current_pool = prev_; }

}  // namespace triolet::runtime
