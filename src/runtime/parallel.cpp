#include "runtime/parallel.hpp"

#include <algorithm>

#include "core/domains.hpp"

namespace triolet::runtime {

index_t auto_grain(index_t n, int nthreads) {
  // One shared heuristic for both runtime levels — see core::auto_grain_for.
  return core::auto_grain_for(n, nthreads);
}

namespace {
thread_local ThreadPool* tl_current_pool = nullptr;
}  // namespace

ThreadPool& current_pool() {
  return tl_current_pool != nullptr ? *tl_current_pool : ThreadPool::global();
}

PoolScope::PoolScope(ThreadPool& pool) : prev_(tl_current_pool) {
  tl_current_pool = &pool;
}

PoolScope::~PoolScope() { tl_current_pool = prev_; }

}  // namespace triolet::runtime
