#include "runtime/thread_pool.hpp"

#include <chrono>
#include <cstdlib>

#include "support/rng.hpp"

namespace triolet::runtime {

namespace {

// Which pool the current thread works for, and its index there.
thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

int env_threads() {
  if (const char* s = std::getenv("TRIOLET_THREADS")) {
    int n = std::atoi(s);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int env_spin_us() {
  if (const char* s = std::getenv("TRIOLET_SPIN_US")) {
    int n = std::atoi(s);
    if (n >= 0) return n;
  }
  return 50;
}

// Brief pause inside spin loops; yields the core on oversubscribed hosts.
inline void cpu_relax(int round) {
  if (round < 4) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  } else {
    std::this_thread::yield();
  }
}

}  // namespace

TaskGroup::~TaskGroup() {
  TRIOLET_CHECK(pending_.load() == 0,
                "TaskGroup destroyed with tasks still pending");
}

ThreadPool::ThreadPool(int nthreads) {
  TRIOLET_CHECK(nthreads >= 1, "thread pool needs at least one worker");
  spin_us_ = env_spin_us();
  workers_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  // Wake everyone for shutdown (the one broadcast left in the pool).
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    w->notified = true;
    w->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
  // TaskGroup's destructor forbids outliving its tasks, so in a well-formed
  // program the queues are empty here; leftover boxed callables from an
  // already-diagnosed misuse are dropped, not run.
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_threads());
  return pool;
}

int ThreadPool::current_worker() { return tl_worker; }

void ThreadPool::submit_slot(const TaskSlot& slot) {
  slot.group->pending_.fetch_add(1, std::memory_order_acq_rel);
  if (tl_pool == this && tl_worker >= 0) {
    workers_[static_cast<std::size_t>(tl_worker)]->deque.push(slot);
  } else {
    {
      std::lock_guard<std::mutex> lock(inject_mu_);
      injected_.push_back(slot);
    }
    injected_size_.fetch_add(1, std::memory_order_release);
    n_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  // Dekker handshake with parking workers: the work-publishing store above
  // must be ordered before the parked-mask load in wake_one (a parking
  // worker mirrors this with mask-store then queue-scan).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  wake_one();
}

void ThreadPool::wake_one() {
  std::uint64_t mask = parked_mask_.load(std::memory_order_seq_cst);
  while (mask != 0) {
    const int idx = __builtin_ctzll(mask);
    const std::uint64_t bit = 1ull << idx;
    if (parked_mask_.compare_exchange_weak(mask, mask & ~bit,
                                           std::memory_order_seq_cst)) {
      Worker& w = *workers_[static_cast<std::size_t>(idx)];
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.notified = true;
      }
      w.cv.notify_one();
      n_wakes_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // CAS failure reloaded `mask`; retry with the fresh value.
  }
}

bool ThreadPool::work_visible() const {
  if (injected_size_.load(std::memory_order_acquire) > 0) return true;
  for (const auto& w : workers_) {
    if (w->deque.size_approx() > 0) return true;
  }
  return false;
}

bool ThreadPool::try_acquire_injected(TaskSlot& out) {
  if (injected_size_.load(std::memory_order_acquire) <= 0) return false;
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (injected_.empty()) return false;
  out = injected_.front();
  injected_.pop_front();
  injected_size_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool ThreadPool::try_acquire(int self, TaskSlot& out) {
  // 1. Own deque (workers only).
  if (self >= 0 &&
      workers_[static_cast<std::size_t>(self)]->deque.pop(out)) {
    return true;
  }
  // 2. Injection queue.
  if (try_acquire_injected(out)) return true;
  // 3. Steal. Start at a per-thread pseudo-random victim for fairness.
  static thread_local Xoshiro256 rng(
      0x9e3779b97f4a7c15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const int n = size();
  n_steal_attempts_.fetch_add(1, std::memory_order_relaxed);
  thieves_.fetch_add(1, std::memory_order_seq_cst);
  bool got = false;
  int start = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  for (int k = 0; k < n; ++k) {
    int v = (start + k) % n;
    if (v == self) continue;
    if (workers_[static_cast<std::size_t>(v)]->deque.steal(out)) {
      n_stolen_.fetch_add(1, std::memory_order_relaxed);
      got = true;
      break;
    }
  }
  thieves_.fetch_sub(1, std::memory_order_seq_cst);
  return got;
}

void ThreadPool::run_slot(TaskSlot& slot) {
  TaskGroup* g = slot.group;
  slot.invoke(slot.storage, *this, *g);
  // The final decrement is the last touch of the group: a waiter observing
  // pending == 0 may destroy the TaskGroup immediately, so nothing (no
  // lock, no cv) may be accessed after this.
  g->pending_.fetch_sub(1, std::memory_order_acq_rel);
}

bool ThreadPool::try_run_one() {
  TaskSlot slot;
  if (!try_acquire(tl_pool == this ? tl_worker : -1, slot)) return false;
  run_slot(slot);
  return true;
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks_executed = n_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = n_stolen_.load(std::memory_order_relaxed);
  s.tasks_injected = n_injected_.load(std::memory_order_relaxed);
  s.tasks_boxed = n_boxed_.load(std::memory_order_relaxed);
  s.splits = n_splits_.load(std::memory_order_relaxed);
  s.steal_attempts = n_steal_attempts_.load(std::memory_order_relaxed);
  s.parks = n_parks_.load(std::memory_order_relaxed);
  s.wakes = n_wakes_.load(std::memory_order_relaxed);
  return s;
}

std::int64_t ThreadPool::retired_buffers() const {
  std::int64_t total = 0;
  for (const auto& w : workers_) total += w->deque.retired_count();
  return total;
}

void ThreadPool::maybe_reclaim(int self) {
  if (self < 0) return;
  Worker& w = *workers_[static_cast<std::size_t>(self)];
  if (w.deque.retired_count() == 0 || w.deque.size_approx() > 0) return;
  // Quiescent point: no thread is mid-steal anywhere in the pool, so no
  // stale buffer pointer is live. A thief arriving after this check loads
  // the current buffer, which growth published long before retiring these.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (thieves_.load(std::memory_order_seq_cst) == 0) {
    w.deque.reclaim_retired();
  }
}

void ThreadPool::park(int idx) {
  Worker& w = *workers_[static_cast<std::size_t>(idx)];
  const bool has_bit = idx < 64;
  if (has_bit) {
    parked_mask_.fetch_or(1ull << idx, std::memory_order_seq_cst);
  }
  // Dekker re-check: a submitter either sees our bit (and wakes us) or we
  // see its work here. Without this a push landing between our last scan
  // and the mask store would be lost.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (work_visible() || stop_.load(std::memory_order_acquire)) {
    if (has_bit) {
      parked_mask_.fetch_and(~(1ull << idx), std::memory_order_seq_cst);
    }
    return;
  }
  n_parks_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(w.mu);
  if (has_bit) {
    w.cv.wait(lock, [&] { return w.notified; });
  } else {
    // Workers beyond the 64-bit mask cannot receive targeted wakeups; they
    // poll with a bounded sleep instead.
    w.cv.wait_for(lock, std::chrono::milliseconds(1),
                  [&] { return w.notified; });
  }
  w.notified = false;
}

void ThreadPool::worker_loop(int idx) {
  tl_pool = this;
  tl_worker = idx;
  TaskSlot slot;
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_acquire(idx, slot)) {
      run_slot(slot);
      continue;
    }
    // Hungry: advertise demand (the lazy splitter's fork signal), spin with
    // backoff, then park. seeking_ stays raised across the park so a parked
    // worker still counts as demand.
    seeking_.fetch_add(1, std::memory_order_seq_cst);
    bool got = false;
    while (!got && !stop_.load(std::memory_order_acquire)) {
      const auto spin_deadline =
          std::chrono::steady_clock::now() + std::chrono::microseconds(spin_us_);
      int round = 0;
      while (!got && std::chrono::steady_clock::now() < spin_deadline) {
        if (stop_.load(std::memory_order_acquire)) break;
        got = try_acquire(idx, slot);
        if (!got) cpu_relax(round++);
      }
      if (got || stop_.load(std::memory_order_acquire)) break;
      park(idx);
      got = try_acquire(idx, slot);
    }
    seeking_.fetch_sub(1, std::memory_order_seq_cst);
    if (got) {
      run_slot(slot);
      // Natural quiescent candidate: this worker just drained; bound the
      // retired-buffer backlog while no thief can hold a stale pointer.
      maybe_reclaim(idx);
    }
  }
  tl_pool = nullptr;
  tl_worker = -1;
}

void ThreadPool::wait(TaskGroup& group) {
  // Help-then-backoff: completion is observed through the atomic counter
  // alone (a completer never touches the group after its final decrement,
  // so we may destroy the group the moment this returns). Helping keeps
  // nested parallelism deadlock-free; the backoff caps at a short sleep so
  // a waiter with no runnable work does not burn a core.
  int idle_rounds = 0;
  while (group.pending_.load(std::memory_order_acquire) > 0) {
    if (try_run_one()) {
      idle_rounds = 0;
      continue;
    }
    ++idle_rounds;
    if (idle_rounds < 64) {
      cpu_relax(idle_rounds);
    } else {
      // Exponential backoff, capped at ~128us, so tail latency to observe
      // the final decrement stays small.
      const int shift = idle_rounds - 64 < 7 ? idle_rounds - 64 : 7;
      std::this_thread::sleep_for(std::chrono::microseconds(1 << shift));
    }
  }
  if (tl_pool == this) maybe_reclaim(tl_worker);
}

}  // namespace triolet::runtime
