#include "runtime/thread_pool.hpp"

#include <cstdlib>

#include "support/macros.hpp"
#include "support/rng.hpp"

namespace triolet::runtime {

namespace {

// Which pool the current thread works for, and its index there.
thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

int env_threads() {
  if (const char* s = std::getenv("TRIOLET_THREADS")) {
    int n = std::atoi(s);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

TaskGroup::~TaskGroup() {
  TRIOLET_CHECK(pending_.load() == 0,
                "TaskGroup destroyed with tasks still pending");
}

ThreadPool::ThreadPool(int nthreads) {
  TRIOLET_CHECK(nthreads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Any jobs left in queues are leaked deliberately only if a TaskGroup
  // outlived its waits, which TaskGroup's destructor forbids; drain anyway.
  for (auto& w : workers_) {
    Job* j = nullptr;
    while (w->deque.pop(j)) delete j;
  }
  for (Job* j : injected_) delete j;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_threads());
  return pool;
}

int ThreadPool::current_worker() { return tl_worker; }

void ThreadPool::submit(TaskGroup& group, std::function<void()> fn) {
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  auto* job = new Job{std::move(fn), &group};
  if (tl_pool == this && tl_worker >= 0) {
    workers_[static_cast<std::size_t>(tl_worker)]->deque.push(job);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    injected_.push_back(job);
    n_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  notify_work();
}

void ThreadPool::notify_work() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++epoch_;
  }
  cv_.notify_all();
}

ThreadPool::Job* ThreadPool::try_acquire(int self) {
  Job* job = nullptr;
  // 1. Own deque (workers only).
  if (self >= 0 &&
      workers_[static_cast<std::size_t>(self)]->deque.pop(job)) {
    return job;
  }
  // 2. Injection queue.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!injected_.empty()) {
      job = injected_.front();
      injected_.pop_front();
      return job;
    }
  }
  // 3. Steal. Start at a per-thread pseudo-random victim for fairness.
  static thread_local Xoshiro256 rng(
      0x9e3779b97f4a7c15ull ^
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const int n = size();
  int start = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  for (int k = 0; k < n; ++k) {
    int v = (start + k) % n;
    if (v == self) continue;
    if (workers_[static_cast<std::size_t>(v)]->deque.steal(job)) {
      n_stolen_.fetch_add(1, std::memory_order_relaxed);
      return job;
    }
  }
  return nullptr;
}

void ThreadPool::run_job(Job* job) {
  n_executed_.fetch_add(1, std::memory_order_relaxed);
  job->fn();
  TaskGroup* g = job->group;
  delete job;
  if (g->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Group drained; waiters poll pending_, but wake sleepers promptly.
    cv_.notify_all();
  }
}

bool ThreadPool::try_run_one() {
  Job* job = try_acquire(tl_pool == this ? tl_worker : -1);
  if (!job) return false;
  run_job(job);
  return true;
}

PoolStats ThreadPool::stats() const {
  PoolStats s;
  s.tasks_executed = n_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = n_stolen_.load(std::memory_order_relaxed);
  s.tasks_injected = n_injected_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::worker_loop(int idx) {
  tl_pool = this;
  tl_worker = idx;
  for (;;) {
    if (try_run_one()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) break;
    std::uint64_t seen = epoch_;
    cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) break;
  }
  tl_pool = nullptr;
  tl_worker = -1;
}

void ThreadPool::wait(TaskGroup& group) {
  int spins = 0;
  while (group.pending_.load(std::memory_order_acquire) > 0) {
    if (try_run_one()) {
      spins = 0;
      continue;
    }
    // Nothing runnable here but the group is still live on other threads.
    if (++spins > 16) {
      std::this_thread::yield();
    }
  }
}

}  // namespace triolet::runtime
