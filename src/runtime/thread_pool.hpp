#pragma once

// Work-stealing thread pool: the intra-node half of Triolet's two-level
// parallel architecture (§3.4). The original system used Threading Building
// Blocks; this pool fills the same role: fork-join task parallelism with
// per-worker Chase–Lev deques and randomized stealing.
//
// Tasks are submitted into a TaskGroup; `wait` blocks until the group
// drains, *helping* (running queued tasks) rather than idling, so nested
// parallelism cannot deadlock.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/ws_deque.hpp"

namespace triolet::runtime {

class ThreadPool;

/// A join point for a set of submitted tasks.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup();

  std::int64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class ThreadPool;
  std::atomic<std::int64_t> pending_{0};
};

/// Lifetime counters of a pool (approximate; relaxed atomics).
struct PoolStats {
  std::int64_t tasks_executed = 0;
  std::int64_t tasks_stolen = 0;
  std::int64_t tasks_injected = 0;
};

class ThreadPool {
 public:
  /// Spawns `nthreads` workers (>= 1).
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool. Size comes from TRIOLET_THREADS if set, else
  /// std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Index of the calling pool worker in [0, size()), or -1 for threads that
  /// are not workers of any pool.
  static int current_worker();

  /// Enqueues `fn` into `group`. Callable from workers and external threads.
  void submit(TaskGroup& group, std::function<void()> fn);

  /// Blocks until every task submitted to `group` has finished, running
  /// queued tasks while waiting.
  void wait(TaskGroup& group);

  /// Runs one queued task if any is available. Returns false when no task
  /// could be obtained. Exposed for tests and for cooperative waiting.
  bool try_run_one();

  /// Snapshot of the pool's lifetime counters.
  PoolStats stats() const;

 private:
  struct Job {
    std::function<void()> fn;
    TaskGroup* group;
  };

  struct Worker {
    WsDeque<Job*> deque;
  };

  void worker_loop(int idx);
  Job* try_acquire(int self);
  void run_job(Job* job);
  void notify_work();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Injection queue for submissions from non-worker threads, plus the
  // sleep/wake machinery. An epoch counter avoids lost wakeups: every
  // submission bumps it, and sleepers re-scan whenever it moves.
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job*> injected_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;

  std::atomic<std::int64_t> n_executed_{0};
  std::atomic<std::int64_t> n_stolen_{0};
  std::atomic<std::int64_t> n_injected_{0};
};

}  // namespace triolet::runtime
