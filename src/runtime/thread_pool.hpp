#pragma once

// Work-stealing thread pool: the intra-node half of Triolet's two-level
// parallel architecture (§3.4). The original system used Threading Building
// Blocks; this pool fills the same role: fork-join task parallelism with
// per-worker Chase–Lev deques and randomized stealing.
//
// The task representation is allocation-free on the fast path: a task is a
// fixed-size TaskSlot (invoke thunk + group pointer + inline storage)
// stored *by value* in the deques. A callable that is small, trivially
// copyable, and trivially destructible lives inline in the slot; anything
// else is boxed on the heap and the thunk frees it after the call. The
// parallel-loop layer (runtime/parallel.hpp) only ever submits inline
// range descriptors, so steady-state loop execution performs no heap
// allocation per task.
//
// Idle workers spin briefly (TRIOLET_SPIN_US microseconds, exponential
// backoff with yields), then park on a per-worker condition variable.
// Submissions wake exactly one parked worker (targeted wakeup via a parked
// bitmask) instead of broadcasting; spinning workers find work on their
// own. `steal_demand()` exposes whether any worker is currently hungry —
// the signal the lazy splitter in parallel.hpp uses to decide when a
// sequential range is worth forking.
//
// Tasks are submitted into a TaskGroup; `wait` blocks until the group
// drains, *helping* (running queued tasks) rather than idling, so nested
// parallelism cannot deadlock. A waiter that runs out of runnable work
// backs off exponentially (pause → yield → bounded sleep) and periodically
// resumes helping; completion is observed through the group's atomic
// counter alone, so a finishing task never touches the group after its
// final decrement (the waiter may destroy the group immediately).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/ws_deque.hpp"
#include "support/macros.hpp"

namespace triolet::runtime {

class ThreadPool;

/// A join point for a set of submitted tasks.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup();

  std::int64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class ThreadPool;
  std::atomic<std::int64_t> pending_{0};
};

/// One unit of schedulable work: a trivially copyable fixed-size slot. The
/// callable either lives inline in `storage` (small-buffer fast path) or is
/// a heap pointer the thunk deletes after invocation.
struct TaskSlot {
  /// Capacity of the inline small-buffer path.
  static constexpr std::size_t kInlineBytes = 48;

  using InvokeFn = void (*)(void* storage, ThreadPool& pool,
                            TaskGroup& group);

  InvokeFn invoke = nullptr;
  TaskGroup* group = nullptr;
  alignas(std::max_align_t) unsigned char storage[kInlineBytes];
};
static_assert(std::is_trivially_copyable_v<TaskSlot>);

/// Lifetime counters of a pool (approximate; relaxed atomics).
///
/// `tasks_executed` counts *logical* tasks: one per plain submitted
/// callable, one per grain-chunk a parallel loop processes — the unit the
/// eager splitter used to materialize as a real task. `tasks_stolen` counts
/// deque steals of materialized slots, so tasks_stolen / tasks_executed is
/// the fraction of loop work that actually migrated (≪ 1 under lazy
/// splitting on a balanced loop).
struct PoolStats {
  std::int64_t tasks_executed = 0;  // logical tasks (chunks + plain tasks)
  std::int64_t tasks_stolen = 0;    // slots obtained from another deque
  std::int64_t tasks_injected = 0;  // slots submitted by non-worker threads
  std::int64_t tasks_boxed = 0;     // slots that fell off the inline path
  std::int64_t splits = 0;          // lazy splits (steal-driven forks)
  std::int64_t steal_attempts = 0;  // deque scans while hungry
  std::int64_t parks = 0;           // times a worker blocked on its cv
  std::int64_t wakes = 0;           // targeted wakeups issued
};

class ThreadPool {
 public:
  /// Spawns `nthreads` workers (>= 1).
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool. Size comes from TRIOLET_THREADS if set, else
  /// std::thread::hardware_concurrency().
  static ThreadPool& global();

  /// Index of the calling pool worker in [0, size()), or -1 for threads that
  /// are not workers of any pool.
  static int current_worker();

  /// Enqueues `fn` into `group`. Callable from workers and external
  /// threads. If `Fn` fits the slot's inline buffer and is trivially
  /// copyable + destructible it is stored inline (no allocation); otherwise
  /// it is boxed. A callable may take (ThreadPool&, TaskGroup&) to receive
  /// its execution context (used by the lazy range splitter to fork
  /// continuations into the right pool/group).
  template <typename F>
  void submit(TaskGroup& group, F&& fn) {
    using Fn = std::decay_t<F>;
    TaskSlot slot;
    slot.group = &group;
    constexpr bool kInline = sizeof(Fn) <= TaskSlot::kInlineBytes &&
                             std::is_trivially_copyable_v<Fn> &&
                             std::is_trivially_destructible_v<Fn>;
    if constexpr (kInline) {
      ::new (static_cast<void*>(slot.storage)) Fn(std::forward<F>(fn));
      slot.invoke = [](void* s, ThreadPool& p, TaskGroup& g) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(s));
        if constexpr (std::is_invocable_v<Fn&, ThreadPool&, TaskGroup&>) {
          (*f)(p, g);
        } else {
          p.note_task();
          (void)g;
          (*f)();
        }
      };
    } else {
      Fn* boxed = new Fn(std::forward<F>(fn));
      std::memcpy(slot.storage, &boxed, sizeof(boxed));
      slot.invoke = [](void* s, ThreadPool& p, TaskGroup& g) {
        Fn* f = nullptr;
        std::memcpy(&f, s, sizeof(f));
        struct Reaper {
          Fn* f;
          ~Reaper() { delete f; }
        } reaper{f};
        if constexpr (std::is_invocable_v<Fn&, ThreadPool&, TaskGroup&>) {
          (*f)(p, g);
        } else {
          p.note_task();
          (void)g;
          (*f)();
        }
      };
      n_boxed_.fetch_add(1, std::memory_order_relaxed);
    }
    submit_slot(slot);
  }

  /// Blocks until every task submitted to `group` has finished, running
  /// queued tasks while waiting.
  void wait(TaskGroup& group);

  /// Runs one queued task if any is available. Returns false when no task
  /// could be obtained. Exposed for tests and for cooperative waiting.
  bool try_run_one();

  /// True when at least one worker (or external helper) is hungry: seeking
  /// work or parked. The lazy splitter forks only while this holds, so a
  /// fully-busy pool executes ranges sequentially with zero task traffic.
  bool steal_demand() const {
    return seeking_.load(std::memory_order_relaxed) > 0;
  }

  /// Accounting hooks for the parallel-loop layer (relaxed counters).
  void note_task() { n_executed_.fetch_add(1, std::memory_order_relaxed); }
  void note_chunk() { n_executed_.fetch_add(1, std::memory_order_relaxed); }
  void note_split() { n_splits_.fetch_add(1, std::memory_order_relaxed); }

  /// Snapshot of the pool's lifetime counters.
  PoolStats stats() const;

  /// Total retired deque buffers awaiting reclamation (tests/diagnostics).
  std::int64_t retired_buffers() const;

 private:
  struct Worker {
    WsDeque<TaskSlot> deque;
    // Park state. `parked` mirrors this worker's bit in parked_mask_; the
    // mutex/cv pair is only touched on the slow path (park/wake).
    std::mutex mu;
    std::condition_variable cv;
    bool notified = false;
  };

  void worker_loop(int idx);
  void submit_slot(const TaskSlot& slot);
  bool try_acquire(int self, TaskSlot& out);
  bool try_acquire_injected(TaskSlot& out);
  void run_slot(TaskSlot& slot);
  void wake_one();
  void park(int idx);
  bool work_visible() const;
  void maybe_reclaim(int self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Injection queue for submissions from non-worker threads.
  std::mutex inject_mu_;
  std::deque<TaskSlot> injected_;
  std::atomic<std::int64_t> injected_size_{0};

  // Bit i set => worker i is parked and may need a wakeup. Submitters CAS a
  // bit off before notifying, so each submission wakes at most one worker.
  std::atomic<std::uint64_t> parked_mask_{0};
  // Number of threads currently hungry (seeking work or parked): the lazy
  // splitter's demand signal.
  std::atomic<int> seeking_{0};
  // Number of threads currently scanning other workers' deques; retired
  // deque buffers are only reclaimed when this is 0.
  std::atomic<int> thieves_{0};
  std::atomic<bool> stop_{false};

  int spin_us_ = 50;  // TRIOLET_SPIN_US

  std::atomic<std::int64_t> n_executed_{0};
  std::atomic<std::int64_t> n_stolen_{0};
  std::atomic<std::int64_t> n_injected_{0};
  std::atomic<std::int64_t> n_boxed_{0};
  std::atomic<std::int64_t> n_splits_{0};
  std::atomic<std::int64_t> n_steal_attempts_{0};
  std::atomic<std::int64_t> n_parks_{0};
  std::atomic<std::int64_t> n_wakes_{0};
};

}  // namespace triolet::runtime
