#pragma once

// Dynamic per-job tag-band allocator: the service layer's generalization of
// the static reserved-band table in net/tags.hpp.
//
// Each concurrent job group leases one kJobBandWidth-wide band out of the
// job-band region; a net::TagMap built from the lease folds the job's whole
// canonical tag space into it (user tags, scheduler epochs, async control,
// residency protocol, group relay, collectives), so two jobs' traffic can
// never cross-match no matter what they run. Leases are validated at
// allocation time with the same pairwise-disjointness audit the static
// table gets at Cluster startup — defense in depth against an allocator
// bug — and reclaimed slots are reused lowest-first. Exhaustion is a clear
// error (BandsExhausted), never a hang: the JobManager sizes its admission
// limit below capacity so running jobs cannot hit it, and try_lease lets
// callers degrade gracefully.

#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/tags.hpp"

namespace triolet::svc {

/// Thrown when every leasable job band is in use (lease() only; try_lease
/// returns false instead). Carries the capacity so the message is
/// actionable.
class BandsExhausted : public std::runtime_error {
 public:
  explicit BandsExhausted(int capacity)
      : std::runtime_error(
            "job tag bands exhausted: all " + std::to_string(capacity) +
            " leases are held; lower concurrency or reclaim finished jobs") {}
};

/// Thread-safe lease/reclaim of job tag bands.
class BandAllocator {
 public:
  /// `capacity` caps how many bands this allocator hands out; defaults to
  /// everything the region holds. Tests shrink it to force exhaustion.
  explicit BandAllocator(int capacity = net::kMaxJobBands);

  /// Leases the lowest free band; throws BandsExhausted when none is free.
  net::TagMap lease();

  /// Non-throwing variant: returns false (and leaves `out` untouched) when
  /// no band is free.
  bool try_lease(net::TagMap& out);

  /// Returns a lease to the pool. The caller must have purged the band's
  /// queued messages first (Mailbox::purge_tag_range) — the allocator
  /// checks only that the lease is one of its own and currently held.
  void reclaim(const net::TagMap& band);

  int capacity() const;
  int leased() const;

  /// Audit of one candidate lease against the static reserved bands and
  /// every active lease (the dynamic extension of
  /// net::assert_tag_bands_disjoint). Exposed for tests; lease() calls it
  /// on every allocation and treats failure as a fatal invariant breach.
  bool candidate_disjoint(int slot, std::string* why = nullptr) const;

 private:
  bool candidate_disjoint_locked(int slot, std::string* why) const;

  mutable std::mutex mu_;
  std::vector<bool> used_;
  int leased_ = 0;
};

}  // namespace triolet::svc
