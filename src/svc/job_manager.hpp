#pragma once

// The Triolet service layer: a resident multi-job cluster.
//
// Cluster::run is run-to-completion — every skeleton program pays cluster
// construction, per-rank thread-pool spawn, and a cold slice cache, and two
// programs can never overlap. The JobManager turns that substrate into a
// server: one ClusterState, one work-stealing pool per rank, and one
// manager-owned Residency per rank stay alive across jobs, and many jobs
// run *concurrently* against them:
//
//   admission    submit() enqueues a job body; the queue is bounded
//                (ServiceOptions::max_queued), so submit blocks for space —
//                backpressure — while try_submit rejects instead. A
//                dispatcher thread launches up to max_concurrent job groups
//                at a time.
//   isolation    each group leases one tag band from the BandAllocator and
//                runs its ranks on Comms whose TagMap folds the whole
//                canonical tag space into the lease, so concurrent jobs'
//                traffic can never cross-match. A failing job raises its
//                group's private abort flag (not the cluster's), so only
//                that group's blocked receives unwind; the band is purged
//                and reclaimed afterwards.
//   fair share   every job is registered with the GrantArbiter; job bodies
//                opt their run_chunks calls in via
//                JobContext::sched_options(), which installs the job's
//                grant gate. Grant issue order across jobs then follows
//                weighted deficit round-robin instead of arrival order.
//   batching     jobs submitted with the same nonzero batch_key coalesce
//                (up to batch_limit) into one group: one band lease, one
//                set of rank threads and Comms, bodies run sequentially.
//                Small same-shape jobs amortize the per-group spawn cost —
//                the dominant cost of a short job — across the batch.
//   accounting   each job's JobResult carries the summed-over-ranks
//                CommStats *delta* of exactly its own execution
//                (snapshot_stats subtraction), its queue and run times, and
//                its fair-share counters; the manager aggregates
//                service-wide ServiceStats.
//
// Determinism: batching, fair-share gating, and cross-job cache sharing
// leave each job's atom decomposition and combine order untouched, so a
// kOrdered job's result is bitwise identical to the same job run alone
// (tests/test_svc.cpp asserts this under a concurrent mix).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/comm.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/policy.hpp"
#include "support/timing.hpp"
#include "svc/band_allocator.hpp"
#include "svc/fair_share.hpp"

namespace triolet::svc {

struct ServiceOptions {
  int nranks = 4;
  /// Workers in each rank's resident thread pool.
  int threads_per_rank = 1;
  /// Job groups running at once; also bounds live band leases.
  int max_concurrent = 3;
  /// Admission-queue depth: submit() blocks (try_submit rejects) beyond it.
  int max_queued = 64;
  /// Most jobs one batch group may coalesce.
  int batch_limit = 8;
  /// Fair-share DRR quantum, in outer-domain units per rotation.
  std::int64_t quantum_items = 1 << 12;
  /// Per-rank resident slice-cache budget; the default sentinel defers to
  /// net::slice_cache_budget() (env TRIOLET_SLICE_CACHE_BYTES).
  std::size_t slice_cache_bytes = ~std::size_t{0};
  /// Band-lease capacity; 0 = the whole job-band region.
  int max_bands = 0;
};

/// Service-wide counters (coherent after drain(); approximate while jobs
/// are in flight).
struct ServiceStats {
  std::int64_t submitted = 0;     // jobs accepted into the queue
  std::int64_t rejected = 0;      // try_submit refusals (queue full)
  std::int64_t dispatched = 0;    // jobs handed to a group
  std::int64_t completed = 0;     // jobs that finished ok
  std::int64_t failed = 0;        // jobs that errored or were skipped
  std::int64_t batches = 0;       // groups that coalesced > 1 job
  std::int64_t batched_jobs = 0;  // jobs that rode in such groups
  int peak_concurrent = 0;        // max simultaneously running groups
  std::int64_t bands_leased = 0;  // lifetime band leases
  /// Aggregated over the manager-owned per-rank slice caches.
  net::ResidencyStats residency{};
};

struct JobOptions {
  std::string name;
  /// Fair-share weight (credit per DRR rotation scales linearly).
  int weight = 1;
  /// Nonzero: queued jobs with the same key may share one group (band,
  /// rank threads, Comms), running sequentially. 0 = never batched.
  std::uint64_t batch_key = 0;
};

struct JobResult {
  bool ok = false;
  std::string error;
  /// Summed-over-ranks CommStats delta of exactly this job's execution.
  net::CommStats stats;
  double queued_seconds = 0.0;  // submit -> dispatch
  double run_seconds = 0.0;     // max over ranks of the body's wall time
  std::uint64_t job_id = 0;
  int band_base = 0;            // the group's leased band
  int batched_with = 0;         // other jobs that shared the group
  FairShareStats fair_share;
};

class JobManager;

/// What a job body receives on every rank: its Comm (band-mapped, shared
/// residency) plus the job identity and the fair-share hookup.
class JobContext {
 public:
  net::Comm& comm() { return *comm_; }
  int rank() const { return comm_->rank(); }
  int size() const { return comm_->size(); }
  std::uint64_t job_id() const { return id_; }
  const std::string& name() const { return *name_; }

  /// `base` with this job's grant gate installed: run_chunks calls made
  /// with these options arbitrate their grants through the service's
  /// fair-share scheduler. Safe (and a no-op) on non-root ranks.
  sched::SchedOptions sched_options(sched::SchedOptions base = {}) {
    base.gate = &gate_;
    return base;
  }

 private:
  friend class JobManager;
  JobContext(net::Comm* comm, std::uint64_t id, const std::string* name,
             GrantArbiter* arbiter)
      : comm_(comm), id_(id), name_(name), gate_(arbiter, id) {}

  net::Comm* comm_;
  std::uint64_t id_;
  const std::string* name_;
  JobGate gate_;
};

/// One rank's view of a job: called on every rank of the group, SPMD.
using JobBody = std::function<void(JobContext&)>;

namespace detail {

struct JobState {
  std::uint64_t id = 0;
  JobOptions opts;
  JobBody body;
  Stopwatch queued;  // started at submit

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  JobResult result;
};

}  // namespace detail

/// Waitable handle to one submitted job.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const;

  /// Blocks until the job finishes and returns its result.
  JobResult wait();

 private:
  friend class JobManager;
  explicit JobHandle(std::shared_ptr<detail::JobState> s)
      : state_(std::move(s)) {}

  std::shared_ptr<detail::JobState> state_;
};

class JobManager {
 public:
  explicit JobManager(ServiceOptions options = {});
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Enqueues a job; blocks while the admission queue is full
  /// (backpressure). `body` runs SPMD on every rank of the job's group.
  JobHandle submit(JobOptions opts, JobBody body);

  /// Non-blocking admission: nullopt (and ServiceStats::rejected) when the
  /// queue is full.
  std::optional<JobHandle> try_submit(JobOptions opts, JobBody body);

  /// Blocks until every accepted job has finished.
  void drain();

  /// drain() + stop the dispatcher and join every group. Idempotent; the
  /// destructor calls it.
  void shutdown();

  ServiceStats stats() const;
  const ServiceOptions& options() const { return opts_; }
  int bands_in_use() const { return bands_.leased(); }
  GrantArbiter& arbiter() { return arbiter_; }

 private:
  void dispatcher_main();
  void run_group(net::TagMap band,
                 std::vector<std::shared_ptr<detail::JobState>> jobs);

  ServiceOptions opts_;
  net::ClusterState state_;
  std::vector<std::unique_ptr<runtime::ThreadPool>> pools_;
  /// Stats sinks must outlive the Residency objects that point at them.
  std::vector<std::unique_ptr<net::ResidencyStats>> residency_sinks_;
  std::vector<std::unique_ptr<net::Residency>> residency_;
  BandAllocator bands_;
  GrantArbiter arbiter_;

  mutable std::mutex mu_;
  std::condition_variable cv_dispatch_;  // dispatcher: work or a free slot
  std::condition_variable cv_space_;     // submitters waiting on queue room
  std::condition_variable cv_drain_;     // drain() waiting for inflight == 0
  std::deque<std::shared_ptr<detail::JobState>> queue_;
  std::vector<std::thread> group_threads_;
  ServiceStats stats_;
  std::uint64_t next_job_id_ = 1;
  int running_ = 0;        // live job groups
  std::int64_t inflight_ = 0;  // accepted jobs not yet finished
  bool stopping_ = false;

  std::thread dispatcher_;
};

}  // namespace triolet::svc
