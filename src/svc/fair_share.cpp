#include "svc/fair_share.hpp"

#include "support/macros.hpp"

namespace triolet::svc {

GrantArbiter::GrantArbiter(std::int64_t quantum_items)
    : quantum_(quantum_items) {
  TRIOLET_CHECK(quantum_ >= 1, "fair-share quantum must be positive");
}

GrantArbiter::Entry* GrantArbiter::find_locked(std::uint64_t job) {
  for (auto& e : ring_) {
    if (e.id == job) return &e;
  }
  return nullptr;
}

void GrantArbiter::add_job(std::uint64_t job, int weight) {
  TRIOLET_CHECK(weight >= 1, "fair-share weight must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  TRIOLET_CHECK(find_locked(job) == nullptr,
                "job already registered with the grant arbiter");
  ring_.push_back(Entry{job, weight, 0, 0});
  stats_.try_emplace(job);
}

void GrantArbiter::remove_job(std::uint64_t job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      if (ring_[i].id != job) continue;
      ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(i));
      if (i < head_) {
        head_ -= 1;
      } else if (head_ >= ring_.size()) {
        head_ = 0;
      }
      break;
    }
  }
  cv_.notify_all();
}

void GrantArbiter::rotate_locked() {
  head_ = (head_ + 1) % ring_.size();
  Entry& h = ring_[head_];
  if (h.pending > 0) {
    // Backlogged head: replenish its turn's credit (weighted).
    h.deficit += quantum_ * h.weight;
  } else {
    // Idle head: reset — an idle job must not hoard credit (classic DRR).
    h.deficit = 0;
  }
  // The thread whose turn just arrived may be blocked in acquire while WE
  // rotate (rotation runs in whichever waiter holds the lock).
  cv_.notify_all();
}

void GrantArbiter::acquire(std::uint64_t job, std::int64_t items) {
  std::unique_lock<std::mutex> lock(mu_);
  Entry* me = find_locked(job);
  if (me == nullptr || ring_.size() == 1) {
    // Unregistered (single-job fast path) or alone in the ring: no one to
    // be fair to.
    auto& st = stats_[job];
    st.acquires += 1;
    st.acquired_items += items;
    return;
  }
  me->pending = items;
  bool counted_wait = false;
  Stopwatch waited;
  while (true) {
    // `me` may have been re-seated by an insert/erase while unlocked.
    me = find_locked(job);
    TRIOLET_CHECK(me != nullptr, "job unregistered while acquiring a grant");
    Entry& h = ring_[head_];
    if (&h == me && h.deficit > 0) {
      // Our turn with credit: issue. Oversized grants drive the deficit
      // negative — the debt is paid back by sitting out rotations.
      me->deficit -= items;
      me->pending = 0;
      auto& st = stats_[job];
      st.acquires += 1;
      st.acquired_items += items;
      if (counted_wait) st.wait_seconds += waited.seconds();
      cv_.notify_all();
      return;
    }
    if (h.pending == 0 || h.deficit <= 0) {
      // Idle head, or a head that spent its credit: move on. Progress is
      // bounded — every full pass replenishes each backlogged job once, so
      // a waiter with arbitrarily negative deficit becomes eligible after
      // finitely many passes.
      rotate_locked();
      continue;
    }
    // The head is another backlogged job with credit: its own thread will
    // issue and rotate; wait for the ring to move.
    if (!counted_wait) {
      counted_wait = true;
      stats_[job].waits += 1;
    }
    cv_.wait(lock);
  }
}

FairShareStats GrantArbiter::job_stats(std::uint64_t job) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(job);
  return it == stats_.end() ? FairShareStats{} : it->second;
}

int GrantArbiter::active_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(ring_.size());
}

}  // namespace triolet::svc
