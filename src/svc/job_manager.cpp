#include "svc/job_manager.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "net/message.hpp"
#include "net/tags.hpp"
#include "support/macros.hpp"

namespace triolet::svc {

bool JobHandle::done() const {
  TRIOLET_CHECK(valid(), "done() on an empty JobHandle");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

JobResult JobHandle::wait() {
  TRIOLET_CHECK(valid(), "wait() on an empty JobHandle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return state_->result;
}

JobManager::JobManager(ServiceOptions options)
    : opts_(options),
      state_(options.nranks, /*max_message_bytes=*/0),
      bands_(options.max_bands > 0 ? options.max_bands : net::kMaxJobBands),
      arbiter_(options.quantum_items) {
  TRIOLET_CHECK(opts_.nranks >= 1, "service needs at least one rank");
  TRIOLET_CHECK(opts_.threads_per_rank >= 1,
                "service needs at least one pool worker per rank");
  TRIOLET_CHECK(opts_.max_queued >= 1, "admission queue must hold a job");
  TRIOLET_CHECK(opts_.batch_limit >= 1, "batch limit must be positive");
  TRIOLET_CHECK(opts_.max_concurrent >= 1 &&
                    opts_.max_concurrent <= bands_.capacity(),
                "max_concurrent must fit the leasable band capacity");
  // Same startup audit Cluster::run performs: the static reserved bands
  // (and the job-band region above them) must be pairwise disjoint.
  net::assert_tag_bands_disjoint();

  const std::size_t budget = opts_.slice_cache_bytes == ~std::size_t{0}
                                 ? net::slice_cache_budget()
                                 : opts_.slice_cache_bytes;
  pools_.reserve(static_cast<std::size_t>(opts_.nranks));
  residency_sinks_.reserve(static_cast<std::size_t>(opts_.nranks));
  residency_.reserve(static_cast<std::size_t>(opts_.nranks));
  for (int r = 0; r < opts_.nranks; ++r) {
    pools_.push_back(
        std::make_unique<runtime::ThreadPool>(opts_.threads_per_rank));
    residency_sinks_.push_back(std::make_unique<net::ResidencyStats>());
    residency_.push_back(
        std::make_unique<net::Residency>(budget, residency_sinks_.back().get()));
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

JobManager::~JobManager() { shutdown(); }

JobHandle JobManager::submit(JobOptions opts, JobBody body) {
  auto js = std::make_shared<detail::JobState>();
  std::unique_lock<std::mutex> lock(mu_);
  TRIOLET_CHECK(!stopping_, "submit after shutdown");
  cv_space_.wait(lock, [&] {
    return static_cast<int>(queue_.size()) < opts_.max_queued || stopping_;
  });
  TRIOLET_CHECK(!stopping_, "service shut down while a submit was blocked");
  js->id = next_job_id_++;
  js->opts = std::move(opts);
  js->body = std::move(body);
  js->queued.reset();
  queue_.push_back(js);
  stats_.submitted += 1;
  inflight_ += 1;
  cv_dispatch_.notify_all();
  return JobHandle(js);
}

std::optional<JobHandle> JobManager::try_submit(JobOptions opts, JobBody body) {
  auto js = std::make_shared<detail::JobState>();
  std::lock_guard<std::mutex> lock(mu_);
  TRIOLET_CHECK(!stopping_, "submit after shutdown");
  if (static_cast<int>(queue_.size()) >= opts_.max_queued) {
    stats_.rejected += 1;
    return std::nullopt;
  }
  js->id = next_job_id_++;
  js->opts = std::move(opts);
  js->body = std::move(body);
  js->queued.reset();
  queue_.push_back(js);
  stats_.submitted += 1;
  inflight_ += 1;
  cv_dispatch_.notify_all();
  return JobHandle(js);
}

void JobManager::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_drain_.wait(lock, [&] { return inflight_ == 0; });
}

void JobManager::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second call: the dispatcher is already gone; nothing left to stop.
      if (!dispatcher_.joinable() && group_threads_.empty()) return;
    }
    stopping_ = true;
    cv_dispatch_.notify_all();
    cv_space_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  std::vector<std::thread> groups;
  {
    std::lock_guard<std::mutex> lock(mu_);
    groups.swap(group_threads_);
  }
  for (auto& t : groups) t.join();
}

ServiceStats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats s = stats_;
  for (const auto& sink : residency_sinks_) s.residency += *sink;
  return s;
}

void JobManager::dispatcher_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_dispatch_.wait(lock, [&] {
      return (!queue_.empty() && running_ < opts_.max_concurrent) ||
             (stopping_ && queue_.empty());
    });
    if (queue_.empty()) return;  // stopping, and drained

    // Pop the head job plus every batchable follower (same nonzero
    // batch_key, up to batch_limit): one group = one band lease, one set of
    // rank threads and Comms, bodies sequential.
    std::vector<std::shared_ptr<detail::JobState>> group;
    group.push_back(queue_.front());
    queue_.pop_front();
    const std::uint64_t key = group.front()->opts.batch_key;
    if (key != 0) {
      for (auto it = queue_.begin();
           it != queue_.end() &&
           static_cast<int>(group.size()) < opts_.batch_limit;) {
        if ((*it)->opts.batch_key == key) {
          group.push_back(*it);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    cv_space_.notify_all();

    // max_concurrent <= band capacity and each running group holds exactly
    // one lease, so this cannot exhaust (the ctor check makes that an
    // invariant, not a hope).
    net::TagMap band = bands_.lease();
    stats_.bands_leased += 1;
    running_ += 1;
    stats_.peak_concurrent = std::max(stats_.peak_concurrent, running_);
    stats_.dispatched += static_cast<std::int64_t>(group.size());
    if (group.size() > 1) {
      stats_.batches += 1;
      stats_.batched_jobs += static_cast<std::int64_t>(group.size());
    }
    for (auto& js : group) {
      js->result.queued_seconds = js->queued.seconds();
      js->result.band_base = band.base;
      js->result.batched_with = static_cast<int>(group.size()) - 1;
      arbiter_.add_job(js->id, js->opts.weight);
    }
    group_threads_.emplace_back(
        [this, band, jobs = std::move(group)]() mutable {
          run_group(band, std::move(jobs));
        });
  }
}

void JobManager::run_group(net::TagMap band,
                           std::vector<std::shared_ptr<detail::JobState>> jobs) {
  const int p = opts_.nranks;
  const std::size_t n = jobs.size();
  // The group's private abort flag: a failing job raises it (plus
  // ClusterState::interrupt_all) so only THIS group's blocked receives
  // unwind — unrelated jobs' waiters re-check their own flags and sleep on.
  auto aborted = std::make_shared<std::atomic<bool>>(false);

  std::mutex agg_mu;
  std::vector<net::CommStats> sums(n);
  std::vector<double> run_secs(n, 0.0);
  std::vector<int> completed_ranks(n, 0);
  std::string group_error;
  std::size_t error_job = n;

  auto rank_main = [&](int r) {
    net::Comm comm(r, &state_, band, residency_[static_cast<std::size_t>(r)].get(),
                   aborted.get());
    runtime::PoolScope pool_scope(*pools_[static_cast<std::size_t>(r)]);
    for (std::size_t j = 0; j < n; ++j) {
      if (aborted->load(std::memory_order_acquire)) break;
      net::CommStats before = comm.snapshot_stats();
      Stopwatch sw;
      try {
        JobContext ctx(&comm, jobs[j]->id, &jobs[j]->opts.name, &arbiter_);
        jobs[j]->body(ctx);
        // Drain queued isends so a fire-and-forget error is charged to the
        // job that posted it, not the batch neighbor that follows.
        comm.flush_async();
      } catch (const net::ClusterAborted&) {
        // Secondary failure: this rank was blocked when a peer (or the
        // whole cluster) aborted. The root cause is recorded elsewhere.
        break;
      } catch (const std::exception& e) {
        {
          std::lock_guard<std::mutex> lock(agg_mu);
          if (group_error.empty()) {
            group_error = e.what();
            error_job = j;
          }
        }
        aborted->store(true, std::memory_order_release);
        state_.interrupt_all();
        break;
      }
      const double secs = sw.seconds();
      net::CommStats delta = comm.snapshot_stats() - before;
      std::lock_guard<std::mutex> lock(agg_mu);
      sums[j] += delta;
      run_secs[j] = std::max(run_secs[j], secs);
      completed_ranks[j] += 1;
    }
    comm.quiesce();
  };

  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) ranks.emplace_back(rank_main, r);
  for (auto& t : ranks) t.join();

  // The band is quiet now (every rank joined): purge stranded messages — an
  // aborted job's unconsumed traffic, including descriptors still parked in
  // ring slots — so the next lessee starts clean and pooled buffers flow
  // back to the allocator.
  state_.transport->purge_tag_range(band.any_lo(), band.any_hi());
  bands_.reclaim(band);

  std::int64_t completed = 0, failed = 0;
  for (std::size_t j = 0; j < n; ++j) {
    auto& js = *jobs[j];
    arbiter_.remove_job(js.id);  // stats stay readable after removal
    std::lock_guard<std::mutex> lock(js.mu);
    JobResult& res = js.result;
    res.job_id = js.id;
    res.stats = sums[j];
    res.run_seconds = run_secs[j];
    res.fair_share = arbiter_.job_stats(js.id);
    if (completed_ranks[j] == p) {
      res.ok = true;
      completed += 1;
    } else {
      res.ok = false;
      if (j == error_job) {
        res.error = group_error;
      } else if (!group_error.empty()) {
        res.error = "aborted by a failure in batch-group neighbor \"" +
                    jobs[error_job]->opts.name + "\": " + group_error;
      } else {
        res.error = "job did not complete on every rank";
      }
      failed += 1;
    }
    js.done = true;
    js.cv.notify_all();
  }

  std::lock_guard<std::mutex> lock(mu_);
  stats_.completed += completed;
  stats_.failed += failed;
  running_ -= 1;
  inflight_ -= static_cast<std::int64_t>(n);
  cv_dispatch_.notify_all();
  if (inflight_ == 0) cv_drain_.notify_all();
}

}  // namespace triolet::svc
