#include "svc/band_allocator.hpp"

#include "support/macros.hpp"

namespace triolet::svc {

BandAllocator::BandAllocator(int capacity) {
  TRIOLET_CHECK(capacity >= 1 && capacity <= net::kMaxJobBands,
                "band allocator capacity outside the job-band region");
  used_.assign(static_cast<std::size_t>(capacity), false);
}

bool BandAllocator::candidate_disjoint(int slot, std::string* why) const {
  std::lock_guard<std::mutex> lock(mu_);
  return candidate_disjoint_locked(slot, why);
}

bool BandAllocator::candidate_disjoint_locked(int slot,
                                              std::string* why) const {
  // Compose the static table, every active lease, and the candidate, then
  // run the same pairwise audit Cluster startup runs on the static table.
  std::vector<net::TagBand> bands(net::reserved_tag_bands().begin(),
                                  net::reserved_tag_bands().end());
  for (std::size_t s = 0; s < used_.size(); ++s) {
    if (!used_[s] && static_cast<int>(s) != slot) continue;
    const int base = net::job_band_base(static_cast<int>(s));
    bands.push_back(net::TagBand{static_cast<int>(s) == slot ? "candidate-lease"
                                                             : "active-lease",
                                 base, base + net::kJobBandWidth});
  }
  return net::tag_bands_disjoint(bands, why);
}

bool BandAllocator::try_lease(net::TagMap& out) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t s = 0; s < used_.size(); ++s) {
    if (used_[s]) continue;
    std::string why;
    TRIOLET_CHECK(candidate_disjoint_locked(static_cast<int>(s), &why),
                  why.c_str());
    used_[s] = true;
    leased_ += 1;
    out = net::TagMap{net::job_band_base(static_cast<int>(s))};
    return true;
  }
  return false;
}

net::TagMap BandAllocator::lease() {
  net::TagMap band;
  if (!try_lease(band)) {
    throw BandsExhausted(static_cast<int>(used_.size()));
  }
  return band;
}

void BandAllocator::reclaim(const net::TagMap& band) {
  std::lock_guard<std::mutex> lock(mu_);
  TRIOLET_CHECK(band.base >= net::kJobBandRegion &&
                    (band.base - net::kJobBandRegion) % net::kJobBandWidth == 0,
                "reclaim of a tag map this allocator never leased");
  const auto slot = static_cast<std::size_t>(
      (band.base - net::kJobBandRegion) / net::kJobBandWidth);
  TRIOLET_CHECK(slot < used_.size() && used_[slot],
                "reclaim of a band that is not currently leased");
  used_[slot] = false;
  leased_ -= 1;
}

int BandAllocator::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(used_.size());
}

int BandAllocator::leased() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leased_;
}

}  // namespace triolet::svc
