#pragma once

// Weighted deficit-round-robin arbitration of demand-scheduler grants.
//
// Without arbitration, the root's grant-service loop issues work in request
// arrival order: a large kmeans whose workers request back-to-back can
// monopolize the service loop while a stream of small histogram jobs sits
// queued — exactly the latency profile a multi-tenant service cannot have.
// The GrantArbiter sits behind sched::GrantGate: every active job's root
// calls acquire(job, items) immediately before issuing a grant of `items`
// outer-domain units, and the arbiter blocks the caller until the job's
// deficit-round-robin turn.
//
// Classic DRR, adapted to unsplittable grants: the ring's head job is
// replenished quantum x weight credit when the rotation reaches it with
// work pending (and reset to zero credit when idle — no hoarding); a grant
// is issued whenever the head is the requester and its deficit is positive.
// A grant larger than the remaining deficit still issues — grants are not
// splittable here — driving the deficit negative, so the job "borrows" and
// then sits out rotations until replenishment pays the debt back: weighted
// fairness holds over a window of a few quanta even for coarse grants.
// Rotation skips idle jobs, so a lone active job never blocks
// (work-conserving), and a job not registered at all passes through — the
// single-job fast path costs one mutex acquisition.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sched/policy.hpp"
#include "support/timing.hpp"

namespace triolet::svc {

/// Per-job arbitration counters (retained after the job unregisters so
/// results can be reported with the job).
struct FairShareStats {
  std::int64_t acquires = 0;        // before_grant calls that went through
  std::int64_t acquired_items = 0;  // outer-domain units those covered
  std::int64_t waits = 0;           // acquires that had to block
  double wait_seconds = 0.0;        // total time blocked in acquire
};

class GrantArbiter {
 public:
  /// `quantum_items` is the credit one rotation grants a weight-1 job, in
  /// outer-domain units.
  explicit GrantArbiter(std::int64_t quantum_items = 1 << 12);

  /// Registers `job` with the given weight (credit per rotation scales
  /// linearly with it). One registration per job id.
  void add_job(std::uint64_t job, int weight);

  /// Unregisters `job`; its stats remain readable. Wakes waiters so the
  /// rotation can move past the vacated slot.
  void remove_job(std::uint64_t job);

  /// Blocks until it is `job`'s turn to issue a grant of `items` units.
  /// Called on the job root's rank thread (at most one caller per job).
  /// Unregistered jobs pass straight through.
  void acquire(std::uint64_t job, std::int64_t items);

  FairShareStats job_stats(std::uint64_t job) const;
  int active_jobs() const;
  std::int64_t quantum_items() const { return quantum_; }

 private:
  struct Entry {
    std::uint64_t id = 0;
    int weight = 1;
    std::int64_t deficit = 0;
    std::int64_t pending = 0;  // >0 while the job's root waits in acquire
  };

  Entry* find_locked(std::uint64_t job);
  /// Advances head to the next entry, applying the DRR credit rule to the
  /// entry the head lands on. Notifies waiters: the thread whose turn
  /// arrived may be blocked while another thread rotates.
  void rotate_locked();

  const std::int64_t quantum_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> ring_;
  std::size_t head_ = 0;
  std::unordered_map<std::uint64_t, FairShareStats> stats_;
};

/// The sched::GrantGate adapter binding one job id to an arbiter; install
/// via SchedOptions::gate (svc::JobContext::sched_options does it).
class JobGate final : public sched::GrantGate {
 public:
  JobGate() = default;
  JobGate(GrantArbiter* arbiter, std::uint64_t job)
      : arbiter_(arbiter), job_(job) {}

  void before_grant(sched::index_t items) override {
    if (arbiter_) arbiter_->acquire(job_, items);
  }

 private:
  GrantArbiter* arbiter_ = nullptr;
  std::uint64_t job_ = 0;
};

}  // namespace triolet::svc
