#pragma once

// Demand-driven distributed chunk scheduler (the "sched" subsystem).
//
// The static split of dist/skeletons.hpp assigns one contiguous block per
// rank up front — ideal when iterations cost the same, idle-heavy when the
// iteration space is skewed (tpacf's triangular loops, filtered domains).
// This layer replaces the *mapping* of work to ranks with a request/grant
// protocol while reusing every other piece of the two-level machinery:
//
//   1. The root subdivides the iterator's domain into a fixed sequence of
//      atomic chunks ("atoms": `grain` outer-axis units, core::outer_slice).
//   2. Worker ranks ask for work by sending a request on the invocation
//      epoch's request tag (net::sched_request_tag; the pair of protocol
//      tags rotates per run_chunks call so back-to-back scheduled skeletons
//      cannot alias across rounds); the root's service loop receives requests
//      with kAnySource and answers each with a Grant: a run of consecutive
//      atoms, sliced and serialized exactly as scatter_chunks slices static
//      chunks (sub-arrays only). Run length is the policy knob — everything
//      per rank (kStatic), geometrically decaying runs (kGuided), or one
//      atom (kDynamic).
//   3. The root interleaves serving with its own execution: while requests
//      are pending it serves; otherwise it self-issues one atom at a time,
//      staying responsive (a grant is never delayed by more than one atom
//      of root compute).
//   4. When the queue drains, each worker's next request is answered with a
//      `done` grant; workers then enter the combine step. Partial results
//      combine along the existing binomial reduce tree (CombineMode::kTree)
//      or by an atom-ordered gather + left fold (CombineMode::kOrdered,
//      bitwise reproducible across policies — see policy.hpp).
//
// Protocol traffic, grant counts, and per-rank busy/idle time are recorded
// in CommStats::sched so benchmarks can report imbalance and control
// overhead (docs/INTERNALS.md "Distributed scheduling").

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/consume.hpp"
#include "core/skeletons.hpp"
#include "net/comm.hpp"
#include "net/residency.hpp"
#include "runtime/parallel.hpp"
#include "sched/policy.hpp"
#include "sched/tuner.hpp"
#include "support/timing.hpp"

namespace triolet::sched {

/// One scheduler message from root to a worker: either a run of atoms
/// [atom_lo, atom_lo + atom_n) with the matching iterator slice, or the
/// `done` dismissal that ends the worker's request loop. `grain` ships with
/// every grant because only the root resolves it (workers never see the
/// global extent).
template <typename It>
struct Grant {
  std::uint8_t done = 0;
  index_t atom_lo = 0;
  index_t atom_n = 0;
  index_t grain = 0;
  It task{};
};

namespace detail {

/// Executes `run` bookkeeping: calls on_chunk and charges busy time /
/// chunk / item counters to this rank's scheduler stats.
template <typename It, typename OnChunk>
void execute_run(net::Comm& comm, const It& run, index_t atom_lo,
                 index_t atom_n, index_t grain, OnChunk&& on_chunk) {
  if (atom_n <= 0) return;
  Stopwatch sw;
  on_chunk(run, atom_lo, atom_n, grain);
  auto& s = comm.sched_stats();
  s.busy_seconds += sw.seconds();
  s.chunks_executed += 1;
  s.items_executed += core::outer_extent(run.domain());
}

/// Streamed counterpart of execute_run: hands the grant to the pool via
/// `stream` and returns immediately (the receiving thread goes back to the
/// protocol). Chunk/item counters are charged here; busy time is folded in
/// from the stream once it drains.
template <typename It, typename OnChunk>
void stream_run(net::Comm& comm, core::StreamingConsumer& stream, Grant<It> g,
                const OnChunk& on_chunk) {
  if (g.atom_n <= 0) return;
  auto& s = comm.sched_stats();
  s.chunks_executed += 1;
  s.items_executed += core::outer_extent(g.task.domain());
  s.streamed_grants += 1;
  stream.submit([g = std::move(g), &on_chunk] {
    on_chunk(g.task, g.atom_lo, g.atom_n, g.grain);
  });
}

/// Charges the delta of the current pool's counters across one run_chunks
/// call to CommStats::pool, surfacing intra-node steal/park/wake behavior
/// next to the protocol traffic it served.
class PoolDeltaScope {
 public:
  explicit PoolDeltaScope(net::Comm& comm)
      : comm_(comm), pool_(runtime::current_pool()), before_(pool_.stats()) {}
  ~PoolDeltaScope() {
    const runtime::PoolStats after = pool_.stats();
    auto& p = comm_.pool_stats();
    p.tasks_executed += after.tasks_executed - before_.tasks_executed;
    p.tasks_stolen += after.tasks_stolen - before_.tasks_stolen;
    p.splits += after.splits - before_.splits;
    p.steal_attempts += after.steal_attempts - before_.steal_attempts;
    p.parks += after.parks - before_.parks;
    p.wakes += after.wakes - before_.wakes;
  }
  PoolDeltaScope(const PoolDeltaScope&) = delete;
  PoolDeltaScope& operator=(const PoolDeltaScope&) = delete;

 private:
  net::Comm& comm_;
  runtime::ThreadPool& pool_;
  runtime::PoolStats before_;
};

}  // namespace detail

namespace detail {

/// The scheduler body for one concrete policy (kStatic/kGuided/kDynamic).
/// Factored out of run_chunks so the kAuto wrapper can re-enter with
/// instrumented closures without run_chunks calling *itself*: the wrapper
/// closures are fresh template types, so a self-call would instantiate
/// run_chunks without bound.
template <typename MakeIter, typename OnChunk>
void run_chunks_concrete(net::Comm& comm, MakeIter&& make,
                         const SchedOptions& opts, OnChunk&& on_chunk) {
  using It = std::remove_cvref_t<decltype(make())>;
  const int p = comm.size();
  auto& sched = comm.sched_stats();
  detail::PoolDeltaScope pool_delta(comm);

  // Streamed grant execution: created only for the demand-driven policies
  // (kStatic pushes one grant per rank up front — nothing to pipeline).
  std::optional<core::StreamingConsumer> stream;
  if (opts.streaming && opts.policy != SchedulePolicy::kStatic) {
    stream.emplace(runtime::current_pool());
  }
  // Backpressure: stop requesting (worker) / self-issuing (root) while more
  // than ~2 tasks per worker are already in flight; the receiving thread
  // helps execute instead. Bounds queue growth without ever idling the
  // pool.
  const std::int64_t throttle =
      stream ? 2 * static_cast<std::int64_t>(stream->pool().size()) : 0;

  // This invocation's epoch-rotated protocol tags. Without the rotation a
  // fast worker's next-round request reaching the root's drain loop would be
  // answered with this round's `done`, starving a slow worker (see
  // tags.hpp). Claimed on every rank: run_chunks is collective.
  const int epoch = comm.next_sched_epoch();
  const int tag_request = net::sched_request_tag(epoch);
  const int tag_grant = net::sched_grant_tag(epoch);

  // Grant-payload residency (see SchedOptions::residency): identical on
  // every rank — the iterator type, the option, and the process-global
  // budget are all SPMD-uniform — so sender and receivers agree on whether
  // the protocol is in play without negotiating.
  const bool resident = core::iter_uses_residency_v<It> && opts.residency &&
                        comm.residency_enabled();

  if (comm.rank() != 0) {
    // Decode grants under this rank's slice cache for the whole loop: an
    // inline slice is stored for future rounds, a token resolves from the
    // cache (fetching from the root on miss/corruption).
    std::optional<net::ResidencyDecodeScope> rscope;
    if (resident) rscope.emplace(comm, /*owner=*/0);
    if (opts.policy == SchedulePolicy::kStatic) {
      // Static: exactly one pre-assigned grant, no requests. Received
      // through a handle so the serialized payload size is observable for
      // the bytes-per-item calibration.
      net::PendingRecv pending = comm.irecv(0, tag_grant);
      Grant<It> g = pending.get<Grant<It>>();
      sched.grants_received += 1;
      sched.grant_payload_bytes +=
          static_cast<std::int64_t>(pending.message().payload.size());
      sched.granted_items += core::outer_extent(g.task.domain());
      detail::execute_run(comm, g.task, g.atom_lo, g.atom_n, g.grain,
                          on_chunk);
      return;
    }
    // Demand-driven: request until dismissed. At most one request is ever
    // outstanding (the termination invariant the root's done-counting
    // relies on); prefetch only moves *when* it is posted.
    auto post_request = [&] {
      if (opts.prefetch) {
        (void)comm.isend(0, tag_request, std::uint8_t{0});
      } else {
        comm.send(0, tag_request, std::uint8_t{0});
      }
      sched.requests_sent += 1;
      sched.control_messages += 1;
      sched.control_bytes += 1;
      return comm.irecv(0, tag_grant);
    };
    net::PendingRecv next_grant = post_request();
    while (true) {
      // Sampled before the wait: was the pool still chewing on earlier
      // chunks when this rank went back to receiving? That wait time is
      // overlap, even if the chunks finish mid-wait.
      const bool busy_while_receiving = stream && stream->pending() > 0;
      Stopwatch wait;
      Grant<It> g = next_grant.get<Grant<It>>();
      const double waited = wait.seconds();
      sched.idle_seconds += waited;
      if (busy_while_receiving) sched.overlap_seconds += waited;
      sched.steal_waits += 1;
      if (g.done) break;
      sched.grants_received += 1;
      // Receiver-side payload accounting: serialized bytes over granted
      // units is the measured bytes-per-item the tuner calibrates with
      // (residency tokens show up here as genuinely small payloads).
      sched.grant_payload_bytes +=
          static_cast<std::int64_t>(next_grant.message().payload.size());
      sched.granted_items += core::outer_extent(g.task.domain());
      if (stream) {
        // Hand the grant to the pool and immediately request the next one;
        // when too much is queued, help execute before requesting (the
        // request is the throttle: at most one is ever outstanding).
        detail::stream_run(comm, *stream, std::move(g), on_chunk);
        while (stream->pending() > throttle) {
          if (!stream->help()) std::this_thread::yield();
        }
        next_grant = post_request();
      } else if (opts.prefetch) {
        // Double-buffered grants: the request for run k+1 is already in
        // flight while run k executes, hiding the service round trip
        // behind compute.
        next_grant = post_request();
        detail::execute_run(comm, g.task, g.atom_lo, g.atom_n, g.grain,
                            on_chunk);
      } else {
        detail::execute_run(comm, g.task, g.atom_lo, g.atom_n, g.grain,
                            on_chunk);
        next_grant = post_request();
      }
    }
    if (stream) {
      stream->drain();
      sched.busy_seconds += stream->busy_seconds();
    }
    return;
  }

  // -- root -------------------------------------------------------------------
  It it = make();
  const auto dom = it.domain();
  const index_t extent = core::outer_extent(dom);
  // The cost-variance hint is a pure function of the domain (per-unit value
  // weights for segmented sources, 0 for dense ones), so the resolved grain
  // — and with it the kOrdered atom decomposition — stays policy-independent.
  const index_t grain =
      resolve_grain(extent, p, opts.grain, core::outer_cost_cv(dom));
  const index_t natoms = atom_count(extent, grain);

  // Atoms [a, b) as a sliced sub-iterator (contiguous outer units, last
  // atom clamped to the extent).
  auto slice_run = [&](index_t a, index_t b) {
    const index_t u0 = std::min(a * grain, extent);
    const index_t u1 = std::min(b * grain, extent);
    return it.slice(core::outer_slice(dom, u0, u1));
  };
  // Outer-domain items atoms [a, b) cover (the fair-share currency).
  auto units_of = [&](index_t a, index_t b) {
    return std::min(b * grain, extent) - std::min(a * grain, extent);
  };
  // Fair-share gate (SchedOptions::gate): called before every grant and
  // every root self-issue, root thread only. Under the service layer this
  // blocks until the job's deficit-round-robin turn, so a large job's grant
  // stream cannot starve concurrent small jobs.
  auto gate_items = [&](index_t a, index_t b) {
    if (opts.gate) opts.gate->before_grant(units_of(a, b));
  };

  // Grant transport. Non-resident path: plain isend (serialize + deliver on
  // the progress engine). Resident path: serialize eagerly on this thread
  // under the per-destination encode scope — token substitution must see
  // grants in posting order to mirror the worker's cache — then hand the
  // segments to the engine with the Grant kept alive for zero-copy gather.
  if (resident) net::install_residency_fetch_service(comm);
  auto send_grant = [&](int r, Grant<It> g) {
    if (resident) {
      auto grant = std::make_shared<Grant<It>>(std::move(g));
      serial::SegmentedBytes sg;
      {
        net::ResidencyEncodeScope scope(
            comm, r,
            core::iter_is_fused_view_v<It> ? &comm.view_stats() : nullptr);
        sg = serial::to_segments(*grant);
      }
      (void)comm.isend_segments(r, tag_grant, std::move(sg),
                                std::move(grant));
    } else {
      (void)comm.isend(r, tag_grant, std::move(g));
    }
  };

  if (opts.policy == SchedulePolicy::kStatic) {
    // The split_blocks schedule expressed in atoms: rank r gets atoms
    // [natoms*r/p, natoms*(r+1)/p), pushed without any request traffic.
    for (int r = 1; r < p; ++r) {
      const index_t a = natoms * r / p;
      const index_t b = natoms * (r + 1) / p;
      gate_items(a, b);
      // Delivery of the pushed grants runs on the progress engine while the
      // root executes its own block below.
      send_grant(r, Grant<It>{0, a, b - a, grain, slice_run(a, b)});
      sched.grants_served += 1;
      sched.control_messages += 1;
      sched.control_bytes += kGrantHeaderBytes;
    }
    const index_t b0 = natoms * 1 / p;
    gate_items(0, b0);
    detail::execute_run(comm, slice_run(0, b0), 0, b0, grain, on_chunk);
    return;
  }

  // Demand-driven service loop. `next` is the queue head; the root serves
  // every pending request before self-issuing one atom, so worker wait time
  // is bounded by one atom of root compute.
  index_t next = 0;
  int done_sent = 0;
  auto serve = [&](int requester) {
    const index_t remaining = natoms - next;
    if (remaining <= 0) {
      send_grant(requester, Grant<It>{1, 0, 0, grain, {}});
      done_sent += 1;
    } else {
      const index_t n = opts.policy == SchedulePolicy::kDynamic
                            ? 1
                            : std::min(remaining, guided_run_atoms(remaining, p));
      gate_items(next, next + n);
      // Grants leave through the progress engine: the root can resume its
      // own atom (or serve the next request) while the grant delivers
      // off-thread.
      send_grant(requester, Grant<It>{0, next, n, grain, slice_run(next, next + n)});
      next += n;
      sched.grants_served += 1;
    }
    sched.control_messages += 1;
    sched.control_bytes += kGrantHeaderBytes;
  };

  while (next < natoms || done_sent < p - 1) {
    // Serve any pending residency fetches (cache miss / checksum repair on
    // a worker) so a fetch is never stuck behind a full atom of compute.
    comm.poll_services();
    if (next < natoms) {
      bool served = false;
      while (auto req = comm.try_recv_message(net::kAnySource,
                                              tag_request)) {
        serve(req->src);
        served = true;
      }
      if (served) continue;
      if (stream) {
        // Streamed self-issue: the root's own atoms execute on its pool,
        // so the service loop stays responsive the whole time — a grant is
        // never delayed by even one atom of root compute. Self-issue pauses
        // (and the root helps its pool) while enough is queued.
        if (stream->pending() > throttle) {
          if (!stream->help()) std::this_thread::yield();
          continue;
        }
        gate_items(next, next + 1);
        detail::stream_run(
            comm, *stream,
            Grant<It>{0, next, 1, grain, slice_run(next, next + 1)},
            on_chunk);
        next += 1;
      } else {
        // No demand right now: run one atom locally, then poll again.
        gate_items(next, next + 1);
        detail::execute_run(comm, slice_run(next, next + 1), next, 1, grain,
                            on_chunk);
        next += 1;
      }
    } else {
      // Queue drained: block for the stragglers' final requests. Streamed
      // root atoms keep computing on the pool underneath this blocking
      // receive — that compute is exactly the overlap the stream buys.
      const bool busy_while_receiving = stream && stream->pending() > 0;
      Stopwatch wait;
      net::Message req =
          comm.recv_message(net::kAnySource, tag_request);
      if (busy_while_receiving) {
        sched.overlap_seconds += wait.seconds();
      }
      serve(req.src);
    }
  }
  if (stream) {
    stream->drain();
    sched.busy_seconds += stream->busy_seconds();
  }
}

}  // namespace detail

/// The scheduler core: runs `make()`'s iterator across all ranks under
/// `opts`, invoking `on_chunk(run_iter, atom_lo, atom_n, grain)` on the
/// rank that executes each granted run. `make` is called on rank 0 only
/// (same contract as dist::scatter_chunks); `on_chunk` runs on every rank
/// for its own grants. Collective: every rank must call it.
///
/// With opts.streaming (kGuided/kDynamic), grants are handed to the rank's
/// current_pool() through a core::StreamingConsumer as they arrive, so
/// on_chunk may run on pool workers, *concurrently* with itself — callers
/// that pass streaming options must make on_chunk thread-safe. The stream
/// is drained before run_chunks returns, so results are complete either
/// way. Under SchedulePolicy::kAuto the tuner may pick any lattice point —
/// including streaming — so on_chunk must be thread-safe under kAuto too.
template <typename MakeIter, typename OnChunk>
void run_chunks(net::Comm& comm, MakeIter&& make, const SchedOptions& opts,
                OnChunk&& on_chunk) {
  if (opts.policy == SchedulePolicy::kAuto) {
    // Model-driven mode (sched/tuner.hpp): resolve this round's concrete
    // options from the tuner, run them with an instrumented on_chunk that
    // samples per-run durations, then fit + re-pick collectively from the
    // round's counter delta.
    AutoTuner& tuner = detail::tuner_for(comm, opts);
    const SchedOptions round_opts = tuner.begin_round(opts);
    const net::CommStats before = comm.snapshot_stats();
    index_t root_extent = -1;
    double root_cost_cv = 0.0;
    Stopwatch wall;
    detail::run_chunks_concrete(
        comm,
        [&] {
          auto it = make();
          root_extent = core::outer_extent(it.domain());
          root_cost_cv = core::outer_cost_cv(it.domain());
          return it;
        },
        round_opts,
        [&](const auto& run, index_t atom_lo, index_t atom_n, index_t grain) {
          Stopwatch sw;
          on_chunk(run, atom_lo, atom_n, grain);
          tuner.record_run(atom_lo, grain, core::outer_extent(run.domain()),
                           sw.seconds());
        });
    tuner.finish_round(comm, wall.seconds(), comm.snapshot_stats() - before,
                       root_extent, root_cost_cv);
    return;
  }
  detail::run_chunks_concrete(comm, make, opts, on_chunk);
}

namespace detail {

/// Elementwise-sum combine for partial histograms (mirrors
/// dist::detail::sum_arrays; duplicated to keep sched free of a dist
/// dependency — dist layers on sched, not the reverse).
template <typename A>
A sum_arrays(A a, const A& b) {
  TRIOLET_CHECK(a.size() == b.size(), "partial histogram size mismatch");
  auto* pa = a.data();
  const auto* pb = b.data();
  const index_t n = a.size();
  for (index_t i = 0; i < n; ++i) pa[i] += pb[i];
  return a;
}

}  // namespace detail

/// Demand-scheduled distributed reduction. `init` must be an identity of
/// `op`. Rank 0 gets the result; other ranks a default T.
///
/// kTree: each rank folds its grants in arrival order, per-rank partials
/// combine along the binomial reduce tree (exact for associative +
/// commutative ops; FP parenthesization follows the chunk assignment).
/// kOrdered: one partial per atom, gathered and left-folded in atom order —
/// bitwise identical for all three policies and run-to-run (for a fixed
/// per-node thread count), the scheduler analogue of reduce_ordered.
template <typename MakeIter, typename T, typename Op>
T map_reduce(net::Comm& comm, MakeIter&& make, T init, Op op,
             const SchedOptions& opts) {
  // Every on_chunk below computes its partial outside the lock and only
  // merges under it: with opts.streaming, chunks run concurrently on pool
  // workers (the lock is uncontended on the non-streaming path).
  std::mutex mu;
  if (opts.combine == CombineMode::kOrdered) {
    std::vector<std::pair<index_t, T>> mine;
    run_chunks(comm, make, opts,
               [&](const auto& run, index_t atom_lo, index_t atom_n,
                   index_t grain) {
                 const auto rdom = run.domain();
                 const index_t run_extent = core::outer_extent(rdom);
                 std::vector<std::pair<index_t, T>> local;
                 local.reserve(static_cast<std::size_t>(atom_n));
                 for (index_t j = 0; j < atom_n; ++j) {
                   const index_t u0 = std::min(j * grain, run_extent);
                   const index_t u1 = std::min((j + 1) * grain, run_extent);
                   auto atom = core::localpar(
                       run.slice(core::outer_slice(rdom, u0, u1)));
                   local.emplace_back(atom_lo + j,
                                      core::reduce(atom, init, op));
                 }
                 std::lock_guard<std::mutex> lock(mu);
                 mine.insert(mine.end(),
                             std::make_move_iterator(local.begin()),
                             std::make_move_iterator(local.end()));
               });
    auto parts = comm.gather(mine, 0);
    if (comm.rank() != 0) return T{};
    std::vector<std::pair<index_t, T>> pieces;
    for (auto& part : parts) {
      pieces.insert(pieces.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    std::sort(pieces.begin(), pieces.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    T acc = std::move(init);
    for (auto& [idx, partial] : pieces) {
      acc = op(std::move(acc), std::move(partial));
    }
    return acc;
  }
  // kTree: per-grant partials keyed by first atom, folded in atom order
  // before entering the reduce tree. A rank's grants always carry ascending
  // atom_lo (the root issues atoms monotonically), so the sorted fold is
  // exactly the old arrival-order fold — and makes the local combine
  // independent of the completion order streaming introduces.
  std::vector<std::pair<index_t, T>> partials;
  run_chunks(comm, make, opts,
             [&](const auto& run, index_t atom_lo, index_t, index_t) {
               T part = core::reduce(core::localpar(run), init, op);
               std::lock_guard<std::mutex> lock(mu);
               partials.emplace_back(atom_lo, std::move(part));
             });
  std::sort(partials.begin(), partials.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  T acc = init;
  for (auto& [lo, partial] : partials) {
    acc = op(std::move(acc), std::move(partial));
  }
  return comm.reduce(acc, op, 0);
}

/// Demand-scheduled distributed sum (rank 0 gets the result).
template <typename MakeIter>
auto sum(net::Comm& comm, MakeIter&& make, const SchedOptions& opts) {
  using T = typename std::remove_cvref_t<decltype(make())>::value_type;
  return map_reduce(comm, make, T{},
                    [](T a, const T& b) { return a + b; }, opts);
}

/// Demand-scheduled element count (after filtering / nesting).
template <typename MakeIter>
index_t count(net::Comm& comm, MakeIter&& make, const SchedOptions& opts) {
  // Integer addition commutes exactly, so streamed chunks may merge in any
  // completion order; the atomic makes the concurrent adds safe.
  std::atomic<index_t> acc{0};
  run_chunks(comm, make, opts,
             [&](const auto& run, index_t, index_t, index_t) {
               acc.fetch_add(core::count(core::localpar(run)),
                             std::memory_order_relaxed);
             });
  return comm.reduce(acc.load(), [](index_t a, index_t b) { return a + b; },
                     0);
}

/// Demand-scheduled integer histogram: per-grant threaded partials
/// accumulate into one per-rank histogram, combined along the reduce tree.
/// Integer addition commutes exactly, so every policy returns the same
/// histogram bit for bit.
template <typename MakeIter>
Array1<std::int64_t> histogram(net::Comm& comm, index_t nbins,
                               MakeIter&& make, const SchedOptions& opts) {
  // Each chunk's histogram is built outside the lock; only the elementwise
  // merge (exact: integer adds commute) is serialized, so streamed chunks
  // can accumulate in any completion order.
  std::mutex mu;
  Array1<std::int64_t> acc(nbins, 0);
  run_chunks(comm, make, opts,
             [&](const auto& run, index_t, index_t, index_t) {
               auto part = core::histogram(nbins, core::localpar(run));
               std::lock_guard<std::mutex> lock(mu);
               acc = detail::sum_arrays(std::move(acc), part);
             });
  return comm.reduce(acc, detail::sum_arrays<Array1<std::int64_t>>, 0);
}

/// Demand-scheduled floating-point histogram (cutcp's grid pattern).
/// Accumulation order follows the chunk assignment, so results match the
/// static path to rounding, not bitwise.
template <typename F, typename MakeIter>
Array1<F> float_histogram(net::Comm& comm, index_t ncells, MakeIter&& make,
                          const SchedOptions& opts) {
  // Merge order under streaming follows chunk completion, which adds one
  // more source of rounding-level variation to the already order-dependent
  // accumulation documented above.
  std::mutex mu;
  Array1<F> acc(ncells, F{0});
  run_chunks(comm, make, opts,
             [&](const auto& run, index_t, index_t, index_t) {
               auto part = core::float_histogram<F>(ncells,
                                                    core::localpar(run));
               std::lock_guard<std::mutex> lock(mu);
               acc = detail::sum_arrays(std::move(acc), part);
             });
  return comm.reduce(acc, detail::sum_arrays<Array1<F>>, 0);
}

/// Demand-scheduled 1D materialization: every grant builds one contiguous
/// base-offset-tagged part; the root block-copies all parts into place
/// (same assembly as dist::build_array1, just many small parts instead of
/// one per rank). Elementwise output, so results are identical under every
/// policy.
template <typename MakeIter>
auto build_array1(net::Comm& comm, MakeIter&& make, const SchedOptions& opts) {
  using It = std::remove_cvref_t<decltype(make())>;
  using V = typename It::value_type;
  // Part placement is positional (each part carries its base offset), so
  // streamed completion order is irrelevant; the lock only guards the
  // vector growth.
  std::mutex mu;
  std::vector<Array1<V>> mine;
  run_chunks(comm, make, opts,
             [&](const auto& run, index_t, index_t, index_t) {
               auto part = core::build_array1(core::localpar(run));
               std::lock_guard<std::mutex> lock(mu);
               mine.push_back(std::move(part));
             });
  auto gathered = comm.gather(mine, 0);
  if (comm.rank() != 0) return Array1<V>{};
  std::vector<Array1<V>> parts;
  for (auto& g : gathered) {
    parts.insert(parts.end(), std::make_move_iterator(g.begin()),
                 std::make_move_iterator(g.end()));
  }
  if (parts.empty()) return Array1<V>{};
  index_t lo = parts.front().lo(), hi = parts.front().hi();
  for (const auto& part : parts) {
    lo = std::min(lo, part.lo());
    hi = std::max(hi, part.hi());
  }
  Array1<V> out(lo, std::vector<V>(static_cast<std::size_t>(hi - lo)));
  for (const auto& part : parts) {
    std::copy_n(part.data(), static_cast<std::size_t>(part.size()),
                out.data() + (part.lo() - lo));
  }
  return out;
}

/// Demand-scheduled 2D materialization. Grants are full-width row bands
/// (outer_slice on Dim2), so every part is a rectangular Block2 the
/// existing row-major assembly handles; unlike the static path's
/// near-square split_blocks grid, the scheduler's decomposition is 1D over
/// rows — the price of keeping the chunk queue a single sequence.
template <typename MakeIter>
auto build_array2(net::Comm& comm, MakeIter&& make, const SchedOptions& opts) {
  using It = std::remove_cvref_t<decltype(make())>;
  using V = typename It::value_type;
  // Positional assembly again: blocks carry their own rectangles.
  std::mutex mu;
  std::vector<core::Block2<V>> mine;
  run_chunks(comm, make, opts,
             [&](const auto& run, index_t, index_t, index_t) {
               auto part = core::build_block2(core::localpar(run));
               std::lock_guard<std::mutex> lock(mu);
               mine.push_back(std::move(part));
             });
  auto gathered = comm.gather(mine, 0);
  if (comm.rank() != 0) return Array2<V>{};
  std::vector<core::Block2<V>> blocks;
  for (auto& g : gathered) {
    blocks.insert(blocks.end(), std::make_move_iterator(g.begin()),
                  std::make_move_iterator(g.end()));
  }
  if (blocks.empty()) return Array2<V>{};
  core::Dim2 full = blocks.front().dom;
  for (const auto& b : blocks) {
    full.y0 = std::min(full.y0, b.dom.y0);
    full.y1 = std::max(full.y1, b.dom.y1);
    full.x0 = std::min(full.x0, b.dom.x0);
    full.x1 = std::max(full.x1, b.dom.x1);
  }
  TRIOLET_CHECK(full.x0 == 0, "build_array2 needs a full-width 2D domain");
  Array2<V> out(full.y0, full.rows(), full.cols(),
                std::vector<V>(static_cast<std::size_t>(full.size())));
  for (const auto& b : blocks) {
    const index_t bw = b.dom.cols();
    if (bw == 0) continue;
    for (index_t y = b.dom.y0; y < b.dom.y1; ++y) {
      const V* src =
          b.data.data() + static_cast<std::size_t>((y - b.dom.y0) * bw);
      std::copy_n(src, static_cast<std::size_t>(bw), &out(y, b.dom.x0));
    }
  }
  return out;
}

}  // namespace triolet::sched

namespace triolet::serial {

template <typename It>
struct use_custom_codec<triolet::sched::Grant<It>> : std::true_type {};

template <typename It>
struct Codec<triolet::sched::Grant<It>> {
  using G = triolet::sched::Grant<It>;
  static void write(ByteWriter& w, const G& g) {
    w.write_pod(g.done);
    w.write_pod(g.atom_lo);
    w.write_pod(g.atom_n);
    w.write_pod(g.grain);
    // `done` dismissals carry no task: a default-constructed iterator may
    // hold sources that should not travel (and has nothing to say anyway).
    if (!g.done) serial::write(w, g.task);
  }
  static void read(ByteReader& r, G& g) {
    g.done = r.read_pod<std::uint8_t>();
    g.atom_lo = r.read_pod<triolet::sched::index_t>();
    g.atom_n = r.read_pod<triolet::sched::index_t>();
    g.grain = r.read_pod<triolet::sched::index_t>();
    if (!g.done) serial::read(r, g.task);
  }
};

}  // namespace triolet::serial
