#pragma once

// Model-driven autotuning for the demand scheduler (SchedulePolicy::kAuto).
//
// PRs 2–5 left SchedOptions a pile of hand-set knobs: policy, grain,
// prefetch, streaming. The AutoTuner closes the measure→simulate loop the
// benches already run by hand (bm_sched measures per-atom durations and
// asks sim::makespan_demand which policy should win) and runs it *inside*
// the scheduler, per round of an iterative job:
//
//   round 0  measurement: the job runs under kDynamic with prefetch and
//            streaming off — one atom per grant gives the model per-atom
//            durations at full resolution, and an unhidden request/grant
//            wait measures the true control round trip.
//   fit      each rank allgathers its round sample (per-run durations plus
//            its Comm::snapshot_stats() counter delta); every rank sums the
//            identical data and calls sim::calibrate_from, recovering the
//            compute / byte / latency coefficients (sim::Calibration).
//   pick     candidate SchedOptions — policy x grain ladder x prefetch x
//            streaming — are evaluated through makespan_demand /
//            makespan_overlap / makespan_static_block on the measured atom
//            durations; the predicted-best config is installed for the next
//            round. Re-picked every round as measurements refresh.
//   audit    the model is held to its word: when a picked round's measured
//            wall blows past its prediction by kModelMistrust, the fit is
//            demonstrably missing a cost the counters can't see (cold slice
//            shipping on an atom-boundary change, an oversubscribed node,
//            combine stalls), so the tuner stops arguing with the clock —
//            it measures each policy's best-predicted variant once and then
//            commits to the fastest *observed* configuration. Resident
//            sources make this cheap: audit rounds that revisit an already
//            shipped decomposition run warm, token-only.
//
// Determinism: all tuner state that influences a decision is derived from
// allgathered data, so every rank computes bit-identical picks without a
// broadcast — the SPMD analogue of the options being literal constants.
// The audit path included: observations key off the allgathered max wall.
//
// kOrdered safety: when the consumer combines in atom order (or the caller
// pinned an explicit grain), the grain ladder collapses to the one
// policy-independent resolve_grain value, so the atom decomposition — and
// therefore every kOrdered result — is bitwise identical to every manual
// configuration at that grain, no matter which policy/prefetch/streaming
// combination the tuner picks.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/comm.hpp"
#include "sched/policy.hpp"
#include "sim/schedule.hpp"

namespace triolet::sched {

/// One executed grant's measured duration, in outer-domain units so samples
/// taken at one grain can be re-aggregated into atoms of any other grain.
/// unit_lo is absolute within the job's domain; runs of one round are
/// disjoint and cover it.
struct RunSample {
  std::int64_t unit_lo = 0;
  std::int64_t units = 0;
  double seconds = 0.0;
};

TRIOLET_SERIALIZE_FIELDS(RunSample, unit_lo, units, seconds)

/// One candidate configuration and the model's verdict on it.
struct TunedCandidate {
  SchedulePolicy policy = SchedulePolicy::kStatic;
  index_t grain = 1;  // resolved, always > 0
  bool prefetch = true;
  bool streaming = false;
  double predicted_seconds = 0.0;

  bool same_config(const TunedCandidate& o) const {
    return policy == o.policy && grain == o.grain &&
           prefetch == o.prefetch && streaming == o.streaming;
  }
};

/// The best (minimum) measured wall of every configuration that has run at
/// least one full round, in first-ran order. Feeds the audit path.
struct ObservedConfig {
  TunedCandidate cfg;          // predicted_seconds unused here
  double wall_seconds = 0.0;   // min over the rounds this config ran
};

struct TunerConfig {
  /// Grain ladder half-width in octaves around the resolve_grain default:
  /// 2 explores {g/4, g/2, g, 2g, 4g}. Only open for kTree consumers — a
  /// kOrdered consumer pins the grain (see header comment).
  int grain_octaves = 2;
  /// Include prefetch-off / streaming-on points in the lattice.
  bool explore_prefetch = true;
  bool explore_streaming = true;
  /// Measured-over-predicted ratio past which the model is mistrusted and
  /// the tuner switches to auditing real rounds (see header comment). The
  /// default only fires on gross misses — cold shipping, oversubscription —
  /// never on ordinary timing noise.
  double model_mistrust = 3.0;
};

class AutoTuner;

/// The implicit registry run_chunks keeps in Comm::sched_state() when
/// SchedOptions::tuner is null: one AutoTuner per tune_key, living as long
/// as the Comm, so iterative jobs accumulate rounds with zero caller state.
/// `mu` guards the map itself: under the service layer several batched jobs
/// can share one Comm, and a Comm's streamed pool tasks may race the rank
/// thread on first-touch creation. Entries are stable (std::map), so the
/// returned references stay valid without holding the lock.
struct TunerRegistry {
  std::mutex mu;
  std::map<std::uint64_t, AutoTuner> jobs;
};

/// Per-rank autotuner state for one logical job. Rank-local, but every
/// decision is a pure function of allgathered round samples, so all ranks'
/// tuners stay in lockstep (see header comment). Used by run_chunks via
/// SchedulePolicy::kAuto; usable directly for inspection in tests/benches.
class AutoTuner {
 public:
  /// How the next pick is chosen: by the makespan model (the default), by
  /// working through the audit queue after a gross misprediction, or
  /// committed to the best observed configuration. Committed is terminal
  /// for the tuner's lifetime — committed rounds skip the per-round
  /// collective entirely, so nothing new can be learned (recreate the
  /// tuner, or use a fresh tune_key, to re-tune a changed job).
  enum class PickMode { kModel, kAudit, kCommitted };

  AutoTuner() = default;
  explicit AutoTuner(TunerConfig cfg) : cfg_(cfg) {}

  /// Completed rounds (finish_round calls).
  int rounds() const { return rounds_; }
  /// The configuration the next round will run (valid after one round).
  const SchedOptions& pick() const { return pick_; }
  bool have_pick() const { return have_pick_; }
  /// Last fitted model coefficients.
  const sim::Calibration& calibration() const { return cal_; }
  /// The full evaluated lattice of the last finish_round, predicted-best
  /// first is NOT guaranteed — entries keep lattice order; see pick().
  const std::vector<TunedCandidate>& candidates() const { return cands_; }
  /// Audit state: how the current pick was chosen and what has actually
  /// been measured so far (min wall per configuration that ran).
  PickMode pick_mode() const { return mode_; }
  const std::vector<ObservedConfig>& observations() const { return obs_; }
  /// Max-over-ranks wall seconds of the last round, and what the model
  /// predicted for the configuration that ran it (0 before any pick ran).
  double last_measured_seconds() const { return measured_; }
  double last_predicted_seconds() const { return predicted_; }
  /// Outer extent of the job as seen by the root (after one round).
  index_t extent() const { return extent_; }

  /// Resolves this round's concrete options from the user's kAuto options:
  /// the measurement config on the first round (or after the job's extent
  /// changed), the model's pick afterwards. Never returns kAuto. Also
  /// begins the round's sample collection.
  SchedOptions begin_round(const SchedOptions& user);

  /// Records one executed run (called by run_chunks' instrumented on_chunk
  /// wrapper; thread-safe — streamed runs record from pool workers).
  void record_run(index_t atom_lo, index_t grain, index_t units,
                  double seconds);

  /// Collective round finish: allgathers this rank's samples and counter
  /// delta, refits the calibration, evaluates the candidate lattice, and
  /// installs the predicted-best configuration for the next round.
  /// `root_extent` is the job's outer extent on rank 0, -1 elsewhere;
  /// `root_cost_cv` is the domain's per-unit cost-variance hint
  /// (core::outer_cost_cv) on rank 0 — allgathered with the extent so every
  /// rank pins the same cv-aware resolve_grain the concrete policies use.
  void finish_round(net::Comm& comm, double wall_seconds,
                    const net::CommStats& delta, index_t root_extent,
                    double root_cost_cv = 0.0);

 private:
  TunerConfig cfg_{};
  int rounds_ = 0;
  index_t extent_ = -1;
  bool have_pick_ = false;
  SchedOptions user_{};  // the kAuto options begin_round saw (combine, grain)
  SchedOptions ran_{};   // the concrete options of the in-flight round
  SchedOptions pick_{};
  sim::Calibration cal_{};
  std::vector<TunedCandidate> cands_;
  double measured_ = 0.0;
  double predicted_ = 0.0;
  PickMode mode_ = PickMode::kModel;
  std::vector<ObservedConfig> obs_;     // min measured wall per ran config
  std::vector<TunedCandidate> audit_;   // configs still owed a real round

  std::mutex mu_;  // guards runs_ (streamed on_chunk records concurrently)
  std::vector<RunSample> runs_;
};

namespace detail {

/// Resolves the tuner for one run_chunks call: the caller-owned one when
/// SchedOptions::tuner is set, else the Comm-registry entry for tune_key
/// (created on first use).
inline AutoTuner& tuner_for(net::Comm& comm, const SchedOptions& opts) {
  if (opts.tuner != nullptr) return *opts.tuner;
  auto& slot = comm.sched_state();
  if (!slot) slot = std::make_shared<TunerRegistry>();
  auto* reg = static_cast<TunerRegistry*>(slot.get());
  // Fold the Comm's job identity (its tag-lease base; 0 outside the service
  // layer) into the registry key so two service jobs that happen to share a
  // Comm and a tune_key (e.g. both defaulted to 0) still get separate
  // tuners — one job's measurements must never steer another's picks. The
  // fold is a pure function of SPMD-uniform state, so all ranks agree.
  const std::uint64_t key =
      opts.tune_key ^ (comm.job_key() * 0x9E3779B97F4A7C15ull);
  std::lock_guard<std::mutex> lock(reg->mu);
  return reg->jobs[key];
}

}  // namespace detail

}  // namespace triolet::sched
