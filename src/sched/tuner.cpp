#include "sched/tuner.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/macros.hpp"

namespace triolet::sched {

namespace {

/// One rank's contribution to a round fit: its executed runs, its wall
/// time for the round, the job extent (root only; -1 elsewhere), and its
/// counter delta. Allgathered so every rank fits the identical dataset.
struct RoundSample {
  std::vector<RunSample> runs;
  double wall_seconds = 0.0;
  std::int64_t extent = -1;
  double domain_cv = 0.0;  // root's core::outer_cost_cv (valid with extent)
  net::CommStats delta{};
};

template <typename F>
void triolet_visit_fields(RoundSample& obj, F&& f) {
  auto& [runs, wall_seconds, extent, domain_cv, delta] = obj;
  f(runs, wall_seconds, extent, domain_cv, delta);
}

/// Re-aggregates measured per-run durations into per-atom durations at an
/// arbitrary candidate grain. Run seconds spread uniformly over the run's
/// units — exact when runs are single atoms (the measurement round), an
/// approximation that keeps macro skew when later rounds run coarser.
std::vector<double> atoms_from_runs(const std::vector<RunSample>& runs,
                                    index_t extent, index_t grain) {
  const index_t n = atom_count(extent, grain);
  std::vector<double> atoms(static_cast<std::size_t>(n), 0.0);
  for (const auto& r : runs) {
    if (r.units <= 0 || r.seconds <= 0.0) continue;
    const double per_unit = r.seconds / static_cast<double>(r.units);
    index_t u = r.unit_lo;
    index_t left = r.units;
    while (left > 0) {
      const index_t a = u / grain;
      if (a < 0 || a >= n) break;
      const index_t take = std::min(left, (a + 1) * grain - u);
      atoms[static_cast<std::size_t>(a)] += per_unit * static_cast<double>(take);
      u += take;
      left -= take;
    }
  }
  return atoms;
}

/// Collapses atom durations into the guided grant sequence for `ranks`
/// (mirrors the root's serve loop: runs of guided_run_atoms, decaying).
std::vector<double> guided_chunks(const std::vector<double>& atoms,
                                  int ranks) {
  std::vector<double> chunks;
  const index_t n = static_cast<index_t>(atoms.size());
  index_t next = 0;
  while (next < n) {
    const index_t remaining = n - next;
    const index_t k = std::min(remaining, guided_run_atoms(remaining, ranks));
    double s = 0.0;
    for (index_t i = next; i < next + k; ++i) {
      s += atoms[static_cast<std::size_t>(i)];
    }
    chunks.push_back(s);
    next += k;
  }
  return chunks;
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double d : v) s += d;
  return s / static_cast<double>(v.size());
}

/// Evaluates one candidate through the calibrated makespan models.
double predict(const std::vector<double>& atoms, const sim::Calibration& cal,
               int ranks, index_t extent, const TunedCandidate& c) {
  if (atoms.empty()) return 0.0;
  const double units_per_atom =
      static_cast<double>(extent) / static_cast<double>(atoms.size());
  const double atom_payload =
      static_cast<double>(kGrantHeaderBytes) +
      units_per_atom * cal.grant_bytes_per_item;
  const double mean_atom_seconds = mean_of(atoms);
  switch (c.policy) {
    case SchedulePolicy::kStatic: {
      // No protocol traffic; one pushed grant per rank. Charge one grant
      // delivery (latency + a rank-block payload) on the startup path —
      // the rest of the serialization overlaps the root's own block.
      const double block_bytes =
          static_cast<double>(extent) / static_cast<double>(ranks) *
          cal.grant_bytes_per_item;
      return sim::makespan_static_block(atoms, ranks) + cal.latency_seconds +
             block_bytes * cal.seconds_per_grant_byte;
    }
    case SchedulePolicy::kGuided: {
      const auto chunks = guided_chunks(atoms, ranks);
      const double run_atoms =
          static_cast<double>(atoms.size()) /
          static_cast<double>(std::max<std::size_t>(1, chunks.size()));
      const double oh = cal.overhead_for(run_atoms * atom_payload,
                                         mean_atom_seconds, c.streaming);
      return (c.prefetch || c.streaming)
                 ? sim::makespan_overlap(chunks, ranks, oh)
                 : sim::makespan_demand(chunks, ranks, oh);
    }
    case SchedulePolicy::kDynamic: {
      const double oh =
          cal.overhead_for(atom_payload, mean_atom_seconds, c.streaming);
      return (c.prefetch || c.streaming)
                 ? sim::makespan_overlap(atoms, ranks, oh)
                 : sim::makespan_demand(atoms, ranks, oh);
    }
    case SchedulePolicy::kAuto: break;  // never evaluated
  }
  TRIOLET_CHECK(false, "kAuto is not a concrete candidate");
  return 0.0;
}

}  // namespace

SchedOptions AutoTuner::begin_round(const SchedOptions& user) {
  TRIOLET_CHECK(user.policy == SchedulePolicy::kAuto,
                "AutoTuner::begin_round expects kAuto options");
  user_ = user;
  SchedOptions out = user;
  out.tuner = nullptr;  // the returned options are concrete, not re-tuned
  if (!have_pick_) {
    // Measurement round: one atom per grant at full duration resolution;
    // prefetch and streaming off so the request->grant wait measures the
    // whole unhidden control round trip.
    out.policy = SchedulePolicy::kDynamic;
    out.prefetch = false;
    out.streaming = false;
  } else {
    out.policy = pick_.policy;
    out.grain = pick_.grain;
    out.prefetch = pick_.prefetch;
    out.streaming = pick_.streaming;
  }
  ran_ = out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs_.clear();
  }
  return out;
}

void AutoTuner::record_run(index_t atom_lo, index_t grain, index_t units,
                           double seconds) {
  if (units <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  runs_.push_back(RunSample{atom_lo * grain, units, seconds});
}

void AutoTuner::finish_round(net::Comm& comm, double wall_seconds,
                             const net::CommStats& delta, index_t root_extent,
                             double root_cost_cv) {
  // Committed: the audit verdict stands and there is no decision left to
  // make, so the round finishes without the allgather or the refit — the
  // steady state pays none of the tuner's collective overhead. mode_ moves
  // in lockstep on every rank (it is a pure function of allgathered data),
  // so skipping the collective here is globally consistent.
  if (mode_ == PickMode::kCommitted) {
    rounds_ += 1;
    measured_ = wall_seconds;  // rank-local; informational only
    return;
  }
  RoundSample mine;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mine.runs = std::move(runs_);
    runs_.clear();
  }
  mine.wall_seconds = wall_seconds;
  mine.extent = root_extent;
  mine.domain_cv = root_cost_cv;
  mine.delta = delta;

  // Every rank receives the identical sample set (allgather is indexed by
  // rank), so the fit and the pick below are bit-identical cluster-wide
  // without any broadcast.
  auto all = comm.allgather(mine);

  net::CommStats sum{};
  double max_wall = 0.0;
  index_t extent = -1;
  double domain_cv = 0.0;
  std::vector<RunSample> runs;
  for (auto& s : all) {
    sum += s.delta;
    max_wall = std::max(max_wall, s.wall_seconds);
    if (s.extent >= 0) {
      extent = s.extent;
      domain_cv = s.domain_cv;
    }
    runs.insert(runs.end(), s.runs.begin(), s.runs.end());
  }
  rounds_ += 1;
  measured_ = max_wall;
  if (extent <= 0 || runs.empty()) return;  // empty job: nothing to fit
  if (extent_ >= 0 && extent != extent_) {
    // A different job shape under the same key: every observation and any
    // audit verdict is stale. Back to trusting the model.
    obs_.clear();
    audit_.clear();
    mode_ = PickMode::kModel;
  }
  extent_ = extent;
  // Remember what this round's configuration actually cost. The min over a
  // config's rounds is its steady-state figure: a first round after an
  // atom-boundary change pays one-time cold slice shipping that later
  // rounds (and the committed steady state) never see again. The
  // measurement round is excluded — it deliberately runs with every
  // overlap disabled, so its wall is an instrument reading, not a
  // configuration any steady state should commit to.
  if (have_pick_) {
    const TunedCandidate ran{ran_.policy, ran_.grain, ran_.prefetch,
                             ran_.streaming, 0.0};
    ObservedConfig* hit = nullptr;
    for (auto& o : obs_) {
      if (o.cfg.same_config(ran)) hit = &o;
    }
    if (hit == nullptr) {
      obs_.push_back(ObservedConfig{ran, max_wall});
    } else {
      hit->wall_seconds = std::min(hit->wall_seconds, max_wall);
    }
  }
  // Runs of one round are disjoint, so unit_lo orders them totally — the
  // merged profile is deterministic regardless of arrival interleaving.
  std::sort(runs.begin(), runs.end(),
            [](const RunSample& a, const RunSample& b) {
              return a.unit_lo < b.unit_lo;
            });

  sim::Calibration c = sim::calibrate_from(sum, sum.sched, sum.pool);
  // The round-trip decomposition is only trustworthy when this round left
  // the wait exposed: a demand policy with prefetch and streaming off
  // (normally just the measurement round). Otherwise idle_seconds measures
  // the *hidden* remainder — carry the last clean figures forward.
  const bool clean_rt = ran_.policy != SchedulePolicy::kStatic &&
                        !ran_.prefetch && !ran_.streaming;
  if (!clean_rt || c.round_trip_seconds <= 0.0) {
    c.round_trip_seconds = cal_.round_trip_seconds;
    c.service_delay_seconds = cal_.service_delay_seconds;
    c.latency_seconds = cal_.latency_seconds;
  }
  if (c.grant_bytes_per_item <= 0.0) {
    c.grant_bytes_per_item = cal_.grant_bytes_per_item;
  }
  if (!c.valid()) return;  // keep the previous pick and calibration
  cal_ = c;

  const int p = comm.size();

  // Per-atom skew of the measured profile at the base grain: the scalar the
  // makespan models can't see from counters alone. Recorded on the
  // calibration (inspection, benches) and used below to widen the grain
  // exploration — skewed segments reward finer atoms that demand policies
  // can rebalance, exactly the regime where static's contiguous blocks lose.
  const index_t base_grain = resolve_grain(extent, p, user_.grain, domain_cv);
  cal_.cost_cv = sim::cost_variation(atoms_from_runs(runs, extent, base_grain));

  // Grain ladder. kOrdered consumers (and callers that pinned a grain) get
  // exactly the policy-independent resolve_grain value, preserving the
  // bitwise-identity invariant; kTree consumers explore octaves around it,
  // one octave further toward fine grains when the measured skew is material.
  std::vector<index_t> ladder;
  if (user_.combine == CombineMode::kOrdered || user_.grain > 0) {
    ladder.push_back(base_grain);
  } else {
    const index_t g0 = resolve_grain(extent, p, 0, domain_cv);
    const int extra_fine = cal_.cost_cv > 1.0 ? 1 : 0;
    for (int o = -(cfg_.grain_octaves + extra_fine); o <= cfg_.grain_octaves;
         ++o) {
      index_t g = o < 0 ? std::max<index_t>(1, g0 >> (-o)) : g0 << o;
      ladder.push_back(std::clamp<index_t>(g, 1, std::max<index_t>(1, extent)));
    }
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  }

  // Candidate lattice: policy x grain x {prefetch, streaming}. Lattice
  // order doubles as the deterministic tie-break — earlier entries win
  // exact ties, so the simplest adequate configuration is preferred
  // (static before demand policies, plain prefetch before streaming).
  struct Variant {
    bool prefetch;
    bool streaming;
  };
  std::vector<Variant> variants{{true, false}};
  if (cfg_.explore_prefetch) variants.push_back({false, false});
  if (cfg_.explore_streaming) variants.push_back({true, true});

  cands_.clear();
  std::map<index_t, std::vector<double>> atoms_by_grain;
  auto atoms_for = [&](index_t g) -> const std::vector<double>& {
    auto it = atoms_by_grain.find(g);
    if (it == atoms_by_grain.end()) {
      it = atoms_by_grain.emplace(g, atoms_from_runs(runs, extent, g)).first;
    }
    return it->second;
  };
  for (SchedulePolicy policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kGuided,
        SchedulePolicy::kDynamic}) {
    for (index_t g : ladder) {
      if (policy == SchedulePolicy::kStatic) {
        TunedCandidate c0{policy, g, true, false, 0.0};
        c0.predicted_seconds = predict(atoms_for(g), cal_, p, extent, c0);
        cands_.push_back(c0);
        continue;
      }
      for (const Variant& v : variants) {
        TunedCandidate c0{policy, g, v.prefetch, v.streaming, 0.0};
        c0.predicted_seconds = predict(atoms_for(g), cal_, p, extent, c0);
        cands_.push_back(c0);
      }
    }
  }

  // Measured feedback. The model prices warm steady-state rounds; a pick
  // whose real wall blows past its prediction by the mistrust factor hit a
  // cost the counters can't expose (cold re-shipping after an atom-boundary
  // change, node oversubscription). Arguing with the clock is pointless:
  // audit each policy's best-predicted variant with one real round, then
  // commit to the fastest configuration actually observed.
  if (mode_ == PickMode::kModel && have_pick_ && predicted_ > 0.0 &&
      max_wall > cfg_.model_mistrust * predicted_) {
    mode_ = PickMode::kAudit;
    audit_.clear();
    // One round per policy, each at its default serving variant (prefetch
    // on, streaming off) and best-predicted grain: the audit ranks
    // *policies* by the clock; the model keeps the variant refinements it
    // is actually good at. Bounded: at most three extra rounds.
    for (SchedulePolicy policy :
         {SchedulePolicy::kStatic, SchedulePolicy::kGuided,
          SchedulePolicy::kDynamic}) {
      const TunedCandidate* bp = nullptr;
      for (const auto& cand : cands_) {
        if (cand.policy != policy || !cand.prefetch || cand.streaming) {
          continue;
        }
        if (bp == nullptr || cand.predicted_seconds < bp->predicted_seconds) {
          bp = &cand;
        }
      }
      if (bp == nullptr) continue;
      bool seen = false;
      for (const auto& o : obs_) seen = seen || o.cfg.same_config(*bp);
      if (!seen) audit_.push_back(*bp);
    }
  }

  TunedCandidate chosen;
  if (mode_ == PickMode::kAudit && audit_.empty()) {
    mode_ = PickMode::kCommitted;
  }
  if (mode_ == PickMode::kAudit) {
    chosen = audit_.front();
    audit_.erase(audit_.begin());
  } else if (mode_ == PickMode::kCommitted) {
    const ObservedConfig* bo = nullptr;
    for (const auto& o : obs_) {
      if (bo == nullptr || o.wall_seconds < bo->wall_seconds) bo = &o;
    }
    TRIOLET_CHECK(bo != nullptr, "committed with no observations");
    chosen = bo->cfg;
  } else {
    const TunedCandidate* best = nullptr;
    for (const auto& cand : cands_) {
      if (best == nullptr ||
          cand.predicted_seconds < best->predicted_seconds) {
        best = &cand;
      }
    }
    TRIOLET_CHECK(best != nullptr, "candidate lattice cannot be empty");
    chosen = *best;
  }
  pick_ = user_;
  pick_.tuner = nullptr;
  pick_.policy = chosen.policy;
  pick_.grain = chosen.grain;
  pick_.prefetch = chosen.prefetch;
  pick_.streaming = chosen.streaming;
  // What the model says the chosen configuration should cost — the figure
  // next round's mistrust check (and the benches' predicted column) reads.
  predicted_ = chosen.predicted_seconds;
  for (const auto& cand : cands_) {
    if (cand.same_config(chosen)) predicted_ = cand.predicted_seconds;
  }
  have_pick_ = true;
}

}  // namespace triolet::sched
