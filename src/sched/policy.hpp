#pragma once

// Work-distribution policies for the distributed skeletons.
//
// The dist layer's original (and still default) behavior is one static
// split_blocks at the root: perfect for uniform loops, pathological for the
// skewed iteration spaces the hybrid iterator exists to keep partitionable
// (filter / concat_map, paper §3.2). SchedulePolicy makes the mapping of
// chunks to nodes a knob, decoupled from what is computed — the
// data-vs-work-distribution separation argued by Mapple and Distributed
// Ranges (PAPERS.md):
//
//   kStatic   one contiguous block per rank, assigned up front (no protocol
//             traffic; the classic split_blocks schedule)
//   kGuided   guided self-scheduling: the root grants runs of chunks whose
//             size decays geometrically with the remaining work, down to a
//             floor of one atom — big grants amortize protocol latency
//             early, small grants balance the tail
//   kDynamic  one atom per grant: maximum balance, maximum protocol traffic
//
// All three policies subdivide the domain into the *same* fixed sequence of
// atomic chunks ("atoms": `grain` outer-axis units each); policies only
// decide how many consecutive atoms a grant carries and who runs them. That
// invariant is what lets CombineMode::kOrdered produce bitwise identical
// results under every policy: per-atom partials are combined in atom order,
// which is independent of the rank that computed them.

#include <algorithm>
#include <cstdint>

#include "core/domains.hpp"
#include "support/macros.hpp"

namespace triolet::sched {

using index_t = std::int64_t;

class AutoTuner;

/// kAuto is the model-driven mode (src/sched/tuner.hpp): the first round of
/// a scheduled skeleton runs an instrumented measurement configuration, the
/// measurements calibrate the sim:: cost model, and every later round runs
/// the candidate configuration the model predicts fastest — re-picked each
/// round as measurements refresh. kAuto never reaches the protocol itself:
/// run_chunks resolves it to one of the three concrete policies per round.
enum class SchedulePolicy { kStatic, kGuided, kDynamic, kAuto };

/// How per-atom partial results are combined into the final answer.
///
///   kTree     each rank folds its grants locally, partials combine along
///             the binomial reduce tree. Fastest; exact for associative +
///             commutative ops (integer sums, histograms), but the
///             floating-point parenthesization depends on which rank ran
///             which chunk.
///   kOrdered  per-atom partials are gathered and left-folded in atom
///             order at the root: bitwise reproducible run-to-run AND
///             across policies (the demand-driven analogue of
///             Comm::reduce_ordered).
enum class CombineMode { kTree, kOrdered };

/// Hook the root's grant-service loop calls immediately before issuing
/// work — one call per grant (and per root self-issued run) with the number
/// of outer-domain items the grant covers. The service layer (src/svc/)
/// points this at a fair-share arbiter so concurrent jobs' grant streams
/// interleave by weighted deficit round-robin instead of arrival order.
/// before_grant may block (that is the throttle); it runs on the root's
/// rank thread only, and never changes which atoms exist or how they are
/// combined — kOrdered results are identical with or without a gate.
class GrantGate {
 public:
  virtual ~GrantGate() = default;
  virtual void before_grant(index_t items) = 0;
};

struct SchedOptions {
  SchedulePolicy policy = SchedulePolicy::kStatic;
  CombineMode combine = CombineMode::kTree;
  /// Atom size in outer-domain units (Seq indices / Dim2 rows / Dim3
  /// slabs). 0 = auto: extent / (8 * ranks), floored at one unit.
  index_t grain = 0;
  /// Grant double-buffering (kGuided/kDynamic only): a worker posts the
  /// request for its next run *before* executing the current one, so the
  /// root's service round trip overlaps the run's compute instead of
  /// preceding it. Never changes which atoms exist or how kOrdered combines
  /// them — results stay bitwise identical with it on or off.
  bool prefetch = true;
  /// Streamed grant execution (kGuided/kDynamic; kStatic has one grant and
  /// ignores it): instead of running each grant inline on the rank thread,
  /// hand it to the rank's thread pool (core::StreamingConsumer) and go
  /// straight back to receiving — the node computes on chunk k while chunk
  /// k+1 is in flight, and the root keeps serving requests while its own
  /// atoms execute. SchedStats::streamed_grants / overlap_seconds record
  /// how much pipeline this bought. Per-atom decomposition and compute are
  /// unchanged (same pool, same grain), so kOrdered results stay bitwise
  /// identical with streaming on or off.
  bool streaming = false;
  /// Slice residency for grant payloads: when the iterator draws on a
  /// resident source (dist::DistArray / dist::DistContext) and the slice
  /// cache is enabled (TRIOLET_SLICE_CACHE_BYTES > 0), grants whose task
  /// slice the worker already holds carry a checksum token instead of the
  /// payload. Purely a transport optimization: the decoded task bytes are
  /// identical, so kOrdered results stay bitwise identical on or off.
  bool residency = true;
  /// Tuner state for SchedulePolicy::kAuto. When null, run_chunks keeps a
  /// registry of AutoTuners on the Comm keyed by `tune_key`, so iterative
  /// jobs accumulate measurements across rounds with zero per-workload
  /// flags. Point this at a caller-owned (rank-local) AutoTuner to manage
  /// the state explicitly. Ignored for the concrete policies.
  AutoTuner* tuner = nullptr;
  /// Registry key for the implicit per-Comm tuner (see `tuner`). Scheduled
  /// skeletons that share a key share one tuner — e.g. the several
  /// reductions of one iterative job over the same resident array
  /// (dist::DistArray::tune_key()). 0 = the Comm's default shared job.
  std::uint64_t tune_key = 0;
  /// Fair-share gate for the root's grant issue (null = no gating, the
  /// single-job default). Callers inside the service layer get this set by
  /// svc::JobContext::sched_options(); the pointee must outlive the call.
  GrantGate* gate = nullptr;
};

inline const char* to_string(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kStatic: return "static";
    case SchedulePolicy::kGuided: return "guided";
    case SchedulePolicy::kDynamic: return "dynamic";
    case SchedulePolicy::kAuto: return "auto";
  }
  return "?";
}

/// Resolves the atom grain for a domain of `extent` outer units on `ranks`
/// nodes. Must depend only on (extent, ranks, requested, cost_cv) — never
/// on the policy — so all policies chunk identically (the kOrdered
/// invariant). `cost_cv` is the domain's per-unit cost-variance hint
/// (core::outer_cost_cv): 0 for dense domains, which keeps the default —
/// the shared two-level heuristic core::auto_grain_for, ~8 atoms per rank —
/// bit-for-bit unchanged; segmented domains report their value-weight skew
/// and get proportionally finer atoms. The hint is itself a pure function
/// of the domain, so it preserves the policy- and rank-independence of the
/// decomposition.
inline index_t resolve_grain(index_t extent, int ranks, index_t requested,
                             double cost_cv = 0.0) {
  TRIOLET_CHECK(requested >= 0, "grain must be non-negative");
  if (requested > 0) return requested;
  return core::auto_grain_for(extent, ranks, cost_cv);
}

/// Wire size of a Grant minus its task payload (done + three index_t
/// fields) — the part of a grant that is control, not data. Lives here
/// (not scheduler.hpp) so the tuner's cost model can price grant headers
/// without pulling in the protocol templates.
inline constexpr std::int64_t kGrantHeaderBytes = 1 + 3 * 8;

/// Number of atoms a domain of `extent` outer units splits into.
inline index_t atom_count(index_t extent, index_t grain) {
  TRIOLET_ASSERT(grain >= 1);
  return (extent + grain - 1) / grain;
}

/// Size (in atoms) of the next guided grant: ceil-free geometric decay
/// remaining / (2 * ranks), floored at one atom. With R atoms left the
/// grant sequence shrinks by a factor of (1 - 1/(2P)) per grant, the
/// classic guided self-scheduling schedule.
inline index_t guided_run_atoms(index_t remaining_atoms, int ranks) {
  return std::max<index_t>(1, remaining_atoms / (2 * static_cast<index_t>(ranks)));
}

}  // namespace triolet::sched
