#pragma once

// Umbrella header: the Triolet skeleton library public API.
//
// Typical use mirrors the paper's examples:
//
//   // dot product (paper §2)
//   auto xs = core::from_array(x);
//   auto ys = core::from_array(y);
//   double d = core::sum(core::map(core::par(core::zip(xs, ys)),
//                                  [](auto p) { return p.first * p.second; }));
//
//   // sum of positives (paper §3.2)
//   auto pos = core::filter(core::from_array(v), [](float x) { return x > 0; });
//   float s = core::sum(core::localpar(pos));
//
// Distributed (two-level) execution of `par` iterators lives in
// dist/skeletons.hpp and runs under a net::Cluster.

#include "core/consume.hpp"
#include "core/domains.hpp"
#include "core/encodings.hpp"
#include "core/fold.hpp"
#include "core/hints.hpp"
#include "core/indexer.hpp"
#include "core/iter.hpp"
#include "core/skeletons.hpp"
#include "core/sources.hpp"
#include "core/step.hpp"
