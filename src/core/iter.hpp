#pragma once

// The hybrid iterator (paper §3.2, §3.3): Triolet's Iter GADT rendered as
// four C++ class templates.
//
//   IdxFlatIter   indexer of values       — random access, parallelizable,
//                                           partitionable, any domain
//   StepFlatIter  stepper of values       — sequential, fuses irregularity
//   IdxNestIter   indexer of inner Iters  — random-access *outer* loop over
//                                           variable-length inner loops: the
//                                           shape filter/concat_map produce,
//                                           which keeps irregular loops
//                                           parallelizable
//   StepNestIter  stepper of inner Iters  — fully irregular nest
//
// Skeleton functions (core/skeletons.hpp) dispatch on the constructor via
// overloading — the exact structure of the paper's Figure 2, where each
// function is "defined by four equations, one for handling each
// constructor". The C++ optimizer statically resolves and inlines each
// equation, which is what fuses composed skeletons into single loop nests
// (the paper's constructor-aware inlining).
//
// Every iterator carries a ParHint set by par()/localpar() (§3.4).

#include <type_traits>

#include "core/hints.hpp"
#include "core/indexer.hpp"
#include "core/step.hpp"

namespace triolet::core {

enum class IterKind { kIdxFlat, kStepFlat, kIdxNest, kStepNest };

// -- the four constructors ------------------------------------------------------

template <typename D, typename Src, typename Ext>
struct IdxFlatIter {
  static constexpr IterKind kKind = IterKind::kIdxFlat;
  using Dom = D;
  using Ix = Indexer<D, Src, Ext>;
  using value_type = typename Ix::value_type;

  Ix ix{};
  ParHint hint = ParHint::kSeq;

  D domain() const { return ix.dom; }
  index_t size() const { return ix.size(); }
  value_type at(IndexOf<D> i) const { return ix.at(i); }
  value_type at_ordinal(index_t ord) const { return ix.at_ordinal(ord); }

  IdxFlatIter slice(D sub) const { return IdxFlatIter{ix.slice(sub), hint}; }
};

template <typename D, typename Src, typename Ext>
struct IdxNestIter {
  static constexpr IterKind kKind = IterKind::kIdxNest;
  using Dom = D;
  using Ix = Indexer<D, Src, Ext>;
  using InnerIter = typename Ix::value_type;
  using value_type = typename InnerIter::value_type;

  Ix ix{};
  ParHint hint = ParHint::kSeq;

  D domain() const { return ix.dom; }
  index_t size() const { return ix.size(); }  // number of *outer* tasks
  InnerIter inner_at(IndexOf<D> i) const { return ix.at(i); }
  InnerIter inner_at_ordinal(index_t ord) const { return ix.at_ordinal(ord); }

  IdxNestIter slice(D sub) const { return IdxNestIter{ix.slice(sub), hint}; }
};

template <typename SF>
struct StepFlatIter {
  static constexpr IterKind kKind = IterKind::kStepFlat;
  using value_type = StepValue<SF>;

  SF sf{};
  ParHint hint = ParHint::kSeq;
};

template <typename SF>
struct StepNestIter {
  static constexpr IterKind kKind = IterKind::kStepNest;
  using InnerIter = StepValue<SF>;
  using value_type = typename InnerIter::value_type;

  SF sf{};
  ParHint hint = ParHint::kSeq;
};

// -- deduction helpers ------------------------------------------------------------

template <typename D, typename Src, typename Ext>
auto idx_flat(D dom, Src src, Ext ext, ParHint hint = ParHint::kSeq) {
  return IdxFlatIter<D, Src, Ext>{make_indexer(dom, std::move(src), ext), hint};
}

template <typename D, typename Src, typename Ext>
auto idx_nest(D dom, Src src, Ext ext, ParHint hint = ParHint::kSeq) {
  return IdxNestIter<D, Src, Ext>{make_indexer(dom, std::move(src), ext), hint};
}

template <typename SF>
auto step_flat(SF sf, ParHint hint = ParHint::kSeq) {
  return StepFlatIter<SF>{std::move(sf), hint};
}

template <typename SF>
auto step_nest(SF sf, ParHint hint = ParHint::kSeq) {
  return StepNestIter<SF>{std::move(sf), hint};
}

// -- traits -----------------------------------------------------------------------

template <typename T, typename = void>
struct is_iter : std::false_type {};
template <typename T>
struct is_iter<T, std::void_t<decltype(T::kKind)>> : std::true_type {};
template <typename T>
inline constexpr bool is_iter_v = is_iter<std::remove_cvref_t<T>>::value;

template <typename It>
inline constexpr bool is_indexed_outer_v =
    It::kKind == IterKind::kIdxFlat || It::kKind == IterKind::kIdxNest;

template <typename It>
inline constexpr bool is_nested_v =
    It::kKind == IterKind::kIdxNest || It::kKind == IterKind::kStepNest;

/// True when the iterator's source graph contains a resident source (see
/// source_uses_residency): senders switch to the cache-aware scatter path
/// only for these, so non-resident iterators compile to exactly the old
/// send code. Step-function iterators have no Indexer and are never
/// resident.
template <typename It, typename = void>
struct iter_uses_residency : std::false_type {};
template <typename It>
struct iter_uses_residency<It, std::void_t<typename It::Ix::Source>>
    : source_uses_residency<typename It::Ix::Source> {};
template <typename It>
inline constexpr bool iter_uses_residency_v =
    iter_uses_residency<std::remove_cvref_t<It>>::value;

/// True when the iterator is a *fused view*: its source graph composes two
/// or more resident leaves (zip-of-resident, map over zip, segmented
/// offsets+values, ...). Senders charge the token substitutions of such
/// payloads to net::ViewStats — the bytes a materialized intermediate
/// would have shipped.
template <typename It, typename = void>
struct iter_is_fused_view : std::false_type {};
template <typename It>
struct iter_is_fused_view<It, std::void_t<typename It::Ix::Source>>
    : std::bool_constant<(resident_leaf_count<typename It::Ix::Source>::value >=
                          2)> {};
template <typename It>
inline constexpr bool iter_is_fused_view_v =
    iter_is_fused_view<std::remove_cvref_t<It>>::value;

// -- parallelism hints (par / localpar, §3.4) -------------------------------------

template <typename It>
It with_hint(It it, ParHint h) {
  static_assert(is_iter_v<It>);
  it.hint = h;
  return it;
}

/// Requests distributed + threaded execution of the loop this iterator feeds.
template <typename It>
It par(It it) {
  return with_hint(std::move(it), ParHint::kDist);
}

/// Requests threaded execution on a single node (shared memory only).
template <typename It>
It localpar(It it) {
  return with_hint(std::move(it), ParHint::kLocal);
}

/// Forces sequential execution.
template <typename It>
It unpar(It it) {
  return with_hint(std::move(it), ParHint::kSeq);
}

// -- toStep: convert any iterator to a stepper factory (Figure 2) ------------------

/// Calls .at(i) on an owned copy of an indexer; the lookup function of the
/// idxToStep conversion.
template <typename Ix>
struct IxAtFn {
  Ix ix;
  auto operator()(IndexOf<typename Ix::Dom> i) const { return ix.at(i); }
};

struct ToStepFn;  // applies to_step to inner iterators (declared below)

template <typename D, typename Src, typename Ext>
auto to_step(const IdxFlatIter<D, Src, Ext>& it) {
  using Ix = typename IdxFlatIter<D, Src, Ext>::Ix;
  return FromIdxStepF<D, IxAtFn<Ix>>{it.ix.dom, IxAtFn<Ix>{it.ix}};
}

template <typename SF>
SF to_step(const StepFlatIter<SF>& it) {
  return it.sf;
}

template <typename D, typename Src, typename Ext>
auto to_step(const IdxNestIter<D, Src, Ext>& it);

template <typename SF>
auto to_step(const StepNestIter<SF>& it);

struct ToStepFn {
  template <typename InnerIt>
  auto operator()(const InnerIt& it) const {
    return to_step(it);
  }
};

template <typename D, typename Src, typename Ext>
auto to_step(const IdxNestIter<D, Src, Ext>& it) {
  using Ix = typename IdxNestIter<D, Src, Ext>::Ix;
  auto outer = FromIdxStepF<D, IxAtFn<Ix>>{it.ix.dom, IxAtFn<Ix>{it.ix}};
  return concat_map_step(std::move(outer), ToStepFn{});
}

template <typename SF>
auto to_step(const StepNestIter<SF>& it) {
  return concat_map_step(it.sf, ToStepFn{});
}

// -- sequential traversal -----------------------------------------------------------

/// Applies `f` to every element in canonical order (all four constructors).
template <typename D, typename Src, typename Ext, typename F>
void visit(const IdxFlatIter<D, Src, Ext>& it, F&& f) {
  it.ix.dom.for_each([&](IndexOf<D> i) { f(it.ix.at(i)); });
}

template <typename SF, typename F>
void visit(const StepFlatIter<SF>& it, F&& f) {
  auto s = it.sf.make();
  drain(s, f);
}

template <typename D, typename Src, typename Ext, typename F>
void visit(const IdxNestIter<D, Src, Ext>& it, F&& f) {
  it.ix.dom.for_each([&](IndexOf<D> i) { visit(it.ix.at(i), f); });
}

template <typename SF, typename F>
void visit(const StepNestIter<SF>& it, F&& f) {
  auto s = it.sf.make();
  drain(s, [&](const auto& inner) { visit(inner, f); });
}

/// Early-exit traversal: applies `f` (returning bool; false = stop) until
/// exhaustion or refusal. Returns false iff some element stopped the walk.
/// Sequential by nature — used by the short-circuiting consumers.
template <typename D, typename Src, typename Ext, typename F>
bool visit_while(const IdxFlatIter<D, Src, Ext>& it, F&& f) {
  const D d = it.ix.dom;
  for (index_t ord = 0; ord < d.size(); ++ord) {
    if (!f(it.ix.at_ordinal(ord))) return false;
  }
  return true;
}

template <typename SF, typename F>
bool visit_while(const StepFlatIter<SF>& it, F&& f) {
  auto s = it.sf.make();
  bool keep_going = true;
  while (keep_going &&
         s.next([&](auto&& v) { keep_going = f(std::forward<decltype(v)>(v)); })) {
  }
  return keep_going;
}

template <typename D, typename Src, typename Ext, typename F>
bool visit_while(const IdxNestIter<D, Src, Ext>& it, F&& f) {
  const D d = it.ix.dom;
  for (index_t ord = 0; ord < d.size(); ++ord) {
    if (!visit_while(it.ix.at_ordinal(ord), f)) return false;
  }
  return true;
}

template <typename SF, typename F>
bool visit_while(const StepNestIter<SF>& it, F&& f) {
  auto s = it.sf.make();
  bool keep_going = true;
  while (keep_going && s.next([&](const auto& inner) {
    keep_going = visit_while(inner, f);
  })) {
  }
  return keep_going;
}

/// Applies `f` to every element generated by outer-ordinal positions
/// [lo, hi). Only indexed-outer iterators support this — it is the unit of
/// work distribution: each parallel task visits a contiguous ordinal range
/// ("get each intermediate result generated from the nth input", §2).
template <typename D, typename Src, typename Ext, typename F>
void visit_ordinals(const IdxFlatIter<D, Src, Ext>& it, index_t lo, index_t hi,
                    F&& f) {
  // Nested-loop ordinal walk: no per-element index reconstruction (§3.3).
  for_ordinal_range(it.ix.dom, lo, hi,
                    [&](IndexOf<D> i) { f(it.ix.at(i)); });
}

template <typename D, typename Src, typename Ext, typename F>
void visit_ordinals(const IdxNestIter<D, Src, Ext>& it, index_t lo, index_t hi,
                    F&& f) {
  for_ordinal_range(it.ix.dom, lo, hi,
                    [&](IndexOf<D> i) { visit(it.ix.at(i), f); });
}

}  // namespace triolet::core

// -- serialization of distributable iterators ----------------------------------------

namespace triolet::serial {

template <typename D, typename Src, typename Ext>
struct use_custom_codec<triolet::core::IdxFlatIter<D, Src, Ext>>
    : std::true_type {};
template <typename D, typename Src, typename Ext>
struct use_custom_codec<triolet::core::IdxNestIter<D, Src, Ext>>
    : std::true_type {};

template <typename D, typename Src, typename Ext>
struct Codec<triolet::core::IdxFlatIter<D, Src, Ext>> {
  using It = triolet::core::IdxFlatIter<D, Src, Ext>;
  static void write(ByteWriter& w, const It& it) {
    serial::write(w, it.ix);
    w.write_pod(it.hint);
  }
  static void read(ByteReader& r, It& it) {
    serial::read(r, it.ix);
    it.hint = r.read_pod<triolet::core::ParHint>();
  }
};

template <typename D, typename Src, typename Ext>
struct Codec<triolet::core::IdxNestIter<D, Src, Ext>> {
  using It = triolet::core::IdxNestIter<D, Src, Ext>;
  static void write(ByteWriter& w, const It& it) {
    serial::write(w, it.ix);
    w.write_pod(it.hint);
  }
  static void read(ByteReader& r, It& it) {
    serial::read(r, it.ix);
    it.hint = r.read_pod<triolet::core::ParHint>();
  }
};

}  // namespace triolet::serial
