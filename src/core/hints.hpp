#pragma once

// Parallelism hints (paper §2, §3.4).
//
// Library code cannot judge whether a loop is worth parallelizing, so the
// user tags an iterator: `par` requests distributed + threaded execution,
// `localpar` requests threaded execution on one node, and the default is
// sequential. Skeletons that consume iterators inspect the hint and invoke
// the distributed, threaded, or sequential implementation.

namespace triolet::core {

enum class ParHint {
  kSeq,    // default: sequential loop
  kLocal,  // localpar: threads within one node (shared memory)
  kDist,   // par: distribute across nodes, threads within each node
};

}  // namespace triolet::core
