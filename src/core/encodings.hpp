#pragma once

// The per-encoding combinator layer (paper §3.1 and Figure 1).
//
// "Triolet's iterator library is layered on top of a library of fusible
// operations for manipulating each of these virtual data structures. We use
// conventional names for these library functions along with a subscript to
// indicate what encoding they are implemented for, e.g., mapIdx, mapStep,
// mapFold, and mapColl ... We use conversion functions named by their input
// and output encoding, such as idxToColl."
//
// This header is that layer for the fold and collector encodings (the
// stepper combinators live in core/step.hpp, the indexer ones in
// core/indexer.hpp as extractor composition). The hybrid Iter uses these
// internally; they are public because custom skeletons compose them
// directly, exactly as the paper's library does.
//
// Shapes:
//   FoldE<Impl>   pure accumulation: fold(w, z) applies w(elem, acc)
//   CollE<Impl>   imperative: collect(w) invokes a side-effecting worker
//
// Figure 1's feature matrix falls out of the types: folds/collectors fuse
// map, filter and nested traversal (each combinator wraps the traversal in
// more inlineable code) but expose no random access (no parallelism, no
// zip) — and only collectors permit mutation.

#include <utility>

#include "core/domains.hpp"
#include "core/indexer.hpp"
#include "core/step.hpp"

namespace triolet::core {

// -- encodings ----------------------------------------------------------------------

/// Fold encoding: Impl is a callable taking a per-element visitor; fold
/// threads an accumulator through it in canonical order.
template <typename Impl>
struct FoldE {
  Impl impl;

  template <typename W, typename A>
  A fold(W&& w, A acc) const {
    impl([&](auto&& v) {
      acc = w(std::forward<decltype(v)>(v), std::move(acc));
    });
    return acc;
  }

  /// Runs the traversal for its side effects on the visitor.
  template <typename F>
  void each(F&& f) const {
    impl(std::forward<F>(f));
  }
};

/// Collector encoding: like a fold, but the worker mutates external state
/// instead of threading an accumulator ("an imperative variant of a fold").
template <typename Impl>
struct CollE {
  Impl impl;

  template <typename W>
  void collect(W&& w) const {
    impl(std::forward<W>(w));
  }
};

template <typename Impl>
FoldE<Impl> make_fold(Impl impl) {
  return {std::move(impl)};
}

template <typename Impl>
CollE<Impl> make_collector(Impl impl) {
  return {std::move(impl)};
}

// -- fold combinators (mapFold, filterFold, concatMapFold) -----------------------------

template <typename Impl, typename G>
auto map_fold(FoldE<Impl> base, G g) {
  auto impl = [base = std::move(base), g](auto&& visit_elem) {
    base.each([&](auto&& v) { visit_elem(g(std::forward<decltype(v)>(v))); });
  };
  return make_fold(std::move(impl));
}

template <typename Impl, typename P>
auto filter_fold(FoldE<Impl> base, P p) {
  auto impl = [base = std::move(base), p](auto&& visit_elem) {
    base.each([&](auto&& v) {
      if (p(v)) visit_elem(std::forward<decltype(v)>(v));
    });
  };
  return make_fold(std::move(impl));
}

/// `g` maps each element to another fold whose elements are visited in turn
/// — nested traversals pose no optimization trouble for folds (§3.1: the
/// inner fold's loop lands inside the outer loop's body).
template <typename Impl, typename G>
auto concat_map_fold(FoldE<Impl> base, G g) {
  auto impl = [base = std::move(base), g](auto&& visit_elem) {
    base.each([&](auto&& v) {
      g(std::forward<decltype(v)>(v)).each(visit_elem);
    });
  };
  return make_fold(std::move(impl));
}

// -- collector combinators (mapColl, filterColl, concatMapColl) -------------------------

template <typename Impl, typename G>
auto map_coll(CollE<Impl> base, G g) {
  auto impl = [base = std::move(base), g](auto&& worker) {
    base.collect([&](auto&& v) { worker(g(std::forward<decltype(v)>(v))); });
  };
  return make_collector(std::move(impl));
}

template <typename Impl, typename P>
auto filter_coll(CollE<Impl> base, P p) {
  auto impl = [base = std::move(base), p](auto&& worker) {
    base.collect([&](auto&& v) {
      if (p(v)) worker(std::forward<decltype(v)>(v));
    });
  };
  return make_collector(std::move(impl));
}

template <typename Impl, typename G>
auto concat_map_coll(CollE<Impl> base, G g) {
  auto impl = [base = std::move(base), g](auto&& worker) {
    base.collect([&](auto&& v) {
      g(std::forward<decltype(v)>(v)).collect(worker);
    });
  };
  return make_collector(std::move(impl));
}

// -- conversions (the rows of Figure 1 ordered by control: Idx > Step > Fold/Coll) ------

/// idxToFold: loops over all points of the indexer's domain (paper §3.3:
/// "convert an indexer to a fold ... that loops over all points in the
/// domain").
template <typename D, typename Src, typename Ext>
auto idx_to_fold(Indexer<D, Src, Ext> ix) {
  auto impl = [ix = std::move(ix)](auto&& visit_elem) {
    ix.dom.for_each([&](IndexOf<D> i) { visit_elem(ix.at(i)); });
  };
  return make_fold(std::move(impl));
}

/// idxToColl (paper §3.1 gives this conversion explicitly; "this conversion
/// removes the potential for parallelization").
template <typename D, typename Src, typename Ext>
auto idx_to_coll(Indexer<D, Src, Ext> ix) {
  auto impl = [ix = std::move(ix)](auto&& worker) {
    ix.dom.for_each([&](IndexOf<D> i) { worker(ix.at(i)); });
  };
  return make_collector(std::move(impl));
}

/// stepToFold: drains a stepper factory.
template <typename SF>
auto step_to_fold(SF sf) {
  auto impl = [sf = std::move(sf)](auto&& visit_elem) {
    auto s = sf.make();
    drain(s, visit_elem);
  };
  return make_fold(std::move(impl));
}

/// stepToColl.
template <typename SF>
auto step_to_coll(SF sf) {
  auto impl = [sf = std::move(sf)](auto&& worker) {
    auto s = sf.make();
    drain(s, worker);
  };
  return make_collector(std::move(impl));
}

/// foldToColl: a fold downgrades to a collector (one step down the control
/// lattice); the reverse direction does not exist.
template <typename Impl>
auto fold_to_coll(FoldE<Impl> f) {
  auto impl = [f = std::move(f)](auto&& worker) { f.each(worker); };
  return make_collector(std::move(impl));
}

// -- terminal consumers ------------------------------------------------------------------

template <typename Impl>
auto sum_fold(const FoldE<Impl>& f) {
  double acc = 0;  // numeric folds accumulate in double
  f.each([&](auto&& v) { acc += static_cast<double>(v); });
  return acc;
}

template <typename Impl>
index_t count_fold(const FoldE<Impl>& f) {
  index_t n = 0;
  f.each([&](auto&&) { ++n; });
  return n;
}

}  // namespace triolet::core
