#include "core/domains.hpp"

#include <cmath>

namespace triolet::core {

std::vector<Dim2> split_blocks(Dim2 d, int k) {
  TRIOLET_CHECK(k >= 1, "need at least one chunk");
  // Pick the factorization ry * rx = k whose block aspect ratio is closest
  // to square (block height/width ratio nearest 1).
  int best_ry = 1;
  double best_badness = 1e300;
  for (int ry = 1; ry <= k; ++ry) {
    if (k % ry != 0) continue;
    int rx = k / ry;
    double bh = static_cast<double>(d.rows()) / ry;
    double bw = static_cast<double>(d.cols()) / rx;
    if (bh <= 0.0 || bw <= 0.0) continue;
    double badness = std::abs(std::log(bh / bw));
    if (badness < best_badness) {
      best_badness = badness;
      best_ry = ry;
    }
  }
  const int ry = best_ry;
  const int rx = k / best_ry;
  std::vector<Dim2> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int by = 0; by < ry; ++by) {
    index_t ya = d.y0 + d.rows() * by / ry;
    index_t yb = d.y0 + d.rows() * (by + 1) / ry;
    for (int bx = 0; bx < rx; ++bx) {
      index_t xa = d.x0 + d.cols() * bx / rx;
      index_t xb = d.x0 + d.cols() * (bx + 1) / rx;
      out.push_back(Dim2{ya, yb, xa, xb});
    }
  }
  return out;
}

std::vector<Dim3> split_blocks(Dim3 d, int k) {
  TRIOLET_CHECK(k >= 1, "need at least one chunk");
  const index_t nz = d.z1 - d.z0, ny = d.y1 - d.y0, nx = d.x1 - d.x0;
  // Search all factorizations kz * ky * kx = k for the most cubic blocks.
  int best[3] = {k, 1, 1};
  double best_badness = 1e300;
  for (int kz = 1; kz <= k; ++kz) {
    if (k % kz != 0) continue;
    int rest = k / kz;
    for (int ky = 1; ky <= rest; ++ky) {
      if (rest % ky != 0) continue;
      int kx = rest / ky;
      double bz = static_cast<double>(nz) / kz;
      double by = static_cast<double>(ny) / ky;
      double bx = static_cast<double>(nx) / kx;
      if (bz <= 0 || by <= 0 || bx <= 0) continue;
      double badness = std::abs(std::log(bz / by)) +
                       std::abs(std::log(by / bx)) +
                       std::abs(std::log(bz / bx));
      if (badness < best_badness) {
        best_badness = badness;
        best[0] = kz;
        best[1] = ky;
        best[2] = kx;
      }
    }
  }
  std::vector<Dim3> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int bz = 0; bz < best[0]; ++bz) {
    index_t za = d.z0 + nz * bz / best[0];
    index_t zb = d.z0 + nz * (bz + 1) / best[0];
    for (int by = 0; by < best[1]; ++by) {
      index_t ya = d.y0 + ny * by / best[1];
      index_t yb = d.y0 + ny * (by + 1) / best[1];
      for (int bx = 0; bx < best[2]; ++bx) {
        index_t xa = d.x0 + nx * bx / best[2];
        index_t xb = d.x0 + nx * (bx + 1) / best[2];
        out.push_back(Dim3{za, zb, ya, yb, xa, xb});
      }
    }
  }
  return out;
}

}  // namespace triolet::core
