#pragma once

// Skeleton functions over hybrid iterators — the C++ rendering of the
// paper's Figure 2. Each function is a set of overloads, one per iterator
// constructor; the output constructor depends only on the input constructor,
// so compositions of skeleton calls are resolved and fused statically.
//
// The key shape rules (verbatim from the paper):
//   * zip of two flat indexers stays an indexer (parallelism preserved);
//     anything else zips sequentially through steppers.
//   * filter / concat_map on a flat indexer produce an *indexer of steppers*
//     (IdxNest): they "add a level of loop nesting in order to preserve
//     potential outer-loop parallelism", isolating irregularity in inner
//     loops.
//   * map preserves the constructor.

#include "core/iter.hpp"

namespace triolet::core {

inline ParHint merge_hints(ParHint a, ParHint b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// -- iterator constructors ------------------------------------------------------

/// Consecutive integers [lo, hi) as a parallelizable indexer.
inline auto range(index_t lo, index_t hi) {
  return idx_flat(Seq{lo, hi}, Unit{}, IdentityExt{});
}

/// All indices of a domain in canonical order (Fig. 6's indices(domain(r))
/// and §3.3's arrayRange).
template <typename D>
auto indices(D dom) {
  return idx_flat(dom, Unit{}, IdentityExt{});
}

/// 2D index box [y0, y1) x [x0, x1) (paper §3.3, arrayRange).
inline auto array_range(index_t y1, index_t x1) {
  return indices(Dim2{0, y1, 0, x1});
}

/// Traversal of a 1D array. The array is held (by value) as the iterator's
/// data source and is sliced, not copied elementwise, on partitioning.
template <typename T>
auto from_array(Array1<T> xs) {
  Seq dom{xs.lo(), xs.hi()};
  return idx_flat(dom, std::move(xs), Array1Ext{});
}

/// Reinterprets a 2D array as a 1D iterator over its rows; each element is a
/// borrowed span of one row (paper §2, rows()).
template <typename T>
auto rows(Array2<T> a) {
  Seq dom{a.row_lo(), a.row_hi()};
  return idx_flat(dom, std::move(a), RowsExt{});
}

/// 2D outer product of two 1D indexed iterators: element (y, x) is the pair
/// (a[y], b[x]). Slicing a Dim2 block extracts exactly the rows of `a` and
/// `b` that the block touches (paper §2, outerproduct).
template <typename DA, typename SA, typename EA, typename DB, typename SB,
          typename EB>
auto outerproduct(const IdxFlatIter<DA, SA, EA>& a,
                  const IdxFlatIter<DB, SB, EB>& b) {
  static_assert(std::is_same_v<DA, Seq> && std::is_same_v<DB, Seq>,
                "outerproduct pairs two 1D task sets");
  Dim2 dom{a.ix.dom.lo, a.ix.dom.hi, b.ix.dom.lo, b.ix.dom.hi};
  return idx_flat(dom, OuterSource<SA, SB>{a.ix.src, b.ix.src},
                  OuterExt<EA, EB>{a.ix.ext.fn(), b.ix.ext.fn()},
                  merge_hints(a.hint, b.hint));
}

// -- map ---------------------------------------------------------------------------

template <typename G>
struct MapInnerFn {  // pushes map through one level of nesting
  G g;
  template <typename InnerIt>
  auto operator()(const InnerIt& it) const;
};

template <typename D, typename Src, typename Ext, typename G>
auto map(const IdxFlatIter<D, Src, Ext>& it, G g) {
  return idx_flat(it.ix.dom, it.ix.src, MapExt<Ext, G>{it.ix.ext.fn(), g},
                  it.hint);
}

template <typename SF, typename G>
auto map(const StepFlatIter<SF>& it, G g) {
  return step_flat(map_step(it.sf, g), it.hint);
}

template <typename D, typename Src, typename Ext, typename G>
auto map(const IdxNestIter<D, Src, Ext>& it, G g) {
  return idx_nest(it.ix.dom, it.ix.src,
                  MapExt<Ext, MapInnerFn<G>>{it.ix.ext.fn(), MapInnerFn<G>{g}},
                  it.hint);
}

template <typename SF, typename G>
auto map(const StepNestIter<SF>& it, G g) {
  return step_nest(map_step(it.sf, MapInnerFn<G>{g}), it.hint);
}

template <typename G>
template <typename InnerIt>
auto MapInnerFn<G>::operator()(const InnerIt& it) const {
  return map(it, g);
}

/// Extractor for map_with: pairs the sliced base source with a context
/// holder (Bcast ships the value whole; serial::GlobalRef ships a segment
/// id) and applies f(ctx, element).
template <typename Ext, typename F>
struct CtxExt {
  Ext base;
  F f;
  template <typename Src, typename Holder, typename I>
  auto operator()(const std::pair<Src, Holder>& s, I i) const {
    return f(ctx_get(s.second), base(s.first, i));
  }
};

/// Like map, but `f` additionally receives `ctx`, a value shipped whole to
/// every node (the analogue of capturing a large object in a Triolet
/// closure). Use this when each task needs *all* of some auxiliary data —
/// e.g. every mri-q pixel sums over the full k-space sample set.
template <typename D, typename Src, typename Ext, typename C, typename F>
auto map_with(const IdxFlatIter<D, Src, Ext>& it, C ctx, F f) {
  return idx_flat(it.ix.dom, std::pair(it.ix.src, Bcast<C>{std::move(ctx)}),
                  CtxExt<Ext, F>{it.ix.ext.fn(), f}, it.hint);
}

/// map_with over *published* global data: the context crosses the wire as a
/// segment identifier instead of a payload (§3.4). Use for large immutable
/// data every node already holds.
template <typename D, typename Src, typename Ext, typename C, typename F>
auto map_with(const IdxFlatIter<D, Src, Ext>& it, serial::GlobalRef<C> ctx,
              F f) {
  return idx_flat(it.ix.dom, std::pair(it.ix.src, std::move(ctx)),
                  CtxExt<Ext, F>{it.ix.ext.fn(), f}, it.hint);
}

/// concat_map with broadcast context: `f(ctx, element)` returns the inner
/// iterator for that element. Inner iterators may capture references into
/// `ctx`: they are built and consumed during traversal on whichever node
/// holds the (shipped) context, so the references never cross the wire.
template <typename D, typename Src, typename Ext, typename C, typename F>
auto concat_map_with(const IdxFlatIter<D, Src, Ext>& it, C ctx, F f) {
  return idx_nest(it.ix.dom, std::pair(it.ix.src, Bcast<C>{std::move(ctx)}),
                  CtxExt<Ext, F>{it.ix.ext.fn(), f}, it.hint);
}

/// concat_map_with over published global data (segment-id context).
template <typename D, typename Src, typename Ext, typename C, typename F>
auto concat_map_with(const IdxFlatIter<D, Src, Ext>& it,
                     serial::GlobalRef<C> ctx, F f) {
  return idx_nest(it.ix.dom, std::pair(it.ix.src, std::move(ctx)),
                  CtxExt<Ext, F>{it.ix.ext.fn(), f}, it.hint);
}

// -- zip ----------------------------------------------------------------------------

/// Both flat indexers: zip stays an indexer over the domain intersection,
/// preserving parallelism and partitionability.
template <typename DA, typename SA, typename EA, typename DB, typename SB,
          typename EB>
auto zip(const IdxFlatIter<DA, SA, EA>& a, const IdxFlatIter<DB, SB, EB>& b) {
  static_assert(std::is_same_v<DA, DB>,
                "zip requires both sides to have the same domain type");
  DA dom = intersect(a.ix.dom, b.ix.dom);
  return idx_flat(dom, std::pair(a.ix.src, b.ix.src),
                  ZipExt<EA, EB>{a.ix.ext.fn(), b.ix.ext.fn()},
                  merge_hints(a.hint, b.hint));
}

/// Any other combination involves variable-length outputs and is zipped
/// sequentially through steppers (paper Figure 2, second zip equation).
template <typename ItA, typename ItB,
          typename = std::enable_if_t<is_iter_v<ItA> && is_iter_v<ItB> &&
                                      !(ItA::kKind == IterKind::kIdxFlat &&
                                        ItB::kKind == IterKind::kIdxFlat)>>
auto zip(const ItA& a, const ItB& b) {
  return step_flat(zip_step(to_step(a), to_step(b)),
                   merge_hints(a.hint, b.hint));
}

/// Three-way zip of flat indexers (mri-q's zip3(x, y, z)).
template <typename D, typename SA, typename EA, typename SB, typename EB,
          typename SC, typename EC>
auto zip3(const IdxFlatIter<D, SA, EA>& a, const IdxFlatIter<D, SB, EB>& b,
          const IdxFlatIter<D, SC, EC>& c) {
  D dom = intersect(intersect(a.ix.dom, b.ix.dom), c.ix.dom);
  return idx_flat(dom, Zip3Source<SA, SB, SC>{a.ix.src, b.ix.src, c.ix.src},
                  Zip3Ext<EA, EB, EC>{a.ix.ext.fn(), b.ix.ext.fn(),
                                      c.ix.ext.fn()},
                  merge_hints(merge_hints(a.hint, b.hint), c.hint));
}

/// zip_with (the Domain-class operation of paper §3.3): visits all points in
/// the intersection of two iterators' domains, combining elements with `f`.
template <typename ItA, typename ItB, typename F>
auto zip_with(const ItA& a, const ItB& b, F f) {
  return map(zip(a, b), [f](const auto& p) { return f(p.first, p.second); });
}

/// Helper functor: pairs an index with the element an extractor produces.
template <typename Ext>
struct IndexedExt {
  Ext base;
  template <typename Src, typename I>
  auto operator()(const Src& s, I i) const {
    return std::pair(i, base(s, i));
  }
};

/// Pairs every element of a flat indexer with its index: the
/// `zip(indices(domain(rand)), rand)` idiom of Figure 6 as one call.
template <typename D, typename Src, typename Ext>
auto indexed(const IdxFlatIter<D, Src, Ext>& it) {
  return idx_flat(it.ix.dom, it.ix.src, IndexedExt<Ext>{it.ix.ext.fn()},
                  it.hint);
}

struct IdentityFn {
  template <typename T>
  T operator()(T v) const {
    return v;
  }
};

/// Flattens an iterator whose elements are themselves iterators
/// (concat_map with the identity).
template <typename It>
auto flatten(const It& it) {
  return concat_map(it, IdentityFn{});
}

// -- filter -------------------------------------------------------------------------

/// Extractor for filter-on-indexer: element i becomes a 0-or-1-element inner
/// stepper, so the outer loop keeps its index structure ("our implementation
/// of filter does not reassign indices", §3.2).
template <typename Ext, typename P>
struct FilterUnitExt {
  Ext base;
  P p;
  template <typename Src, typename I>
  auto operator()(const Src& s, I i) const {
    auto v = base(s, i);
    return step_flat(filter_step(unit_step(std::move(v)), p));
  }
};

template <typename P>
struct FilterInnerFn {  // pushes filter through one level of nesting
  P p;
  template <typename InnerIt>
  auto operator()(const InnerIt& it) const;
};

template <typename D, typename Src, typename Ext, typename P>
auto filter(const IdxFlatIter<D, Src, Ext>& it, P p) {
  return idx_nest(it.ix.dom, it.ix.src,
                  FilterUnitExt<Ext, P>{it.ix.ext.fn(), p}, it.hint);
}

template <typename SF, typename P>
auto filter(const StepFlatIter<SF>& it, P p) {
  return step_flat(filter_step(it.sf, p), it.hint);
}

template <typename D, typename Src, typename Ext, typename P>
auto filter(const IdxNestIter<D, Src, Ext>& it, P p) {
  return idx_nest(
      it.ix.dom, it.ix.src,
      MapExt<Ext, FilterInnerFn<P>>{it.ix.ext.fn(), FilterInnerFn<P>{p}},
      it.hint);
}

template <typename SF, typename P>
auto filter(const StepNestIter<SF>& it, P p) {
  return step_nest(map_step(it.sf, FilterInnerFn<P>{p}), it.hint);
}

template <typename P>
template <typename InnerIt>
auto FilterInnerFn<P>::operator()(const InnerIt& it) const {
  return filter(it, p);
}

// -- concat_map ----------------------------------------------------------------------

template <typename G>
struct ConcatInnerFn {  // pushes concat_map through one level of nesting
  G g;
  template <typename InnerIt>
  auto operator()(const InnerIt& it) const;
};

/// `g` maps each element to an iterator; results are concatenated.
/// On a flat indexer this adds exactly one nesting level, keeping the outer
/// loop parallelizable (the irregular part runs in the inner loop).
template <typename D, typename Src, typename Ext, typename G>
auto concat_map(const IdxFlatIter<D, Src, Ext>& it, G g) {
  return idx_nest(it.ix.dom, it.ix.src, MapExt<Ext, G>{it.ix.ext.fn(), g},
                  it.hint);
}

template <typename SF, typename G>
auto concat_map(const StepFlatIter<SF>& it, G g) {
  return step_nest(map_step(it.sf, g), it.hint);
}

template <typename D, typename Src, typename Ext, typename G>
auto concat_map(const IdxNestIter<D, Src, Ext>& it, G g) {
  return idx_nest(
      it.ix.dom, it.ix.src,
      MapExt<Ext, ConcatInnerFn<G>>{it.ix.ext.fn(), ConcatInnerFn<G>{g}},
      it.hint);
}

template <typename SF, typename G>
auto concat_map(const StepNestIter<SF>& it, G g) {
  return step_nest(map_step(it.sf, ConcatInnerFn<G>{g}), it.hint);
}

template <typename G>
template <typename InnerIt>
auto ConcatInnerFn<G>::operator()(const InnerIt& it) const {
  return concat_map(it, g);
}

}  // namespace triolet::core
