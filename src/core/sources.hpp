#pragma once

// Sliceable data sources (paper §3.5, "Array partitioning").
//
// An indexer is reorganized into a (potentially large) *data source* and a
// cheap *extractor* taking the source as an extra parameter:
//     lookup(i)  ==  ext(src, i)
// The extractor is cheap to ship (no bulk data inside); the source knows how
// to extract the subset a sub-domain needs via `slice_source`. When a
// distributed loop partitions work across nodes, it slices the source and
// sends each node only the data its chunk of the domain uses.
//
// Because arrays keep global base offsets (array/array.hpp) and domains keep
// absolute bounds (core/domains.hpp), a sliced source works with the
// *unchanged* extractor: no inner-loop remapping, no copying at use sites.
//
// `slice_source(src, old_dom, new_dom)` is the customization point; sources
// compose (pairs slice both halves over the same range; an OuterSource
// slices its row sets by the two axes of a Dim2 block).

#include <span>
#include <utility>

#include "array/array.hpp"
#include "core/domains.hpp"
#include "serial/global.hpp"

namespace triolet::core {

/// Source for generated (data-free) indexers such as `range`.
struct Unit {
  bool operator==(const Unit&) const = default;
};

inline Unit slice_source(const Unit&, Seq, Seq) { return {}; }
inline Unit slice_source(const Unit&, Dim2, Dim2) { return {}; }
inline Unit slice_source(const Unit&, Dim3, Dim3) { return {}; }

/// Array1 sources slice to the element range of the sub-domain.
template <typename T>
Array1<T> slice_source(const Array1<T>& a, Seq, Seq sub) {
  return a.slice(sub.lo, sub.hi);
}

/// Array2 used as a rows-source (one task per row) slices to a row range.
template <typename T>
Array2<T> slice_source(const Array2<T>& a, Seq, Seq sub) {
  return a.slice_rows(sub.lo, sub.hi);
}

/// Zipped sources slice both halves over the same range (paper: "data
/// sources may involve multiple arrays, such as in the result of a call to
/// zip, without requiring a step of data copying and reorganization").
template <typename SA, typename SB, typename D>
std::pair<SA, SB> slice_source(const std::pair<SA, SB>& s, D old_dom,
                               D new_dom) {
  return {slice_source(s.first, old_dom, new_dom),
          slice_source(s.second, old_dom, new_dom)};
}

template <typename SA, typename SB, typename SC>
struct Zip3Source {
  SA a;
  SB b;
  SC c;
  bool operator==(const Zip3Source&) const = default;
};

template <typename SA, typename SB, typename SC, typename D>
Zip3Source<SA, SB, SC> slice_source(const Zip3Source<SA, SB, SC>& s, D old_dom,
                                    D new_dom) {
  return {slice_source(s.a, old_dom, new_dom),
          slice_source(s.b, old_dom, new_dom),
          slice_source(s.c, old_dom, new_dom)};
}

/// Broadcast source: auxiliary data every task needs in full (mri-q's
/// k-space sample array, cutcp's grid parameters). Slicing is the identity —
/// the whole value travels with every chunk, exactly like an object captured
/// by a Triolet closure ("serializing an object transitively serializes all
/// objects that it references", §3.4).
template <typename T>
struct Bcast {
  T value;
  bool operator==(const Bcast&) const = default;
};

template <typename T, typename D>
Bcast<T> slice_source(const Bcast<T>& b, D, D) {
  return b;
}

/// Published global data used as a source/context: slicing is the identity
/// and serialization is the O(1) segment identifier (paper §3.4: "pointers
/// to global data are serialized as a segment identifier and offset").
template <typename T, typename D>
serial::GlobalRef<T> slice_source(const serial::GlobalRef<T>& g, D, D) {
  return g;
}

/// Uniform access to broadcast-style context holders (used by CtxExt).
template <typename T>
const T& ctx_get(const Bcast<T>& b) {
  return b.value;
}
template <typename T>
const T& ctx_get(const serial::GlobalRef<T>& g) {
  return g.get();
}

/// Source of a 2D outer product of two 1D task sets. A Dim2 block's
/// vertical extent selects rows of `a`, its horizontal extent rows of `b` —
/// each block is sent only the rows meeting at that block (the two-line
/// sgemm decomposition of paper §2).
template <typename SA, typename SB>
struct OuterSource {
  SA a;
  SB b;
  bool operator==(const OuterSource&) const = default;
};

template <typename SA, typename SB>
OuterSource<SA, SB> slice_source(const OuterSource<SA, SB>& s, Dim2 old_dom,
                                 Dim2 new_dom) {
  return {slice_source(s.a, Seq{old_dom.y0, old_dom.y1},
                        Seq{new_dom.y0, new_dom.y1}),
          slice_source(s.b, Seq{old_dom.x0, old_dom.x1},
                        Seq{new_dom.x0, new_dom.x1})};
}

/// Compile-time: does this source (transitively) contain a *resident*
/// source — one addressable by the slice-residency cache? False for every
/// core source; dist/dist_array.hpp specializes the resident leaves, and
/// the composite sources here recurse so e.g. a zip of a resident array
/// with a plain one still takes the residency-aware send path.
template <typename S>
struct source_uses_residency : std::false_type {};

template <typename SA, typename SB>
struct source_uses_residency<std::pair<SA, SB>>
    : std::bool_constant<source_uses_residency<SA>::value ||
                         source_uses_residency<SB>::value> {};

template <typename SA, typename SB, typename SC>
struct source_uses_residency<Zip3Source<SA, SB, SC>>
    : std::bool_constant<source_uses_residency<SA>::value ||
                         source_uses_residency<SB>::value ||
                         source_uses_residency<SC>::value> {};

template <typename SA, typename SB>
struct source_uses_residency<OuterSource<SA, SB>>
    : std::bool_constant<source_uses_residency<SA>::value ||
                         source_uses_residency<SB>::value> {};

/// Compile-time: how many *resident leaves* the source graph contains. A
/// count >= 2 identifies a fused distributed view — a composite (zip /
/// slice / transform / segmented) whose leaves each carry their own
/// (id, version, range) identity and tokenize independently. Senders use
/// this to charge token substitutions to the view counters
/// (net::ViewStats) on top of the ordinary residency stats; a bare single
/// resident array stays plain-residency only. dist/ specializes the leaf
/// counts (ResidentSource = 1, SegmentedSource = 2).
template <typename S>
struct resident_leaf_count
    : std::integral_constant<int, source_uses_residency<S>::value ? 1 : 0> {};

template <typename SA, typename SB>
struct resident_leaf_count<std::pair<SA, SB>>
    : std::integral_constant<int, resident_leaf_count<SA>::value +
                                      resident_leaf_count<SB>::value> {};

template <typename SA, typename SB, typename SC>
struct resident_leaf_count<Zip3Source<SA, SB, SC>>
    : std::integral_constant<int, resident_leaf_count<SA>::value +
                                      resident_leaf_count<SB>::value +
                                      resident_leaf_count<SC>::value> {};

template <typename SA, typename SB>
struct resident_leaf_count<OuterSource<SA, SB>>
    : std::integral_constant<int, resident_leaf_count<SA>::value +
                                      resident_leaf_count<SB>::value> {};

}  // namespace triolet::core

namespace triolet::serial {

template <>
struct Codec<triolet::core::Unit> {
  static void write(ByteWriter&, const triolet::core::Unit&) {}
  static void read(ByteReader&, triolet::core::Unit&) {}
};

template <typename T>
struct use_custom_codec<triolet::core::Bcast<T>> : std::true_type {};

template <typename T>
struct Codec<triolet::core::Bcast<T>> {
  static void write(ByteWriter& w, const triolet::core::Bcast<T>& b) {
    serial::write(w, b.value);
  }
  static void read(ByteReader& r, triolet::core::Bcast<T>& b) {
    serial::read(r, b.value);
  }
};

template <typename SA, typename SB, typename SC>
struct use_custom_codec<triolet::core::Zip3Source<SA, SB, SC>>
    : std::true_type {};
template <typename SA, typename SB>
struct use_custom_codec<triolet::core::OuterSource<SA, SB>> : std::true_type {};

template <typename SA, typename SB, typename SC>
struct Codec<triolet::core::Zip3Source<SA, SB, SC>> {
  static void write(ByteWriter& w,
                    const triolet::core::Zip3Source<SA, SB, SC>& s) {
    serial::write(w, s.a);
    serial::write(w, s.b);
    serial::write(w, s.c);
  }
  static void read(ByteReader& r, triolet::core::Zip3Source<SA, SB, SC>& s) {
    serial::read(r, s.a);
    serial::read(r, s.b);
    serial::read(r, s.c);
  }
};

template <typename SA, typename SB>
struct Codec<triolet::core::OuterSource<SA, SB>> {
  static void write(ByteWriter& w, const triolet::core::OuterSource<SA, SB>& s) {
    serial::write(w, s.a);
    serial::write(w, s.b);
  }
  static void read(ByteReader& r, triolet::core::OuterSource<SA, SB>& s) {
    serial::read(r, s.a);
    serial::read(r, s.b);
  }
};

}  // namespace triolet::serial
