#pragma once

// Index-space domains (paper §3.3, class Domain).
//
// A domain characterizes an iteration space: `Seq` is a one-dimensional
// index range, `Dim2`/`Dim3` are dense multidimensional boxes. Domains know
// their index type, iterate themselves in a canonical (row-major) order, and
// split into contiguous blocks — the primitive behind both node-level work
// distribution and the 2D block decomposition used by sgemm.
//
// Domains carry absolute bounds rather than sizes, so a chunk of a domain is
// itself a domain whose indices keep their global meaning. Together with the
// global base offsets on arrays (array/array.hpp), this is what lets a
// sliced task run unmodified on a remote node.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/macros.hpp"

namespace triolet::core {

using index_t = std::int64_t;

/// Two-dimensional index.
struct Index2 {
  index_t y = 0;
  index_t x = 0;
  bool operator==(const Index2&) const = default;
};

/// Three-dimensional index.
struct Index3 {
  index_t z = 0;
  index_t y = 0;
  index_t x = 0;
  bool operator==(const Index3&) const = default;
};

/// One-dimensional domain: indices lo <= i < hi.
struct Seq {
  index_t lo = 0;
  index_t hi = 0;

  using Index = index_t;

  index_t size() const { return hi > lo ? hi - lo : 0; }
  bool contains(index_t i) const { return i >= lo && i < hi; }

  /// Position of `i` in iteration order.
  index_t ordinal(index_t i) const { return i - lo; }

  template <typename F>
  void for_each(F&& f) const {
    for (index_t i = lo; i < hi; ++i) f(i);
  }

  bool operator==(const Seq&) const = default;
};

/// Dense 2D box: y0 <= y < y1 (rows), x0 <= x < x1 (columns).
struct Dim2 {
  index_t y0 = 0, y1 = 0;
  index_t x0 = 0, x1 = 0;

  using Index = Index2;

  index_t rows() const { return y1 > y0 ? y1 - y0 : 0; }
  index_t cols() const { return x1 > x0 ? x1 - x0 : 0; }
  index_t size() const { return rows() * cols(); }
  bool contains(Index2 i) const {
    return i.y >= y0 && i.y < y1 && i.x >= x0 && i.x < x1;
  }

  index_t ordinal(Index2 i) const { return (i.y - y0) * cols() + (i.x - x0); }

  template <typename F>
  void for_each(F&& f) const {
    for (index_t y = y0; y < y1; ++y) {
      for (index_t x = x0; x < x1; ++x) f(Index2{y, x});
    }
  }

  bool operator==(const Dim2&) const = default;
};

/// Dense 3D box (z-major iteration).
struct Dim3 {
  index_t z0 = 0, z1 = 0;
  index_t y0 = 0, y1 = 0;
  index_t x0 = 0, x1 = 0;

  using Index = Index3;

  index_t size() const {
    index_t nz = z1 > z0 ? z1 - z0 : 0;
    index_t ny = y1 > y0 ? y1 - y0 : 0;
    index_t nx = x1 > x0 ? x1 - x0 : 0;
    return nz * ny * nx;
  }
  bool contains(Index3 i) const {
    return i.z >= z0 && i.z < z1 && i.y >= y0 && i.y < y1 && i.x >= x0 &&
           i.x < x1;
  }

  index_t ordinal(Index3 i) const {
    return ((i.z - z0) * (y1 - y0) + (i.y - y0)) * (x1 - x0) + (i.x - x0);
  }

  template <typename F>
  void for_each(F&& f) const {
    for (index_t z = z0; z < z1; ++z) {
      for (index_t y = y0; y < y1; ++y) {
        for (index_t x = x0; x < x1; ++x) f(Index3{z, y, x});
      }
    }
  }

  bool operator==(const Dim3&) const = default;
};

template <typename D>
using IndexOf = typename D::Index;

// -- intersection (used by zip: visit common points; paper §3.3) -------------

inline Seq intersect(Seq a, Seq b) {
  return Seq{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

inline Dim2 intersect(Dim2 a, Dim2 b) {
  return Dim2{std::max(a.y0, b.y0), std::min(a.y1, b.y1),
              std::max(a.x0, b.x0), std::min(a.x1, b.x1)};
}

inline Dim3 intersect(Dim3 a, Dim3 b) {
  return Dim3{std::max(a.z0, b.z0), std::min(a.z1, b.z1),
              std::max(a.y0, b.y0), std::min(a.y1, b.y1),
              std::max(a.x0, b.x0), std::min(a.x1, b.x1)};
}

// -- block splitting ----------------------------------------------------------

// -- ordinal-range traversal -----------------------------------------------------
//
// Parallel loops address work by *ordinal* (position in canonical order).
// Walking an ordinal range must not reconstruct multidimensional indices
// with a division and modulus per element — that is precisely the
// flattening overhead §3.3 warns about. These walkers pay one div/mod to
// enter the range, then iterate with nested loops and carries.

template <typename F>
void for_ordinal_range(Seq d, index_t a, index_t b, F&& f) {
  for (index_t i = d.lo + a; i < d.lo + b; ++i) f(i);
}

template <typename F>
void for_ordinal_range(Dim2 d, index_t a, index_t b, F&& f) {
  if (a >= b) return;
  const index_t cols = d.cols();
  index_t y = d.y0 + a / cols;
  index_t x = d.x0 + a % cols;
  for (index_t ord = a; ord < b;) {
    const index_t stop = std::min(b, ord + (d.x1 - x));
    for (; ord < stop; ++ord, ++x) f(Index2{y, x});
    if (x == d.x1) {
      x = d.x0;
      ++y;
    }
  }
}

template <typename F>
void for_ordinal_range(Dim3 d, index_t a, index_t b, F&& f) {
  if (a >= b) return;
  const index_t ny = d.y1 - d.y0, nx = d.x1 - d.x0;
  index_t z = d.z0 + a / (ny * nx);
  index_t rem = a % (ny * nx);
  index_t y = d.y0 + rem / nx;
  index_t x = d.x0 + rem % nx;
  for (index_t ord = a; ord < b;) {
    const index_t stop = std::min(b, ord + (d.x1 - x));
    for (; ord < stop; ++ord, ++x) f(Index3{z, y, x});
    if (x == d.x1) {
      x = d.x0;
      if (++y == d.y1) {
        y = d.y0;
        ++z;
      }
    }
  }
}

/// Splits [lo, hi) into `k` contiguous nearly-equal chunks (some possibly
/// empty when k > size).
inline std::vector<Seq> split_blocks(Seq d, int k) {
  TRIOLET_CHECK(k >= 1, "need at least one chunk");
  std::vector<Seq> out;
  out.reserve(static_cast<std::size_t>(k));
  const index_t n = d.size();
  for (int c = 0; c < k; ++c) {
    index_t a = d.lo + n * c / k;
    index_t b = d.lo + n * (c + 1) / k;
    out.push_back(Seq{a, b});
  }
  return out;
}

/// Chooses a grid ry x rx with ry * rx == k, as close to the box's aspect
/// ratio as possible, and returns the k = ry*rx sub-blocks in row-major
/// order. This is the 2D block decomposition of sgemm (paper §2).
std::vector<Dim2> split_blocks(Dim2 d, int k);

/// Splits a 3D box into k sub-boxes: factorizes k into a (kz, ky, kx) grid
/// whose blocks are as close to cubic as possible.
std::vector<Dim3> split_blocks(Dim3 d, int k);

// -- outer-axis chunking ------------------------------------------------------
//
// The demand-driven scheduler (src/sched/) grants work as contiguous runs of
// *outer-axis units*: plain indices for Seq, whole rows for Dim2, whole z
// slabs for Dim3. Chunking along the outermost axis keeps every chunk a
// rectangular sub-domain, so grants slice and serialize exactly like the
// static node chunks of split_blocks.

/// Number of outermost-axis units in `d` (indices / rows / z slabs).
inline index_t outer_extent(Seq d) { return d.size(); }
inline index_t outer_extent(Dim2 d) { return d.rows(); }
inline index_t outer_extent(Dim3 d) { return d.z1 > d.z0 ? d.z1 - d.z0 : 0; }

/// Sub-domain covering outer units [u0, u1) of `d` (clamped to the extent;
/// u0 >= u1 yields an empty domain anchored at u0 so global indices stay
/// meaningful). All inner axes are kept whole.
inline Seq outer_slice(Seq d, index_t u0, index_t u1) {
  const index_t n = outer_extent(d);
  u0 = std::clamp<index_t>(u0, 0, n);
  u1 = std::clamp<index_t>(u1, u0, n);
  return Seq{d.lo + u0, d.lo + u1};
}

inline Dim2 outer_slice(Dim2 d, index_t u0, index_t u1) {
  const index_t n = outer_extent(d);
  u0 = std::clamp<index_t>(u0, 0, n);
  u1 = std::clamp<index_t>(u1, u0, n);
  return Dim2{d.y0 + u0, d.y0 + u1, d.x0, d.x1};
}

inline Dim3 outer_slice(Dim3 d, index_t u0, index_t u1) {
  const index_t n = outer_extent(d);
  u0 = std::clamp<index_t>(u0, 0, n);
  u1 = std::clamp<index_t>(u1, u0, n);
  return Dim3{d.z0 + u0, d.z0 + u1, d.y0, d.y1, d.x0, d.x1};
}

/// The one grain heuristic both levels of the two-level runtime share: the
/// chunk size that splits `extent` units across `parts` workers into ~8
/// chunks per worker — enough chunks that dynamic balancing has slack, few
/// enough that per-chunk overhead stays amortized. Clamped to [1, extent] so
/// tiny extents with many workers never yield a grain of 0 (infinite loop)
/// or larger than the range.
///
/// Callers: runtime::auto_grain (intra-node loops, parts = pool threads) and
/// sched::resolve_grain (inter-node atoms, parts = cluster ranks). Both used
/// to hand-roll extent/(8*parts) independently; keeping one definition here
/// is what guarantees the two levels cannot drift — and the demand scheduler
/// relies on the atom decomposition being a pure function of
/// (extent, parts, requested) for its kOrdered bitwise-identity invariant.
inline index_t auto_grain_for(index_t extent, int parts) {
  if (extent <= 1) return 1;
  const index_t target_chunks =
      std::max<index_t>(1, static_cast<index_t>(parts)) * 8;
  return std::clamp<index_t>(extent / target_chunks, 1, extent);
}

/// Splits into chunks of at most `grain` indices each (1D).
inline std::vector<Seq> split_grain(Seq d, index_t grain) {
  TRIOLET_CHECK(grain >= 1, "grain must be positive");
  std::vector<Seq> out;
  for (index_t a = d.lo; a < d.hi; a += grain) {
    out.push_back(Seq{a, std::min(d.hi, a + grain)});
  }
  if (out.empty()) out.push_back(d);
  return out;
}

}  // namespace triolet::core
