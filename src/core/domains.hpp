#pragma once

// Index-space domains (paper §3.3, class Domain).
//
// A domain characterizes an iteration space: `Seq` is a one-dimensional
// index range, `Dim2`/`Dim3` are dense multidimensional boxes. Domains know
// their index type, iterate themselves in a canonical (row-major) order, and
// split into contiguous blocks — the primitive behind both node-level work
// distribution and the 2D block decomposition used by sgemm.
//
// Domains carry absolute bounds rather than sizes, so a chunk of a domain is
// itself a domain whose indices keep their global meaning. Together with the
// global base offsets on arrays (array/array.hpp), this is what lets a
// sliced task run unmodified on a remote node.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet::core {

using index_t = std::int64_t;

/// Two-dimensional index.
struct Index2 {
  index_t y = 0;
  index_t x = 0;
  bool operator==(const Index2&) const = default;
};

/// Three-dimensional index.
struct Index3 {
  index_t z = 0;
  index_t y = 0;
  index_t x = 0;
  bool operator==(const Index3&) const = default;
};

/// One-dimensional domain: indices lo <= i < hi.
struct Seq {
  index_t lo = 0;
  index_t hi = 0;

  using Index = index_t;

  index_t size() const { return hi > lo ? hi - lo : 0; }
  bool contains(index_t i) const { return i >= lo && i < hi; }

  /// Position of `i` in iteration order.
  index_t ordinal(index_t i) const { return i - lo; }

  template <typename F>
  void for_each(F&& f) const {
    for (index_t i = lo; i < hi; ++i) f(i);
  }

  bool operator==(const Seq&) const = default;
};

/// Dense 2D box: y0 <= y < y1 (rows), x0 <= x < x1 (columns).
struct Dim2 {
  index_t y0 = 0, y1 = 0;
  index_t x0 = 0, x1 = 0;

  using Index = Index2;

  index_t rows() const { return y1 > y0 ? y1 - y0 : 0; }
  index_t cols() const { return x1 > x0 ? x1 - x0 : 0; }
  index_t size() const { return rows() * cols(); }
  bool contains(Index2 i) const {
    return i.y >= y0 && i.y < y1 && i.x >= x0 && i.x < x1;
  }

  index_t ordinal(Index2 i) const { return (i.y - y0) * cols() + (i.x - x0); }

  template <typename F>
  void for_each(F&& f) const {
    for (index_t y = y0; y < y1; ++y) {
      for (index_t x = x0; x < x1; ++x) f(Index2{y, x});
    }
  }

  bool operator==(const Dim2&) const = default;
};

/// Dense 3D box (z-major iteration).
struct Dim3 {
  index_t z0 = 0, z1 = 0;
  index_t y0 = 0, y1 = 0;
  index_t x0 = 0, x1 = 0;

  using Index = Index3;

  index_t size() const {
    index_t nz = z1 > z0 ? z1 - z0 : 0;
    index_t ny = y1 > y0 ? y1 - y0 : 0;
    index_t nx = x1 > x0 ? x1 - x0 : 0;
    return nz * ny * nx;
  }
  bool contains(Index3 i) const {
    return i.z >= z0 && i.z < z1 && i.y >= y0 && i.y < y1 && i.x >= x0 &&
           i.x < x1;
  }

  index_t ordinal(Index3 i) const {
    return ((i.z - z0) * (y1 - y0) + (i.y - y0)) * (x1 - x0) + (i.x - x0);
  }

  template <typename F>
  void for_each(F&& f) const {
    for (index_t z = z0; z < z1; ++z) {
      for (index_t y = y0; y < y1; ++y) {
        for (index_t x = x0; x < x1; ++x) f(Index3{z, y, x});
      }
    }
  }

  bool operator==(const Dim3&) const = default;
};

/// Segmented (ragged) 1D domain: iterates *segments* of a CSR-style source.
/// The segments are grouped into contiguous *outer units* by `cuts`, a
/// shared vector of absolute segment boundaries: outer unit u covers
/// segments [cuts[u], cuts[u+1]). The grouping is value-balanced at
/// construction (see segment_cuts), so the scheduler's outer-axis atoms
/// split on value count, not segment count — a power-law row distribution
/// no longer hands one rank a thousand times the work of another just
/// because both got "the same number of rows".
///
/// Like Seq, a slice of a SegSeq keeps global meaning: the cuts vector is
/// shared (never rewritten) and `u0`/`u1` select a window of units, so
/// cuts values are absolute segment indices everywhere. `weights` is an
/// optional parallel per-unit cost hint (value counts) consumed by
/// outer_cost_cv / auto_grain_for; it rides along slices untouched.
struct SegSeq {
  index_t u0 = 0;  ///< first outer unit
  index_t u1 = 0;  ///< one past the last outer unit
  std::shared_ptr<const std::vector<index_t>> cuts;
  std::shared_ptr<const std::vector<index_t>> weights;  // per-unit, optional

  using Index = index_t;  // global segment index

  index_t units() const { return u1 > u0 ? u1 - u0 : 0; }
  index_t seg_lo() const {
    return cuts ? (*cuts)[static_cast<std::size_t>(u0)] : 0;
  }
  index_t seg_hi() const {
    return cuts ? (*cuts)[static_cast<std::size_t>(std::max(u0, u1))] : 0;
  }

  index_t size() const { return seg_hi() - seg_lo(); }
  bool contains(index_t s) const { return s >= seg_lo() && s < seg_hi(); }
  index_t ordinal(index_t s) const { return s - seg_lo(); }

  template <typename F>
  void for_each(F&& f) const {
    for (index_t s = seg_lo(); s < seg_hi(); ++s) f(s);
  }

  bool operator==(const SegSeq& o) const {
    if (units() != o.units()) return false;
    for (index_t u = 0; u <= units(); ++u) {
      const index_t a = cuts ? (*cuts)[static_cast<std::size_t>(u0 + u)] : 0;
      const index_t b =
          o.cuts ? (*o.cuts)[static_cast<std::size_t>(o.u0 + u)] : 0;
      if (a != b) return false;
    }
    return true;
  }
};

/// Builds the value-balanced outer-unit boundaries of a SegSeq over `nsegs`
/// segments whose CSR offsets are `offsets` (offsets.size() == nsegs + 1,
/// offsets[s] <= offsets[s+1]). Consecutive segments accumulate into one
/// unit until it holds at least `value_grain` values, then the unit closes.
/// Degenerate shapes stay valid by construction:
///   - empty segments (offsets[s] == offsets[s+1]) attach to the open unit,
///     so no unit is ever segment-empty while the domain is non-empty;
///   - a single segment larger than the grain closes its own (oversized)
///     unit — segments are atoms of correctness and never split;
///   - nsegs == 0 yields the single boundary {0} (a valid empty domain).
/// The result is a pure function of (offsets, value_grain) — never of rank
/// or thread counts — so every rank derives the identical decomposition.
inline std::vector<index_t> segment_cuts(std::span<const index_t> offsets,
                                         index_t value_grain) {
  TRIOLET_CHECK(!offsets.empty(), "CSR offsets need at least one entry");
  TRIOLET_CHECK(value_grain >= 1, "value grain must be positive");
  const index_t nsegs = static_cast<index_t>(offsets.size()) - 1;
  std::vector<index_t> cuts;
  cuts.push_back(0);
  index_t acc = 0;
  for (index_t s = 0; s < nsegs; ++s) {
    acc += offsets[static_cast<std::size_t>(s + 1)] -
           offsets[static_cast<std::size_t>(s)];
    if (acc >= value_grain) {
      cuts.push_back(s + 1);
      acc = 0;
    }
  }
  if (cuts.back() != nsegs) cuts.push_back(nsegs);
  return cuts;
}

/// Per-unit value counts for segment_cuts output (the SegSeq::weights cost
/// hint): weight of unit u = offsets[cuts[u+1]] - offsets[cuts[u]].
inline std::vector<index_t> segment_weights(std::span<const index_t> offsets,
                                            const std::vector<index_t>& cuts) {
  std::vector<index_t> w;
  if (cuts.size() < 2) return w;
  w.reserve(cuts.size() - 1);
  for (std::size_t u = 0; u + 1 < cuts.size(); ++u) {
    w.push_back(offsets[static_cast<std::size_t>(cuts[u + 1])] -
                offsets[static_cast<std::size_t>(cuts[u])]);
  }
  return w;
}

template <typename D>
using IndexOf = typename D::Index;

// -- intersection (used by zip: visit common points; paper §3.3) -------------

inline Seq intersect(Seq a, Seq b) {
  return Seq{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

inline Dim2 intersect(Dim2 a, Dim2 b) {
  return Dim2{std::max(a.y0, b.y0), std::min(a.y1, b.y1),
              std::max(a.x0, b.x0), std::min(a.x1, b.x1)};
}

inline Dim3 intersect(Dim3 a, Dim3 b) {
  return Dim3{std::max(a.z0, b.z0), std::min(a.z1, b.z1),
              std::max(a.y0, b.y0), std::min(a.y1, b.y1),
              std::max(a.x0, b.x0), std::min(a.x1, b.x1)};
}

/// Zipping two segmented iterators requires the same unit decomposition —
/// value-balanced cuts are a pure function of the offsets, so two views of
/// one SegmentedDistArray (or arrays built with identical shape) agree.
/// The intersection keeps `a`'s cuts and narrows the unit window to the
/// units both sides cover.
inline SegSeq intersect(const SegSeq& a, const SegSeq& b) {
  if (a.cuts == b.cuts) {
    SegSeq out = a;
    out.u0 = std::max(a.u0, b.u0);
    out.u1 = std::max(out.u0, std::min(a.u1, b.u1));
    return out;
  }
  TRIOLET_CHECK(a == b,
                "zip of segmented domains needs identical segment grouping");
  return a;
}

// -- block splitting ----------------------------------------------------------

// -- ordinal-range traversal -----------------------------------------------------
//
// Parallel loops address work by *ordinal* (position in canonical order).
// Walking an ordinal range must not reconstruct multidimensional indices
// with a division and modulus per element — that is precisely the
// flattening overhead §3.3 warns about. These walkers pay one div/mod to
// enter the range, then iterate with nested loops and carries.

template <typename F>
void for_ordinal_range(Seq d, index_t a, index_t b, F&& f) {
  for (index_t i = d.lo + a; i < d.lo + b; ++i) f(i);
}

/// Ordinals of a SegSeq address *segments* (not outer units): intra-node
/// parallel loops and lazy splitting subdivide segment ranges freely, which
/// is what absorbs per-segment cost skew inside one granted atom.
template <typename F>
void for_ordinal_range(const SegSeq& d, index_t a, index_t b, F&& f) {
  const index_t lo = d.seg_lo();
  for (index_t s = lo + a; s < lo + b; ++s) f(s);
}

template <typename F>
void for_ordinal_range(Dim2 d, index_t a, index_t b, F&& f) {
  if (a >= b) return;
  const index_t cols = d.cols();
  index_t y = d.y0 + a / cols;
  index_t x = d.x0 + a % cols;
  for (index_t ord = a; ord < b;) {
    const index_t stop = std::min(b, ord + (d.x1 - x));
    for (; ord < stop; ++ord, ++x) f(Index2{y, x});
    if (x == d.x1) {
      x = d.x0;
      ++y;
    }
  }
}

template <typename F>
void for_ordinal_range(Dim3 d, index_t a, index_t b, F&& f) {
  if (a >= b) return;
  const index_t ny = d.y1 - d.y0, nx = d.x1 - d.x0;
  index_t z = d.z0 + a / (ny * nx);
  index_t rem = a % (ny * nx);
  index_t y = d.y0 + rem / nx;
  index_t x = d.x0 + rem % nx;
  for (index_t ord = a; ord < b;) {
    const index_t stop = std::min(b, ord + (d.x1 - x));
    for (; ord < stop; ++ord, ++x) f(Index3{z, y, x});
    if (x == d.x1) {
      x = d.x0;
      if (++y == d.y1) {
        y = d.y0;
        ++z;
      }
    }
  }
}

/// Splits [lo, hi) into `k` contiguous nearly-equal chunks (some possibly
/// empty when k > size).
inline std::vector<Seq> split_blocks(Seq d, int k) {
  TRIOLET_CHECK(k >= 1, "need at least one chunk");
  std::vector<Seq> out;
  out.reserve(static_cast<std::size_t>(k));
  const index_t n = d.size();
  for (int c = 0; c < k; ++c) {
    index_t a = d.lo + n * c / k;
    index_t b = d.lo + n * (c + 1) / k;
    out.push_back(Seq{a, b});
  }
  return out;
}

/// Splits a segmented domain into `k` contiguous chunks of nearly-equal
/// *outer-unit* count. Units are value-balanced (segment_cuts), so this is
/// an approximate value split that never cuts a segment. Degenerate ragged
/// shapes stay valid: with fewer units than chunks the trailing chunks are
/// empty but anchored (u0 == u1 at a real boundary), so slicing sources by
/// them is in-range and their atoms simply contribute no work.
inline std::vector<SegSeq> split_blocks(const SegSeq& d, int k) {
  TRIOLET_CHECK(k >= 1, "need at least one chunk");
  std::vector<SegSeq> out;
  out.reserve(static_cast<std::size_t>(k));
  const index_t n = d.units();
  for (int c = 0; c < k; ++c) {
    SegSeq chunk = d;
    chunk.u0 = d.u0 + n * c / k;
    chunk.u1 = d.u0 + n * (c + 1) / k;
    out.push_back(std::move(chunk));
  }
  return out;
}

/// Chooses a grid ry x rx with ry * rx == k, as close to the box's aspect
/// ratio as possible, and returns the k = ry*rx sub-blocks in row-major
/// order. This is the 2D block decomposition of sgemm (paper §2).
std::vector<Dim2> split_blocks(Dim2 d, int k);

/// Splits a 3D box into k sub-boxes: factorizes k into a (kz, ky, kx) grid
/// whose blocks are as close to cubic as possible.
std::vector<Dim3> split_blocks(Dim3 d, int k);

// -- outer-axis chunking ------------------------------------------------------
//
// The demand-driven scheduler (src/sched/) grants work as contiguous runs of
// *outer-axis units*: plain indices for Seq, whole rows for Dim2, whole z
// slabs for Dim3. Chunking along the outermost axis keeps every chunk a
// rectangular sub-domain, so grants slice and serialize exactly like the
// static node chunks of split_blocks.

/// Number of outermost-axis units in `d` (indices / rows / z slabs).
inline index_t outer_extent(Seq d) { return d.size(); }
inline index_t outer_extent(Dim2 d) { return d.rows(); }
inline index_t outer_extent(Dim3 d) { return d.z1 > d.z0 ? d.z1 - d.z0 : 0; }
/// Outer units of a SegSeq are its value-balanced segment groups, so grants
/// and atoms split on value mass while indices stay whole segments.
inline index_t outer_extent(const SegSeq& d) { return d.units(); }

/// Sub-domain covering outer units [u0, u1) of `d` (clamped to the extent;
/// u0 >= u1 yields an empty domain anchored at u0 so global indices stay
/// meaningful). All inner axes are kept whole.
inline Seq outer_slice(Seq d, index_t u0, index_t u1) {
  const index_t n = outer_extent(d);
  u0 = std::clamp<index_t>(u0, 0, n);
  u1 = std::clamp<index_t>(u1, u0, n);
  return Seq{d.lo + u0, d.lo + u1};
}

inline Dim2 outer_slice(Dim2 d, index_t u0, index_t u1) {
  const index_t n = outer_extent(d);
  u0 = std::clamp<index_t>(u0, 0, n);
  u1 = std::clamp<index_t>(u1, u0, n);
  return Dim2{d.y0 + u0, d.y0 + u1, d.x0, d.x1};
}

inline Dim3 outer_slice(Dim3 d, index_t u0, index_t u1) {
  const index_t n = outer_extent(d);
  u0 = std::clamp<index_t>(u0, 0, n);
  u1 = std::clamp<index_t>(u1, u0, n);
  return Dim3{d.z0 + u0, d.z0 + u1, d.y0, d.y1, d.x0, d.x1};
}

inline SegSeq outer_slice(const SegSeq& d, index_t u0, index_t u1) {
  const index_t n = outer_extent(d);
  u0 = std::clamp<index_t>(u0, 0, n);
  u1 = std::clamp<index_t>(u1, u0, n);
  SegSeq out = d;
  out.u0 = d.u0 + u0;
  out.u1 = d.u0 + u1;
  return out;
}

// -- per-unit cost-variance hint ---------------------------------------------
//
// Dense domains have uniform outer units, so their grain heuristic needs no
// shape information. Segmented domains carry per-unit value counts
// (SegSeq::weights); their coefficient of variation feeds auto_grain_for so
// skewed sources get finer atoms for demand policies to balance. cv == 0
// keeps the dense code path (and its results) bit-for-bit unchanged.

inline double outer_cost_cv(Seq) { return 0.0; }
inline double outer_cost_cv(Dim2) { return 0.0; }
inline double outer_cost_cv(Dim3) { return 0.0; }

/// Coefficient of variation (stddev / mean) of the per-unit weights of the
/// visible window; 0 when no weights travelled or the window is trivial.
inline double outer_cost_cv(const SegSeq& d) {
  if (!d.weights || d.units() < 2) return 0.0;
  const auto& w = *d.weights;
  if (static_cast<index_t>(w.size()) < d.u1) return 0.0;
  const index_t n = d.units();
  double sum = 0.0;
  for (index_t u = d.u0; u < d.u1; ++u) {
    sum += static_cast<double>(w[static_cast<std::size_t>(u)]);
  }
  const double mean = sum / static_cast<double>(n);
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (index_t u = d.u0; u < d.u1; ++u) {
    const double dl = static_cast<double>(w[static_cast<std::size_t>(u)]) - mean;
    var += dl * dl;
  }
  return std::sqrt(var / static_cast<double>(n)) / mean;
}

/// The one grain heuristic both levels of the two-level runtime share: the
/// chunk size that splits `extent` units across `parts` workers into ~8
/// chunks per worker — enough chunks that dynamic balancing has slack, few
/// enough that per-chunk overhead stays amortized. Clamped to [1, extent] so
/// tiny extents with many workers never yield a grain of 0 (infinite loop)
/// or larger than the range.
///
/// Callers: runtime::auto_grain (intra-node loops, parts = pool threads) and
/// sched::resolve_grain (inter-node atoms, parts = cluster ranks). Both used
/// to hand-roll extent/(8*parts) independently; keeping one definition here
/// is what guarantees the two levels cannot drift — and the demand scheduler
/// relies on the atom decomposition being a pure function of
/// (extent, parts, requested) for its kOrdered bitwise-identity invariant.
inline index_t auto_grain_for(index_t extent, int parts) {
  if (extent <= 1) return 1;
  const index_t target_chunks =
      std::max<index_t>(1, static_cast<index_t>(parts)) * 8;
  return std::clamp<index_t>(extent / target_chunks, 1, extent);
}

/// auto_grain_for with a per-unit cost-variance hint (outer_cost_cv).
/// Uniform units (cost_cv <= 0) take *exactly* the dense path above — same
/// integer arithmetic, same result — so dense callers are unchanged.
/// Skewed units aim for proportionally more chunks (up to 4x at cv >= 3),
/// giving demand policies slack to rebalance around jumbo units without
/// drowning uniform workloads in per-chunk overhead.
inline index_t auto_grain_for(index_t extent, int parts, double cost_cv) {
  if (cost_cv <= 0.0) return auto_grain_for(extent, parts);
  if (extent <= 1) return 1;
  const double target_chunks =
      static_cast<double>(std::max(1, parts)) * 8.0 *
      std::clamp(1.0 + cost_cv, 1.0, 4.0);
  const auto grain = static_cast<index_t>(static_cast<double>(extent) /
                                          target_chunks);
  return std::clamp<index_t>(grain, 1, extent);
}

/// Splits into chunks of at most `grain` indices each (1D).
inline std::vector<Seq> split_grain(Seq d, index_t grain) {
  TRIOLET_CHECK(grain >= 1, "grain must be positive");
  std::vector<Seq> out;
  for (index_t a = d.lo; a < d.hi; a += grain) {
    out.push_back(Seq{a, std::min(d.hi, a + grain)});
  }
  if (out.empty()) out.push_back(d);
  return out;
}

}  // namespace triolet::core

// -- serialization ------------------------------------------------------------
//
// Seq/Dim2/Dim3 are PODs and take the generic memcpy codec. SegSeq carries
// shared boundary vectors, so its codec ships only the visible window:
// the cuts subrange [u0 .. u1] (absolute segment indices, preserving global
// meaning) and the matching weights subrange when present. The reader
// rebases the unit window to [0, units) over the reconstructed vectors —
// relative outer_slice arithmetic is unaffected, which is what the
// scheduler's per-atom re-slicing on workers relies on.

namespace triolet::serial {

template <>
struct Codec<triolet::core::SegSeq> {
  using D = triolet::core::SegSeq;

  static void write(ByteWriter& w, const D& d) {
    const auto units = d.units();
    w.write_pod<std::int64_t>(units);
    for (std::int64_t u = 0; u <= units; ++u) {
      w.write_pod<std::int64_t>(
          d.cuts ? (*d.cuts)[static_cast<std::size_t>(d.u0 + u)] : 0);
    }
    const bool have_weights =
        d.weights && static_cast<std::int64_t>(d.weights->size()) >= d.u1;
    w.write_pod<std::uint8_t>(have_weights ? 1 : 0);
    if (have_weights) {
      for (std::int64_t u = 0; u < units; ++u) {
        w.write_pod<std::int64_t>(
            (*d.weights)[static_cast<std::size_t>(d.u0 + u)]);
      }
    }
  }

  static void read(ByteReader& r, D& d) {
    const auto units = r.read_pod<std::int64_t>();
    auto cuts = std::make_shared<std::vector<std::int64_t>>();
    cuts->reserve(static_cast<std::size_t>(units + 1));
    for (std::int64_t u = 0; u <= units; ++u) {
      cuts->push_back(r.read_pod<std::int64_t>());
    }
    std::shared_ptr<std::vector<std::int64_t>> weights;
    if (r.read_pod<std::uint8_t>() != 0) {
      weights = std::make_shared<std::vector<std::int64_t>>();
      weights->reserve(static_cast<std::size_t>(units));
      for (std::int64_t u = 0; u < units; ++u) {
        weights->push_back(r.read_pod<std::int64_t>());
      }
    }
    d = D{0, units, std::move(cuts), std::move(weights)};
  }
};

}  // namespace triolet::serial
