#pragma once

// Iterator-to-encoding conversions (paper §3.1 / Figure 1's lattice, top
// edge): any hybrid iterator converts *down* to the fold or collector
// encoding — giving up control over execution order, and with it
// parallelism ("this conversion removes the potential for parallelization").
//
// The encodings themselves and their combinators live in
// core/encodings.hpp; this header supplies the iterator-level entry points
// consumers and user code call.

#include <utility>

#include "core/encodings.hpp"
#include "core/iter.hpp"

namespace triolet::core {

namespace detail {

template <typename It>
struct VisitAll {
  It it;
  template <typename F>
  void operator()(F&& f) const {
    visit(it, std::forward<F>(f));
  }
};

}  // namespace detail

/// Converts any iterator to a fold over its canonical order. Compatibility
/// alias kept for existing call sites; identical to the FoldE encoding.
template <typename Impl>
using Fold = FoldE<Impl>;

template <typename Impl>
using Collector = CollE<Impl>;

/// iterToFold: subsumes idxToFold / stepToFold for whole iterators.
template <typename It>
auto to_fold(It it) {
  static_assert(is_iter_v<It>);
  return make_fold(detail::VisitAll<It>{std::move(it)});
}

/// iterToColl: the imperative counterpart.
template <typename It>
auto to_collector(It it) {
  static_assert(is_iter_v<It>);
  return make_collector(detail::VisitAll<It>{std::move(it)});
}

}  // namespace triolet::core
