#pragma once

// The indexer encoding (paper §3.1 "Indexers", §3.5).
//
// An indexer is (domain, source, extractor): element i is ext(src, i).
// Random access makes indexers the parallelizable encoding — any sub-domain
// can be evaluated independently — and the (source, extractor) split makes
// them partitionable: `slice` produces an indexer over a sub-domain whose
// source holds only the data that sub-domain touches.
//
// Extractors are composite functors built from the structs below (map
// composes MapExt, zip composes ZipExt, ...). They capture only trivially
// copyable state, so a fused loop body ships to a remote rank as raw bytes —
// the C++ analogue of Triolet's closure serialization. The whole indexer is
// serializable whenever its source is.

#include <tuple>
#include <utility>

#include "core/domains.hpp"
#include "core/fnbox.hpp"
#include "core/sources.hpp"

namespace triolet::core {

template <typename D, typename Src, typename Ext>
struct Indexer {
  using Dom = D;
  using Source = Src;
  using value_type = decltype(std::declval<const Ext&>()(
      std::declval<const Src&>(), std::declval<IndexOf<D>>()));

  D dom{};
  Src src{};
  FnBox<Ext> ext{};

  value_type at(IndexOf<D> i) const { return ext.fn()(src, i); }

  /// Element at position `ord` in the domain's canonical iteration order
  /// (how parallel loops address work items).
  value_type at_ordinal(index_t ord) const { return at(index_at(dom, ord)); }

  index_t size() const { return dom.size(); }

  /// Restricts to `sub`, extracting only the data `sub` needs (§3.5).
  Indexer slice(D sub) const {
    return Indexer{sub, slice_source(src, dom, sub), ext};
  }

  static index_t index_at(Seq d, index_t ord) { return d.lo + ord; }
  static index_t index_at(const SegSeq& d, index_t ord) {
    return d.seg_lo() + ord;
  }
  static Index2 index_at(Dim2 d, index_t ord) {
    return Index2{d.y0 + ord / d.cols(), d.x0 + ord % d.cols()};
  }
  static Index3 index_at(Dim3 d, index_t ord) {
    index_t nx = d.x1 - d.x0;
    index_t ny = d.y1 - d.y0;
    return Index3{d.z0 + ord / (ny * nx), d.y0 + (ord / nx) % ny,
                  d.x0 + ord % nx};
  }
};

template <typename D, typename Src, typename Ext>
Indexer<D, Src, Ext> make_indexer(D dom, Src src, Ext ext) {
  return Indexer<D, Src, Ext>{dom, std::move(src), FnBox<Ext>(ext)};
}

// -- extractor building blocks -------------------------------------------------

/// Yields the index itself (range / indices / array_range).
struct IdentityExt {
  template <typename I>
  I operator()(const Unit&, I i) const {
    return i;
  }
};

/// Reads an element of an Array1 source (by value; elements are unboxed).
struct Array1Ext {
  template <typename T>
  T operator()(const Array1<T>& a, index_t i) const {
    return a[i];
  }
};

/// Yields row `y` of an Array2 source as a borrowed span; the span points
/// into the source held by the iterator, so no copying happens per task.
struct RowsExt {
  template <typename T>
  std::span<const T> operator()(const Array2<T>& a, index_t y) const {
    return a.row(y);
  }
};

/// Composes a user function after a base extractor (map).
template <typename Base, typename G>
struct MapExt {
  Base base;
  G g;
  template <typename Src, typename I>
  auto operator()(const Src& s, I i) const {
    return g(base(s, i));
  }
};

/// Pairs two extractors over a zipped source (zip).
template <typename EA, typename EB>
struct ZipExt {
  EA ea;
  EB eb;
  template <typename SA, typename SB, typename I>
  auto operator()(const std::pair<SA, SB>& s, I i) const {
    return std::pair(ea(s.first, i), eb(s.second, i));
  }
};

/// Triples three extractors over a Zip3Source (zip3).
template <typename EA, typename EB, typename EC>
struct Zip3Ext {
  EA ea;
  EB eb;
  EC ec;
  template <typename SA, typename SB, typename SC, typename I>
  auto operator()(const Zip3Source<SA, SB, SC>& s, I i) const {
    return std::tuple(ea(s.a, i), eb(s.b, i), ec(s.c, i));
  }
};

/// 2D outer product: block (y, x) pairs task y of `a` with task x of `b`.
template <typename EA, typename EB>
struct OuterExt {
  EA ea;
  EB eb;
  template <typename SA, typename SB>
  auto operator()(const OuterSource<SA, SB>& s, Index2 i) const {
    return std::pair(ea(s.a, i.y), eb(s.b, i.x));
  }
};

}  // namespace triolet::core

namespace triolet::serial {

template <typename D, typename Src, typename Ext>
struct use_custom_codec<triolet::core::Indexer<D, Src, Ext>>
    : std::true_type {};

template <typename D, typename Src, typename Ext>
struct Codec<triolet::core::Indexer<D, Src, Ext>> {
  using Ix = triolet::core::Indexer<D, Src, Ext>;
  static void write(ByteWriter& w, const Ix& ix) {
    serial::write(w, ix.dom);
    serial::write(w, ix.src);
    serial::write(w, ix.ext);
  }
  static void read(ByteReader& r, Ix& ix) {
    serial::read(r, ix.dom);
    serial::read(r, ix.src);
    serial::read(r, ix.ext);
  }
};

}  // namespace triolet::serial
