#pragma once

// Storage for serializable function objects.
//
// Triolet's runtime serializes closures when tasks are sent to cluster nodes
// (§3.4). The C++ analogue: a fused loop body is a composite functor whose
// captures are trivially copyable scalars (problem parameters such as a
// cutoff radius), so the whole functor can cross the wire as raw bytes.
// FnBox holds such a functor in plain byte storage, which makes the
// enclosing iterator default-constructible (required to deserialize into)
// even when the functor type itself is not.
//
// Trivially copyable closure types are implicit-lifetime classes, so the
// memcpy into `storage_` begins the lifetime of the functor object that
// `fn()` then references.

#include <cstring>
#include <type_traits>

#include "serial/serialize.hpp"

namespace triolet::core {

template <typename F>
class FnBox {
  static_assert(std::is_trivially_copyable_v<F>,
                "distributable loop bodies must capture only trivially "
                "copyable state (the closure crosses the wire as bytes)");

 public:
  FnBox() = default;  // uninitialized; filled by deserialization

  FnBox(const F& f) {  // NOLINT(google-explicit-constructor): wrapper
    std::memcpy(storage_, &f, sizeof(F));
  }

  const F& fn() const { return *reinterpret_cast<const F*>(storage_); }

  /// Invokes the stored functor.
  template <typename... Args>
  decltype(auto) operator()(Args&&... args) const {
    return fn()(std::forward<Args>(args)...);
  }

  alignas(F) unsigned char storage_[sizeof(F)];
};

}  // namespace triolet::core

// FnBox is trivially copyable by construction, so serialization uses the
// generic block-copy codec: the boxed closure crosses the wire as raw bytes.
