#pragma once

// The stepper encoding (paper §3.1 "Steppers").
//
// A stepper is a suspended loop: each call to `next(sink)` either delivers
// exactly one element to `sink` and returns true, or returns false when the
// loop has finished. Steppers are inherently sequential (only the "next"
// element is reachable) but they fuse: every combinator below wraps the base
// stepper's `next` in more inlineable code, which the optimizer collapses
// into a single loop — the C++ rendering of stream fusion.
//
// A *stepper factory* (`make()` returns a fresh stepper) is what iterators
// store, so an iterator can be traversed more than once and inner loops of a
// nest can be restarted per outer element.
//
// The push-style `next(sink)` interface (rather than `optional<T> next()`)
// avoids requiring element types to be default-constructible and gives the
// compiler a straight-line path from producer to consumer.

#include <optional>
#include <utility>

#include "core/domains.hpp"

namespace triolet::core {

// -- factory trait ------------------------------------------------------------

template <typename SF>
using StepValue = typename SF::value_type;

/// Runs a stepper to exhaustion, applying `f` to every element.
template <typename Stepper, typename F>
void drain(Stepper& s, F&& f) {
  while (s.next(f)) {
  }
}

// -- primitive factories ------------------------------------------------------

/// Zero elements.
template <typename T>
struct EmptyStepF {
  using value_type = T;
  struct Stepper {
    template <typename Sink>
    bool next(Sink&&) {
      return false;
    }
  };
  Stepper make() const { return {}; }
};

/// Exactly one element (paper: unitStep, used by filter's inner loops).
template <typename T>
struct UnitStepF {
  using value_type = T;
  T value;

  struct Stepper {
    T value;
    bool done = false;
    template <typename Sink>
    bool next(Sink&& sink) {
      if (done) return false;
      done = true;
      sink(value);
      return true;
    }
  };
  Stepper make() const { return Stepper{value, false}; }
};

/// Consecutive integers [lo, hi).
struct RangeStepF {
  using value_type = index_t;
  index_t lo = 0;
  index_t hi = 0;

  struct Stepper {
    index_t cur;
    index_t end;
    template <typename Sink>
    bool next(Sink&& sink) {
      if (cur >= end) return false;
      sink(cur++);
      return true;
    }
  };
  Stepper make() const { return Stepper{lo, hi}; }
};

/// Steps over a domain in canonical order, applying a lookup function:
/// the idxToStep conversion (paper Figure 1 "Conversions").
template <typename D, typename Fn>
struct FromIdxStepF {
  using value_type = decltype(std::declval<const Fn&>()(
      std::declval<IndexOf<D>>()));
  D dom;
  Fn at;

  // Domains iterate themselves; the stepper walks the canonical order by
  // materializing it lazily through ordinals.
  // Steppers own copies of the domain and lookup so they stay valid even
  // when the factory that made them was a temporary (e.g. inside a
  // concat_map inner loop).
  struct Stepper {
    D dom;
    Fn at;
    index_t ord;
    index_t end;
    template <typename Sink>
    bool next(Sink&& sink) {
      if (ord >= end) return false;
      sink(at(index_at(dom, ord)));
      ++ord;
      return true;
    }
  };
  Stepper make() const { return Stepper{dom, at, 0, dom.size()}; }

  static index_t index_at(Seq d, index_t ord) { return d.lo + ord; }
  static Index2 index_at(Dim2 d, index_t ord) {
    return Index2{d.y0 + ord / d.cols(), d.x0 + ord % d.cols()};
  }
  static Index3 index_at(Dim3 d, index_t ord) {
    index_t nx = d.x1 - d.x0;
    index_t ny = d.y1 - d.y0;
    return Index3{d.z0 + ord / (ny * nx), d.y0 + (ord / nx) % ny,
                  d.x0 + ord % nx};
  }
};

// -- combinators ----------------------------------------------------------------

/// Applies `g` to each element (mapStep).
template <typename SF, typename G>
struct MapStepF {
  using value_type =
      decltype(std::declval<const G&>()(std::declval<StepValue<SF>>()));
  SF base;
  G g;

  struct Stepper {
    decltype(std::declval<const SF&>().make()) inner;
    G g;  // owned copy: factories may be temporaries
    template <typename Sink>
    bool next(Sink&& sink) {
      return inner.next([&](auto&& v) {
        sink(g(std::forward<decltype(v)>(v)));
      });
    }
  };
  Stepper make() const { return Stepper{base.make(), g}; }
};

/// Keeps elements satisfying `p` (filterStep).
template <typename SF, typename P>
struct FilterStepF {
  using value_type = StepValue<SF>;
  SF base;
  P p;

  struct Stepper {
    decltype(std::declval<const SF&>().make()) inner;
    P p;  // owned copy: factories may be temporaries
    template <typename Sink>
    bool next(Sink&& sink) {
      for (;;) {
        bool delivered = false;
        bool produced = inner.next([&](auto&& v) {
          if (p(v)) {
            delivered = true;
            sink(std::forward<decltype(v)>(v));
          }
        });
        if (!produced) return false;   // base exhausted
        if (delivered) return true;    // element passed the filter
        // otherwise the element was rejected; pull again
      }
    }
  };
  Stepper make() const { return Stepper{base.make(), p}; }
};

/// Pairs corresponding elements; stops at the shorter input (zipStep).
template <typename SFA, typename SFB>
struct ZipStepF {
  using value_type = std::pair<StepValue<SFA>, StepValue<SFB>>;
  SFA a;
  SFB b;

  struct Stepper {
    decltype(std::declval<const SFA&>().make()) sa;
    decltype(std::declval<const SFB&>().make()) sb;
    template <typename Sink>
    bool next(Sink&& sink) {
      std::optional<StepValue<SFA>> va;
      std::optional<StepValue<SFB>> vb;
      if (!sa.next([&](auto&& v) { va.emplace(std::forward<decltype(v)>(v)); }))
        return false;
      if (!sb.next([&](auto&& v) { vb.emplace(std::forward<decltype(v)>(v)); }))
        return false;
      sink(value_type{std::move(*va), std::move(*vb)});
      return true;
    }
  };
  Stepper make() const { return Stepper{a.make(), b.make()}; }
};

/// Flattens: `g` maps each base element to a stepper *factory* whose
/// elements are emitted in order (concatMapStep). This is the engine behind
/// nested traversals when the outer loop is itself irregular.
template <typename SF, typename G>
struct ConcatMapStepF {
  using InnerF = decltype(std::declval<const G&>()(
      std::declval<StepValue<SF>>()));
  using value_type = StepValue<InnerF>;
  SF base;
  G g;

  struct Stepper {
    decltype(std::declval<const SF&>().make()) outer;
    G g;  // owned copy: factories may be temporaries
    std::optional<decltype(std::declval<const InnerF&>().make())> inner;

    template <typename Sink>
    bool next(Sink&& sink) {
      for (;;) {
        if (inner) {
          if (inner->next(sink)) return true;
          inner.reset();
        }
        bool advanced = outer.next([&](auto&& v) {
          inner.emplace(g(std::forward<decltype(v)>(v)).make());
        });
        if (!advanced) return false;
      }
    }
  };
  Stepper make() const { return Stepper{base.make(), g, std::nullopt}; }
};

// -- deduction helpers ----------------------------------------------------------

template <typename T>
UnitStepF<std::decay_t<T>> unit_step(T&& v) {
  return {std::forward<T>(v)};
}

template <typename SF, typename G>
MapStepF<SF, G> map_step(SF base, G g) {
  return {std::move(base), std::move(g)};
}

template <typename SF, typename P>
FilterStepF<SF, P> filter_step(SF base, P p) {
  return {std::move(base), std::move(p)};
}

template <typename SFA, typename SFB>
ZipStepF<SFA, SFB> zip_step(SFA a, SFB b) {
  return {std::move(a), std::move(b)};
}

template <typename SF, typename G>
ConcatMapStepF<SF, G> concat_map_step(SF base, G g) {
  return {std::move(base), std::move(g)};
}

}  // namespace triolet::core
