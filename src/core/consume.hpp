#pragma once

// Iterator consumers: reductions, histograms, and array builders.
//
// Consumers execute an iterator's tasks and collect results (paper §2).
// Each consumer inspects the iterator's parallelism hint:
//
//   kSeq            sequential loop nest (visit)
//   kLocal / kDist  threaded execution over the *outer* indexer via the
//                   work-stealing pool; per-thread partial results are
//                   combined at the end ("each thread computes its own
//                   private sum", §2; "sequentially builds one histogram per
//                   thread", §3.4)
//
// A kDist iterator consumed here (outside a cluster) uses all local threads;
// full two-level distributed execution is dist/skeletons.hpp, which slices
// the iterator across nodes and calls these consumers on each node's chunk.
// Iterators whose *outer* loop is a stepper cannot be parallelized (the
// paper's Figure 1: steppers are sequential) and always run sequentially.
//
// For parallel reductions the initial value must be an identity of the
// combining operation (it seeds every chunk).

#include <optional>
#include <vector>

#include "array/array.hpp"
#include "core/iter.hpp"
#include "runtime/parallel.hpp"
#include "support/timing.hpp"

namespace triolet::core {

namespace detail {

template <typename It>
constexpr bool parallelizable_v = is_indexed_outer_v<It>;

template <typename It>
bool wants_threads(const It& it) {
  if constexpr (parallelizable_v<It>) {
    return it.hint != ParHint::kSeq;
  } else {
    (void)it;
    return false;
  }
}

}  // namespace detail

// -- reductions -----------------------------------------------------------------

/// Folds all elements with `op` starting from `init`. For parallel hints,
/// `init` must be an identity of `op`; partials combine in ascending chunk
/// order (deterministic for a fixed grain).
template <typename It, typename T, typename Op>
T reduce(const It& it, T init, Op op) {
  static_assert(is_iter_v<It>);
  if constexpr (detail::parallelizable_v<It>) {
    if (it.hint != ParHint::kSeq) {
      auto& pool = runtime::current_pool();
      return runtime::parallel_reduce(
          pool, 0, it.size(), 0, init,
          [&](index_t a, index_t b, T acc) {
            visit_ordinals(it, a, b,
                           [&](auto&& v) { acc = op(std::move(acc), v); });
            return acc;
          },
          [&](T x, T y) { return op(std::move(x), std::move(y)); });
    }
  }
  T acc = std::move(init);
  visit(it, [&](auto&& v) { acc = op(std::move(acc), v); });
  return acc;
}

/// Sum of all elements (value-initialized zero as identity).
template <typename It>
auto sum(const It& it) {
  using T = typename It::value_type;
  return reduce(it, T{}, [](T a, const T& b) { return a + b; });
}

/// Generalized fold whose accumulator type differs from the element type:
/// `fold(acc, v)` absorbs one element, `combine(x, y)` merges two partial
/// accumulators (`init` must be an identity of `combine`). Parallel hints
/// use the chunked pool reduction; partials combine in ascending chunk
/// order, so the result is deterministic for a fixed grain.
template <typename It, typename T, typename Fold, typename Combine>
T fold_reduce(const It& it, T init, Fold fold, Combine combine) {
  static_assert(is_iter_v<It>);
  if constexpr (detail::parallelizable_v<It>) {
    if (it.hint != ParHint::kSeq) {
      auto& pool = runtime::current_pool();
      return runtime::parallel_reduce(
          pool, 0, it.size(), 0, init,
          [&](index_t a, index_t b, T acc) {
            visit_ordinals(it, a, b, [&](auto&& v) {
              acc = fold(std::move(acc), v);
            });
            return acc;
          },
          [&](T x, T y) { return combine(std::move(x), std::move(y)); });
    }
  }
  T acc = std::move(init);
  visit(it, [&](auto&& v) { acc = fold(std::move(acc), v); });
  return acc;
}

/// Smallest element as an optional (empty iterator -> nullopt). The
/// optional doubles as the identity, which lets parallel chunks and
/// distributed nodes with empty slices participate in the reduction.
template <typename It>
auto minimum_partial(const It& it) {
  using T = typename It::value_type;
  return fold_reduce(
      it, std::optional<T>{},
      [](std::optional<T> acc, const T& v) {
        if (!acc || v < *acc) acc = v;
        return acc;
      },
      [](std::optional<T> a, std::optional<T> b) {
        if (!a) return b;
        if (!b) return a;
        return *b < *a ? b : a;
      });
}

/// Largest element as an optional (empty iterator -> nullopt).
template <typename It>
auto maximum_partial(const It& it) {
  using T = typename It::value_type;
  return fold_reduce(
      it, std::optional<T>{},
      [](std::optional<T> acc, const T& v) {
        if (!acc || *acc < v) acc = v;
        return acc;
      },
      [](std::optional<T> a, std::optional<T> b) {
        if (!a) return b;
        if (!b) return a;
        return *a < *b ? b : a;
      });
}

/// (sum, count) pair for averaging; the zero pair is the identity.
template <typename It>
std::pair<double, index_t> average_partial(const It& it) {
  using P = std::pair<double, index_t>;
  return fold_reduce(
      it, P{0.0, 0},
      [](P acc, const auto& v) {
        acc.first += static_cast<double>(v);
        acc.second += 1;
        return acc;
      },
      [](P a, P b) { return P{a.first + b.first, a.second + b.second}; });
}

/// Number of elements (after any filtering / nesting).
template <typename It>
index_t count(const It& it) {
  return reduce(map(it, [](const auto&) { return index_t{1}; }), index_t{0},
                [](index_t a, index_t b) { return a + b; });
}

/// Smallest element (iterator must be non-empty). Parallel hints run the
/// threaded chunked reduction, like sum.
template <typename It>
auto minimum(const It& it) {
  auto best = minimum_partial(it);
  TRIOLET_CHECK(best.has_value(), "minimum of an empty iterator");
  return *best;
}

/// Largest element (iterator must be non-empty). Parallel hints run the
/// threaded chunked reduction, like sum.
template <typename It>
auto maximum(const It& it) {
  auto best = maximum_partial(it);
  TRIOLET_CHECK(best.has_value(), "maximum of an empty iterator");
  return *best;
}

/// Arithmetic mean of the elements as double (0.0 for an empty iterator).
/// Parallel hints run the threaded chunked reduction, like sum.
template <typename It>
double average(const It& it) {
  auto [acc, n] = average_partial(it);
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

/// True iff some element satisfies `p`. Sequential with early exit.
template <typename It, typename P>
bool any_of(const It& it, P&& p) {
  return !visit_while(it, [&](const auto& v) { return !p(v); });
}

/// True iff every element satisfies `p`. Sequential with early exit.
template <typename It, typename P>
bool all_of(const It& it, P&& p) {
  return visit_while(it, [&](const auto& v) { return static_cast<bool>(p(v)); });
}

template <typename It, typename P>
bool none_of(const It& it, P&& p) {
  return !any_of(it, p);
}

/// First element satisfying `p`, if any. Sequential with early exit.
template <typename It, typename P>
auto find_first(const It& it, P&& p) {
  using T = typename It::value_type;
  std::optional<T> found;
  visit_while(it, [&](const T& v) {
    if (p(v)) {
      found = v;
      return false;
    }
    return true;
  });
  return found;
}

// -- for_each -------------------------------------------------------------------

/// Applies `f` to every element. Under a parallel hint, `f` runs
/// concurrently on distinct elements and must be thread-safe; Triolet's
/// discipline of "no parallel access to mutable data structures" (§3.1) is
/// the caller's obligation here.
template <typename It, typename F>
void for_each(const It& it, F&& f) {
  static_assert(is_iter_v<It>);
  if constexpr (detail::parallelizable_v<It>) {
    if (it.hint != ParHint::kSeq) {
      auto& pool = runtime::current_pool();
      runtime::parallel_for(pool, 0, it.size(), 0,
                            [&](index_t a, index_t b) {
                              visit_ordinals(it, a, b, f);
                            });
      return;
    }
  }
  visit(it, f);
}

// -- histograms -----------------------------------------------------------------

/// Integer histogram: elements are bucket indices in [0, nbins).
/// Threaded execution privatizes one histogram per worker, then merges.
template <typename It>
Array1<std::int64_t> histogram(index_t nbins, const It& it) {
  static_assert(is_iter_v<It>);
  Array1<std::int64_t> out(nbins, 0);
  auto bump = [nbins](Array1<std::int64_t>& h, index_t bin) {
    TRIOLET_ASSERT(bin >= 0 && bin < nbins);
    h[bin] += 1;
  };
  // A one-worker pool gains nothing from privatization; fall through to the
  // sequential loop and skip the per-slot copies and the merge pass.
  if (detail::wants_threads(it) && runtime::current_pool().size() > 1) {
    auto& pool = runtime::current_pool();
    runtime::PerThread<Array1<std::int64_t>> priv(pool, out);
    if constexpr (detail::parallelizable_v<It>) {
      runtime::parallel_for(pool, 0, it.size(), 0, [&](index_t a, index_t b) {
        auto& h = priv.local();
        visit_ordinals(it, a, b, [&](index_t bin) { bump(h, bin); });
      });
    }
    for (const auto& h : priv.slots()) {
      for (index_t i = 0; i < nbins; ++i) out[i] += h[i];
    }
    return out;
  }
  visit(it, [&](index_t bin) { bump(out, bin); });
  return out;
}

/// Floating-point histogram (cutcp's core pattern): elements are
/// (cell, weight) pairs; weights accumulate into cells. Threaded execution
/// privatizes one grid per worker. Floating-point results may differ from
/// the sequential order by rounding (accumulation order within a worker
/// depends on chunk assignment).
template <typename F, typename It>
Array1<F> float_histogram(index_t ncells, const It& it) {
  static_assert(is_iter_v<It>);
  Array1<F> out(ncells, F{0});
  auto bump = [ncells](Array1<F>& h, const auto& cell_weight) {
    auto [cell, w] = cell_weight;
    TRIOLET_ASSERT(cell >= 0 && cell < ncells);
    h[cell] += static_cast<F>(w);
  };
  if (detail::wants_threads(it) && runtime::current_pool().size() > 1) {
    auto& pool = runtime::current_pool();
    runtime::PerThread<Array1<F>> priv(pool, out);
    if constexpr (detail::parallelizable_v<It>) {
      runtime::parallel_for(pool, 0, it.size(), 0, [&](index_t a, index_t b) {
        auto& h = priv.local();
        visit_ordinals(it, a, b, [&](const auto& cw) { bump(h, cw); });
      });
    }
    for (const auto& h : priv.slots()) {
      for (index_t i = 0; i < ncells; ++i) out[i] += h[i];
    }
    return out;
  }
  visit(it, [&](const auto& cw) { bump(out, cw); });
  return out;
}

// -- materialization --------------------------------------------------------------

/// Collects all elements into a vector in canonical order (sequential; the
/// collector conversion of Figure 1).
template <typename It>
auto to_vector(const It& it) {
  std::vector<typename It::value_type> out;
  visit(it, [&](auto&& v) { out.push_back(std::forward<decltype(v)>(v)); });
  return out;
}

/// Materializes a flat 1D indexer into an Array1 whose indices coincide with
/// the iterator's domain. Parallel hints fill disjoint ranges in place.
template <typename D, typename Src, typename Ext>
auto build_array1(const IdxFlatIter<D, Src, Ext>& it) {
  static_assert(std::is_same_v<D, Seq>, "build_array1 needs a 1D domain");
  using V = typename IdxFlatIter<D, Src, Ext>::value_type;
  Seq dom = it.ix.dom;
  Array1<V> out(dom.lo, std::vector<V>(static_cast<std::size_t>(dom.size())));
  auto fill = [&](index_t a, index_t b) {
    index_t ord = a;
    for_ordinal_range(dom, a, b, [&](index_t i) {
      out[dom.lo + ord] = it.ix.at(i);
      ++ord;
    });
  };
  if (it.hint != ParHint::kSeq) {
    runtime::parallel_for(runtime::current_pool(), 0, dom.size(), 0,
                          fill);
  } else {
    fill(0, dom.size());
  }
  return out;
}

/// A materialized rectangular block of a 2D computation: the unit a node
/// returns when building a distributed 2D result (sgemm's output blocks).
template <typename T>
struct Block2 {
  Dim2 dom{};
  std::vector<T> data;  // row-major over dom

  const T& at(Index2 i) const {
    TRIOLET_ASSERT(dom.contains(i));
    return data[static_cast<std::size_t>(dom.ordinal(i))];
  }
};

/// Materializes a flat 2D indexer into a Block2 covering its domain.
template <typename D, typename Src, typename Ext>
auto build_block2(const IdxFlatIter<D, Src, Ext>& it) {
  static_assert(std::is_same_v<D, Dim2>, "build_block2 needs a 2D domain");
  using V = typename IdxFlatIter<D, Src, Ext>::value_type;
  Dim2 dom = it.ix.dom;
  Block2<V> out{dom, std::vector<V>(static_cast<std::size_t>(dom.size()))};
  auto fill = [&](index_t a, index_t b) {
    index_t ord = a;
    for_ordinal_range(dom, a, b, [&](Index2 i) {
      out.data[static_cast<std::size_t>(ord)] = it.ix.at(i);
      ++ord;
    });
  };
  if (it.hint != ParHint::kSeq) {
    runtime::parallel_for(runtime::current_pool(), 0, dom.size(), 0,
                          fill);
  } else {
    fill(0, dom.size());
  }
  return out;
}

/// Materializes a flat 3D indexer into an Array3 (domain must start at the
/// origin: the dense-volume case cutcp's grid uses).
template <typename D, typename Src, typename Ext>
auto build_array3(const IdxFlatIter<D, Src, Ext>& it) {
  static_assert(std::is_same_v<D, Dim3>, "build_array3 needs a 3D domain");
  using V = typename IdxFlatIter<D, Src, Ext>::value_type;
  Dim3 dom = it.ix.dom;
  TRIOLET_CHECK(dom.z0 == 0 && dom.y0 == 0 && dom.x0 == 0,
                "build_array3 needs an origin-anchored domain");
  Array3<V> out(dom.z1, dom.y1, dom.x1);
  auto fill = [&](index_t a, index_t b) {
    index_t ord = a;
    for_ordinal_range(dom, a, b, [&](Index3 i) {
      out.storage()[static_cast<std::size_t>(ord)] = it.ix.at(i);
      ++ord;
    });
  };
  if (it.hint != ParHint::kSeq) {
    runtime::parallel_for(runtime::current_pool(), 0, dom.size(), 0, fill);
  } else {
    fill(0, dom.size());
  }
  return out;
}

/// Materializes a flat 2D indexer into an Array2 (domain must start at
/// column 0; rows keep their global offsets).
template <typename D, typename Src, typename Ext>
auto build_array2(const IdxFlatIter<D, Src, Ext>& it) {
  static_assert(std::is_same_v<D, Dim2>, "build_array2 needs a 2D domain");
  using V = typename IdxFlatIter<D, Src, Ext>::value_type;
  Dim2 dom = it.ix.dom;
  TRIOLET_CHECK(dom.x0 == 0, "build_array2 needs a full-width domain");
  Block2<V> block = build_block2(it);
  return Array2<V>(dom.y0, dom.rows(), dom.cols(), std::move(block.data));
}

// -- streaming ------------------------------------------------------------------

/// Feeds work arriving from elsewhere (demand-scheduler grants, resident
/// slice chunks) into a thread pool as it lands, instead of executing each
/// piece inline on the receiving thread: the node computes on chunk k while
/// chunk k+1 is still in flight. The submitting thread stays free to keep
/// receiving; `drain()` joins everything before results are combined.
///
/// Each submitted callable runs under a PoolScope for the consumer's pool,
/// so nested localpar consumers inside it (reduce/histogram on a grant's
/// slice) schedule onto the *same* pool the rank thread would have used —
/// which is what keeps per-atom results bitwise identical whether a chunk
/// ran inline or streamed. Submissions take the pool's boxed (heap) task
/// path — one allocation per chunk, amortized by the network latency the
/// chunk just paid.
///
/// Not thread-safe: one receiving thread submits, many workers execute.
class StreamingConsumer {
 public:
  explicit StreamingConsumer(runtime::ThreadPool& pool) : pool_(pool) {}
  ~StreamingConsumer() { drain(); }

  StreamingConsumer(const StreamingConsumer&) = delete;
  StreamingConsumer& operator=(const StreamingConsumer&) = delete;

  /// Enqueues `fn` on the pool. `fn` (and anything it references) must stay
  /// valid until drain() returns; callables submitted concurrently must be
  /// safe to run concurrently.
  template <typename Fn>
  void submit(Fn fn) {
    submitted_ += 1;
    pool_.submit(group_, [this, fn = std::move(fn)]() mutable {
      runtime::PoolScope scope(pool_);
      Stopwatch sw;
      fn();
      busy_ns_.fetch_add(static_cast<std::int64_t>(sw.seconds() * 1e9),
                         std::memory_order_relaxed);
    });
  }

  /// Blocks until every submitted callable has finished (helping the pool).
  void drain() { pool_.wait(group_); }

  /// Runs one queued pool task on the calling thread if one is available —
  /// the receiving thread's backpressure valve when too much is in flight.
  bool help() { return pool_.try_run_one(); }

  /// Submitted callables not yet finished.
  std::int64_t pending() const { return group_.pending(); }

  /// Total callables submitted so far.
  std::int64_t submitted() const { return submitted_; }

  /// Summed wall time spent inside submitted callables across all workers
  /// (may exceed elapsed time: workers run concurrently).
  double busy_seconds() const {
    return static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  runtime::ThreadPool& pool() { return pool_; }

 private:
  runtime::ThreadPool& pool_;
  runtime::TaskGroup group_;
  std::int64_t submitted_ = 0;
  std::atomic<std::int64_t> busy_ns_{0};
};

}  // namespace triolet::core

namespace triolet::serial {

template <typename T>
struct Codec<triolet::core::Block2<T>> {
  static void write(ByteWriter& w, const triolet::core::Block2<T>& b) {
    serial::write(w, b.dom);
    serial::write(w, b.data);
  }
  static void read(ByteReader& r, triolet::core::Block2<T>& b) {
    serial::read(r, b.dom);
    serial::read(r, b.data);
  }
};

}  // namespace triolet::serial
