#pragma once

// Plain-text reporting for the figure/table harnesses in bench/.
//
// Each harness reproduces one table or figure from the paper; `Table` prints
// the rows, and `AsciiChart` renders speedup-vs-cores series the way the
// paper's line plots do, so the shape of each figure is visible directly in
// terminal output.

#include <string>
#include <vector>

namespace triolet {

/// Fixed-width text table. Columns are sized to their widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `prec` digits after the point.
  static std::string num(double v, int prec = 3);
  static std::string num(std::int64_t v);

  /// Renders the table, one row per line, columns separated by two spaces.
  std::string str() const;

  /// Prints to stdout with a title line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named series for an ASCII line chart.
struct ChartSeries {
  std::string name;
  char glyph;                 // plotted character, e.g. 'T' for Triolet
  std::vector<double> xs;     // e.g. core counts
  std::vector<double> ys;     // e.g. speedups; NaN = missing point
};

/// Renders multiple series into a `width` x `height` character grid with
/// axes, mimicking the paper's speedup-over-cores figures.
class AsciiChart {
 public:
  AsciiChart(int width = 72, int height = 22) : width_(width), height_(height) {}

  void add(ChartSeries series) { series_.push_back(std::move(series)); }

  std::string str() const;
  void print(const std::string& title) const;

 private:
  int width_;
  int height_;
  std::vector<ChartSeries> series_;
};

}  // namespace triolet
