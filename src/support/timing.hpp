#pragma once

// Wall-clock timing utilities used by the benchmark harnesses and by the
// traced executor that feeds the cluster simulator.

#include <chrono>
#include <cstdint>
#include <vector>

namespace triolet {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed nanoseconds since construction or last reset().
  std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Summary statistics over repeated timing samples.
struct TimingStats {
  double min = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double max = 0.0;
  int samples = 0;
};

TimingStats summarize(std::vector<double> samples);

/// Times `fn` `repeats` times and returns summary statistics, running
/// `warmups` untimed calls first.
template <typename Fn>
TimingStats time_fn(Fn&& fn, int repeats = 5, int warmups = 1) {
  for (int i = 0; i < warmups; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.seconds());
  }
  return summarize(std::move(samples));
}

}  // namespace triolet
