#pragma once

// Always-on assertion macros. Skeleton code is assembled from many small
// components; precondition failures must fail loudly in Release builds too,
// because the benches run Release.

#include <cstdio>
#include <cstdlib>

namespace triolet {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "triolet: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace triolet

#define TRIOLET_ASSERT(expr)                                          \
  do {                                                                \
    if (!(expr)) ::triolet::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define TRIOLET_CHECK(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) ::triolet::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#if defined(__GNUC__)
#define TRIOLET_INLINE inline __attribute__((always_inline))
#define TRIOLET_NOINLINE __attribute__((noinline))
#else
#define TRIOLET_INLINE inline
#define TRIOLET_NOINLINE
#endif
