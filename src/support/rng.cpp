#include "support/rng.hpp"

#include <cmath>

namespace triolet {

double Xoshiro256::normal() {
  // Marsaglia polar method; loops rarely (acceptance ~0.785).
  for (;;) {
    double u = uniform(-1.0, 1.0);
    double v = uniform(-1.0, 1.0);
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace triolet
