#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/macros.hpp"

namespace triolet {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  TRIOLET_CHECK(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), str().c_str());
  std::fflush(stdout);
}

std::string AsciiChart::str() const {
  double xmax = 1.0, ymax = 1.0;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (std::isnan(s.ys[i])) continue;
      xmax = std::max(xmax, s.xs[i]);
      ymax = std::max(ymax, s.ys[i]);
    }
  }
  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  auto plot = [&](double x, double y, char g) {
    int col = static_cast<int>(std::lround(x / xmax * (width_ - 1)));
    int row = static_cast<int>(std::lround(y / ymax * (height_ - 1)));
    col = std::clamp(col, 0, width_ - 1);
    row = std::clamp(row, 0, height_ - 1);
    grid[static_cast<std::size_t>(height_ - 1 - row)]
        [static_cast<std::size_t>(col)] = g;
  };
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isnan(s.ys[i])) plot(s.xs[i], s.ys[i], s.glyph);
    }
  }
  std::ostringstream os;
  for (int r = 0; r < height_; ++r) {
    double yv = ymax * (height_ - 1 - r) / (height_ - 1);
    char label[16];
    std::snprintf(label, sizeof label, "%6.1f |", yv);
    os << label << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "       +" << std::string(static_cast<std::size_t>(width_), '-') << '\n';
  char xlab[64];
  std::snprintf(xlab, sizeof xlab, "       0%*s%.0f\n", width_ - 4, "", xmax);
  os << xlab;
  os << "  legend:";
  for (const auto& s : series_) os << "  " << s.glyph << "=" << s.name;
  os << '\n';
  return os.str();
}

void AsciiChart::print(const std::string& title) const {
  std::printf("\n-- %s --\n%s", title.c_str(), str().c_str());
  std::fflush(stdout);
}

}  // namespace triolet
