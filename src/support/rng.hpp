#pragma once

// Deterministic random number generation for workload synthesis.
//
// Every experiment in the repository is seeded, so benchmark inputs and the
// cluster simulator's straggler model are bit-reproducible across runs.

#include <cstdint>

namespace triolet {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repository's workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  using result_type = std::uint64_t;
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform float in [0, 1).
  float uniformf() { return static_cast<float>(next() >> 40) * 0x1.0p-24f; }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace triolet
