#include "support/timing.hpp"

#include <algorithm>
#include <numeric>

#include "support/macros.hpp"

namespace triolet {

TimingStats summarize(std::vector<double> samples) {
  TRIOLET_CHECK(!samples.empty(), "summarize() needs at least one sample");
  std::sort(samples.begin(), samples.end());
  TimingStats st;
  st.samples = static_cast<int>(samples.size());
  st.min = samples.front();
  st.max = samples.back();
  st.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
            static_cast<double>(samples.size());
  const std::size_t n = samples.size();
  st.median = (n % 2 == 1) ? samples[n / 2]
                           : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  return st;
}

}  // namespace triolet
