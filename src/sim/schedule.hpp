#pragma once

// Intra-node schedulers for the cluster simulator.
//
// A simulated node runs a bag of measured task durations on
// `cores_per_node` cores. The makespan depends on the scheduling policy the
// modelled system uses:
//
//   makespan_dynamic      tasks claimed in order by the earliest-free core —
//                         models Triolet's work stealing and OpenMP dynamic
//                         scheduling (fine-grained, even distribution)
//   makespan_static_block contiguous blocks of tasks pre-assigned to cores —
//                         models OpenMP default static scheduling and Eden's
//                         pre-split process farms
//   makespan_static_cyclic round-robin pre-assignment — OpenMP
//                         schedule(static,1), the tuned choice for skewed
//                         (e.g. triangular) loops
//   makespan_lpt          longest-processing-time greedy — an offline bound
//                         used by tests as a sanity reference
//
// StragglerModel perturbs task durations deterministically, reproducing the
// paper's observation that Eden tasks "occasionally run significantly slower
// than normal" (§4.2).

#include <algorithm>
#include <cstdint>
#include <vector>

namespace triolet::net {
struct CommStats;
struct SchedStats;
struct NodePoolStats;
}  // namespace triolet::net

namespace triolet::sim {

double makespan_dynamic(const std::vector<double>& tasks, int workers);
double makespan_static_block(const std::vector<double>& tasks, int workers);
/// Round-robin pre-assignment (OpenMP schedule(static,1)): task i goes to
/// core i mod workers. Balances monotone ramps like triangular loops.
double makespan_static_cyclic(const std::vector<double>& tasks, int workers);
double makespan_lpt(std::vector<double> tasks, int workers);

/// Demand-driven (request/grant) makespan, modelling the src/sched/
/// protocol: chunks are claimed in order by the earliest-free worker, and
/// every claim first pays `overhead` seconds of control round trip
/// (request up, grant down — see grant_overhead in network_model.hpp)
/// before the chunk executes. With overhead == 0 this degenerates to
/// makespan_dynamic; with large overheads it exposes the cost of
/// fine-grained (kDynamic) scheduling that guided grant-size decay
/// amortizes.
double makespan_demand(const std::vector<double>& chunks, int workers,
                       double overhead);

/// Demand-driven makespan with request prefetch (SchedOptions::prefetch):
/// a worker posts the request for chunk k+1 before executing chunk k, so
/// the control round trip overlaps the current chunk's compute. The next
/// chunk starts at max(finish_k, claim_k + overhead) — the round trip is
/// fully hidden whenever a chunk runs at least `overhead` seconds; only
/// each worker's first claim pays it unconditionally. With overhead == 0
/// this degenerates to makespan_dynamic, and it is never worse than
/// makespan_demand on the same inputs.
double makespan_overlap(const std::vector<double>& chunks, int workers,
                        double overhead);

/// Sum of task durations (the 1-worker makespan).
double total_work(const std::vector<double>& tasks);

/// Coefficient of variation (stddev / mean) of a measured task-duration
/// profile — the scalar skew figure the calibration carries for segmented
/// (ragged) workloads. 0 for uniform, empty, or degenerate profiles.
double cost_variation(const std::vector<double>& tasks);

// -- measured-counter calibration ---------------------------------------------
//
// The makespan models above take abstract chunk durations and a scalar claim
// overhead. Calibration closes the loop with the real runtime: one round of
// a scheduled skeleton leaves enough in CommStats/SchedStats/NodePoolStats
// (busy seconds, executed items, request->grant waits, grant payload bytes)
// to recover the model's compute / byte / latency coefficients, after which
// makespan_demand / makespan_overlap predict candidate configurations on the
// *measured* workload instead of an assumed one (the autotuner's core,
// src/sched/tuner.hpp).

/// Per-byte serialize+deliver cost assumed before any traffic is measured:
/// two passes over the payload at the NetworkModel default copy cost.
inline constexpr double kDefaultSecondsPerGrantByte = 2 * 0.25e-9;

/// Cost coefficients of the demand-scheduling model, recovered from one
/// round of measured counters (see calibrate_from).
struct Calibration {
  /// Mean compute cost of one outer-domain unit (busy_seconds over
  /// items_executed) — scales every candidate's chunk durations.
  double seconds_per_item = 0.0;
  /// Mean measured request->grant wait (idle_seconds over steal_waits): the
  /// full worker-perceived control round trip, including root service delay.
  double round_trip_seconds = 0.0;
  /// The share of the round trip attributed to the root serving between
  /// self-issued atoms (bounded by one atom of root compute; estimated as
  /// half the mean measured chunk). Streaming roots eliminate it.
  double service_delay_seconds = 0.0;
  /// round_trip minus service delay minus byte costs: the irreducible
  /// per-claim wire latency the model charges every candidate.
  double latency_seconds = 0.0;
  /// Serialize+deliver cost per grant payload byte; refined from the
  /// measured zero-copy share (zero-copy bytes pay one pass, copied bytes
  /// two).
  double seconds_per_grant_byte = kDefaultSecondsPerGrantByte;
  /// Grant payload bytes per granted outer unit (receiver-side measurement)
  /// — sizes candidate grants on the byte axis. Residency tokens shrink
  /// this, so the model automatically prices resident grants cheaper.
  double grant_bytes_per_item = 0.0;
  /// Intra-node pool tasks per outer unit (NodePoolStats) — how finely the
  /// node-level runtime subdivided the granted work; informational.
  double tasks_per_item = 0.0;
  /// Per-atom cost variation (cost_variation of the measured atom profile
  /// at the base grain). Dense uniform rounds fit ~0; segmented power-law
  /// rounds fit >> 0, and the tuner widens its exploration toward finer
  /// grains and demand policies when the skew is material (not filled by
  /// calibrate_from — the counters carry no per-atom data; the tuner sets
  /// it from its allgathered run samples).
  double cost_cv = 0.0;
  /// Sample mass behind the numbers (outer units measured). 0 = nothing
  /// measured; the calibration is not usable.
  std::int64_t items = 0;

  bool valid() const { return items > 0 && seconds_per_item > 0.0; }

  /// Modelled per-claim overhead of a candidate whose grants carry
  /// `grant_bytes` of payload while the root's self-issued atoms run
  /// `root_atom_seconds` each: wire latency + byte costs + (unless the root
  /// streams its atoms to the pool) half an atom of service delay.
  double overhead_for(double grant_bytes, double root_atom_seconds,
                      bool streaming_root) const {
    double oh = latency_seconds + grant_bytes * seconds_per_grant_byte;
    if (!streaming_root) oh += 0.5 * std::max(0.0, root_atom_seconds);
    return std::max(oh, 0.0);
  }
};

/// Recovers Calibration from (deltas of) one rank's or a whole cluster's
/// counters — typically the cluster-wide sum of per-rank
/// Comm::snapshot_stats() deltas over one scheduled round. Fields whose
/// inputs are absent (e.g. no request/grant traffic in a kStatic round)
/// stay at their defaults; callers carry forward previous values.
Calibration calibrate_from(const net::CommStats& comm,
                           const net::SchedStats& sched,
                           const net::NodePoolStats& pool);

struct StragglerModel {
  double probability = 0.0;  // chance a task is delayed
  double slowdown = 1.0;     // delayed tasks run this factor slower
  std::uint64_t seed = 0;

  /// Returns a perturbed copy of `tasks`; `salt` decorrelates different
  /// uses (e.g. different node counts) while staying deterministic.
  std::vector<double> apply(std::vector<double> tasks,
                            std::uint64_t salt) const;
};

}  // namespace triolet::sim
