#pragma once

// Intra-node schedulers for the cluster simulator.
//
// A simulated node runs a bag of measured task durations on
// `cores_per_node` cores. The makespan depends on the scheduling policy the
// modelled system uses:
//
//   makespan_dynamic      tasks claimed in order by the earliest-free core —
//                         models Triolet's work stealing and OpenMP dynamic
//                         scheduling (fine-grained, even distribution)
//   makespan_static_block contiguous blocks of tasks pre-assigned to cores —
//                         models OpenMP default static scheduling and Eden's
//                         pre-split process farms
//   makespan_static_cyclic round-robin pre-assignment — OpenMP
//                         schedule(static,1), the tuned choice for skewed
//                         (e.g. triangular) loops
//   makespan_lpt          longest-processing-time greedy — an offline bound
//                         used by tests as a sanity reference
//
// StragglerModel perturbs task durations deterministically, reproducing the
// paper's observation that Eden tasks "occasionally run significantly slower
// than normal" (§4.2).

#include <cstdint>
#include <vector>

namespace triolet::sim {

double makespan_dynamic(const std::vector<double>& tasks, int workers);
double makespan_static_block(const std::vector<double>& tasks, int workers);
/// Round-robin pre-assignment (OpenMP schedule(static,1)): task i goes to
/// core i mod workers. Balances monotone ramps like triangular loops.
double makespan_static_cyclic(const std::vector<double>& tasks, int workers);
double makespan_lpt(std::vector<double> tasks, int workers);

/// Demand-driven (request/grant) makespan, modelling the src/sched/
/// protocol: chunks are claimed in order by the earliest-free worker, and
/// every claim first pays `overhead` seconds of control round trip
/// (request up, grant down — see grant_overhead in network_model.hpp)
/// before the chunk executes. With overhead == 0 this degenerates to
/// makespan_dynamic; with large overheads it exposes the cost of
/// fine-grained (kDynamic) scheduling that guided grant-size decay
/// amortizes.
double makespan_demand(const std::vector<double>& chunks, int workers,
                       double overhead);

/// Demand-driven makespan with request prefetch (SchedOptions::prefetch):
/// a worker posts the request for chunk k+1 before executing chunk k, so
/// the control round trip overlaps the current chunk's compute. The next
/// chunk starts at max(finish_k, claim_k + overhead) — the round trip is
/// fully hidden whenever a chunk runs at least `overhead` seconds; only
/// each worker's first claim pays it unconditionally. With overhead == 0
/// this degenerates to makespan_dynamic, and it is never worse than
/// makespan_demand on the same inputs.
double makespan_overlap(const std::vector<double>& chunks, int workers,
                        double overhead);

/// Sum of task durations (the 1-worker makespan).
double total_work(const std::vector<double>& tasks);

struct StragglerModel {
  double probability = 0.0;  // chance a task is delayed
  double slowdown = 1.0;     // delayed tasks run this factor slower
  std::uint64_t seed = 0;

  /// Returns a perturbed copy of `tasks`; `salt` decorrelates different
  /// uses (e.g. different node counts) while staying deterministic.
  std::vector<double> apply(std::vector<double> tasks,
                            std::uint64_t salt) const;
};

}  // namespace triolet::sim
