#pragma once

// Event traces for the cluster simulator.
//
// A trace records, per simulated rank (= cluster node), the ordered sequence
// of operations the distributed algorithm performs: local computation
// (durations measured from real execution of the actual work), sends
// (byte counts measured from the real serializer), and receives. The
// simulator replays the trace against a NetworkModel to obtain the parallel
// makespan.

#include <cstdint>
#include <vector>

#include "sim/network_model.hpp"
#include "support/macros.hpp"

namespace triolet::sim {

enum class OpKind { kCompute, kSend, kRecv };

struct SimOp {
  OpKind kind;
  double seconds = 0.0;     // kCompute only
  int peer = -1;            // kSend: destination, kRecv: source
  std::int64_t bytes = 0;   // kSend only
};

class SimTrace {
 public:
  explicit SimTrace(int nranks) : ranks_(static_cast<std::size_t>(nranks)) {}

  int nranks() const { return static_cast<int>(ranks_.size()); }

  void compute(int rank, double seconds) {
    TRIOLET_ASSERT(seconds >= 0.0);
    if (seconds > 0.0) op(rank).push_back({OpKind::kCompute, seconds, -1, 0});
  }

  void send(int rank, int dst, std::int64_t bytes) {
    TRIOLET_ASSERT(dst >= 0 && dst < nranks() && dst != rank);
    op(rank).push_back({OpKind::kSend, 0.0, dst, bytes});
  }

  void recv(int rank, int src) {
    TRIOLET_ASSERT(src >= 0 && src < nranks() && src != rank);
    op(rank).push_back({OpKind::kRecv, 0.0, src, 0});
  }

  const std::vector<SimOp>& ops(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)];
  }

 private:
  std::vector<SimOp>& op(int rank) {
    TRIOLET_ASSERT(rank >= 0 && rank < nranks());
    return ranks_[static_cast<std::size_t>(rank)];
  }

  std::vector<std::vector<SimOp>> ranks_;
};

/// Result of replaying a trace.
struct SimResult {
  double makespan = 0.0;                // max finish time over ranks
  std::vector<double> rank_finish;      // per-rank finish times
  double total_bytes = 0.0;             // traffic volume
  double total_comm_busy = 0.0;         // CPU-seconds spent in send/recv busy
};

/// Replays `trace` against `net`. Messages between a (src, dst) pair match
/// in FIFO order; each rank's NIC serializes its outgoing transfers.
/// Aborts on deadlock (a recv whose send never happens).
SimResult simulate(const SimTrace& trace, const NetworkModel& net);

}  // namespace triolet::sim
