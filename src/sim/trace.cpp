#include "sim/trace.hpp"

#include <deque>
#include <map>
#include <utility>

namespace triolet::sim {

namespace {

struct Arrival {
  double time;
  std::int64_t bytes;
};

}  // namespace

SimResult simulate(const SimTrace& trace, const NetworkModel& net) {
  const int p = trace.nranks();
  std::vector<std::size_t> pc(static_cast<std::size_t>(p), 0);
  std::vector<double> t(static_cast<std::size_t>(p), 0.0);
  std::vector<double> nic_free(static_cast<std::size_t>(p), 0.0);
  std::map<std::pair<int, int>, std::deque<Arrival>> in_flight;

  SimResult result;

  // Round-robin fixpoint: each pass advances every rank as far as it can;
  // ranks blocked on a not-yet-simulated send make progress on a later pass.
  bool progress = true;
  bool done = false;
  while (progress && !done) {
    progress = false;
    done = true;
    for (int r = 0; r < p; ++r) {
      const auto& ops = trace.ops(r);
      auto& i = pc[static_cast<std::size_t>(r)];
      while (i < ops.size()) {
        const SimOp& op = ops[i];
        auto& tr = t[static_cast<std::size_t>(r)];
        if (op.kind == OpKind::kCompute) {
          tr += op.seconds;
        } else if (op.kind == OpKind::kSend) {
          const double busy = net.send_busy(op.bytes);
          result.total_comm_busy += busy;
          tr += busy;
          // The sender's NIC serializes its outgoing transfers.
          auto& nf = nic_free[static_cast<std::size_t>(r)];
          const double start = std::max(tr, nf);
          const double xfer = static_cast<double>(op.bytes) / net.bandwidth;
          nf = start + xfer;
          const double arrival = start + net.latency + xfer;
          in_flight[{r, op.peer}].push_back({arrival, op.bytes});
          result.total_bytes += static_cast<double>(op.bytes);
        } else {  // kRecv
          auto it = in_flight.find({op.peer, r});
          if (it == in_flight.end() || it->second.empty()) break;  // blocked
          const Arrival a = it->second.front();
          it->second.pop_front();
          const double busy = net.recv_busy(a.bytes);
          result.total_comm_busy += busy;
          tr = std::max(tr, a.time) + busy;
        }
        ++i;
        progress = true;
      }
      if (i < ops.size()) done = false;
    }
  }
  TRIOLET_CHECK(done, "simulated trace deadlocked: recv without matching send");

  result.rank_finish = t;
  for (double f : t) result.makespan = std::max(result.makespan, f);
  return result;
}

}  // namespace triolet::sim
