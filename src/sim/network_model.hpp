#pragma once

// Cost model for the simulated cluster interconnect.
//
// The reproduction host has a single physical core, so parallel wall-clock
// cannot be observed directly (see DESIGN.md). Instead, work chunks execute
// for real and the *schedule* is simulated. This model prices each message:
//
//   sender busy  : fixed + bytes * per-byte copy cost * alloc_multiplier
//   in flight    : latency + bytes / bandwidth  (NIC serializes transfers)
//   receiver busy: fixed + bytes * per-byte copy cost
//
// Constants are scaled to this reproduction's problem sizes: the inputs run
// ~1000x faster than the paper's Parboil datasets (see EXPERIMENTS.md), so
// per-message latencies and endpoint overheads are scaled down accordingly
// to keep communication/computation ratios representative of the paper's
// 10 GbE EC2 testbed. Absolute seconds in the figures are therefore not
// comparable to the paper; speedup curves are.
// `alloc_multiplier` models allocator overhead when constructing large
// messages: the paper attributes 40% (sgemm) / 60% (cutcp) of Triolet's
// 8-node overhead to garbage-collected allocation of tens-of-MB buffers;
// the Triolet runtime variant uses a multiplier > 1 for that reason, while
// the C+MPI+OpenMP variant sends from preallocated buffers (multiplier 1).

#include <cstdint>

namespace triolet::sim {

struct NetworkModel {
  double latency = 2e-6;                // seconds per message (scaled)
  double bandwidth = 5e9;               // bytes per second (scaled)
  double fixed_overhead = 2e-7;         // per-message CPU cost at an endpoint
  double copy_cost_per_byte = 0.25e-9;  // serialize/deserialize memcpy cost
  double alloc_multiplier = 1.0;        // >1 models GC-style allocation cost
  // GC overhead is a large-object phenomenon ("slow when allocating objects
  // comprising tens of megabytes", §4.3): the multiplier only applies to
  // messages above this size. 0 = apply to all messages.
  std::int64_t alloc_threshold_bytes = 0;

  // Eager/rendezvous protocol split, mirroring the in-process transport
  // (net/transport.hpp) and every MPI implementation: messages at or below
  // the threshold are copied into a preallocated bounce buffer and sent
  // immediately (one extra copy, no handshake); larger messages first
  // exchange a ready-to-send/clear-to-send handshake — one extra round-trip
  // latency on the wire — and then move without the bounce-buffer copy.
  std::int64_t eager_threshold_bytes = 4096;
  // Extra in-flight seconds a rendezvous handshake costs (RTS/CTS round
  // trip before payload transfer starts).
  double rendezvous_handshake = 4e-6;

  double multiplier_for(std::int64_t bytes) const {
    return bytes >= alloc_threshold_bytes ? alloc_multiplier : 1.0;
  }

  bool is_eager(std::int64_t bytes) const {
    return bytes <= eager_threshold_bytes;
  }

  double send_busy(std::int64_t bytes) const {
    // Eager sends pay the bounce-buffer copy; rendezvous sends transfer
    // straight out of the (already allocated) source buffer, so only the
    // allocator model applies there.
    const double copy_passes = is_eager(bytes) ? 2.0 : 1.0;
    return fixed_overhead + static_cast<double>(bytes) * copy_cost_per_byte *
                                copy_passes * multiplier_for(bytes);
  }
  double recv_busy(std::int64_t bytes) const {
    // Deserialization allocates the received object, so the same allocator
    // model applies at the receiver.
    return fixed_overhead + static_cast<double>(bytes) * copy_cost_per_byte *
                                multiplier_for(bytes);
  }
  double flight(std::int64_t bytes) const {
    const double handshake = is_eager(bytes) ? 0.0 : rendezvous_handshake;
    return latency + handshake + static_cast<double>(bytes) / bandwidth;
  }
};

/// Worker-perceived cost of one scheduler control round trip (src/sched/
/// request/grant protocol): the worker serializes and sends its request,
/// the request flies to the root, the root receives it, builds and sends
/// the grant, and the grant flies back and is deserialized. Root compute
/// time between poll iterations is not priced here — the scheduler bounds
/// it at one atom (see docs/INTERNALS.md "Distributed scheduling").
inline double grant_overhead(const NetworkModel& net,
                             std::int64_t request_bytes,
                             std::int64_t grant_bytes) {
  return net.send_busy(request_bytes) + net.flight(request_bytes) +
         net.recv_busy(request_bytes) + net.send_busy(grant_bytes) +
         net.flight(grant_bytes) + net.recv_busy(grant_bytes);
}

/// Virtual machine shape: `nodes` cluster nodes with `cores_per_node` cores,
/// mirroring the paper's 8-node x 16-core EC2 system.
struct MachineConfig {
  int nodes = 8;
  int cores_per_node = 16;
  NetworkModel net;

  int total_cores() const { return nodes * cores_per_node; }
};

}  // namespace triolet::sim
