#include "sim/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "net/comm.hpp"
#include "support/macros.hpp"
#include "support/rng.hpp"

namespace triolet::sim {

namespace {

/// Earliest-free-worker list scheduling over tasks in the given order.
double list_schedule(const std::vector<double>& tasks, int workers) {
  TRIOLET_CHECK(workers >= 1, "need at least one worker");
  // Min-heap of worker finish times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < workers; ++w) free_at.push(0.0);
  double makespan = 0.0;
  for (double d : tasks) {
    double start = free_at.top();
    free_at.pop();
    double finish = start + d;
    makespan = std::max(makespan, finish);
    free_at.push(finish);
  }
  return makespan;
}

}  // namespace

double makespan_dynamic(const std::vector<double>& tasks, int workers) {
  return list_schedule(tasks, workers);
}

double makespan_static_block(const std::vector<double>& tasks, int workers) {
  TRIOLET_CHECK(workers >= 1, "need at least one worker");
  const std::size_t n = tasks.size();
  double makespan = 0.0;
  for (int w = 0; w < workers; ++w) {
    const std::size_t lo = n * static_cast<std::size_t>(w) /
                           static_cast<std::size_t>(workers);
    const std::size_t hi = n * (static_cast<std::size_t>(w) + 1) /
                           static_cast<std::size_t>(workers);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += tasks[i];
    makespan = std::max(makespan, sum);
  }
  return makespan;
}

double makespan_static_cyclic(const std::vector<double>& tasks, int workers) {
  TRIOLET_CHECK(workers >= 1, "need at least one worker");
  std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    load[i % static_cast<std::size_t>(workers)] += tasks[i];
  }
  double makespan = 0.0;
  for (double l : load) makespan = std::max(makespan, l);
  return makespan;
}

double makespan_lpt(std::vector<double> tasks, int workers) {
  std::sort(tasks.begin(), tasks.end(), std::greater<>());
  return list_schedule(tasks, workers);
}

double makespan_demand(const std::vector<double>& chunks, int workers,
                       double overhead) {
  TRIOLET_CHECK(workers >= 1, "need at least one worker");
  TRIOLET_CHECK(overhead >= 0.0, "overhead must be non-negative");
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < workers; ++w) free_at.push(0.0);
  double makespan = 0.0;
  for (double d : chunks) {
    double start = free_at.top();
    free_at.pop();
    double finish = start + overhead + d;
    makespan = std::max(makespan, finish);
    free_at.push(finish);
  }
  return makespan;
}

double makespan_overlap(const std::vector<double>& chunks, int workers,
                        double overhead) {
  TRIOLET_CHECK(workers >= 1, "need at least one worker");
  TRIOLET_CHECK(overhead >= 0.0, "overhead must be non-negative");
  // Heap entries are the time each worker can *start* its next chunk: the
  // first claim waits for the initial request round trip; afterwards the
  // prefetched grant for chunk k+1 arrives at claim_k + overhead, in
  // parallel with chunk k executing until finish_k.
  std::priority_queue<double, std::vector<double>, std::greater<>> ready_at;
  for (int w = 0; w < workers; ++w) ready_at.push(overhead);
  double makespan = 0.0;
  for (double d : chunks) {
    double start = ready_at.top();
    ready_at.pop();
    double finish = start + d;
    makespan = std::max(makespan, finish);
    ready_at.push(std::max(finish, start + overhead));
  }
  return makespan;
}

double total_work(const std::vector<double>& tasks) {
  double sum = 0.0;
  for (double d : tasks) sum += d;
  return sum;
}

double cost_variation(const std::vector<double>& tasks) {
  if (tasks.size() < 2) return 0.0;
  double sum = 0.0;
  for (double d : tasks) sum += d;
  const double mean = sum / static_cast<double>(tasks.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (double d : tasks) var += (d - mean) * (d - mean);
  return std::sqrt(var / static_cast<double>(tasks.size())) / mean;
}

Calibration calibrate_from(const net::CommStats& comm,
                           const net::SchedStats& sched,
                           const net::NodePoolStats& pool) {
  Calibration c;
  c.items = sched.items_executed;
  if (sched.items_executed > 0 && sched.busy_seconds > 0.0) {
    c.seconds_per_item =
        sched.busy_seconds / static_cast<double>(sched.items_executed);
  }
  if (sched.items_executed > 0 && pool.tasks_executed > 0) {
    c.tasks_per_item = static_cast<double>(pool.tasks_executed) /
                       static_cast<double>(sched.items_executed);
  }
  if (sched.granted_items > 0) {
    c.grant_bytes_per_item =
        static_cast<double>(sched.grant_payload_bytes) /
        static_cast<double>(sched.granted_items);
  }
  // Byte coefficient: every delivered byte is copied once into the payload;
  // bytes staged through the serializer's copy stream pay a second pass.
  // The measured zero-copy share interpolates between the two.
  if (comm.bytes_sent > 0) {
    const double copied_frac = static_cast<double>(comm.bytes_copied) /
                               static_cast<double>(comm.bytes_sent);
    c.seconds_per_grant_byte = 0.25e-9 * (1.0 + copied_frac);
  }
  // Latency decomposition needs request/grant traffic; a round without it
  // (kStatic) leaves these at zero and the caller carries forward.
  if (sched.steal_waits > 0 && sched.idle_seconds > 0.0) {
    c.round_trip_seconds =
        sched.idle_seconds / static_cast<double>(sched.steal_waits);
    const double mean_chunk_seconds =
        sched.chunks_executed > 0
            ? sched.busy_seconds / static_cast<double>(sched.chunks_executed)
            : 0.0;
    c.service_delay_seconds =
        std::min(0.5 * mean_chunk_seconds, c.round_trip_seconds);
    const double mean_grant_bytes =
        sched.grants_received > 0
            ? static_cast<double>(sched.grant_payload_bytes) /
                  static_cast<double>(sched.grants_received)
            : 0.0;
    c.latency_seconds =
        std::max(0.0, c.round_trip_seconds - c.service_delay_seconds -
                          mean_grant_bytes * c.seconds_per_grant_byte);
  }
  return c;
}

std::vector<double> StragglerModel::apply(std::vector<double> tasks,
                                          std::uint64_t salt) const {
  if (probability <= 0.0 || slowdown <= 1.0) return tasks;
  Xoshiro256 rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
  for (double& d : tasks) {
    if (rng.uniform() < probability) d *= slowdown;
  }
  return tasks;
}

}  // namespace triolet::sim
