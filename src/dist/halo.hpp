#pragma once

// Halo (ghost-cell) exchange for row-decomposed stencil grids.
//
// Dense scheduled skeletons move *task* data; stencils need the opposite: a
// rank keeps its slab resident forever and per sweep trades only the
// boundary rows with its two neighbors. `halo_exchange` is that trade as an
// async skeleton:
//
//   * Each rank owns global rows [y0, y1) of an ny x nx grid, stored in an
//     Array2<T> widened by `radius` ghost rows on each interior edge
//     (make_halo_slab). Row-major storage makes every row band one
//     contiguous span, so sends reuse the PR 3 zero-copy iovec path: the
//     boundary band is a borrowed segment gathered straight into the
//     delivered payload — never staged through the serializer.
//   * The exchange is split-phase for overlap: constructing a HaloExchange
//     posts both irecvs and both isends and returns immediately; the caller
//     computes its interior rows (which need no ghosts) while the progress
//     engine serializes, ships, and matches in the background, then calls
//     finish() to land the ghosts and compute the boundary. halo_sweep
//     packages that order for Jacobi-style (read cur, write next) sweeps.
//   * Traffic is O(boundary), not O(slab): 2 messages of radius*nx cells
//     per interior rank per sweep, counted in CommStats.views (halo_bytes,
//     ghost_cells, halo_messages) with the interior-compute window that hid
//     the transfer in halo_overlap_seconds.
//
// Tags live in the user band (below net::kJobUserTagLimit), so halo jobs
// compose with the service layer's tag fold; sweeps alternate tag parity so
// a rank running ahead can never match round k+1's band to round k's recv.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <utility>

#include "array/array.hpp"
#include "net/comm.hpp"
#include "serial/bytes.hpp"
#include "support/macros.hpp"

namespace triolet::dist {

/// Base tag of the halo band (user tag space; +0 / +1 alternate by sweep).
inline constexpr int kTagHaloBase = 110;

/// One rank's slab of a row-decomposed 2D grid: owned global rows [y0, y1),
/// plus `radius` ghost rows past each edge that has a neighbor.
template <typename T>
struct HaloSlab {
  static_assert(std::is_trivially_copyable_v<T>,
                "halo bands ship as raw bytes");

  Array2<T> grid;      // global rows [y0 - (prev?radius:0), y1 + (next?radius:0))
  index_t y0 = 0;      // first owned row (global)
  index_t y1 = 0;      // one past the last owned row
  index_t radius = 1;  // stencil radius in rows
  int prev = -1;       // rank owning the rows below y0 (-1: physical edge)
  int next = -1;       // rank owning the rows at/after y1 (-1: physical edge)

  index_t rows() const { return y1 - y0; }
  index_t cols() const { return grid.cols(); }
};

/// Even row partition of an ny x nx grid over `size` ranks, ghost rows
/// allocated on interior edges. Every rank must own at least `radius` rows
/// (its boundary band is what the neighbor's ghosts are filled from).
template <typename T>
HaloSlab<T> make_halo_slab(index_t ny, index_t nx, index_t radius, int rank,
                           int size, T fill = T{}) {
  TRIOLET_CHECK(ny > 0 && nx > 0 && radius > 0 && size > 0, "bad slab shape");
  const index_t y0 = ny * rank / size;
  const index_t y1 = ny * (rank + 1) / size;
  const int prev = rank > 0 ? rank - 1 : -1;
  const int next = rank + 1 < size ? rank + 1 : -1;
  TRIOLET_CHECK(y1 - y0 >= radius,
                "halo slab owns fewer rows than the stencil radius");
  const index_t glo = prev >= 0 ? radius : 0;
  const index_t ghi = next >= 0 ? radius : 0;
  const index_t rows = (y1 + ghi) - (y0 - glo);
  return HaloSlab<T>{
      Array2<T>(y0 - glo, rows, nx,
                std::vector<T>(static_cast<std::size_t>(rows * nx), fill)),
      y0, y1, radius, prev, next};
}

/// One split-phase neighbor exchange over a slab. Constructing posts the
/// receives and the zero-copy sends; finish() lands the ghost bands into
/// the grid and settles the counters. The slab's grid must stay alive and
/// its boundary bands unmodified until finish() returns (the Jacobi
/// read-cur/write-next discipline gives this for free).
template <typename T>
class HaloExchange {
 public:
  HaloExchange(net::Comm& comm, HaloSlab<T>& slab, int tag = kTagHaloBase)
      : comm_(&comm), slab_(&slab), tag_(tag) {
    auto& g = slab.grid;
    // Post receives first so an eager neighbor's band always finds a match.
    if (slab.prev >= 0) rv_prev_ = comm.irecv(slab.prev, tag);
    if (slab.next >= 0) rv_next_ = comm.irecv(slab.next, tag);
    if (slab.prev >= 0) {
      sd_prev_ = send_band(slab.prev, g, slab.y0, slab.radius);
    }
    if (slab.next >= 0) {
      sd_next_ = send_band(slab.next, g, slab.y1 - slab.radius, slab.radius);
    }
    comm.view_stats().halo_exchanges += 1;
    begin_ = std::chrono::steady_clock::now();
  }

  HaloExchange(const HaloExchange&) = delete;
  HaloExchange& operator=(const HaloExchange&) = delete;
  ~HaloExchange() { finish(); }

  /// Waits the neighbor bands, copies them into the ghost rows, waits the
  /// outgoing sends, and charges the compute window since construction as
  /// overlap. Idempotent.
  void finish() {
    if (finished_) return;
    finished_ = true;
    const bool pending = slab_->prev >= 0 || slab_->next >= 0;
    if (pending) {
      const auto mid = std::chrono::steady_clock::now();
      comm_->view_stats().halo_overlap_seconds +=
          std::chrono::duration<double>(mid - begin_).count();
    }
    if (slab_->prev >= 0) {
      recv_band(rv_prev_, slab_->y0 - slab_->radius);
    }
    if (slab_->next >= 0) {
      recv_band(rv_next_, slab_->y1);
    }
    sd_prev_.wait();
    sd_next_.wait();
  }

 private:
  net::PendingSend send_band(int dst, const Array2<T>& g, index_t y_first,
                             index_t rows) {
    const index_t cols = g.cols();
    auto w = serial::ByteWriter::segmented();
    w.write_pod<std::int64_t>(y_first);
    w.write_pod<std::int64_t>(rows);
    w.write_pod<std::int64_t>(cols);
    const std::size_t nbytes =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
        sizeof(T);
    w.write_borrowable(g.row(y_first).data(), nbytes);
    auto& vs = comm_->view_stats();
    vs.halo_messages += 1;
    vs.halo_bytes += static_cast<std::int64_t>(w.size());
    // No keepalive: the slab outlives finish(), which waits this send.
    return comm_->isend_segments(dst, tag_, w.take_segments(), nullptr);
  }

  void recv_band(net::PendingRecv& rv, index_t y_first) {
    net::Message& m = rv.wait();
    serial::ByteReader r(m.payload);
    const auto yf = r.read_pod<std::int64_t>();
    const auto rows = r.read_pod<std::int64_t>();
    const auto cols = r.read_pod<std::int64_t>();
    TRIOLET_CHECK(yf == y_first && rows == slab_->radius &&
                      cols == slab_->grid.cols(),
                  "halo band shape mismatch");
    const std::size_t nbytes =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols) *
        sizeof(T);
    auto src = r.borrow(nbytes);
    std::memcpy(slab_->grid.row(y_first).data(), src.data(), nbytes);
    comm_->view_stats().ghost_cells += rows * cols;
  }

  net::Comm* comm_;
  HaloSlab<T>* slab_;
  int tag_;
  net::PendingRecv rv_prev_, rv_next_;
  net::PendingSend sd_prev_, sd_next_;
  std::chrono::steady_clock::time_point begin_{};
  bool finished_ = false;
};

/// One overlapped Jacobi-style sweep: exchange cur's halo while computing
/// the interior rows (which need no ghosts), then land the ghosts and
/// compute the boundary rows. `stencil(grid, y, x)` reads cur.grid —
/// clamping at physical edges is the stencil's business — and its result is
/// written to next.grid(y, x). `sweep_index` alternates the tag parity.
template <typename T, typename F>
void halo_sweep(net::Comm& comm, const HaloSlab<T>& cur, HaloSlab<T>& next,
                F&& stencil, std::int64_t sweep_index = 0) {
  TRIOLET_CHECK(cur.y0 == next.y0 && cur.y1 == next.y1 &&
                    cur.radius == next.radius,
                "halo_sweep slabs must be partitioned identically");
  // The exchange mutates only cur's *ghost* rows; the owned rows — and the
  // boundary bands the engine is gathering — stay read-only all sweep.
  auto& xcur = const_cast<HaloSlab<T>&>(cur);
  HaloExchange<T> hx(comm, xcur,
                     kTagHaloBase + static_cast<int>(sweep_index & 1));
  const index_t ilo = cur.y0 + (cur.prev >= 0 ? cur.radius : 0);
  const index_t ihi = cur.y1 - (cur.next >= 0 ? cur.radius : 0);
  for (index_t y = ilo; y < ihi; ++y) {
    for (index_t x = 0; x < cur.cols(); ++x) {
      next.grid(y, x) = stencil(cur.grid, y, x);
    }
  }
  hx.finish();
  for (index_t y = cur.y0; y < ilo; ++y) {
    for (index_t x = 0; x < cur.cols(); ++x) {
      next.grid(y, x) = stencil(cur.grid, y, x);
    }
  }
  for (index_t y = ihi; y < cur.y1; ++y) {
    for (index_t x = 0; x < cur.cols(); ++x) {
      next.grid(y, x) = stencil(cur.grid, y, x);
    }
  }
}

}  // namespace triolet::dist
