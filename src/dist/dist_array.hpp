#pragma once

// Resident distributed data: persistent handles whose slices are cached on
// the ranks that received them, so an iterative skeleton loop stops paying
// the full scatter cost every round.
//
// The paper's `slice()` protocol (§3.5) computes *which* bytes each node
// needs; this header makes the placement itself a persistent object:
//
//   * `DistArray<T>` owns an Array1<T> plus a process-unique identity and a
//     version counter bumped on mutation. `from_resident(d)` builds an
//     ordinary core:: iterator over it — every existing skeleton call site
//     works unchanged; only the wire format of its slices differs.
//   * `ResidentSource<T>` is the iterator source: a shared view of the
//     array that narrows [lo, hi) under slice_source without copying (the
//     plain Array1 source copies its sub-range on every slice). Its codec
//     consults the thread-local residency encoder/decoder (serial/
//     residency.hpp): with a scope installed, a slice the receiver already
//     holds travels as an 8-byte checksum token instead of its payload.
//   * `DistContext<C>` / `ResidentCtx<C>` give broadcast contexts the same
//     treatment — an unchanged closure context is shipped once and then
//     tokenized, which matters for map_with loops whose context is big.
//
// Wire format of one resident slice (after the id/version/range header):
//   kind 0: inline payload (write_borrowable -> zero-copy eligible)
//   kind 1: u64 stream checksum of the payload the receiver must hold.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "array/array.hpp"
#include "core/iter.hpp"
#include "core/skeletons.hpp"
#include "serial/residency.hpp"
#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet::dist {

/// Iterator source over a resident array: a shared, zero-copy view of
/// [lo, hi) carrying the owning DistArray's identity.
template <typename T>
struct ResidentSource {
  std::shared_ptr<const Array1<T>> data;
  index_t lo = 0;
  index_t hi = 0;
  std::uint64_t id = 0;
  std::uint64_t version = 0;

  const T& operator[](index_t i) const { return (*data)[i]; }

  serial::SliceKey key() const { return {id, version, lo, hi}; }

  /// Raw element bytes of this view — the payload the residency cache
  /// stores and checksums.
  std::span<const std::byte> payload_bytes() const {
    const T* p = data->data() + (lo - data->lo());
    return std::as_bytes(
        std::span<const T>(p, static_cast<std::size_t>(hi - lo)));
  }

  bool operator==(const ResidentSource& o) const {
    if (id != o.id || version != o.version || lo != o.lo || hi != o.hi) {
      return false;
    }
    if (!data || !o.data) return !data == !o.data;
    for (index_t i = lo; i < hi; ++i) {
      if (!((*data)[i] == (*o.data)[i])) return false;
    }
    return true;
  }
};

/// Narrowing a resident view shares the array — no copy, unlike the
/// Array1 source whose slice_source copies the sub-range.
template <typename T>
ResidentSource<T> slice_source(const ResidentSource<T>& s, core::Seq,
                               core::Seq sub) {
  TRIOLET_CHECK(sub.lo >= s.lo && sub.hi <= s.hi && sub.lo <= sub.hi,
                "resident slice out of range");
  return {s.data, sub.lo, sub.hi, s.id, s.version};
}

/// Extractor for resident iterators (the Array1Ext analogue).
struct ResidentExt {
  template <typename T>
  T operator()(const ResidentSource<T>& s, index_t i) const {
    return s[i];
  }
};

/// Persistent, identity-carrying owner of a distributed array. Move-only:
/// the identity maps to this object in the process-wide provider registry
/// (receivers fetch authoritative bytes from it on a cache miss).
///
/// Mutation contract: call mutate() to get a writable reference — it bumps
/// the version, so every rank's cached slices of older versions are retired
/// and the next scatter re-ships the data. Do not mutate while sends over
/// this array are still in flight (the same buffer-stability contract as
/// MPI_Isend; the write-time stream checksum turns a violation into a
/// validation failure at the receiver instead of silent corruption).
template <typename T>
class DistArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "DistArray elements must be trivially copyable (the slice "
                "cache stores raw element bytes)");

 public:
  explicit DistArray(Array1<T> data)
      : array_(std::make_shared<Array1<T>>(std::move(data))),
        version_(std::make_shared<std::atomic<std::uint64_t>>(1)) {
    id_ = serial::ResidentProviderRegistry::instance().register_provider(
        [array = std::weak_ptr<const Array1<T>>(array_),
         version = std::weak_ptr<const std::atomic<std::uint64_t>>(version_)](
            const serial::SliceKey& key) {
          auto a = array.lock();
          auto v = version.lock();
          TRIOLET_CHECK(a && v, "resident fetch after DistArray destroyed");
          TRIOLET_CHECK(key.version == v->load(std::memory_order_acquire),
                        "resident fetch for a retired version");
          TRIOLET_CHECK(key.lo >= a->lo() && key.hi <= a->hi() &&
                            key.lo <= key.hi,
                        "resident fetch out of range");
          const T* p = a->data() + (key.lo - a->lo());
          const auto bytes = std::as_bytes(std::span<const T>(
              p, static_cast<std::size_t>(key.hi - key.lo)));
          return std::vector<std::byte>(bytes.begin(), bytes.end());
        });
  }

  ~DistArray() {
    if (id_ != 0) serial::ResidentProviderRegistry::instance().unregister(id_);
  }

  DistArray(DistArray&& o) noexcept
      : array_(std::move(o.array_)), version_(std::move(o.version_)),
        id_(std::exchange(o.id_, 0)) {}
  DistArray& operator=(DistArray&& o) noexcept {
    if (this != &o) {
      if (id_ != 0) {
        serial::ResidentProviderRegistry::instance().unregister(id_);
      }
      array_ = std::move(o.array_);
      version_ = std::move(o.version_);
      id_ = std::exchange(o.id_, 0);
    }
    return *this;
  }
  DistArray(const DistArray&) = delete;
  DistArray& operator=(const DistArray&) = delete;

  const Array1<T>& array() const { return *array_; }
  std::uint64_t id() const { return id_; }
  std::uint64_t version() const {
    return version_->load(std::memory_order_acquire);
  }

  /// Stable autotuning key for scheduled skeletons over this array: the
  /// several reductions of one iterative job that share the array should
  /// share one sched::AutoTuner, so their rounds accumulate into the same
  /// calibration (SchedOptions::tune_key; see dist::auto_options).
  std::uint64_t tune_key() const { return id_; }

  /// Writable access; bumps the version so cached slices are invalidated.
  Array1<T>& mutate() {
    version_->fetch_add(1, std::memory_order_acq_rel);
    return *array_;
  }

  /// The iterator source over the full array at the current version.
  ResidentSource<T> source() const {
    return {array_, array_->lo(), array_->hi(), id_, version()};
  }

 private:
  std::shared_ptr<Array1<T>> array_;
  std::shared_ptr<std::atomic<std::uint64_t>> version_;
  std::uint64_t id_ = 0;
};

/// Iterator over a resident array — a drop-in replacement for
/// core::from_array(d.array()) whose slices participate in the residency
/// protocol.
template <typename T>
auto from_resident(const DistArray<T>& d) {
  auto src = d.source();
  const core::Seq dom{src.lo, src.hi};
  return core::idx_flat(dom, std::move(src), ResidentExt{});
}

/// Wire-side holder of a resident broadcast context: like core::Bcast, but
/// carrying an identity + version so an unchanged context is tokenized
/// after its first trip to each rank. Built by DistContext::ctx().
template <typename C>
struct ResidentCtx {
  std::shared_ptr<const C> value;
  std::uint64_t id = 0;
  std::uint64_t version = 0;

  bool operator==(const ResidentCtx& o) const {
    if (id != o.id || version != o.version) return false;
    if (!value || !o.value) return !value == !o.value;
    return *value == *o.value;
  }
};

template <typename C, typename D>
ResidentCtx<C> slice_source(const ResidentCtx<C>& c, D, D) {
  return c;
}

/// Uniform context access (found by ADL from core::CtxExt).
template <typename C>
const C& ctx_get(const ResidentCtx<C>& c) {
  TRIOLET_CHECK(c.value != nullptr, "ctx_get on an empty ResidentCtx");
  return *c.value;
}

/// Persistent owner of a broadcast context (the closure-environment
/// analogue of DistArray). update() installs a new value and bumps the
/// version; an unchanged context is shipped once per rank and tokenized on
/// every later round.
template <typename C>
class DistContext {
 public:
  explicit DistContext(C value) : value_(std::make_shared<Holder>()) {
    value_->value = std::make_shared<const C>(std::move(value));
    id_ = serial::ResidentProviderRegistry::instance().register_provider(
        [holder = std::weak_ptr<const Holder>(value_)](
            const serial::SliceKey& key) {
          auto h = holder.lock();
          TRIOLET_CHECK(h, "resident fetch after DistContext destroyed");
          TRIOLET_CHECK(
              key.version == h->version.load(std::memory_order_acquire),
              "resident fetch for a retired context version");
          auto bytes = serial::to_bytes(*h->value);
          TRIOLET_CHECK(key.lo == 0 &&
                            key.hi == static_cast<std::int64_t>(bytes.size()),
                        "resident context fetch with wrong byte range");
          return bytes;
        });
  }

  ~DistContext() {
    if (id_ != 0) serial::ResidentProviderRegistry::instance().unregister(id_);
  }

  DistContext(DistContext&& o) noexcept
      : value_(std::move(o.value_)), id_(std::exchange(o.id_, 0)) {}
  DistContext& operator=(DistContext&& o) noexcept {
    if (this != &o) {
      if (id_ != 0) {
        serial::ResidentProviderRegistry::instance().unregister(id_);
      }
      value_ = std::move(o.value_);
      id_ = std::exchange(o.id_, 0);
    }
    return *this;
  }
  DistContext(const DistContext&) = delete;
  DistContext& operator=(const DistContext&) = delete;

  const C& value() const { return *value_->value; }
  std::uint64_t version() const {
    return value_->version.load(std::memory_order_acquire);
  }

  /// Stable autotuning key for scheduled skeletons parameterized by this
  /// context (SchedOptions::tune_key; see DistArray::tune_key). Stays fixed
  /// across update() calls — version bumps retire cached *data*, not the
  /// tuner's accumulated calibration.
  std::uint64_t tune_key() const { return id_; }

  /// Replaces the context value; the version bump retires cached copies.
  void update(C v) {
    value_->value = std::make_shared<const C>(std::move(v));
    value_->version.fetch_add(1, std::memory_order_acq_rel);
  }

  /// The wire-side holder to pass to map_with.
  ResidentCtx<C> ctx() const { return {value_->value, id_, version()}; }

 private:
  struct Holder {
    std::shared_ptr<const C> value;
    std::atomic<std::uint64_t> version{1};
  };

  std::shared_ptr<Holder> value_;
  std::uint64_t id_ = 0;
};

/// map_with whose context is resident: the context holder crosses the wire
/// as-is (tokenized after its first trip) instead of being wrapped in
/// Bcast. Found by ADL alongside core::map_with; more specialized, so it
/// wins for ResidentCtx arguments.
template <typename D, typename Src, typename Ext, typename C, typename F>
auto map_with(const core::IdxFlatIter<D, Src, Ext>& it, ResidentCtx<C> ctx,
              F f) {
  return core::idx_flat(it.ix.dom, std::pair(it.ix.src, std::move(ctx)),
                        core::CtxExt<Ext, F>{it.ix.ext.fn(), f}, it.hint);
}

/// Convenience: pass the DistContext itself.
template <typename D, typename Src, typename Ext, typename C, typename F>
auto map_with(const core::IdxFlatIter<D, Src, Ext>& it,
              const DistContext<C>& ctx, F f) {
  return map_with(it, ctx.ctx(), std::move(f));
}

}  // namespace triolet::dist

namespace triolet::core {

// Resident leaves of the source-residency trait (see core/sources.hpp).
template <typename T>
struct source_uses_residency<triolet::dist::ResidentSource<T>>
    : std::true_type {};
template <typename C>
struct source_uses_residency<triolet::dist::ResidentCtx<C>> : std::true_type {
};

}  // namespace triolet::core

namespace triolet::serial {

template <typename T>
struct use_custom_codec<triolet::dist::ResidentSource<T>> : std::true_type {};

template <typename T>
struct Codec<triolet::dist::ResidentSource<T>> {
  using S = triolet::dist::ResidentSource<T>;

  static void write(ByteWriter& w, const S& s) {
    TRIOLET_CHECK(s.data != nullptr, "serializing an empty ResidentSource");
    w.write_pod(s.id);
    w.write_pod(s.version);
    w.write_pod(s.lo);
    w.write_pod(s.hi);
    const auto payload = s.payload_bytes();
    // Empty slices always go inline: a zero-byte token buys nothing and an
    // empty cache entry is indistinguishable from a metadata-only one.
    if (auto* enc = payload.empty() ? nullptr : current_residency_encoder()) {
      if (auto token = enc->try_token(s.key(), payload)) {
        w.write_pod<std::uint8_t>(1);  // resident grant: checksum token only
        w.write_pod<std::uint64_t>(*token);
        return;
      }
    }
    w.write_pod<std::uint8_t>(0);  // inline payload (zero-copy eligible)
    w.write_borrowable(payload.data(), payload.size());
  }

  static void read(ByteReader& r, S& s) {
    const auto id = r.read_pod<std::uint64_t>();
    const auto version = r.read_pod<std::uint64_t>();
    const auto lo = r.read_pod<index_t>();
    const auto hi = r.read_pod<index_t>();
    const auto kind = r.read_pod<std::uint8_t>();
    const serial::SliceKey key{id, version, lo, hi};
    const std::size_t nbytes =
        static_cast<std::size_t>(hi - lo) * sizeof(T);
    std::vector<T> elems(static_cast<std::size_t>(hi - lo));
    auto* dec = current_residency_decoder();
    if (kind == 0) {
      const auto raw = r.borrow(nbytes);
      if (nbytes != 0) std::memcpy(elems.data(), raw.data(), nbytes);
      if (dec != nullptr && nbytes != 0) dec->store(key, raw);
    } else {
      const auto token = r.read_pod<std::uint64_t>();
      TRIOLET_CHECK(dec != nullptr,
                    "resident token received without a decode scope");
      dec->resolve(key, token,
                   std::as_writable_bytes(std::span<T>(elems)));
    }
    s = S{std::make_shared<Array1<T>>(lo, std::move(elems)), lo, hi, id,
          version};
  }
};

template <typename C>
struct use_custom_codec<triolet::dist::ResidentCtx<C>> : std::true_type {};

template <typename C>
struct Codec<triolet::dist::ResidentCtx<C>> {
  using S = triolet::dist::ResidentCtx<C>;

  static void write(ByteWriter& w, const S& s) {
    TRIOLET_CHECK(s.value != nullptr, "serializing an empty ResidentCtx");
    w.write_pod(s.id);
    w.write_pod(s.version);
    // The context is serialized to a flat side buffer first: its byte
    // length defines the slice key ([0, len)), and the inline path copies
    // it into the stream (a borrowed segment would dangle — the side
    // buffer dies before the gather).
    const std::vector<std::byte> bytes = to_bytes(*s.value);
    const std::uint64_t len = bytes.size();
    w.write_pod(len);
    const serial::SliceKey key{s.id, s.version, 0,
                               static_cast<std::int64_t>(len)};
    if (auto* enc = bytes.empty() ? nullptr : current_residency_encoder()) {
      if (auto token = enc->try_token(key, bytes)) {
        w.write_pod<std::uint8_t>(1);
        w.write_pod<std::uint64_t>(*token);
        return;
      }
    }
    w.write_pod<std::uint8_t>(0);
    w.write_raw(bytes.data(), bytes.size());
  }

  static void read(ByteReader& r, S& s) {
    const auto id = r.read_pod<std::uint64_t>();
    const auto version = r.read_pod<std::uint64_t>();
    const auto len = static_cast<std::size_t>(r.read_pod<std::uint64_t>());
    const auto kind = r.read_pod<std::uint8_t>();
    const serial::SliceKey key{id, version, 0,
                               static_cast<std::int64_t>(len)};
    auto* dec = current_residency_decoder();
    std::vector<std::byte> bytes(len);
    if (kind == 0) {
      r.read_raw(bytes.data(), len);
      if (dec != nullptr && len != 0) dec->store(key, bytes);
    } else {
      const auto token = r.read_pod<std::uint64_t>();
      TRIOLET_CHECK(dec != nullptr,
                    "resident token received without a decode scope");
      dec->resolve(key, token, bytes);
    }
    s = S{std::make_shared<const C>(from_bytes<C>(bytes)), id, version};
  }
};

}  // namespace triolet::serial
