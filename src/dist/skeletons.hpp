#pragma once

// Two-level distributed skeletons (paper §2, §3.4, §3.5).
//
// These run SPMD under a net::Cluster with one rank per cluster node:
//
//   1. The root splits the iterator's domain into contiguous node chunks,
//      slices the iterator per chunk — each slice's data source holds only
//      the sub-arrays that chunk touches — serializes the sliced iterator
//      (fused loop body + data) and sends it to the owning node.
//   2. Every node re-hints its chunk to `localpar` and runs the threaded
//      consumer from core/consume.hpp: work-stealing threads with private
//      per-thread accumulators.
//   3. Per-node partial results are combined along net::Comm's binomial
//      reduce tree: each interior node merges two contiguous-rank partials,
//      so the root's combine work and received bytes are O(log P) instead
//      of O(P) (deterministic fixed-tree order; see docs/INTERNALS.md
//      "Collective algorithms").
//
// Iterator construction happens only at the root: callers pass a `make`
// callable invoked on rank 0, so non-root ranks never need the input data —
// they receive their slice over the wire. (All ranks share the closure
// *type*, which is how the same binary can deserialize the task; see
// DESIGN.md on the closure-serialization substitution.)

#include "core/consume.hpp"
#include "core/skeletons.hpp"
#include "dist/dist_array.hpp"
#include "net/comm.hpp"
#include "net/residency.hpp"
#include "sched/scheduler.hpp"

namespace triolet::dist {

using core::index_t;

inline constexpr int kTagTask = 100;
/// Tag base for the overlapped partial-result combine tree (one tag per
/// tree round, user band).
inline constexpr int kTagPartial = 101;

/// Per-node threaded runtime. Each SPMD rank constructs one of these at the
/// top of its body: the rank gets a private work-stealing pool (its "cores")
/// and a PoolScope that routes this thread's localpar consumers onto it.
/// Keeping pools per node prevents one node's idle threads from executing
/// another node's tasks, which both matches real cluster semantics and keeps
/// per-thread private accumulators disjoint between nodes.
struct NodeRuntime {
  explicit NodeRuntime(int threads_per_node)
      : pool(threads_per_node), scope(pool) {}

  runtime::ThreadPool pool;
  runtime::PoolScope scope;
};

namespace detail {

/// Root slices + scatters; every rank returns its own localpar-hinted chunk.
/// The root posts every remote slice as an isend before touching its own
/// chunk: serialization and delivery of P-1 slices run on the progress
/// engine, overlapped with the root's local compute (slices own their data,
/// so dropping the handles is safe; send errors resurface at the root's
/// next blocking receive — the combine step).
template <typename MakeIter>
auto scatter_chunks(net::Comm& comm, MakeIter&& make) {
  using It = decltype(make());
  // Residency-aware path: iterators over resident sources (DistArray /
  // DistContext) consult the per-destination cache model while serializing,
  // so a slice the receiver already holds shrinks to a checksum token. The
  // serialization runs eagerly on the rank thread (cheap: bulk array bytes
  // become borrowed segments, not copies) under the per-destination encode
  // scope; the gather and delivery still overlap on the progress engine,
  // with the sliced iterator kept alive alongside the pending send.
  constexpr bool kResident = core::iter_uses_residency_v<It>;
  if (comm.rank() == 0) {
    It it = make();
    auto chunks = core::split_blocks(it.domain(), comm.size());
    if constexpr (kResident) {
      if (comm.residency_enabled()) {
        net::install_residency_fetch_service(comm);
        for (int r = 1; r < comm.size(); ++r) {
          auto slice = std::make_shared<It>(
              it.slice(chunks[static_cast<std::size_t>(r)]));
          serial::SegmentedBytes sg;
          {
            net::ResidencyEncodeScope scope(
                comm, r,
                core::iter_is_fused_view_v<It> ? &comm.view_stats() : nullptr);
            sg = serial::to_segments(*slice);
          }
          (void)comm.isend_segments(r, kTagTask, std::move(sg),
                                    std::move(slice));
        }
        return core::localpar(it.slice(chunks[0]));
      }
    }
    for (int r = 1; r < comm.size(); ++r) {
      (void)comm.isend(r, kTagTask,
                       it.slice(chunks[static_cast<std::size_t>(r)]));
    }
    return core::localpar(it.slice(chunks[0]));
  }
  if constexpr (kResident) {
    if (comm.residency_enabled()) {
      net::ResidencyDecodeScope scope(comm, /*owner=*/0);
      return core::localpar(comm.recv<It>(0, kTagTask));
    }
  }
  return core::localpar(comm.recv<It>(0, kTagTask));
}

/// Binomial-tree combine of per-node partials to rank 0 with the *same*
/// fixed parenthesization as Comm::reduce rooted at 0 (bitwise identical
/// results), but overlapped: every child's receive is posted before the
/// local fold runs, so child partials queue while this node still computes,
/// and each interior node folds them in fixed mask order as they complete.
/// `fold` computes this node's own partial (the threaded local reduction);
/// non-root ranks return a default T.
template <typename Fold, typename Op>
auto combine_tree(net::Comm& comm, Fold&& fold, Op op) {
  using T = std::remove_cvref_t<decltype(fold())>;
  const int p = comm.size();
  const int r = comm.rank();
  // Children of r are r + 2^k for each k below r's lowest set bit; the
  // parent link is r - lowest_set_bit(r).
  std::vector<net::PendingRecv> children;
  int parent = -1, parent_round = 0;
  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    if (r & mask) {
      parent = r - mask;
      parent_round = round;
      break;
    }
    if (r + mask < p) {
      children.push_back(comm.irecv(r + mask, kTagPartial + round));
    }
  }
  T acc = fold();
  // Fixed fold order (ascending mask = ascending contiguous rank block),
  // the determinism contract shared with Comm::reduce.
  for (auto& child : children) {
    acc = op(std::move(acc), child.get<T>());
  }
  if (parent >= 0) {
    comm.send(parent, kTagPartial + parent_round, acc);
    return T{};
  }
  return acc;
}

}  // namespace detail

/// Distributed reduction. `init` must be an identity of `op`. Returns the
/// result on rank 0; other ranks get a default-constructed T.
template <typename MakeIter, typename T, typename Op>
T reduce(net::Comm& comm, MakeIter&& make, T init, Op op) {
  auto local = detail::scatter_chunks(comm, make);
  // Overlapped combine: child partials are claimed while the local threaded
  // fold runs; parenthesization matches Comm::reduce bit for bit.
  return detail::combine_tree(
      comm, [&] { return core::reduce(local, std::move(init), op); }, op);
}

/// Distributed sum (rank 0 gets the result).
template <typename MakeIter>
auto sum(net::Comm& comm, MakeIter&& make) {
  using T = typename decltype(make())::value_type;
  return reduce(comm, make, T{}, [](T a, const T& b) { return a + b; });
}

/// Distributed minimum (rank 0 gets the result; iterator must be non-empty
/// on at least the root's own chunk for the fold seed to exist on every
/// node — use reduce with an explicit bound for sparse cases).
template <typename MakeIter>
auto minimum(net::Comm& comm, MakeIter&& make) {
  using T = typename decltype(make())::value_type;
  auto local = detail::scatter_chunks(comm, make);
  // Per-node threaded minimum over a possibly-empty chunk: the optional
  // carries "no elements" through both the thread pool and the reduce tree.
  std::optional<T> part = core::minimum_partial(local);
  auto combined = comm.reduce(
      part,
      [](std::optional<T> a, std::optional<T> b) {
        if (!a) return b;
        if (!b) return a;
        return *b < *a ? b : a;
      },
      0);
  if (comm.rank() != 0) return T{};
  TRIOLET_CHECK(combined.has_value(), "minimum of an empty iterator");
  return *combined;
}

/// Distributed maximum (rank 0 gets the result).
template <typename MakeIter>
auto maximum(net::Comm& comm, MakeIter&& make) {
  using T = typename decltype(make())::value_type;
  auto local = detail::scatter_chunks(comm, make);
  std::optional<T> part = core::maximum_partial(local);
  auto combined = comm.reduce(
      part,
      [](std::optional<T> a, std::optional<T> b) {
        if (!a) return b;
        if (!b) return a;
        return *a < *b ? b : a;
      },
      0);
  if (comm.rank() != 0) return T{};
  TRIOLET_CHECK(combined.has_value(), "maximum of an empty iterator");
  return *combined;
}

/// Distributed arithmetic mean (rank 0 gets the result; 0.0 when empty).
template <typename MakeIter>
double average(net::Comm& comm, MakeIter&& make) {
  auto local = detail::scatter_chunks(comm, make);
  auto part = core::average_partial(local);
  auto combined = comm.reduce(
      part,
      [](std::pair<double, index_t> a, std::pair<double, index_t> b) {
        return std::pair<double, index_t>{a.first + b.first,
                                          a.second + b.second};
      },
      0);
  if (comm.rank() != 0) return 0.0;
  return combined.second == 0
             ? 0.0
             : combined.first / static_cast<double>(combined.second);
}

/// Distributed element count.
template <typename MakeIter>
index_t count(net::Comm& comm, MakeIter&& make) {
  auto local = detail::scatter_chunks(comm, make);
  index_t partial = core::count(local);
  return comm.reduce(partial, [](index_t a, index_t b) { return a + b; }, 0);
}

namespace detail {

/// Elementwise-sum combiner for partial histograms/grids. Applied at each
/// interior node of the reduce tree, so partial arrays merge pairwise down
/// log2(P) levels instead of all P accumulating at the root.
template <typename A>
A sum_arrays(A a, const A& b) {
  TRIOLET_CHECK(a.size() == b.size(), "partial histogram size mismatch");
  auto* pa = a.data();
  const auto* pb = b.data();
  const index_t n = a.size();
  for (index_t i = 0; i < n; ++i) pa[i] += pb[i];
  return a;
}

}  // namespace detail

/// Distributed integer histogram: one threaded histogram per node, partial
/// histograms combined along the reduce tree ("a distributed reduction,
/// which performs one threaded reduction per node, which sequentially
/// builds one histogram per thread", §3.4).
template <typename MakeIter>
Array1<std::int64_t> histogram(net::Comm& comm, index_t nbins,
                               MakeIter&& make) {
  auto local = detail::scatter_chunks(comm, make);
  return detail::combine_tree(
      comm, [&] { return core::histogram(nbins, local); },
      detail::sum_arrays<Array1<std::int64_t>>);
}

/// Distributed floating-point histogram (cutcp's pattern). The output-grid
/// summation dominates cutcp's scaling (paper §4.5); combining partial
/// grids pairwise along the binomial reduce tree caps the root's share at
/// ceil(log2 P) grid receives + sums instead of P-1.
template <typename F, typename MakeIter>
Array1<F> float_histogram(net::Comm& comm, index_t ncells, MakeIter&& make) {
  auto local = detail::scatter_chunks(comm, make);
  return detail::combine_tree(
      comm, [&] { return core::float_histogram<F>(ncells, local); },
      detail::sum_arrays<Array1<F>>);
}

/// Distributed materialization of a 1D indexer: node chunks are built with
/// threads, gathered along the binomial tree, and block-copied into place
/// at the root. Each part is a contiguous base-offset-tagged range, so
/// assembly is one std::copy per part (the serializer already moves the
/// payload as one block for trivially copyable V).
template <typename MakeIter>
auto build_array1(net::Comm& comm, MakeIter&& make) {
  auto local = detail::scatter_chunks(comm, make);
  using V = typename decltype(local)::value_type;
  Array1<V> part = core::build_array1(local);
  std::vector<Array1<V>> parts = comm.gather(part, 0);
  if (comm.rank() != 0) return Array1<V>{};
  index_t lo = parts.front().lo(), hi = parts.front().hi();
  for (const auto& p : parts) {
    lo = std::min(lo, p.lo());
    hi = std::max(hi, p.hi());
  }
  Array1<V> out(lo, std::vector<V>(static_cast<std::size_t>(hi - lo)));
  for (const auto& p : parts) {
    std::copy_n(p.data(), static_cast<std::size_t>(p.size()),
                out.data() + (p.lo() - lo));
  }
  return out;
}

/// Distributed materialization of a 2D indexer via block decomposition:
/// each node computes one rectangular block (threads fill it in place) and
/// the root assembles the full matrix. With an outerproduct iterator this
/// is the paper's 2D block-distributed sgemm.
template <typename MakeIter>
auto build_array2(net::Comm& comm, MakeIter&& make) {
  // scatter_chunks dispatches on the domain type: a Dim2 domain splits into
  // the near-square block grid of core::split_blocks(Dim2, nodes).
  auto local = detail::scatter_chunks(comm, make);
  using V = typename decltype(local)::value_type;
  core::Block2<V> block = core::build_block2(local);
  std::vector<core::Block2<V>> blocks = comm.gather(block, 0);
  if (comm.rank() != 0) return Array2<V>{};
  core::Dim2 full{};
  bool first = true;
  for (const auto& b : blocks) {
    if (first) {
      full = b.dom;
      first = false;
    } else {
      full.y0 = std::min(full.y0, b.dom.y0);
      full.y1 = std::max(full.y1, b.dom.y1);
      full.x0 = std::min(full.x0, b.dom.x0);
      full.x1 = std::max(full.x1, b.dom.x1);
    }
  }
  TRIOLET_CHECK(full.x0 == 0, "build_array2 needs a full-width 2D domain");
  Array2<V> out(full.y0, full.rows(), full.cols(), std::vector<V>(
      static_cast<std::size_t>(full.size())));
  // Blocks are row-major over their own domain: copy one contiguous row
  // segment at a time instead of indexing element by element.
  for (const auto& b : blocks) {
    const index_t bw = b.dom.cols();
    if (bw == 0) continue;
    for (index_t y = b.dom.y0; y < b.dom.y1; ++y) {
      const V* src = b.data.data() +
                     static_cast<std::size_t>((y - b.dom.y0) * bw);
      std::copy_n(src, static_cast<std::size_t>(bw), &out(y, b.dom.x0));
    }
  }
  return out;
}

// -- scheduled variants -------------------------------------------------------
//
// Every consumer above also accepts a sched::SchedOptions to choose how
// chunks map to ranks (src/sched/): kStatic pushes one pre-assigned run per
// rank, kGuided/kDynamic run the demand-driven request/grant protocol.
// These overloads delegate to the scheduler for *all* policies — including
// kStatic — so the decomposition is identical across policies (outer-axis
// atoms; for 2D domains that means row bands rather than the near-square
// block grid of the no-options overloads above).
//
// With opts.streaming (kGuided/kDynamic), each granted chunk executes on
// the rank's node pool via core::StreamingConsumer instead of inline on
// the rank thread, so chunk k computes while grant k+1 is on the wire.
// Streaming changes where a chunk runs, never what is folded: kOrdered
// results stay bitwise identical with it on or off.

/// Options for the model-driven scheduler (SchedulePolicy::kAuto,
/// src/sched/tuner.hpp): the first round of the keyed job runs an
/// instrumented measurement configuration, and every later round runs
/// whatever concrete policy/grain/prefetch/streaming combination the
/// calibrated sim:: model predicts fastest — zero per-workload flags.
/// Skeletons that pass the same `tune_key` on the same Comm share one
/// tuner, so the several reductions of one iterative job accumulate into
/// one calibration; DistArray::tune_key() / DistContext::tune_key() are
/// the natural keys for resident-data loops.
inline sched::SchedOptions auto_options(std::uint64_t tune_key = 0) {
  sched::SchedOptions opts;
  opts.policy = sched::SchedulePolicy::kAuto;
  opts.tune_key = tune_key;
  return opts;
}

/// Distributed reduction under an explicit schedule policy.
template <typename MakeIter, typename T, typename Op>
T reduce(net::Comm& comm, MakeIter&& make, T init, Op op,
         const sched::SchedOptions& opts) {
  return sched::map_reduce(comm, std::forward<MakeIter>(make),
                           std::move(init), op, opts);
}

/// Distributed sum under an explicit schedule policy.
template <typename MakeIter>
auto sum(net::Comm& comm, MakeIter&& make, const sched::SchedOptions& opts) {
  return sched::sum(comm, std::forward<MakeIter>(make), opts);
}

/// Distributed element count under an explicit schedule policy.
template <typename MakeIter>
index_t count(net::Comm& comm, MakeIter&& make,
              const sched::SchedOptions& opts) {
  return sched::count(comm, std::forward<MakeIter>(make), opts);
}

/// Distributed integer histogram under an explicit schedule policy.
template <typename MakeIter>
Array1<std::int64_t> histogram(net::Comm& comm, index_t nbins,
                               MakeIter&& make,
                               const sched::SchedOptions& opts) {
  return sched::histogram(comm, nbins, std::forward<MakeIter>(make), opts);
}

/// Distributed floating-point histogram under an explicit schedule policy.
template <typename F, typename MakeIter>
Array1<F> float_histogram(net::Comm& comm, index_t ncells, MakeIter&& make,
                          const sched::SchedOptions& opts) {
  return sched::float_histogram<F>(comm, ncells, std::forward<MakeIter>(make),
                                   opts);
}

/// Distributed 1D materialization under an explicit schedule policy.
template <typename MakeIter>
auto build_array1(net::Comm& comm, MakeIter&& make,
                  const sched::SchedOptions& opts) {
  return sched::build_array1(comm, std::forward<MakeIter>(make), opts);
}

/// Distributed 2D materialization under an explicit schedule policy
/// (row-band decomposition; the domain must still be full-width).
template <typename MakeIter>
auto build_array2(net::Comm& comm, MakeIter&& make,
                  const sched::SchedOptions& opts) {
  return sched::build_array2(comm, std::forward<MakeIter>(make), opts);
}

}  // namespace triolet::dist
