#pragma once

// Segmented (ragged) resident distributed arrays — CSR-style offsets+values
// with segment-aware chunking.
//
// The dense DistArray assumes every outer index costs the same; sparse and
// ragged workloads (CSR matvec, adjacency lists, ragged batches) break that
// twice over: items are variable-length, and a power-law length
// distribution concentrates most of the work in a few segments. This header
// makes such sources first-class distributed data:
//
//   * `SegmentedDistArray<T>` owns two resident arrays — `offsets`
//     (nsegs + 1 CSR boundaries) and `values` (the concatenated payloads) —
//     so both halves inherit DistArray identity/versioning and their slices
//     tokenize independently through the residency protocol.
//   * Its iteration domain is a `core::SegSeq`: segments grouped into
//     *value-balanced* outer units (core::segment_cuts), so scheduler atoms
//     split on value count, not segment count. A jumbo segment becomes its
//     own oversized unit (segments never split — they are the correctness
//     atom); the residual skew from such units is exactly what the demand
//     policies rebalance, and the per-unit weights ride on the domain as
//     the cost-variance hint for auto_grain_for.
//   * `from_segmented(a)` yields an ordinary core:: iterator whose elements
//     are `Segment<T>` views (global segment index + contiguous value
//     span); every existing skeleton and the scheduled ones compose with it
//     unchanged. Slicing narrows both resident leaves zero-copy: a granted
//     atom ships (or tokenizes) only its own offsets window and value range.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/domains.hpp"
#include "dist/dist_array.hpp"
#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet::dist {

/// One segment of a segmented source: its global index and a contiguous
/// view of its values (borrowed from the source; valid while the iterator
/// lives, like every extractor result).
template <typename T>
struct Segment {
  index_t index = 0;
  std::span<const T> values;

  index_t size() const { return static_cast<index_t>(values.size()); }
  const T& operator[](index_t k) const {
    return values[static_cast<std::size_t>(k)];
  }
  auto begin() const { return values.begin(); }
  auto end() const { return values.end(); }
};

/// Iterator source over a segmented resident array: two resident leaves.
/// `offsets` covers global segment boundaries [seg_lo, seg_hi] (one more
/// entry than segments), `values` covers [offsets[seg_lo], offsets[seg_hi]).
template <typename T>
struct SegmentedSource {
  ResidentSource<index_t> offsets;
  ResidentSource<T> values;

  Segment<T> segment(index_t s) const {
    const index_t b = offsets[s];
    const index_t e = offsets[s + 1];
    const T* base = values.data->data() + (b - values.data->lo());
    return Segment<T>{s, std::span<const T>(base,
                                            static_cast<std::size_t>(e - b))};
  }

  bool operator==(const SegmentedSource& o) const {
    return offsets == o.offsets && values == o.values;
  }
};

/// Narrowing a segmented view slices both leaves zero-copy: the offsets
/// window of the sub-domain's segments and exactly the value range those
/// segments cover. Works for empty sub-domains anchored anywhere in the
/// parent window (u0 == u1 at a real cut boundary).
template <typename T>
SegmentedSource<T> slice_source(const SegmentedSource<T>& s,
                                const core::SegSeq& old,
                                const core::SegSeq& sub) {
  TRIOLET_CHECK(sub.seg_lo() >= old.seg_lo() && sub.seg_hi() <= old.seg_hi(),
                "segmented slice out of range");
  const index_t s0 = sub.seg_lo();
  const index_t s1 = sub.seg_hi();
  auto off = slice_source(s.offsets, core::Seq{}, core::Seq{s0, s1 + 1});
  const index_t v0 = s.offsets[s0];
  const index_t v1 = s.offsets[s1];
  auto val = slice_source(s.values, core::Seq{}, core::Seq{v0, v1});
  return {std::move(off), std::move(val)};
}

/// Extractor for segmented iterators (the ResidentExt analogue): yields the
/// whole segment as a value — consumers fold over `seg.values`.
struct SegmentExt {
  template <typename T>
  Segment<T> operator()(const SegmentedSource<T>& s, index_t seg) const {
    return s.segment(seg);
  }
};

/// Persistent, identity-carrying owner of a CSR (offsets, values) pair.
/// Move-only like its two DistArray members. The outer-unit decomposition
/// (value-balanced cuts + per-unit weights) is computed once at
/// construction as a pure function of (offsets, value_grain) — never of
/// rank or thread counts — so every rank and every policy derives the
/// identical atom decomposition (the kOrdered invariant).
template <typename T>
class SegmentedDistArray {
 public:
  /// Target number of outer units when `value_grain` is 0: enough units
  /// that eight-atoms-per-rank scheduling has slack at any realistic rank
  /// count, few enough that unit bookkeeping stays negligible.
  static constexpr index_t kDefaultUnitTarget = 1024;

  /// `offsets` is the CSR boundary vector (offsets[0] == 0, monotone,
  /// offsets[nsegs] == values.size()); `value_grain` is the target value
  /// count per outer unit (0 = values/kDefaultUnitTarget, floored at 1).
  SegmentedDistArray(std::vector<index_t> offsets, std::vector<T> values,
                     index_t value_grain = 0)
      : nsegs_(check(offsets, values)),
        value_grain_(value_grain > 0
                         ? value_grain
                         : std::max<index_t>(
                               1, static_cast<index_t>(values.size()) /
                                      kDefaultUnitTarget)),
        offsets_(Array1<index_t>::from(std::move(offsets))),
        values_(Array1<T>::from(std::move(values))) {
    auto cuts = std::make_shared<std::vector<index_t>>(
        core::segment_cuts(offsets_.array().span(), value_grain_));
    weights_ = std::make_shared<const std::vector<index_t>>(
        core::segment_weights(offsets_.array().span(), *cuts));
    cuts_ = std::move(cuts);
  }

  index_t segments() const { return nsegs_; }
  index_t value_count() const { return offsets_.array()[nsegs_]; }
  index_t value_grain() const { return value_grain_; }

  const Array1<index_t>& offsets_array() const { return offsets_.array(); }
  const Array1<T>& values_array() const { return values_.array(); }

  /// The value-balanced segmented iteration domain (outer units carry their
  /// value weights as the scheduler's cost-variance hint).
  core::SegSeq domain() const {
    return core::SegSeq{0, static_cast<index_t>(cuts_->size()) - 1, cuts_,
                        weights_};
  }

  /// The iterator source over both resident halves at current versions.
  SegmentedSource<T> source() const {
    return {offsets_.source(), values_.source()};
  }

  /// Stable autotuning key (see DistArray::tune_key): rounds over this
  /// array share one calibration.
  std::uint64_t tune_key() const { return values_.tune_key(); }

  /// Writable value access; bumps the values version so cached value
  /// slices are retired (the offsets — and the decomposition — are fixed:
  /// changing the shape means building a new SegmentedDistArray).
  Array1<T>& mutate_values() { return values_.mutate(); }

 private:
  static index_t check(const std::vector<index_t>& offsets,
                       const std::vector<T>& values) {
    TRIOLET_CHECK(!offsets.empty() && offsets.front() == 0,
                  "CSR offsets must start at 0");
    for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
      TRIOLET_CHECK(offsets[s] <= offsets[s + 1],
                    "CSR offsets must be monotone");
    }
    TRIOLET_CHECK(offsets.back() == static_cast<index_t>(values.size()),
                  "CSR offsets must end at the value count");
    return static_cast<index_t>(offsets.size()) - 1;
  }

  index_t nsegs_ = 0;
  index_t value_grain_ = 1;
  DistArray<index_t> offsets_;
  DistArray<T> values_;
  std::shared_ptr<const std::vector<index_t>> cuts_;
  std::shared_ptr<const std::vector<index_t>> weights_;
};

/// Iterator over a segmented resident array: elements are Segment<T> views,
/// the domain is the value-balanced SegSeq, and slices participate in the
/// residency protocol leaf-by-leaf.
template <typename T>
auto from_segmented(const SegmentedDistArray<T>& a) {
  return core::idx_flat(a.domain(), a.source(), SegmentExt{});
}

}  // namespace triolet::dist

namespace triolet::core {

// A segmented source is resident (both leaves are), and counts as a fused
// view: its offsets and values tokenize independently, so a warm segmented
// grant is tokens-only even before any zip/transform composition.
template <typename T>
struct source_uses_residency<triolet::dist::SegmentedSource<T>>
    : std::true_type {};
template <typename T>
struct resident_leaf_count<triolet::dist::SegmentedSource<T>>
    : std::integral_constant<int, 2> {};

}  // namespace triolet::core

namespace triolet::serial {

template <typename T>
struct use_custom_codec<triolet::dist::SegmentedSource<T>> : std::true_type {
};

/// Delegates to the two ResidentSource codecs: each leaf independently
/// becomes an inline zero-copy payload or an 8-byte checksum token under
/// the active residency scope.
template <typename T>
struct Codec<triolet::dist::SegmentedSource<T>> {
  using S = triolet::dist::SegmentedSource<T>;

  static void write(ByteWriter& w, const S& s) {
    serial::write(w, s.offsets);
    serial::write(w, s.values);
  }

  static void read(ByteReader& r, S& s) {
    serial::read(r, s.offsets);
    serial::read(r, s.values);
  }
};

}  // namespace triolet::serial
