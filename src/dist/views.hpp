#pragma once

// Composable lazy views over resident distributed arrays.
//
// `dist::zip` / `dist::slice` / `dist::transform` build on the core
// iterator algebra (core::zip / Indexer::slice / core::map) but accept
// resident arrays directly, so a fused pipeline like
//
//     auto fused = dist::transform(dist::zip(a, dist::slice(b, lo, hi)), f);
//
// is just an iterator whose *source* is a tree of ResidentSource leaves.
// Nothing here materializes: scheduling or scattering the view slices the
// source tree leaf-by-leaf (zero-copy narrowing), and serializing a grant
// runs each leaf through the residency codec independently — a warm leaf
// ships as an 8-byte (id, version, range)-keyed checksum token instead of
// its payload. The bytes a fused view avoids this way are charged to
// CommStats.views.view_bytes_avoided (see net/comm.hpp ViewStats): grant
// encoding detects a multi-leaf source via core::resident_leaf_count and
// passes the view counters to the ResidencyEncodeScope.
//
// These are thin sugar by design — views compose with every existing
// skeleton (map_with contexts, scheduled map_reduce, service jobs) because
// they *are* core iterators; there is no separate view evaluator to keep
// consistent.

#include <utility>

#include "core/skeletons.hpp"
#include "dist/dist_array.hpp"
#include "dist/segmented.hpp"

namespace triolet::dist {

/// Lifts an argument into a view iterator: resident arrays become their
/// canonical iterators, iterators pass through unchanged.
template <typename T>
auto as_view(const DistArray<T>& a) {
  return from_resident(a);
}

template <typename T>
auto as_view(const SegmentedDistArray<T>& a) {
  return from_segmented(a);
}

template <typename It,
          typename = std::enable_if_t<core::is_iter_v<It>>>
It as_view(const It& it) {
  return it;
}

/// Lazy window [lo, hi) of a 1D resident array (global indices): narrows
/// the resident source zero-copy, no elements move.
template <typename T>
auto slice(const DistArray<T>& a, index_t lo, index_t hi) {
  return from_resident(a).slice(core::Seq{lo, hi});
}

/// Lazy window of an existing 1D view.
template <typename It,
          typename = std::enable_if_t<core::is_iter_v<It>>>
auto slice(const It& v, index_t lo, index_t hi) {
  return v.slice(core::Seq{lo, hi});
}

/// Element-wise pairing over the domain intersection. Arguments may be
/// resident arrays or views; the result's source keeps both leaves, so a
/// grant of the zip tokenizes (or ships) each side independently.
template <typename A, typename B>
auto zip(const A& a, const B& b) {
  return core::zip(as_view(a), as_view(b));
}

/// Lazy element-wise function application (core::map over the lifted view):
/// `g` rides in the extractor and runs where the elements are consumed.
template <typename A, typename G>
auto transform(const A& a, G g) {
  return core::map(as_view(a), std::move(g));
}

}  // namespace triolet::dist
