#pragma once

// Per-rank inbox: multi-producer blocking queue with (source, tag) matching.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <span>
#include <utility>

#include "net/message.hpp"

namespace triolet::net {

class Mailbox {
 public:
  /// `max_message_bytes` == 0 means unbounded.
  explicit Mailbox(std::size_t max_message_bytes = 0)
      : max_message_bytes_(max_message_bytes) {}

  /// Deposits a message. Throws BufferOverflow if it exceeds the buffer
  /// limit configured for this cluster.
  void push(Message msg);

  /// Blocks until a message matching (src, tag) is available and removes it.
  /// kAnySource / kAnyTag act as wildcards. Throws ClusterAborted if the
  /// cluster's abort flag is raised while waiting.
  Message pop_match(int src, int tag, const std::atomic<bool>& aborted);

  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_pop_match(int src, int tag, Message& out);

  /// Blocks until a message matching *any* of the (src, tag) patterns is
  /// available; removes and returns it, setting `which` to the index of
  /// the pattern that matched (the backing of wait_any over posted
  /// receives). Wildcards and abort semantics as in pop_match. When
  /// several patterns could match queued messages, the earliest queued
  /// message wins, preserving per-(src, tag) FIFO delivery.
  Message pop_match_any(std::span<const std::pair<int, int>> patterns,
                        const std::atomic<bool>& aborted, std::size_t& which);

  /// Wakes all blocked receivers (used on abort).
  void interrupt();

  std::size_t size() const;

 private:
  bool match_locked(int src, int tag, Message& out);

  const std::size_t max_message_bytes_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace triolet::net
