#pragma once

// Per-rank inbox: multi-producer blocking queue with (source, tag) matching.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <span>
#include <utility>

#include "net/message.hpp"

namespace triolet::net {

class Mailbox {
 public:
  /// `max_message_bytes` == 0 means unbounded.
  explicit Mailbox(std::size_t max_message_bytes = 0)
      : max_message_bytes_(max_message_bytes) {}

  /// Deposits a message. Throws BufferOverflow if it exceeds the buffer
  /// limit configured for this cluster.
  void push(Message msg);

  /// Blocks until a message matching (src, tag) is available and removes it.
  /// kAnySource / kAnyTag act as wildcards; a kAnyTag pattern only matches
  /// messages whose tag falls in [wild_lo, wild_hi) — the window a job Comm
  /// restricts to its leased band so one job's wildcard receive cannot
  /// steal another job's traffic. Throws ClusterAborted if the cluster's
  /// abort flag — or the optional per-job `also_aborted` flag — is raised
  /// while waiting.
  Message pop_match(int src, int tag, const std::atomic<bool>& aborted,
                    int wild_lo = 0,
                    int wild_hi = std::numeric_limits<int>::max(),
                    const std::atomic<bool>* also_aborted = nullptr);

  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_pop_match(int src, int tag, Message& out, int wild_lo = 0,
                     int wild_hi = std::numeric_limits<int>::max());

  /// Blocks until a message matching *any* of the (src, tag) patterns is
  /// available; removes and returns it, setting `which` to the index of
  /// the pattern that matched (the backing of wait_any over posted
  /// receives). Wildcards, the wildcard window, and abort semantics as in
  /// pop_match. When several patterns could match queued messages, the
  /// earliest queued message wins, preserving per-(src, tag) FIFO delivery.
  Message pop_match_any(std::span<const std::pair<int, int>> patterns,
                        const std::atomic<bool>& aborted, std::size_t& which,
                        int wild_lo = 0,
                        int wild_hi = std::numeric_limits<int>::max(),
                        const std::atomic<bool>* also_aborted = nullptr);

  /// Wakes all blocked receivers (used on abort and on per-job aborts —
  /// waiters re-check their own abort flags and go back to sleep if the
  /// wake was not for them).
  void interrupt();

  /// Drops every queued message whose tag is in [lo, hi) and returns how
  /// many were dropped. The service layer purges a job's leased band after
  /// the job completes (or aborts) so a reclaimed band starts empty.
  std::size_t purge_tag_range(int lo, int hi);

  std::size_t size() const;

 private:
  bool match_locked(int src, int tag, Message& out, int wild_lo, int wild_hi);

  const std::size_t max_message_bytes_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace triolet::net
