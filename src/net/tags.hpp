#pragma once

// Reserved tag-band registry and audit.
//
// Several subsystems reserve tag regions out of the user tag space: the
// demand-driven scheduler (1 << 26), the sub-communicator relay (1 << 27),
// and the collectives (1 << 28 and up), plus the async progress-engine
// control band added with isend/irecv and the slice-residency protocol
// band. Each band used to be declared where
// it was consumed; this registry lists every band in one table so a new
// reservation that overlaps an existing one fails fast at Cluster startup
// (assert_tag_bands_disjoint) instead of surfacing as cross-matched
// messages under load.

#include <limits>
#include <span>
#include <string>

#include "support/macros.hpp"

namespace triolet::net {

/// Half-open tag range [lo, hi) reserved for one subsystem.
struct TagBand {
  const char* name;
  int lo;
  int hi;
};

/// User tags must stay below every reserved band.
inline constexpr int kUserTagLimit = 1 << 26;

// Dedicated tag band for the demand-driven chunk scheduler (src/sched/):
// requests travel root-ward under the epoch's request tag (always received
// with kAnySource) and grants come back under the epoch's grant tag.
//
// The (request, grant) tag pair rotates with a per-Comm *epoch* counter,
// one epoch per collective run_chunks invocation. Without the rotation,
// back-to-back scheduled skeletons deadlock under a round-boundary race: a
// fast worker that finishes round r posts its round r+1 request while the
// root is still draining round r's final requests; the root would answer it
// with a round-r `done`, dismissing the worker from a round that never
// started AND consuming a done slot a slow round-r worker still needs —
// that worker then waits forever for a grant while the root blocks in the
// next collective. Epoch-tagged requests from round r+1 simply wait in the
// root's mailbox until its round r+1 service loop matches them. Workers
// can run at most one epoch ahead of the root (they cannot finish an epoch
// without its grants), so 32 rotating pairs can never alias.
inline constexpr int kTagSchedBand = 1 << 26;
inline constexpr int kSchedEpochTags = 32;
inline constexpr int kTagSchedBandEnd = kTagSchedBand + 2 * kSchedEpochTags;

/// Request tag for scheduler epoch `e` (worker -> root, kAnySource-served).
inline constexpr int sched_request_tag(int epoch) {
  return kTagSchedBand + 2 * (epoch % kSchedEpochTags);
}

/// Grant tag for scheduler epoch `e` (root -> worker).
inline constexpr int sched_grant_tag(int epoch) {
  return kTagSchedBand + 2 * (epoch % kSchedEpochTags) + 1;
}

// Epoch-0 aliases, kept for tests and tooling that name the band's tags.
inline constexpr int kTagSchedRequest = kTagSchedBand + 0;
inline constexpr int kTagSchedGrant = kTagSchedBand + 1;

// Async progress-engine control band: reserved for internal messages of the
// isend/irecv machinery (e.g. a future rendezvous protocol for payloads
// larger than the eager limit). No user or collective traffic may use it.
inline constexpr int kTagAsyncBand = (1 << 26) + (1 << 16);
inline constexpr int kTagAsyncBandEnd = kTagAsyncBand + 64;

// Residency (slice-cache) protocol band: when a receiver's cached slice
// misses or fails checksum validation, it sends a fetch request root-ward
// under kTagResidentFetch (served with kAnySource, like sched requests) and
// the authoritative slice bytes come back under kTagResidentData.
inline constexpr int kTagResidencyBand = (1 << 26) + (1 << 17);
inline constexpr int kTagResidentFetch = kTagResidencyBand + 0;
inline constexpr int kTagResidentData = kTagResidencyBand + 1;
inline constexpr int kTagResidencyBandEnd = kTagResidencyBand + 64;

// Sub-communicator relay band: Comm::Group offsets group tags into
// [1 << 27, 1 << 27 + 1 << 20), with group collectives at the top of it.
inline constexpr int kTagGroupBand = 1 << 27;
inline constexpr int kTagGroupBandEnd = (1 << 27) + (1 << 20);

/// Collective rounds start here: one 64-tag band per collective kind, one
/// tag per tree round within the band.
inline constexpr int kFirstReservedTag = 1 << 28;
inline constexpr int kCollectiveBandsEnd = kFirstReservedTag + (7 << 6);

/// Every reserved band, plus the user space, in one table.
inline std::span<const TagBand> reserved_tag_bands() {
  static constexpr TagBand kBands[] = {
      {"user", 0, kUserTagLimit},
      {"sched", kTagSchedBand, kTagSchedBandEnd},
      {"async-progress", kTagAsyncBand, kTagAsyncBandEnd},
      {"residency", kTagResidencyBand, kTagResidencyBandEnd},
      {"group-relay", kTagGroupBand, kTagGroupBandEnd},
      {"collectives", kFirstReservedTag, kCollectiveBandsEnd},
  };
  return kBands;
}

// -- per-job leased bands (src/svc/) -----------------------------------------
//
// The service layer runs many concurrent jobs over one shared mailbox
// network. Each job leases one band out of the region below and a TagMap
// folds the job's *entire* canonical tag space — user tags plus every
// reserved band above — into its lease, so two jobs' messages can never
// match each other even when both run collectives, scheduled skeletons, and
// residency traffic at the same time. The canonical space is compressed
// (user tags are capped at kJobUserTagLimit; the reserved bands pack at
// running offsets) so a lease is 2^22 tags wide and hundreds of bands fit
// between the region base and INT_MAX.

/// User tags a leased job may use: [0, kJobUserTagLimit). Far beyond what
/// any skeleton needs, small enough that the whole compressed space packs.
inline constexpr int kJobUserTagLimit = 1 << 20;

// Running offsets of the reserved bands inside one compressed job band.
// Each width is derived from the canonical band constants above, so adding
// tags to a reserved band automatically widens its compressed image.
inline constexpr int kJobSchedOffset = kJobUserTagLimit;
inline constexpr int kJobAsyncOffset =
    kJobSchedOffset + (kTagSchedBandEnd - kTagSchedBand);
inline constexpr int kJobResidencyOffset =
    kJobAsyncOffset + (kTagAsyncBandEnd - kTagAsyncBand);
inline constexpr int kJobGroupOffset =
    kJobResidencyOffset + (kTagResidencyBandEnd - kTagResidencyBand);
inline constexpr int kJobCollectiveOffset =
    kJobGroupOffset + (kTagGroupBandEnd - kTagGroupBand);
inline constexpr int kJobBandUsed =
    kJobCollectiveOffset + (kCollectiveBandsEnd - kFirstReservedTag);

/// Width of one leased band. The used portion must fit with room to grow.
inline constexpr int kJobBandWidth = 1 << 22;
static_assert(kJobBandUsed <= kJobBandWidth,
              "compressed job tag space outgrew the per-job band width");

/// Leased bands live in [kJobBandRegion, INT_MAX), above every static band.
inline constexpr int kJobBandRegion = 1 << 29;
static_assert(kCollectiveBandsEnd <= kJobBandRegion,
              "static reserved bands overlap the job-band region");

/// How many bands fit in the region — the hard concurrency ceiling of one
/// service instance (svc::BandAllocator throws BandsExhausted past it).
inline constexpr int kMaxJobBands =
    (std::numeric_limits<int>::max() - kJobBandRegion) / kJobBandWidth;

/// Base tag of job band slot `slot` in [0, kMaxJobBands).
inline constexpr int job_band_base(int slot) {
  return kJobBandRegion + slot * kJobBandWidth;
}

/// Maps a job's canonical tag space into its leased band. base == 0 is the
/// identity map (a Comm outside the service layer). The map is a pure
/// function of immutable state, so it is safe to apply from any thread
/// (rank thread or progress engine).
struct TagMap {
  int base = 0;

  bool identity() const { return base == 0; }

  /// Window a wildcard (kAnyTag) receive is allowed to match: the leased
  /// band for a job Comm, the whole tag space for an identity Comm. This is
  /// what keeps one job's kAnySource/kAnyTag service loops from stealing
  /// another job's traffic.
  int any_lo() const { return base; }
  int any_hi() const {
    return base == 0 ? std::numeric_limits<int>::max() : base + kJobBandWidth;
  }

  int map(int tag) const {
    if (base == 0) return tag;
    if (tag < kUserTagLimit) {
      TRIOLET_CHECK(tag >= 0 && tag < kJobUserTagLimit,
                    "service jobs must keep user tags below kJobUserTagLimit");
      return base + tag;
    }
    if (tag >= kTagSchedBand && tag < kTagSchedBandEnd) {
      return base + kJobSchedOffset + (tag - kTagSchedBand);
    }
    if (tag >= kTagAsyncBand && tag < kTagAsyncBandEnd) {
      return base + kJobAsyncOffset + (tag - kTagAsyncBand);
    }
    if (tag >= kTagResidencyBand && tag < kTagResidencyBandEnd) {
      return base + kJobResidencyOffset + (tag - kTagResidencyBand);
    }
    if (tag >= kTagGroupBand && tag < kTagGroupBandEnd) {
      return base + kJobGroupOffset + (tag - kTagGroupBand);
    }
    if (tag >= kFirstReservedTag && tag < kCollectiveBandsEnd) {
      return base + kJobCollectiveOffset + (tag - kFirstReservedTag);
    }
    TRIOLET_CHECK(false, "tag outside every reserved band cannot be leased");
    return tag;
  }

  /// map() that passes receive wildcards (negative tags) through unchanged;
  /// the mailbox restricts what a wildcard may match via [any_lo, any_hi).
  int map_pattern(int tag) const { return tag < 0 ? tag : map(tag); }
};

/// True when no two bands in `bands` overlap; on failure, `why` (if
/// non-null) names the offending pair.
inline bool tag_bands_disjoint(std::span<const TagBand> bands,
                               std::string* why = nullptr) {
  for (std::size_t i = 0; i < bands.size(); ++i) {
    if (bands[i].lo >= bands[i].hi) {
      if (why) *why = std::string("band '") + bands[i].name + "' is empty or inverted";
      return false;
    }
    for (std::size_t j = i + 1; j < bands.size(); ++j) {
      if (bands[i].lo < bands[j].hi && bands[j].lo < bands[i].hi) {
        if (why) {
          *why = std::string("tag bands overlap: '") + bands[i].name +
                 "' and '" + bands[j].name + "'";
        }
        return false;
      }
    }
  }
  return true;
}

/// Fails fast if any two reserved bands overlap, or if any static band
/// reaches into the dynamically leased job-band region. Called from Cluster
/// and JobManager startup so a bad band constant can never ship a single
/// message.
inline void assert_tag_bands_disjoint() {
  std::string why;
  TRIOLET_CHECK(tag_bands_disjoint(reserved_tag_bands(), &why), why.c_str());
  for (const TagBand& b : reserved_tag_bands()) {
    TRIOLET_CHECK(b.hi <= kJobBandRegion,
                  "a static reserved band reaches into the job-band region");
  }
}

}  // namespace triolet::net
