#pragma once

// Reserved tag-band registry and audit.
//
// Several subsystems reserve tag regions out of the user tag space: the
// demand-driven scheduler (1 << 26), the sub-communicator relay (1 << 27),
// and the collectives (1 << 28 and up), plus the async progress-engine
// control band added with isend/irecv and the slice-residency protocol
// band. Each band used to be declared where
// it was consumed; this registry lists every band in one table so a new
// reservation that overlaps an existing one fails fast at Cluster startup
// (assert_tag_bands_disjoint) instead of surfacing as cross-matched
// messages under load.

#include <span>
#include <string>

#include "support/macros.hpp"

namespace triolet::net {

/// Half-open tag range [lo, hi) reserved for one subsystem.
struct TagBand {
  const char* name;
  int lo;
  int hi;
};

/// User tags must stay below every reserved band.
inline constexpr int kUserTagLimit = 1 << 26;

// Dedicated tag band for the demand-driven chunk scheduler (src/sched/):
// requests travel root-ward under the epoch's request tag (always received
// with kAnySource) and grants come back under the epoch's grant tag.
//
// The (request, grant) tag pair rotates with a per-Comm *epoch* counter,
// one epoch per collective run_chunks invocation. Without the rotation,
// back-to-back scheduled skeletons deadlock under a round-boundary race: a
// fast worker that finishes round r posts its round r+1 request while the
// root is still draining round r's final requests; the root would answer it
// with a round-r `done`, dismissing the worker from a round that never
// started AND consuming a done slot a slow round-r worker still needs —
// that worker then waits forever for a grant while the root blocks in the
// next collective. Epoch-tagged requests from round r+1 simply wait in the
// root's mailbox until its round r+1 service loop matches them. Workers
// can run at most one epoch ahead of the root (they cannot finish an epoch
// without its grants), so 32 rotating pairs can never alias.
inline constexpr int kTagSchedBand = 1 << 26;
inline constexpr int kSchedEpochTags = 32;
inline constexpr int kTagSchedBandEnd = kTagSchedBand + 2 * kSchedEpochTags;

/// Request tag for scheduler epoch `e` (worker -> root, kAnySource-served).
inline constexpr int sched_request_tag(int epoch) {
  return kTagSchedBand + 2 * (epoch % kSchedEpochTags);
}

/// Grant tag for scheduler epoch `e` (root -> worker).
inline constexpr int sched_grant_tag(int epoch) {
  return kTagSchedBand + 2 * (epoch % kSchedEpochTags) + 1;
}

// Epoch-0 aliases, kept for tests and tooling that name the band's tags.
inline constexpr int kTagSchedRequest = kTagSchedBand + 0;
inline constexpr int kTagSchedGrant = kTagSchedBand + 1;

// Async progress-engine control band: reserved for internal messages of the
// isend/irecv machinery (e.g. a future rendezvous protocol for payloads
// larger than the eager limit). No user or collective traffic may use it.
inline constexpr int kTagAsyncBand = (1 << 26) + (1 << 16);
inline constexpr int kTagAsyncBandEnd = kTagAsyncBand + 64;

// Residency (slice-cache) protocol band: when a receiver's cached slice
// misses or fails checksum validation, it sends a fetch request root-ward
// under kTagResidentFetch (served with kAnySource, like sched requests) and
// the authoritative slice bytes come back under kTagResidentData.
inline constexpr int kTagResidencyBand = (1 << 26) + (1 << 17);
inline constexpr int kTagResidentFetch = kTagResidencyBand + 0;
inline constexpr int kTagResidentData = kTagResidencyBand + 1;
inline constexpr int kTagResidencyBandEnd = kTagResidencyBand + 64;

// Sub-communicator relay band: Comm::Group offsets group tags into
// [1 << 27, 1 << 27 + 1 << 20), with group collectives at the top of it.
inline constexpr int kTagGroupBand = 1 << 27;
inline constexpr int kTagGroupBandEnd = (1 << 27) + (1 << 20);

/// Collective rounds start here: one 64-tag band per collective kind, one
/// tag per tree round within the band.
inline constexpr int kFirstReservedTag = 1 << 28;
inline constexpr int kCollectiveBandsEnd = kFirstReservedTag + (7 << 6);

/// Every reserved band, plus the user space, in one table.
inline std::span<const TagBand> reserved_tag_bands() {
  static constexpr TagBand kBands[] = {
      {"user", 0, kUserTagLimit},
      {"sched", kTagSchedBand, kTagSchedBandEnd},
      {"async-progress", kTagAsyncBand, kTagAsyncBandEnd},
      {"residency", kTagResidencyBand, kTagResidencyBandEnd},
      {"group-relay", kTagGroupBand, kTagGroupBandEnd},
      {"collectives", kFirstReservedTag, kCollectiveBandsEnd},
  };
  return kBands;
}

/// True when no two bands in `bands` overlap; on failure, `why` (if
/// non-null) names the offending pair.
inline bool tag_bands_disjoint(std::span<const TagBand> bands,
                               std::string* why = nullptr) {
  for (std::size_t i = 0; i < bands.size(); ++i) {
    if (bands[i].lo >= bands[i].hi) {
      if (why) *why = std::string("band '") + bands[i].name + "' is empty or inverted";
      return false;
    }
    for (std::size_t j = i + 1; j < bands.size(); ++j) {
      if (bands[i].lo < bands[j].hi && bands[j].lo < bands[i].hi) {
        if (why) {
          *why = std::string("tag bands overlap: '") + bands[i].name +
                 "' and '" + bands[j].name + "'";
        }
        return false;
      }
    }
  }
  return true;
}

/// Fails fast if any two reserved bands overlap. Called from Cluster
/// startup so a bad band constant can never ship a single message.
inline void assert_tag_bands_disjoint() {
  std::string why;
  TRIOLET_CHECK(tag_bands_disjoint(reserved_tag_bands(), &why), why.c_str());
}

}  // namespace triolet::net
