#include "net/ring_transport.hpp"

#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <thread>
#include <unordered_map>

#include "net/tags.hpp"
#include "serial/bytes.hpp"

namespace triolet::net {

namespace {

/// Receive-side spin budget before parking (drain attempts, yielding each
/// iteration so the spin is productive even on a single hardware core).
/// Overridable with TRIOLET_NET_SPIN.
std::size_t recv_spin_budget() {
  static const std::size_t budget = [] {
    if (const char* env = std::getenv("TRIOLET_NET_SPIN")) {
      const long v = std::atol(env);
      if (v >= 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{64};
  }();
  return budget;
}

/// Spin-then-park waiter, one per receiver (a receiver is single-threaded,
/// so there is never more than one parked waiter). Wakeups follow the
/// Dekker/eventcount discipline:
///
///   receiver: lock mu -> parked = true -> seq_cst fence -> re-probe rings
///             -> cv.wait (holding mu throughout)
///   sender:   publish descriptor -> seq_cst fence -> read parked
///             -> if true: lock mu, notify
///
/// The fences guarantee at least one side sees the other (the receiver's
/// re-probe sees the descriptor, or the sender sees parked == true), and
/// taking mu around the notify closes the probe-to-wait gap — the same
/// lost-wakeup class Mailbox::interrupt() had.
struct Parker {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> parked{false};

  void wake() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  }
};

Message desc_to_message(const RingDesc& d) {
  Message m;
  m.src = d.src;
  m.tag = d.tag;
  m.checksum = d.checksum;
  if (d.kind == RingDesc::kEager) {
    if (d.ptr != nullptr) {
      m.payload = Payload::from_slab(static_cast<std::byte*>(d.ptr), d.pclass,
                                     static_cast<std::size_t>(d.size));
    }
  } else {
    auto* node = static_cast<RzNode*>(d.ptr);
    m.payload = std::move(node->flat);
    node->~RzNode();
    BufferPool::instance().release(static_cast<std::byte*>(d.ptr), d.pclass);
  }
  return m;
}

/// One receiver's state within a domain: the incoming rings (indexed by
/// sender), the private match table, the parker, and a mutex-guarded side
/// queue for inject()ed test traffic.
struct RxState {
  explicit RxState(int nranks)
      : rings(static_cast<std::size_t>(nranks)), table(nranks) {}

  std::vector<SpscRing> rings;  // rings[src]: src -> this rank
  MatchTable table;
  Parker parker;

  std::atomic<bool> inject_pending{false};
  std::mutex inject_mu;
  std::deque<Message> inject_q;

  /// Moves every queued descriptor into the match table. Returns true if
  /// anything arrived. Receiver thread only.
  bool drain() {
    bool any = false;
    RingDesc d;
    for (auto& ring : rings) {
      while (ring.pop(d)) {
        table.insert(desc_to_message(d));
        any = true;
      }
    }
    if (inject_pending.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(inject_mu);
      while (!inject_q.empty()) {
        table.insert(std::move(inject_q.front()));
        inject_q.pop_front();
        any = true;
      }
      inject_pending.store(false, std::memory_order_relaxed);
    }
    return any;
  }

  bool maybe_pending() const {
    for (const auto& ring : rings) {
      if (ring.maybe_nonempty()) return true;
    }
    return inject_pending.load(std::memory_order_relaxed);
  }
};

/// One tag band's private P*P fabric. Bands map a job's entire tag space
/// into a disjoint range, so traffic never crosses domains and each
/// (job, rank) pair keeps the single-consumer / single-producer invariants
/// the rings and tables rely on.
class Domain {
 public:
  Domain(int nranks, std::size_t max_message_bytes, std::size_t eager_bytes)
      : nranks_(nranks),
        max_message_bytes_(max_message_bytes),
        eager_bytes_(eager_bytes) {
    rx_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      rx_.push_back(std::make_unique<RxState>(nranks));
    }
  }

  ~Domain() { purge_all(); }

  RxState& rx(int rank) { return *rx_[static_cast<std::size_t>(rank)]; }
  int nranks() const { return nranks_; }

  void deliver(int src, int dst, int tag, serial::SegmentedBytes sg,
               MsgCounters& mc) {
    const std::size_t n = sg.size();
    if (max_message_bytes_ != 0 && n > max_message_bytes_) {
      throw BufferOverflow();
    }
    RingDesc d;
    d.src = src;
    d.tag = tag;
    d.size = n;
    d.checksum = sg.stream_checksum();
    if (n <= eager_bytes_ || n == 0) {
      d.kind = RingDesc::kEager;
      if (n != 0) {
        BufferPool::Alloc a = BufferPool::instance().allocate(n);
        sg.gather_into(a.p);
        d.ptr = a.p;
        d.pclass = a.cls;
        (a.pool_hit ? mc.pool_hits : mc.pool_misses)
            .fetch_add(1, std::memory_order_relaxed);
        if (sg.all_owned()) {
          serial::recycle_stream_buffer(sg.take_owned_storage());
        }
      }
      mc.eager_msgs.fetch_add(1, std::memory_order_relaxed);
    } else {
      d.kind = RingDesc::kRendezvous;
      std::vector<std::byte> flat;
      if (!sg.take_flat(flat)) {
        // Borrowed spans are only valid for this call: gather them now into
        // a recycled buffer and pass that on. All-owned payloads above skip
        // this copy entirely — the staging vector itself changes hands.
        flat = serial::acquire_stream_buffer();
        flat.resize(n);
        sg.gather_into(flat.data());
        serial::recycle_stream_buffer(sg.take_owned_storage());
      }
      BufferPool::Alloc a = BufferPool::instance().allocate(sizeof(RzNode));
      d.ptr = new (a.p) RzNode{std::move(flat)};
      d.pclass = a.cls;
      (a.pool_hit ? mc.pool_hits : mc.pool_misses)
          .fetch_add(1, std::memory_order_relaxed);
      mc.rendezvous_msgs.fetch_add(1, std::memory_order_relaxed);
    }
    RxState& r = rx(dst);
    if (!r.rings[static_cast<std::size_t>(src)].push(d)) {
      mc.ring_full_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    r.parker.wake();
  }

  void inject(int dst, Message m) {
    RxState& r = rx(dst);
    {
      std::lock_guard<std::mutex> lock(r.inject_mu);
      r.inject_q.push_back(std::move(m));
      r.inject_pending.store(true, std::memory_order_release);
    }
    r.parker.wake();
  }

  void interrupt_all() {
    for (auto& r : rx_) {
      std::lock_guard<std::mutex> lock(r->parker.mu);
      r->parker.cv.notify_all();
    }
  }

  /// Sweeps in-flight descriptors into the tables, then purges [lo, hi).
  /// Quiescence contract: no rank thread is active in this domain.
  std::size_t purge_range(int lo, int hi) {
    std::size_t dropped = 0;
    for (auto& r : rx_) {
      r->drain();
      dropped += r->table.purge_range(lo, hi);
    }
    return dropped;
  }

  void purge_all() {
    for (auto& r : rx_) {
      r->drain();
      r->table.purge_range(std::numeric_limits<int>::min(),
                           std::numeric_limits<int>::max());
    }
  }

 private:
  const int nranks_;
  const std::size_t max_message_bytes_;
  const std::size_t eager_bytes_;
  std::vector<std::unique_ptr<RxState>> rx_;
};

/// Endpoint: rank r's handle on one domain. deliver() runs as sender r;
/// the pop family reads rank r's RxState.
class RingEndpoint final : public Transport::Endpoint {
 public:
  RingEndpoint(Domain* domain, int rank) : domain_(domain), rank_(rank) {}

  void deliver(int dst, int tag, serial::SegmentedBytes sg,
               MsgCounters& mc) override {
    domain_->deliver(rank_, dst, tag, std::move(sg), mc);
  }

  Message pop_match(int src, int tag, const std::atomic<bool>& aborted,
                    int wild_lo, int wild_hi,
                    const std::atomic<bool>* also_aborted) override {
    const std::pair<int, int> pattern{src, tag};
    std::size_t which = 0;
    return pop_match_any({&pattern, 1}, aborted, which, wild_lo, wild_hi,
                         also_aborted);
  }

  Message pop_match_any(std::span<const std::pair<int, int>> patterns,
                        const std::atomic<bool>& aborted, std::size_t& which,
                        int wild_lo, int wild_hi,
                        const std::atomic<bool>* also_aborted) override {
    RxState& r = domain_->rx(rank_);
    const std::size_t spin_budget = recv_spin_budget();
    std::size_t spins = 0;
    while (true) {
      if (r.drain()) spins = 0;
      MatchTable::Entry* e =
          r.table.find_any(patterns, which, wild_lo, wild_hi);
      if (e != nullptr) return r.table.take(e);
      if (aborted.load(std::memory_order_acquire) ||
          (also_aborted &&
           also_aborted->load(std::memory_order_acquire))) {
        throw ClusterAborted();
      }
      if (spins < spin_budget) {
        spins += 1;
        std::this_thread::yield();
        continue;
      }
      park(r, aborted, also_aborted);
    }
  }

  bool try_pop_match(int src, int tag, Message& out, int wild_lo,
                     int wild_hi) override {
    RxState& r = domain_->rx(rank_);
    r.drain();
    MatchTable::Entry* e = r.table.find(src, tag, wild_lo, wild_hi);
    if (e == nullptr) return false;
    out = r.table.take(e);
    return true;
  }

 private:
  void park(RxState& r, const std::atomic<bool>& aborted,
            const std::atomic<bool>* also_aborted) {
    std::unique_lock<std::mutex> lock(r.parker.mu);
    r.parker.parked.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Re-probe under the armed flag (and the lock): either this sees the
    // sender's publish, or the sender's fenced read sees parked == true and
    // it queues behind the mutex to notify after the wait is armed.
    if (!r.maybe_pending() && !aborted.load(std::memory_order_acquire) &&
        !(also_aborted && also_aborted->load(std::memory_order_acquire))) {
      r.parker.cv.wait(lock);
    }
    r.parker.parked.store(false, std::memory_order_relaxed);
  }

  Domain* domain_;
  const int rank_;
};

class RingTransport final : public Transport {
 public:
  RingTransport(int nranks, std::size_t max_message_bytes,
                std::size_t eager_bytes)
      : nranks_(nranks),
        max_message_bytes_(max_message_bytes),
        eager_bytes_(eager_bytes) {}

  int nranks() const override { return nranks_; }
  const char* name() const override { return "ring"; }
  std::size_t eager_bytes() const override { return eager_bytes_; }

  Endpoint& attach(int rank, int band_base) override {
    TRIOLET_CHECK(rank >= 0 && rank < nranks_,
                  "attach: rank outside the cluster");
    std::lock_guard<std::mutex> lock(mu_);
    auto& dom = domains_[band_base];
    if (!dom) {
      dom = std::make_unique<Domain>(nranks_, max_message_bytes_,
                                     eager_bytes_);
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(band_base))
         << 32) |
        static_cast<std::uint32_t>(rank);
    auto& ep = endpoints_[key];
    if (!ep) ep = std::make_unique<RingEndpoint>(dom.get(), rank);
    return *ep;
  }

  std::size_t purge_tag_range(int lo, int hi) override {
    // A band's traffic lives only in its own domain (senders map every tag
    // into the band), so only domains inside [lo, hi) are touched — other
    // domains may have live rank threads, and draining their rings from
    // this thread would break the single-consumer invariant.
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t dropped = 0;
    for (auto& [base, dom] : domains_) {
      if (base >= lo && base < hi) dropped += dom->purge_range(lo, hi);
    }
    return dropped;
  }

  void interrupt_all() override {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [base, dom] : domains_) dom->interrupt_all();
  }

  void inject(int dst, Message m) override {
    Domain* dom;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Route by the message's tag: the domain whose band contains it, or
      // the identity domain (created on demand for transport-only tests).
      dom = nullptr;
      for (auto& [base, d] : domains_) {
        if (base != 0 && m.tag >= base && m.tag < base + kJobBandWidth) {
          dom = d.get();
          break;
        }
      }
      if (dom == nullptr) {
        auto& identity = domains_[0];
        if (!identity) {
          identity = std::make_unique<Domain>(nranks_, max_message_bytes_,
                                              eager_bytes_);
        }
        dom = identity.get();
      }
    }
    dom->inject(dst, std::move(m));
  }

 private:
  const int nranks_;
  const std::size_t max_message_bytes_;
  const std::size_t eager_bytes_;

  std::mutex mu_;
  std::unordered_map<int, std::unique_ptr<Domain>> domains_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RingEndpoint>> endpoints_;
};

}  // namespace

std::unique_ptr<Transport> make_ring_transport(int nranks,
                                               std::size_t max_message_bytes,
                                               std::size_t eager_bytes) {
  return std::make_unique<RingTransport>(nranks, max_message_bytes,
                                         eager_bytes);
}

}  // namespace triolet::net
