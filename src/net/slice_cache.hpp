#pragma once

// Per-rank slice cache: the residency store behind rescatter avoidance.
//
// Each rank keeps an LRU byte-budgeted cache of the resident slices it has
// received, keyed by (source id, version, range). The *sender* keeps one
// metadata-only SliceCache per destination that mirrors the receiver's
// cache deterministically: both sides apply the same insert/touch/evict
// sequence in message order (delivery is FIFO per rank pair), so the root
// can decide "receiver already holds this slice" without an ack round trip.
// Any divergence — corruption, a receiver restarting its cache — is caught
// by checksum validation at decode time and repaired through the fetch
// fallback (net/residency.hpp), never by trusting the model.
//
// Eviction is strict LRU over a byte budget (env TRIOLET_SLICE_CACHE_BYTES,
// default 256 MiB; 0 disables residency). Inserting a new version of a
// source retires every cached slice of that source's older versions first —
// stale slices can never be resurrected because the version is part of the
// key, so retiring them is purely a space optimization, applied identically
// on both sides.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "serial/residency.hpp"

namespace triolet::net {

/// Residency counters folded into CommStats. Sender-side fields are
/// accumulated by the encode scope on the root; receiver-side fields by the
/// decode scope and cache on the workers. Cluster::run sums them over ranks.
struct ResidencyStats {
  // Sender side.
  std::int64_t tokens_sent = 0;     // slices replaced by a resident grant
  std::int64_t bytes_avoided = 0;   // payload bytes those tokens did not ship
  std::int64_t slices_inlined = 0;  // slices shipped in full (model miss)
  std::int64_t bytes_inlined = 0;
  // Receiver side.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;        // token arrived, slice not cached
  std::int64_t checksum_failures = 0;   // cached bytes failed validation
  std::int64_t fetches = 0;             // fallback round trips to the owner
  std::int64_t evictions = 0;
  std::int64_t bytes_inserted = 0;

  ResidencyStats& operator+=(const ResidencyStats& o) {
    tokens_sent += o.tokens_sent;
    bytes_avoided += o.bytes_avoided;
    slices_inlined += o.slices_inlined;
    bytes_inlined += o.bytes_inlined;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    checksum_failures += o.checksum_failures;
    fetches += o.fetches;
    evictions += o.evictions;
    bytes_inserted += o.bytes_inserted;
    return *this;
  }
  ResidencyStats& operator-=(const ResidencyStats& o) {
    tokens_sent -= o.tokens_sent;
    bytes_avoided -= o.bytes_avoided;
    slices_inlined -= o.slices_inlined;
    bytes_inlined -= o.bytes_inlined;
    cache_hits -= o.cache_hits;
    cache_misses -= o.cache_misses;
    checksum_failures -= o.checksum_failures;
    fetches -= o.fetches;
    evictions -= o.evictions;
    bytes_inserted -= o.bytes_inserted;
    return *this;
  }
};

inline ResidencyStats operator-(ResidencyStats a, const ResidencyStats& b) {
  a -= b;
  return a;
}

/// LRU byte-budgeted slice store. With `stats == nullptr` the cache is a
/// sender-side *model*: it tracks lengths and checksums but stores no bytes
/// (insert_meta), and its evictions are not counted — only the receiver's
/// real cache reports statistics.
class SliceCache {
 public:
  struct Entry {
    std::size_t len = 0;
    std::uint64_t checksum = 0;
    std::vector<std::byte> bytes;  // empty in model mode
  };

  explicit SliceCache(std::size_t budget_bytes,
                      ResidencyStats* stats = nullptr)
      : budget_(budget_bytes), stats_(stats) {}

  /// Finds `key` and marks it most-recently-used. Returns nullptr on miss.
  const Entry* lookup(const serial::SliceKey& key);

  /// Stores the payload bytes (receiver side). Budget accounting counts the
  /// payload length; the new entry itself may be evicted immediately when
  /// it alone exceeds the budget — deterministically, on both sides.
  void insert(const serial::SliceKey& key, std::span<const std::byte> payload);

  /// Stores length + checksum only (sender-side model). Applies the exact
  /// same retirement/eviction sequence as insert() so the model tracks the
  /// receiver.
  void insert_meta(const serial::SliceKey& key, std::size_t len,
                   std::uint64_t checksum);

  void erase(const serial::SliceKey& key);

  std::size_t bytes_held() const { return held_; }
  std::size_t entries() const { return map_.size(); }
  std::size_t budget() const { return budget_; }

  /// Flips one byte of one cached payload (tests: forces the
  /// checksum-mismatch fetch fallback). Returns false when no entry with
  /// stored bytes exists.
  bool corrupt_one_for_testing();

 private:
  struct Node {
    Entry entry;
    std::list<serial::SliceKey>::iterator pos;  // position in lru_
  };

  void place(const serial::SliceKey& key, Entry e);
  void retire_older_versions(const serial::SliceKey& key);
  void evict_until_within_budget();
  void erase_node(
      std::unordered_map<serial::SliceKey, Node, serial::SliceKeyHash>::iterator
          it);

  std::size_t budget_;
  ResidencyStats* stats_;
  std::size_t held_ = 0;
  std::list<serial::SliceKey> lru_;  // front = most recently used
  std::unordered_map<serial::SliceKey, Node, serial::SliceKeyHash> map_;
};

/// The per-rank residency state hung off a Comm: this rank's receive-side
/// cache plus one deterministic model per destination it scatters to.
///
/// Under the service layer (src/svc/) one Residency per rank is shared by
/// every concurrent job on that rank, so cached slices survive across jobs
/// — the rescatter-avoidance win of a resident service. All access then
/// goes through `mu` (the encode/decode scopes in net/residency.hpp take
/// it). Isolation across jobs needs no extra keying: every SliceKey embeds
/// a process-unique source id + version (dist/dist_array.hpp), so two jobs
/// collide only when they deliberately share one DistArray — in which case
/// sharing the cached bytes is exactly the point. Concurrent jobs encoding
/// to one destination can interleave their model updates in an order that
/// differs from the receiver's insert order; any divergence that causes is
/// caught by checksum validation at decode time and repaired through the
/// fetch fallback, never trusted.
struct Residency {
  Residency(std::size_t budget, ResidencyStats* stats)
      : budget(budget), cache(budget, stats) {}

  std::size_t budget;
  /// Guards cache + peer_models when the Residency is shared across jobs.
  /// Single-job Comms take it too (uncontended — cheap) for one code path.
  std::mutex mu;
  SliceCache cache;
  std::unordered_map<int, SliceCache> peer_models;

  SliceCache& model_for(int dst) {
    auto it = peer_models.find(dst);
    if (it == peer_models.end()) {
      it = peer_models.emplace(dst, SliceCache(budget, nullptr)).first;
    }
    return it->second;
  }
};

/// The process-wide slice-cache byte budget: TRIOLET_SLICE_CACHE_BYTES
/// (plain byte count; unset or invalid -> 256 MiB; "0" disables residency).
/// Each Comm captures it lazily on first residency use.
std::size_t slice_cache_budget();

/// Overrides the budget (tests and benchmarks; takes effect for Comms that
/// have not yet captured it — i.e. fresh Cluster::run invocations).
void set_slice_cache_budget(std::size_t bytes);

}  // namespace triolet::net
