#pragma once

// Slab-pooled buffer allocator for the messaging data plane.
//
// Every eager message payload, rendezvous descriptor node, and match-table
// entry in the ring transport lives in a pooled slab, so steady-state
// messaging performs zero heap allocations: a slab freed by the receiver is
// reused by the next sender. The design is a two-level tcmalloc-style pool:
//
//   thread cache   per-thread intrusive freelists, one per size class; no
//                  locks on the hot path. The free slab's own bytes store
//                  the list link, so the cache itself allocates nothing.
//   central depot  per-class mutex-protected freelist; thread caches refill
//                  from it in batches and flush overflow back, so slabs
//                  migrate between threads (sender allocates, receiver
//                  frees) without unbounded growth in any one cache.
//
// Size classes are powers of two from 64 B to 64 KiB. Requests above the
// largest class fall through to the system allocator (class kHeapClass) and
// are counted as pool misses — by default the eager threshold (4 KiB) keeps
// every eager payload far inside the classed range, and rendezvous payloads
// travel as recycled vectors, not slabs.
//
// The pool is a process-global leaky singleton: thread-cache destructors
// flush into the central depot on thread exit (cluster rank threads and
// progress engines come and go), and the depot itself is never destroyed,
// so destruction order can never strand a flush.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace triolet::net {

/// Number of power-of-two size classes: 64 << 0 ... 64 << 10 (64 B..64 KiB).
inline constexpr std::uint32_t kPoolNumClasses = 11;
inline constexpr std::size_t kPoolMinSlab = 64;
inline constexpr std::size_t kPoolMaxSlab = kPoolMinSlab
                                            << (kPoolNumClasses - 1);
/// Class id for oversized requests served by the system allocator.
inline constexpr std::uint32_t kHeapClass = 0xFFu;

class BufferPool {
 public:
  struct Alloc {
    std::byte* p = nullptr;
    std::uint32_t cls = kHeapClass;
    bool pool_hit = false;  // served from a freelist (no system allocation)
  };

  /// The process-wide pool (leaky singleton; see file comment).
  static BufferPool& instance();

  /// Smallest class whose slab holds `n` bytes; kHeapClass when n exceeds
  /// the largest class.
  static std::uint32_t class_for(std::size_t n) {
    std::size_t sz = kPoolMinSlab;
    for (std::uint32_t c = 0; c < kPoolNumClasses; ++c, sz <<= 1) {
      if (n <= sz) return c;
    }
    return kHeapClass;
  }

  static std::size_t class_bytes(std::uint32_t cls) {
    return kPoolMinSlab << cls;
  }

  /// Allocates a slab holding at least `n` bytes (n > 0).
  Alloc allocate(std::size_t n);

  /// Returns a slab obtained from allocate(). Safe from any thread — the
  /// slab lands in the *caller's* thread cache, which is exactly how slabs
  /// a sender allocated come back from the receiver.
  void release(std::byte* p, std::uint32_t cls) noexcept;

  /// Slabs currently checked out (allocate minus release), including
  /// heap-class ones. A quiescent cluster must read 0 here; the service
  /// layer's band-reclaim tests assert it to prove a killed job's in-flight
  /// descriptors were swept back into the pool.
  std::int64_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }

 private:
  BufferPool() = default;

  struct FreeNode {
    FreeNode* next;
  };

  struct Central {
    std::mutex mu;
    FreeNode* head = nullptr;
    std::size_t count = 0;
  };

  friend struct PoolThreadCache;

  Central central_[kPoolNumClasses];
  std::atomic<std::int64_t> outstanding_{0};
};

}  // namespace triolet::net
